// atomicsize: the java.util.concurrent motivation from §I — the JDK's
// ConcurrentSkipListMap.size() is famously not atomic, and its bulk
// addAll/removeAll "are not guaranteed to be performed atomically"
// (§VI). Here, mutators atomically add or remove a whole block of keys
// while observers take Size() snapshots; because Size is one transaction
// and the bulk operations compose atomically, every observed size is a
// multiple of the block length.
package main

import (
	"fmt"
	"sync"
	"sync/atomic"

	"oestm"
)

const (
	blockLen   = 8
	nBlocks    = 6
	nObservers = 3
	iterations = 300
)

func main() {
	tm := oestm.NewOESTM()
	set := oestm.NewSkipListSet()

	blocks := make([][]int, nBlocks)
	for b := range blocks {
		blocks[b] = make([]int, blockLen)
		for i := range blocks[b] {
			blocks[b][i] = b*blockLen + i
		}
	}

	var stop atomic.Bool
	var mutators, observers sync.WaitGroup
	var torn atomic.Int64

	// Mutators: each toggles its own block in and out, always as one
	// atomic bulk operation.
	for b := 0; b < nBlocks; b++ {
		mutators.Add(1)
		go func(block []int) {
			defer mutators.Done()
			th := oestm.NewThread(tm)
			for i := 0; i < iterations; i++ {
				set.AddAll(th, block)
				set.RemoveAll(th, block)
			}
		}(blocks[b])
	}

	// Observers: atomic Size snapshots must always be whole blocks.
	for o := 0; o < nObservers; o++ {
		observers.Add(1)
		go func() {
			defer observers.Done()
			th := oestm.NewThread(tm)
			for !stop.Load() {
				if set.Size(th)%blockLen != 0 {
					torn.Add(1)
				}
			}
		}()
	}

	mutators.Wait()
	stop.Store(true)
	observers.Wait()

	th := oestm.NewThread(tm)
	fmt.Printf("%d mutators toggling %d-key blocks, %d observers\n", nBlocks, blockLen, nObservers)
	fmt.Printf("torn size observations: %d\n", torn.Load())
	fmt.Printf("final size: %d\n", set.Size(th))
	if torn.Load() == 0 && set.Size(th) == 0 {
		fmt.Println("OK: Size() and bulk operations are atomic")
	} else {
		fmt.Println("FAILURE: atomicity violated")
	}
}
