// move: cross-structure composition. The paper's §I notes that remove and
// put cannot be composed into a deadlock-free move with locks, and that
// lock-free hash table operations cannot compose into an atomic move at
// all. With outheriting transactions the composition is one line, works
// across *different* structure types, and conserves elements under heavy
// concurrent shuffling.
package main

import (
	"fmt"
	"math/rand/v2"
	"sync"

	"oestm"
)

const (
	nKeys   = 64
	nMovers = 8
	nMoves  = 2000
)

func main() {
	tm := oestm.NewOESTM()
	// A linked list and a hash set: Move composes across implementations.
	listSet := oestm.NewLinkedListSet()
	hashSet := oestm.NewHashSet(4)

	init := oestm.NewThread(tm)
	for k := 0; k < nKeys; k++ {
		listSet.Add(init, k)
	}

	var wg sync.WaitGroup
	for m := 0; m < nMovers; m++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			th := oestm.NewThread(tm)
			rng := rand.New(rand.NewPCG(seed, 99))
			for i := 0; i < nMoves; i++ {
				k := int(rng.IntN(nKeys))
				if rng.IntN(2) == 0 {
					oestm.Move(th, listSet, hashSet, k)
				} else {
					oestm.Move(th, hashSet, listSet, k)
				}
			}
		}(uint64(m + 1))
	}
	wg.Wait()

	// Atomic cross-structure audit: count every key exactly once using a
	// composed read-only transaction spanning both sets.
	th := oestm.NewThread(tm)
	total, doubled := 0, 0
	err := th.Atomic(oestm.Regular, func(oestm.Tx) error {
		total, doubled = 0, 0
		for k := 0; k < nKeys; k++ {
			inList, inHash := listSet.Contains(th, k), hashSet.Contains(th, k)
			if inList && inHash {
				doubled++
			}
			if inList || inHash {
				total++
			}
		}
		return nil
	})
	if err != nil {
		panic(err)
	}

	fmt.Printf("%d movers x %d moves between a linked list and a hash set\n", nMovers, nMoves)
	fmt.Printf("keys present: %d/%d, duplicated: %d\n", total, nKeys, doubled)
	if total == nKeys && doubled == 0 {
		fmt.Println("OK: moves were atomic — no key lost or duplicated")
	} else {
		fmt.Println("FAILURE: conservation violated")
	}
}
