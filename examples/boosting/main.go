// boosting: the paper's §VIII analysis made executable. Transactional
// boosting runs operations eagerly on a linearizable base object under
// abstract per-key locks with compensating undo operations. As published
// it does not compose — but, as the paper remarks, "passing abstract
// locks from the child to the parent transaction would make transactional
// boosting satisfy outheritance and therefore provide composition".
//
// This example races the Fig. 1 composition (insertIfAbsent) over boosted
// sets in both configurations and shows that commuting operations never
// conflict — the boosting advantage elastic transactions cannot offer.
package main

import (
	"fmt"
	"sync"

	"oestm/internal/boost"
)

const (
	x = 1
	y = 2
)

// staged runs the deterministic Fig. 1 interleaving over boosted sets:
// an adversary inserts y exactly between the composition's contains(y)
// and insert(x). Without lock passing the adversary slips in (the y lock
// was released when the contains child committed) and the composition
// commits a stale decision; with outheritance the adversary blocks on
// the outherited lock and gives up.
func staged(tm *boost.TM) (violated bool) {
	th := tm.NewThread()
	s := boost.NewSet(tm)
	_ = th.Atomic(func(*boost.Tx) error {
		absent := !s.Contains(th, y) // child 1
		done := make(chan struct{})
		go func() {
			defer close(done)
			adv := tm.NewThread()
			adv.MaxRetries = 64 // gives up if the lock is still held
			s.Add(adv, y)
		}()
		<-done
		if absent {
			s.Add(th, x) // child 2
		}
		return nil
	})
	return s.Contains(th, x) && s.Contains(th, y)
}

func main() {
	fmt.Println("Transactional boosting (§VIII): staged Fig. 1 interleaving over boosted sets")

	fmt.Printf("without lock passing: violated=%v\n", staged(boost.New(false)))
	fmt.Printf("with outheritance:    violated=%v\n", staged(boost.New(true)))

	// Commuting operations: distinct keys never conflict under boosting,
	// regardless of how many threads hammer the same set.
	tm := boost.New(true)
	s := boost.NewSet(tm)
	var wg sync.WaitGroup
	conflicts := 0
	var mu sync.Mutex
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(base int) {
			defer wg.Done()
			th := tm.NewThread()
			th.MaxRetries = 1
			for i := 0; i < 500; i++ {
				if err := th.Atomic(func(tx *boost.Tx) error {
					s.Add(th, base*10000+i)
					return nil
				}); err != nil {
					mu.Lock()
					conflicts++
					mu.Unlock()
				}
			}
		}(g)
	}
	wg.Wait()
	fmt.Printf("commuting adds from 8 threads: %d conflicts (abstract locks are per key)\n", conflicts)

	if conflicts == 0 {
		fmt.Println("OK: outheritance composes boosting; commutativity is preserved")
	} else {
		fmt.Println("NOTE: see counts above")
	}
}
