// insertifabsent: the paper's introductory scenario (Fig. 1). Composes
// contains(y) and add(x) into an atomic insertIfAbsent(x, y) and races it
// against concurrent inserters of y, verifying the invariant that x is
// never inserted when the composition observed y — under OE-STM the
// composition is atomic, so the commit-order oracle never fires.
package main

import (
	"fmt"
	"sync"

	"oestm"
)

const (
	x      = 4242
	y      = 1717
	rounds = 3000
)

func main() {
	tm := oestm.NewOESTM()
	violations := 0

	for round := 0; round < rounds; round++ {
		set := oestm.NewSkipListSet()
		var wg sync.WaitGroup
		var adversarySawX bool

		wg.Add(2)
		go func() {
			defer wg.Done()
			th := oestm.NewThread(tm)
			oestm.InsertIfAbsent(th, set, x, y)
		}()
		go func() {
			defer wg.Done()
			th := oestm.NewThread(tm)
			// The adversary inserts y and observes x in one transaction,
			// which pins its serialisation order against the composition.
			_ = th.Atomic(oestm.Elastic, func(oestm.Tx) error {
				set.Add(th, y)
				adversarySawX = set.Contains(th, x)
				return nil
			})
		}()
		wg.Wait()

		// If the adversary did not see x, it serialised first; the
		// composition then saw y present and must not have inserted x.
		th := oestm.NewThread(tm)
		if !adversarySawX && set.Contains(th, x) {
			violations++
		}
	}

	fmt.Printf("insertIfAbsent raced %d rounds: %d atomicity violations\n", rounds, violations)
	if violations == 0 {
		fmt.Println("OK: outheritance kept the composition atomic")
	} else {
		fmt.Println("FAILURE: composition broke atomicity")
	}
}
