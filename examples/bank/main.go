// bank: composed transfers with a concurrent invariant audit. Accounts
// live in a transactional SkipListMap; Transfer is a Get/Put composition
// (atomic through outheritance), and auditors repeatedly sum every
// balance in one whole-map transaction. Money is conserved at every
// audit — the property the harness's `bank` scenario measures across all
// engines (go run ./cmd/compose-bench -scenario bank).
package main

import (
	"fmt"
	"math/rand/v2"
	"sync"
	"sync/atomic"

	"oestm"
)

const (
	accounts       = 16
	initialBalance = 1000
	tellers        = 6
	auditors       = 2
	transfers      = 3000
)

func main() {
	tm := oestm.NewOESTM()
	bank := oestm.NewSkipListMap()

	init := oestm.NewThread(tm)
	for i := 0; i < accounts; i++ {
		bank.Put(init, i, initialBalance)
	}
	const expected = accounts * initialBalance

	var done atomic.Bool
	var badAudits atomic.Uint64
	var audits atomic.Uint64
	var auditWg, tellerWg sync.WaitGroup

	for a := 0; a < auditors; a++ {
		auditWg.Add(1)
		go func() {
			defer auditWg.Done()
			th := oestm.NewThread(tm)
			for !done.Load() {
				if bank.SumInt(th) != expected {
					badAudits.Add(1)
				}
				audits.Add(1)
			}
		}()
	}

	for g := 0; g < tellers; g++ {
		tellerWg.Add(1)
		go func(seed uint64) {
			defer tellerWg.Done()
			th := oestm.NewThread(tm)
			rng := rand.New(rand.NewPCG(seed, 42))
			for i := 0; i < transfers; i++ {
				from := rng.IntN(accounts)
				to := rng.IntN(accounts - 1)
				if to >= from {
					to++
				}
				bank.Transfer(th, from, to, 1+rng.IntN(100))
			}
		}(uint64(g + 1))
	}
	tellerWg.Wait()
	done.Store(true)
	auditWg.Wait()

	total := bank.SumInt(init)
	fmt.Printf("%d tellers x %d transfers over %d accounts, %d concurrent audits\n",
		tellers, transfers, accounts, audits.Load())
	fmt.Printf("inconsistent audits: %d, final total: %d (expected %d)\n",
		badAudits.Load(), total, expected)
	if badAudits.Load() == 0 && total == expected {
		fmt.Println("OK: every transfer was atomic — money conserved at every audit")
	} else {
		fmt.Println("FAILURE: conservation violated")
	}
}
