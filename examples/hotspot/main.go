// hotspot: a contention-management × key-distribution sweep. The PR 3
// contention policies only separate under hot-key pressure, so this
// example drives the bank scenario (Get/Put transfer compositions on a
// SkipListMap) under uniform key choice and under a 90/10 hotspot (90%
// of transfers drawn from 10% of the accounts), comparing the aggressive
// and adaptive policies' throughput and tail latency. The interesting
// cell is the hotspot p99: aggressive retries into the same hot locks
// immediately, adaptive backs off as its abort streak grows.
//
// This is the example form of:
//
//	go run ./cmd/compose-bench -scenario bank -cm aggressive,adaptive -dist uniform,hotspot -hot 90/10
package main

import (
	"fmt"
	"time"

	"oestm/internal/harness"
	"oestm/internal/workload"
)

func main() {
	eng, _ := harness.EngineByName("oestm")
	cfg := workload.DefaultScenarioConfig()
	results := harness.ScenarioSweep(harness.ScenarioSweepConfig{
		Scenario: "bank",
		Threads:  []int{8},
		Duration: 500 * time.Millisecond,
		Warmup:   100 * time.Millisecond,
		Engines:  []harness.Engine{eng},
		CMs:      []string{"aggressive", "adaptive"},
		Dists: []workload.DistConfig{
			{Name: workload.DistUniform},
			{Name: workload.DistHotspot, HotOpsPct: 90, HotKeysPct: 10},
		},
		Workload: cfg,
	})

	fmt.Println("bank transfers, 8 threads, oestm — policy × distribution:")
	fmt.Printf("%-14s %-16s %10s %8s %8s %8s\n", "cm", "dist", "ops/ms", "abort%", "p50us", "p99us")
	for _, r := range results {
		fmt.Printf("%-14s %-16s %10.1f %8.2f %8.1f %8.1f\n",
			r.CM, r.Dist, r.OpsPerMs, r.AbortRate,
			float64(r.LatP50)/1e3, float64(r.LatP99)/1e3)
		if r.Violations != 0 {
			fmt.Printf("FAILURE: %d invariant violations under cm=%s dist=%s\n", r.Violations, r.CM, r.Dist)
			return
		}
	}
	fmt.Println("OK: money conserved in every cell; compare the hotspot rows' p99")
}
