// server: the serving stack end to end in one process — start a
// compose-server (OE-STM engine, adaptive contention management, 16
// shards) on a loopback port, drive it with the closed-loop load
// generator under a 90/10 hotspot (90% of requests target 10% of the
// keys), print the standard harness table, and drain gracefully.
//
// This is the example form of:
//
//	compose-server -engine oestm -cm adaptive &
//	compose-load -addr localhost:7461 -conns 4 -dist hotspot -hot 90/10 -duration 1s
package main

import (
	"context"
	"fmt"
	"os"
	"time"

	"oestm/internal/harness"
	"oestm/internal/server"
	"oestm/internal/workload"
)

func main() {
	eng, _ := harness.EngineByName("oestm")
	srv, err := server.New(server.Config{
		Addr:   "127.0.0.1:0",
		Engine: eng.Name,
		NewTM:  eng.New,
		Shards: 16,
		CM:     "adaptive",
	})
	if err != nil {
		fail(err)
	}
	if err := srv.Start(); err != nil {
		fail(err)
	}
	fmt.Println("server: engine=oestm cm=adaptive shards=16 on", srv.Addr())

	result, err := harness.RunLoad(harness.LoadConfig{
		Addr:     srv.Addr().String(),
		Conns:    4,
		Duration: 800 * time.Millisecond,
		Warmup:   150 * time.Millisecond,
		Keys:     2048,
		Dist:     workload.DistConfig{Name: workload.DistHotspot, HotOpsPct: 90, HotKeysPct: 10},
	})
	if err != nil {
		fail(err)
	}
	fmt.Println(harness.FormatScenario([]harness.Result{result}, harness.LoadScenario))

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fail(fmt.Errorf("drain incomplete: %w", err))
	}

	switch {
	case result.Ops == 0 || result.OpsPerMs <= 0:
		fail(fmt.Errorf("no throughput measured: %+v", result))
	case result.LatP50 <= 0 || result.LatP99 < result.LatP50:
		fail(fmt.Errorf("latency columns inconsistent: %+v", result))
	case result.Engine != "oestm" || result.CM != "adaptive" || result.Violations != 0:
		fail(fmt.Errorf("identity columns wrong: %+v", result))
	}
	fmt.Printf("OK: %s over the wire at %.1f ops/ms, p50 %v, p99 %v, drained cleanly\n",
		result.Dist, result.OpsPerMs, result.LatP50, result.LatP99)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "server example:", err)
	os.Exit(1)
}
