// Quickstart: the basic OE-STM workflow — create an engine, bind a
// per-goroutine Thread, use the composable e.e.c sets, write an atomic
// region of your own, and compose everything.
package main

import (
	"fmt"

	"oestm"
)

func main() {
	// An engine and a per-goroutine transactional context.
	tm := oestm.NewOESTM()
	th := oestm.NewThread(tm)

	// The e.e.c sets: every operation is atomic; the elementary ones run
	// as elastic transactions under OE-STM.
	set := oestm.NewLinkedListSet()
	fmt.Println("add 1:", set.Add(th, 1))
	fmt.Println("add 1 again:", set.Add(th, 1))
	fmt.Println("contains 1:", set.Contains(th, 1))

	// Bulk operations are compositions of the elementary ones — same
	// code as the sequential world, atomic as a whole (Fig. 5).
	set.AddAll(th, []int{2, 3, 4})
	fmt.Println("after AddAll:", set.Elements(th))
	set.RemoveAll(th, []int{1, 3})
	fmt.Println("after RemoveAll:", set.Elements(th))

	// Raw transactional variables for your own structures.
	balance := oestm.NewVar(100)
	err := th.Atomic(oestm.Regular, func(tx oestm.Tx) error {
		b := oestm.Read[int](tx, balance)
		tx.Write(balance, b+42)
		return nil
	})
	if err != nil {
		panic(err)
	}
	_ = th.Atomic(oestm.Regular, func(tx oestm.Tx) error {
		fmt.Println("balance:", oestm.Read[int](tx, balance))
		return nil
	})

	// Composition: an Atomic region that invokes set operations makes
	// them nested children — the whole block is one atomic step.
	_ = th.Atomic(oestm.Elastic, func(tx oestm.Tx) error {
		if !set.Contains(th, 10) {
			set.Add(th, 10)
			set.Add(th, 11)
		}
		return nil
	})
	fmt.Println("after composed region:", set.Elements(th))

	// The same set can also be driven by the classic baselines — the
	// structures are engine-agnostic.
	tl2 := oestm.NewTL2()
	th2 := oestm.NewThread(tl2)
	set2 := oestm.NewSkipListSet()
	set2.AddAll(th2, []int{7, 5, 6})
	fmt.Println("skiplist under TL2:", set2.Elements(th2))
}
