// pipeline: a producer/stage/consumer pipeline over two transactional
// queues. Producers draw sequence numbers from a transactional counter
// and enqueue them in the same transaction; the stage moves items between
// the queues with Queue.MoveTo (a Dequeue/Enqueue composition across two
// structures); consumers dequeue and count in one transaction. The
// conservation invariant produced = consumed + in-flight holds at every
// atomic snapshot — the property the harness's `pipeline` scenario
// measures across all engines (go run ./cmd/compose-bench -scenario
// pipeline).
package main

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"oestm"
)

const (
	producers = 3
	stages    = 2
	consumers = 3
	items     = 2000 // per producer
)

func main() {
	tm := oestm.NewOESTM()
	q1, q2 := oestm.NewQueue(), oestm.NewQueue()
	var produced, consumed oestm.Int

	var wg sync.WaitGroup
	var stop atomic.Bool
	var badAudits, audits atomic.Uint64

	// Auditor: one atomic snapshot across both queues and both counters.
	wg.Add(1)
	go func() {
		defer wg.Done()
		th := oestm.NewThread(tm)
		for !stop.Load() {
			var p, c, inFlight int64
			_ = th.Atomic(oestm.Regular, func(tx oestm.Tx) error {
				p = oestm.ReadInt(tx, &produced)
				c = oestm.ReadInt(tx, &consumed)
				inFlight = int64(q1.Len(th) + q2.Len(th))
				return nil
			})
			if p != c+inFlight {
				badAudits.Add(1)
			}
			audits.Add(1)
		}
	}()

	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			th := oestm.NewThread(tm)
			for i := 0; i < items; i++ {
				_ = th.Atomic(oestm.Regular, func(tx oestm.Tx) error {
					n := oestm.ReadInt(tx, &produced)
					q1.Enqueue(th, int(n)+1)
					oestm.WriteInt(tx, &produced, n+1)
					return nil
				})
			}
		}()
	}
	for s := 0; s < stages; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			th := oestm.NewThread(tm)
			for !stop.Load() {
				q1.MoveTo(th, q2)
			}
		}()
	}
	var consumedCount atomic.Uint64
	for c := 0; c < consumers; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			th := oestm.NewThread(tm)
			for !stop.Load() {
				var got bool
				_ = th.Atomic(oestm.Regular, func(tx oestm.Tx) error {
					got = false
					if _, ok := q2.Dequeue(th); !ok {
						return nil
					}
					oestm.WriteInt(tx, &consumed, oestm.ReadInt(tx, &consumed)+1)
					got = true
					return nil
				})
				if got {
					consumedCount.Add(1)
				}
			}
		}()
	}

	// Let the pipeline drain, then stop the open-ended workers.
	for consumedCount.Load() < producers*items {
		time.Sleep(time.Millisecond)
	}
	stop.Store(true)
	wg.Wait()

	th := oestm.NewThread(tm)
	p, c := produced.Load(), consumed.Load()
	left := q1.Len(th) + q2.Len(th)
	fmt.Printf("%d producers x %d items through a 2-stage pipeline, %d audits\n",
		producers, items, audits.Load())
	fmt.Printf("produced=%d consumed=%d in-flight=%d, inconsistent audits: %d\n",
		p, c, left, badAudits.Load())
	if badAudits.Load() == 0 && p == c+int64(left) && left == 0 {
		fmt.Println("OK: every stage was atomic — items conserved at every audit")
	} else {
		fmt.Println("FAILURE: conservation violated")
	}
}
