package oestm_test

import (
	"errors"
	"testing"

	"oestm"
)

// TestFacadeEngines checks every public constructor produces the engine
// it names.
func TestFacadeEngines(t *testing.T) {
	cases := map[string]oestm.TM{
		"oestm":         oestm.NewOESTM(),
		"estm":          oestm.NewESTM(),
		"oestm-regular": oestm.NewRegularOnlySTM(),
		"tl2":           oestm.NewTL2(),
		"lsa":           oestm.NewLSA(),
		"swisstm":       oestm.NewSwissTM(),
	}
	for want, tm := range cases {
		if tm.Name() != want {
			t.Fatalf("constructor for %q built %q", want, tm.Name())
		}
	}
	if oestm.NewRegularOnlySTM().SupportsElastic() {
		t.Fatal("regular-only engine must not claim elastic support")
	}
}

func TestFacadeCollections(t *testing.T) {
	tm := oestm.NewOESTM()
	th := oestm.NewThread(tm)
	for _, s := range []oestm.Set{
		oestm.NewLinkedListSet(),
		oestm.NewSkipListSet(),
		oestm.NewHashSet(4),
		oestm.NewHashSetForLoad(2048),
	} {
		if !s.Add(th, 1) || !s.Contains(th, 1) || !s.Remove(th, 1) {
			t.Fatalf("%s: basic ops broken", s.Name())
		}
	}
}

func TestFacadeVarsAndAtomic(t *testing.T) {
	tm := oestm.NewOESTM()
	th := oestm.NewThread(tm)
	v := oestm.NewVar(10)
	err := th.Atomic(oestm.Regular, func(tx oestm.Tx) error {
		n := oestm.Read[int](tx, v)
		tx.Write(v, n*2)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = th.Atomic(oestm.Elastic, func(tx oestm.Tx) error {
		if got := oestm.Read[int](tx, v); got != 20 {
			t.Errorf("v = %d, want 20", got)
		}
		return nil
	})
}

func TestFacadeConflictRetry(t *testing.T) {
	tm := oestm.NewOESTM()
	th := oestm.NewThread(tm)
	attempts := 0
	err := th.Atomic(oestm.Regular, func(tx oestm.Tx) error {
		attempts++
		if attempts == 1 {
			oestm.Conflict("try again")
		}
		return nil
	})
	if err != nil || attempts != 2 {
		t.Fatalf("err=%v attempts=%d", err, attempts)
	}
	th.MaxRetries = 1
	err = th.Atomic(oestm.Regular, func(tx oestm.Tx) error {
		oestm.Conflict("always")
		return nil
	})
	if !errors.Is(err, oestm.ErrConflict) {
		t.Fatalf("err = %v, want ErrConflict", err)
	}
}

func TestFacadeMapAndQueue(t *testing.T) {
	tm := oestm.NewOESTM()
	th := oestm.NewThread(tm)
	m := oestm.NewSkipListMap()
	if !m.PutIfAbsent(th, 1, "v") || m.Size(th) != 1 {
		t.Fatal("facade map broken")
	}
	q := oestm.NewQueue()
	q.Enqueue(th, 7)
	if v, ok := q.Dequeue(th); !ok || v != 7 {
		t.Fatal("facade queue broken")
	}
}

func TestFacadeCompositionHelpers(t *testing.T) {
	tm := oestm.NewOESTM()
	th := oestm.NewThread(tm)
	a, b := oestm.NewLinkedListSet(), oestm.NewSkipListSet()
	if !oestm.InsertIfAbsent(th, a, 1, 2) {
		t.Fatal("InsertIfAbsent failed")
	}
	if !oestm.Move(th, a, b, 1) {
		t.Fatal("Move failed")
	}
	if a.Contains(th, 1) || !b.Contains(th, 1) {
		t.Fatal("Move did not transfer")
	}
}
