// Package obs is the serving system's observability plane: an admin
// HTTP server (off by default; compose-server -admin-addr) that turns
// the existing allocation-free telemetry into operator-facing surfaces
// without touching the request path's allocation budgets.
//
// Endpoints:
//
//	/metrics       Prometheus text exposition of the full stats payload:
//	               per-opcode request counts and latency histograms
//	               (log-bucketed stats.Histogram re-bucketed exactly onto
//	               power-of-two le boundaries), abort counters by cause
//	               and engine, WAL / speculation / hot-key counters, the
//	               per-shard telemetry block, and Go runtime gauges.
//	/stats         The binary wire.StatsPayload over HTTP, so tooling can
//	               scrape without speaking the TCP wire protocol.
//	/debug/aborts  The abort flight recorder's ring contents as JSON —
//	               the last sampled abort events {opcode, cause, shard,
//	               attempts, latency}, drained on read.
//	/debug/pprof/  net/http/pprof profiles (explicitly wired; the admin
//	               server never touches http.DefaultServeMux).
//
// Consistency semantics: every /metrics and /stats response is one call
// to the server's merged-stats snapshot, the same merge the OpStats wire
// opcode serves — scraping over HTTP and over the wire protocol observe
// the same monotone counters, so mixing the two (or diffing consecutive
// scrapes of either) is sound. A scrape is atomic per connection, not
// across connections: the merge locks each connection's stats in turn,
// so two counters from different connections may be skewed by the
// requests that landed mid-merge. Series derived from one counter are
// internally exact (histogram bucket/sum/count triples come from one
// locked snapshot per connection).
package obs
