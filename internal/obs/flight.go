package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"oestm/internal/stm"
	"oestm/internal/wire"
)

// The abort flight recorder: a fixed-size, lock-cheap ring of recent
// abort events, the live diagnostic behind /debug/aborts. Writers are
// request-path goroutines, so the write side is built to cost almost
// nothing: each connection records through its own Ring handle (handles
// spread round-robin over a small set of rings), a write is one
// uncontended mutex acquisition and a fixed-size struct store — no
// allocation, ever — and a full ring overwrites its oldest event rather
// than blocking or growing. The sampling policy is therefore "every
// abort-suffering request, keep the most recent ringEvents per ring":
// drains see the freshest window of abort activity, and the dropped
// counter says how much history the window lost.

// flightRings is how many independent rings spread writer contention.
const flightRings = 8

// ringEvents is each ring's capacity; the recorder retains at most
// flightRings*ringEvents events between drains.
const ringEvents = 64

// AbortEvent is one sampled abort-suffering request. Attempts is how
// many aborted transaction attempts the request suffered before its
// outcome; Latency is the request's full service time (the same
// measurement the per-opcode histograms record); Shard is where the
// request's first key routes, matching the per-shard abort attribution.
type AbortEvent struct {
	Seq      uint64
	Op       wire.Op
	Cause    stm.ConflictCause
	Shard    int32
	Attempts uint32
	Latency  time.Duration
}

// flightRing is one ring: a mutex, a fixed event array, and a write
// cursor. n is how many slots hold undrained events.
type flightRing struct {
	mu  sync.Mutex
	n   int
	w   int
	buf [ringEvents]AbortEvent
}

// FlightRecorder owns the rings and the global sequence. One per
// server; hand each writer goroutine a Ring.
type FlightRecorder struct {
	seq      atomic.Uint64
	recorded atomic.Uint64
	dropped  atomic.Uint64
	next     atomic.Uint32
	rings    [flightRings]flightRing
}

// NewFlightRecorder builds an empty recorder.
func NewFlightRecorder() *FlightRecorder { return &FlightRecorder{} }

// Ring hands out a write handle. Handles spread round-robin over the
// rings, so a server with more connections than rings shares each ring
// between a few writers — still effectively uncontended, since writes
// only happen on aborts and hold the mutex for a struct store.
func (r *FlightRecorder) Ring() *Ring {
	i := r.next.Add(1) - 1
	return &Ring{rec: r, ring: &r.rings[i%flightRings]}
}

// Ring is one writer's handle (nil-safe: a nil Ring drops the event).
type Ring struct {
	rec  *FlightRecorder
	ring *flightRing
}

// Record appends one abort event, overwriting the ring's oldest if no
// drain has made room. Counter-increment-and-store only — the request
// path's allocation pins include it.
func (w *Ring) Record(op wire.Op, cause stm.ConflictCause, shard int, attempts uint32, latency time.Duration) {
	if w == nil {
		return
	}
	seq := w.rec.seq.Add(1)
	w.rec.recorded.Add(1)
	r := w.ring
	r.mu.Lock()
	if r.n == ringEvents {
		w.rec.dropped.Add(1)
	} else {
		r.n++
	}
	r.buf[r.w] = AbortEvent{Seq: seq, Op: op, Cause: cause, Shard: int32(shard), Attempts: attempts, Latency: latency}
	if r.w++; r.w == ringEvents {
		r.w = 0
	}
	r.mu.Unlock()
}

// Drain copies out and clears every ring's undrained events, ordered by
// recording sequence. Each scrape of /debug/aborts sees only events
// recorded since the previous scrape.
func (r *FlightRecorder) Drain() []AbortEvent {
	var out []AbortEvent
	for i := range r.rings {
		g := &r.rings[i]
		g.mu.Lock()
		for j := 0; j < g.n; j++ {
			out = append(out, g.buf[(g.w-g.n+j+ringEvents)%ringEvents])
		}
		g.n, g.w = 0, 0
		g.mu.Unlock()
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Seq < out[b].Seq })
	return out
}

// Counters returns how many events were ever recorded and how many were
// overwritten before a drain could read them.
func (r *FlightRecorder) Counters() (recorded, dropped uint64) {
	return r.recorded.Load(), r.dropped.Load()
}
