package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	"oestm/internal/wire"
)

// AdminConfig parameterises the admin server.
type AdminConfig struct {
	// Addr is the HTTP listen address (e.g. ":9100", "127.0.0.1:0").
	Addr string
	// Stats fills p with the serving system's merged telemetry —
	// server.Server.Telemetry, the same snapshot the OpStats wire opcode
	// encodes (the scrape-vs-wire consistency contract in the package
	// comment rests on this being the one source).
	Stats func(p *wire.StatsPayload)
	// Recorder, when non-nil, backs /debug/aborts and the
	// compose_abort_events_* series.
	Recorder *FlightRecorder
}

// Admin is the admin HTTP server. Create with NewAdmin, start with
// Start; it owns its own mux — nothing is registered on
// http.DefaultServeMux.
type Admin struct {
	cfg AdminConfig
	ln  net.Listener
	srv *http.Server
}

// NewAdmin builds the admin server (not listening yet).
func NewAdmin(cfg AdminConfig) *Admin {
	a := &Admin{cfg: cfg}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", a.metrics)
	mux.HandleFunc("/stats", a.stats)
	mux.HandleFunc("/debug/aborts", a.aborts)
	// pprof is wired explicitly: importing net/http/pprof registers on
	// the default mux only, which this server deliberately never serves.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", a.index)
	a.srv = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	return a
}

// Start binds the listener and serves in the background.
func (a *Admin) Start() error {
	ln, err := net.Listen("tcp", a.cfg.Addr)
	if err != nil {
		return err
	}
	a.ln = ln
	go a.srv.Serve(ln)
	return nil
}

// Addr returns the bound listen address (useful with ":0").
func (a *Admin) Addr() net.Addr { return a.ln.Addr() }

// Shutdown stops the server, waiting for in-flight requests up to ctx.
func (a *Admin) Shutdown(ctx context.Context) error { return a.srv.Shutdown(ctx) }

// metrics serves the Prometheus text exposition.
func (a *Admin) metrics(w http.ResponseWriter, _ *http.Request) {
	var p wire.StatsPayload
	a.cfg.Stats(&p)
	var b bytes.Buffer
	WriteMetrics(&b, &p, a.cfg.Recorder)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Write(b.Bytes())
}

// stats serves the binary wire.StatsPayload — byte-identical semantics
// to the OpStats wire opcode's response body, without a wire client.
func (a *Admin) stats(w http.ResponseWriter, _ *http.Request) {
	var p wire.StatsPayload
	a.cfg.Stats(&p)
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(wire.AppendStats(nil, &p))
}

// abortsPayload is /debug/aborts' JSON shape.
type abortsPayload struct {
	Engine   string       `json:"engine"`
	Recorded uint64       `json:"recorded"`
	Dropped  uint64       `json:"dropped"`
	Events   []abortEvent `json:"events"`
}

type abortEvent struct {
	Seq       uint64 `json:"seq"`
	Op        string `json:"op"`
	Cause     string `json:"cause"`
	Shard     int32  `json:"shard"`
	Attempts  uint32 `json:"attempts"`
	LatencyNS int64  `json:"latency_ns"`
}

// aborts drains the flight recorder and serves the events as JSON. A
// scrape consumes what it reads: consecutive scrapes see disjoint
// windows of abort activity.
func (a *Admin) aborts(w http.ResponseWriter, _ *http.Request) {
	out := abortsPayload{Events: []abortEvent{}}
	if a.cfg.Stats != nil {
		var p wire.StatsPayload
		a.cfg.Stats(&p)
		out.Engine = p.Engine
	}
	if a.cfg.Recorder != nil {
		out.Recorded, out.Dropped = a.cfg.Recorder.Counters()
		for _, ev := range a.cfg.Recorder.Drain() {
			out.Events = append(out.Events, abortEvent{
				Seq:       ev.Seq,
				Op:        ev.Op.String(),
				Cause:     ev.Cause.Slug(),
				Shard:     ev.Shard,
				Attempts:  ev.Attempts,
				LatencyNS: int64(ev.Latency),
			})
		}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(out)
}

// index lists the endpoints.
func (a *Admin) index(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Write([]byte("compose-server admin\n\n" +
		"/metrics       Prometheus exposition\n" +
		"/stats         binary stats payload\n" +
		"/debug/aborts  abort flight recorder (JSON, drained on read)\n" +
		"/debug/pprof/  Go profiles\n"))
}
