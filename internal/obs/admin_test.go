package obs

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"oestm/internal/stm"
	"oestm/internal/wire"
)

// TestAdminEndpoints exercises the admin server end to end over a real
// listener: /metrics serves the exposition of the Stats callback's
// payload, /stats round-trips the binary payload, /debug/aborts drains
// the recorder, and pprof's index answers.
func TestAdminEndpoints(t *testing.T) {
	rec := NewFlightRecorder()
	a := NewAdmin(AdminConfig{
		Addr:     "127.0.0.1:0",
		Stats:    func(p *wire.StatsPayload) { *p = *goldenPayload() },
		Recorder: rec,
	})
	if err := a.Start(); err != nil {
		t.Fatal(err)
	}
	defer a.Shutdown(context.Background())
	base := "http://" + a.Addr().String()

	get := func(path string) (string, []byte) {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: read: %v", path, err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d: %s", path, resp.StatusCode, body)
		}
		return resp.Header.Get("Content-Type"), body
	}

	ct, body := get("/metrics")
	if !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("/metrics content type %q", ct)
	}
	if !strings.Contains(string(body), "compose_commits_total 10001") {
		t.Fatalf("/metrics missing payload series:\n%s", body)
	}

	_, body = get("/stats")
	var p wire.StatsPayload
	if err := p.Decode(body); err != nil {
		t.Fatalf("/stats body does not decode: %v", err)
	}
	if p.Commits != 10001 || len(p.ShardStats) != 4 {
		t.Fatalf("/stats decoded commits=%d shards=%d", p.Commits, len(p.ShardStats))
	}

	rec.Ring().Record(wire.OpCompareAndMove, stm.CauseLockBusy, 3, 2, 5*time.Millisecond)
	ct, body = get("/debug/aborts")
	if !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("/debug/aborts content type %q", ct)
	}
	var ab abortsPayload
	if err := json.Unmarshal(body, &ab); err != nil {
		t.Fatalf("/debug/aborts not JSON: %v\n%s", err, body)
	}
	if ab.Engine != "oestm" || ab.Recorded != 1 || len(ab.Events) != 1 {
		t.Fatalf("/debug/aborts = %+v", ab)
	}
	ev := ab.Events[0]
	if ev.Op != wire.OpCompareAndMove.String() || ev.Cause != stm.CauseLockBusy.Slug() ||
		ev.Shard != 3 || ev.Attempts != 2 || ev.LatencyNS != int64(5*time.Millisecond) {
		t.Fatalf("/debug/aborts event = %+v", ev)
	}
	_, body = get("/debug/aborts")
	if err := json.Unmarshal(body, &ab); err != nil || len(ab.Events) != 0 {
		t.Fatalf("second scrape should be drained, got %s", body)
	}

	_, body = get("/debug/pprof/")
	if !strings.Contains(string(body), "goroutine") {
		t.Fatalf("pprof index unexpected:\n%s", body)
	}

	_, body = get("/")
	if !strings.Contains(string(body), "/metrics") {
		t.Fatalf("index unexpected:\n%s", body)
	}
}
