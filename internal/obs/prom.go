package obs

import (
	"bytes"
	"fmt"
	"runtime"
	"strconv"
	"strings"

	"oestm/internal/stats"
	"oestm/internal/stm"
	"oestm/internal/wire"
)

// Prometheus text-format exposition of the stats payload. Series names
// and label sets are a stable API (the golden test pins them); every
// series maps to one source counter in the payload — see the metric map
// in ARCHITECTURE.md's observability section.
//
// Latency histograms re-bucket the log-bucketed stats.Histogram onto
// power-of-two le boundaries, 2^8ns (256ns) through 2^30ns (~1.07s).
// The conversion is exact, not approximate: the source buckets subdivide
// octaves and never straddle a power of two, so the cumulative count at
// boundary 2^k is exactly the number of samples <= 2^k-1 ns (the
// boundary's nominal value overshoots that edge by a single nanosecond —
// below any latency resolution that matters). _sum and _count are exact
// too: the histogram carries an unbucketed sum.

// promExpLo/promExpHi are the exponents of the first and last finite le
// boundary (nanoseconds).
const (
	promExpLo = 8
	promExpHi = 30
)

// promLE is the precomputed le label value of each boundary, in seconds
// (powers of two have exact finite decimal forms, so the labels are
// exact).
var promLE = func() []string {
	out := make([]string, 0, promExpHi-promExpLo+1)
	for e := promExpLo; e <= promExpHi; e++ {
		out = append(out, strconv.FormatFloat(float64(uint64(1)<<e)/1e9, 'g', -1, 64))
	}
	return out
}()

// seconds renders a nanosecond total as an exact decimal seconds value.
func seconds(ns uint64) string {
	return fmt.Sprintf("%d.%09d", ns/1e9, ns%1e9)
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(s string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(s)
}

// head writes one metric family's HELP/TYPE preamble.
func head(b *bytes.Buffer, name, typ, help string) {
	fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// WriteMetrics renders the full /metrics exposition into b: the
// payload-derived series, the flight recorder's counters (rec may be
// nil), and Go runtime/build gauges.
func WriteMetrics(b *bytes.Buffer, p *wire.StatsPayload, rec *FlightRecorder) {
	renderPayload(b, p)
	if rec != nil {
		recorded, dropped := rec.Counters()
		head(b, "compose_abort_events_recorded_total", "counter", "Abort events written to the flight recorder.")
		fmt.Fprintf(b, "compose_abort_events_recorded_total %d\n", recorded)
		head(b, "compose_abort_events_dropped_total", "counter", "Abort events overwritten before a /debug/aborts drain read them.")
		fmt.Fprintf(b, "compose_abort_events_dropped_total %d\n", dropped)
	}
	renderRuntime(b)
}

// renderPayload writes the payload-derived series — a deterministic
// function of p, which is what the golden test renders.
func renderPayload(b *bytes.Buffer, p *wire.StatsPayload) {
	head(b, "compose_server_info", "gauge", "Server identity; constant 1.")
	fmt.Fprintf(b, "compose_server_info{cm=%q,engine=%q,exec=%q} 1\n",
		escapeLabel(p.CM), escapeLabel(p.Engine), escapeLabel(p.Exec))
	head(b, "compose_shards", "gauge", "Store shard count.")
	fmt.Fprintf(b, "compose_shards %d\n", p.Shards)
	head(b, "compose_connections", "gauge", "Currently open client connections.")
	fmt.Fprintf(b, "compose_connections %d\n", p.Conns)

	head(b, "compose_requests_total", "counter", "Requests served, by opcode.")
	for i := range p.Ops {
		fmt.Fprintf(b, "compose_requests_total{op=%q} %d\n", wire.Op(i).String(), p.Ops[i].Count)
	}

	head(b, "compose_request_duration_seconds", "histogram", "Server-side request service time, by opcode.")
	for i := range p.Ops {
		opHist(b, wire.Op(i).String(), &p.Ops[i].Hist)
	}

	head(b, "compose_commits_total", "counter", "Committed transactions.")
	fmt.Fprintf(b, "compose_commits_total %d\n", p.Commits)
	head(b, "compose_aborts_total", "counter", "Aborted transaction attempts, by conflict cause.")
	engine := escapeLabel(p.Engine)
	for i := range p.AbortsByCause {
		fmt.Fprintf(b, "compose_aborts_total{cause=%q,engine=%q} %d\n",
			stm.ConflictCause(i).Slug(), engine, p.AbortsByCause[i])
	}

	head(b, "compose_wal_enabled", "gauge", "Whether a write-ahead log is attached (1) or not (0).")
	enabled := 0
	if p.WALEnabled {
		enabled = 1
	}
	fmt.Fprintf(b, "compose_wal_enabled %d\n", enabled)
	head(b, "compose_wal_appends_total", "counter", "WAL records appended.")
	fmt.Fprintf(b, "compose_wal_appends_total %d\n", p.WALAppends)
	head(b, "compose_wal_syncs_total", "counter", "WAL flush batches fully written.")
	fmt.Fprintf(b, "compose_wal_syncs_total %d\n", p.WALSyncs)
	head(b, "compose_wal_bytes_total", "counter", "Bytes the OS accepted into WAL files.")
	fmt.Fprintf(b, "compose_wal_bytes_total %d\n", p.WALBytes)

	head(b, "compose_spec_batches_total", "counter", "Speculative batches committed.")
	fmt.Fprintf(b, "compose_spec_batches_total %d\n", p.SpecBatches)
	head(b, "compose_spec_execs_total", "counter", "Speculative execution attempts.")
	fmt.Fprintf(b, "compose_spec_execs_total %d\n", p.SpecExecs)
	head(b, "compose_spec_reexecs_total", "counter", "Speculative attempts beyond a transaction's first.")
	fmt.Fprintf(b, "compose_spec_reexecs_total %d\n", p.SpecReexecs)
	head(b, "compose_spec_validation_fails_total", "counter", "Speculative attempts whose read set failed validation.")
	fmt.Fprintf(b, "compose_spec_validation_fails_total %d\n", p.SpecValidationFails)

	head(b, "compose_adds_total", "counter", "Integer deltas applied (Add ops plus MAdd entries), any path.")
	fmt.Fprintf(b, "compose_adds_total %d\n", p.Adds)
	head(b, "compose_boosted_ops_total", "counter", "Deltas that ran on the boosted commutative path.")
	fmt.Fprintf(b, "compose_boosted_ops_total %d\n", p.BoostedOps)
	head(b, "compose_hot_promotions_total", "counter", "Keys promoted to the boosted path.")
	fmt.Fprintf(b, "compose_hot_promotions_total %d\n", p.HotPromotions)
	head(b, "compose_hot_demotions_total", "counter", "Keys demoted (folded back) by absolute operations.")
	fmt.Fprintf(b, "compose_hot_demotions_total %d\n", p.HotDemotions)

	if len(p.ShardStats) > 0 {
		head(b, "compose_shard_ops_total", "counter", "Key-operations routed to the shard.")
		for i := range p.ShardStats {
			fmt.Fprintf(b, "compose_shard_ops_total{shard=\"%d\"} %d\n", i, p.ShardStats[i].Ops)
		}
		head(b, "compose_shard_aborts_total", "counter", "Aborted attempts attributed to the shard.")
		for i := range p.ShardStats {
			fmt.Fprintf(b, "compose_shard_aborts_total{shard=\"%d\"} %d\n", i, p.ShardStats[i].Aborts)
		}
		head(b, "compose_shard_hot_keys", "gauge", "Counters currently promoted to the boosted path, by shard.")
		for i := range p.ShardStats {
			fmt.Fprintf(b, "compose_shard_hot_keys{shard=\"%d\"} %d\n", i, p.ShardStats[i].HotKeys)
		}
		head(b, "compose_shard_wal_bytes_total", "counter", "Bytes the OS accepted into the shard's WAL file.")
		for i := range p.ShardStats {
			fmt.Fprintf(b, "compose_shard_wal_bytes_total{shard=\"%d\"} %d\n", i, p.ShardStats[i].WALBytes)
		}
	}
}

// opHist writes one opcode's bucket/sum/count triple. Each source
// bucket folds into the first boundary at or above its upper edge;
// samples past the last finite boundary appear only in +Inf.
func opHist(b *bytes.Buffer, op string, h *stats.Histogram) {
	var bins [promExpHi - promExpLo + 2]uint64 // +1: past the last boundary
	h.EachBucket(func(maxNS, n uint64) {
		for i := 0; i < len(bins)-1; i++ {
			if maxNS < uint64(1)<<(promExpLo+i) {
				bins[i] += n
				return
			}
		}
		bins[len(bins)-1] += n
	})
	var cum uint64
	for i, le := range promLE {
		cum += bins[i]
		fmt.Fprintf(b, "compose_request_duration_seconds_bucket{le=%q,op=%q} %d\n", le, op, cum)
	}
	fmt.Fprintf(b, "compose_request_duration_seconds_bucket{le=\"+Inf\",op=%q} %d\n", op, h.Count())
	fmt.Fprintf(b, "compose_request_duration_seconds_sum{op=%q} %s\n", op, seconds(h.SumNS()))
	fmt.Fprintf(b, "compose_request_duration_seconds_count{op=%q} %d\n", op, h.Count())
}

// renderRuntime writes Go runtime and build-info gauges (point-in-time,
// not payload-derived — kept out of the golden surface).
func renderRuntime(b *bytes.Buffer) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	head(b, "compose_build_info", "gauge", "Build identity; constant 1.")
	fmt.Fprintf(b, "compose_build_info{go_version=%q} 1\n", escapeLabel(runtime.Version()))
	head(b, "go_goroutines", "gauge", "Live goroutines.")
	fmt.Fprintf(b, "go_goroutines %d\n", runtime.NumGoroutine())
	head(b, "go_gomaxprocs", "gauge", "GOMAXPROCS.")
	fmt.Fprintf(b, "go_gomaxprocs %d\n", runtime.GOMAXPROCS(0))
	head(b, "go_memstats_heap_alloc_bytes", "gauge", "Bytes of allocated heap objects.")
	fmt.Fprintf(b, "go_memstats_heap_alloc_bytes %d\n", ms.HeapAlloc)
	head(b, "go_memstats_heap_objects", "gauge", "Allocated heap objects.")
	fmt.Fprintf(b, "go_memstats_heap_objects %d\n", ms.HeapObjects)
	head(b, "go_memstats_alloc_bytes_total", "counter", "Cumulative bytes allocated for heap objects.")
	fmt.Fprintf(b, "go_memstats_alloc_bytes_total %d\n", ms.TotalAlloc)
	head(b, "go_gc_cycles_total", "counter", "Completed GC cycles.")
	fmt.Fprintf(b, "go_gc_cycles_total %d\n", uint64(ms.NumGC))
	head(b, "go_gc_pause_seconds_total", "counter", "Cumulative GC stop-the-world pause time.")
	fmt.Fprintf(b, "go_gc_pause_seconds_total %s\n", seconds(ms.PauseTotalNs))
}
