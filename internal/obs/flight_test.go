package obs

import (
	"sync"
	"testing"
	"time"

	"oestm/internal/stm"
	"oestm/internal/wire"
)

// TestFlightRecorderDrainOrder: single writer, drains are ordered,
// disjoint, and complete while under capacity.
func TestFlightRecorderDrainOrder(t *testing.T) {
	rec := NewFlightRecorder()
	w := rec.Ring()
	for i := 0; i < 40; i++ {
		w.Record(wire.OpAdd, stm.CauseLockBusy, i%4, 1, time.Duration(i))
	}
	ev := rec.Drain()
	if len(ev) != 40 {
		t.Fatalf("drained %d events, want 40", len(ev))
	}
	for i, e := range ev {
		if e.Seq != uint64(i+1) {
			t.Fatalf("event %d has seq %d, want %d", i, e.Seq, i+1)
		}
		if e.Latency != time.Duration(i) {
			t.Fatalf("event %d has latency %v, want %v", i, e.Latency, time.Duration(i))
		}
	}
	if again := rec.Drain(); len(again) != 0 {
		t.Fatalf("second drain returned %d events, want 0 (drain clears)", len(again))
	}
	if recd, drop := rec.Counters(); recd != 40 || drop != 0 {
		t.Fatalf("counters = (%d, %d), want (40, 0)", recd, drop)
	}
}

// TestFlightRecorderOverwrite: a full ring overwrites oldest and counts
// the loss; the drain returns the freshest window.
func TestFlightRecorderOverwrite(t *testing.T) {
	rec := NewFlightRecorder()
	w := rec.Ring()
	const n = ringEvents + 17
	for i := 0; i < n; i++ {
		w.Record(wire.OpPut, stm.CauseCommitValidation, 0, 2, 0)
	}
	ev := rec.Drain()
	if len(ev) != ringEvents {
		t.Fatalf("drained %d events, want ring capacity %d", len(ev), ringEvents)
	}
	// Freshest window: the surviving events are the n-ringEvents+1 .. n
	// suffix of the sequence.
	if first, last := ev[0].Seq, ev[len(ev)-1].Seq; first != n-ringEvents+1 || last != n {
		t.Fatalf("drained seq window [%d, %d], want [%d, %d]", first, last, n-ringEvents+1, n)
	}
	if recd, drop := rec.Counters(); recd != n || drop != n-ringEvents {
		t.Fatalf("counters = (%d, %d), want (%d, %d)", recd, drop, n, n-ringEvents)
	}
}

// TestFlightRecorderConcurrent hammers the recorder from many writers
// with concurrent drains (run under -race): every drained event must be
// internally consistent, sequences must never duplicate, and the final
// accounting must satisfy drained + dropped + retained == recorded.
func TestFlightRecorderConcurrent(t *testing.T) {
	rec := NewFlightRecorder()
	const writers = 16
	const perWriter = 500

	var mu sync.Mutex
	seen := make(map[uint64]bool)
	var drained uint64
	collect := func(evs []AbortEvent) {
		mu.Lock()
		defer mu.Unlock()
		for _, e := range evs {
			if seen[e.Seq] {
				t.Errorf("sequence %d drained twice", e.Seq)
			}
			seen[e.Seq] = true
			// Writer w stamps op w%NumOps and latency = its loop index;
			// a torn read under contention would mismatch them.
			w := int(e.Shard)
			if e.Op != wire.Op(w%wire.NumOps) || e.Attempts != uint32(w) {
				t.Errorf("torn event: shard %d, op %v, attempts %d", e.Shard, e.Op, e.Attempts)
			}
		}
		drained += uint64(len(evs))
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				collect(rec.Drain())
			}
		}
	}()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ring := rec.Ring()
			for i := 0; i < perWriter; i++ {
				ring.Record(wire.Op(w%wire.NumOps), stm.CauseLockBusy, w, uint32(w), time.Duration(i))
			}
		}(w)
	}
	// Writers finish, then the drainer stops, then one final drain.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	<-time.After(1 * time.Millisecond)
	close(stop)
	<-done
	collect(rec.Drain())

	recorded, dropped := rec.Counters()
	if recorded != writers*perWriter {
		t.Fatalf("recorded %d, want %d", recorded, writers*perWriter)
	}
	if drained+dropped != recorded {
		t.Fatalf("drained %d + dropped %d != recorded %d", drained, dropped, recorded)
	}
}

// TestRingNilSafe: a nil handle drops the event instead of panicking
// (connections on a server without an admin plane have no recorder).
func TestRingNilSafe(t *testing.T) {
	var w *Ring
	w.Record(wire.OpGet, stm.CauseLockBusy, 0, 1, time.Millisecond)
}
