package obs

import (
	"bufio"
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"oestm/internal/wire"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenPayload builds a fully populated, deterministic payload: every
// counter distinct (so a series reading from the wrong field shows), a
// latency histogram with samples straddling several boundaries, and a
// per-shard block.
func goldenPayload() *wire.StatsPayload {
	p := &wire.StatsPayload{
		Engine: "oestm", CM: "adaptive", Shards: 4, Conns: 3,
		Commits: 10001, Aborts: 0,
		WALEnabled: true, WALAppends: 501, WALSyncs: 502, WALBytes: 50003,
		Exec:        "conn",
		SpecBatches: 601, SpecExecs: 602, SpecReexecs: 603, SpecValidationFails: 604,
		Adds: 701, BoostedOps: 702, HotPromotions: 703, HotDemotions: 704,
	}
	for i := range p.AbortsByCause {
		p.AbortsByCause[i] = uint64(11 * (i + 1))
		p.Aborts += p.AbortsByCause[i]
	}
	for i := range p.Ops {
		p.Ops[i].Count = uint64(1000 + i)
		for j := 0; j <= i; j++ {
			// Samples on both sides of several boundaries, including one
			// exactly at a power of two (2^10ns: must count as > the
			// le=1.024e-06 edge — the conversion's 2^k-1 edge semantics)
			// and one past the last finite boundary (only in +Inf).
			p.Ops[i].Hist.Record(time.Duration(200 + 100*j))
			p.Ops[i].Hist.Record(time.Duration(1) << 10)
			p.Ops[i].Hist.Record(time.Duration(j) * 37 * time.Microsecond)
		}
	}
	p.Ops[3].Hist.Record(3 * time.Second) // beyond 2^30ns
	p.Ops[3].Count++
	p.ShardStats = make([]wire.ShardTelemetry, p.Shards)
	for i := range p.ShardStats {
		p.ShardStats[i] = wire.ShardTelemetry{
			Ops: uint64(9000 + i), Aborts: uint64(10 * i),
			HotKeys: uint64(i % 2), WALBytes: uint64(1 << (10 + i)),
		}
	}
	return p
}

// TestMetricsGolden pins the payload-derived exposition byte for byte:
// series names, label sets and value formatting are a stable scrape API.
func TestMetricsGolden(t *testing.T) {
	var b bytes.Buffer
	renderPayload(&b, goldenPayload())
	path := filepath.Join("testdata", "metrics.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, b.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update): %v", err)
	}
	if !bytes.Equal(b.Bytes(), want) {
		t.Fatalf("exposition drifted from golden (regenerate with -update if intended)\ngot:\n%s", b.String())
	}
}

// TestMetricsHistogramConsistency pins the le-conversion contract
// against the source histogram, independent of the golden bytes: per
// opcode, bucket counts are cumulative and non-decreasing, the +Inf
// bucket equals _count equals the histogram's count, the cumulative
// count at each boundary equals the exact number of source samples at
// or below the boundary's 2^k-1 edge, and _sum is the exact source sum.
func TestMetricsHistogramConsistency(t *testing.T) {
	p := goldenPayload()
	var b bytes.Buffer
	renderPayload(&b, p)

	type hseries struct {
		buckets []uint64
		inf     uint64
		sum     string
		count   uint64
	}
	series := map[string]*hseries{}
	get := func(op string) *hseries {
		s := series[op]
		if s == nil {
			s = &hseries{}
			series[op] = s
		}
		return s
	}
	sc := bufio.NewScanner(bytes.NewReader(b.Bytes()))
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "compose_request_duration_seconds_bucket{"):
			var le, op string
			if _, err := fmt.Sscanf(line, "compose_request_duration_seconds_bucket{le=%q,op=%q}", &le, &op); err != nil {
				t.Fatalf("unparseable bucket line %q: %v", line, err)
			}
			v, err := strconv.ParseUint(line[strings.LastIndexByte(line, ' ')+1:], 10, 64)
			if err != nil {
				t.Fatal(err)
			}
			if le == "+Inf" {
				get(op).inf = v
			} else {
				get(op).buckets = append(get(op).buckets, v)
			}
		case strings.HasPrefix(line, "compose_request_duration_seconds_sum{"):
			var op string
			fmt.Sscanf(line, "compose_request_duration_seconds_sum{op=%q}", &op)
			get(op).sum = line[strings.LastIndexByte(line, ' ')+1:]
		case strings.HasPrefix(line, "compose_request_duration_seconds_count{"):
			var op string
			fmt.Sscanf(line, "compose_request_duration_seconds_count{op=%q}", &op)
			v, _ := strconv.ParseUint(line[strings.LastIndexByte(line, ' ')+1:], 10, 64)
			get(op).count = v
		}
	}
	if len(series) != wire.NumOps {
		t.Fatalf("histogram series for %d ops, want %d", len(series), wire.NumOps)
	}
	for i := range p.Ops {
		op := wire.Op(i).String()
		s := series[op]
		h := &p.Ops[i].Hist
		if s == nil {
			t.Fatalf("no histogram series for op %q", op)
		}
		if want := promExpHi - promExpLo + 1; len(s.buckets) != want {
			t.Fatalf("%s: %d finite buckets, want %d", op, len(s.buckets), want)
		}
		var prev uint64
		for bi, v := range s.buckets {
			if v < prev {
				t.Fatalf("%s: bucket %d not cumulative: %d < %d", op, bi, v, prev)
			}
			prev = v
			// Exactness: cumulative count at boundary 2^k equals the
			// source samples <= 2^k-1.
			edge := uint64(1)<<(promExpLo+bi) - 1
			var exact uint64
			h.EachBucket(func(maxNS, n uint64) {
				if maxNS <= edge {
					exact += n
				}
			})
			if v != exact {
				t.Fatalf("%s: bucket le=2^%d = %d, source says %d", op, promExpLo+bi, v, exact)
			}
		}
		if s.inf != h.Count() || s.count != h.Count() {
			t.Fatalf("%s: +Inf=%d count=%d, histogram count=%d", op, s.inf, s.count, h.Count())
		}
		if s.inf < prev {
			t.Fatalf("%s: +Inf %d below last finite bucket %d", op, s.inf, prev)
		}
		if want := seconds(h.SumNS()); s.sum != want {
			t.Fatalf("%s: sum=%s, histogram sum=%s", op, s.sum, want)
		}
	}
}

// TestMetricsKeySeries spot-checks the non-histogram series an operator
// (and the CI smoke) greps for, including the per-shard block and the
// cause/engine abort labels.
func TestMetricsKeySeries(t *testing.T) {
	p := goldenPayload()
	var b bytes.Buffer
	WriteMetrics(&b, p, NewFlightRecorder())
	out := b.String()
	for _, want := range []string{
		`compose_server_info{cm="adaptive",engine="oestm",exec="conn"} 1`,
		`compose_aborts_total{cause="lock_busy",engine="oestm"} 33`,
		`compose_aborts_total{cause="commit_validation",engine="oestm"} 55`,
		"compose_commits_total 10001",
		"compose_wal_bytes_total 50003",
		"compose_spec_validation_fails_total 604",
		"compose_adds_total 701",
		"compose_boosted_ops_total 702",
		"compose_hot_promotions_total 703",
		"compose_hot_demotions_total 704",
		`compose_shard_ops_total{shard="3"} 9003`,
		`compose_shard_aborts_total{shard="2"} 20`,
		`compose_shard_hot_keys{shard="1"} 1`,
		`compose_shard_wal_bytes_total{shard="0"} 1024`,
		"compose_abort_events_recorded_total 0",
		"go_goroutines ",
		`compose_build_info{go_version=`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}
