package cm

import (
	"fmt"
	"time"

	"oestm/internal/stm"
)

// DefaultName is the policy a run uses when none is requested; it matches
// the behaviour of a Thread with no manager installed.
const DefaultName = "passive"

// Names lists the registered policy names, default first — the vocabulary
// of compose-bench's -cm flag.
func Names() []string { return []string{"passive", "aggressive", "adaptive"} }

// New returns a fresh instance of the named policy; ok is false for
// unknown names. Instances are per-thread and must not be shared.
func New(name string) (m stm.ContentionManager, ok bool) {
	switch name {
	case "passive":
		return passive{}, true
	case "aggressive":
		return aggressive{}, true
	case "adaptive":
		return &adaptive{}, true
	default:
		return nil, false
	}
}

// MustNew is New for known-good names; it panics on unknown ones.
func MustNew(name string) stm.ContentionManager {
	m, ok := New(name)
	if !ok {
		panic(fmt.Sprintf("cm: unknown contention-management policy %q", name))
	}
	return m
}

// passive is the default policy: the same randomised exponential backoff
// schedule the driver applies when no manager is installed (single source:
// stm.PassiveDecision), made explicit so sweeps can name it.
type passive struct{}

func (passive) OnAbort(th *stm.Thread, _ stm.ConflictCause, attempt int) stm.Decision {
	return stm.PassiveDecision(th, attempt)
}

func (passive) OnCommit(*stm.Thread) {}

// aggressive retries immediately on every abort: the zero Decision.
type aggressive struct{}

func (aggressive) OnAbort(*stm.Thread, stm.ConflictCause, int) stm.Decision {
	return stm.Decision{}
}

func (aggressive) OnCommit(*stm.Thread) {}

// Escalation thresholds of the adaptive policy, in consecutive aborts
// since the last commit.
const (
	adaptiveSpinStreak  = 2  // streaks ≤ this spin (validation conflicts)
	adaptiveYieldStreak = 6  // streaks ≤ this yield; beyond, sleep
	adaptiveMaxShift    = 10 // caps the sleep at ~1ms, as in passive
)

// adaptive escalates spin → yield → sleep as aborts accumulate, keyed on
// the streak of consecutive aborts since the thread's last commit (a
// better congestion signal than the per-call attempt counter: a thread
// whose every Atomic call loses once is contending even though each call
// only ever reaches attempt 0). The abort's cause picks the starting
// rung — see the package comment.
type adaptive struct {
	streak int
}

func (a *adaptive) OnAbort(th *stm.Thread, cause stm.ConflictCause, attempt int) stm.Decision {
	a.streak++
	s := a.streak
	lockShaped := cause == stm.CauseLockBusy || cause == stm.CauseDoomed
	if lockShaped {
		// The conflicting transaction still holds a lock and needs the
		// processor to release it: spinning burns exactly the cycles it
		// needs. Skip the spin rung entirely.
		if s <= adaptiveYieldStreak {
			return stm.Decision{Yield: true}
		}
	} else {
		// Validation-shaped conflict: the winning commit has already
		// happened, the retry can usually proceed at once — spin briefly
		// to keep cache warmth, yield once spinning stops paying.
		if s <= adaptiveSpinStreak {
			return stm.Decision{Spin: 64 << s}
		}
		if s <= adaptiveYieldStreak {
			return stm.Decision{Yield: true}
		}
	}
	shift := s - adaptiveYieldStreak - 1
	if shift > adaptiveMaxShift {
		shift = adaptiveMaxShift
	}
	maxNs := int64(1024) << shift // 1us .. ~1ms, jittered as in passive
	return stm.Decision{Sleep: time.Duration(th.Rand.Int64N(maxNs) + 1)}
}

func (a *adaptive) OnCommit(*stm.Thread) { a.streak = 0 }
