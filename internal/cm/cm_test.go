package cm_test

import (
	"testing"

	"oestm/internal/cm"
	"oestm/internal/mvar"
	"oestm/internal/stm"
)

// fakeTM satisfies stm.TM so tests can mint Threads; policies only touch
// the thread's PRNG.
type fakeTM struct{}

func (fakeTM) Name() string                                                   { return "fake" }
func (fakeTM) SupportsElastic() bool                                          { return false }
func (fakeTM) Begin(*stm.Thread, stm.Kind) stm.TxControl                      { return nil }
func (fakeTM) BeginNested(*stm.Thread, stm.TxControl, stm.Kind) stm.TxControl { return nil }

func newThread() *stm.Thread { return stm.NewThread(fakeTM{}) }

func TestRegistry(t *testing.T) {
	names := cm.Names()
	if len(names) < 3 {
		t.Fatalf("Names() = %v, want at least passive, aggressive, adaptive", names)
	}
	if names[0] != cm.DefaultName {
		t.Fatalf("Names()[0] = %q, want the default %q first", names[0], cm.DefaultName)
	}
	for _, n := range names {
		m, ok := cm.New(n)
		if !ok || m == nil {
			t.Fatalf("New(%q) failed", n)
		}
	}
	if _, ok := cm.New("nope"); ok {
		t.Fatal("New must reject unknown names")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew must panic on unknown names")
		}
	}()
	cm.MustNew("nope")
}

func TestPassiveMatchesBuiltinSchedule(t *testing.T) {
	// Passive must answer exactly stm.PassiveDecision — the same
	// schedule a thread with no manager gets — so naming it in a sweep
	// changes nothing. Sleeps are jittered, so compare shapes, not
	// durations.
	m := cm.MustNew("passive")
	th := newThread()
	for attempt := 0; attempt < 8; attempt++ {
		got := m.OnAbort(th, stm.CauseReadValidation, attempt)
		want := stm.PassiveDecision(th, attempt)
		if got.Yield != want.Yield || got.Spin != want.Spin || (got.Sleep > 0) != (want.Sleep > 0) {
			t.Fatalf("attempt %d: passive = %+v, builtin = %+v", attempt, got, want)
		}
	}
}

func TestAggressiveAlwaysImmediate(t *testing.T) {
	m := cm.MustNew("aggressive")
	th := newThread()
	for attempt := 0; attempt < 20; attempt++ {
		for _, c := range stm.Causes() {
			if d := m.OnAbort(th, c, attempt); d != (stm.Decision{}) {
				t.Fatalf("aggressive decided %+v for cause %v attempt %d, want immediate", d, c, attempt)
			}
		}
	}
}

func TestAdaptiveEscalatesAndResets(t *testing.T) {
	m := cm.MustNew("adaptive")
	th := newThread()

	// Validation-shaped causes: spin first, then yield, then sleep.
	d := m.OnAbort(th, stm.CauseReadValidation, 0)
	if d.Spin == 0 || d.Yield || d.Sleep != 0 {
		t.Fatalf("first validation abort: %+v, want spin", d)
	}
	var sawYield, sawSleep bool
	for i := 0; i < 12; i++ {
		d = m.OnAbort(th, stm.CauseCommitValidation, i)
		if d.Yield {
			sawYield = true
			if sawSleep {
				t.Fatal("yield after sleep: escalation went backwards")
			}
		}
		if d.Sleep > 0 {
			sawSleep = true
		}
	}
	if !sawYield || !sawSleep {
		t.Fatalf("escalation never reached yield (%v) or sleep (%v)", sawYield, sawSleep)
	}

	// A commit resets the streak: back to spinning.
	m.OnCommit(th)
	d = m.OnAbort(th, stm.CauseReadValidation, 0)
	if d.Spin == 0 || d.Sleep != 0 {
		t.Fatalf("post-commit abort: %+v, want spin again", d)
	}

	// Lock-shaped causes skip the spin rung: the holder needs the
	// processor to release the lock.
	m2 := cm.MustNew("adaptive")
	for _, c := range []stm.ConflictCause{stm.CauseLockBusy, stm.CauseDoomed} {
		m2.OnCommit(th) // reset between cause probes
		d := m2.OnAbort(th, c, 0)
		if !d.Yield || d.Spin != 0 {
			t.Fatalf("first %v abort: %+v, want immediate yield", c, d)
		}
	}
}

func TestAdaptiveSleepStaysBounded(t *testing.T) {
	m := cm.MustNew("adaptive")
	th := newThread()
	const cap = 1 << 20 // 1024 * 2^10 ns ≈ 1ms, the passive cap
	for i := 0; i < 100; i++ {
		if d := m.OnAbort(th, stm.CauseReadValidation, i); d.Sleep > cap {
			t.Fatalf("abort %d: sleep %v exceeds the ~1ms cap", i, d.Sleep)
		}
	}
}

func TestPoliciesDriveRealRetries(t *testing.T) {
	// Each policy must carry a forced-conflict transaction through the
	// real Atomic driver: run explicit conflicts on a trivial
	// always-commits engine with the policy installed and check the
	// retries complete and are counted.
	for _, name := range cm.Names() {
		t.Run(name, func(t *testing.T) {
			th := stm.NewThread(selfTM{})
			th.CM = cm.MustNew(name)
			runs := 0
			if err := th.Atomic(stm.Regular, func(tx stm.Tx) error {
				runs++
				if runs < 4 {
					stm.Conflict("forced")
				}
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			if runs != 4 {
				t.Fatalf("runs = %d, want 4", runs)
			}
			if th.Stats.AbortsByCause[stm.CauseExplicit] != 3 {
				t.Fatalf("explicit aborts = %d, want 3", th.Stats.AbortsByCause[stm.CauseExplicit])
			}
		})
	}
}

// selfTM is a no-op engine whose transactions always commit; enough to
// drive the retry loop with explicit conflicts.
type selfTM struct{}

func (selfTM) Name() string          { return "self" }
func (selfTM) SupportsElastic() bool { return false }
func (selfTM) Begin(*stm.Thread, stm.Kind) stm.TxControl {
	return selfTx{}
}
func (selfTM) BeginNested(_ *stm.Thread, parent stm.TxControl, _ stm.Kind) stm.TxControl {
	return stm.FlatChild(parent)
}

type selfTx struct{}

func (selfTx) Read(v *mvar.AnyVar) any        { return v.Load() }
func (selfTx) Write(*mvar.AnyVar, any)        {}
func (selfTx) ReadWord(w *mvar.Word) mvar.Raw { return w.LoadRaw() }
func (selfTx) WriteWord(*mvar.Word, mvar.Raw) {}
func (selfTx) Kind() stm.Kind                 { return stm.Regular }
func (selfTx) Commit() error                  { return nil }
func (selfTx) Rollback()                      {}
