// Package cm provides the pluggable contention-management policies of the
// retry layer: implementations of stm.ContentionManager selectable by
// name, so the harness and compose-bench can sweep the contention-policy
// dimension the same way they sweep engines and thread counts.
//
// The mechanism/policy split: internal/stm owns the mechanism — the
// ContentionManager interface, the Decision vocabulary (spin / yield /
// sleep), the typed ConflictCause each abort carries, and the driver that
// applies decisions between attempts. This package owns the policies:
//
//   - passive: the default randomised exponential backoff — yield the
//     processor on the first attempts, then sleep exponentially growing,
//     jittered durations. Identical to the behaviour of a Thread with no
//     manager installed (both call stm.PassiveDecision).
//   - aggressive: retry immediately, always. The cheapest policy when
//     transactions are short and contention low; prone to wasted work and
//     livelock-like churn under heavy contention — included as the lower
//     anchor of the policy axis.
//   - adaptive: escalate spin → yield → sleep with the thread's streak of
//     consecutive aborts, and use the abort's ConflictCause to pick the
//     starting rung: lock-shaped conflicts (lock-busy, doomed) yield
//     immediately so the lock holder gets the processor, while
//     validation-shaped conflicts (read/commit validation, snapshot
//     extension, elastic window) spin first, because the conflicting
//     commit has typically already finished. A commit resets the streak.
//
// Policies are per-thread: New returns a fresh instance each call and
// instances must not be shared between threads (adaptive keeps mutable
// state, and all policies draw jitter from the owning thread's PRNG).
//
// Install a policy on a thread with:
//
//	th.CM = cm.MustNew("adaptive")
//
// and sweep policies in compose-bench with -cm=passive,aggressive,adaptive.
package cm
