package stm

import (
	"errors"
	"testing"
	"time"
)

func TestCauseStrings(t *testing.T) {
	want := map[ConflictCause]string{
		CauseUnknown:           "unknown",
		CauseReadValidation:    "read-validation",
		CauseLockBusy:          "lock-busy",
		CauseSnapshotExtension: "snapshot-extension",
		CauseCommitValidation:  "commit-validation",
		CauseElasticWindow:     "elastic-window",
		CauseDoomed:            "doomed",
		CauseExplicit:          "explicit",
	}
	if len(want) != NumCauses {
		t.Fatalf("test covers %d causes, enum has %d", len(want), NumCauses)
	}
	for c, s := range want {
		if c.String() != s {
			t.Errorf("cause %d String = %q, want %q", c, c.String(), s)
		}
	}
	if got := ConflictCause(200).String(); got != "cause(200)" {
		t.Errorf("out-of-range String = %q", got)
	}
	if got := CauseReadValidation.Slug(); got != "read_validation" {
		t.Errorf("Slug = %q, want read_validation", got)
	}
}

func TestConflictOfMatchesSentinelAndCarriesCause(t *testing.T) {
	for _, c := range Causes() {
		err := ConflictOf(c)
		if !errors.Is(err, ErrConflict) {
			t.Errorf("ConflictOf(%v) does not match ErrConflict", c)
		}
		if got := CauseOf(err); got != c {
			t.Errorf("CauseOf(ConflictOf(%v)) = %v", c, got)
		}
	}
	// Pre-allocated: the same cause yields the same error value, so the
	// commit conflict path never allocates.
	if ConflictOf(CauseLockBusy) != ConflictOf(CauseLockBusy) {
		t.Error("ConflictOf must return the shared per-cause instance")
	}
	if got := CauseOf(ErrConflict); got != CauseUnknown {
		t.Errorf("CauseOf(bare sentinel) = %v, want unknown", got)
	}
	if got := CauseOf(errors.New("other")); got != CauseUnknown {
		t.Errorf("CauseOf(foreign error) = %v, want unknown", got)
	}
	if got := ConflictOf(ConflictCause(99)); CauseOf(got) != CauseUnknown {
		t.Errorf("out-of-range ConflictOf cause = %v, want unknown", CauseOf(got))
	}
}

func TestAbortCarriesCause(t *testing.T) {
	tm := &fakeTM{}
	th := NewThread(tm)
	th.MaxRetries = 1
	err := th.Atomic(Regular, func(tx Tx) error {
		Abort(CauseElasticWindow)
		return nil
	})
	var rex *RetryExhaustedError
	if !errors.As(err, &rex) {
		t.Fatalf("err = %v, want RetryExhaustedError", err)
	}
	if rex.Cause != CauseElasticWindow || rex.Attempts != 1 {
		t.Fatalf("rex = %+v", rex)
	}
	if th.Stats.AbortsByCause[CauseElasticWindow] != 1 {
		t.Fatalf("per-cause counter: %+v", th.Stats.AbortsByCause)
	}
}

func TestConflictCountsAsExplicit(t *testing.T) {
	tm := &fakeTM{}
	th := NewThread(tm)
	runs := 0
	if err := th.Atomic(Regular, func(tx Tx) error {
		runs++
		if runs < 3 {
			Conflict("forced")
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if th.Stats.AbortsByCause[CauseExplicit] != 2 {
		t.Fatalf("explicit aborts = %d, want 2", th.Stats.AbortsByCause[CauseExplicit])
	}
	var sum uint64
	for _, n := range th.Stats.AbortsByCause {
		sum += n
	}
	if sum != th.Stats.Aborts {
		t.Fatalf("cause counters sum to %d, Aborts = %d", sum, th.Stats.Aborts)
	}
}

func TestCommitConflictErrorCauseCounted(t *testing.T) {
	tm := &fakeTM{commitErrs: []error{ConflictOf(CauseCommitValidation), nil}}
	th := NewThread(tm)
	if err := th.Atomic(Regular, func(tx Tx) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if th.Stats.AbortsByCause[CauseCommitValidation] != 1 {
		t.Fatalf("per-cause counters = %+v", th.Stats.AbortsByCause)
	}
	// A bare sentinel from an engine lands in the unknown bucket.
	tm2 := &fakeTM{commitErrs: []error{ErrConflict, nil}}
	th2 := NewThread(tm2)
	if err := th2.Atomic(Regular, func(tx Tx) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if th2.Stats.AbortsByCause[CauseUnknown] != 1 {
		t.Fatalf("per-cause counters = %+v", th2.Stats.AbortsByCause)
	}
}

func TestRetryExhaustedErrorShape(t *testing.T) {
	err := &RetryExhaustedError{Attempts: 4, Cause: CauseLockBusy}
	if !errors.Is(err, ErrConflict) {
		t.Error("RetryExhaustedError must match ErrConflict")
	}
	if CauseOf(err) != CauseLockBusy {
		t.Errorf("CauseOf = %v", CauseOf(err))
	}
	want := "stm: transaction conflict: retries exhausted after 4 attempts (last cause: lock-busy)"
	if err.Error() != want {
		t.Errorf("Error() = %q, want %q", err.Error(), want)
	}
	if !errors.Is(errors.Unwrap(err), ErrConflict) {
		t.Error("Unwrap must expose the sentinel")
	}
}

func TestStatsAddAndDiffCarryCauses(t *testing.T) {
	var a, b Stats
	a.Aborts = 3
	a.AbortsByCause[CauseLockBusy] = 2
	a.AbortsByCause[CauseExplicit] = 1
	b.Aborts = 1
	b.AbortsByCause[CauseLockBusy] = 1
	a.Add(b)
	if a.Aborts != 4 || a.AbortsByCause[CauseLockBusy] != 3 {
		t.Fatalf("after Add: %+v", a)
	}
	d := a.Diff(b)
	if d.Aborts != 3 || d.AbortsByCause[CauseLockBusy] != 2 || d.AbortsByCause[CauseExplicit] != 1 {
		t.Fatalf("after Diff: %+v", d)
	}
}

func TestPassiveDecisionSchedule(t *testing.T) {
	th := NewThread(&fakeTM{})
	for attempt := 0; attempt < 3; attempt++ {
		d := PassiveDecision(th, attempt)
		if !d.Yield || d.Sleep != 0 || d.Spin != 0 {
			t.Fatalf("attempt %d: decision = %+v, want pure yield", attempt, d)
		}
	}
	for attempt := 3; attempt < 20; attempt++ {
		d := PassiveDecision(th, attempt)
		if d.Sleep <= 0 {
			t.Fatalf("attempt %d: decision = %+v, want sleep", attempt, d)
		}
		if d.Sleep > time.Millisecond+time.Microsecond {
			t.Fatalf("attempt %d: sleep %v exceeds the ~1ms cap", attempt, d.Sleep)
		}
	}
}

// countingCM records the causes and attempts it sees and answers with
// immediate retries.
type countingCM struct {
	aborts  []ConflictCause
	commits int
}

func (c *countingCM) OnAbort(th *Thread, cause ConflictCause, attempt int) Decision {
	c.aborts = append(c.aborts, cause)
	return Decision{}
}

func (c *countingCM) OnCommit(th *Thread) { c.commits++ }

func TestContentionManagerConsulted(t *testing.T) {
	tm := &fakeTM{}
	th := NewThread(tm)
	mgr := &countingCM{}
	th.CM = mgr
	runs := 0
	if err := th.Atomic(Regular, func(tx Tx) error {
		runs++
		if runs < 3 {
			Abort(CauseReadValidation)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(mgr.aborts) != 2 || mgr.aborts[0] != CauseReadValidation || mgr.aborts[1] != CauseReadValidation {
		t.Fatalf("manager saw aborts %v", mgr.aborts)
	}
	if mgr.commits != 1 {
		t.Fatalf("manager saw %d commits, want 1", mgr.commits)
	}
	// The manager is not consulted after the final, exhausted attempt.
	th2 := NewThread(&fakeTM{})
	mgr2 := &countingCM{}
	th2.CM = mgr2
	th2.MaxRetries = 2
	err := th2.Atomic(Regular, func(tx Tx) error {
		Abort(CauseLockBusy)
		return nil
	})
	if !errors.Is(err, ErrConflict) {
		t.Fatalf("err = %v", err)
	}
	if len(mgr2.aborts) != 1 {
		t.Fatalf("manager consulted %d times, want 1 (not after exhaustion)", len(mgr2.aborts))
	}
	if mgr2.commits != 0 {
		t.Fatalf("manager saw %d commits, want 0", mgr2.commits)
	}
}

func TestWaitExecutesDecisionComponents(t *testing.T) {
	th := NewThread(&fakeTM{})
	// Spin and yield must not block; a sleep must take at least its
	// duration. (Timing upper bounds are not asserted: CI machines stall.)
	th.Wait(Decision{Spin: 1000, Yield: true})
	start := time.Now()
	th.Wait(Decision{Sleep: 2 * time.Millisecond})
	if elapsed := time.Since(start); elapsed < 2*time.Millisecond {
		t.Fatalf("sleep decision returned after %v, want >= 2ms", elapsed)
	}
}
