// Package stm defines the engine-agnostic transactional programming layer:
// the TM and Tx interfaces every engine implements, per-goroutine Thread
// contexts, and the Atomic driver that runs transactions with conflict
// retry and nesting.
//
// The paper's programming model ("begin[relaxed] ... end" regions, §VI) is
// rendered in Go as
//
//	th := stm.NewThread(tm)
//	th.Atomic(stm.Elastic, func(tx stm.Tx) error { ... })
//
// Calling Atomic while a transaction is already open on the thread starts
// a nested (child) transaction — this is exactly the paper's notion of
// composition: the child passes or drops its conflict information at its
// commit depending on the engine (outheritance or not).
//
//compose:hotpath
package stm

import (
	"errors"
	"fmt"

	"oestm/internal/mvar"
)

// Kind selects the transactional model for one transaction, mirroring the
// paper's begin[relaxed] region marker. Engines without a relaxed mode
// treat every kind as Regular.
type Kind uint8

const (
	// Regular requests classic (serializable) transactional semantics.
	Regular Kind = iota
	// Elastic requests the elastic model of Felber et al.: conflicts on
	// the transaction's read-only prefix are ignored.
	Elastic
)

// String returns the lower-case name of the kind.
func (k Kind) String() string {
	switch k {
	case Regular:
		return "regular"
	case Elastic:
		return "elastic"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Tx is the operation interface transactions expose to user code. Read and
// Write never return errors: conflicts abort the transaction by panicking
// with a private signal that the outermost Atomic recovers, so data
// structure code reads like its sequential counterpart (the paper's Fig. 5
// point).
//
// The word-level methods (ReadWord/WriteWord) are the allocation-free hot
// path: they move opaque mvar.Raw payloads between typed variables and the
// engine's flat read/write sets. User code reaches them through the typed
// helpers (ReadPtr, WritePtr, ReadFlag, WriteFlag) rather than directly.
// Read/Write are the untyped convenience surface over mvar.AnyVar, which
// boxes values.
type Tx interface {
	// Read returns the value of v as observed by this transaction.
	Read(v *mvar.AnyVar) any
	// Write buffers (or applies, engine-dependent) a new value for v.
	Write(v *mvar.AnyVar, val any)
	// ReadWord returns the raw payload of w as observed by this
	// transaction.
	ReadWord(w *mvar.Word) mvar.Raw
	// WriteWord buffers (or applies, engine-dependent) a new raw payload
	// for w.
	WriteWord(w *mvar.Word, r mvar.Raw)
	// Kind reports the transactional model this transaction runs under.
	Kind() Kind
}

// TxControl extends Tx with the lifecycle methods the Atomic driver uses.
// User code never calls these directly.
type TxControl interface {
	Tx
	// Commit attempts to commit. It returns nil on success, ErrConflict
	// if the transaction must be retried, or another error.
	Commit() error
	// Rollback discards the transaction. It must be safe to call after a
	// conflict was raised part-way through execution or commit.
	Rollback()
}

// TM is a transactional memory engine.
type TM interface {
	// Name identifies the engine ("oestm", "tl2", ...).
	Name() string
	// SupportsElastic reports whether the engine honours Kind Elastic.
	SupportsElastic() bool
	// Begin starts a top-level transaction on the given thread.
	Begin(th *Thread, k Kind) TxControl
	// BeginNested starts a child transaction of parent. Engines with flat
	// nesting may return FlatChild(parent).
	BeginNested(th *Thread, parent TxControl, k Kind) TxControl
}

// ErrConflict is returned by TxControl.Commit when the transaction lost a
// conflict and must be re-executed. The Atomic driver retries on it.
var ErrConflict = errors.New("stm: transaction conflict")

// conflictSignal is the private panic payload used to unwind user code
// when a conflict is detected during execution. Only Atomic recovers it.
// It carries the typed ConflictCause of the abort; one value per cause is
// pre-boxed (see conflictPanics in cause.go), so the retry path stays
// allocation-free.
type conflictSignal struct{ cause ConflictCause }

// userAbort is the private panic payload used to unwind an entire nesting
// of transactions when user code returns an error from a nested region.
type userAbort struct{ err error }

// Conflict aborts the current transaction attempt and unwinds to the
// outermost Atomic, which rolls back and retries. User and library code
// (e.g. the eec structures, when a traversal window moves) call it to
// force a retry; the abort is recorded under CauseExplicit. The reason is
// purely diagnostic (a static description of the conflict class) and is
// not carried on the unwind. Engine conflict sites use Abort with their
// specific ConflictCause instead.
func Conflict(reason string) {
	_ = reason
	Abort(CauseExplicit)
}

// FlatChild wraps a parent transaction as a flat-nested child: operations
// delegate to the parent, child commit is a no-op (the parent keeps all
// conflict information until its own commit — the classic-transaction
// instantiation of outheritance, §I), and child rollback defers to the
// enclosing retry machinery. Wrapping an already-flat child returns it
// unchanged: deeper flat nesting is behaviourally identical, and reusing
// the wrapper keeps arbitrarily deep compositions allocation-free.
func FlatChild(parent TxControl) TxControl {
	if f, ok := parent.(flatChild); ok {
		return f
	}
	return flatChild{parent}
}

// FlatChildOn is FlatChild with the boxed wrapper cached on the thread:
// engines that pool their top-level transaction frames (all of them)
// hand the same parent value to every composition on a thread, so after
// the first nested begin the wrapper is reused and flat nesting becomes
// allocation-free — the nested counterpart of the pooled Begin.
func FlatChildOn(th *Thread, parent TxControl) TxControl {
	if f, ok := parent.(flatChild); ok {
		return f
	}
	if th.flatFor == parent {
		return th.flatChild
	}
	c := flatChild{parent}
	th.flatFor, th.flatChild = parent, c
	return c
}

type flatChild struct{ TxControl }

func (flatChild) Commit() error { return nil }
func (flatChild) Rollback()     {}
