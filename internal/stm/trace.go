package stm

import "oestm/internal/mvar"

// Tracer receives the protection-element events of the paper's model
// (§II-A) from an instrumented engine. Begin/Commit/Abort delimit
// transactions; Acquire/Release bracket protection elements; Op records an
// operation invocation+response pair on a location.
//
// Locations are identified by their *mvar.Word, which every typed
// transactional variable exposes. For operations on untyped variables the
// traced value is the decoded any; for operations on typed variables it is
// the opaque (but comparable) mvar.Raw payload.
//
// Tracing exists to machine-check executions against Definition 4.1
// (outheritance) and Definitions 3.1/3.2 (composability); engines only
// call a Tracer when one is installed, so the fast path carries a single
// nil check.
type Tracer interface {
	// TxBegin records <begin(t), p>. parent is 0 for top-level
	// transactions and the parent's id for nested ones.
	TxBegin(proc int, tx uint64, parent uint64, kind Kind)
	// TxCommit records <commit(t), p>.
	TxCommit(proc int, tx uint64)
	// TxAbort records <abort(t), p>.
	TxAbort(proc int, tx uint64)
	// Acquire records <a(l(o)), p> for the protection element of w.
	Acquire(proc int, tx uint64, w *mvar.Word)
	// Release records <r(l(o)), p>. tx is the transaction on whose behalf
	// the element was held; the release may occur after its commit (that
	// is the whole point of outheritance).
	Release(proc int, tx uint64, w *mvar.Word)
	// Op records the invocation and response of an operation on w by tx.
	Op(proc int, tx uint64, w *mvar.Word, op string, val any)
}
