package stm

import (
	"errors"

	"oestm/internal/mvar"
)

// Atomic executes fn inside a transaction of the given kind and commits
// it, retrying on conflicts. Between attempts the thread's contention
// manager (Thread.CM; the built-in passive randomised exponential backoff
// when nil) decides how long and how to wait, informed by the typed
// ConflictCause of the abort; every abort is also counted per cause in
// Thread.Stats.
//
// If a transaction is already open on th, Atomic starts a nested (child)
// transaction instead: this is concurrent composition in the paper's
// sense. A conflict inside a child unwinds and retries the whole outermost
// transaction (closed nesting with flat retry). If fn returns a non-nil
// error the transaction (the whole nest, if nested) is rolled back and the
// error is returned to the outermost caller without retrying.
func (th *Thread) Atomic(k Kind, fn func(tx Tx) error) error {
	if th.cur != nil {
		return th.runNested(k, fn)
	}
	for attempt := 0; ; attempt++ {
		tx := th.TM.Begin(th, k)
		th.cur = tx
		th.depth = 1
		err, retry, cause := th.runTop(tx, fn)
		th.cur = nil
		th.depth = 0
		if !retry {
			if err == nil {
				th.Stats.Commits++
				if th.CM != nil {
					th.CM.OnCommit(th)
				}
			}
			return err
		}
		th.Stats.Aborts++
		th.Stats.AbortsByCause[cause]++
		if th.MaxRetries > 0 && attempt+1 >= th.MaxRetries {
			return &RetryExhaustedError{Attempts: attempt + 1, Cause: cause}
		}
		if th.CM != nil {
			th.Wait(th.CM.OnAbort(th, cause, attempt))
		} else {
			th.backoff(attempt)
		}
	}
}

// runTop executes fn and commit for one top-level attempt, translating the
// private panic signals into (err, retry, cause); cause is only meaningful
// when retry is true.
func (th *Thread) runTop(tx TxControl, fn func(tx Tx) error) (err error, retry bool, cause ConflictCause) {
	defer func() {
		if r := recover(); r != nil {
			switch s := r.(type) {
			case conflictSignal:
				tx.Rollback()
				err, retry, cause = nil, true, s.cause
			case userAbort:
				tx.Rollback()
				err, retry = s.err, false
			default:
				// Foreign panic from user code: roll back and restore the
				// thread state before letting it propagate.
				tx.Rollback()
				th.cur = nil
				th.depth = 0
				panic(r)
			}
		}
	}()
	if e := fn(tx); e != nil {
		tx.Rollback()
		return e, false, CauseUnknown
	}
	if e := tx.Commit(); e != nil {
		if errors.Is(e, ErrConflict) {
			return nil, true, CauseOf(e)
		}
		tx.Rollback()
		return e, false, CauseUnknown
	}
	return nil, false, CauseUnknown
}

// runNested runs fn as a child transaction of th.cur. Conflicts propagate
// (by panic) to the outermost Atomic; user errors abort the whole nest.
func (th *Thread) runNested(k Kind, fn func(tx Tx) error) error {
	parent := th.cur
	child := th.TM.BeginNested(th, parent, k)
	th.Stats.NestedBegins++
	th.cur = child
	th.depth++
	defer func() {
		th.cur = parent
		th.depth--
	}()
	if err := fn(child); err != nil {
		child.Rollback()
		// Unwind the entire nest; the outermost runTop returns err.
		panic(userAbort{err})
	}
	if err := child.Commit(); err != nil {
		if errors.Is(err, ErrConflict) {
			// Re-raise the nested commit failure towards the outermost
			// Atomic, preserving the engine's cause; engines that return
			// the bare sentinel surface as commit-validation, which is
			// what a failed nested commit is.
			cause := CauseOf(err)
			if cause == CauseUnknown {
				cause = CauseCommitValidation
			}
			Abort(cause)
		}
		child.Rollback()
		panic(userAbort{err})
	}
	return nil
}

// ReadT reads v inside tx and type-asserts the result to T. A nil stored
// value yields the zero T. It keeps data-structure code free of assertion
// noise.
func ReadT[T any](tx Tx, v *mvar.AnyVar) T {
	x := tx.Read(v)
	if x == nil {
		var zero T
		return zero
	}
	return x.(T)
}

// ReadPtr reads the typed variable v inside tx. This is the
// allocation-free hot path: the payload travels as a raw word, never
// boxed.
func ReadPtr[T any](tx Tx, v *mvar.Var[T]) *T {
	return mvar.RefValue[T](tx.ReadWord(v.Word()))
}

// WritePtr buffers a new pointer for the typed variable v inside tx.
func WritePtr[T any](tx Tx, v *mvar.Var[T], p *T) {
	tx.WriteWord(v.Word(), mvar.RefRaw(p))
}

// ReadFlag reads the transactional boolean v inside tx.
//
//compose:noalloc
func ReadFlag(tx Tx, v *mvar.Flag) bool {
	return mvar.FlagValue(tx.ReadWord(v.Word()))
}

// ReadInt reads the transactional integer v inside tx (allocation-free).
//
//compose:noalloc
func ReadInt(tx Tx, v *mvar.IntVar) int64 {
	return mvar.IntValue(tx.ReadWord(v.Word()))
}

// WriteInt buffers a new value for the transactional integer v inside tx.
//
//compose:noalloc
func WriteInt(tx Tx, v *mvar.IntVar, n int64) {
	tx.WriteWord(v.Word(), mvar.IntRaw(n))
}

// WriteFlag buffers a new value for the transactional boolean v inside tx.
//
//compose:noalloc
func WriteFlag(tx Tx, v *mvar.Flag, b bool) {
	tx.WriteWord(v.Word(), mvar.FlagRaw(b))
}
