package stm

import (
	"errors"
	"time"

	"oestm/internal/mvar"
)

// Atomic executes fn inside a transaction of the given kind and commits
// it, retrying on conflicts with randomised exponential backoff.
//
// If a transaction is already open on th, Atomic starts a nested (child)
// transaction instead: this is concurrent composition in the paper's
// sense. A conflict inside a child unwinds and retries the whole outermost
// transaction (closed nesting with flat retry). If fn returns a non-nil
// error the transaction (the whole nest, if nested) is rolled back and the
// error is returned to the outermost caller without retrying.
func (th *Thread) Atomic(k Kind, fn func(tx Tx) error) error {
	if th.cur != nil {
		return th.runNested(k, fn)
	}
	for attempt := 0; ; attempt++ {
		tx := th.TM.Begin(th, k)
		th.cur = tx
		th.depth = 1
		err, retry := th.runTop(tx, fn)
		th.cur = nil
		th.depth = 0
		if !retry {
			if err == nil {
				th.Stats.Commits++
			}
			return err
		}
		th.Stats.Aborts++
		if th.MaxRetries > 0 && attempt+1 >= th.MaxRetries {
			return ErrConflict
		}
		th.backoff(attempt)
	}
}

// runTop executes fn and commit for one top-level attempt, translating the
// private panic signals into (err, retry).
func (th *Thread) runTop(tx TxControl, fn func(tx Tx) error) (err error, retry bool) {
	defer func() {
		if r := recover(); r != nil {
			switch s := r.(type) {
			case conflictSignal:
				tx.Rollback()
				err, retry = nil, true
			case userAbort:
				tx.Rollback()
				err, retry = s.err, false
			default:
				// Foreign panic from user code: roll back and restore the
				// thread state before letting it propagate.
				tx.Rollback()
				th.cur = nil
				th.depth = 0
				panic(r)
			}
		}
	}()
	if e := fn(tx); e != nil {
		tx.Rollback()
		return e, false
	}
	if e := tx.Commit(); e != nil {
		if errors.Is(e, ErrConflict) {
			return nil, true
		}
		tx.Rollback()
		return e, false
	}
	return nil, false
}

// runNested runs fn as a child transaction of th.cur. Conflicts propagate
// (by panic) to the outermost Atomic; user errors abort the whole nest.
func (th *Thread) runNested(k Kind, fn func(tx Tx) error) error {
	parent := th.cur
	child := th.TM.BeginNested(th, parent, k)
	th.Stats.NestedBegins++
	th.cur = child
	th.depth++
	defer func() {
		th.cur = parent
		th.depth--
	}()
	if err := fn(child); err != nil {
		child.Rollback()
		// Unwind the entire nest; the outermost runTop returns err.
		panic(userAbort{err})
	}
	if err := child.Commit(); err != nil {
		if errors.Is(err, ErrConflict) {
			Conflict("nested commit validation failed")
		}
		child.Rollback()
		panic(userAbort{err})
	}
	return nil
}

// backoff sleeps for a randomised, exponentially growing duration. The
// first few attempts spin-yield only, which is the common case for short
// STM transactions.
func (th *Thread) backoff(attempt int) {
	if attempt < 3 {
		return // immediate retry: cheapest for short transactions
	}
	shift := attempt - 3
	if shift > 10 {
		shift = 10
	}
	maxNs := int64(1024) << shift // 1us .. ~1ms
	d := time.Duration(th.Rand.Int64N(maxNs) + 1)
	time.Sleep(d)
}

// ReadT reads v inside tx and type-asserts the result to T. A nil stored
// value yields the zero T. It keeps data-structure code free of assertion
// noise.
func ReadT[T any](tx Tx, v *mvar.AnyVar) T {
	x := tx.Read(v)
	if x == nil {
		var zero T
		return zero
	}
	return x.(T)
}

// ReadPtr reads the typed variable v inside tx. This is the
// allocation-free hot path: the payload travels as a raw word, never
// boxed.
func ReadPtr[T any](tx Tx, v *mvar.Var[T]) *T {
	return mvar.RefValue[T](tx.ReadWord(v.Word()))
}

// WritePtr buffers a new pointer for the typed variable v inside tx.
func WritePtr[T any](tx Tx, v *mvar.Var[T], p *T) {
	tx.WriteWord(v.Word(), mvar.RefRaw(p))
}

// ReadFlag reads the transactional boolean v inside tx.
func ReadFlag(tx Tx, v *mvar.Flag) bool {
	return mvar.FlagValue(tx.ReadWord(v.Word()))
}

// ReadInt reads the transactional integer v inside tx (allocation-free).
func ReadInt(tx Tx, v *mvar.IntVar) int64 {
	return mvar.IntValue(tx.ReadWord(v.Word()))
}

// WriteInt buffers a new value for the transactional integer v inside tx.
func WriteInt(tx Tx, v *mvar.IntVar, n int64) {
	tx.WriteWord(v.Word(), mvar.IntRaw(n))
}

// WriteFlag buffers a new value for the transactional boolean v inside tx.
func WriteFlag(tx Tx, v *mvar.Flag, b bool) {
	tx.WriteWord(v.Word(), mvar.FlagRaw(b))
}
