package stm

import (
	"math/rand/v2"
	"sync/atomic"
)

// threadIDs allocates globally unique thread slots. Slot numbers appear in
// lock words, so they must be small non-negative integers.
var threadIDs atomic.Int64

// Stats accumulates per-thread transaction counters. Threads are owned by
// a single goroutine, so the fields are plain integers; aggregate across
// threads only after the owning goroutines have stopped (or accept tearing
// in progress displays).
type Stats struct {
	Commits      uint64 // committed top-level transactions
	Aborts       uint64 // aborted attempts (each retry counts one)
	NestedBegins uint64 // child transactions started
	ReadOnly     uint64 // committed read-only top-level transactions

	// AbortsByCause breaks Aborts down by ConflictCause (indexed by the
	// cause value). The driver increments exactly one cause counter per
	// abort, so the entries always sum to Aborts.
	AbortsByCause [NumCauses]uint64
}

// AbortRate returns aborts/(commits+aborts) as a percentage, the metric
// the paper plots on the right-hand axes of Figs. 6-8.
func (s Stats) AbortRate() float64 {
	total := s.Commits + s.Aborts
	if total == 0 {
		return 0
	}
	return 100 * float64(s.Aborts) / float64(total)
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.Commits += other.Commits
	s.Aborts += other.Aborts
	s.NestedBegins += other.NestedBegins
	s.ReadOnly += other.ReadOnly
	for i := range s.AbortsByCause {
		s.AbortsByCause[i] += other.AbortsByCause[i]
	}
}

// Diff returns s minus base, counter by counter — the window delta the
// harness computes between two snapshots of a running thread's stats.
func (s Stats) Diff(base Stats) Stats {
	out := s
	out.Commits -= base.Commits
	out.Aborts -= base.Aborts
	out.NestedBegins -= base.NestedBegins
	out.ReadOnly -= base.ReadOnly
	for i := range out.AbortsByCause {
		out.AbortsByCause[i] -= base.AbortsByCause[i]
	}
	return out
}

// Thread is the per-goroutine transactional context: it tracks the current
// transaction (enabling nesting/composition), carries a deterministic PRNG
// for backoff and workload decisions, and accumulates statistics.
//
// A Thread must only be used from one goroutine at a time.
type Thread struct {
	// ID is the thread slot recorded in lock words while this thread
	// holds write locks.
	ID int
	// TM is the engine this thread runs transactions on.
	TM TM
	// Stats accumulates commit/abort counters.
	Stats Stats
	// Rand is a per-thread PRNG (used for backoff jitter; workloads and
	// data structures may share it).
	Rand *rand.Rand
	// MaxRetries, when non-zero, bounds the attempts of one Atomic call;
	// exceeding it returns a *RetryExhaustedError (matching ErrConflict)
	// carrying the attempt count and last conflict cause instead of
	// retrying forever. Intended for tests; production configurations
	// leave it 0.
	MaxRetries int

	// CM is the thread's contention manager, consulted between attempts
	// of a conflicted transaction. Nil means the built-in passive policy
	// (randomised exponential backoff). Policies may keep per-thread
	// state, so a CM instance must not be shared between threads.
	CM ContentionManager

	// EngineScratch is engine-owned per-thread state: engines cache their
	// pooled top-level transaction frame here so Begin does not allocate.
	// A thread is bound to one TM, so exactly one engine uses the slot;
	// only that engine may touch it.
	EngineScratch any

	// OpScratch is library-owned per-thread state: the e.e.c collections
	// cache their reusable operation frames (pre-bound transaction
	// closures) here so elementary operations do not allocate. Only the
	// collection layer may touch it.
	OpScratch any

	cur   TxControl
	depth int

	// flatFor/flatChild cache the boxed flat-nesting wrapper of the last
	// parent seen by FlatChildOn, so composed operations on flat-nesting
	// engines begin children allocation-free (engines pool their
	// top-level frames, so the parent value repeats per thread).
	flatFor   TxControl
	flatChild TxControl
}

// NewThread creates a thread context for tm with a unique slot and a
// PRNG seeded from the slot (deterministic given creation order).
func NewThread(tm TM) *Thread {
	id := int(threadIDs.Add(1))
	return &Thread{
		ID:   id,
		TM:   tm,
		Rand: rand.New(rand.NewPCG(uint64(id), 0x9e3779b97f4a7c15)),
	}
}

// InTx reports whether a transaction is currently open on this thread.
func (th *Thread) InTx() bool { return th.cur != nil }

// Current returns the innermost open transaction, or nil.
func (th *Thread) Current() TxControl { return th.cur }

// Depth returns the current nesting depth (0 outside any transaction).
func (th *Thread) Depth() int { return th.depth }
