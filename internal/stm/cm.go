// Contention-management mechanism. This file defines the *mechanism* side
// of the pluggable contention layer: the ContentionManager interface the
// Atomic retry driver consults between attempts, the Decision vocabulary
// policies answer in, and the built-in passive (randomised exponential
// backoff) behaviour used when no manager is installed. The *policies*
// (passive, aggressive, adaptive) and their by-name registry live in
// internal/cm, which implements this interface; keeping the interface
// here lets engines and the driver stay policy-agnostic while policies
// freely use Thread state (PRNG, stats).
package stm

import (
	"runtime"
	"time"
)

// Decision is a contention manager's answer to an abort: what the thread
// should do before re-executing the transaction. The driver applies the
// three components in order — spin, then yield, then sleep — so a policy
// can compose them (e.g. spin a little and then yield). The zero Decision
// means retry immediately.
type Decision struct {
	// Spin busy-loops for approximately this many iterations without
	// giving up the processor. Cheapest when the conflicting transaction
	// is about to finish on another core.
	Spin int
	// Yield runs runtime.Gosched, letting the scheduler run another
	// goroutine — essential when workers are oversubscribed and the
	// conflict holder needs this P to make progress.
	Yield bool
	// Sleep blocks for this duration (0 = no sleep), deschedules the
	// thread entirely.
	Sleep time.Duration
}

// ContentionManager decides how a thread reacts to transaction aborts.
// One instance serves one Thread (implementations may keep per-thread
// adaptive state without synchronisation); install it via Thread.CM.
//
// OnAbort is called after attempt `attempt` (0-based) of a top-level
// transaction aborted with the given cause; the returned Decision is the
// wait the driver performs before the next attempt. OnCommit is called
// after every successful top-level commit so adaptive policies can decay
// or reset their escalation state.
type ContentionManager interface {
	OnAbort(th *Thread, cause ConflictCause, attempt int) Decision
	OnCommit(th *Thread)
}

// PassiveDecision is the default backoff schedule, shared by the built-in
// behaviour (Thread.backoff) and the cm.Passive policy so the two cannot
// drift: the first few attempts yield the processor (a Gosched, so an
// oversubscribed retry loop cannot livelock against the lock holder —
// pure spinning here starves the very transaction we are waiting on when
// workers exceed GOMAXPROCS), later attempts sleep for a randomised,
// exponentially growing duration (1us .. ~1ms), jittered with the
// thread's PRNG.
func PassiveDecision(th *Thread, attempt int) Decision {
	if attempt < 3 {
		return Decision{Yield: true}
	}
	shift := attempt - 3
	if shift > 10 {
		shift = 10
	}
	maxNs := int64(1024) << shift // 1us .. ~1ms
	return Decision{Sleep: time.Duration(th.Rand.Int64N(maxNs) + 1)}
}

// Wait executes a contention-management decision on the calling thread:
// spin, then yield, then sleep, skipping zero components.
func (th *Thread) Wait(d Decision) {
	for i := 0; i < d.Spin; i++ {
		spinHint()
	}
	if d.Yield {
		runtime.Gosched()
	}
	if d.Sleep > 0 {
		time.Sleep(d.Sleep)
	}
}

//go:noinline
func spinHint() {
	// A no-op call the compiler must keep (noinline), giving the spin
	// loop in Wait a real body without touching shared memory.
}

// backoff waits between attempts when no ContentionManager is installed:
// the passive schedule.
func (th *Thread) backoff(attempt int) {
	th.Wait(PassiveDecision(th, attempt))
}
