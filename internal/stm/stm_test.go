package stm

import (
	"errors"
	"fmt"
	"testing"

	"oestm/internal/mvar"
)

// fakeTM is a minimal single-threaded engine used to unit-test the Atomic
// driver independently of any real STM: writes apply directly with an
// undo log, nesting is flat.
type fakeTM struct {
	begun, nestedBegun int
	commitErrs         []error // consumed by successive commits
}

func (f *fakeTM) Name() string          { return "fake" }
func (f *fakeTM) SupportsElastic() bool { return false }

func (f *fakeTM) Begin(th *Thread, k Kind) TxControl {
	f.begun++
	return &fakeTx{tm: f, kind: k}
}

func (f *fakeTM) BeginNested(th *Thread, parent TxControl, k Kind) TxControl {
	f.nestedBegun++
	return FlatChild(parent)
}

type undo struct {
	w   *mvar.Word
	old mvar.Raw
}

type fakeTx struct {
	tm   *fakeTM
	kind Kind
	log  []undo
}

func (t *fakeTx) Kind() Kind              { return t.kind }
func (t *fakeTx) Read(v *mvar.AnyVar) any { return mvar.AnyValue(t.ReadWord(v.Word())) }
func (t *fakeTx) Write(v *mvar.AnyVar, val any) {
	t.WriteWord(v.Word(), mvar.AnyRaw(val))
}

func (t *fakeTx) ReadWord(w *mvar.Word) mvar.Raw { return w.LoadRaw() }
func (t *fakeTx) WriteWord(w *mvar.Word, r mvar.Raw) {
	t.log = append(t.log, undo{w, w.LoadRaw()})
	w.StoreLockedRaw(r)
}

func (t *fakeTx) Commit() error {
	if len(t.tm.commitErrs) > 0 {
		err := t.tm.commitErrs[0]
		t.tm.commitErrs = t.tm.commitErrs[1:]
		if err != nil {
			t.Rollback()
			return err
		}
	}
	t.log = nil
	return nil
}

func (t *fakeTx) Rollback() {
	for i := len(t.log) - 1; i >= 0; i-- {
		t.log[i].w.StoreLockedRaw(t.log[i].old)
	}
	t.log = nil
}

func TestKindString(t *testing.T) {
	if Regular.String() != "regular" || Elastic.String() != "elastic" {
		t.Fatalf("kind strings: %q %q", Regular, Elastic)
	}
	if got := Kind(9).String(); got != "kind(9)" {
		t.Fatalf("unknown kind string = %q", got)
	}
}

func TestStats(t *testing.T) {
	s := Stats{Commits: 3, Aborts: 1}
	if got := s.AbortRate(); got != 25 {
		t.Fatalf("abort rate = %v, want 25", got)
	}
	var zero Stats
	if zero.AbortRate() != 0 {
		t.Fatal("zero stats must have zero abort rate")
	}
	s.Add(Stats{Commits: 1, Aborts: 3, NestedBegins: 2, ReadOnly: 1})
	if s.Commits != 4 || s.Aborts != 4 || s.NestedBegins != 2 || s.ReadOnly != 1 {
		t.Fatalf("after Add: %+v", s)
	}
}

func TestNewThreadUniqueIDs(t *testing.T) {
	tm := &fakeTM{}
	a, b := NewThread(tm), NewThread(tm)
	if a.ID == b.ID {
		t.Fatal("thread IDs must be unique")
	}
	if a.Rand == nil || b.Rand == nil {
		t.Fatal("threads must carry a PRNG")
	}
}

func TestAtomicCommits(t *testing.T) {
	tm := &fakeTM{}
	th := NewThread(tm)
	v := mvar.New(1)
	if err := th.Atomic(Regular, func(tx Tx) error {
		tx.Write(v, 2)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if v.Load() != 2 {
		t.Fatalf("v = %v, want 2", v.Load())
	}
	if th.Stats.Commits != 1 {
		t.Fatalf("commits = %d", th.Stats.Commits)
	}
	if th.InTx() {
		t.Fatal("thread still in transaction after Atomic")
	}
}

func TestAtomicRetriesOnCommitConflict(t *testing.T) {
	tm := &fakeTM{commitErrs: []error{ErrConflict, ErrConflict, nil}}
	th := NewThread(tm)
	runs := 0
	if err := th.Atomic(Regular, func(tx Tx) error {
		runs++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if runs != 3 {
		t.Fatalf("runs = %d, want 3", runs)
	}
	if th.Stats.Aborts != 2 || th.Stats.Commits != 1 {
		t.Fatalf("stats = %+v", th.Stats)
	}
}

func TestAtomicRetriesOnConflictPanic(t *testing.T) {
	tm := &fakeTM{}
	th := NewThread(tm)
	runs := 0
	if err := th.Atomic(Regular, func(tx Tx) error {
		runs++
		if runs < 2 {
			Conflict("forced")
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if runs != 2 {
		t.Fatalf("runs = %d, want 2", runs)
	}
}

func TestAtomicMaxRetries(t *testing.T) {
	tm := &fakeTM{}
	th := NewThread(tm)
	th.MaxRetries = 4
	runs := 0
	err := th.Atomic(Regular, func(tx Tx) error {
		runs++
		Conflict("always")
		return nil
	})
	if !errors.Is(err, ErrConflict) {
		t.Fatalf("err = %v, want ErrConflict", err)
	}
	if runs != 4 {
		t.Fatalf("runs = %d, want 4", runs)
	}
}

func TestAtomicUserErrorNoRetry(t *testing.T) {
	tm := &fakeTM{}
	th := NewThread(tm)
	sentinel := errors.New("boom")
	v := mvar.New(1)
	runs := 0
	err := th.Atomic(Regular, func(tx Tx) error {
		runs++
		tx.Write(v, 99)
		return sentinel
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v", err)
	}
	if runs != 1 {
		t.Fatalf("runs = %d, want 1 (user errors must not retry)", runs)
	}
	if v.Load() != 1 {
		t.Fatalf("write leaked: %v", v.Load())
	}
}

func TestAtomicForeignPanicPropagates(t *testing.T) {
	tm := &fakeTM{}
	th := NewThread(tm)
	v := mvar.New(1)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected panic to propagate")
		}
		if fmt.Sprint(r) != "user panic" {
			t.Fatalf("unexpected panic payload: %v", r)
		}
		if v.Load() != 1 {
			t.Fatalf("write not rolled back on foreign panic: %v", v.Load())
		}
		if th.InTx() {
			t.Fatal("thread still in transaction after panic")
		}
	}()
	_ = th.Atomic(Regular, func(tx Tx) error {
		tx.Write(v, 2)
		panic("user panic")
	})
}

func TestNestedUsesBeginNested(t *testing.T) {
	tm := &fakeTM{}
	th := NewThread(tm)
	if err := th.Atomic(Regular, func(tx Tx) error {
		return th.Atomic(Regular, func(tx2 Tx) error { return nil })
	}); err != nil {
		t.Fatal(err)
	}
	if tm.begun != 1 {
		t.Fatalf("top-level begins = %d, want 1", tm.begun)
	}
	if tm.nestedBegun != 1 {
		t.Fatalf("nested begins = %d, want 1", tm.nestedBegun)
	}
	if th.Stats.NestedBegins != 1 {
		t.Fatalf("nested stat = %d, want 1", th.Stats.NestedBegins)
	}
}

func TestDepthTracking(t *testing.T) {
	tm := &fakeTM{}
	th := NewThread(tm)
	if th.Depth() != 0 {
		t.Fatal("depth outside tx must be 0")
	}
	_ = th.Atomic(Regular, func(tx Tx) error {
		if th.Depth() != 1 {
			t.Errorf("depth = %d, want 1", th.Depth())
		}
		_ = th.Atomic(Regular, func(tx2 Tx) error {
			if th.Depth() != 2 {
				t.Errorf("depth = %d, want 2", th.Depth())
			}
			return nil
		})
		if th.Depth() != 1 {
			t.Errorf("depth after child = %d, want 1", th.Depth())
		}
		return nil
	})
	if th.Depth() != 0 {
		t.Fatal("depth must return to 0")
	}
}

func TestCurrentExposed(t *testing.T) {
	tm := &fakeTM{}
	th := NewThread(tm)
	if th.Current() != nil {
		t.Fatal("Current outside tx must be nil")
	}
	_ = th.Atomic(Regular, func(tx Tx) error {
		if th.Current() == nil {
			t.Error("Current inside tx must be non-nil")
		}
		return nil
	})
}

func TestReadT(t *testing.T) {
	tm := &fakeTM{}
	th := NewThread(tm)
	v := mvar.New(7)
	var zero mvar.AnyVar
	_ = th.Atomic(Regular, func(tx Tx) error {
		if got := ReadT[int](tx, v); got != 7 {
			t.Errorf("ReadT = %d, want 7", got)
		}
		if got := ReadT[int](tx, &zero); got != 0 {
			t.Errorf("ReadT zero = %d, want 0", got)
		}
		if got := ReadT[*fakeTM](tx, &zero); got != nil {
			t.Errorf("ReadT nil pointer = %v, want nil", got)
		}
		return nil
	})
}

func TestFlatChildDelegates(t *testing.T) {
	tm := &fakeTM{}
	parent := tm.Begin(NewThread(tm), Regular)
	child := FlatChild(parent)
	v := mvar.New(1)
	child.Write(v, 5)
	if got := child.Read(v); got != 5 {
		t.Fatalf("flat child read = %v, want 5", got)
	}
	if err := child.Commit(); err != nil {
		t.Fatalf("flat child commit must be a no-op success: %v", err)
	}
	child.Rollback() // must not undo the parent's buffered state
	if got := parent.Read(v); got != 5 {
		t.Fatalf("parent lost write after flat child rollback: %v", got)
	}
}
