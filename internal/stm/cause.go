package stm

import (
	"fmt"
	"strings"
)

// ConflictCause classifies why a transaction attempt aborted. Engines tag
// every conflict site with the cause that made it give up, the abort is
// counted per cause in Stats, and the cause is handed to the thread's
// ContentionManager so retry policy can react to *why* transactions abort
// — lock-busy storms want different treatment than validation failures.
//
// The zero value CauseUnknown is reserved for conflicts whose origin the
// driver cannot see (e.g. an engine returning the bare ErrConflict
// sentinel from Commit).
type ConflictCause uint8

const (
	// CauseUnknown marks a conflict of unclassified origin.
	CauseUnknown ConflictCause = iota
	// CauseReadValidation: a read observed a locked, changing, or
	// too-new location (invisible-read post-validation failed).
	CauseReadValidation
	// CauseLockBusy: a write lock could not be acquired — at encounter
	// time for eager engines (LSA, SwissTM) or at commit time for
	// deferred-update engines (OE-STM, TL2).
	CauseLockBusy
	// CauseSnapshotExtension: a lazy snapshot extension failed — the
	// read set no longer validated at the newer clock value.
	CauseSnapshotExtension
	// CauseCommitValidation: commit-time (or nested-commit-time)
	// validation of the protected read set failed.
	CauseCommitValidation
	// CauseElasticWindow: the elastic sliding window's cut consistency
	// broke — an immediate past read of a read-only prefix changed.
	CauseElasticWindow
	// CauseDoomed: an engine-level contention manager doomed this
	// transaction in favour of a conflicting one (SwissTM's greedy
	// write/write arbitration).
	CauseDoomed
	// CauseExplicit: user or library code forced a retry via Conflict
	// (e.g. the eec structures aborting when a traversal window moved).
	CauseExplicit

	// NumCauses is the number of distinct causes; per-cause counter
	// arrays are sized by it.
	NumCauses = int(CauseExplicit) + 1
)

// causeNames indexes the display names by cause.
var causeNames = [NumCauses]string{
	CauseUnknown:           "unknown",
	CauseReadValidation:    "read-validation",
	CauseLockBusy:          "lock-busy",
	CauseSnapshotExtension: "snapshot-extension",
	CauseCommitValidation:  "commit-validation",
	CauseElasticWindow:     "elastic-window",
	CauseDoomed:            "doomed",
	CauseExplicit:          "explicit",
}

// String returns the hyphenated lower-case name of the cause.
func (c ConflictCause) String() string {
	if int(c) < NumCauses {
		return causeNames[c]
	}
	return fmt.Sprintf("cause(%d)", uint8(c))
}

// Slug returns the cause name in snake_case, the form used for CSV column
// names.
func (c ConflictCause) Slug() string {
	return strings.ReplaceAll(c.String(), "-", "_")
}

// Causes lists every cause in counter order — the iteration order of
// per-cause columns in reports.
func Causes() [NumCauses]ConflictCause {
	var out [NumCauses]ConflictCause
	for i := range out {
		out[i] = ConflictCause(i)
	}
	return out
}

// conflictPanics pre-boxes one conflictSignal per cause so Abort never
// allocates: the retry path must stay allocation-free, and panic payloads
// of interface type would otherwise box per abort.
var conflictPanics = func() [NumCauses]any {
	var out [NumCauses]any
	for i := range out {
		out[i] = conflictSignal{cause: ConflictCause(i)}
	}
	return out
}()

// Abort aborts the current transaction attempt with a typed cause and
// unwinds to the outermost Atomic, which rolls back, records the cause,
// consults the contention manager and retries. Engines call it from their
// conflict sites; user code should prefer Conflict.
//
//compose:noalloc
func Abort(cause ConflictCause) {
	if int(cause) >= NumCauses {
		cause = CauseUnknown
	}
	panic(conflictPanics[cause])
}

// ConflictError is a conflict with a cause attached, returned by engine
// Commit implementations in place of the bare ErrConflict sentinel. It
// matches errors.Is(err, ErrConflict), so callers that only care *that* a
// conflict happened keep working; the Atomic driver extracts the cause
// for telemetry and contention management.
type ConflictError struct{ cause ConflictCause }

// Error implements error.
func (e *ConflictError) Error() string {
	return "stm: transaction conflict (" + e.cause.String() + ")"
}

// Cause reports why the conflict happened.
func (e *ConflictError) Cause() ConflictCause { return e.cause }

// Is makes errors.Is(err, ErrConflict) hold for every ConflictError.
func (e *ConflictError) Is(target error) bool { return target == ErrConflict }

// conflictErrs pre-allocates one ConflictError per cause so engine commit
// paths return cause-carrying conflicts without allocating.
var conflictErrs = func() [NumCauses]*ConflictError {
	var out [NumCauses]*ConflictError
	for i := range out {
		out[i] = &ConflictError{cause: ConflictCause(i)}
	}
	return out
}()

// ConflictOf returns the shared cause-carrying conflict error for a cause.
// The result satisfies errors.Is(err, ErrConflict).
//
//compose:noalloc
func ConflictOf(cause ConflictCause) error {
	if int(cause) >= NumCauses {
		cause = CauseUnknown
	}
	return conflictErrs[cause]
}

// CauseOf extracts the conflict cause from an error: the attached cause of
// a ConflictError (or RetryExhaustedError), CauseUnknown for the bare
// ErrConflict sentinel or any other error.
func CauseOf(err error) ConflictCause {
	switch e := err.(type) {
	case *ConflictError:
		return e.cause
	case *RetryExhaustedError:
		return e.Cause
	}
	return CauseUnknown
}

// RetryExhaustedError is returned by Atomic when Thread.MaxRetries is set
// and every attempt aborted: it carries the attempt count and the last
// conflict's cause instead of losing the diagnosis to a bare sentinel. It
// matches errors.Is(err, ErrConflict).
type RetryExhaustedError struct {
	// Attempts is how many times the transaction was executed.
	Attempts int
	// Cause is why the final attempt aborted.
	Cause ConflictCause
}

// Error implements error.
func (e *RetryExhaustedError) Error() string {
	return fmt.Sprintf("stm: transaction conflict: retries exhausted after %d attempts (last cause: %s)",
		e.Attempts, e.Cause)
}

// Is makes errors.Is(err, ErrConflict) hold: exhaustion is still a
// conflict outcome.
func (e *RetryExhaustedError) Is(target error) bool { return target == ErrConflict }

// Unwrap exposes the sentinel for errors.Unwrap chains.
func (e *RetryExhaustedError) Unwrap() error { return ErrConflict }
