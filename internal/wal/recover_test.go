// Recovery contracts: scanning is idempotent (replay twice = once), a
// snapshot plus the log suffix replays to the same state as the full
// log, torn tails and corrupt records cut to the last valid commit with
// a typed error, and incomplete compositions roll back to a consistent
// cut that never materializes half a composed operation.
package wal

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// writeWorkload populates a fresh 4-shard log with elementary and
// composed operations, returning the directory and the expected final
// contents.
func writeWorkload(t *testing.T) (string, map[int64]int64) {
	t.Helper()
	const shards = 4
	dir := t.TempDir()
	l, _ := openLog(t, dir, shards)
	want := map[int64]int64{}
	for i := int64(0); i < 120; i++ {
		sh := int(i % shards)
		if err := logPut(l, sh, i, i*2); err != nil {
			t.Fatal(err)
		}
		want[i] = i * 2
		if i%9 == 0 {
			if err := logRemove(l, sh, i); err != nil {
				t.Fatal(err)
			}
			delete(want, i)
		}
		if i%13 == 0 {
			from, to := 1000+i, 2000+i+1 // adjacent residues: distinct shards
			shA, shB := int(from%shards), int(to%shards)
			parts := []int{shA, shB}
			if shA > shB {
				parts[0], parts[1] = shB, shA
			}
			err := logComposed(l, parts, []Effect{
				{Shard: shA, Key: from, Val: 5},
				{Remove: true, Shard: shB, Key: to},
			})
			if err != nil {
				t.Fatal(err)
			}
			want[from] = 5
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	return dir, want
}

func assertState(t *testing.T, got, want map[int64]int64, what string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d keys, want %d", what, len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("%s: key %d = %d, want %d", what, k, got[k], v)
		}
	}
}

// TestRecoveryIdempotence: scanning the same directory any number of
// times — and applying one Replay any number of times — yields the same
// state; Open's truncation pass changes nothing a Scan can see.
func TestRecoveryIdempotence(t *testing.T) {
	dir, want := writeWorkload(t)
	rp1, err := Scan(dir)
	if err != nil {
		t.Fatal(err)
	}
	assertState(t, applied(rp1), want, "first scan")
	assertState(t, applied(rp1), want, "same replay applied twice")
	rp2, err := Scan(dir)
	if err != nil {
		t.Fatal(err)
	}
	assertState(t, applied(rp2), want, "second scan")

	// Open truncates torn/rolled-back tails; a clean directory must come
	// through untouched and still scan identically after.
	l, rp3 := openLog(t, dir, 4)
	assertState(t, applied(rp3), want, "open after scans")
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	rp4, err := Scan(dir)
	if err != nil {
		t.Fatal(err)
	}
	assertState(t, applied(rp4), want, "scan after open")
}

// TestSnapshotPlusSuffix: a snapshot generation plus the records logged
// after it replays to exactly the state the full log replays to —
// snapshots accelerate, never alter.
func TestSnapshotPlusSuffix(t *testing.T) {
	const shards = 4
	dir := t.TempDir()
	l, _ := openLog(t, dir, shards)
	want := map[int64]int64{}
	put := func(key, val int64) {
		if err := logPut(l, int(key%shards), key, val); err != nil {
			t.Fatal(err)
		}
		want[key] = val
	}
	for i := int64(0); i < 80; i++ {
		put(i, i)
	}

	// Snapshot the current state the way Store.Snapshot does: all commit
	// locks at once, capture seq and contents per shard, release, write.
	seqs := make([]uint64, shards)
	entries := make([][]Entry, shards)
	for i := 0; i < shards; i++ {
		l.Lock(i)
	}
	for i := 0; i < shards; i++ {
		seqs[i] = l.SeqOf(i)
	}
	for k, v := range want {
		i := int(k % shards)
		entries[i] = append(entries[i], Entry{Key: k, Val: v})
	}
	for i := shards - 1; i >= 0; i-- {
		l.Unlock(i)
	}
	if err := l.WriteSnapshots(seqs, entries); err != nil {
		t.Fatal(err)
	}

	// The suffix: more elementary ops and a composition.
	for i := int64(80); i < 120; i++ {
		put(i, i*3)
	}
	if err := logComposed(l, []int{0, 1}, []Effect{
		{Shard: 0, Key: 5000, Val: 1}, {Shard: 1, Key: 5001, Val: 2},
	}); err != nil {
		t.Fatal(err)
	}
	want[5000], want[5001] = 1, 2
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	withSnap, err := Scan(dir)
	if err != nil {
		t.Fatal(err)
	}
	fullLog, err := ScanNoSnapshots(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := range withSnap.Shards {
		if withSnap.Shards[i].Snapshot == nil {
			t.Fatalf("shard %d: snapshot not picked up", i)
		}
		if fullLog.Shards[i].Snapshot != nil {
			t.Fatalf("shard %d: ScanNoSnapshots read a snapshot", i)
		}
	}
	assertState(t, applied(withSnap), want, "snapshot+suffix")
	assertState(t, applied(fullLog), want, "full log")
}

// TestTornTailTruncated: a frame cut mid-record replays cleanly to the
// last valid commit, reporting a typed *CorruptError with the cut
// point, and Open resumes appending from there.
func TestTornTailTruncated(t *testing.T) {
	const shards = 1
	dir := t.TempDir()
	l, _ := openLog(t, dir, shards)
	for i := int64(0); i < 20; i++ {
		if err := logPut(l, 0, i, i); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(dir, shardFileName(0))
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	// Slice off the last 5 bytes: the final record loses its tail.
	if err := os.Truncate(path, info.Size()-5); err != nil {
		t.Fatal(err)
	}

	rp, err := Scan(dir)
	if err != nil {
		t.Fatal(err)
	}
	sh := &rp.Shards[0]
	if sh.Torn == nil {
		t.Fatal("torn tail not reported")
	}
	var ce *CorruptError
	if !errors.As(error(sh.Torn), &ce) || ce.Shard != 0 || ce.Seq != 19 || ce.Reason != "truncated frame body" {
		t.Fatalf("torn = %+v, want shard 0, seq 19, truncated frame body", sh.Torn)
	}
	if sh.Keep != 19 {
		t.Fatalf("kept %d records, want 19", sh.Keep)
	}
	got := applied(rp)
	if len(got) != 19 || got[18] != 18 {
		t.Fatalf("replay after torn tail wrong: %d keys", len(got))
	}

	// Open truncates the tail and appends resume at seq 20.
	l2, _ := openLog(t, dir, shards)
	if err := logPut(l2, 0, 99, 99); err != nil {
		t.Fatal(err)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	rp2, err := Scan(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rp2.Shards[0].Torn != nil {
		t.Fatalf("still torn after Open: %v", rp2.Shards[0].Torn)
	}
	if got := applied(rp2); len(got) != 20 || got[99] != 99 {
		t.Fatalf("replay after repair wrong: %v keys", len(got))
	}
}

// TestTornTailBitFlip: a corrupted byte inside a record body fails the
// CRC and cuts there, keeping everything before it.
func TestTornTailBitFlip(t *testing.T) {
	dir := t.TempDir()
	l, _ := openLog(t, dir, 1)
	for i := int64(0); i < 10; i++ {
		if err := logPut(l, 0, i, i); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, shardFileName(0))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a bit in the last record's payload (its final byte).
	data[len(data)-1] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	rp, err := Scan(dir)
	if err != nil {
		t.Fatal(err)
	}
	sh := &rp.Shards[0]
	if sh.Torn == nil || sh.Torn.Reason != "crc mismatch" || sh.Torn.Seq != 9 {
		t.Fatalf("torn = %+v, want crc mismatch at seq 9", sh.Torn)
	}
	if got := applied(rp); len(got) != 9 {
		t.Fatalf("kept %d keys, want 9", len(got))
	}
}

// TestMissingIntentHealsFromMarker: a committed composition whose
// intent never reached one participant's disk is healed from the
// coordinator's surviving evidence (the marker sits right after the
// coordinator's intent, which carries the full effect list) — not
// rolled back. Records acknowledged after the composition on the
// surviving shards must come through untouched, and Open must
// materialize the heal so later appends order correctly across another
// crash.
func TestMissingIntentHealsFromMarker(t *testing.T) {
	const shards = 2
	dir := t.TempDir()
	l, _ := openLog(t, dir, shards)
	if err := logPut(l, 0, 0, 1); err != nil {
		t.Fatal(err)
	}
	if err := logComposed(l, []int{0, 1}, []Effect{
		{Shard: 0, Key: 10, Val: 7}, {Shard: 1, Key: 11, Val: 7},
	}); err != nil {
		t.Fatal(err)
	}
	if err := logPut(l, 0, 20, 9); err != nil { // acked after the composition: must survive
		t.Fatal(err)
	}
	if err := logPut(l, 1, 21, 2); err != nil { // lost with shard 1's file below
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Lose shard 1's whole file: its intent vanishes, as after a crash
	// where shard 1's batch never reached the disk.
	if err := os.Truncate(filepath.Join(dir, shardFileName(1)), 0); err != nil {
		t.Fatal(err)
	}

	rp, err := Scan(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(rp.Aborted) != 0 {
		t.Fatalf("aborted = %v, want none: the commit marker survived", rp.Aborted)
	}
	if len(rp.Healed) != 1 || rp.Healed[0] != 1 {
		t.Fatalf("healed = %v, want the composition's id", rp.Healed)
	}
	want := map[int64]int64{0: 1, 10: 7, 11: 7, 20: 9}
	assertState(t, applied(rp), want, "heal")
	if k := rp.Shards[0].Keep; k != 4 {
		t.Fatalf("shard 0 keeps %d records, want all 4", k)
	}

	// Open re-appends the healed intent to shard 1's file; a later write
	// to the healed key must then land after it, even across another
	// scan.
	l2, rp2 := openLog(t, dir, shards)
	assertState(t, applied(rp2), want, "heal after open")
	if err := logPut(l2, 1, 11, 99); err != nil {
		t.Fatal(err)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	rp3, err := Scan(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(rp3.Healed) != 0 {
		t.Fatalf("healed = %v after Open materialized the repair, want none", rp3.Healed)
	}
	want[11] = 99
	assertState(t, applied(rp3), want, "write after heal")
}

// TestLostMarkerRollsBack: with the commit marker lost (and no snapshot
// coverage), the composition's fate is unknowable and it rolls back on
// every participant by cutting at the intents — including, per the
// documented power-loss caveat, records acknowledged after a
// participant's intent.
func TestLostMarkerRollsBack(t *testing.T) {
	const shards = 2
	dir := t.TempDir()
	l, _ := openLog(t, dir, shards)
	if err := logPut(l, 0, 0, 1); err != nil { // survives: before the composition
		t.Fatal(err)
	}
	// The two-phase protocol minus the marker: as after a crash where
	// the coordinator's batch (intent+marker are appended back-to-back
	// under the locks, so they share a flush) died between the
	// participants' flushes. Here the coordinator's intent survives too,
	// modeling a torn tail that cut exactly the marker.
	effects := []Effect{{Shard: 0, Key: 10, Val: 7}, {Shard: 1, Key: 11, Val: 7}}
	l.Lock(0)
	l.Lock(1)
	txid := l.NextTxID()
	s0 := l.AppendIntent(0, txid, effects)
	s1 := l.AppendIntent(1, txid, effects)
	l.Unlock(1)
	l.Unlock(0)
	if err := l.Sync(0, s0); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(1, s1); err != nil {
		t.Fatal(err)
	}
	if err := logPut(l, 1, 21, 2); err != nil { // after shard 1's intent: cut with it
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	rp, err := Scan(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(rp.Aborted) != 1 || rp.Aborted[0] != txid {
		t.Fatalf("aborted = %v, want exactly the markerless composition", rp.Aborted)
	}
	if len(rp.Healed) != 0 {
		t.Fatalf("healed = %v, want none without a marker", rp.Healed)
	}
	want := map[int64]int64{0: 1}
	assertState(t, applied(rp), want, "rollback")
	if k0, k1 := rp.Shards[0].Keep, rp.Shards[1].Keep; k0 != 1 || k1 != 0 {
		t.Fatalf("keep = %d/%d, want 1/0 (cut at the intents)", k0, k1)
	}

	l2, rp2 := openLog(t, dir, shards)
	assertState(t, applied(rp2), want, "rollback after open")
	// The truncated shard accepts new appends from scratch.
	if err := logPut(l2, 1, 31, 3); err != nil {
		t.Fatal(err)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	rp3, err := Scan(dir)
	if err != nil {
		t.Fatal(err)
	}
	want[31] = 3
	assertState(t, applied(rp3), want, "appends after rollback")
}

// TestCommitMarkerAlone: a commit marker with no surviving intent
// anywhere must not count as a committed composition (nothing to apply,
// nothing to trust).
func TestCommitMarkerAlone(t *testing.T) {
	dir := t.TempDir()
	l, _ := openLog(t, dir, 1)
	l.Lock(0)
	seq := l.AppendCommit(0, 42)
	l.Unlock(0)
	if err := l.Sync(0, seq); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	rp, err := Scan(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(rp.Aborted) != 1 || rp.Aborted[0] != 42 {
		t.Fatalf("orphan commit marker not rolled back: %v", rp.Aborted)
	}
	if got := applied(rp); len(got) != 0 {
		t.Fatalf("orphan marker materialized state: %v", got)
	}
	if rp.MaxTxID != 42 {
		t.Fatalf("MaxTxID = %d, want 42 (ids must not be reused)", rp.MaxTxID)
	}
}

// TestCorruptSnapshotIgnored: a snap file that fails validation is
// reported and ignored — the full log replays instead, losing nothing
// (logs are never truncated by snapshotting).
func TestCorruptSnapshotIgnored(t *testing.T) {
	const shards = 2
	dir := t.TempDir()
	l, _ := openLog(t, dir, shards)
	want := map[int64]int64{}
	for i := int64(0); i < 40; i++ {
		if err := logPut(l, int(i%shards), i, i); err != nil {
			t.Fatal(err)
		}
		want[i] = i
	}
	seqs := make([]uint64, shards)
	entries := make([][]Entry, shards)
	for i := 0; i < shards; i++ {
		l.Lock(i)
		seqs[i] = l.SeqOf(i)
		l.Unlock(i)
	}
	for k, v := range want {
		i := int(k % shards)
		entries[i] = append(entries[i], Entry{Key: k, Val: v})
	}
	if err := l.WriteSnapshots(seqs, entries); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Corrupt shard 0's snap file body.
	path := filepath.Join(dir, snapFileName(0))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	rp, err := Scan(dir)
	if err != nil {
		t.Fatal(err)
	}
	var se *SnapshotError
	if rp.Shards[0].SnapCorrupt == nil || !errors.As(rp.Shards[0].SnapCorrupt, &se) {
		t.Fatalf("SnapCorrupt = %v, want typed *SnapshotError", rp.Shards[0].SnapCorrupt)
	}
	if rp.Shards[0].Snapshot != nil {
		t.Fatal("corrupt snapshot still used")
	}
	if rp.Shards[1].Snapshot == nil {
		t.Fatal("intact snapshot dropped")
	}
	assertState(t, applied(rp), want, "corrupt snapshot fallback")
}

// snapshotNow writes one snapshot generation the way Store.Snapshot
// does: all commit locks at once, per-shard seq and contents, release,
// write. perShard[i] is shard i's expected contents.
func snapshotNow(t *testing.T, l *Log, perShard []map[int64]int64) {
	t.Helper()
	n := len(perShard)
	seqs := make([]uint64, n)
	entries := make([][]Entry, n)
	for i := 0; i < n; i++ {
		l.Lock(i)
	}
	for i := 0; i < n; i++ {
		seqs[i] = l.SeqOf(i)
		for k, v := range perShard[i] {
			entries[i] = append(entries[i], Entry{Key: k, Val: v})
		}
	}
	for i := n - 1; i >= 0; i-- {
		l.Unlock(i)
	}
	if err := l.WriteSnapshots(seqs, entries); err != nil {
		t.Fatal(err)
	}
}

// TestCorruptSnapshotPreSnapshotComposition: a composition committed
// and snapshotted, followed by an acknowledged put, then one shard's
// snap file corrupts. Snapshot coverage is per shard, but the
// composition's commit decision must not be: the corrupt shard falls
// back to its full log (whose evidence is all there — logs are never
// truncated by snapshotting), the composition stays committed, and
// nothing is rolled back or torn.
func TestCorruptSnapshotPreSnapshotComposition(t *testing.T) {
	const shards = 2
	dir := t.TempDir()
	l, _ := openLog(t, dir, shards)
	if err := logComposed(l, []int{0, 1}, []Effect{
		{Shard: 0, Key: 100, Val: 1}, {Shard: 1, Key: 101, Val: 2},
	}); err != nil {
		t.Fatal(err)
	}
	if err := logPut(l, 0, 200, 5); err != nil { // acked: must survive
		t.Fatal(err)
	}
	snapshotNow(t, l, []map[int64]int64{{100: 1, 200: 5}, {101: 2}})
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(dir, snapFileName(0))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	rp, err := Scan(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rp.Shards[0].SnapCorrupt == nil {
		t.Fatal("corrupt snap file not reported")
	}
	if len(rp.Aborted) != 0 {
		t.Fatalf("aborted = %v: a snapshotted composition was rolled back", rp.Aborted)
	}
	want := map[int64]int64{100: 1, 101: 2, 200: 5}
	assertState(t, applied(rp), want, "corrupt snap, pre-snapshot composition")
	if k, n := rp.Shards[0].Keep, len(rp.Shards[0].Records); k != n {
		t.Fatalf("shard 0 keeps %d of %d records; its log was cut", k, n)
	}

	l2, rp2 := openLog(t, dir, shards)
	assertState(t, applied(rp2), want, "after open")
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	rp3, err := Scan(dir)
	if err != nil {
		t.Fatal(err)
	}
	assertState(t, applied(rp3), want, "after open, rescanned")
}

// TestMixedSnapshotGenerations: a crash between WriteSnapshots' renames
// leaves shard 0 with the new generation and shard 1 with the old one.
// A composition inside the gap is covered by shard 0's snapshot but not
// shard 1's; coverage anywhere proves the whole composition durable
// (the barrier synced every log first), so recovery must equal the
// full-log replay — nothing aborted, nothing torn.
func TestMixedSnapshotGenerations(t *testing.T) {
	const shards = 2
	dir := t.TempDir()
	l, _ := openLog(t, dir, shards)
	perShard := []map[int64]int64{{}, {}}
	for i := int64(0); i < 10; i++ {
		sh := int(i % shards)
		if err := logPut(l, sh, i, i); err != nil {
			t.Fatal(err)
		}
		perShard[sh][i] = i
	}
	snapshotNow(t, l, perShard)
	gen1, err := os.ReadFile(filepath.Join(dir, snapFileName(1)))
	if err != nil {
		t.Fatal(err)
	}

	if err := logComposed(l, []int{0, 1}, []Effect{
		{Shard: 0, Key: 300, Val: 7}, {Shard: 1, Key: 301, Val: 8},
	}); err != nil {
		t.Fatal(err)
	}
	perShard[0][300], perShard[1][301] = 7, 8
	if err := logPut(l, 1, 400, 9); err != nil { // acked: must survive
		t.Fatal(err)
	}
	perShard[1][400] = 9
	snapshotNow(t, l, perShard)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// The crash: shard 1's gen-2 rename never happened.
	if err := os.WriteFile(filepath.Join(dir, snapFileName(1)), gen1, 0o644); err != nil {
		t.Fatal(err)
	}

	want := map[int64]int64{}
	for _, m := range perShard {
		for k, v := range m {
			want[k] = v
		}
	}
	rp, err := Scan(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(rp.Aborted) != 0 {
		t.Fatalf("aborted = %v: mixed snapshot generations rolled back a committed composition", rp.Aborted)
	}
	assertState(t, applied(rp), want, "mixed generations")
	full, err := ScanNoSnapshots(dir)
	if err != nil {
		t.Fatal(err)
	}
	assertState(t, applied(full), want, "full log")
}

// TestSummaryMentionsRecovery pins the startup log line CI greps for.
func TestSummaryMentionsRecovery(t *testing.T) {
	dir, _ := writeWorkload(t)
	rp, err := Scan(dir)
	if err != nil {
		t.Fatal(err)
	}
	s := rp.Summary()
	if len(s) == 0 || s[:14] != "wal: recovered" {
		t.Fatalf("summary = %q", s)
	}
}
