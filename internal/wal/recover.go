package wal

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"slices"
	"strings"
)

// ShardState is one shard's recovered contents: the snapshot (if any),
// the decoded log records, and how much of each survives.
type ShardState struct {
	// Snapshot holds the shard's snap-file entries (nil without one);
	// SnapSeq is the log sequence the snapshot covers — records with
	// Seq <= SnapSeq are already folded in and are skipped by Apply.
	Snapshot []Entry
	SnapSeq  uint64
	// SnapCorrupt records a snap file that failed validation; the
	// snapshot is then ignored and the full log replayed instead (logs
	// are never truncated by snapshotting, so this loses nothing).
	SnapCorrupt error

	// Records are the log's decoded records, in file order. Only the
	// first Keep of them survive: the rest were rolled back because a
	// composition they belong to (or one they causally follow) did not
	// fully commit before the crash.
	Records []Record
	Keep    int

	// Torn describes why scanning the file stopped early (nil for a
	// clean end); it is the typed cut-point error of the torn-tail
	// contract.
	Torn *CorruptError

	// LastSeq is the sequence appends resume after; TruncateTo the file
	// size Open keeps.
	LastSeq    uint64
	TruncateTo int64

	offs []int64 // frame-start offset of each record
	end  int64   // offset after the last parsed record

	// repair holds the evidence records of committed compositions that
	// this shard's surviving prefix is missing — the intent a crash kept
	// off this shard's disk (and, for a snapshot-covered composition, a
	// lost commit marker), rebuilt from the evidence that did survive.
	// Apply replays them after the shard's records; Open re-appends them
	// to the file with fresh sequences so the healed composition is
	// ordinary log state on the next recovery.
	repair []Record
}

// Replay is the recovered state of a log directory, produced by Open or
// Scan and applied to a store via Apply.
type Replay struct {
	Shards []ShardState
	// Aborted lists the composition transaction ids rolled back at
	// recovery (commit marker lost, no snapshot coverage).
	Aborted []uint64
	// Healed lists committed compositions replayed despite evidence
	// missing from some participant's surviving prefix — the effects
	// came from the intent copies that did survive (every intent carries
	// the full effect list).
	Healed []uint64
	// MaxTxID is the highest composition id seen anywhere in the log.
	MaxTxID uint64
}

// scanOpts tunes scan for the recovery-equivalence tests.
type scanOpts struct {
	ignoreSnapshots bool
}

// Scan reads the log directory without opening it for appends: the same
// recovery Open performs, reusable any number of times (recovery is
// read-only, hence idempotent). The shard count comes from the meta
// file.
func Scan(dir string) (*Replay, error) {
	shards, err := readMeta(dir)
	if err != nil {
		return nil, err
	}
	return scan(dir, shards, scanOpts{})
}

// ScanNoSnapshots is Scan with snap files ignored — the full-log replay
// the snapshot-equivalence test compares against.
func ScanNoSnapshots(dir string) (*Replay, error) {
	shards, err := readMeta(dir)
	if err != nil {
		return nil, err
	}
	return scan(dir, shards, scanOpts{ignoreSnapshots: true})
}

// scan parses every shard file, decides which compositions committed,
// and rolls incomplete ones back to a consistent cut.
func scan(dir string, shards int, o scanOpts) (*Replay, error) {
	rp := &Replay{Shards: make([]ShardState, shards)}
	for i := range rp.Shards {
		sh := &rp.Shards[i]
		if !o.ignoreSnapshots {
			entries, seq, err := readSnapshot(filepath.Join(dir, snapFileName(i)), i)
			switch {
			case err == nil:
				sh.Snapshot, sh.SnapSeq = entries, seq
			case os.IsNotExist(err):
			default:
				sh.SnapCorrupt = err
			}
		}
		if err := scanShardFile(dir, i, shards, sh); err != nil {
			return nil, err
		}
	}
	resolveCompositions(rp)
	for i := range rp.Shards {
		finishShard(&rp.Shards[i])
	}
	return rp, nil
}

// scanShardFile parses shard i's log into sh, stopping at the first
// invalid record (truncated frame, CRC mismatch, malformed payload,
// non-increasing sequence, or an effect routed to a nonexistent shard).
func scanShardFile(dir string, i, shards int, sh *ShardState) error {
	data, err := os.ReadFile(filepath.Join(dir, shardFileName(i)))
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	var (
		off     int64
		prevSeq uint64
	)
	cut := func(reason string) {
		sh.Torn = &CorruptError{Shard: i, Off: off, Seq: prevSeq, Reason: reason}
	}
	for int(off) < len(data) {
		rest := data[off:]
		if len(rest) < frameHeaderSize {
			cut("truncated frame header")
			break
		}
		n := binary.BigEndian.Uint32(rest)
		if n == 0 || n > MaxRecordSize {
			cut("frame length out of range")
			break
		}
		if len(rest) < frameHeaderSize+int(n) {
			cut("truncated frame body")
			break
		}
		payload := rest[frameHeaderSize : frameHeaderSize+int(n)]
		if checksum(payload) != binary.BigEndian.Uint32(rest[4:]) {
			cut("crc mismatch")
			break
		}
		var r Record
		if err := DecodePayload(payload, &r); err != nil {
			cut(err.(*FormatError).Reason)
			break
		}
		if r.Seq <= prevSeq {
			cut("sequence not increasing")
			break
		}
		if bad := badEffectShard(&r, shards); bad >= 0 {
			cut(fmt.Sprintf("effect shard %d out of range", bad))
			break
		}
		sh.Records = append(sh.Records, r)
		sh.offs = append(sh.offs, off)
		prevSeq = r.Seq
		off += int64(frameHeaderSize) + int64(n)
	}
	sh.end = off
	sh.Keep = len(sh.Records)
	return nil
}

// badEffectShard returns the first out-of-range effect shard of an
// intent, or -1.
func badEffectShard(r *Record, shards int) int {
	if r.Kind != KindIntent {
		return -1
	}
	for i := range r.Effects {
		if s := r.Effects[i].Shard; s < 0 || s >= shards {
			return s
		}
	}
	return -1
}

// compo gathers one composition's evidence across the shards.
type compo struct {
	txid     uint64
	effects  []Effect
	intentAt map[int]int // shard -> record index of its intent
	commitAt int         // record index of the marker, -1 if unseen
	commitSh int
	// covered is set when any evidence record sits at or below its
	// shard's snapshot sequence. WriteSnapshots syncs every shard's log
	// through the covered sequences before the first snap file lands,
	// and snapshots are taken under all commit locks at once, so
	// coverage on one shard proves the whole composition's evidence was
	// durable — whatever the other shards' snap files look like now
	// (corrupt, or an older generation after a crash mid-write).
	covered bool
	cut     bool
}

// committed reports whether c's surviving evidence proves the
// composition committed: snapshot coverage anywhere, or its commit
// marker inside the surviving prefix. The marker is appended after
// every intent under the same commit locks, on the coordinator shard
// right after the coordinator's intent — so a surviving marker always
// comes with the full effect list, even when a participant's intent
// never reached its own disk.
func (c *compo) committed(keep []int) bool {
	if len(c.effects) == 0 {
		return false
	}
	return c.covered || (c.commitAt >= 0 && c.commitAt < keep[c.commitSh])
}

// participants returns the unique effect shards (the coordinator is the
// minimum).
func (c *compo) participants() []int {
	var out []int
	for i := range c.effects {
		s := c.effects[i].Shard
		found := false
		for _, p := range out {
			if p == s {
				found = true
				break
			}
		}
		if !found {
			out = append(out, s)
		}
	}
	return out
}

// resolveCompositions decides which compositions committed, heals
// committed ones whose evidence is partially missing, and rolls the
// rest back to a consistent cut.
//
// A composition counts as committed when compo.committed holds: any of
// its evidence is snapshot-covered, or its commit marker is inside the
// surviving prefix. A committed composition missing a participant's
// intent (the batch never reached that shard's disk, or a rollback cut
// stranded it) is healed: the full effect list from a surviving intent
// is queued as repair records that Apply replays after the shard's
// surviving records — which is exactly where the lost intent would have
// sat, since nothing after an unflushed (or cut) record ever survives
// on its shard.
//
// Anything else — commit marker lost, no snapshot coverage — is rolled
// back by cutting each participant's log at its intent. Cutting can
// strand the marker of a later composition on the same shard, so the
// rule iterates to a fixpoint — prefixes only shrink, so it
// terminates. The fixpoint keeps the cut causally consistent: a record
// that survives never depends (through log order on its shard) on one
// that was discarded. This rollback path carries the documented
// power-loss caveat: records acknowledged after a participant's intent
// fall with the cut when the marker is lost.
//
// Repair records are ordered by transaction id, which matches log
// order on any shard two compositions share: ids are allocated while
// holding every participant's commit lock, so overlapping compositions
// allocate in their serialization order.
func resolveCompositions(rp *Replay) {
	compos := map[uint64]*compo{}
	track := func(txid uint64) *compo {
		c, ok := compos[txid]
		if !ok {
			c = &compo{txid: txid, intentAt: map[int]int{}, commitAt: -1}
			compos[txid] = c
		}
		return c
	}
	for i := range rp.Shards {
		sh := &rp.Shards[i]
		for j := range sh.Records {
			r := &sh.Records[j]
			switch r.Kind {
			case KindIntent:
				if r.TxID > rp.MaxTxID {
					rp.MaxTxID = r.TxID
				}
				c := track(r.TxID)
				c.effects = r.Effects
				c.intentAt[i] = j
				if r.Seq <= sh.SnapSeq {
					c.covered = true
				}
			case KindCommit:
				if r.TxID > rp.MaxTxID {
					rp.MaxTxID = r.TxID
				}
				c := track(r.TxID)
				c.commitAt, c.commitSh = j, i
				if r.Seq <= sh.SnapSeq {
					c.covered = true
				}
			}
		}
	}

	keep := make([]int, len(rp.Shards))
	for i := range rp.Shards {
		keep[i] = rp.Shards[i].Keep
	}
	for changed := true; changed; {
		changed = false
		for _, c := range compos {
			if c.cut || c.committed(keep) {
				continue
			}
			c.cut = true
			rp.Aborted = append(rp.Aborted, c.txid)
			for sh, idx := range c.intentAt {
				if idx < keep[sh] {
					keep[sh] = idx
					changed = true
				}
			}
		}
	}
	for i := range rp.Shards {
		rp.Shards[i].Keep = keep[i]
	}

	// Heal committed compositions with missing evidence, in id order.
	ids := make([]uint64, 0, len(compos))
	for id, c := range compos {
		if !c.cut {
			ids = append(ids, id)
		}
	}
	slices.Sort(ids)
	for _, id := range ids {
		c := compos[id]
		healed := false
		for _, p := range c.participants() {
			if idx, ok := c.intentAt[p]; ok && idx < keep[p] {
				continue
			}
			healed = true
			rp.Shards[p].repair = append(rp.Shards[p].repair,
				Record{Kind: KindIntent, TxID: c.txid, Effects: c.effects})
		}
		// A covered composition can survive its marker (the snapshot is
		// the proof); restore the marker too so the healed state stands
		// on its own if the snap file is later lost.
		if c.commitAt < 0 || c.commitAt >= keep[c.commitSh] {
			coord := slices.Min(c.participants())
			rp.Shards[coord].repair = append(rp.Shards[coord].repair,
				Record{Kind: KindCommit, TxID: c.txid})
			healed = true
		}
		if healed {
			rp.Healed = append(rp.Healed, id)
		}
	}
}

// finishShard derives the append-resume point and file cut from the
// final surviving prefix.
func finishShard(sh *ShardState) {
	if sh.Keep < len(sh.Records) {
		sh.TruncateTo = sh.offs[sh.Keep]
	} else {
		sh.TruncateTo = sh.end
	}
	sh.LastSeq = sh.SnapSeq
	if sh.Keep > 0 {
		if s := sh.Records[sh.Keep-1].Seq; s > sh.LastSeq {
			sh.LastSeq = s
		}
	}
}

// Apply replays the recovered state: per shard, the snapshot entries,
// then every surviving record past the snapshot — puts and removes
// directly, adds by re-applying the delta, a committed intent's effects
// routed to the shard they were tagged with — then the shard's repair
// records (healed compositions whose intent this shard's prefix is
// missing; nothing logged after a lost record ever survives on its
// shard, so the tail is the lost intent's position). Every intent
// inside a surviving prefix belongs to a committed composition
// (resolveCompositions cut the others), so replay never materializes a
// torn composition. Apply is read-only on the Replay and can run any
// number of times (recovery idempotence).
func (rp *Replay) Apply(put func(key, val int64), remove func(key int64), add func(key, delta int64)) {
	for i := range rp.Shards {
		sh := &rp.Shards[i]
		for _, e := range sh.Snapshot {
			put(e.Key, e.Val)
		}
		for j := 0; j < sh.Keep; j++ {
			r := &sh.Records[j]
			if r.Seq <= sh.SnapSeq {
				continue
			}
			applyRecord(r, i, put, remove, add)
		}
		for j := range sh.repair {
			applyRecord(&sh.repair[j], i, put, remove, add)
		}
	}
}

// applyRecord replays one record's effect on shard i.
func applyRecord(r *Record, i int, put func(key, val int64), remove func(key int64), add func(key, delta int64)) {
	switch r.Kind {
	case KindPut:
		put(r.Key, r.Val)
	case KindRemove:
		remove(r.Key)
	case KindAdd:
		add(r.Key, r.Val)
	case KindIntent:
		for k := range r.Effects {
			e := &r.Effects[k]
			if e.Shard != i {
				continue
			}
			switch {
			case e.Remove:
				remove(e.Key)
			case e.Delta:
				add(e.Key, e.Val)
			default:
				put(e.Key, e.Val)
			}
		}
	}
}

// Summary renders a one-line human description of the recovery (for
// compose-server startup logs and CI greps).
func (rp *Replay) Summary() string {
	var records, snaps, torn int
	var firstTorn *CorruptError
	for i := range rp.Shards {
		sh := &rp.Shards[i]
		records += sh.Keep
		if sh.Snapshot != nil {
			snaps++
		}
		if sh.Torn != nil {
			torn++
			if firstTorn == nil {
				firstTorn = sh.Torn
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "wal: recovered %d shards: %d records, %d snapshots, %d compositions rolled back",
		len(rp.Shards), records, snaps, len(rp.Aborted))
	if len(rp.Healed) > 0 {
		fmt.Fprintf(&b, ", %d healed from surviving intents", len(rp.Healed))
	}
	if torn > 0 {
		fmt.Fprintf(&b, ", %d torn tails (first: %v)", torn, firstTorn)
	}
	return b.String()
}
