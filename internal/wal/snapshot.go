package wal

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
)

// Entry is one snapshot entry: a key and its value.
type Entry struct {
	Key, Val int64
}

// snapMagic identifies snap files (format version in the suffix).
var snapMagic = [8]byte{'o', 'e', 's', 'n', 'a', 'p', '0', '1'}

// snapFileName names shard i's snapshot file.
func snapFileName(i int) string { return fmt.Sprintf("shard-%04d.snap", i) }

// SnapshotError is the typed validation error of snap files; recovery
// treats a corrupt snapshot as absent and replays the full log instead
// (see ShardState.SnapCorrupt).
type SnapshotError struct {
	Shard  int
	Reason string
}

func (e *SnapshotError) Error() string {
	return fmt.Sprintf("wal: shard %d snapshot: %s", e.Shard, e.Reason)
}

// appendSnapshot encodes one shard's snapshot: magic, shard, covered
// sequence, entry count, entries, trailing CRC-32C over everything
// before it.
func appendSnapshot(dst []byte, shard int, seq uint64, entries []Entry) []byte {
	dst = append(dst, snapMagic[:]...)
	dst = binary.BigEndian.AppendUint32(dst, uint32(shard))
	dst = binary.BigEndian.AppendUint64(dst, seq)
	dst = binary.BigEndian.AppendUint64(dst, uint64(len(entries)))
	for _, e := range entries {
		dst = binary.BigEndian.AppendUint64(dst, uint64(e.Key))
		dst = binary.BigEndian.AppendUint64(dst, uint64(e.Val))
	}
	return binary.BigEndian.AppendUint32(dst, checksum(dst))
}

// readSnapshot parses shard i's snap file. Missing files return the
// underlying not-exist error; anything malformed returns a typed
// *SnapshotError.
func readSnapshot(path string, i int) ([]Entry, uint64, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, err
	}
	serr := func(reason string) ([]Entry, uint64, error) {
		return nil, 0, &SnapshotError{Shard: i, Reason: reason}
	}
	if len(b) < 32 || [8]byte(b[:8]) != snapMagic {
		return serr("not a snapshot file")
	}
	if checksum(b[:len(b)-4]) != binary.BigEndian.Uint32(b[len(b)-4:]) {
		return serr("checksum mismatch")
	}
	if int(binary.BigEndian.Uint32(b[8:])) != i {
		return serr("shard index mismatch")
	}
	seq := binary.BigEndian.Uint64(b[12:])
	count := binary.BigEndian.Uint64(b[20:])
	body := b[28 : len(b)-4]
	if uint64(len(body)) != count*16 {
		return serr("entry count mismatch")
	}
	entries := make([]Entry, 0, count)
	for len(body) > 0 {
		entries = append(entries, Entry{
			Key: int64(binary.BigEndian.Uint64(body)),
			Val: int64(binary.BigEndian.Uint64(body[8:])),
		})
		body = body[16:]
	}
	return entries, seq, nil
}

// WriteSnapshots persists one snapshot generation: entries[i] is shard
// i's full contents as of log sequence seqs[i], captured by the caller
// under every shard's commit lock at once (so each composition is
// entirely inside or entirely outside the generation). The logs are
// synced through the covered sequences before any snap file is
// written — a snap file on disk therefore implies its generation's log
// prefix is durable on every shard, which keeps mixed-generation
// directories (crash mid-write) recoverable. Files land via tmp+rename.
func (l *Log) WriteSnapshots(seqs []uint64, entries [][]Entry) error {
	if len(seqs) != len(l.shards) || len(entries) != len(l.shards) {
		return fmt.Errorf("wal: snapshot arity %d/%d, want %d", len(seqs), len(entries), len(l.shards))
	}
	for i := range l.shards {
		if err := l.Sync(i, seqs[i]); err != nil {
			return err
		}
	}
	var buf []byte
	for i := range l.shards {
		buf = appendSnapshot(buf[:0], i, seqs[i], entries[i])
		path := filepath.Join(l.dir, snapFileName(i))
		tmp := path + ".tmp"
		if err := writeFileSync(tmp, buf, l.fsync); err != nil {
			return err
		}
		if err := os.Rename(tmp, path); err != nil {
			return err
		}
	}
	if l.fsync {
		return syncDir(l.dir)
	}
	return nil
}

// writeFileSync writes data to path, optionally fsyncing before close.
func writeFileSync(path string, data []byte, fsync bool) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	_, err = f.Write(data)
	if err == nil && fsync {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}
