package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// Kind discriminates log records. See the package comment for the
// payload layout of each kind.
type Kind uint8

// Record kinds. The zero value is invalid so a zeroed byte never
// decodes as a record.
const (
	KindPut    Kind = 1 // single-shard put
	KindRemove Kind = 2 // single-shard remove
	KindIntent Kind = 3 // composed-op intent (full effect list)
	KindCommit Kind = 4 // composed-op commit marker (coordinator only)
	KindAdd    Kind = 5 // single-shard commutative delta
)

// String names the kind for errors and summaries.
func (k Kind) String() string {
	switch k {
	case KindPut:
		return "put"
	case KindRemove:
		return "remove"
	case KindIntent:
		return "intent"
	case KindCommit:
		return "commit"
	case KindAdd:
		return "add"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Effect is one key mutation of a composed operation, tagged with the
// shard it lands on so replay can route it without knowing the store's
// hash function.
type Effect struct {
	Remove bool // true = remove (Delta must be false)
	Delta  bool // true = commutative add: Val is a delta, not an absolute value
	Shard  int
	Key    int64
	Val    int64 // put value or add delta; 0 for removes
}

// Record is one decoded log record. Key/Val carry KindPut, KindRemove
// and KindAdd (Val is the delta), TxID carries KindIntent and
// KindCommit, Effects carries KindIntent.
type Record struct {
	Kind    Kind
	Seq     uint64
	Key     int64
	Val     int64
	TxID    uint64
	Effects []Effect
}

// Frame and payload limits. MaxEffects comfortably covers the wire
// protocol's per-request key limit (4096) plus slack.
const (
	frameHeaderSize = 8       // u32 length + u32 crc
	MaxRecordSize   = 1 << 20 // payload bytes
	MaxEffects      = 8192
	maxShard        = 1 << 16 // Effect.Shard encodes as u16
)

// castagnoli is the CRC-32C table used for every checksum in the
// package (records, meta, snapshots).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// checksum is CRC-32C over b.
//
//compose:noalloc
func checksum(b []byte) uint32 { return crc32.Checksum(b, castagnoli) }

// FormatError is the typed decode error of the record codec: every
// malformed payload decodes to one (the fuzzer pins this).
type FormatError struct {
	Reason string
}

func (e *FormatError) Error() string { return "wal: bad record: " + e.Reason }

func ferr(reason string) error { return &FormatError{Reason: reason} }

// effect op bytes.
const (
	effPut    = 0
	effRemove = 1
	effAdd    = 2
)

// AppendPayload appends the canonical encoding of r (frame excluded) to
// dst. It is the inverse of DecodePayload.
func AppendPayload(dst []byte, r *Record) []byte {
	dst = append(dst, byte(r.Kind))
	dst = binary.BigEndian.AppendUint64(dst, r.Seq)
	switch r.Kind {
	case KindPut, KindAdd:
		dst = binary.BigEndian.AppendUint64(dst, uint64(r.Key))
		dst = binary.BigEndian.AppendUint64(dst, uint64(r.Val))
	case KindRemove:
		dst = binary.BigEndian.AppendUint64(dst, uint64(r.Key))
	case KindIntent:
		dst = binary.BigEndian.AppendUint64(dst, r.TxID)
		dst = binary.BigEndian.AppendUint16(dst, uint16(len(r.Effects)))
		for i := range r.Effects {
			e := &r.Effects[i]
			switch {
			case e.Remove:
				dst = append(dst, effRemove)
				dst = binary.BigEndian.AppendUint16(dst, uint16(e.Shard))
				dst = binary.BigEndian.AppendUint64(dst, uint64(e.Key))
			case e.Delta:
				dst = append(dst, effAdd)
				dst = binary.BigEndian.AppendUint16(dst, uint16(e.Shard))
				dst = binary.BigEndian.AppendUint64(dst, uint64(e.Key))
				dst = binary.BigEndian.AppendUint64(dst, uint64(e.Val))
			default:
				dst = append(dst, effPut)
				dst = binary.BigEndian.AppendUint16(dst, uint16(e.Shard))
				dst = binary.BigEndian.AppendUint64(dst, uint64(e.Key))
				dst = binary.BigEndian.AppendUint64(dst, uint64(e.Val))
			}
		}
	case KindCommit:
		dst = binary.BigEndian.AppendUint64(dst, r.TxID)
	}
	return dst
}

// DecodePayload parses one record payload into r, reusing r.Effects.
// Every failure is a *FormatError; on success AppendPayload(nil, r)
// reproduces b exactly.
func DecodePayload(b []byte, r *Record) error {
	r.Effects = r.Effects[:0]
	r.Key, r.Val, r.TxID = 0, 0, 0
	if len(b) < 9 {
		return ferr("short header")
	}
	r.Kind = Kind(b[0])
	r.Seq = binary.BigEndian.Uint64(b[1:])
	if r.Seq == 0 {
		return ferr("zero sequence")
	}
	b = b[9:]
	switch r.Kind {
	case KindPut, KindAdd:
		if len(b) != 16 {
			return ferr("put payload length")
		}
		r.Key = int64(binary.BigEndian.Uint64(b))
		r.Val = int64(binary.BigEndian.Uint64(b[8:]))
	case KindRemove:
		if len(b) != 8 {
			return ferr("remove payload length")
		}
		r.Key = int64(binary.BigEndian.Uint64(b))
	case KindIntent:
		if len(b) < 10 {
			return ferr("intent payload length")
		}
		r.TxID = binary.BigEndian.Uint64(b)
		count := int(binary.BigEndian.Uint16(b[8:]))
		if count == 0 {
			return ferr("intent without effects")
		}
		b = b[10:]
		for i := 0; i < count; i++ {
			if len(b) < 11 {
				return ferr("effect truncated")
			}
			var e Effect
			op := b[0]
			e.Shard = int(binary.BigEndian.Uint16(b[1:]))
			e.Key = int64(binary.BigEndian.Uint64(b[3:]))
			switch op {
			case effPut, effAdd:
				if len(b) < 19 {
					return ferr("put effect truncated")
				}
				e.Delta = op == effAdd
				e.Val = int64(binary.BigEndian.Uint64(b[11:]))
				b = b[19:]
			case effRemove:
				e.Remove = true
				b = b[11:]
			default:
				return ferr("unknown effect op")
			}
			r.Effects = append(r.Effects, e)
		}
		if len(b) != 0 {
			return ferr("intent trailing bytes")
		}
	case KindCommit:
		if len(b) != 8 {
			return ferr("commit payload length")
		}
		r.TxID = binary.BigEndian.Uint64(b)
	default:
		return ferr("unknown record kind")
	}
	return nil
}

// appendFrame appends the framed encoding of r (length, CRC, payload).
func appendFrame(dst []byte, r *Record) []byte {
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0, 0, 0, 0, 0)
	dst = AppendPayload(dst, r)
	payload := dst[start+frameHeaderSize:]
	binary.BigEndian.PutUint32(dst[start:], uint32(len(payload)))
	binary.BigEndian.PutUint32(dst[start+4:], checksum(payload))
	return dst
}

// CorruptError describes where and why a shard's log stopped being
// trustworthy: scanning keeps everything before Off and discards the
// rest. Seq is the last sequence number that survived.
type CorruptError struct {
	Shard  int
	Off    int64
	Seq    uint64
	Reason string
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("wal: shard %d corrupt at offset %d (last valid seq %d): %s",
		e.Shard, e.Off, e.Seq, e.Reason)
}
