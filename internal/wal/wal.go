package wal

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
)

// Options parameterises Open.
type Options struct {
	// Shards is the shard count; it must match the store's (and, for an
	// existing directory, the meta file's).
	Shards int
	// Fsync makes every flush fsync before acknowledging. Off, a batch
	// is durable against process death (SIGKILL included: written bytes
	// live in the page cache) but not against power loss.
	Fsync bool
}

// Stats is a snapshot of the log's cumulative counters, exported
// through the server's stats endpoint into the wal_* CSV columns.
type Stats struct {
	Appends uint64 // records appended
	Syncs   uint64 // flush batches fully written (fsync syscalls when enabled)
	Bytes   uint64 // bytes the OS accepted into log files
}

// shardLog is one shard's log: a commit lock ordering appends with the
// shard's transactions, and a flush side implementing group commit.
type shardLog struct {
	// mu is the commit lock. The store holds it across the shard's
	// transaction, the sequence assignment and the buffer append, so log
	// order equals commit order. Sync must not be called with mu held.
	mu  sync.Mutex
	seq uint64 // last assigned sequence, guarded by mu
	buf []byte // pending batch, guarded by mu

	fmu      sync.Mutex // flush state below
	cond     *sync.Cond // signalled when durable advances or flushing ends
	flushing bool
	durable  uint64 // highest sequence flushed to the file
	spare    []byte // the off-duty swap buffer
	f        *os.File
	err      error // sticky first I/O error

	// bytes is this shard's slice of Log.bytes (the per-shard telemetry
	// the stats endpoint exposes as shard-labeled series).
	bytes atomic.Uint64
}

// Log is an open write-ahead log: one file per shard plus a meta file,
// all inside one directory. Create with Open.
type Log struct {
	dir    string
	fsync  bool
	shards []shardLog
	txid   atomic.Uint64

	appends atomic.Uint64
	syncs   atomic.Uint64
	bytes   atomic.Uint64
}

// Shards returns the shard count the log was opened with.
func (l *Log) Shards() int { return len(l.shards) }

// Dir returns the log directory.
func (l *Log) Dir() string { return l.dir }

// Enabled reports whether l is a live log; it is false on a nil
// receiver so callers can keep one unconditional expression.
func (l *Log) Enabled() bool { return l != nil }

// Stats snapshots the cumulative counters (zero on a nil receiver).
func (l *Log) Stats() Stats {
	if l == nil {
		return Stats{}
	}
	return Stats{
		Appends: l.appends.Load(),
		Syncs:   l.syncs.Load(),
		Bytes:   l.bytes.Load(),
	}
}

// ShardBytes returns the bytes the OS accepted into shard i's log file
// (zero on a nil receiver): the per-shard split of Stats.Bytes, summed
// over every shard it equals the aggregate at any quiescent point.
func (l *Log) ShardBytes(i int) uint64 {
	if l == nil {
		return 0
	}
	return l.shards[i].bytes.Load()
}

// metaName is the directory's identity file: magic+version, shard
// count, CRC. A shard-count mismatch is a hard error — records route
// effects by shard index, so replaying into a different layout would
// scatter keys.
const metaName = "wal.meta"

var metaMagic = [8]byte{'o', 'e', 'w', 'a', 'l', '0', '0', '1'}

// shardFileName names shard i's log file.
func shardFileName(i int) string { return fmt.Sprintf("shard-%04d.wal", i) }

// writeMeta creates the meta file.
func writeMeta(dir string, shards int) error {
	buf := make([]byte, 0, 16)
	buf = append(buf, metaMagic[:]...)
	buf = binary.BigEndian.AppendUint32(buf, uint32(shards))
	buf = binary.BigEndian.AppendUint32(buf, checksum(buf))
	tmp := filepath.Join(dir, metaName+".tmp")
	if err := os.WriteFile(tmp, buf, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, filepath.Join(dir, metaName))
}

// readMeta parses the meta file, returning the shard count.
func readMeta(dir string) (int, error) {
	b, err := os.ReadFile(filepath.Join(dir, metaName))
	if err != nil {
		return 0, err
	}
	if len(b) != 16 || [8]byte(b[:8]) != metaMagic {
		return 0, fmt.Errorf("wal: %s: not a wal meta file", metaName)
	}
	if checksum(b[:12]) != binary.BigEndian.Uint32(b[12:]) {
		return 0, fmt.Errorf("wal: %s: checksum mismatch", metaName)
	}
	return int(binary.BigEndian.Uint32(b[8:])), nil
}

// Open opens (creating if necessary) the log in dir, recovers the
// existing contents, truncates any torn or rolled-back tails, and
// returns the log positioned for appends together with the recovered
// state to replay. A fresh directory yields an empty Replay.
func Open(dir string, o Options) (*Log, *Replay, error) {
	if o.Shards < 1 || o.Shards > maxShard {
		return nil, nil, fmt.Errorf("wal: shard count %d out of range [1, %d]", o.Shards, maxShard)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, err
	}
	switch n, err := readMeta(dir); {
	case err == nil:
		if n != o.Shards {
			return nil, nil, fmt.Errorf("wal: %s has %d shards, store wants %d", dir, n, o.Shards)
		}
	case os.IsNotExist(err):
		if err := writeMeta(dir, o.Shards); err != nil {
			return nil, nil, err
		}
	default:
		return nil, nil, err
	}

	rp, err := scan(dir, o.Shards, scanOpts{})
	if err != nil {
		return nil, nil, err
	}

	l := &Log{dir: dir, fsync: o.Fsync, shards: make([]shardLog, o.Shards)}
	l.txid.Store(rp.MaxTxID)
	for i := range l.shards {
		s := &l.shards[i]
		s.cond = sync.NewCond(&s.fmu)
		path := filepath.Join(dir, shardFileName(i))
		f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
		if err != nil {
			l.closeFiles()
			return nil, nil, err
		}
		sh := &rp.Shards[i]
		if err := f.Truncate(sh.TruncateTo); err != nil {
			f.Close()
			l.closeFiles()
			return nil, nil, err
		}
		if _, err := f.Seek(sh.TruncateTo, 0); err != nil {
			f.Close()
			l.closeFiles()
			return nil, nil, err
		}
		s.f = f
		s.seq = sh.LastSeq
		s.durable = sh.LastSeq
		// Materialize the shard's healed compositions (see
		// ShardState.repair): re-append the evidence a crash kept off
		// this shard's disk, with fresh sequences, so the heal is
		// ordinary log state — without this, a later append followed by
		// another crash would replay the healed effects after it, out of
		// order.
		if len(sh.repair) > 0 {
			var buf []byte
			for j := range sh.repair {
				s.seq++
				sh.repair[j].Seq = s.seq
				buf = appendFrame(buf, &sh.repair[j])
			}
			_, err := f.Write(buf)
			if err == nil && o.Fsync {
				err = f.Sync()
			}
			if err != nil {
				l.closeFiles()
				return nil, nil, err
			}
			s.durable = s.seq
			sh.LastSeq = s.seq
			l.appends.Add(uint64(len(sh.repair)))
			l.syncs.Add(1)
			l.bytes.Add(uint64(len(buf)))
			s.bytes.Add(uint64(len(buf)))
		}
	}
	if o.Fsync {
		if err := syncDir(dir); err != nil {
			l.closeFiles()
			return nil, nil, err
		}
	}
	return l, rp, nil
}

// closeFiles releases whatever files Open managed to open.
func (l *Log) closeFiles() {
	for i := range l.shards {
		if f := l.shards[i].f; f != nil {
			f.Close()
		}
	}
}

// syncDir fsyncs a directory so created/renamed entries survive power
// loss.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// NextTxID allocates a composition transaction id (unique for the life
// of the directory: Open resumes past every id seen in the log).
// Composed committers must allocate it while holding every
// participant's commit lock (as the store does), so that id order
// matches log order on any shard two compositions share — recovery
// orders healed evidence by id (see resolveCompositions).
func (l *Log) NextTxID() uint64 { return l.txid.Add(1) }

// Lock acquires shard's commit lock. The caller runs the shard's
// transaction, appends the records it commits, and releases with
// Unlock before calling Sync.
func (l *Log) Lock(shard int) { l.shards[shard].mu.Lock() }

// Unlock releases shard's commit lock.
func (l *Log) Unlock(shard int) { l.shards[shard].mu.Unlock() }

// SeqOf returns shard's last assigned sequence. Callers must hold the
// shard's commit lock.
func (l *Log) SeqOf(shard int) uint64 { return l.shards[shard].seq }

// append assigns the next sequence and buffers r's frame. Callers must
// hold the shard's commit lock.
func (l *Log) append(shard int, r *Record) uint64 {
	s := &l.shards[shard]
	s.seq++
	r.Seq = s.seq
	s.buf = appendFrame(s.buf, r)
	l.appends.Add(1)
	return s.seq
}

// AppendPut buffers a put record. Callers must hold the shard's commit
// lock.
func (l *Log) AppendPut(shard int, key, val int64) uint64 {
	r := Record{Kind: KindPut, Key: key, Val: val}
	return l.append(shard, &r)
}

// AppendRemove buffers a remove record. Callers must hold the shard's
// commit lock.
func (l *Log) AppendRemove(shard int, key int64) uint64 {
	r := Record{Kind: KindRemove, Key: key}
	return l.append(shard, &r)
}

// AppendAdd buffers a commutative delta record (replay re-applies the
// delta to whatever the key holds). Callers must hold the shard's
// commit lock.
func (l *Log) AppendAdd(shard int, key, delta int64) uint64 {
	r := Record{Kind: KindAdd, Key: key, Val: delta}
	return l.append(shard, &r)
}

// AppendIntent buffers a composition's intent record (its full effect
// list) on shard. Callers must hold the commit lock of every effect's
// shard — the two-phase protocol appends the same intent to each
// participant.
func (l *Log) AppendIntent(shard int, txid uint64, effects []Effect) uint64 {
	r := Record{Kind: KindIntent, TxID: txid, Effects: effects}
	return l.append(shard, &r)
}

// AppendCommit buffers a composition's commit marker on its coordinator
// shard (the lowest participant index). Callers must hold the same
// locks as for AppendIntent.
func (l *Log) AppendCommit(shard int, txid uint64) uint64 {
	r := Record{Kind: KindCommit, TxID: txid}
	return l.append(shard, &r)
}

// Sync blocks until shard's records through seq are durable (written;
// fsynced when the log was opened with Fsync), grouping concurrent
// committers into shared flushes: the first waiter becomes the leader,
// swaps the shard's buffer for the spare, writes the whole batch in one
// write(2), and broadcasts; later committers ride the next batch. Must
// not be called while holding the shard's commit lock. The first I/O
// error is sticky: every subsequent Sync on the shard reports it.
func (l *Log) Sync(shard int, seq uint64) error {
	s := &l.shards[shard]
	s.fmu.Lock()
	for s.durable < seq && s.err == nil {
		if s.flushing {
			s.cond.Wait()
			continue
		}
		s.flushing = true
		spare := s.spare
		s.spare = nil
		s.fmu.Unlock()

		s.mu.Lock()
		batch := s.buf
		top := s.seq
		s.buf = spare[:0]
		s.mu.Unlock()

		var err error
		if len(batch) > 0 {
			var n int
			n, err = s.f.Write(batch)
			if err == nil && l.fsync {
				err = s.f.Sync()
			}
			// Count only durable work: the bytes Write reported written,
			// and the flush only when it fully succeeded — a failed
			// flush must not inflate the wal_* CSV columns.
			l.bytes.Add(uint64(n))
			s.bytes.Add(uint64(n))
			if err == nil {
				l.syncs.Add(1)
			}
		}

		s.fmu.Lock()
		s.spare = batch[:0]
		s.flushing = false
		if err != nil {
			s.err = err
		} else if top > s.durable {
			s.durable = top
		}
		s.cond.Broadcast()
	}
	err := s.err
	s.fmu.Unlock()
	return err
}

// Close flushes every shard's pending records and closes the files.
func (l *Log) Close() error {
	if l == nil {
		return nil
	}
	var first error
	for i := range l.shards {
		s := &l.shards[i]
		s.mu.Lock()
		seq := s.seq
		s.mu.Unlock()
		if err := l.Sync(i, seq); err != nil && first == nil {
			first = err
		}
		if err := s.f.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
