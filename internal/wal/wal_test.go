// Group-commit property tests: whatever interleaving N concurrent
// committers produce, replaying the log equals the sequential
// application of exactly the acknowledged operations in commit order —
// no reorder, no loss, no invention. The commit-lock protocol (append
// under the shard's lock, Sync after releasing it) is exercised the way
// the store drives it.
package wal

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
)

func init() {
	// Oversubscribe a 1-CPU CI box so the concurrency tests get real
	// interleavings (same rationale as the engine conformance suites).
	if runtime.GOMAXPROCS(0) < 8 {
		runtime.GOMAXPROCS(8)
	}
}

// openLog opens a fresh (or existing) log in dir, failing the test on
// error.
func openLog(t *testing.T, dir string, shards int) (*Log, *Replay) {
	t.Helper()
	l, rp, err := Open(dir, Options{Shards: shards})
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return l, rp
}

// applied replays rp into one flat map (keys are globally unique in
// these tests, so shard routing cannot collide).
func applied(rp *Replay) map[int64]int64 {
	m := map[int64]int64{}
	rp.Apply(
		func(key, val int64) { m[key] = val },
		func(key int64) { delete(m, key) },
		func(key, delta int64) { m[key] += delta })
	return m
}

// logPut runs the full single-shard commit protocol for one put.
func logPut(l *Log, shard int, key, val int64) error {
	l.Lock(shard)
	seq := l.AppendPut(shard, key, val)
	l.Unlock(shard)
	return l.Sync(shard, seq)
}

// logRemove is logPut's remove twin.
func logRemove(l *Log, shard int, key int64) error {
	l.Lock(shard)
	seq := l.AppendRemove(shard, key)
	l.Unlock(shard)
	return l.Sync(shard, seq)
}

// logComposed runs the two-phase cross-shard protocol: intent on every
// participant, commit marker on the coordinator, all under the
// participants' commit locks in ascending order, then Sync each.
// shards must be sorted ascending and unique.
func logComposed(l *Log, shards []int, effects []Effect) error {
	for _, sh := range shards {
		l.Lock(sh)
	}
	txid := l.NextTxID()
	seqs := make([]uint64, len(shards))
	for i, sh := range shards {
		seqs[i] = l.AppendIntent(sh, txid, effects)
	}
	seqs[0] = l.AppendCommit(shards[0], txid)
	for i := len(shards) - 1; i >= 0; i-- {
		l.Unlock(shards[i])
	}
	for i, sh := range shards {
		if err := l.Sync(sh, seqs[i]); err != nil {
			return err
		}
	}
	return nil
}

// TestGroupCommitConcurrent is the core property: 8 committers hammer a
// 4-shard log with puts, removes and cross-shard compositions, each
// mirroring its operation into a per-shard model map under the same
// commit lock that orders the log. Replay must equal the model exactly.
func TestGroupCommitConcurrent(t *testing.T) {
	const (
		shards  = 4
		workers = 8
		opsEach = 400
	)
	dir := t.TempDir()
	l, _ := openLog(t, dir, shards)

	// model[s] is shard s's expected contents, guarded by commit lock s.
	model := make([]map[int64]int64, shards)
	for i := range model {
		model[i] = map[int64]int64{}
	}
	shardOf := func(key int64) int { return int(key % shards) }

	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) + 1))
			for i := 0; i < opsEach; i++ {
				key := int64(w*opsEach+i) * 7 // globally unique
				sh := shardOf(key)
				switch rng.Intn(4) {
				case 0, 1: // put
					l.Lock(sh)
					model[sh][key] = key + 1
					seq := l.AppendPut(sh, key, key+1)
					l.Unlock(sh)
					if err := l.Sync(sh, seq); err != nil {
						errs[w] = err
						return
					}
				case 2: // put then remove (so removes hit live keys)
					l.Lock(sh)
					seq := l.AppendPut(sh, key, 1)
					l.Unlock(sh)
					if err := l.Sync(sh, seq); err != nil {
						errs[w] = err
						return
					}
					l.Lock(sh)
					delete(model[sh], key)
					seq = l.AppendRemove(sh, key)
					l.Unlock(sh)
					if err := l.Sync(sh, seq); err != nil {
						errs[w] = err
						return
					}
				case 3: // cross-shard composition: two puts, distinct shards
					key2 := key + 1 // adjacent keys land on adjacent shards
					sh2 := shardOf(key2)
					a, b := sh, sh2
					if a > b {
						a, b = b, a
					}
					effects := []Effect{
						{Shard: sh, Key: key, Val: 10},
						{Shard: sh2, Key: key2, Val: 20},
					}
					parts := []int{a}
					if b != a {
						parts = append(parts, b)
					}
					for _, p := range parts {
						l.Lock(p)
					}
					model[sh][key] = 10
					model[sh2][key2] = 20
					txid := l.NextTxID()
					seqs := make([]uint64, len(parts))
					for pi, p := range parts {
						seqs[pi] = l.AppendIntent(p, txid, effects)
					}
					seqs[0] = l.AppendCommit(parts[0], txid)
					for pi := len(parts) - 1; pi >= 0; pi-- {
						l.Unlock(parts[pi])
					}
					for pi, p := range parts {
						if err := l.Sync(p, seqs[pi]); err != nil {
							errs[w] = err
							return
						}
					}
				}
			}
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	rp, err := Scan(dir)
	if err != nil {
		t.Fatalf("Scan: %v", err)
	}
	// No reorder, no torn tail: every shard's file parses whole, with
	// strictly increasing sequences (Scan cuts on any violation).
	for i := range rp.Shards {
		sh := &rp.Shards[i]
		if sh.Torn != nil {
			t.Fatalf("shard %d torn after clean close: %v", i, sh.Torn)
		}
		if sh.Keep != len(sh.Records) {
			t.Fatalf("shard %d rolled back %d records after clean run", i, len(sh.Records)-sh.Keep)
		}
	}
	if len(rp.Aborted) != 0 {
		t.Fatalf("clean run aborted compositions: %v", rp.Aborted)
	}

	want := map[int64]int64{}
	for _, m := range model {
		for k, v := range m {
			want[k] = v
		}
	}
	got := applied(rp)
	if len(got) != len(want) {
		t.Fatalf("replay has %d keys, model %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("key %d: replayed %d, model %d", k, got[k], v)
		}
	}
}

// logAdd runs the full single-shard commit protocol for one delta.
func logAdd(l *Log, shard int, key, delta int64) error {
	l.Lock(shard)
	seq := l.AppendAdd(shard, key, delta)
	l.Unlock(shard)
	return l.Sync(shard, seq)
}

// TestAddRecordsReplay pins the delta record's replay semantics: adds
// re-apply their delta over whatever earlier records left behind — in
// log order, interleaved with puts, removes and composed add-effects.
func TestAddRecordsReplay(t *testing.T) {
	const shards = 2
	dir := t.TempDir()
	l, _ := openLog(t, dir, shards)
	check := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	check(logAdd(l, 0, 1, 5))   // absent key: counter starts at the delta
	check(logPut(l, 0, 1, 100)) // absolute write overrides the sum
	check(logAdd(l, 0, 1, -1))  // delta over the put
	check(logAdd(l, 1, 2, 7))   //
	check(logRemove(l, 1, 2))   // remove clears the counter
	check(logAdd(l, 1, 2, 3))   // and a later add restarts from zero
	check(logComposed(l, []int{0, 1}, []Effect{
		{Delta: true, Shard: 0, Key: 1, Val: 10},
		{Delta: true, Shard: 1, Key: 2, Val: -2},
	}))
	check(l.Close())

	rp, err := Scan(dir)
	check(err)
	got := applied(rp)
	want := map[int64]int64{1: 109, 2: 1}
	if len(got) != len(want) {
		t.Fatalf("replayed %v, want %v", got, want)
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("key %d: replayed %d, want %d (full: %v)", k, got[k], v, got)
		}
	}
}

// TestDeterministicBytes pins physical determinism: the same
// single-threaded operation sequence writes byte-identical shard files
// (group commit must not inject batching artifacts into the encoding).
func TestDeterministicBytes(t *testing.T) {
	const shards = 4
	run := func(dir string) {
		l, _ := openLog(t, dir, shards)
		for i := 0; i < 200; i++ {
			key := int64(i)
			sh := int(key % shards)
			if err := logPut(l, sh, key, key*3); err != nil {
				t.Fatalf("put: %v", err)
			}
			if i%5 == 0 {
				if err := logRemove(l, sh, key); err != nil {
					t.Fatalf("remove: %v", err)
				}
			}
			if i%7 == 0 {
				err := logComposed(l, []int{0, 1}, []Effect{
					{Shard: 0, Key: 10_000 + key, Val: key},
					{Shard: 1, Key: 20_001 + key, Val: key},
				})
				if err != nil {
					t.Fatalf("composed: %v", err)
				}
			}
		}
		if err := l.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
	}
	dirA, dirB := t.TempDir(), t.TempDir()
	run(dirA)
	run(dirB)
	for i := 0; i < shards; i++ {
		a, err := os.ReadFile(filepath.Join(dirA, shardFileName(i)))
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(filepath.Join(dirB, shardFileName(i)))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("shard %d files differ between identical runs (%d vs %d bytes)", i, len(a), len(b))
		}
	}
}

// TestReopenContinues pins the append-resume contract: reopening a
// directory recovers its contents, continues the per-shard sequences
// and composition ids past everything recovered, and the final log
// replays both generations.
func TestReopenContinues(t *testing.T) {
	const shards = 2
	dir := t.TempDir()
	l, rp := openLog(t, dir, shards)
	if len(applied(rp)) != 0 {
		t.Fatal("fresh directory replayed entries")
	}
	for i := int64(0); i < 50; i++ {
		if err := logPut(l, int(i%shards), i, i); err != nil {
			t.Fatal(err)
		}
	}
	if err := logComposed(l, []int{0, 1}, []Effect{
		{Shard: 0, Key: 100, Val: 1}, {Shard: 1, Key: 101, Val: 2},
	}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, rp2 := openLog(t, dir, shards)
	got := applied(rp2)
	if len(got) != 52 {
		t.Fatalf("reopen replayed %d keys, want 52", len(got))
	}
	// New appends must continue, not collide: a second composition's id
	// must exceed the first's, sequences must keep increasing.
	if id := l2.NextTxID(); id < 2 {
		t.Fatalf("txid restarted at %d after a logged composition", id)
	}
	for i := int64(50); i < 60; i++ {
		if err := logPut(l2, int(i%shards), i, i); err != nil {
			t.Fatal(err)
		}
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	rp3, err := Scan(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := range rp3.Shards {
		sh := &rp3.Shards[i]
		if sh.Torn != nil || sh.Keep != len(sh.Records) {
			t.Fatalf("shard %d not clean after reopen-append: torn=%v keep=%d/%d", i, sh.Torn, sh.Keep, len(sh.Records))
		}
		prev := uint64(0)
		for _, r := range sh.Records {
			if r.Seq <= prev {
				t.Fatalf("shard %d sequence regressed: %d after %d", i, r.Seq, prev)
			}
			prev = r.Seq
		}
	}
	if got := applied(rp3); len(got) != 62 {
		t.Fatalf("final replay has %d keys, want 62", len(got))
	}
}

// TestShardCountMismatch pins the layout guard: a directory created for
// N shards refuses to open as M — replaying shard-routed effects into a
// different layout would scatter keys.
func TestShardCountMismatch(t *testing.T) {
	dir := t.TempDir()
	l, _ := openLog(t, dir, 4)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir, Options{Shards: 8}); err == nil {
		t.Fatal("Open with mismatched shard count succeeded")
	}
}

// TestStatsCount pins the counters the CSV columns come from.
func TestStatsCount(t *testing.T) {
	dir := t.TempDir()
	l, _ := openLog(t, dir, 1)
	for i := int64(0); i < 10; i++ {
		if err := logPut(l, 0, i, i); err != nil {
			t.Fatal(err)
		}
	}
	s := l.Stats()
	if s.Appends != 10 {
		t.Fatalf("Appends = %d, want 10", s.Appends)
	}
	if s.Syncs == 0 || s.Bytes == 0 {
		t.Fatalf("Syncs/Bytes not counted: %+v", s)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	var nilLog *Log
	if nilLog.Enabled() || nilLog.Stats() != (Stats{}) {
		t.Fatal("nil log not inert")
	}
}

// TestStatsNotCountedOnError: a failed flush must not advance the
// wal_syncs/wal_bytes counters — the CSV columns report durable work,
// not attempts.
func TestStatsNotCountedOnError(t *testing.T) {
	dir := t.TempDir()
	l, _ := openLog(t, dir, 1)
	if err := logPut(l, 0, 1, 1); err != nil {
		t.Fatal(err)
	}
	before := l.Stats()

	// Kill the file descriptor under the log: the next flush's Write
	// fails, and the error goes sticky.
	if err := l.shards[0].f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := logPut(l, 0, 2, 2); err == nil {
		t.Fatal("Sync on a dead file reported success")
	}
	after := l.Stats()
	if after.Syncs != before.Syncs {
		t.Fatalf("Syncs advanced %d -> %d across a failed flush", before.Syncs, after.Syncs)
	}
	if after.Bytes != before.Bytes {
		t.Fatalf("Bytes advanced %d -> %d across a failed flush", before.Bytes, after.Bytes)
	}
	if after.Appends != before.Appends+1 {
		t.Fatalf("Appends = %d, want %d (the record was buffered)", after.Appends, before.Appends+1)
	}
	if err := l.Sync(0, l.shards[0].seq); err == nil {
		t.Fatal("sticky error cleared itself")
	}
}
