// Package wal is the per-shard write-ahead log behind internal/store's
// durability: every committed mutation is appended, at commit time, to
// the log of the shard it touched, and a restart replays those records
// into freshly built shards.
//
// # Record format
//
// Each record is framed as
//
//	u32 length | u32 crc32c(payload) | payload
//
// with a fixed-width big-endian payload:
//
//	kind    offset  fields
//	put     0       kind u8 | seq u64 | key i64 | val i64
//	remove  0       kind u8 | seq u64 | key i64
//	intent  0       kind u8 | seq u64 | txid u64 | count u16 | effects
//	commit  0       kind u8 | seq u64 | txid u64
//
// where each effect is op u8 (0 = put, 1 = remove) | shard u16 |
// key i64 | val i64 (puts only). The encoding is canonical — every
// valid byte string decodes to exactly one Record that re-encodes to
// the same bytes — which is what the codec fuzzer pins.
//
// seq is a per-shard sequence number, strictly increasing within a
// file. It is assigned under the shard's commit lock, which the store
// holds across the shard's transaction as well, so log order equals
// commit order per shard.
//
// # Group commit
//
// Appends go to an in-memory buffer under the shard's commit lock;
// durability is a separate Sync(shard, seq) call made after the lock is
// released. The first syncer becomes the flush leader: it swaps the
// shard's buffer for an empty spare, writes the whole batch with one
// write(2) (plus one fsync when enabled), and broadcasts the new
// durable sequence — concurrently committing transactions that arrived
// while the leader was writing ride the next batch. The steady-state
// path allocates nothing once the two swap buffers have grown to the
// batch size.
//
// # Cross-shard compositions
//
// A composed mutation (store MPut, CompareAndMove) is logged as one
// logical record in two phases, mirroring tinykv's lock/write
// column-family split: an intent record carrying the full effect list
// is appended to every participant shard, then a commit marker is
// appended to the coordinator (the lowest participant shard index) —
// all while the store holds every participant's commit lock, so the
// composition occupies one contiguous position in each participant's
// log. At replay a composition counts as committed when its commit
// marker survived, or when any of its evidence is covered by a
// snapshot (the snapshot barrier proves the rest was durable — see
// below). A committed composition whose intent never reached some
// participant's disk is healed rather than rolled back: the marker sits
// right after the coordinator's intent on the same shard, so a
// surviving marker always comes with the full effect list, and the
// missing shard's effects replay at its log tail — exactly where the
// lost intent would have sat, since nothing logged after an unflushed
// record survives on its shard. Open then re-appends the healed
// evidence to the shard's file so the repair is durable, not
// re-derived. Only a composition whose commit marker is lost (and that
// no snapshot covers) is rolled back, by cutting each participant's log
// at its intent, propagated to a fixpoint so that no surviving record
// depends on a discarded one. Replay therefore never materializes a
// torn composition. The rollback path carries one power-loss caveat:
// when the marker is lost, records acknowledged after a participant's
// intent fall with the cut.
//
// # Snapshots
//
// Snapshots are replay accelerators: the store dumps every shard under
// all commit locks at once (so a composition is entirely inside or
// entirely outside the snapshot), the log is synced through the
// snapshot sequences, and each shard's entries land in a snap file via
// tmp+rename. Logs are never truncated by snapshotting — recovery from
// snapshot plus log suffix must equal full-log replay, and the
// recovery tests assert exactly that. Because every log is synced
// through the covered sequences before the first snap file lands, a
// snap file is also a commit barrier: evidence covered by one shard's
// snapshot proves the whole composition was durable, even when another
// shard's snap file is corrupt or from an older generation (a crash
// between renames). Compaction (dropping the prefix a snapshot covers)
// is future work.
//
// # Corruption
//
// Scanning stops at the first invalid record — truncated frame, CRC
// mismatch, malformed payload, or sequence regression — and reports the
// cut as a typed *CorruptError (shard, byte offset, last valid
// sequence, reason). Reopening for appends truncates the file there, so
// a torn tail can never precede live records.
package wal
