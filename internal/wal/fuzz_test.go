// Malformed-input fuzzing for the record codec (what recovery parses
// from a possibly torn, possibly corrupt file): decoding must be total —
// any payload either decodes or returns a typed *FormatError — and
// accepted payloads must re-encode canonically, so a record the
// replayer trusts is exactly the bytes the committer wrote.
package wal

import (
	"bytes"
	"errors"
	"testing"
)

// fuzzSeeds is the seed corpus: one valid encoding per kind, their
// truncated tails, and a bit-flipped variant of each.
func fuzzSeeds() [][]byte {
	records := []Record{
		{Kind: KindPut, Seq: 1, Key: 42, Val: -7},
		{Kind: KindRemove, Seq: 2, Key: -1},
		{Kind: KindIntent, Seq: 3, TxID: 9, Effects: []Effect{
			{Shard: 0, Key: 1, Val: 2},
			{Remove: true, Shard: 3, Key: 4},
			{Delta: true, Shard: 1, Key: 5, Val: -6},
		}},
		{Kind: KindCommit, Seq: 4, TxID: 9},
		{Kind: KindAdd, Seq: 5, Key: 42, Val: -7},
	}
	var seeds [][]byte
	for i := range records {
		enc := AppendPayload(nil, &records[i])
		seeds = append(seeds, enc)
		seeds = append(seeds, enc[:len(enc)-1]) // truncated tail
		flipped := bytes.Clone(enc)
		flipped[len(flipped)/2] ^= 0x40 // bit flip mid-payload
		seeds = append(seeds, flipped)
	}
	seeds = append(seeds, nil, []byte{0}, []byte{0xff})
	return seeds
}

func FuzzDecodePayload(f *testing.F) {
	for _, s := range fuzzSeeds() {
		f.Add(s)
	}
	var r Record
	f.Fuzz(func(t *testing.T, payload []byte) {
		if err := DecodePayload(payload, &r); err != nil {
			var fe *FormatError
			if !errors.As(err, &fe) {
				t.Fatalf("decode failed with untyped error %v", err)
			}
			return
		}
		// Canonical re-encode: a payload recovery accepts must encode
		// back to exactly the bytes on disk.
		if enc := AppendPayload(nil, &r); !bytes.Equal(enc, payload) {
			t.Fatalf("decode/encode not canonical:\n in: %x\nout: %x", payload, enc)
		}
	})
}

// TestDecodeRejects pins the decoder's main refusals (the fuzzer proves
// totality; these prove the specific contracts recovery relies on).
func TestDecodeRejects(t *testing.T) {
	var r Record
	cases := []struct {
		name    string
		payload []byte
	}{
		{"empty", nil},
		{"short header", []byte{byte(KindPut), 0, 0, 0}},
		{"zero sequence", AppendPayload(nil, &Record{Kind: KindPut, Seq: 0, Key: 1})},
		{"unknown kind", append([]byte{0xee}, make([]byte, 16)...)},
		{"put short", AppendPayload(nil, &Record{Kind: KindPut, Seq: 1, Key: 1})[:20]},
		{"put trailing", append(AppendPayload(nil, &Record{Kind: KindPut, Seq: 1, Key: 1}), 0)},
		{"intent no effects", AppendPayload(nil, &Record{Kind: KindIntent, Seq: 1, TxID: 1})},
		{"add short", AppendPayload(nil, &Record{Kind: KindAdd, Seq: 1, Key: 1, Val: 2})[:20]},
		{"add trailing", append(AppendPayload(nil, &Record{Kind: KindAdd, Seq: 1, Key: 1, Val: 2}), 0)},
	}
	for _, c := range cases {
		err := DecodePayload(c.payload, &r)
		var fe *FormatError
		if err == nil || !errors.As(err, &fe) {
			t.Errorf("%s: err = %v, want *FormatError", c.name, err)
		}
	}
}

// TestRoundTripAllKinds pins exact round-trips, including negative keys
// and values and a maximal effect mix.
func TestRoundTripAllKinds(t *testing.T) {
	records := []Record{
		{Kind: KindPut, Seq: 1, Key: -(1 << 62), Val: 1<<62 - 1},
		{Kind: KindRemove, Seq: 1<<64 - 1, Key: 0},
		{Kind: KindCommit, Seq: 7, TxID: 1<<64 - 1},
		{Kind: KindIntent, Seq: 2, TxID: 3, Effects: []Effect{
			{Shard: maxShard - 1, Key: -9, Val: 9},
			{Remove: true, Shard: 0, Key: 0},
			{Shard: 1, Key: 1, Val: -1},
			{Delta: true, Shard: 2, Key: 8, Val: -(1 << 40)},
		}},
		{Kind: KindAdd, Seq: 3, Key: 1 << 50, Val: -3},
	}
	var got Record
	for i := range records {
		enc := AppendPayload(nil, &records[i])
		if err := DecodePayload(enc, &got); err != nil {
			t.Fatalf("record %d: decode: %v", i, err)
		}
		if got.Kind != records[i].Kind || got.Seq != records[i].Seq ||
			got.Key != records[i].Key || got.Val != records[i].Val ||
			got.TxID != records[i].TxID || len(got.Effects) != len(records[i].Effects) {
			t.Fatalf("record %d: round-trip mismatch: %+v vs %+v", i, got, records[i])
		}
		for j := range got.Effects {
			if got.Effects[j] != records[i].Effects[j] {
				t.Fatalf("record %d effect %d: %+v vs %+v", i, j, got.Effects[j], records[i].Effects[j])
			}
		}
	}
}
