package workload

import (
	"runtime"
	"sync"
	"testing"
	"time"

	"oestm/internal/core"
	"oestm/internal/stm"
	"oestm/internal/tl2"
)

func quickScenarioConfig() ScenarioConfig {
	cfg := DefaultScenarioConfig().Scaled(16) // 16 keys, 4 accounts
	cfg.AuditPct = 20
	return cfg
}

func TestScenarioRegistry(t *testing.T) {
	names := ScenarioNames()
	if len(names) != 4 {
		t.Fatalf("scenarios = %v, want 4", names)
	}
	for _, name := range names {
		s, ok := NewScenario(name, quickScenarioConfig())
		if !ok || s == nil {
			t.Fatalf("NewScenario(%q) failed", name)
		}
		if s.Name() != name {
			t.Fatalf("scenario %q reports name %q", name, s.Name())
		}
		if s.Structures() == "" {
			t.Fatalf("scenario %q has no structures label", name)
		}
		if s.Violations() != 0 {
			t.Fatalf("fresh scenario %q already has violations", name)
		}
	}
	if _, ok := NewScenario("bogus", quickScenarioConfig()); ok {
		t.Fatal("NewScenario accepted unknown name")
	}
}

// TestScenarioSoundSingleThread runs every scenario single-threaded on
// OE-STM: with no concurrency there is nothing to break, so checkers and
// audits must stay silent.
func TestScenarioSoundSingleThread(t *testing.T) {
	for _, name := range ScenarioNames() {
		scn, _ := NewScenario(name, quickScenarioConfig())
		tm := core.New()
		th := stm.NewThread(tm)
		scn.Fill(th)
		w := scn.NewWorker(th, 0)
		for i := 0; i < 3000; i++ {
			w.Step()
		}
		scn.Check(th)
		if v := scn.Violations(); v != 0 {
			t.Fatalf("scenario %s: %d violations single-threaded", name, v)
		}
	}
}

// The checkers must actually fire: each test below seeds the exact
// intermediate state a non-atomic execution of the scenario's composed
// operation leaves behind, then verifies Check reports it.

func TestMoveCheckerDetectsLostKey(t *testing.T) {
	cfg := quickScenarioConfig()
	scn, _ := NewScenario("move", cfg)
	ms := scn.(*moveScenario)
	tm := core.New()
	th := stm.NewThread(tm)
	scn.Fill(th)
	// A torn move: the key has been removed from A but not yet added to
	// B — the state between the two halves of an unsound move.
	if !ms.a.Remove(th, 0) {
		t.Fatal("seed key 0 not in set A")
	}
	scn.Check(th)
	if scn.Violations() == 0 {
		t.Fatal("move checker missed a lost key")
	}
}

func TestMoveCheckerDetectsDuplicatedKey(t *testing.T) {
	cfg := quickScenarioConfig()
	scn, _ := NewScenario("move", cfg)
	ms := scn.(*moveScenario)
	tm := core.New()
	th := stm.NewThread(tm)
	scn.Fill(th)
	// A move that added before removing: the key is in both sets.
	if !ms.b.Add(th, 0) {
		t.Fatal("seed key 0 already in set B")
	}
	scn.Check(th)
	if scn.Violations() == 0 {
		t.Fatal("move checker missed a duplicated key")
	}
}

func TestInsertIfAbsentCheckerDetectsFullPair(t *testing.T) {
	cfg := quickScenarioConfig()
	scn, _ := NewScenario("insert-if-absent", cfg)
	is := scn.(*iiaScenario)
	tm := core.New()
	th := stm.NewThread(tm)
	scn.Fill(th)
	// Two unsound inserters raced: both members of a pair are present.
	is.s.Add(th, 2)
	is.s.Add(th, 3)
	scn.Check(th)
	if scn.Violations() == 0 {
		t.Fatal("insert-if-absent checker missed a fully present pair")
	}
}

func TestBankCheckerDetectsLostMoney(t *testing.T) {
	cfg := quickScenarioConfig()
	scn, _ := NewScenario("bank", cfg)
	bs := scn.(*bankScenario)
	tm := core.New()
	th := stm.NewThread(tm)
	scn.Fill(th)
	// A torn transfer: withdrawn but not yet deposited.
	bs.m.Put(th, 0, cfg.InitialBalance-1)
	scn.Check(th)
	if scn.Violations() == 0 {
		t.Fatal("bank checker missed a wrong total balance")
	}
}

func TestPipelineCheckerDetectsUncountedItem(t *testing.T) {
	cfg := quickScenarioConfig()
	scn, _ := NewScenario("pipeline", cfg)
	ps := scn.(*pipelineScenario)
	tm := core.New()
	th := stm.NewThread(tm)
	scn.Fill(th)
	// An item in the queues that the produced counter never saw — the
	// inverse of the torn stage, and the simplest conservation breach.
	ps.q1.Enqueue(th, 1)
	scn.Check(th)
	if scn.Violations() == 0 {
		t.Fatal("pipeline checker missed an uncounted item")
	}
}

// runUnsound drives one scenario with Unsound compositions (each half a
// separate transaction) under real concurrency on a correct engine and
// returns the observed violation count.
func runUnsound(t *testing.T, name string, dur time.Duration) uint64 {
	t.Helper()
	// On a single P the scheduler switches workers almost exclusively at
	// retry-backoff yields — never between an unsound composition's two
	// transactions — so the tear window rarely overlaps anything and the
	// test flakes. Oversubscribed OS threads restore genuinely
	// interleaved executions (same rationale as the cross-shard checkers
	// in internal/store).
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(8))
	cfg := quickScenarioConfig()
	cfg.Unsound = true
	scn, _ := NewScenario(name, cfg)
	tm := tl2.New()
	scn.Fill(stm.NewThread(tm))

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(idx int) {
			defer wg.Done()
			th := stm.NewThread(tm)
			w := scn.NewWorker(th, idx)
			for {
				select {
				case <-stop:
					return
				default:
					w.Step()
				}
			}
		}(i)
	}
	time.Sleep(dur)
	close(stop)
	wg.Wait()
	scn.Check(stm.NewThread(tm))
	return scn.Violations()
}

// TestUnsoundExecutionsViolate is the end-to-end counterpart of the
// seeded checker tests: with compositions split into separate
// transactions, concurrent workers must trip every scenario's invariant.
// The races are real races, so each scenario retries with growing
// durations before failing.
func TestUnsoundExecutionsViolate(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-dependent concurrency test")
	}
	for _, name := range ScenarioNames() {
		found := false
		for attempt := 0; attempt < 5 && !found; attempt++ {
			found = runUnsound(t, name, time.Duration(50+100*attempt)*time.Millisecond) > 0
		}
		if !found {
			t.Errorf("scenario %s: unsound concurrent execution never violated its invariant", name)
		}
	}
}
