// Package workload generates the paper's benchmark workload (§VII-A):
// mixes of contains / add / remove / addAll / removeAll operations over a
// key range of 2^13 against structures pre-filled with 2^12 elements, so
// that add and remove succeed with probability ~1/2. Bulk operations act
// on {v, closest integer to v/2}.
package workload

import (
	"fmt"
	"math/rand/v2"

	"oestm/internal/eec"
	"oestm/internal/seqset"
	"oestm/internal/stm"
)

// Kind enumerates the operations of the workload.
type Kind uint8

const (
	// Contains is a membership query (80% of the mix).
	Contains Kind = iota
	// Add inserts one key.
	Add
	// Remove deletes one key.
	Remove
	// AddAll atomically inserts {v, round(v/2)}.
	AddAll
	// RemoveAll atomically deletes {v, round(v/2)}.
	RemoveAll
)

// String names the operation kind.
func (k Kind) String() string {
	switch k {
	case Contains:
		return "contains"
	case Add:
		return "add"
	case Remove:
		return "remove"
	case AddAll:
		return "addAll"
	case RemoveAll:
		return "removeAll"
	default:
		return "unknown"
	}
}

// Op is one generated operation.
type Op struct {
	Kind Kind
	Key  int
	Pair [2]int // for AddAll / RemoveAll
}

// Config parameterises the generator. The zero value is not useful; use
// Default.
type Config struct {
	// InitialSize is the number of pre-filled elements (paper: 2^12).
	InitialSize int
	// KeyRange is the size of the key universe (paper: 2^13).
	KeyRange int
	// UpdatePct is the percentage of attempted updates (paper: 20).
	UpdatePct int
	// BulkPct is the percentage of all operations that are bulk
	// (addAll/removeAll); the paper evaluates 5 and 15.
	BulkPct int
	// Seed randomises the per-thread generators deterministically.
	Seed uint64
	// Dist selects the key distribution (see dist.go). The zero value is
	// uniform — the paper's setting.
	Dist DistConfig
}

// Default returns the paper's §VII-A configuration with the given bulk
// percentage.
func Default(bulkPct int) Config {
	return Config{
		InitialSize: 1 << 12,
		KeyRange:    1 << 13,
		UpdatePct:   20,
		BulkPct:     bulkPct,
		Seed:        0x0e57d,
	}
}

// Scaled returns Default shrunk by factor (for quick tests): sizes and
// range divide by factor, percentages unchanged.
func Scaled(bulkPct, factor int) Config {
	cfg := Default(bulkPct)
	if factor > 1 {
		cfg.InitialSize /= factor
		cfg.KeyRange /= factor
	}
	return cfg
}

// Gen deterministically generates the operation stream of one thread.
type Gen struct {
	cfg  Config
	rng  *rand.Rand
	keys Sampler
}

// NewGen returns the generator for the given thread index. It panics on
// an invalid cfg.Dist (CLI front-ends validate with DistConfig.Validate
// first).
func NewGen(cfg Config, thread int) *Gen {
	return &Gen{
		cfg:  cfg,
		rng:  rand.New(rand.NewPCG(cfg.Seed, uint64(thread)+1)),
		keys: NewSampler(cfg.Dist, cfg.KeyRange),
	}
}

// Next draws the next operation: UpdatePct% attempted updates, of which
// BulkPct points of the total are bulk operations, the rest split evenly
// between add and remove; everything else is contains.
func (g *Gen) Next() Op {
	r := g.rng.IntN(100)
	switch {
	case r >= g.cfg.UpdatePct:
		return Op{Kind: Contains, Key: g.key()}
	case r < g.cfg.BulkPct:
		v := g.key()
		pair := [2]int{v, (v + 1) / 2}
		if g.rng.IntN(2) == 0 {
			return Op{Kind: AddAll, Pair: pair}
		}
		return Op{Kind: RemoveAll, Pair: pair}
	default:
		if g.rng.IntN(2) == 0 {
			return Op{Kind: Add, Key: g.key()}
		}
		return Op{Kind: Remove, Key: g.key()}
	}
}

func (g *Gen) key() int { return g.keys.Next(g.rng) }

// FillKeys returns the deterministic initial content: every even key of
// the range, which is exactly InitialSize elements when KeyRange =
// 2*InitialSize (the paper's ratio) and gives add/remove the paper's
// ~1/2 success rate. A range with fewer than InitialSize even keys
// cannot honour the requested fill, so it panics instead of silently
// under-filling (which would skew the add/remove success rates every
// downstream measurement assumes).
func (cfg Config) FillKeys() []int {
	if evens := (cfg.KeyRange + 1) / 2; cfg.InitialSize > evens {
		panic(fmt.Sprintf(
			"workload: InitialSize %d needs %d even keys but KeyRange %d has only %d; use KeyRange >= 2*InitialSize",
			cfg.InitialSize, cfg.InitialSize, cfg.KeyRange, evens))
	}
	keys := make([]int, 0, cfg.InitialSize)
	for k := 0; k < cfg.KeyRange && len(keys) < cfg.InitialSize; k += 2 {
		keys = append(keys, k)
	}
	return keys
}

// Fill populates a transactional set with the initial content.
func Fill(th *stm.Thread, s eec.Set, cfg Config) {
	for _, k := range cfg.FillKeys() {
		s.Add(th, k)
	}
}

// FillSeq populates a sequential set with the initial content.
func FillSeq(s seqset.Set, cfg Config) {
	for _, k := range cfg.FillKeys() {
		s.Add(k)
	}
}

// Apply executes op against a transactional set.
func Apply(th *stm.Thread, s eec.Set, op Op) {
	switch op.Kind {
	case Contains:
		s.Contains(th, op.Key)
	case Add:
		s.Add(th, op.Key)
	case Remove:
		s.Remove(th, op.Key)
	case AddAll:
		s.AddAll(th, op.Pair[:])
	case RemoveAll:
		s.RemoveAll(th, op.Pair[:])
	}
}

// ApplySeq executes op against a sequential set.
func ApplySeq(s seqset.Set, op Op) {
	switch op.Kind {
	case Contains:
		s.Contains(op.Key)
	case Add:
		s.Add(op.Key)
	case Remove:
		s.Remove(op.Key)
	case AddAll:
		s.AddAll(op.Pair[:])
	case RemoveAll:
		s.RemoveAll(op.Pair[:])
	}
}
