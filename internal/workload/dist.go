// dist.go provides the pluggable key-distribution layer: every key drawn
// by the mix generator and by the composed scenarios goes through a
// Sampler, so the same workloads can be run uniform (the paper's §VII-A
// setting) or under production-shaped skew — Zipfian popularity, a fixed
// hotspot, or a hotspot whose hot window rotates over time (exercising
// outheritance under churn: the contended keys keep moving, so no warmed
// structure region stays hot).
//
// Samplers are per-thread: they draw from the thread's deterministic rng
// and may keep draw counters (shifting-hotspot), so identical seeds and
// configs reproduce identical key streams per thread. Every Next call is
// allocation-free — the harness records per-operation latency on the same
// path and must not add heap traffic.
package workload

import (
	"fmt"
	"math"
	"math/rand/v2"
)

// Distribution names accepted by DistConfig.Name. The zero name means
// DistUniform.
const (
	DistUniform         = "uniform"
	DistZipfian         = "zipfian"
	DistHotspot         = "hotspot"
	DistShiftingHotspot = "shifting-hotspot"
)

// DistNames lists the registered key distributions.
func DistNames() []string {
	return []string{DistUniform, DistZipfian, DistHotspot, DistShiftingHotspot}
}

// DistConfig selects and parameterises a key distribution. The zero value
// is uniform, so existing workload configs keep their meaning.
type DistConfig struct {
	// Name is one of DistNames; empty means DistUniform.
	Name string
	// Theta is the Zipfian skew in (0,1): higher is more skewed (YCSB's
	// default is 0.99, where ~10% of the keys draw roughly 3/4 of the
	// traffic at the paper's key-range sizes). Zero means DefaultTheta.
	// Zipfian only.
	Theta float64
	// HotOpsPct is the percentage of draws served from the hot window
	// (hotspot kinds; zero means DefaultHotOpsPct).
	HotOpsPct int
	// HotKeysPct is the percentage of the key range forming the hot
	// window (hotspot kinds; zero means DefaultHotKeysPct).
	HotKeysPct int
	// ShiftEvery is the number of draws between hot-window rotations
	// (shifting-hotspot; zero means DefaultShiftEvery). Each rotation
	// advances the window by its own width, so the hotspot walks the
	// whole key range.
	ShiftEvery int
}

// Defaults applied by normalize for zero-valued DistConfig fields.
const (
	DefaultTheta      = 0.99
	DefaultHotOpsPct  = 90
	DefaultHotKeysPct = 10
	DefaultShiftEvery = 1 << 14
)

// normalize resolves zero fields to their defaults.
func (d DistConfig) normalize() DistConfig {
	if d.Name == "" {
		d.Name = DistUniform
	}
	if d.Theta == 0 {
		d.Theta = DefaultTheta
	}
	if d.HotOpsPct == 0 {
		d.HotOpsPct = DefaultHotOpsPct
	}
	if d.HotKeysPct == 0 {
		d.HotKeysPct = DefaultHotKeysPct
	}
	if d.ShiftEvery == 0 {
		d.ShiftEvery = DefaultShiftEvery
	}
	return d
}

// Validate reports whether the config names a known distribution with
// parameters in range. CLI front-ends call it before building samplers;
// NewSampler panics on invalid configs.
func (d DistConfig) Validate() error {
	d = d.normalize()
	switch d.Name {
	case DistUniform:
	case DistZipfian:
		if d.Theta <= 0 || d.Theta >= 1 {
			return fmt.Errorf("workload: zipfian theta %v out of range (0,1)", d.Theta)
		}
	case DistHotspot, DistShiftingHotspot:
		if d.HotOpsPct < 1 || d.HotOpsPct > 100 {
			return fmt.Errorf("workload: hotspot ops%% %d out of range [1,100]", d.HotOpsPct)
		}
		if d.HotKeysPct < 1 || d.HotKeysPct > 100 {
			return fmt.Errorf("workload: hotspot keys%% %d out of range [1,100]", d.HotKeysPct)
		}
		if d.Name == DistShiftingHotspot && d.ShiftEvery < 1 {
			return fmt.Errorf("workload: shift-every %d must be positive", d.ShiftEvery)
		}
	default:
		return fmt.Errorf("workload: unknown distribution %q", d.Name)
	}
	return nil
}

// Label is the self-describing distribution tag used by the harness's
// tables and the CSV dist column: "uniform", "zipfian:0.99",
// "hotspot:90/10", "shifting-hotspot:90/10/16384" (the third component
// is the rotation period — every parameter that shapes a distribution
// appears in its label, so sweep entries never collide). It is
// comma-free by construction.
func (d DistConfig) Label() string {
	d = d.normalize()
	switch d.Name {
	case DistZipfian:
		return fmt.Sprintf("%s:%.2f", d.Name, d.Theta)
	case DistHotspot:
		return fmt.Sprintf("%s:%d/%d", d.Name, d.HotOpsPct, d.HotKeysPct)
	case DistShiftingHotspot:
		return fmt.Sprintf("%s:%d/%d/%d", d.Name, d.HotOpsPct, d.HotKeysPct, d.ShiftEvery)
	default:
		return d.Name
	}
}

// ZipfTheta returns the effective theta for the CSV theta column: the
// normalized skew for zipfian configs, 0 for every other distribution.
func (d DistConfig) ZipfTheta() float64 {
	d = d.normalize()
	if d.Name == DistZipfian {
		return d.Theta
	}
	return 0
}

// Sampler draws keys in [0, keyRange) from one distribution. Samplers are
// per-thread (they advance the thread's rng and may keep draw counters)
// and allocation-free per draw.
type Sampler interface {
	Next(rng *rand.Rand) int
}

// NewSampler builds the sampler for a distribution over keyRange keys. It
// panics on invalid configs or a non-positive keyRange (front-ends
// validate with DistConfig.Validate first).
func NewSampler(d DistConfig, keyRange int) Sampler {
	if err := d.Validate(); err != nil {
		panic(err.Error())
	}
	if keyRange < 1 {
		panic(fmt.Sprintf("workload: key range %d must be positive", keyRange))
	}
	d = d.normalize()
	switch d.Name {
	case DistUniform:
		return &uniformSampler{n: keyRange}
	case DistZipfian:
		return newZipfSampler(keyRange, d.Theta)
	case DistHotspot:
		return newHotspotSampler(keyRange, d, 0)
	default: // DistShiftingHotspot, by Validate
		return newHotspotSampler(keyRange, d, d.ShiftEvery)
	}
}

// uniformSampler is the paper's §VII-A key choice.
type uniformSampler struct{ n int }

func (s *uniformSampler) Next(rng *rand.Rand) int { return rng.IntN(s.n) }

// zipfSampler draws a bounded Zipfian over key ranks: key 0 is the
// hottest, frequencies fall off as rank^-theta. It is the classic YCSB
// ZipfianGenerator (Gray et al.'s rejection-free inversion) with the
// harmonic normaliser precomputed at construction.
type zipfSampler struct {
	n            int
	alpha        float64 // 1/(1-theta)
	zetan        float64 // generalised harmonic number H_{n,theta}
	eta          float64
	halfPowTheta float64 // 1 + 0.5^theta
}

func newZipfSampler(n int, theta float64) *zipfSampler {
	zetan := 0.0
	for i := 1; i <= n; i++ {
		zetan += 1 / math.Pow(float64(i), theta)
	}
	zeta2 := 1 + 1/math.Pow(2, theta)
	return &zipfSampler{
		n:            n,
		alpha:        1 / (1 - theta),
		zetan:        zetan,
		eta:          (1 - math.Pow(2/float64(n), 1-theta)) / (1 - zeta2/zetan),
		halfPowTheta: 1 + math.Pow(0.5, theta),
	}
}

func (s *zipfSampler) Next(rng *rand.Rand) int {
	if s.n == 1 {
		return 0
	}
	u := rng.Float64()
	uz := u * s.zetan
	if uz < 1 {
		return 0
	}
	if uz < s.halfPowTheta {
		return 1
	}
	k := int(float64(s.n) * math.Pow(s.eta*u-s.eta+1, s.alpha))
	if k >= s.n {
		k = s.n - 1
	}
	return k
}

// hotspotSampler serves hotOpsPct% of draws from a hot window of
// hotKeysPct% of the range and the rest uniformly from the cold
// remainder. With shiftEvery > 0 the window's start advances by the
// window width every shiftEvery draws, wrapping around the range.
//
// The rotation is keyed on a per-sampler draw counter, not wall time or
// a shared counter: that is what keeps key streams deterministic per
// thread (the reproducibility contract every distribution honours). The
// deliberate cost is that concurrent workers' windows drift apart as
// their op rates diverge, so cross-thread contention is softer than a
// globally synchronised rotation would produce — the regime exercised is
// hot-window *churn* (warmed regions going cold and cold ones hot),
// which per-thread rotation delivers regardless of drift.
type hotspotSampler struct {
	n          int
	hotN       int // window width, >= 1
	hotOpsPct  int
	shiftEvery int
	draws      int
	start      int // current window start
}

func newHotspotSampler(n int, d DistConfig, shiftEvery int) *hotspotSampler {
	hotN := n * d.HotKeysPct / 100
	if hotN < 1 {
		hotN = 1
	}
	if hotN > n {
		hotN = n
	}
	return &hotspotSampler{n: n, hotN: hotN, hotOpsPct: d.HotOpsPct, shiftEvery: shiftEvery}
}

func (s *hotspotSampler) Next(rng *rand.Rand) int {
	if s.shiftEvery > 0 {
		if s.draws >= s.shiftEvery {
			s.draws = 0
			s.start = (s.start + s.hotN) % s.n
		}
		s.draws++
	}
	if s.hotN == s.n || rng.IntN(100) < s.hotOpsPct {
		return (s.start + rng.IntN(s.hotN)) % s.n
	}
	// Cold draw: uniform over the keys outside the window.
	return (s.start + s.hotN + rng.IntN(s.n-s.hotN)) % s.n
}
