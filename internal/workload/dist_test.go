package workload

import (
	"math/rand/v2"
	"strings"
	"testing"
)

func testRNG(seed uint64) *rand.Rand { return rand.New(rand.NewPCG(seed, 1)) }

// distCases is one valid config per registered distribution, used by the
// range and determinism tests.
func distCases() []DistConfig {
	return []DistConfig{
		{Name: DistUniform},
		{Name: DistZipfian, Theta: 0.99},
		{Name: DistZipfian, Theta: 0.5},
		{Name: DistHotspot, HotOpsPct: 90, HotKeysPct: 10},
		{Name: DistShiftingHotspot, HotOpsPct: 90, HotKeysPct: 10, ShiftEvery: 64},
	}
}

func TestDistNamesAllValidate(t *testing.T) {
	for _, name := range DistNames() {
		if err := (DistConfig{Name: name}).Validate(); err != nil {
			t.Errorf("default-parameter %s config invalid: %v", name, err)
		}
	}
	if err := (DistConfig{}).Validate(); err != nil {
		t.Errorf("zero config must be valid uniform: %v", err)
	}
}

func TestDistValidateRejects(t *testing.T) {
	bad := []DistConfig{
		{Name: "bogus"},
		{Name: DistZipfian, Theta: 1.5},
		{Name: DistZipfian, Theta: -0.2},
		{Name: DistHotspot, HotOpsPct: 101},
		{Name: DistHotspot, HotOpsPct: 90, HotKeysPct: 200},
		{Name: DistShiftingHotspot, ShiftEvery: -1},
	}
	for _, d := range bad {
		if err := d.Validate(); err == nil {
			t.Errorf("Validate accepted %+v", d)
		}
	}
}

func TestDistLabels(t *testing.T) {
	cases := map[string]DistConfig{
		"uniform":                      {},
		"zipfian:0.99":                 {Name: DistZipfian},
		"zipfian:0.50":                 {Name: DistZipfian, Theta: 0.5},
		"hotspot:90/10":                {Name: DistHotspot},
		"hotspot:80/20":                {Name: DistHotspot, HotOpsPct: 80, HotKeysPct: 20},
		"shifting-hotspot:90/10/16384": {Name: DistShiftingHotspot},
		// The rotation period is part of the label: sweep entries
		// differing only in ShiftEvery must not collide.
		"shifting-hotspot:90/10/64": {Name: DistShiftingHotspot, ShiftEvery: 64},
	}
	for want, d := range cases {
		if got := d.Label(); got != want {
			t.Errorf("Label(%+v) = %q, want %q", d, got, want)
		}
		if strings.Contains(d.Label(), ",") {
			t.Errorf("label %q contains a comma (CSV-unsafe)", d.Label())
		}
	}
	if th := (DistConfig{Name: DistZipfian, Theta: 0.7}).ZipfTheta(); th != 0.7 {
		t.Errorf("zipf theta = %v, want 0.7", th)
	}
	if th := (DistConfig{Name: DistHotspot}).ZipfTheta(); th != 0 {
		t.Errorf("non-zipf theta = %v, want 0", th)
	}
}

// TestSamplersStayInRange draws from every distribution over several
// range sizes and checks the keys stay in [0, keyRange).
func TestSamplersStayInRange(t *testing.T) {
	for _, d := range distCases() {
		for _, n := range []int{1, 2, 7, 256, 8192} {
			s := NewSampler(d, n)
			rng := testRNG(42)
			for i := 0; i < 2000; i++ {
				if k := s.Next(rng); k < 0 || k >= n {
					t.Fatalf("%s over %d keys drew %d", d.Label(), n, k)
				}
			}
		}
	}
}

// TestZipfianSkew checks the YCSB inversion's shape: rank 0 is drawn far
// more often than a deep rank, and higher theta concentrates more mass on
// the head.
func TestZipfianSkew(t *testing.T) {
	const n, draws = 1024, 200000
	headShare := func(theta float64) float64 {
		s := NewSampler(DistConfig{Name: DistZipfian, Theta: theta}, n)
		rng := testRNG(7)
		head := 0
		for i := 0; i < draws; i++ {
			if s.Next(rng) < n/10 {
				head++
			}
		}
		return float64(head) / draws
	}
	low, high := headShare(0.5), headShare(0.99)
	if high < 0.6 {
		t.Errorf("theta=0.99: top 10%% of keys drew only %.2f of traffic, want > 0.6", high)
	}
	if high <= low {
		t.Errorf("skew not monotone in theta: share(0.99)=%.2f <= share(0.5)=%.2f", high, low)
	}
	if low < 0.2 {
		t.Errorf("theta=0.5: head share %.2f implausibly low", low)
	}
}

// TestHotspotShape checks the 90/10 contract: ~90% of draws land in the
// first 10% of the range, the rest spread over the cold remainder.
func TestHotspotShape(t *testing.T) {
	const n, draws = 1000, 100000
	s := NewSampler(DistConfig{Name: DistHotspot, HotOpsPct: 90, HotKeysPct: 10}, n)
	rng := testRNG(9)
	hot := 0
	coldSeen := map[int]bool{}
	for i := 0; i < draws; i++ {
		k := s.Next(rng)
		if k < n/10 {
			hot++
		} else {
			coldSeen[k] = true
		}
	}
	share := float64(hot) / draws
	if share < 0.88 || share > 0.92 {
		t.Errorf("hot share = %.3f, want ~0.90", share)
	}
	if len(coldSeen) < (n-n/10)/2 {
		t.Errorf("cold draws cover only %d of %d cold keys", len(coldSeen), n-n/10)
	}
}

// TestShiftingHotspotRotates checks the hot window actually moves: the
// hot keys of the first period differ from the hot keys after a rotation,
// and the window wraps around the range end.
func TestShiftingHotspotRotates(t *testing.T) {
	const n = 100
	d := DistConfig{Name: DistShiftingHotspot, HotOpsPct: 100, HotKeysPct: 10, ShiftEvery: 50}
	s := NewSampler(d, n)
	rng := testRNG(3)
	window := func(draws int) map[int]bool {
		got := map[int]bool{}
		for i := 0; i < draws; i++ {
			got[s.Next(rng)] = true
		}
		return got
	}
	first := window(50)
	second := window(50)
	for k := range first {
		if k >= 10 {
			t.Fatalf("first window drew %d outside [0,10)", k)
		}
	}
	for k := range second {
		if k < 10 || k >= 20 {
			t.Fatalf("second window drew %d outside [10,20)", k)
		}
	}
	// Nine more rotations wrap the window back to the start.
	var last map[int]bool
	for i := 0; i < 9; i++ {
		last = window(50)
	}
	for k := range last {
		if k >= 10 {
			t.Fatalf("wrapped window drew %d outside [0,10)", k)
		}
	}
}

// TestSamplerDeterminism pins per-thread reproducibility at the sampler
// level: the same config and rng seed yield the same key stream.
func TestSamplerDeterminism(t *testing.T) {
	for _, d := range distCases() {
		a, b := NewSampler(d, 512), NewSampler(d, 512)
		ra, rb := testRNG(11), testRNG(11)
		for i := 0; i < 1000; i++ {
			if ka, kb := a.Next(ra), b.Next(rb); ka != kb {
				t.Fatalf("%s diverged at draw %d: %d vs %d", d.Label(), i, ka, kb)
			}
		}
	}
}

func TestNewSamplerPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewSampler must panic on an unknown distribution")
		}
	}()
	NewSampler(DistConfig{Name: "bogus"}, 10)
}
