package workload

import (
	"strings"
	"testing"
	"testing/quick"

	"oestm/internal/core"
	"oestm/internal/eec"
	"oestm/internal/seqset"
	"oestm/internal/stm"
)

func TestDefaultConfig(t *testing.T) {
	cfg := Default(5)
	if cfg.InitialSize != 4096 || cfg.KeyRange != 8192 {
		t.Fatalf("paper sizes wrong: %+v", cfg)
	}
	if cfg.UpdatePct != 20 || cfg.BulkPct != 5 {
		t.Fatalf("paper percentages wrong: %+v", cfg)
	}
}

func TestScaled(t *testing.T) {
	cfg := Scaled(15, 16)
	if cfg.InitialSize != 256 || cfg.KeyRange != 512 {
		t.Fatalf("scaling wrong: %+v", cfg)
	}
	if cfg.BulkPct != 15 {
		t.Fatalf("bulk pct lost: %+v", cfg)
	}
	if same := Scaled(5, 1); same.InitialSize != 4096 {
		t.Fatalf("factor 1 must not scale: %+v", same)
	}
}

func TestFillKeys(t *testing.T) {
	cfg := Default(5)
	keys := cfg.FillKeys()
	if len(keys) != cfg.InitialSize {
		t.Fatalf("fill size = %d, want %d", len(keys), cfg.InitialSize)
	}
	for _, k := range keys {
		if k%2 != 0 || k < 0 || k >= cfg.KeyRange {
			t.Fatalf("unexpected fill key %d", k)
		}
	}
}

// TestFillKeysRejectsUnderFill pins the guard against silent under-fill:
// FillKeys only emits even keys, so a range with fewer than InitialSize
// even keys must panic instead of returning a short (and skew-breaking)
// fill.
func TestFillKeysRejectsUnderFill(t *testing.T) {
	cfg := Default(5)
	cfg.InitialSize = cfg.KeyRange/2 + 1 // one more than the even keys available
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("FillKeys must panic when InitialSize > KeyRange/2")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "KeyRange >= 2*InitialSize") {
			t.Fatalf("panic message unhelpful: %v", r)
		}
	}()
	cfg.FillKeys()
}

// TestFillKeysBoundary checks the largest fill that still fits: exactly
// every even key of the range.
func TestFillKeysBoundary(t *testing.T) {
	cfg := Config{InitialSize: 8, KeyRange: 16}
	if got := len(cfg.FillKeys()); got != 8 {
		t.Fatalf("boundary fill size = %d, want 8", got)
	}
	odd := Config{InitialSize: 8, KeyRange: 15}
	if got := len(odd.FillKeys()); got != 8 {
		t.Fatalf("odd-range fill size = %d, want 8 (evens 0..14)", got)
	}
}

// TestMixProportions draws a large sample and checks the op mix matches
// §VII-A within tolerance.
func TestMixProportions(t *testing.T) {
	cfg := Default(15)
	g := NewGen(cfg, 0)
	const n = 200000
	counts := map[Kind]int{}
	for i := 0; i < n; i++ {
		counts[g.Next().Kind]++
	}
	pct := func(k Kind) float64 { return 100 * float64(counts[k]) / n }
	if got := pct(Contains); got < 78 || got > 82 {
		t.Fatalf("contains %% = %.2f, want ~80", got)
	}
	bulk := pct(AddAll) + pct(RemoveAll)
	if bulk < 13.5 || bulk > 16.5 {
		t.Fatalf("bulk %% = %.2f, want ~15", bulk)
	}
	single := pct(Add) + pct(Remove)
	if single < 3.5 || single > 6.5 {
		t.Fatalf("add+remove %% = %.2f, want ~5", single)
	}
}

// TestBulkPairRule checks the paper's bulk argument rule: the second key
// is the closest integer to v/2.
func TestBulkPairRule(t *testing.T) {
	cfg := Default(100) // all ops bulk
	cfg.UpdatePct = 100
	g := NewGen(cfg, 3)
	for i := 0; i < 1000; i++ {
		op := g.Next()
		if op.Kind != AddAll && op.Kind != RemoveAll {
			t.Fatalf("expected only bulk ops, got %v", op.Kind)
		}
		v, half := op.Pair[0], op.Pair[1]
		if half != (v+1)/2 {
			t.Fatalf("pair = %v, second must be round(v/2)", op.Pair)
		}
	}
}

func TestDeterminism(t *testing.T) {
	f := func(seed uint64, thread uint8) bool {
		cfg := Default(5)
		cfg.Seed = seed
		a, b := NewGen(cfg, int(thread)), NewGen(cfg, int(thread))
		for i := 0; i < 50; i++ {
			if a.Next() != b.Next() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestDeterminismEveryDistribution extends the reproducibility contract
// across the distribution layer: for every registered distribution,
// identical Seed + distribution config reproduce identical op streams per
// thread (shifting-hotspot keeps per-sampler draw state, so this also
// pins that the state is per-Gen, not shared).
func TestDeterminismEveryDistribution(t *testing.T) {
	for _, d := range distCases() {
		t.Run(d.Label(), func(t *testing.T) {
			f := func(seed uint64, thread uint8) bool {
				cfg := Default(5)
				cfg.Seed = seed
				cfg.Dist = d
				a, b := NewGen(cfg, int(thread)), NewGen(cfg, int(thread))
				for i := 0; i < 200; i++ {
					if a.Next() != b.Next() {
						return false
					}
				}
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestGenKeysFollowDistribution drives the full generator (not just the
// sampler) under a hotspot and checks the single-key ops concentrate on
// the hot window — the distribution really reaches the op stream.
func TestGenKeysFollowDistribution(t *testing.T) {
	cfg := Default(0) // no bulk ops: every update carries a single key
	cfg.Dist = DistConfig{Name: DistHotspot, HotOpsPct: 95, HotKeysPct: 5}
	g := NewGen(cfg, 1)
	hotMax := cfg.KeyRange * 5 / 100
	hot, total := 0, 0
	for i := 0; i < 100000; i++ {
		op := g.Next()
		if op.Kind == AddAll || op.Kind == RemoveAll {
			continue
		}
		total++
		if op.Key < hotMax {
			hot++
		}
	}
	if share := float64(hot) / float64(total); share < 0.93 || share > 0.97 {
		t.Fatalf("hot-key share = %.3f, want ~0.95", share)
	}
}

func TestThreadStreamsDiffer(t *testing.T) {
	cfg := Default(5)
	a, b := NewGen(cfg, 0), NewGen(cfg, 1)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Next() == b.Next() {
			same++
		}
	}
	if same > 50 {
		t.Fatalf("streams of different threads overlap too much: %d/100", same)
	}
}

// TestApplyAgreesWithSeq runs the same stream against a transactional
// set and its sequential twin and compares the final contents.
func TestApplyAgreesWithSeq(t *testing.T) {
	cfg := Scaled(15, 64) // 64 elements, range 128: quick
	tm := core.New()
	th := stm.NewThread(tm)
	tset := eec.NewLinkedListSet()
	sset := seqset.NewLinkedListSet()
	Fill(th, tset, cfg)
	FillSeq(sset, cfg)
	g1, g2 := NewGen(cfg, 7), NewGen(cfg, 7)
	for i := 0; i < 500; i++ {
		Apply(th, tset, g1.Next())
		ApplySeq(sset, g2.Next())
	}
	got := tset.Elements(th)
	want := sset.Elements()
	if len(got) != len(want) {
		t.Fatalf("sizes differ: %d vs %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("contents differ at %d: %d vs %d", i, got[i], want[i])
		}
	}
}

func TestKindString(t *testing.T) {
	names := map[Kind]string{
		Contains: "contains", Add: "add", Remove: "remove",
		AddAll: "addAll", RemoveAll: "removeAll", Kind(99): "unknown",
	}
	for k, want := range names {
		if k.String() != want {
			t.Fatalf("Kind(%d).String() = %q, want %q", k, k.String(), want)
		}
	}
}
