// scenario.go provides the composed-transaction scenario suite: workloads
// whose every operation is a *composition* of elementary operations
// (across two structures, or an elementary operation plus a condition),
// together with the machine-checkable invariant each composition must
// preserve. The single-structure mix of Gen covers the paper's Figs. 6-8;
// the scenarios cover the operations that motivate composition in the
// first place (§I, Fig. 1): move, insert-if-absent, bank transfers, and a
// producer/stage/consumer pipeline.
//
// Every scenario supports an Unsound mode that executes each composition
// as separate top-level transactions — the non-composable baseline of the
// paper's introduction. Its invariant checkers are expected to fire in
// that mode; they must stay silent on every transactional engine.
package workload

import (
	"math/rand/v2"
	"sync/atomic"

	"oestm/internal/eec"
	"oestm/internal/mvar"
	"oestm/internal/stm"
)

// ScenarioConfig parameterises the composed-transaction scenarios. The
// zero value is not useful; use DefaultScenarioConfig.
type ScenarioConfig struct {
	// Keys is the key universe per structure (move, insert-if-absent).
	Keys int
	// Accounts is the number of bank accounts (bank).
	Accounts int
	// InitialBalance is the starting balance per account (bank).
	InitialBalance int
	// MaxTransfer bounds the per-transfer amount (bank).
	MaxTransfer int
	// AuditPct is the percentage of steps that run the scenario's atomic
	// invariant audit instead of a mutation.
	AuditPct int
	// Unsound runs each composed operation as separate top-level
	// transactions, deliberately breaking atomicity. The invariant
	// checkers are expected to report violations in this mode; it exists
	// for the checker tests and for demonstration runs.
	Unsound bool
	// Seed randomises the per-thread generators deterministically.
	Seed uint64
	// Dist selects the key distribution the workers draw their targets
	// from (see dist.go): move keys, insert-if-absent pair indices, and
	// bank source accounts. The zero value is uniform. The pipeline
	// scenario is key-free (queues have no key axis), so Dist does not
	// apply there.
	Dist DistConfig
}

// DefaultScenarioConfig returns the standard scenario sizing: small
// enough that invariant audits stay cheap, large enough for real
// contention.
func DefaultScenarioConfig() ScenarioConfig {
	return ScenarioConfig{
		Keys:           256,
		Accounts:       64,
		InitialBalance: 1000,
		MaxTransfer:    100,
		AuditPct:       5,
		Seed:           0xc0135e,
	}
}

// Scaled shrinks the scenario sizes by factor (for quick tests).
func (cfg ScenarioConfig) Scaled(factor int) ScenarioConfig {
	if factor > 1 {
		cfg.Keys = max(4, cfg.Keys/factor)
		cfg.Accounts = max(2, cfg.Accounts/factor)
	}
	return cfg
}

// Worker is the per-thread face of a scenario: Step runs one operation
// (mutation or audit) on the thread the worker was created for.
type Worker interface{ Step() }

// Scenario is one composed-transaction workload instance. A Scenario is
// built fresh per measurement run (its structures are engine-agnostic;
// the engine is carried by the threads driving it). Violations counts
// invariant failures observed by mid-run audits and by the final Check;
// it must be zero on every transactional engine and is expected to be
// non-zero for Unsound runs under concurrency.
type Scenario interface {
	// Name identifies the scenario ("move", "bank", ...).
	Name() string
	// Structures labels the structures the scenario runs on, for
	// reporting ("linkedlist+hashset", "skiplistmap", ...).
	Structures() string
	// Fill populates the initial state.
	Fill(th *stm.Thread)
	// NewWorker returns the step generator for one worker goroutine; th
	// must be the thread that goroutine will run on (the worker binds
	// its transaction closures to it once, so steps stay closure-free).
	NewWorker(th *stm.Thread, idx int) Worker
	// Violations returns the number of invariant violations observed so
	// far.
	Violations() uint64
	// Check verifies the end-state invariant on a quiesced scenario,
	// adding any failure to Violations.
	Check(th *stm.Thread)
}

// ScenarioNames lists the registered scenarios.
func ScenarioNames() []string {
	return []string{"move", "insert-if-absent", "bank", "pipeline"}
}

// ScenarioKeyed reports whether a scenario draws its targets through the
// key-distribution layer. The pipeline is key-free (queues have no key
// axis), so sweeping distributions over it would re-measure identical
// workloads under misleading labels; the harness collapses its dist axis
// to uniform.
func ScenarioKeyed(name string) bool { return name != "pipeline" }

// NewScenario builds a fresh scenario instance by name; ok is false for
// unknown names.
func NewScenario(name string, cfg ScenarioConfig) (Scenario, bool) {
	switch name {
	case "move":
		return newMoveScenario(cfg), true
	case "insert-if-absent":
		return newIIAScenario(cfg), true
	case "bank":
		return newBankScenario(cfg), true
	case "pipeline":
		return newPipelineScenario(cfg), true
	default:
		return nil, false
	}
}

// scenarioRNG seeds one worker's deterministic generator.
func scenarioRNG(cfg ScenarioConfig, idx int) *rand.Rand {
	return rand.New(rand.NewPCG(cfg.Seed, uint64(idx)+1))
}

// scenarioSampler builds one worker's key sampler over a scenario's key
// universe (samplers are per-thread: shifting-hotspot keeps draw state).
func scenarioSampler(cfg ScenarioConfig, keyRange int) Sampler {
	return NewSampler(cfg.Dist, keyRange)
}

// ------------------------------------------------------------------ move --

// moveScenario shuffles keys between a linked list and a hash set with
// eec.Move — composition across *different* structure implementations.
// Invariant: every key lives in exactly one of the two sets, so the
// combined size equals the initial key count at every atomic snapshot.
// The unsound remove-then-add leaves keys in flight between the two
// transactions, which the audits observe as missing.
type moveScenario struct {
	cfg        ScenarioConfig
	a, b       eec.Set
	violations atomic.Uint64
}

func newMoveScenario(cfg ScenarioConfig) *moveScenario {
	return &moveScenario{
		cfg: cfg,
		a:   eec.NewLinkedListSet(),
		b:   eec.NewHashSet(max(1, cfg.Keys/16)),
	}
}

func (s *moveScenario) Name() string       { return "move" }
func (s *moveScenario) Structures() string { return "linkedlist+hashset" }
func (s *moveScenario) Violations() uint64 { return s.violations.Load() }

func (s *moveScenario) Fill(th *stm.Thread) {
	for k := 0; k < s.cfg.Keys; k++ {
		if k%2 == 0 {
			s.a.Add(th, k)
		} else {
			s.b.Add(th, k)
		}
	}
}

type moveWorker struct {
	s       *moveScenario
	th      *stm.Thread
	rng     *rand.Rand
	keys    Sampler
	total   int
	auditFn func(stm.Tx) error
}

func (s *moveScenario) NewWorker(th *stm.Thread, idx int) Worker {
	w := &moveWorker{s: s, th: th, rng: scenarioRNG(s.cfg, idx), keys: scenarioSampler(s.cfg, s.cfg.Keys)}
	w.auditFn = func(stm.Tx) error {
		w.total = s.a.Size(w.th) + s.b.Size(w.th)
		return nil
	}
	return w
}

func (w *moveWorker) Step() {
	s := w.s
	if w.rng.IntN(100) < s.cfg.AuditPct {
		_ = w.th.Atomic(stm.Regular, w.auditFn)
		if w.total != s.cfg.Keys {
			s.violations.Add(1)
		}
		return
	}
	k := w.keys.Next(w.rng)
	from, to := eec.Set(s.a), eec.Set(s.b)
	if w.rng.IntN(2) == 1 {
		from, to = to, from
	}
	if s.cfg.Unsound {
		// Two separate transactions: the key is in neither set between
		// them.
		if from.Remove(w.th, k) {
			to.Add(w.th, k)
		}
		return
	}
	eec.Move(w.th, from, to, k)
}

func (s *moveScenario) Check(th *stm.Thread) {
	total, dup := 0, 0
	_ = th.Atomic(stm.Regular, func(stm.Tx) error {
		total, dup = 0, 0
		for k := 0; k < s.cfg.Keys; k++ {
			inA, inB := s.a.Contains(th, k), s.b.Contains(th, k)
			if inA && inB {
				dup++
			}
			if inA || inB {
				total++
			}
		}
		return nil
	})
	if total != s.cfg.Keys {
		s.violations.Add(1)
	}
	s.violations.Add(uint64(dup))
}

// ------------------------------------------------------- insert-if-absent --

// iiaScenario exercises the paper's Fig. 1 composition on a skip list:
// keys come in exclusion pairs (2i, 2i+1), and a member is only ever
// inserted via InsertIfAbsent(member, partner). Invariant: no pair is
// ever fully present. Two unsound inserters racing on the same pair leave
// both members in the set, which the audits and the end-state check
// observe.
type iiaScenario struct {
	cfg        ScenarioConfig
	s          eec.Set
	pairs      int
	violations atomic.Uint64
}

func newIIAScenario(cfg ScenarioConfig) *iiaScenario {
	return &iiaScenario{cfg: cfg, s: eec.NewSkipListSet(), pairs: max(1, cfg.Keys/2)}
}

func (s *iiaScenario) Name() string       { return "insert-if-absent" }
func (s *iiaScenario) Structures() string { return "skiplist" }
func (s *iiaScenario) Violations() uint64 { return s.violations.Load() }

func (s *iiaScenario) Fill(th *stm.Thread) {
	// Half the pairs start with their even member present, so removes and
	// blocked inserts have material from the first step on.
	for i := 0; i < s.pairs; i += 2 {
		s.s.Add(th, 2*i)
	}
}

type iiaWorker struct {
	s     *iiaScenario
	th    *stm.Thread
	rng   *rand.Rand
	pairs Sampler
}

func (s *iiaScenario) NewWorker(th *stm.Thread, idx int) Worker {
	return &iiaWorker{s: s, th: th, rng: scenarioRNG(s.cfg, idx), pairs: scenarioSampler(s.cfg, s.pairs)}
}

func (w *iiaWorker) Step() {
	s := w.s
	r := w.rng.IntN(100)
	if r < s.cfg.AuditPct {
		// The audit must be a true snapshot, which Elements provides (one
		// Regular transaction reading the structure directly). Composing
		// elastic Contains children would not do: a read-only elastic
		// child only outherits its last read, so the pair of lookups
		// would not be validated as one atomic observation.
		s.violations.Add(uint64(fullPairs(s.s.Elements(w.th))))
		return
	}
	i := w.pairs.Next(w.rng)
	x, y := 2*i, 2*i+1
	if w.rng.IntN(2) == 1 {
		x, y = y, x
	}
	if r < s.cfg.AuditPct+40 {
		s.s.Remove(w.th, x)
		return
	}
	if s.cfg.Unsound {
		// Check and insert in separate transactions: two racing inserters
		// can each miss the other's member and insert both.
		if !s.s.Contains(w.th, y) {
			s.s.Add(w.th, x)
		}
		return
	}
	eec.InsertIfAbsent(w.th, s.s, x, y)
}

func (s *iiaScenario) Check(th *stm.Thread) {
	s.violations.Add(uint64(fullPairs(s.s.Elements(th))))
}

// fullPairs counts exclusion pairs (2i, 2i+1) with both members present
// in a sorted snapshot.
func fullPairs(sorted []int) int {
	n := 0
	for j := 0; j+1 < len(sorted); j++ {
		if sorted[j]%2 == 0 && sorted[j+1] == sorted[j]+1 {
			n++
		}
	}
	return n
}

// ------------------------------------------------------------------ bank --

// bankScenario transfers money between accounts held in an eec.SkipListMap
// with SkipListMap.Transfer (a Get/Put composition). Invariant: the total
// balance is constant at every atomic snapshot — the audit is SumInt, one
// whole-map transaction. The unsound withdraw-then-deposit leaves money in
// flight between the two transactions and loses updates when two
// withdrawals race on one account, so both the audits and the end-state
// check observe it.
type bankScenario struct {
	cfg        ScenarioConfig
	m          *eec.SkipListMap
	expected   int
	violations atomic.Uint64
}

func newBankScenario(cfg ScenarioConfig) *bankScenario {
	return &bankScenario{
		cfg:      cfg,
		m:        eec.NewSkipListMap(),
		expected: cfg.Accounts * cfg.InitialBalance,
	}
}

func (s *bankScenario) Name() string       { return "bank" }
func (s *bankScenario) Structures() string { return "skiplistmap" }
func (s *bankScenario) Violations() uint64 { return s.violations.Load() }

func (s *bankScenario) Fill(th *stm.Thread) {
	for i := 0; i < s.cfg.Accounts; i++ {
		s.m.Put(th, i, s.cfg.InitialBalance)
	}
}

type bankWorker struct {
	s        *bankScenario
	th       *stm.Thread
	rng      *rand.Rand
	accounts Sampler
}

func (s *bankScenario) NewWorker(th *stm.Thread, idx int) Worker {
	return &bankWorker{s: s, th: th, rng: scenarioRNG(s.cfg, idx), accounts: scenarioSampler(s.cfg, s.cfg.Accounts)}
}

func (w *bankWorker) Step() {
	s := w.s
	if w.rng.IntN(100) < s.cfg.AuditPct {
		if s.m.SumInt(w.th) != s.expected {
			s.violations.Add(1)
		}
		return
	}
	// The distribution shapes the *source* account (skew means hot
	// senders, the contended side of a transfer); the destination stays
	// uniform over the other accounts.
	from := w.accounts.Next(w.rng)
	to := w.rng.IntN(s.cfg.Accounts - 1)
	if to >= from {
		to++
	}
	amount := 1 + w.rng.IntN(s.cfg.MaxTransfer)
	if s.cfg.Unsound {
		// Withdraw and deposit in separate transactions: the amount is in
		// neither account between them, and two withdrawals racing on one
		// account lose an update for good.
		bal, ok := s.m.Get(w.th, from)
		if b, isInt := bal.(int); ok && isInt && b >= amount {
			s.m.Put(w.th, from, b-amount)
			toBal, _ := s.m.Get(w.th, to)
			tb, _ := toBal.(int)
			s.m.Put(w.th, to, tb+amount)
		}
		return
	}
	s.m.Transfer(w.th, from, to, amount)
}

func (s *bankScenario) Check(th *stm.Thread) {
	if s.m.SumInt(th) != s.expected {
		s.violations.Add(1)
	}
}

// -------------------------------------------------------------- pipeline --

// pipelineScenario runs a two-stage pipeline over eec.Queues: producers
// enqueue an increasing sequence into q1 (counting in the same
// transaction), stages move items q1→q2 with Queue.MoveTo, and consumers
// dequeue from q2 (counting likewise). Every worker plays all three roles.
// Invariants: produced = consumed + in-flight at every atomic snapshot
// (item conservation), and — because production order is total and both
// queues are FIFO — each consumer observes strictly increasing values. The
// unsound stage (dequeue and enqueue in separate transactions) violates
// both: items sit in neither queue between the two transactions, and two
// unsound stages can reorder items.
type pipelineScenario struct {
	cfg                ScenarioConfig
	q1, q2             *eec.Queue
	produced, consumed mvar.IntVar
	violations         atomic.Uint64
}

func newPipelineScenario(cfg ScenarioConfig) *pipelineScenario {
	return &pipelineScenario{cfg: cfg, q1: eec.NewQueue(), q2: eec.NewQueue()}
}

func (s *pipelineScenario) Name() string       { return "pipeline" }
func (s *pipelineScenario) Structures() string { return "queue+queue" }
func (s *pipelineScenario) Violations() uint64 { return s.violations.Load() }

func (s *pipelineScenario) Fill(*stm.Thread) {}

type pipelineWorker struct {
	s         *pipelineScenario
	th        *stm.Thread
	rng       *rand.Rand
	last      int // last value this worker consumed (FIFO monotonicity)
	got       int
	gotOK     bool
	auditBad  bool
	produceFn func(stm.Tx) error
	consumeFn func(stm.Tx) error
	auditFn   func(stm.Tx) error
}

func (s *pipelineScenario) NewWorker(th *stm.Thread, idx int) Worker {
	w := &pipelineWorker{s: s, th: th, rng: scenarioRNG(s.cfg, idx)}
	w.produceFn = func(tx stm.Tx) error {
		n := stm.ReadInt(tx, &s.produced)
		s.q1.Enqueue(w.th, int(n)+1)
		stm.WriteInt(tx, &s.produced, n+1)
		return nil
	}
	w.consumeFn = func(tx stm.Tx) error {
		w.got, w.gotOK = 0, false
		v, ok := s.q2.Dequeue(w.th)
		if !ok {
			return nil
		}
		stm.WriteInt(tx, &s.consumed, stm.ReadInt(tx, &s.consumed)+1)
		w.got, w.gotOK = v.(int), true
		return nil
	}
	w.auditFn = func(tx stm.Tx) error {
		p := stm.ReadInt(tx, &s.produced)
		c := stm.ReadInt(tx, &s.consumed)
		inFlight := s.q1.Len(w.th) + s.q2.Len(w.th)
		w.auditBad = p != c+int64(inFlight)
		return nil
	}
	return w
}

func (w *pipelineWorker) Step() {
	s := w.s
	if w.rng.IntN(100) < s.cfg.AuditPct {
		_ = w.th.Atomic(stm.Regular, w.auditFn)
		if w.auditBad {
			s.violations.Add(1)
		}
		return
	}
	// Produce and consume run Regular even on elastic engines: they
	// read-modify-write the sequence counter directly in the outer
	// transaction, and an elastic outer region only protects the read
	// immediately preceding its first write — the counter read could
	// fall out of the protected set and lose an update. (The composed
	// e.e.c operations are different: all their reads happen in nested
	// children and stay protected through outheritance.)
	switch w.rng.IntN(3) {
	case 0: // produce
		_ = w.th.Atomic(stm.Regular, w.produceFn)
	case 1: // stage
		if s.cfg.Unsound {
			// Dequeue and enqueue in separate transactions: the item is
			// in neither queue between them, and two unsound stages can
			// swap items on the way over.
			if v, ok := s.q1.Dequeue(w.th); ok {
				s.q2.Enqueue(w.th, v)
			}
			return
		}
		s.q1.MoveTo(w.th, s.q2)
	default: // consume
		_ = w.th.Atomic(stm.Regular, w.consumeFn)
		if w.gotOK {
			if w.got <= w.last {
				s.violations.Add(1)
			}
			w.last = w.got
		}
	}
}

func (s *pipelineScenario) Check(th *stm.Thread) {
	produced := 0
	consumed := 0
	inFlight := 0
	_ = th.Atomic(stm.Regular, func(tx stm.Tx) error {
		produced = int(stm.ReadInt(tx, &s.produced))
		consumed = int(stm.ReadInt(tx, &s.consumed))
		inFlight = s.q1.Len(th) + s.q2.Len(th)
		return nil
	})
	if produced != consumed+inFlight {
		s.violations.Add(1)
	}
}
