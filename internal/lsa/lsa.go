// Package lsa implements the Lazy Snapshot Algorithm of Riegel, Felber and
// Fetzer (DISC 2006), the second classic-transaction baseline of the
// paper's evaluation (§VII-B). As in the paper's Java version, LSA uses
// eager lock acquirement on writes and extends the snapshot validity
// interval on reads as far as possible to increase concurrency.
//
// LSA provides only Regular transactions; Kind Elastic is honoured as
// Regular. Nesting is flat.
package lsa

import (
	"oestm/internal/mvar"
	"oestm/internal/stm"
)

// TM is an LSA engine instance.
type TM struct {
	clock mvar.Clock
}

// New returns a fresh LSA engine.
func New() *TM { return &TM{} }

// Name implements stm.TM.
func (tm *TM) Name() string { return "lsa" }

// SupportsElastic implements stm.TM; LSA is a classic STM.
func (tm *TM) SupportsElastic() bool { return false }

// Begin implements stm.TM.
func (tm *TM) Begin(th *stm.Thread, _ stm.Kind) stm.TxControl {
	return &txn{tm: tm, th: th, ub: tm.clock.Now()}
}

// BeginNested implements stm.TM with flat nesting.
func (tm *TM) BeginNested(_ *stm.Thread, parent stm.TxControl, _ stm.Kind) stm.TxControl {
	return stm.FlatChild(parent)
}

type readEntry struct {
	v   *mvar.Var
	ver uint64
}

type writeEntry struct {
	v   *mvar.Var
	val any
	old uint64 // pre-lock meta, for revert
}

type txn struct {
	tm     *TM
	th     *stm.Thread
	ub     uint64 // upper bound of the snapshot validity interval
	reads  []readEntry
	writes []writeEntry // every entry's lock is held (eager acquirement)
	windex map[*mvar.Var]int
}

// Kind implements stm.Tx.
func (t *txn) Kind() stm.Kind { return stm.Regular }

// Read implements stm.Tx. Reads of locations newer than the current
// validity interval attempt a lazy snapshot extension: revalidate the read
// set at the current clock and, if it still holds, slide the upper bound.
func (t *txn) Read(v *mvar.Var) any {
	if idx, ok := t.windex[v]; ok {
		return t.writes[idx].val
	}
	val, ver, ok := v.ReadConsistent()
	if !ok {
		stm.Conflict("lsa: read of locked or changing location")
	}
	// The extension validates only the reads recorded so far; the read
	// that triggered it must be repeated under the new bound, because the
	// commit that advanced the clock may have changed this location.
	for ver > t.ub {
		t.extend()
		val, ver, ok = v.ReadConsistent()
		if !ok {
			stm.Conflict("lsa: read of locked or changing location")
		}
	}
	t.reads = append(t.reads, readEntry{v, ver})
	return val
}

// extend tries to move the snapshot upper bound to the present; failing
// validation aborts the transaction.
func (t *txn) extend() {
	now := t.tm.clock.Now()
	if !t.validate() {
		stm.Conflict("lsa: snapshot extension failed")
	}
	t.ub = now
}

// Write implements stm.Tx with eager lock acquirement and a buffered
// (write-back) value.
func (t *txn) Write(v *mvar.Var, val any) {
	if idx, ok := t.windex[v]; ok {
		t.writes[idx].val = val
		return
	}
	m := v.Meta()
	if mvar.Locked(m) || !v.TryLock(t.th.ID, m) {
		stm.Conflict("lsa: write lock unavailable")
	}
	if t.windex == nil {
		t.windex = make(map[*mvar.Var]int, 8)
	}
	t.windex[v] = len(t.writes)
	t.writes = append(t.writes, writeEntry{v: v, val: val, old: m})
}

// Commit implements stm.TxControl. Write locks are already held; pick a
// commit version, validate the read set if anything committed since the
// interval's upper bound, publish and unlock.
func (t *txn) Commit() error {
	if len(t.writes) == 0 {
		t.th.Stats.ReadOnly++
		return nil // the maintained snapshot interval is consistent
	}
	wv := t.tm.clock.Tick()
	if t.ub+1 != wv {
		if !t.validate() {
			t.releaseLocks()
			return stm.ErrConflict
		}
	}
	for i := range t.writes {
		e := &t.writes[i]
		e.v.StoreLocked(e.val)
		e.v.Unlock(wv)
	}
	t.writes = nil
	return nil
}

// validate checks that every read entry still carries the version it was
// read at. Entries this transaction write-locked are validated against
// their pre-lock version: another transaction may have committed between
// our read and our eager lock acquisition.
func (t *txn) validate() bool {
	for _, r := range t.reads {
		m := r.v.Meta()
		if mvar.Locked(m) {
			if mvar.Owner(m) != t.th.ID {
				return false
			}
			idx, mine := t.windex[r.v]
			if !mine || mvar.Version(t.writes[idx].old) != r.ver {
				return false
			}
			continue
		}
		if mvar.Version(m) != r.ver {
			return false
		}
	}
	return true
}

// releaseLocks reverts every eagerly acquired write lock.
func (t *txn) releaseLocks() {
	for i := range t.writes {
		e := &t.writes[i]
		e.v.Restore(e.old)
	}
	t.writes = nil
}

// Rollback implements stm.TxControl; it must release eagerly held locks
// because conflicts can unwind mid-execution.
func (t *txn) Rollback() {
	t.releaseLocks()
	t.reads = nil
	t.windex = nil
}
