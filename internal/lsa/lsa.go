// Package lsa implements the Lazy Snapshot Algorithm of Riegel, Felber and
// Fetzer (DISC 2006), the second classic-transaction baseline of the
// paper's evaluation (§VII-B). As in the paper's Java version, LSA uses
// eager lock acquirement on writes and extends the snapshot validity
// interval on reads as far as possible to increase concurrency.
//
// LSA provides only Regular transactions; Kind Elastic is honoured as
// Regular. Nesting is flat.
//
//compose:hotpath
package lsa

import (
	"oestm/internal/mvar"
	"oestm/internal/stm"
	"oestm/internal/txset"
)

// TM is an LSA engine instance.
type TM struct {
	clock mvar.Clock
}

// New returns a fresh LSA engine.
func New() *TM { return &TM{} }

// Name implements stm.TM.
func (tm *TM) Name() string { return "lsa" }

// SupportsElastic implements stm.TM; LSA is a classic STM.
func (tm *TM) SupportsElastic() bool { return false }

// Begin implements stm.TM, reusing the thread's pooled transaction frame.
func (tm *TM) Begin(th *stm.Thread, _ stm.Kind) stm.TxControl {
	t, _ := th.EngineScratch.(*txn)
	if t == nil || t.tm != tm {
		t = &txn{}
		th.EngineScratch = t
	}
	t.tm = tm
	t.th = th
	t.ub = tm.clock.Now()
	t.reads = t.reads[:0]
	t.writes.Reset()
	return t
}

// BeginNested implements stm.TM with flat nesting.
func (tm *TM) BeginNested(th *stm.Thread, parent stm.TxControl, _ stm.Kind) stm.TxControl {
	return stm.FlatChildOn(th, parent)
}

type txn struct {
	tm     *TM
	th     *stm.Thread
	ub     uint64 // upper bound of the snapshot validity interval
	reads  []txset.Read
	writes txset.WriteSet // every entry's lock is held (eager acquirement)
}

// Kind implements stm.Tx.
func (t *txn) Kind() stm.Kind { return stm.Regular }

// Read implements stm.Tx (untyped surface).
func (t *txn) Read(v *mvar.AnyVar) any { return mvar.AnyValue(t.ReadWord(v.Word())) }

// Write implements stm.Tx (untyped surface).
func (t *txn) Write(v *mvar.AnyVar, val any) { t.WriteWord(v.Word(), mvar.AnyRaw(val)) }

// ReadWord implements stm.Tx. Reads of locations newer than the current
// validity interval attempt a lazy snapshot extension: revalidate the read
// set at the current clock and, if it still holds, slide the upper bound.
func (t *txn) ReadWord(w *mvar.Word) mvar.Raw {
	if i := t.writes.Find(w); i >= 0 {
		return t.writes.At(i).Val
	}
	raw, ver, ok := w.ReadConsistent()
	if !ok {
		stm.Abort(stm.CauseReadValidation)
	}
	// The extension validates only the reads recorded so far; the read
	// that triggered it must be repeated under the new bound, because the
	// commit that advanced the clock may have changed this location.
	for ver > t.ub {
		t.extend()
		raw, ver, ok = w.ReadConsistent()
		if !ok {
			stm.Abort(stm.CauseReadValidation)
		}
	}
	t.reads = append(t.reads, txset.Read{W: w, Ver: ver})
	return raw
}

// extend tries to move the snapshot upper bound to the present; failing
// validation aborts the transaction.
func (t *txn) extend() {
	now := t.tm.clock.Now()
	if !t.validate() {
		stm.Abort(stm.CauseSnapshotExtension)
	}
	t.ub = now
}

// WriteWord implements stm.Tx with eager lock acquirement and a buffered
// (write-back) value.
func (t *txn) WriteWord(w *mvar.Word, r mvar.Raw) {
	if i := t.writes.Find(w); i >= 0 {
		t.writes.At(i).Val = r
		return
	}
	m := w.Meta()
	if mvar.Locked(m) || !w.TryLock(t.th.ID, m) {
		stm.Abort(stm.CauseLockBusy)
	}
	t.writes.Append(txset.Write{W: w, Val: r, Old: m})
}

// Commit implements stm.TxControl. Write locks are already held; pick a
// commit version, validate the read set if anything committed since the
// interval's upper bound, publish and unlock.
func (t *txn) Commit() error {
	if t.writes.Len() == 0 {
		t.th.Stats.ReadOnly++
		return nil // the maintained snapshot interval is consistent
	}
	wv := t.tm.clock.Tick()
	if t.ub+1 != wv {
		if !t.validate() {
			t.releaseLocks()
			return stm.ConflictOf(stm.CauseCommitValidation)
		}
	}
	entries := t.writes.Entries()
	for i := range entries {
		e := &entries[i]
		e.W.StoreLockedRaw(e.Val)
		e.W.Unlock(wv)
	}
	t.writes.Reset()
	return nil
}

// validate checks that every read entry still carries the version it was
// read at. Entries this transaction write-locked are validated against
// their pre-lock version: another transaction may have committed between
// our read and our eager lock acquisition.
func (t *txn) validate() bool {
	for _, r := range t.reads {
		m := r.W.Meta()
		if mvar.Locked(m) {
			if mvar.Owner(m) != t.th.ID {
				return false
			}
			i := t.writes.Find(r.W)
			if i < 0 || mvar.Version(t.writes.At(i).Old) != r.Ver {
				return false
			}
			continue
		}
		if mvar.Version(m) != r.Ver {
			return false
		}
	}
	return true
}

// releaseLocks reverts every eagerly acquired write lock.
func (t *txn) releaseLocks() {
	entries := t.writes.Entries()
	for i := range entries {
		e := &entries[i]
		e.W.Restore(e.Old)
	}
	t.writes.Reset()
}

// Rollback implements stm.TxControl; it must release eagerly held locks
// because conflicts can unwind mid-execution.
func (t *txn) Rollback() {
	t.releaseLocks()
	t.reads = t.reads[:0]
}
