package lsa_test

import (
	"errors"
	"testing"

	"oestm/internal/lsa"
	"oestm/internal/mvar"
	"oestm/internal/stm"
)

// wantCause asserts that err is a RetryExhaustedError carrying want (and
// still matches the ErrConflict sentinel).
func wantCause(t *testing.T, err error, want stm.ConflictCause) {
	t.Helper()
	if !errors.Is(err, stm.ErrConflict) {
		t.Fatalf("err = %v, want ErrConflict match", err)
	}
	var rex *stm.RetryExhaustedError
	if !errors.As(err, &rex) {
		t.Fatalf("err = %v, want *RetryExhaustedError", err)
	}
	if rex.Cause != want {
		t.Fatalf("cause = %v, want %v", rex.Cause, want)
	}
}

// TestConflictCauses pins every LSA conflict site to its ConflictCause:
// reads of locked locations abort as read-validation, eager write-lock
// acquisition failures as lock-busy, failed lazy snapshot extensions as
// snapshot-extension, and commit-time read validation as
// commit-validation.
func TestConflictCauses(t *testing.T) {
	cases := []struct {
		name string
		want stm.ConflictCause
		run  func(t *testing.T) error
	}{
		{"read of locked location", stm.CauseReadValidation, func(t *testing.T) error {
			tm := lsa.New()
			th := stm.NewThread(tm)
			th.MaxRetries = 1
			v := mvar.New(1)
			if !v.TryLock(7, v.Meta()) {
				t.Fatal("could not pre-lock the variable")
			}
			return th.Atomic(stm.Regular, func(tx stm.Tx) error {
				_ = tx.Read(v)
				return nil
			})
		}},
		{"eager write lock unavailable", stm.CauseLockBusy, func(t *testing.T) error {
			tm := lsa.New()
			th := stm.NewThread(tm)
			th.MaxRetries = 1
			v := mvar.New(1)
			if !v.TryLock(7, v.Meta()) {
				t.Fatal("could not pre-lock the variable")
			}
			return th.Atomic(stm.Regular, func(tx stm.Tx) error {
				tx.Write(v, 2) // eager acquirement: the conflict is immediate
				return nil
			})
		}},
		{"snapshot extension failure", stm.CauseSnapshotExtension, func(t *testing.T) error {
			tm := lsa.New()
			th, other := stm.NewThread(tm), stm.NewThread(tm)
			th.MaxRetries = 1
			a, b := mvar.New(1), mvar.New(1)
			return th.Atomic(stm.Regular, func(tx stm.Tx) error {
				_ = tx.Read(a)
				// Commit to both under the open transaction: the next
				// read of b is beyond the snapshot bound and triggers an
				// extension, whose revalidation of a fails.
				if err := other.Atomic(stm.Regular, func(tx2 stm.Tx) error {
					tx2.Write(a, 2)
					tx2.Write(b, 2)
					return nil
				}); err != nil {
					t.Fatal(err)
				}
				_ = tx.Read(b)
				return nil
			})
		}},
		{"commit-time read validation failure", stm.CauseCommitValidation, func(t *testing.T) error {
			tm := lsa.New()
			th, other := stm.NewThread(tm), stm.NewThread(tm)
			th.MaxRetries = 1
			a, c := mvar.New(1), mvar.New(1)
			return th.Atomic(stm.Regular, func(tx stm.Tx) error {
				_ = tx.Read(a)
				tx.Write(c, 2) // eager lock on c, so commit must validate a
				if err := other.Atomic(stm.Regular, func(tx2 stm.Tx) error {
					tx2.Write(a, 2)
					return nil
				}); err != nil {
					t.Fatal(err)
				}
				return nil
			})
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			wantCause(t, tc.run(t), tc.want)
		})
	}
}
