package lsa_test

import (
	"testing"

	"oestm/internal/lsa"
	"oestm/internal/stm"
	"oestm/internal/stmtest"
)

func TestConformance(t *testing.T) {
	stmtest.Run(t, func() stm.TM { return lsa.New() })
}

func TestProperties(t *testing.T) {
	tm := lsa.New()
	if tm.Name() != "lsa" {
		t.Fatalf("name = %q", tm.Name())
	}
	if tm.SupportsElastic() {
		t.Fatal("lsa must not claim elastic support")
	}
}
