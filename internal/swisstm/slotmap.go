package swisstm

import "sync"

// sync_MapIntInt is a small typed wrapper over sync.Map used to assign
// per-engine descriptor slots to thread IDs. Reads vastly outnumber
// writes (one write per thread per engine), the sync.Map sweet spot.
type sync_MapIntInt struct{ m sync.Map }

// Load returns the slot for thread id k, if assigned.
func (s *sync_MapIntInt) Load(k int) (int, bool) {
	v, ok := s.m.Load(k)
	if !ok {
		return 0, false
	}
	return v.(int), true
}

// Store records the slot for thread id k.
func (s *sync_MapIntInt) Store(k, v int) { s.m.Store(k, v) }
