package swisstm_test

import (
	"testing"

	"oestm/internal/stm"
	"oestm/internal/stmtest"
	"oestm/internal/swisstm"
)

func TestConformance(t *testing.T) {
	stmtest.Run(t, func() stm.TM { return swisstm.New() })
}

func TestProperties(t *testing.T) {
	tm := swisstm.New()
	if tm.Name() != "swisstm" {
		t.Fatalf("name = %q", tm.Name())
	}
	if tm.SupportsElastic() {
		t.Fatal("swisstm must not claim elastic support")
	}
}
