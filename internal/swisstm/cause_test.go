package swisstm_test

import (
	"errors"
	"testing"

	"oestm/internal/mvar"
	"oestm/internal/stm"
	"oestm/internal/swisstm"
)

// wantCause asserts that err is a RetryExhaustedError carrying want (and
// still matches the ErrConflict sentinel).
func wantCause(t *testing.T, err error, want stm.ConflictCause) {
	t.Helper()
	if !errors.Is(err, stm.ErrConflict) {
		t.Fatalf("err = %v, want ErrConflict match", err)
	}
	var rex *stm.RetryExhaustedError
	if !errors.As(err, &rex) {
		t.Fatalf("err = %v, want *RetryExhaustedError", err)
	}
	if rex.Cause != want {
		t.Fatalf("cause = %v, want %v", rex.Cause, want)
	}
}

// TestConflictCauses pins every SwissTM conflict site to its
// ConflictCause: reads of locked locations (read-validation), lost or
// starved write/write arbitration (lock-busy), failed snapshot
// extensions (snapshot-extension), commit-time read validation
// (commit-validation), and transactions doomed by the greedy contention
// manager (doomed).
func TestConflictCauses(t *testing.T) {
	cases := []struct {
		name string
		want stm.ConflictCause
		run  func(t *testing.T) error
	}{
		{"read of locked location", stm.CauseReadValidation, func(t *testing.T) error {
			tm := swisstm.New()
			th := stm.NewThread(tm)
			th.MaxRetries = 1
			v := mvar.New(1)
			if !v.TryLock(7, v.Meta()) {
				t.Fatal("could not pre-lock the variable")
			}
			return th.Atomic(stm.Regular, func(tx stm.Tx) error {
				_ = tx.Read(v)
				return nil
			})
		}},
		{"lock wait budget exhausted", stm.CauseLockBusy, func(t *testing.T) error {
			tm := swisstm.New()
			th := stm.NewThread(tm)
			th.MaxRetries = 1
			v := mvar.New(1)
			// Lock with an owner slot no descriptor was ever published
			// for: the acquirer keeps spinning on the stale owner until
			// its wait budget runs out.
			if !v.TryLock(7, v.Meta()) {
				t.Fatal("could not pre-lock the variable")
			}
			return th.Atomic(stm.Regular, func(tx stm.Tx) error {
				tx.Write(v, 2)
				return nil
			})
		}},
		{"write/write conflict lost", stm.CauseLockBusy, func(t *testing.T) error {
			tm := swisstm.New()
			holder, loser := stm.NewThread(tm), stm.NewThread(tm)
			loser.MaxRetries = 1
			w := mvar.New(1)
			var lost error
			sentinel := errors.New("unwind holder")
			err := holder.Atomic(stm.Regular, func(txH stm.Tx) error {
				txH.Write(w, 2) // eager: the holder owns w's lock
				// Same start timestamp, so the second writer is not
				// older and must yield to the active owner.
				lost = loser.Atomic(stm.Regular, func(txL stm.Tx) error {
					txL.Write(w, 3)
					return nil
				})
				return sentinel
			})
			if !errors.Is(err, sentinel) {
				t.Fatalf("holder err = %v, want sentinel", err)
			}
			return lost
		}},
		{"snapshot extension failure", stm.CauseSnapshotExtension, func(t *testing.T) error {
			tm := swisstm.New()
			th, other := stm.NewThread(tm), stm.NewThread(tm)
			th.MaxRetries = 1
			a, b := mvar.New(1), mvar.New(1)
			return th.Atomic(stm.Regular, func(tx stm.Tx) error {
				_ = tx.Read(a)
				if err := other.Atomic(stm.Regular, func(tx2 stm.Tx) error {
					tx2.Write(a, 2)
					tx2.Write(b, 2)
					return nil
				}); err != nil {
					t.Fatal(err)
				}
				_ = tx.Read(b)
				return nil
			})
		}},
		{"commit-time read validation failure", stm.CauseCommitValidation, func(t *testing.T) error {
			tm := swisstm.New()
			th, other := stm.NewThread(tm), stm.NewThread(tm)
			th.MaxRetries = 1
			a, c := mvar.New(1), mvar.New(1)
			return th.Atomic(stm.Regular, func(tx stm.Tx) error {
				_ = tx.Read(a)
				tx.Write(c, 2)
				if err := other.Atomic(stm.Regular, func(tx2 stm.Tx) error {
					tx2.Write(a, 2)
					return nil
				}); err != nil {
					t.Fatal(err)
				}
				return nil
			})
		}},
		{"doomed by contention manager", stm.CauseDoomed, func(t *testing.T) error {
			tm := swisstm.New()
			older := stm.NewThread(tm)
			clocker := stm.NewThread(tm)
			victim := stm.NewThread(tm)
			victim.MaxRetries = 1
			w, other := mvar.New(1), mvar.New(1)
			var doomed error
			sentinel := errors.New("unwind older")
			err := older.Atomic(stm.Regular, func(txOld stm.Tx) error {
				// Tick the clock so the victim begins with a larger
				// (younger) timestamp than the already-open transaction.
				if err := clocker.Atomic(stm.Regular, func(tx stm.Tx) error {
					tx.Write(other, 2)
					return nil
				}); err != nil {
					t.Fatal(err)
				}
				doomed = victim.Atomic(stm.Regular, func(txV stm.Tx) error {
					txV.Write(w, 2) // the victim owns w's lock
					// The older transaction demands w: it dooms the
					// victim, then spins out its wait budget against the
					// still-held lock. Swallow its conflict signal — this
					// test only cares about the victim's fate.
					func() {
						defer func() { _ = recover() }()
						txOld.Write(w, 3)
					}()
					_ = txV.Read(other) // the victim notices it is doomed
					return nil
				})
				return sentinel
			})
			if !errors.Is(err, sentinel) {
				t.Fatalf("older err = %v, want sentinel", err)
			}
			return doomed
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			wantCause(t, tc.run(t), tc.want)
		})
	}
}
