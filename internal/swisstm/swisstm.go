// Package swisstm implements SwissTM (Dragojević, Felber, Gramoli,
// Guerraoui — "Why STM can be more than a research toy", CACM 2011), the
// third classic-transaction baseline of the paper's evaluation (§VII-B).
//
// SwissTM mixes eager and lazy conflict detection: write/write conflicts
// are detected eagerly at encounter time (so doomed transactions abort as
// soon as possible), read/write conflicts lazily via time-based validation
// with snapshot extension, and a greedy contention manager arbitrates
// write/write conflicts by age — the older transaction dooms the younger
// one and waits briefly for the lock.
//
// SwissTM provides only Regular transactions; Kind Elastic is honoured as
// Regular. Nesting is flat.
//
//compose:hotpath
package swisstm

import (
	"fmt"
	"sync/atomic"

	"oestm/internal/mvar"
	"oestm/internal/stm"
	"oestm/internal/txset"
)

// Transaction status values stored in descriptors. A transaction observes
// Doomed at its next operation or commit and aborts itself.
const (
	statusActive uint32 = iota + 1
	statusDoomed
	statusCommitted
	statusAborted
)

// maxSlots bounds the per-engine descriptor table. Lock words store the
// per-engine slot of the owner so that conflicting transactions can find
// the owner's descriptor; slots stay far below the 63-bit owner budget
// documented in package mvar.
const maxSlots = 8192

// spinBudget bounds how long an older transaction waits for a doomed
// younger owner to release a lock before giving up and aborting itself;
// this keeps the engine deadlock-free.
const spinBudget = 1 << 14

// desc is a transaction descriptor: the unit of contention management.
// Descriptors are pooled with their thread's transaction frame and
// republished (same pointer, updated fields) at every Begin; both fields
// are atomic because a conflicting thread may still hold the pointer from
// the owner's previous transaction. A stale reader can at worst doom the
// thread's *new* transaction spuriously — the same benign
// doom-the-wrong-incarnation race that already exists between a lock-word
// read and the descriptor-table lookup — and a spurious doom only causes
// a retry, never a safety violation.
type desc struct {
	status atomic.Uint32
	ts     atomic.Uint64 // start timestamp; smaller = older = higher priority
}

// TM is a SwissTM engine instance.
type TM struct {
	clock    mvar.Clock
	nextSlot atomic.Int64
	descs    []atomic.Pointer[desc]
	slotByTh sync_MapIntInt
}

// New returns a fresh SwissTM engine.
func New() *TM {
	return &TM{descs: make([]atomic.Pointer[desc], maxSlots)}
}

// Name implements stm.TM.
func (tm *TM) Name() string { return "swisstm" }

// SupportsElastic implements stm.TM; SwissTM is a classic STM.
func (tm *TM) SupportsElastic() bool { return false }

// slotOf returns (allocating on first use) the per-engine slot of th.
func (tm *TM) slotOf(th *stm.Thread) int {
	if s, ok := tm.slotByTh.Load(th.ID); ok {
		return s
	}
	s := int(tm.nextSlot.Add(1))
	if s >= maxSlots {
		panic(fmt.Sprintf("swisstm: more than %d threads on one engine", maxSlots))
	}
	tm.slotByTh.Store(th.ID, s)
	return s
}

// Begin implements stm.TM, reusing the thread's pooled transaction frame
// and descriptor.
func (tm *TM) Begin(th *stm.Thread, _ stm.Kind) stm.TxControl {
	t, _ := th.EngineScratch.(*txn)
	if t == nil || t.tm != tm {
		t = &txn{desc: &desc{}}
		t.tm = tm
		t.slot = tm.slotOf(th)
	}
	th.EngineScratch = t
	t.th = th
	t.ub = tm.clock.Now()
	t.desc.ts.Store(t.ub)
	t.desc.status.Store(statusActive)
	tm.descs[t.slot].Store(t.desc)
	t.reads = t.reads[:0]
	t.writes.Reset()
	return t
}

// BeginNested implements stm.TM with flat nesting.
func (tm *TM) BeginNested(th *stm.Thread, parent stm.TxControl, _ stm.Kind) stm.TxControl {
	return stm.FlatChildOn(th, parent)
}

type txn struct {
	tm     *TM
	th     *stm.Thread
	slot   int
	desc   *desc
	ub     uint64
	reads  []txset.Read
	writes txset.WriteSet // locks held eagerly
}

// Kind implements stm.Tx.
func (t *txn) Kind() stm.Kind { return stm.Regular }

// checkDoomed aborts the transaction if the contention manager doomed it.
func (t *txn) checkDoomed() {
	if t.desc.status.Load() == statusDoomed {
		stm.Abort(stm.CauseDoomed)
	}
}

// Read implements stm.Tx (untyped surface).
func (t *txn) Read(v *mvar.AnyVar) any { return mvar.AnyValue(t.ReadWord(v.Word())) }

// Write implements stm.Tx (untyped surface).
func (t *txn) Write(v *mvar.AnyVar, val any) { t.WriteWord(v.Word(), mvar.AnyRaw(val)) }

// ReadWord implements stm.Tx: invisible read with time-based validation
// and snapshot extension, as in LSA.
func (t *txn) ReadWord(w *mvar.Word) mvar.Raw {
	t.checkDoomed()
	if i := t.writes.Find(w); i >= 0 {
		return t.writes.At(i).Val
	}
	raw, ver, ok := w.ReadConsistent()
	if !ok {
		stm.Abort(stm.CauseReadValidation)
	}
	// The extension validates only the reads recorded so far; the read
	// that triggered it must be repeated under the new bound, because the
	// commit that advanced the clock may have changed this location.
	for ver > t.ub {
		t.extend()
		raw, ver, ok = w.ReadConsistent()
		if !ok {
			stm.Abort(stm.CauseReadValidation)
		}
	}
	t.reads = append(t.reads, txset.Read{W: w, Ver: ver})
	return raw
}

func (t *txn) extend() {
	now := t.tm.clock.Now()
	if !t.validate() {
		stm.Abort(stm.CauseSnapshotExtension)
	}
	t.ub = now
}

// WriteWord implements stm.Tx: eager write/write conflict detection
// through the greedy contention manager.
func (t *txn) WriteWord(w *mvar.Word, r mvar.Raw) {
	t.checkDoomed()
	if i := t.writes.Find(w); i >= 0 {
		t.writes.At(i).Val = r
		return
	}
	old := t.acquire(w)
	t.writes.Append(txset.Write{W: w, Val: r, Old: old})
}

// acquire obtains the write lock of w, arbitrating conflicts greedily:
// the older transaction dooms the younger owner and waits (bounded) for
// the lock; a younger transaction aborts itself immediately.
func (t *txn) acquire(w *mvar.Word) (oldMeta uint64) {
	for spin := 0; ; spin++ {
		if spin >= spinBudget {
			stm.Abort(stm.CauseLockBusy)
		}
		t.checkDoomed()
		m := w.Meta()
		if !mvar.Locked(m) {
			if w.TryLock(t.slot, m) {
				return m
			}
			continue
		}
		owner := t.tm.descs[mvar.Owner(m)].Load()
		if owner == nil || owner == t.desc {
			// Stale or impossible owner: retry the meta read.
			continue
		}
		if owner.status.Load() != statusActive {
			continue // owner is finishing; its locks release imminently
		}
		if t.desc.ts.Load() < owner.ts.Load() {
			// We are older: doom the owner and keep spinning for release.
			owner.status.CompareAndSwap(statusActive, statusDoomed)
			continue
		}
		// We are younger: yield to the older writer.
		stm.Abort(stm.CauseLockBusy)
	}
}

// Commit implements stm.TxControl.
func (t *txn) Commit() error {
	t.checkDoomed()
	if t.writes.Len() == 0 {
		t.desc.status.Store(statusCommitted)
		t.th.Stats.ReadOnly++
		return nil
	}
	wv := t.tm.clock.Tick()
	if t.ub+1 != wv {
		if !t.validate() {
			t.releaseLocks()
			t.desc.status.Store(statusAborted)
			return stm.ConflictOf(stm.CauseCommitValidation)
		}
	}
	entries := t.writes.Entries()
	for i := range entries {
		e := &entries[i]
		e.W.StoreLockedRaw(e.Val)
		e.W.Unlock(wv)
	}
	t.writes.Reset()
	t.desc.status.Store(statusCommitted)
	return nil
}

// validate checks that every read entry still carries the version it was
// read at. Entries this transaction write-locked are validated against
// their pre-lock version: another transaction may have committed between
// our read and our eager lock acquisition.
func (t *txn) validate() bool {
	for _, r := range t.reads {
		m := r.W.Meta()
		if mvar.Locked(m) {
			if mvar.Owner(m) != t.slot {
				return false
			}
			i := t.writes.Find(r.W)
			if i < 0 || mvar.Version(t.writes.At(i).Old) != r.Ver {
				return false
			}
			continue
		}
		if mvar.Version(m) != r.Ver {
			return false
		}
	}
	return true
}

func (t *txn) releaseLocks() {
	entries := t.writes.Entries()
	for i := range entries {
		e := &entries[i]
		e.W.Restore(e.Old)
	}
	t.writes.Reset()
}

// Rollback implements stm.TxControl; releases eagerly held locks and marks
// the descriptor aborted so waiting transactions stop treating it as an
// active owner.
func (t *txn) Rollback() {
	t.releaseLocks()
	t.desc.status.Store(statusAborted)
	t.reads = t.reads[:0]
}
