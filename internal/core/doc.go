// Package core implements OE-STM, the paper's contribution (§V): a
// software transactional memory providing elastic transactions (Felber,
// Gramoli, Guerraoui — DISC 2009) that satisfy outheritance and therefore
// compose (§IV).
//
// # Elastic transactions
//
// An elastic transaction ignores all conflicts induced by its read-only
// prefix. Before its first write it protects only a sliding one-entry
// window — the immediate past read — and every new read verifies that the
// previous read is unchanged (cut consistency). The first write promotes
// the window entry into the permanent read set; from then on the
// transaction behaves like a classic one. Writes are buffered and locked
// at commit against the shared versioned lock words. A snapshot upper
// bound is extended lazily (LSA-style) so transactions always observe
// consistent state (opacity) without a priori read-version aborts.
//
// Following §V: the minimal protected set of a read-only elastic
// transaction is {r_n} (its last read); otherwise it is {r_k, …, r_n}
// where r_k is the location read immediately before the first write.
//
// # Outheritance
//
// When a nested (composed) transaction commits, it does not release its
// protected set; instead it passes its read set, last-read entry and
// write set to its parent (Fig. 4's outherit()), which holds them until
// its own commit. The engine can be constructed with outheritance
// disabled (NewWithoutOutheritance) to obtain the original E-STM
// behaviour, which releases the child's protected set at child commit and
// therefore breaks composition exactly as in the paper's Fig. 1 — this
// mode exists for the demonstration tests, the ablation benchmarks, and
// the harness's composed scenarios, whose invariant audits observe E-STM
// violating atomicity at workload scale.
//
// # Structure cooperation
//
// Elastic protection is a contract with the data structures: a removal
// must bump the versions of the departing node's own links (a same-value
// rewrite) so that any elastic window — possibly outherited into an
// enclosing composition — that runs through the removed node fails
// validation. See eec's list.remove and the skip lists' remove.
//
// # Pooling
//
// The engine caches its top-level transaction frame per thread
// (stm.Thread.EngineScratch) and child frames on a per-nest free list, so
// Begin — including every attempt of the conflict-retry path — does not
// allocate.
//
//compose:hotpath
package core
