package core

import (
	"oestm/internal/mvar"
	"oestm/internal/stm"
)

// EarlyRelease removes v from the current transaction's protected set —
// the early-release mechanism of DSTM, which §II-A models as releasing
// the protection element when the release operation is invoked. After
// the call, conflicts on v no longer abort the transaction.
//
// Early release is an expert relaxation: it trades safety for
// concurrency, and — exactly as Theorem 4.3 predicts — using it inside a
// composition destroys weak composability, because the released element
// leaves the minimal protected set that outheritance would have passed
// to the parent. The instrumentation reflects this: the release event is
// emitted at the call, and the checkers in internal/check will flag the
// resulting histories.
//
// It reports whether anything was actually released (false when v was
// not in the protected set, was already written, or tx does not belong
// to this engine).
func EarlyRelease(tx stm.Tx, v *mvar.AnyVar) bool { return EarlyReleaseWord(tx, v.Word()) }

// EarlyReleaseWord is EarlyRelease for an arbitrary transactional
// variable, identified by its memory word.
func EarlyReleaseWord(tx stm.Tx, w *mvar.Word) bool {
	node, ok := tx.(txNode)
	if !ok {
		return false
	}
	t := node.topTxn()
	if t.writes.Find(w) >= 0 {
		// Write intents cannot be released: the commit protocol owns them.
		return false
	}
	f := node.getFrame()
	released := false
	// Drop from the permanent read set.
	kept := f.reads[:0]
	for _, r := range f.reads {
		if r.W == w {
			released = true
			continue
		}
		kept = append(kept, r)
	}
	f.reads = kept
	// Drop from the elastic window.
	for i := 0; i < f.nwin; {
		if f.win[i].W == w {
			copy(f.win[i:], f.win[i+1:f.nwin])
			f.nwin--
			released = true
			continue
		}
		i++
	}
	if released {
		t.traceRelease(f, w)
	}
	return released
}
