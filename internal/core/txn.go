package core

import (
	"oestm/internal/mvar"
	"oestm/internal/stm"
)

// readEntry records a read of v at version ver; validation requires the
// version to be unchanged (or the location to be locked by this thread at
// commit time).
type readEntry struct {
	v   *mvar.Var
	ver uint64
}

// writeEntry is a deferred update; old holds the pre-lock word during the
// commit protocol for revert on validation failure.
type writeEntry struct {
	v   *mvar.Var
	val any
	old uint64
}

// windowSize is the length of the elastic sliding window: the immediate
// past reads an elastic transaction keeps protected during its read-only
// prefix. Two entries realise E-STM's pairwise cut consistency — each new
// access is checked against the previous two — which is exactly what
// sorted-structure updates need: the links around a modification point
// (e.g. prev.next and curr.next of a list removal) stay protected
// together until the first write promotes them.
const windowSize = 2

// frame is the per-transaction elastic state: one frame per transaction in
// a nest. It tracks the transaction's protected reads — the permanent read
// set plus, for elastic transactions that have not written yet, the
// sliding window of immediate past reads.
type frame struct {
	id      uint64
	kind    stm.Kind
	written bool
	nwin    int
	win     [windowSize]readEntry
	reads   []readEntry
}

func (f *frame) init(id uint64, k stm.Kind) {
	f.id = id
	f.kind = k
	// Regular transactions protect every read permanently from the start.
	f.written = k != stm.Elastic
}

// markWritten transitions an elastic frame out of its read-only prefix:
// the window of immediate past reads joins the permanent read set (§V).
func (f *frame) markWritten() {
	if f.written {
		return
	}
	f.written = true
	f.reads = append(f.reads, f.win[:f.nwin]...)
	f.nwin = 0
}

// txn is a top-level OE-STM transaction. It owns the write buffer and the
// snapshot upper bound shared by the whole nest, plus the stack of live
// frames (its own and those of currently open children).
type txn struct {
	frame
	tm        *TM
	th        *stm.Thread
	ub        uint64
	writes    []writeEntry
	windex    map[*mvar.Var]int
	frames    []*frame
	framesBuf [4]*frame
}

func (t *txn) getFrame() *frame { return &t.frame }
func (t *txn) topTxn() *txn     { return t }

// Kind implements stm.Tx.
func (t *txn) Kind() stm.Kind { return t.frame.kind }

// Read implements stm.Tx.
func (t *txn) Read(v *mvar.Var) any { return t.readVar(&t.frame, v) }

// Write implements stm.Tx.
func (t *txn) Write(v *mvar.Var, val any) { t.writeVar(&t.frame, v, val) }

// readVar performs a transactional read on behalf of frame f (which may
// belong to a nested child).
func (t *txn) readVar(f *frame, v *mvar.Var) any {
	if idx, ok := t.windex[v]; ok {
		// Read-own-write: the nest shares one write buffer.
		val := t.writes[idx].val
		t.traceOp(f, v, "read", val)
		return val
	}
	val, ver, ok := v.ReadConsistent()
	if !ok {
		stm.Conflict("oestm: read of locked or changing location")
	}
	// A version beyond the snapshot bound triggers a lazy extension. The
	// extension only validates reads recorded so far, so the in-flight
	// read must be repeated afterwards: the commit that advanced the
	// clock may have changed this very location, and accepting the stale
	// (value, version) pair under the new bound would lose that update.
	for ver > t.ub {
		t.extend()
		val, ver, ok = v.ReadConsistent()
		if !ok {
			stm.Conflict("oestm: read of locked or changing location")
		}
	}
	if f.kind == stm.Elastic && !f.written {
		// Read-only prefix: verify the cut — the immediate past reads must
		// be unchanged — then slide the window, releasing the oldest
		// protection element (§II-A: "for elastic transactions, it is
		// released after a new protection element is acquired").
		for i := 0; i < f.nwin; i++ {
			if !t.entryValid(f.win[i]) {
				stm.Conflict("oestm: elastic cut broken")
			}
		}
		t.traceAcquire(f, v)
		if f.nwin == windowSize {
			t.traceRelease(f, f.win[0].v)
			copy(f.win[:], f.win[1:])
			f.nwin--
		}
		f.win[f.nwin] = readEntry{v, ver}
		f.nwin++
	} else {
		t.traceAcquire(f, v)
		f.reads = append(f.reads, readEntry{v, ver})
	}
	t.traceOp(f, v, "read", val)
	return val
}

// writeVar buffers a deferred update on behalf of frame f.
func (t *txn) writeVar(f *frame, v *mvar.Var, val any) {
	if !f.written {
		f.markWritten()
	}
	if idx, ok := t.windex[v]; ok {
		t.traceOp(f, v, "write", val)
		t.writes[idx].val = val
		return
	}
	// The protection element is acquired at the point the invocation
	// reaches the transactional memory (§II-A on deferred updates), so
	// the acquire precedes the operation events.
	t.traceAcquire(f, v)
	t.traceOp(f, v, "write", val)
	if t.windex == nil {
		t.windex = make(map[*mvar.Var]int, 8)
	}
	t.windex[v] = len(t.writes)
	t.writes = append(t.writes, writeEntry{v: v, val: val})
}

// extend slides the snapshot upper bound to the present after validating
// every live frame; failure aborts the transaction.
func (t *txn) extend() {
	now := t.tm.clock.Now()
	if !t.validateFrames() {
		stm.Conflict("oestm: snapshot extension failed")
	}
	t.ub = now
}

// validateFrames checks every protected read of every live frame.
func (t *txn) validateFrames() bool {
	for _, f := range t.frames {
		if !t.frameValid(f) {
			return false
		}
	}
	return true
}

// frameValid checks one frame's protected reads.
func (t *txn) frameValid(f *frame) bool {
	for _, r := range f.reads {
		if !t.entryValid(r) {
			return false
		}
	}
	for i := 0; i < f.nwin; i++ {
		if !t.entryValid(f.win[i]) {
			return false
		}
	}
	return true
}

// entryValid reports whether a read entry still holds: same version and
// not locked by another thread. During the commit protocol, locations this
// transaction locked are validated against their pre-lock version — a
// concurrent commit may have slipped in between our read and our lock.
func (t *txn) entryValid(r readEntry) bool {
	m := r.v.Meta()
	if mvar.Locked(m) {
		if mvar.Owner(m) != t.th.ID {
			return false
		}
		idx, mine := t.windex[r.v]
		return mine && mvar.Version(t.writes[idx].old) == r.ver
	}
	return mvar.Version(m) == r.ver
}

// Commit implements stm.TxControl for the top-level transaction: lock the
// write set, validate the protected reads, publish, release.
func (t *txn) Commit() error {
	if len(t.writes) == 0 {
		// Read-only: elastic cut checks (and snapshot extension for
		// regular frames) already ensured consistency at every step; the
		// transaction serialises within its snapshot interval.
		t.th.Stats.ReadOnly++
		t.traceFinish(true)
		return nil
	}
	acquired := 0
	for i := range t.writes {
		e := &t.writes[i]
		m := e.v.Meta()
		if mvar.Locked(m) || !e.v.TryLock(t.th.ID, m) {
			t.revert(acquired)
			t.traceFinish(false)
			return stm.ErrConflict
		}
		e.old = m
		acquired++
	}
	wv := t.tm.clock.Tick()
	if t.ub+1 != wv {
		if !t.validateFrames() {
			t.revert(acquired)
			t.traceFinish(false)
			return stm.ErrConflict
		}
	}
	for i := range t.writes {
		e := &t.writes[i]
		e.v.StoreLocked(e.val)
		e.v.Unlock(wv)
	}
	t.traceFinish(true)
	return nil
}

// revert restores the first n acquired write locks.
func (t *txn) revert(n int) {
	for i := 0; i < n; i++ {
		t.writes[i].v.Restore(t.writes[i].old)
	}
}

// Rollback implements stm.TxControl. No locks are held outside Commit
// (which reverts internally), so rollback only discards state.
func (t *txn) Rollback() {
	t.traceFinish(false)
	t.writes = nil
	t.windex = nil
	t.reads = nil
	t.frames = nil
}

// traceFinish emits the commit/abort event followed by the release events
// of every element still protected by the nest. Releases are emitted on
// abort too: the recorder's hold accounting must stay balanced across
// retries (aborted transactions are removed from histories anyway).
func (t *txn) traceFinish(committed bool) {
	tr := t.tm.tracer
	if tr == nil {
		return
	}
	if committed {
		tr.TxCommit(t.th.ID, t.frame.id)
	} else {
		tr.TxAbort(t.th.ID, t.frame.id)
	}
	for _, f := range t.frames {
		for _, r := range f.reads {
			tr.Release(t.th.ID, t.frame.id, r.v)
		}
		for i := 0; i < f.nwin; i++ {
			tr.Release(t.th.ID, t.frame.id, f.win[i].v)
		}
	}
	for i := range t.writes {
		tr.Release(t.th.ID, t.frame.id, t.writes[i].v)
	}
}

func (t *txn) traceAcquire(f *frame, v *mvar.Var) {
	if tr := t.tm.tracer; tr != nil {
		tr.Acquire(t.th.ID, f.id, v)
	}
}

func (t *txn) traceRelease(f *frame, v *mvar.Var) {
	if tr := t.tm.tracer; tr != nil {
		tr.Release(t.th.ID, f.id, v)
	}
}

func (t *txn) traceOp(f *frame, v *mvar.Var, op string, val any) {
	if tr := t.tm.tracer; tr != nil {
		tr.Op(t.th.ID, f.id, v, op, val)
	}
}
