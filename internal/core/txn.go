package core

import (
	"oestm/internal/mvar"
	"oestm/internal/stm"
	"oestm/internal/txset"
)

// windowSize is the length of the elastic sliding window: the immediate
// past reads an elastic transaction keeps protected during its read-only
// prefix. Two entries realise E-STM's pairwise cut consistency — each new
// access is checked against the previous two — which is exactly what
// sorted-structure updates need: the links around a modification point
// (e.g. prev.next and curr.next of a list removal) stay protected
// together until the first write promotes them.
const windowSize = 2

// frame is the per-transaction elastic state: one frame per transaction in
// a nest. It tracks the transaction's protected reads — the permanent read
// set plus, for elastic transactions that have not written yet, the
// sliding window of immediate past reads. Frames are pooled with their
// owning transaction: init truncates rather than reallocates, so the
// retry path records reads into warmed storage.
type frame struct {
	id      uint64
	kind    stm.Kind
	written bool
	nwin    int
	win     [windowSize]txset.Read
	reads   []txset.Read
}

func (f *frame) init(id uint64, k stm.Kind) {
	f.id = id
	f.kind = k
	// Regular transactions protect every read permanently from the start.
	f.written = k != stm.Elastic
	f.nwin = 0
	f.reads = f.reads[:0]
}

// markWritten transitions an elastic frame out of its read-only prefix:
// the window of immediate past reads joins the permanent read set (§V).
func (f *frame) markWritten() {
	if f.written {
		return
	}
	f.written = true
	f.reads = append(f.reads, f.win[:f.nwin]...)
	f.nwin = 0
}

// txn is a top-level OE-STM transaction. It owns the write buffer and the
// snapshot upper bound shared by the whole nest, plus the stack of live
// frames (its own and those of currently open children).
//
// txn values are pooled per thread (via stm.Thread.EngineScratch) and per
// nest (the children free-list), so a Begin — including every Begin of the
// conflict-retry path — reuses warmed read/write-set storage instead of
// allocating. The pooled storage may retain stale pointers to previously
// written nodes between transactions; they are overwritten by the next
// transaction's entries and never dereferenced in between.
type txn struct {
	frame
	tm        *TM
	th        *stm.Thread
	ub        uint64
	writes    txset.WriteSet
	frames    []*frame
	framesBuf [4]*frame
	children  []*child
	nchild    int
}

// reset prepares a pooled txn for a fresh top-level attempt.
func (t *txn) reset(tm *TM, th *stm.Thread, k stm.Kind, id uint64) {
	t.tm = tm
	t.th = th
	t.ub = tm.clock.Now()
	t.writes.Reset()
	t.nchild = 0
	t.frame.init(id, k)
	if t.frames == nil {
		t.frames = t.framesBuf[:0]
	} else {
		t.frames = t.frames[:0]
	}
	t.frames = append(t.frames, &t.frame)
}

func (t *txn) getFrame() *frame { return &t.frame }
func (t *txn) topTxn() *txn     { return t }

// Kind implements stm.Tx.
func (t *txn) Kind() stm.Kind { return t.frame.kind }

// Read implements stm.Tx (untyped surface).
func (t *txn) Read(v *mvar.AnyVar) any { return readAny(t, &t.frame, v) }

// Write implements stm.Tx (untyped surface).
func (t *txn) Write(v *mvar.AnyVar, val any) { writeAny(t, &t.frame, v, val) }

// ReadWord implements stm.Tx (typed hot path).
func (t *txn) ReadWord(w *mvar.Word) mvar.Raw { return readWordTraced(t, &t.frame, w) }

// WriteWord implements stm.Tx (typed hot path).
func (t *txn) WriteWord(w *mvar.Word, r mvar.Raw) { writeWordTraced(t, &t.frame, w, r) }

// readAny performs an untyped read on behalf of frame f, tracing the
// decoded value (value-level traces are what the history checkers compare
// against serial specifications).
func readAny(t *txn, f *frame, v *mvar.AnyVar) any {
	raw := t.readWord(f, v.Word())
	val := mvar.AnyValue(raw)
	if tr := t.tm.tracer; tr != nil {
		tr.Op(t.th.ID, f.id, v.Word(), "read", val)
	}
	return val
}

// writeAny performs an untyped write on behalf of frame f.
func writeAny(t *txn, f *frame, v *mvar.AnyVar, val any) {
	t.writeWord(f, v.Word(), mvar.AnyRaw(val))
	if tr := t.tm.tracer; tr != nil {
		tr.Op(t.th.ID, f.id, v.Word(), "write", val)
	}
}

// readWordTraced wraps the raw read with an op trace. The boxing of the
// Raw payload into the trace's any parameter happens only under the nil
// check, keeping the untraced fast path allocation-free.
func readWordTraced(t *txn, f *frame, w *mvar.Word) mvar.Raw {
	raw := t.readWord(f, w)
	if tr := t.tm.tracer; tr != nil {
		tr.Op(t.th.ID, f.id, w, "read", raw)
	}
	return raw
}

// writeWordTraced wraps the raw write with an op trace.
func writeWordTraced(t *txn, f *frame, w *mvar.Word, r mvar.Raw) {
	t.writeWord(f, w, r)
	if tr := t.tm.tracer; tr != nil {
		tr.Op(t.th.ID, f.id, w, "write", r)
	}
}

// readWord performs a transactional read on behalf of frame f (which may
// belong to a nested child).
//
//compose:noalloc
func (t *txn) readWord(f *frame, w *mvar.Word) mvar.Raw {
	if i := t.writes.Find(w); i >= 0 {
		// Read-own-write: the nest shares one write buffer.
		return t.writes.At(i).Val
	}
	raw, ver, ok := w.ReadConsistent()
	if !ok {
		stm.Abort(stm.CauseReadValidation)
	}
	// A version beyond the snapshot bound triggers a lazy extension. The
	// extension only validates reads recorded so far, so the in-flight
	// read must be repeated afterwards: the commit that advanced the
	// clock may have changed this very location, and accepting the stale
	// (value, version) pair under the new bound would lose that update.
	for ver > t.ub {
		t.extend()
		raw, ver, ok = w.ReadConsistent()
		if !ok {
			stm.Abort(stm.CauseReadValidation)
		}
	}
	if f.kind == stm.Elastic && !f.written {
		// Read-only prefix: verify the cut — the immediate past reads must
		// be unchanged — then slide the window, releasing the oldest
		// protection element (§II-A: "for elastic transactions, it is
		// released after a new protection element is acquired").
		for i := 0; i < f.nwin; i++ {
			if !t.entryValid(f.win[i]) {
				stm.Abort(stm.CauseElasticWindow)
			}
		}
		t.traceAcquire(f, w)
		if f.nwin == windowSize {
			t.traceRelease(f, f.win[0].W)
			copy(f.win[:], f.win[1:])
			f.nwin--
		}
		f.win[f.nwin] = txset.Read{W: w, Ver: ver}
		f.nwin++
	} else {
		t.traceAcquire(f, w)
		f.reads = append(f.reads, txset.Read{W: w, Ver: ver})
	}
	return raw
}

// writeWord buffers a deferred update on behalf of frame f.
//
//compose:noalloc
func (t *txn) writeWord(f *frame, w *mvar.Word, r mvar.Raw) {
	if !f.written {
		f.markWritten()
	}
	if i := t.writes.Find(w); i >= 0 {
		t.writes.At(i).Val = r
		return
	}
	// The protection element is acquired at the point the invocation
	// reaches the transactional memory (§II-A on deferred updates), so
	// the acquire precedes the operation events.
	t.traceAcquire(f, w)
	t.writes.Append(txset.Write{W: w, Val: r})
}

// extend slides the snapshot upper bound to the present after validating
// every live frame; failure aborts the transaction.
//
//compose:noalloc
func (t *txn) extend() {
	now := t.tm.clock.Now()
	if !t.validateFrames() {
		stm.Abort(stm.CauseSnapshotExtension)
	}
	t.ub = now
}

// validateFrames checks every protected read of every live frame.
//
//compose:noalloc
func (t *txn) validateFrames() bool {
	for _, f := range t.frames {
		if !t.frameValid(f) {
			return false
		}
	}
	return true
}

// frameValid checks one frame's protected reads.
func (t *txn) frameValid(f *frame) bool {
	for _, r := range f.reads {
		if !t.entryValid(r) {
			return false
		}
	}
	for i := 0; i < f.nwin; i++ {
		if !t.entryValid(f.win[i]) {
			return false
		}
	}
	return true
}

// entryValid reports whether a read entry still holds: same version and
// not locked by another thread. During the commit protocol, locations this
// transaction locked are validated against their pre-lock version — a
// concurrent commit may have slipped in between our read and our lock.
func (t *txn) entryValid(r txset.Read) bool {
	m := r.W.Meta()
	if mvar.Locked(m) {
		if mvar.Owner(m) != t.th.ID {
			return false
		}
		i := t.writes.Find(r.W)
		return i >= 0 && mvar.Version(t.writes.At(i).Old) == r.Ver
	}
	return mvar.Version(m) == r.Ver
}

// Commit implements stm.TxControl for the top-level transaction: lock the
// write set, validate the protected reads, publish, release.
func (t *txn) Commit() error {
	if t.writes.Len() == 0 {
		// Read-only: elastic cut checks (and snapshot extension for
		// regular frames) already ensured consistency at every step; the
		// transaction serialises within its snapshot interval.
		t.th.Stats.ReadOnly++
		t.traceFinish(true)
		return nil
	}
	entries := t.writes.Entries()
	acquired := 0
	for i := range entries {
		e := &entries[i]
		m := e.W.Meta()
		if mvar.Locked(m) || !e.W.TryLock(t.th.ID, m) {
			t.revert(acquired)
			t.traceFinish(false)
			return stm.ConflictOf(stm.CauseLockBusy)
		}
		e.Old = m
		acquired++
	}
	wv := t.tm.clock.Tick()
	if t.ub+1 != wv {
		if !t.validateFrames() {
			t.revert(acquired)
			t.traceFinish(false)
			return stm.ConflictOf(stm.CauseCommitValidation)
		}
	}
	for i := range entries {
		e := &entries[i]
		e.W.StoreLockedRaw(e.Val)
		e.W.Unlock(wv)
	}
	t.traceFinish(true)
	return nil
}

// revert restores the first n acquired write locks.
func (t *txn) revert(n int) {
	entries := t.writes.Entries()
	for i := 0; i < n; i++ {
		entries[i].W.Restore(entries[i].Old)
	}
}

// Rollback implements stm.TxControl. No locks are held outside Commit
// (which reverts internally), so rollback only discards state — and with
// pooled frames "discarding" is deferred to the next reset, which
// truncates the warmed storage in place.
func (t *txn) Rollback() {
	t.traceFinish(false)
}

// traceFinish emits the commit/abort event followed by the release events
// of every element still protected by the nest. Releases are emitted on
// abort too: the recorder's hold accounting must stay balanced across
// retries (aborted transactions are removed from histories anyway).
func (t *txn) traceFinish(committed bool) {
	tr := t.tm.tracer
	if tr == nil {
		return
	}
	if committed {
		tr.TxCommit(t.th.ID, t.frame.id)
	} else {
		tr.TxAbort(t.th.ID, t.frame.id)
	}
	for _, f := range t.frames {
		for _, r := range f.reads {
			tr.Release(t.th.ID, t.frame.id, r.W)
		}
		for i := 0; i < f.nwin; i++ {
			tr.Release(t.th.ID, t.frame.id, f.win[i].W)
		}
	}
	entries := t.writes.Entries()
	for i := range entries {
		tr.Release(t.th.ID, t.frame.id, entries[i].W)
	}
}

func (t *txn) traceAcquire(f *frame, w *mvar.Word) {
	if tr := t.tm.tracer; tr != nil {
		tr.Acquire(t.th.ID, f.id, w)
	}
}

func (t *txn) traceRelease(f *frame, w *mvar.Word) {
	if tr := t.tm.tracer; tr != nil {
		tr.Release(t.th.ID, f.id, w)
	}
}
