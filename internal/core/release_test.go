package core_test

import (
	"testing"

	"oestm/internal/check"
	"oestm/internal/core"
	"oestm/internal/history"
	"oestm/internal/mvar"
	"oestm/internal/stm"
)

// TestEarlyReleaseIgnoresConflict: after releasing a read, a conflicting
// external write no longer aborts the transaction (DSTM early release).
func TestEarlyReleaseIgnoresConflict(t *testing.T) {
	tm := core.New()
	th := stm.NewThread(tm)
	v1, v2 := mvar.New(1), mvar.New(2)
	attempts := 0
	err := th.Atomic(stm.Regular, func(tx stm.Tx) error {
		attempts++
		_ = tx.Read(v1)
		if !core.EarlyRelease(tx, v1) {
			t.Error("EarlyRelease found nothing to release")
		}
		if attempts == 1 {
			write(t, tm, v1, 100)
		}
		tx.Write(v2, 20)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if attempts != 1 {
		t.Fatalf("attempts = %d, want 1 (released read must not be validated)", attempts)
	}
}

// TestWithoutEarlyReleaseConflicts is the control: the same interleaving
// without the release aborts.
func TestWithoutEarlyReleaseConflicts(t *testing.T) {
	tm := core.New()
	th := stm.NewThread(tm)
	v1, v2 := mvar.New(1), mvar.New(2)
	attempts := 0
	err := th.Atomic(stm.Regular, func(tx stm.Tx) error {
		attempts++
		_ = tx.Read(v1)
		if attempts == 1 {
			write(t, tm, v1, 100)
		}
		tx.Write(v2, 20)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if attempts != 2 {
		t.Fatalf("attempts = %d, want 2", attempts)
	}
}

// TestEarlyReleaseFromElasticWindow: releasing the window entry of an
// elastic prefix also works.
func TestEarlyReleaseFromElasticWindow(t *testing.T) {
	tm := core.New()
	th := stm.NewThread(tm)
	v1, v2 := mvar.New(1), mvar.New(2)
	attempts := 0
	err := th.Atomic(stm.Elastic, func(tx stm.Tx) error {
		attempts++
		_ = tx.Read(v1) // window = {v1}
		if !core.EarlyRelease(tx, v1) {
			t.Error("window entry not released")
		}
		if attempts == 1 {
			write(t, tm, v1, 100)
		}
		_ = tx.Read(v2) // cut check must now pass (window empty)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if attempts != 1 {
		t.Fatalf("attempts = %d, want 1", attempts)
	}
}

// TestEarlyReleaseRefusesWrites: write intents stay protected.
func TestEarlyReleaseRefusesWrites(t *testing.T) {
	tm := core.New()
	th := stm.NewThread(tm)
	v := mvar.New(1)
	_ = th.Atomic(stm.Regular, func(tx stm.Tx) error {
		tx.Write(v, 2)
		if core.EarlyRelease(tx, v) {
			t.Error("released a write intent")
		}
		return nil
	})
}

// TestEarlyReleaseForeignTx: transactions of other engines are rejected
// gracefully.
func TestEarlyReleaseForeignTx(t *testing.T) {
	tm := core.New()
	th := stm.NewThread(tm)
	v := mvar.New(1)
	_ = th.Atomic(stm.Regular, func(tx stm.Tx) error {
		if core.EarlyRelease(fakeTx{tx}, v) {
			t.Error("accepted a foreign transaction")
		}
		return nil
	})
}

type fakeTx struct{ stm.Tx }

// TestEarlyReleaseShrinksPmin ties the API to the model: with a recorder
// installed, an early-released element is released before commit, so it
// leaves Pmin — and a composition using it inside a child violates
// outheritance (Theorem 4.3's premise made executable).
func TestEarlyReleaseShrinksPmin(t *testing.T) {
	tm := core.New()
	rec := history.NewRecorder()
	tm.SetTracer(rec)
	v1, v2 := mvar.New(1), mvar.New(2)
	rec.Label(v1, "a")
	rec.Label(v2, "b")
	th := stm.NewThread(tm)
	_ = th.Atomic(stm.Regular, func(tx stm.Tx) error {
		_ = tx.Read(v1)
		_ = tx.Read(v2)
		core.EarlyRelease(tx, v1)
		return nil
	})
	h := rec.History()
	txs := h.Transactions()
	if len(txs) != 1 {
		t.Fatalf("transactions = %v", txs)
	}
	pmin := h.Pmin(txs[0])
	if pmin["a"] {
		t.Fatal("early-released element must leave Pmin")
	}
	if !pmin["b"] {
		t.Fatal("retained element must stay in Pmin")
	}
	if !check.RelaxSerial(h) {
		t.Fatalf("history not relax-serial:\n%s", h)
	}
}
