package core_test

import (
	"testing"

	"oestm/internal/core"
	"oestm/internal/stm"
	"oestm/internal/stmtest"
)

func TestConformanceOESTM(t *testing.T) {
	stmtest.Run(t, func() stm.TM { return core.New() })
}

// E-STM mode must still pass the conformance suite: outheritance only
// matters for composition correctness under adversarial interleavings,
// which the directed tests below target; the generic suite's nested
// workloads are conflict-free at the composition boundary.
func TestConformanceESTMNonComposed(t *testing.T) {
	stmtest.Run(t, func() stm.TM { return core.NewWithoutOutheritance() })
}

// The regular-only ablation engine is a full classic STM and must pass
// the same contract.
func TestConformanceRegularOnly(t *testing.T) {
	stmtest.Run(t, func() stm.TM { return core.NewRegularOnly() })
}

func TestProperties(t *testing.T) {
	tm := core.New()
	if tm.Name() != "oestm" {
		t.Fatalf("name = %q", tm.Name())
	}
	if !tm.SupportsElastic() {
		t.Fatal("oestm must support elastic transactions")
	}
	if !tm.Outherits() {
		t.Fatal("New() must enable outheritance")
	}
	etm := core.NewWithoutOutheritance()
	if etm.Name() != "estm" {
		t.Fatalf("name = %q", etm.Name())
	}
	if etm.Outherits() {
		t.Fatal("NewWithoutOutheritance() must disable outheritance")
	}
}
