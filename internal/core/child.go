package core

import (
	"oestm/internal/mvar"
	"oestm/internal/stm"
)

// child is a nested (composed) transaction. It shares the top-level
// transaction's write buffer and snapshot bound but tracks its own elastic
// state in its frame. At commit it either outherits its protected set to
// the parent (OE-STM) or releases it (E-STM mode). Children are pooled on
// the top-level transaction's free-list: a composition that retries (or a
// thread that composes repeatedly) reuses the same child frames and their
// warmed read-set storage.
type child struct {
	frame
	top         *txn
	parentFrame *frame
}

func (c *child) getFrame() *frame { return &c.frame }
func (c *child) topTxn() *txn     { return c.top }

// Kind implements stm.Tx.
func (c *child) Kind() stm.Kind { return c.frame.kind }

// Read implements stm.Tx (untyped surface).
func (c *child) Read(v *mvar.AnyVar) any { return readAny(c.top, &c.frame, v) }

// Write implements stm.Tx (untyped surface).
func (c *child) Write(v *mvar.AnyVar, val any) { writeAny(c.top, &c.frame, v, val) }

// ReadWord implements stm.Tx (typed hot path).
func (c *child) ReadWord(w *mvar.Word) mvar.Raw { return readWordTraced(c.top, &c.frame, w) }

// WriteWord implements stm.Tx (typed hot path).
func (c *child) WriteWord(w *mvar.Word, r mvar.Raw) { writeWordTraced(c.top, &c.frame, w, r) }

// Commit implements stm.TxControl for nested transactions: validate the
// child's protected set at its commit point, then apply the outherit()
// rule of Fig. 4 — pass read set, last-read entry and write set to the
// parent — or, in E-STM mode, drop the read protection (reproducing the
// composition violation of Fig. 1).
func (c *child) Commit() error {
	t := c.top
	if !t.frameValid(&c.frame) {
		return stm.ConflictOf(stm.CauseCommitValidation)
	}
	t.popFrame(&c.frame)
	tr := t.tm.tracer
	if t.tm.outherit {
		p := c.parentFrame
		p.reads = append(p.reads, c.frame.reads...)
		p.reads = append(p.reads, c.frame.win[:c.frame.nwin]...)
		if c.frame.written {
			// The parent inherited writes: its own elastic prefix (if
			// any) ends here, matching a transaction whose write set
			// just became non-empty.
			p.markWritten()
		}
	}
	if tr != nil {
		tr.TxCommit(t.th.ID, c.frame.id)
		if !t.tm.outherit {
			// E-STM: the protected set is released as soon as the child
			// commits — the early releases that break composition
			// (emitted after the commit event, as the model places them).
			for _, r := range c.frame.reads {
				tr.Release(t.th.ID, c.frame.id, r.W)
			}
			for i := 0; i < c.frame.nwin; i++ {
				tr.Release(t.th.ID, c.frame.id, c.frame.win[i].W)
			}
		}
	}
	return nil
}

// Rollback implements stm.TxControl; it is only invoked when the child is
// the innermost transaction (user-error aborts), so its frame is on top of
// the stack.
func (c *child) Rollback() {
	c.top.popFrame(&c.frame)
	if tr := c.top.tm.tracer; tr != nil {
		tr.TxAbort(c.top.th.ID, c.frame.id)
	}
}

// popFrame removes f from the live-frame stack. Conflict unwinds skip the
// children's Rollback (the whole nest retries), so the frame may already
// have been discarded with the stack by the top-level Rollback.
func (t *txn) popFrame(f *frame) {
	if n := len(t.frames); n > 0 && t.frames[n-1] == f {
		t.frames = t.frames[:n-1]
	}
}
