package core_test

import (
	"errors"
	"testing"

	"oestm/internal/core"
	"oestm/internal/mvar"
	"oestm/internal/stm"
)

// wantCause asserts that err is a RetryExhaustedError carrying want (and
// still matches the ErrConflict sentinel).
func wantCause(t *testing.T, err error, want stm.ConflictCause) {
	t.Helper()
	if !errors.Is(err, stm.ErrConflict) {
		t.Fatalf("err = %v, want ErrConflict match", err)
	}
	var rex *stm.RetryExhaustedError
	if !errors.As(err, &rex) {
		t.Fatalf("err = %v, want *RetryExhaustedError", err)
	}
	if rex.Cause != want {
		t.Fatalf("cause = %v, want %v", rex.Cause, want)
	}
}

// TestConflictCauses pins every OE-STM conflict site to its
// ConflictCause: reads of locked locations (read-validation), broken
// elastic cuts (elastic-window), failed lazy snapshot extensions
// (snapshot-extension), commit-time lock acquisition (lock-busy), and
// commit-time frame validation — top-level and nested — as
// commit-validation.
func TestConflictCauses(t *testing.T) {
	cases := []struct {
		name string
		want stm.ConflictCause
		run  func(t *testing.T) error
	}{
		{"read of locked location", stm.CauseReadValidation, func(t *testing.T) error {
			tm := core.New()
			th := stm.NewThread(tm)
			th.MaxRetries = 1
			v := mvar.New(1)
			if !v.TryLock(7, v.Meta()) {
				t.Fatal("could not pre-lock the variable")
			}
			return th.Atomic(stm.Regular, func(tx stm.Tx) error {
				_ = tx.Read(v)
				return nil
			})
		}},
		{"elastic cut broken", stm.CauseElasticWindow, func(t *testing.T) error {
			tm := core.New()
			th, other := stm.NewThread(tm), stm.NewThread(tm)
			th.MaxRetries = 1
			a, b, c := mvar.New(1), mvar.New(1), mvar.New(1)
			return th.Atomic(stm.Elastic, func(tx stm.Tx) error {
				_ = tx.Read(a) // window: [a]
				_ = tx.Read(b) // window: [a b]
				if err := other.Atomic(stm.Regular, func(tx2 stm.Tx) error {
					tx2.Write(a, 2)
					return nil
				}); err != nil {
					t.Fatal(err)
				}
				_ = tx.Read(c) // cut check: a moved under the window
				return nil
			})
		}},
		{"snapshot extension failure", stm.CauseSnapshotExtension, func(t *testing.T) error {
			tm := core.New()
			th, other := stm.NewThread(tm), stm.NewThread(tm)
			th.MaxRetries = 1
			a, b := mvar.New(1), mvar.New(1)
			return th.Atomic(stm.Regular, func(tx stm.Tx) error {
				_ = tx.Read(a)
				if err := other.Atomic(stm.Regular, func(tx2 stm.Tx) error {
					tx2.Write(a, 2)
					tx2.Write(b, 2)
					return nil
				}); err != nil {
					t.Fatal(err)
				}
				_ = tx.Read(b) // beyond the bound: extension revalidates a
				return nil
			})
		}},
		{"commit-time write lock unavailable", stm.CauseLockBusy, func(t *testing.T) error {
			tm := core.New()
			th := stm.NewThread(tm)
			th.MaxRetries = 1
			v := mvar.New(1)
			if !v.TryLock(7, v.Meta()) {
				t.Fatal("could not pre-lock the variable")
			}
			return th.Atomic(stm.Regular, func(tx stm.Tx) error {
				tx.Write(v, 2) // deferred: the conflict surfaces at commit
				return nil
			})
		}},
		{"commit-time frame validation failure", stm.CauseCommitValidation, func(t *testing.T) error {
			tm := core.New()
			th, other := stm.NewThread(tm), stm.NewThread(tm)
			th.MaxRetries = 1
			a, b := mvar.New(1), mvar.New(1)
			return th.Atomic(stm.Regular, func(tx stm.Tx) error {
				_ = tx.Read(a)
				if err := other.Atomic(stm.Regular, func(tx2 stm.Tx) error {
					tx2.Write(a, 2)
					return nil
				}); err != nil {
					t.Fatal(err)
				}
				tx.Write(b, 2)
				return nil
			})
		}},
		{"nested commit validation failure", stm.CauseCommitValidation, func(t *testing.T) error {
			tm := core.New()
			th, other := stm.NewThread(tm), stm.NewThread(tm)
			th.MaxRetries = 1
			a, y := mvar.New(1), mvar.New(1)
			return th.Atomic(stm.Elastic, func(tx stm.Tx) error {
				return th.Atomic(stm.Elastic, func(tx2 stm.Tx) error {
					_ = tx2.Read(a)
					tx2.Write(y, 2) // promote the window: a is protected
					if err := other.Atomic(stm.Regular, func(tx3 stm.Tx) error {
						tx3.Write(a, 2)
						return nil
					}); err != nil {
						t.Fatal(err)
					}
					return nil // the child's commit validation fails
				})
			})
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			wantCause(t, tc.run(t), tc.want)
		})
	}
}
