package core

import (
	"sync/atomic"

	"oestm/internal/mvar"
	"oestm/internal/stm"
)

// engine.go also owns the per-thread transaction pooling: Begin reuses the
// thread's cached txn (stm.Thread.EngineScratch) and BeginNested reuses
// the nest's child free-list, so starting a transaction — including every
// attempt of the conflict-retry path — does not allocate.

// TM is an OE-STM (or, with outheritance disabled, E-STM) engine
// instance.
type TM struct {
	clock     mvar.Clock
	outherit  bool
	noElastic bool
	tracer    stm.Tracer
	txIDs     atomic.Uint64
}

// New returns an OE-STM engine: elastic transactions with outheritance.
func New() *TM { return &TM{outherit: true} }

// NewWithoutOutheritance returns an E-STM engine: elastic transactions
// that release their protected sets at (nested) commit time. Composition
// of elastic transactions under this engine can violate atomicity; it is
// provided to reproduce the paper's Fig. 1 and for ablations.
func NewWithoutOutheritance() *TM { return &TM{outherit: false} }

// NewRegularOnly returns the engine with the elastic model switched off:
// every transaction runs as Regular. It isolates, in ablation benchmarks,
// how much of OE-STM's advantage comes from elasticity rather than from
// the engine's snapshot machinery.
func NewRegularOnly() *TM { return &TM{outherit: true, noElastic: true} }

// Name implements stm.TM.
func (tm *TM) Name() string {
	switch {
	case tm.noElastic:
		return "oestm-regular"
	case tm.outherit:
		return "oestm"
	default:
		return "estm"
	}
}

// Outherits reports whether nested commits pass their protected sets to
// the parent.
func (tm *TM) Outherits() bool { return tm.outherit }

// SupportsElastic implements stm.TM.
func (tm *TM) SupportsElastic() bool { return !tm.noElastic }

// effectiveKind degrades Elastic to Regular when elasticity is switched
// off.
func (tm *TM) effectiveKind(k stm.Kind) stm.Kind {
	if tm.noElastic {
		return stm.Regular
	}
	return k
}

// SetTracer installs a protection-element tracer. It must be called while
// no transactions are running; tracing is intended for correctness
// checking, not production.
func (tm *TM) SetTracer(tr stm.Tracer) { tm.tracer = tr }

// Begin implements stm.TM. A thread is bound to one engine, so its cached
// txn (if any) belongs to this TM; the guard tolerates threads that were
// (incorrectly but harmlessly) rebound across engine instances.
func (tm *TM) Begin(th *stm.Thread, k stm.Kind) stm.TxControl {
	k = tm.effectiveKind(k)
	t, _ := th.EngineScratch.(*txn)
	if t == nil || t.tm != tm {
		t = &txn{}
		th.EngineScratch = t
	}
	t.reset(tm, th, k, tm.txIDs.Add(1))
	if tr := tm.tracer; tr != nil {
		tr.TxBegin(th.ID, t.frame.id, 0, k)
	}
	return t
}

// BeginNested implements stm.TM: a real (closed-nested) child that will
// outherit (or, in E-STM mode, release) its protected set at commit.
func (tm *TM) BeginNested(th *stm.Thread, parent stm.TxControl, k stm.Kind) stm.TxControl {
	p, ok := parent.(txNode)
	if !ok {
		// A foreign parent cannot occur in practice: the driver only
		// nests transactions from the same engine.
		panic("core: nested under a transaction of a different engine")
	}
	t := p.topTxn()
	var c *child
	if t.nchild < len(t.children) {
		c = t.children[t.nchild]
	} else {
		c = &child{}
		t.children = append(t.children, c)
	}
	t.nchild++
	c.top = t
	c.parentFrame = p.getFrame()
	c.frame.init(tm.txIDs.Add(1), tm.effectiveKind(k))
	t.frames = append(t.frames, &c.frame)
	if tr := tm.tracer; tr != nil {
		tr.TxBegin(th.ID, c.frame.id, p.getFrame().id, k)
	}
	return c
}

// txNode is implemented by both top-level and child transactions so the
// engine can walk from any transaction to its frame and its top-level
// owner.
type txNode interface {
	stm.TxControl
	getFrame() *frame
	topTxn() *txn
}
