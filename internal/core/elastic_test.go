package core_test

import (
	"testing"

	"oestm/internal/core"
	"oestm/internal/mvar"
	"oestm/internal/stm"
)

// write commits a single-location update on its own thread, simulating a
// concurrent transaction that interleaves at a chosen point.
func write(t *testing.T, tm stm.TM, v *mvar.AnyVar, val any) {
	t.Helper()
	th := stm.NewThread(tm)
	if err := th.Atomic(stm.Regular, func(tx stm.Tx) error {
		tx.Write(v, val)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestElasticPrefixIgnoresConflicts is the elastic model's defining
// behaviour (§II-A): a conflict on the read-only prefix — here v1, already
// outside the two-entry sliding window when the interleaved write lands —
// does not abort the transaction.
func TestElasticPrefixIgnoresConflicts(t *testing.T) {
	tm := core.New()
	th := stm.NewThread(tm)
	v1, v2, v3, v4 := mvar.New(1), mvar.New(2), mvar.New(3), mvar.New(4)
	attempts := 0
	err := th.Atomic(stm.Elastic, func(tx stm.Tx) error {
		attempts++
		_ = tx.Read(v1)
		_ = tx.Read(v2)
		_ = tx.Read(v3) // window slides: v1's protection element released
		if attempts == 1 {
			write(t, tm, v1, 100) // prefix conflict: must be ignored
		}
		tx.Write(v4, 40)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if attempts != 1 {
		t.Fatalf("attempts = %d, want 1 (prefix conflict must not abort an elastic transaction)", attempts)
	}
}

// TestRegularValidatesWholeReadSet is the classic-transaction counterpart:
// the same interleaving aborts a Regular transaction because v1 stays in
// its read set.
func TestRegularValidatesWholeReadSet(t *testing.T) {
	tm := core.New()
	th := stm.NewThread(tm)
	v1, v2, v3 := mvar.New(1), mvar.New(2), mvar.New(3)
	attempts := 0
	err := th.Atomic(stm.Regular, func(tx stm.Tx) error {
		attempts++
		_ = tx.Read(v1)
		_ = tx.Read(v2)
		if attempts == 1 {
			write(t, tm, v1, 100)
		}
		tx.Write(v3, 30)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if attempts != 2 {
		t.Fatalf("attempts = %d, want 2 (regular transaction must abort on read-set conflict)", attempts)
	}
}

// TestElasticCutViolationAborts: a write to the immediate past read (the
// one protection element an elastic prefix holds) must abort.
func TestElasticCutViolationAborts(t *testing.T) {
	tm := core.New()
	th := stm.NewThread(tm)
	v1, v2, v3 := mvar.New(1), mvar.New(2), mvar.New(3)
	attempts := 0
	err := th.Atomic(stm.Elastic, func(tx stm.Tx) error {
		attempts++
		_ = tx.Read(v1) // window = {v1}
		if attempts == 1 {
			write(t, tm, v1, 100) // hits the window entry
		}
		_ = tx.Read(v2) // cut check must fail on first attempt
		tx.Write(v3, 30)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if attempts != 2 {
		t.Fatalf("attempts = %d, want 2 (cut violation must abort)", attempts)
	}
}

// TestElasticWritePromotesWindow: after the first write, reads become
// permanently protected, so a later conflict on them aborts.
func TestElasticWritePromotesWindow(t *testing.T) {
	tm := core.New()
	th := stm.NewThread(tm)
	v1, v2, v3 := mvar.New(1), mvar.New(2), mvar.New(3)
	attempts := 0
	err := th.Atomic(stm.Elastic, func(tx stm.Tx) error {
		attempts++
		_ = tx.Read(v1)
		tx.Write(v2, 20) // v1 (immediate past read) joins the read set
		if attempts == 1 {
			write(t, tm, v1, 100) // post-write conflict: must abort at commit
		}
		tx.Write(v3, 30)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if attempts != 2 {
		t.Fatalf("attempts = %d, want 2 (promoted read must be validated)", attempts)
	}
}

// TestSnapshotExtension: reading a location newer than the snapshot bound
// succeeds when the read set still validates (lazy extension).
func TestSnapshotExtension(t *testing.T) {
	tm := core.New()
	th := stm.NewThread(tm)
	v1, v2 := mvar.New(1), mvar.New(2)
	attempts := 0
	err := th.Atomic(stm.Regular, func(tx stm.Tx) error {
		attempts++
		_ = tx.Read(v1)
		if attempts == 1 {
			write(t, tm, v2, 200) // advances the clock beyond the tx's bound
		}
		if got := tx.Read(v2); attempts > 1 || got != 200 {
			if attempts == 1 {
				t.Errorf("read v2 = %v, want 200", got)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if attempts != 1 {
		t.Fatalf("attempts = %d, want 1 (extension must succeed)", attempts)
	}
}

// TestSnapshotExtensionFailure: extension aborts when an already-read
// location changed.
func TestSnapshotExtensionFailure(t *testing.T) {
	tm := core.New()
	th := stm.NewThread(tm)
	v1, v2 := mvar.New(1), mvar.New(2)
	attempts := 0
	err := th.Atomic(stm.Regular, func(tx stm.Tx) error {
		attempts++
		_ = tx.Read(v1)
		if attempts == 1 {
			write(t, tm, v1, 100)
			write(t, tm, v2, 200)
		}
		_ = tx.Read(v2) // newer than bound; extension revalidates v1 and fails
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if attempts != 2 {
		t.Fatalf("attempts = %d, want 2 (extension over a changed read must abort)", attempts)
	}
}

// insertIfAbsentScenario reproduces the paper's Fig. 1: insertIfAbsent(x,y)
// composed from an elastic contains(y) and an elastic insert(x), with an
// adversarial insert(y) interleaved between the two children. It returns
// whether the composed operation inserted x even though y was present
// (the atomicity violation) and how many attempts the composition took.
func insertIfAbsentScenario(t *testing.T, tm stm.TM) (violated bool, attempts int) {
	t.Helper()
	th := stm.NewThread(tm)
	xPresent, yPresent := mvar.New(false), mvar.New(false)
	err := th.Atomic(stm.Elastic, func(tx stm.Tx) error {
		attempts++
		// Child 1: contains(y), an elastic read-only transaction.
		absent := false
		if err := th.Atomic(stm.Elastic, func(ctx stm.Tx) error {
			absent = !ctx.Read(yPresent).(bool)
			return nil
		}); err != nil {
			return err
		}
		if attempts == 1 {
			// Adversary: concurrent insert(y) lands after contains(y)
			// found it absent but before insert(x) commits.
			write(t, tm, yPresent, true)
		}
		if absent {
			// Child 2: insert(x), an elastic update transaction.
			return th.Atomic(stm.Elastic, func(ctx stm.Tx) error {
				ctx.Write(xPresent, true)
				return nil
			})
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	th2 := stm.NewThread(tm)
	var x, y bool
	if err := th2.Atomic(stm.Regular, func(tx stm.Tx) error {
		x = tx.Read(xPresent).(bool)
		y = tx.Read(yPresent).(bool)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return x && y, attempts
}

// TestFig1ViolationUnderESTM: without outheritance the composed
// insertIfAbsent commits non-atomically — x is inserted although y is
// present — exactly the execution of the paper's Fig. 1.
func TestFig1ViolationUnderESTM(t *testing.T) {
	violated, attempts := insertIfAbsentScenario(t, core.NewWithoutOutheritance())
	if !violated {
		t.Fatal("expected the Fig. 1 atomicity violation under E-STM composition")
	}
	if attempts != 1 {
		t.Fatalf("attempts = %d, want 1 (the violation commits silently)", attempts)
	}
}

// TestFig1PreventedUnderOESTM: with outheritance, the contains(y) read is
// passed to the parent and validated at its commit, so the composition
// retries and observes y — no insert of x happens.
func TestFig1PreventedUnderOESTM(t *testing.T) {
	violated, attempts := insertIfAbsentScenario(t, core.New())
	if violated {
		t.Fatal("outheritance failed to prevent the Fig. 1 violation")
	}
	if attempts != 2 {
		t.Fatalf("attempts = %d, want 2 (first attempt must abort at parent commit)", attempts)
	}
}

// TestOutheritPropagatesWrittenState: a child's write ends the parent's
// elastic prefix, so the parent's subsequent reads are validated at
// commit.
func TestOutheritPropagatesWrittenState(t *testing.T) {
	tm := core.New()
	th := stm.NewThread(tm)
	a, b := mvar.New(1), mvar.New(2)
	attempts := 0
	err := th.Atomic(stm.Elastic, func(tx stm.Tx) error {
		attempts++
		// Child writes: the parent inherits a non-empty write set.
		if err := th.Atomic(stm.Elastic, func(ctx stm.Tx) error {
			ctx.Write(a, 10)
			return nil
		}); err != nil {
			return err
		}
		// The parent's own read after the child must now be permanent.
		_ = tx.Read(b)
		if attempts == 1 {
			write(t, tm, b, 200)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if attempts != 2 {
		t.Fatalf("attempts = %d, want 2 (parent read after child write must be validated)", attempts)
	}
}

// TestComposedMoveAtomicity: a move composed from remove+add observes
// all-or-nothing semantics under an adversarial interleaving.
func TestComposedMoveAtomicity(t *testing.T) {
	tm := core.New()
	th := stm.NewThread(tm)
	src, dst := mvar.New(true), mvar.New(false)
	attempts := 0
	err := th.Atomic(stm.Elastic, func(tx stm.Tx) error {
		attempts++
		var present bool
		if err := th.Atomic(stm.Elastic, func(ctx stm.Tx) error {
			present = ctx.Read(src).(bool)
			if present {
				ctx.Write(src, false)
			}
			return nil
		}); err != nil {
			return err
		}
		if attempts == 1 {
			write(t, tm, dst, false) // touch dst so its version moves
		}
		if present {
			return th.Atomic(stm.Elastic, func(ctx stm.Tx) error {
				if ctx.Read(dst).(bool) {
					return nil
				}
				ctx.Write(dst, true)
				return nil
			})
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	th2 := stm.NewThread(tm)
	var s, d bool
	if err := th2.Atomic(stm.Regular, func(tx stm.Tx) error {
		s = tx.Read(src).(bool)
		d = tx.Read(dst).(bool)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if s || !d {
		t.Fatalf("move not atomic: src=%v dst=%v", s, d)
	}
}

// TestMixedKindComposition: a Regular parent may compose Elastic children;
// everything the children read stays protected (flat classic semantics).
func TestMixedKindComposition(t *testing.T) {
	tm := core.New()
	th := stm.NewThread(tm)
	a, b := mvar.New(1), mvar.New(2)
	attempts := 0
	err := th.Atomic(stm.Regular, func(tx stm.Tx) error {
		attempts++
		if err := th.Atomic(stm.Elastic, func(ctx stm.Tx) error {
			_ = ctx.Read(a)
			return nil
		}); err != nil {
			return err
		}
		if attempts == 1 {
			write(t, tm, a, 100)
		}
		tx.Write(b, 20)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if attempts != 2 {
		t.Fatalf("attempts = %d, want 2 (outherited elastic read must be validated by regular parent)", attempts)
	}
}
