// Package seqset provides bare sequential (uninstrumented) counterparts
// of the e.e.c structures: the "Sequential" series of the paper's
// Figs. 6-8 and the reference model for correctness tests. These
// structures are not safe for concurrent use.
package seqset

import (
	"math"
	"math/rand/v2"
	"sort"
)

// Set is a single-threaded integer set.
type Set interface {
	// Name identifies the implementation.
	Name() string
	// Contains reports whether key is in the set.
	Contains(key int) bool
	// Add inserts key; it reports whether the set changed.
	Add(key int) bool
	// Remove deletes key; it reports whether the set changed.
	Remove(key int) bool
	// AddAll inserts every key; it reports whether the set changed.
	AddAll(keys []int) bool
	// RemoveAll deletes every key; it reports whether the set changed.
	RemoveAll(keys []int) bool
	// Size returns the number of elements.
	Size() int
	// Elements returns the elements in ascending order.
	Elements() []int
}

// ---------------------------------------------------------------- list --

type lnode struct {
	key  int
	next *lnode
}

// LinkedListSet is a sorted singly linked list with ±∞ sentinels,
// structurally identical to eec.LinkedListSet minus instrumentation.
type LinkedListSet struct {
	head *lnode
	n    int
}

// NewLinkedListSet returns an empty LinkedListSet.
func NewLinkedListSet() *LinkedListSet {
	tail := &lnode{key: math.MaxInt}
	return &LinkedListSet{head: &lnode{key: math.MinInt, next: tail}}
}

// Name implements Set.
func (s *LinkedListSet) Name() string { return "seq-linkedlist" }

func (s *LinkedListSet) find(key int) (prev, curr *lnode) {
	prev = s.head
	curr = prev.next
	for curr.key < key {
		prev = curr
		curr = curr.next
	}
	return prev, curr
}

// Contains implements Set.
func (s *LinkedListSet) Contains(key int) bool {
	_, curr := s.find(key)
	return curr.key == key
}

// Add implements Set.
func (s *LinkedListSet) Add(key int) bool {
	prev, curr := s.find(key)
	if curr.key == key {
		return false
	}
	prev.next = &lnode{key: key, next: curr}
	s.n++
	return true
}

// Remove implements Set.
func (s *LinkedListSet) Remove(key int) bool {
	prev, curr := s.find(key)
	if curr.key != key {
		return false
	}
	prev.next = curr.next
	s.n--
	return true
}

// AddAll implements Set.
func (s *LinkedListSet) AddAll(keys []int) bool { return addAll(s, keys) }

// RemoveAll implements Set.
func (s *LinkedListSet) RemoveAll(keys []int) bool { return removeAll(s, keys) }

// Size implements Set.
func (s *LinkedListSet) Size() int { return s.n }

// Elements implements Set.
func (s *LinkedListSet) Elements() []int {
	var out []int
	for curr := s.head.next; curr.key != math.MaxInt; curr = curr.next {
		out = append(out, curr.key)
	}
	return out
}

// ------------------------------------------------------------ skiplist --

const maxLevel = 16

type snode struct {
	key  int
	next []*snode
}

// SkipListSet is a sequential skip list with tower heights drawn from a
// private PRNG.
type SkipListSet struct {
	head *snode
	rng  *rand.Rand
	n    int
}

// NewSkipListSet returns an empty SkipListSet.
func NewSkipListSet() *SkipListSet {
	tail := &snode{key: math.MaxInt, next: make([]*snode, maxLevel)}
	head := &snode{key: math.MinInt, next: make([]*snode, maxLevel)}
	for l := range head.next {
		head.next[l] = tail
	}
	return &SkipListSet{
		head: head,
		rng:  rand.New(rand.NewPCG(42, 7)),
	}
}

// Name implements Set.
func (s *SkipListSet) Name() string { return "seq-skiplist" }

func (s *SkipListSet) find(key int) (preds [maxLevel]*snode) {
	curr := s.head
	for l := maxLevel - 1; l >= 0; l-- {
		for curr.next[l].key < key {
			curr = curr.next[l]
		}
		preds[l] = curr
	}
	return preds
}

// Contains implements Set.
func (s *SkipListSet) Contains(key int) bool {
	preds := s.find(key)
	return preds[0].next[0].key == key
}

// Add implements Set.
func (s *SkipListSet) Add(key int) bool {
	preds := s.find(key)
	if preds[0].next[0].key == key {
		return false
	}
	h := 1
	for h < maxLevel && s.rng.Uint64()&1 == 1 {
		h++
	}
	n := &snode{key: key, next: make([]*snode, h)}
	for l := 0; l < h; l++ {
		n.next[l] = preds[l].next[l]
		preds[l].next[l] = n
	}
	s.n++
	return true
}

// Remove implements Set.
func (s *SkipListSet) Remove(key int) bool {
	preds := s.find(key)
	target := preds[0].next[0]
	if target.key != key {
		return false
	}
	for l := 0; l < len(target.next); l++ {
		preds[l].next[l] = target.next[l]
	}
	s.n--
	return true
}

// AddAll implements Set.
func (s *SkipListSet) AddAll(keys []int) bool { return addAll(s, keys) }

// RemoveAll implements Set.
func (s *SkipListSet) RemoveAll(keys []int) bool { return removeAll(s, keys) }

// Size implements Set.
func (s *SkipListSet) Size() int { return s.n }

// Elements implements Set.
func (s *SkipListSet) Elements() []int {
	var out []int
	for curr := s.head.next[0]; curr.key != math.MaxInt; curr = curr.next[0] {
		out = append(out, curr.key)
	}
	return out
}

// ------------------------------------------------------------- hashset --

// HashSet is a sequential hash table of sorted list buckets, mirroring
// eec.HashSet's layout (including the paper's extreme load factor).
type HashSet struct {
	buckets []*LinkedListSet
	n       int
}

// NewHashSet returns an empty HashSet with the given bucket count
// (minimum 1).
func NewHashSet(buckets int) *HashSet {
	if buckets < 1 {
		buckets = 1
	}
	bs := make([]*LinkedListSet, buckets)
	for i := range bs {
		bs[i] = NewLinkedListSet()
	}
	return &HashSet{buckets: bs}
}

// Name implements Set.
func (s *HashSet) Name() string { return "seq-hashset" }

func (s *HashSet) bucket(key int) *LinkedListSet {
	h := uint64(key) * 0x9e3779b97f4a7c15
	return s.buckets[h%uint64(len(s.buckets))]
}

// Contains implements Set.
func (s *HashSet) Contains(key int) bool { return s.bucket(key).Contains(key) }

// Add implements Set.
func (s *HashSet) Add(key int) bool {
	if s.bucket(key).Add(key) {
		s.n++
		return true
	}
	return false
}

// Remove implements Set.
func (s *HashSet) Remove(key int) bool {
	if s.bucket(key).Remove(key) {
		s.n--
		return true
	}
	return false
}

// AddAll implements Set.
func (s *HashSet) AddAll(keys []int) bool { return addAll(s, keys) }

// RemoveAll implements Set.
func (s *HashSet) RemoveAll(keys []int) bool { return removeAll(s, keys) }

// Size implements Set.
func (s *HashSet) Size() int { return s.n }

// Elements implements Set.
func (s *HashSet) Elements() []int {
	var out []int
	for _, b := range s.buckets {
		out = append(out, b.Elements()...)
	}
	sort.Ints(out)
	return out
}

// ------------------------------------------------------------- helpers --

func addAll(s Set, keys []int) bool {
	changed := false
	for _, k := range keys {
		if s.Add(k) {
			changed = true
		}
	}
	return changed
}

func removeAll(s Set, keys []int) bool {
	changed := false
	for _, k := range keys {
		if s.Remove(k) {
			changed = true
		}
	}
	return changed
}
