package seqset

import (
	"math/rand/v2"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func factories() map[string]func() Set {
	return map[string]func() Set{
		"linkedlist": func() Set { return NewLinkedListSet() },
		"skiplist":   func() Set { return NewSkipListSet() },
		"hashset":    func() Set { return NewHashSet(8) },
		"hashset1":   func() Set { return NewHashSet(0) }, // clamps to 1 bucket
	}
}

func TestBasicOps(t *testing.T) {
	for name, mk := range factories() {
		t.Run(name, func(t *testing.T) {
			s := mk()
			if s.Contains(5) {
				t.Fatal("empty set contains 5")
			}
			if !s.Add(5) || s.Add(5) {
				t.Fatal("Add semantics broken")
			}
			if !s.Contains(5) {
				t.Fatal("added key missing")
			}
			if s.Size() != 1 {
				t.Fatalf("size = %d, want 1", s.Size())
			}
			if !s.Remove(5) || s.Remove(5) {
				t.Fatal("Remove semantics broken")
			}
			if s.Size() != 0 {
				t.Fatalf("size = %d, want 0", s.Size())
			}
		})
	}
}

func TestBulkOps(t *testing.T) {
	for name, mk := range factories() {
		t.Run(name, func(t *testing.T) {
			s := mk()
			if !s.AddAll([]int{3, 1, 2, 1}) {
				t.Fatal("AddAll reported no change")
			}
			if got := s.Elements(); !reflect.DeepEqual(got, []int{1, 2, 3}) {
				t.Fatalf("elements = %v", got)
			}
			if s.AddAll([]int{1, 2}) {
				t.Fatal("AddAll of present keys reported change")
			}
			if !s.RemoveAll([]int{2, 9}) {
				t.Fatal("RemoveAll reported no change")
			}
			if got := s.Elements(); !reflect.DeepEqual(got, []int{1, 3}) {
				t.Fatalf("elements = %v", got)
			}
			if s.RemoveAll([]int{42}) {
				t.Fatal("RemoveAll of absent key reported change")
			}
		})
	}
}

func TestNamesDistinct(t *testing.T) {
	seen := map[string]bool{}
	for _, mk := range []func() Set{
		func() Set { return NewLinkedListSet() },
		func() Set { return NewSkipListSet() },
		func() Set { return NewHashSet(4) },
	} {
		n := mk().Name()
		if seen[n] {
			t.Fatalf("duplicate name %q", n)
		}
		seen[n] = true
	}
}

// TestAgainstMapModel drives random operation sequences against a
// map-based model; every implementation must agree on results, size and
// element listings.
func TestAgainstMapModel(t *testing.T) {
	for name, mk := range factories() {
		t.Run(name, func(t *testing.T) {
			f := func(seed uint64) bool {
				rng := rand.New(rand.NewPCG(seed, 1))
				s := mk()
				model := map[int]bool{}
				for i := 0; i < 300; i++ {
					k := int(rng.IntN(40))
					switch rng.IntN(3) {
					case 0:
						if s.Add(k) != !model[k] {
							return false
						}
						model[k] = true
					case 1:
						if s.Remove(k) != model[k] {
							return false
						}
						delete(model, k)
					default:
						if s.Contains(k) != model[k] {
							return false
						}
					}
				}
				if s.Size() != len(model) {
					return false
				}
				want := make([]int, 0, len(model))
				for k := range model {
					want = append(want, k)
				}
				sort.Ints(want)
				got := s.Elements()
				if len(got) != len(want) {
					return false
				}
				for i := range got {
					if got[i] != want[i] {
						return false
					}
				}
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
				t.Fatal(err)
			}
		})
	}
}
