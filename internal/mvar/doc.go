// Package mvar provides the transactional memory substrate shared by every
// STM engine in this repository: versioned-lock memory words (Word), typed
// transactional variables layered on top of them (Var[T], Flag, IntVar,
// AnyVar), the global version clock, and the lock-word encoding helpers.
//
// A word plays the role of one "object field" in the paper's terminology:
// all engines detect conflicts at Word granularity, mirroring the paper's
// setup where "all STMs protect memory locations at the granularity level
// of object fields" (§VII-B). A word is also the concrete carrier of a
// protection element: acquiring the protection element of a location maps
// to either write-locking the word or recording its version in a read set
// that will be revalidated.
//
// # Lock-word encoding and budgets
//
// This is the single authoritative description of the lock-word layout;
// every engine shares it through Locked/Version/Owner/VersionWord.
//
//	bit 0      write-lock flag
//	bits 1..63 commit version while unlocked, owner thread slot while locked
//
// Both the version and the owner slot therefore have a 63-bit budget
// (PayloadBits):
//
//   - Versions are drawn from a single global Clock per engine, so they
//     are totally ordered across all words. At one commit per nanosecond a
//     63-bit version space lasts ~292 years; overflow is not a practical
//     concern and is not checked on the commit path.
//   - Owner slots come from thread identifiers (stm.Thread.ID, or the
//     per-engine descriptor slots of SwissTM). Any non-negative Go int
//     round-trips losslessly through the encoding (int is at most 63 value
//     bits); lockWord rejects negative owners, which are the only values
//     that would alias a version after the shift.
//
// # Payload cells and the consistency protocol
//
// A Word carries two raw payload cells: a GC-visible pointer cell and a
// scalar cell. A typed variable owns exactly one interpretation of those
// cells and is the only code that encodes or decodes them; engines shuttle
// payloads around as opaque Raw pairs, so the read/write-set entries of
// every engine are flat, allocation-free structs rather than boxed
// interfaces. The typed variables are:
//
//	Var[T]  a *T in the pointer cell    allocation-free
//	Flag    a bool in the scalar cell   allocation-free
//	IntVar  an int64 in the scalar cell allocation-free
//	AnyVar  any value, boxed into the pointer cell (one allocation per
//	        write) — the compatibility variable for arbitrary payloads
//
// Writers mutate the cells only while holding the write lock, and readers
// use the seqlock-style ReadConsistent (sample meta, load cells, re-sample
// meta), so a consistent read never observes a torn (pointer, bits) pair
// even though the two cells are loaded separately.
//
//compose:hotpath
package mvar
