package mvar

import "sync/atomic"

// Clock is the global version clock shared by the transactions of one TM
// instance. Commit timestamps are obtained with Tick; read snapshots with
// Now. It is padded on both sides so the hot counter does not share a
// cache line with neighbouring state.
type Clock struct {
	_ [64]byte
	c atomic.Uint64
	_ [56]byte
}

// Now returns the current clock value without advancing it.
func (c *Clock) Now() uint64 { return c.c.Load() }

// Tick advances the clock and returns the new value, to be used as a
// commit version.
func (c *Clock) Tick() uint64 { return c.c.Add(1) }
