package mvar

import (
	"sync/atomic"
	"unsafe"
)

const lockFlag uint64 = 1

// PayloadBits is the width of the version/owner field of a lock word; see
// the package comment for the budget discussion.
const PayloadBits = 63

// MaxVersion is the largest commit version a lock word can carry.
const MaxVersion uint64 = 1<<PayloadBits - 1

// Word is a single transactional memory word: the versioned lock word plus
// raw payload storage. The zero value is an unlocked word at version 0
// holding a zero payload. Words are padded to a cache line so that hot
// locations in concurrent data structures do not false-share.
//
// Engines operate exclusively on *Word and Raw; user code holds one of the
// typed views (Var[T], Flag, AnyVar) that embed a Word.
type Word struct {
	meta atomic.Uint64
	ptr  atomic.Pointer[byte]
	bits atomic.Uint64
	_    [40]byte
}

// Raw is the uniform payload currency between typed variables and engines:
// one GC-visible pointer word plus one scalar word. Only the typed
// variable that owns a Word knows which cell is meaningful; engines treat
// Raw as opaque (it is comparable, which is all tracing needs). The zero
// Raw is the payload of a zero Word.
type Raw struct {
	p *byte
	b uint64
}

// Worder is satisfied by every typed variable (and by *Word itself); it
// lets variable-agnostic code such as the history recorder accept any
// transactional variable.
type Worder interface{ Word() *Word }

// Word returns the word itself, so *Word satisfies Worder.
func (w *Word) Word() *Word { return w }

// Meta returns the current lock word.
//
//compose:noalloc
func (w *Word) Meta() uint64 { return w.meta.Load() }

// LoadRaw returns the current raw payload without any consistency
// protocol. Callers must hold the write lock, be the only goroutine able
// to reach the word, or wrap the load in ReadConsistent-style validation.
//
//compose:noalloc
func (w *Word) LoadRaw() Raw { return Raw{w.ptr.Load(), w.bits.Load()} }

// ReadConsistent performs the standard optimistic read: sample the lock
// word, load the payload cells, re-sample. It reports ok=false when the
// word was locked or changed underneath, in which case the payload must be
// discarded. On success it returns the payload and the version it was read
// at. Because writers only touch the cells while the lock bit is set, an
// unchanged unlocked meta brackets an untorn (pointer, bits) pair.
//
//compose:noalloc
func (w *Word) ReadConsistent() (r Raw, version uint64, ok bool) {
	m1 := w.meta.Load()
	if Locked(m1) {
		return Raw{}, 0, false
	}
	r = w.LoadRaw()
	m2 := w.meta.Load()
	if m1 != m2 {
		return Raw{}, 0, false
	}
	return r, Version(m1), true
}

// TryLock attempts to acquire the write lock by CASing the expected
// (unlocked) lock word to a locked word owned by the given thread slot.
//
//compose:noalloc
func (w *Word) TryLock(owner int, expect uint64) bool {
	if Locked(expect) {
		return false
	}
	return w.meta.CompareAndSwap(expect, lockWord(owner))
}

// Unlock releases the write lock, publishing the given commit version.
// The caller must hold the lock.
//
//compose:noalloc
func (w *Word) Unlock(version uint64) { w.meta.Store(version << 1) }

// Restore reverts the lock word to a previously sampled (unlocked) value.
// Used when a transaction aborts after acquiring write locks.
//
//compose:noalloc
func (w *Word) Restore(oldMeta uint64) { w.meta.Store(oldMeta) }

// StoreLockedRaw installs a new raw payload. The caller must hold the
// write lock (or be the only goroutine able to reach the word).
//
//compose:noalloc
func (w *Word) StoreLockedRaw(r Raw) {
	w.ptr.Store(r.p)
	w.bits.Store(r.b)
}

// InitRaw (re)initialises the payload of a word before it is shared. It
// must not be called on a word that concurrent transactions may already
// access.
func (w *Word) InitRaw(r Raw) {
	w.ptr.Store(r.p)
	w.bits.Store(r.b)
}

// Locked reports whether a lock word is write-locked.
//
//compose:noalloc
func Locked(meta uint64) bool { return meta&lockFlag != 0 }

// Version extracts the commit version from an unlocked lock word.
//
//compose:noalloc
func Version(meta uint64) uint64 { return meta >> 1 }

// Owner extracts the owner thread slot from a locked lock word.
func Owner(meta uint64) int { return int(meta >> 1) }

// errNegativeOwner is pre-boxed: panicking with a package-level any
// carries no allocation site, keeping lockWord (and TryLock, which
// inlines it) verifiable by //compose:noalloc.
var errNegativeOwner any = "mvar: negative lock owner slot"

// lockWord builds a locked lock word owned by the given thread slot. See
// the package comment: every non-negative int fits the 63-bit owner
// budget; negative owners are the only values that would alias, so they
// are rejected here rather than silently encoded.
func lockWord(owner int) uint64 {
	if owner < 0 {
		panic(errNegativeOwner)
	}
	return lockFlag | uint64(owner)<<1
}

// VersionWord builds an unlocked lock word carrying the given version.
func VersionWord(version uint64) uint64 { return version << 1 }

// ---------------------------------------------------------------------
// Raw encodings. These are the only functions that interpret Raw's cells;
// each typed variable uses exactly one encoding for its whole lifetime,
// which is what makes the pointer puns below sound.

// RefRaw encodes a *T into the pointer cell.
func RefRaw[T any](p *T) Raw { return Raw{p: (*byte)(unsafe.Pointer(p))} }

// RefValue decodes a *T from the pointer cell.
func RefValue[T any](r Raw) *T { return (*T)(unsafe.Pointer(r.p)) }

// FlagRaw encodes a bool into the scalar cell.
//
//compose:noalloc
func FlagRaw(v bool) Raw {
	if v {
		return Raw{b: 1}
	}
	return Raw{}
}

// FlagValue decodes a bool from the scalar cell.
//
//compose:noalloc
func FlagValue(r Raw) bool { return r.b != 0 }

// IntRaw encodes an int64 into the scalar cell.
//
//compose:noalloc
func IntRaw(n int64) Raw { return Raw{b: uint64(n)} }

// IntValue decodes an int64 from the scalar cell.
//
//compose:noalloc
func IntValue(r Raw) int64 { return int64(r.b) }

// abox boxes an arbitrary interface value so it can live in the pointer
// cell. This is the only payload encoding that allocates on write; the
// typed encodings above are allocation-free.
type abox struct{ v any }

// AnyRaw encodes an arbitrary value into the pointer cell (boxing it).
func AnyRaw(v any) Raw {
	if v == nil {
		return Raw{}
	}
	return Raw{p: (*byte)(unsafe.Pointer(&abox{v}))}
}

// AnyValue decodes an arbitrary value from the pointer cell.
func AnyValue(r Raw) any {
	if r.p == nil {
		return nil
	}
	return (*abox)(unsafe.Pointer(r.p)).v
}

// ---------------------------------------------------------------------
// Typed variables.

// Var is a typed transactional variable holding a *T, stored directly in
// the word's pointer cell: reads and writes never box, so the hot paths of
// pointer-linked structures (list/skiplist/queue nodes) are
// allocation-free. The zero value is an unlocked variable at version 0
// holding nil.
type Var[T any] struct{ w Word }

// NewVar returns a Var initialised to p at version 0.
func NewVar[T any](p *T) *Var[T] {
	v := new(Var[T])
	v.Init(p)
	return v
}

// Word exposes the underlying memory word (for engines and tracers).
func (v *Var[T]) Word() *Word { return &v.w }

// Init (re)initialises the payload before the variable is shared.
func (v *Var[T]) Init(p *T) { v.w.InitRaw(RefRaw(p)) }

// Load returns the current committed pointer without a consistency
// protocol; see Word.LoadRaw for the caller obligations.
func (v *Var[T]) Load() *T { return RefValue[T](v.w.LoadRaw()) }

// Flag is a typed transactional boolean, stored in the word's scalar cell
// (no boxing). The zero value is an unlocked false.
type Flag struct{ w Word }

// Word exposes the underlying memory word.
func (f *Flag) Word() *Word { return &f.w }

// Init (re)initialises the payload before the flag is shared.
func (f *Flag) Init(v bool) { f.w.InitRaw(FlagRaw(v)) }

// Load returns the current committed value without a consistency
// protocol.
//
//compose:noalloc
func (f *Flag) Load() bool { return FlagValue(f.w.LoadRaw()) }

// IntVar is a typed transactional integer, stored in the word's scalar
// cell (no boxing): transactional counters and sequence numbers read and
// write it allocation-free. The zero value is an unlocked 0.
type IntVar struct{ w Word }

// Word exposes the underlying memory word.
func (v *IntVar) Word() *Word { return &v.w }

// Init (re)initialises the payload before the variable is shared.
func (v *IntVar) Init(n int64) { v.w.InitRaw(IntRaw(n)) }

// Load returns the current committed value without a consistency
// protocol.
//
//compose:noalloc
func (v *IntVar) Load() int64 { return IntValue(v.w.LoadRaw()) }

// ---------------------------------------------------------------------
// AnyVar: the untyped compatibility variable.

// AnyVar is a transactional variable holding an arbitrary value. Writes
// box the value (one allocation) so the current committed value can be
// installed with a single pointer store; prefer Var[T]/Flag on hot paths.
// The zero value is an unlocked variable at version 0 holding nil.
type AnyVar struct{ w Word }

// New returns an AnyVar initialised to value v at version 0.
func New(v any) *AnyVar {
	x := new(AnyVar)
	x.Init(v)
	return x
}

// Word exposes the underlying memory word.
func (x *AnyVar) Word() *Word { return &x.w }

// Init (re)initialises the payload of a variable before it is shared. It
// must not be called on a variable that concurrent transactions may
// already access.
func (x *AnyVar) Init(v any) { x.w.InitRaw(AnyRaw(v)) }

// Meta returns the current lock word.
func (x *AnyVar) Meta() uint64 { return x.w.Meta() }

// Load returns the current committed value. Callers must implement a
// consistency protocol around it (see ReadConsistent) unless they hold the
// write lock.
func (x *AnyVar) Load() any { return AnyValue(x.w.LoadRaw()) }

// ReadConsistent performs the standard optimistic read on the underlying
// word, decoding the payload.
func (x *AnyVar) ReadConsistent() (v any, version uint64, ok bool) {
	r, version, ok := x.w.ReadConsistent()
	if !ok {
		return nil, 0, false
	}
	return AnyValue(r), version, true
}

// TryLock attempts to acquire the write lock; see Word.TryLock.
func (x *AnyVar) TryLock(owner int, expect uint64) bool { return x.w.TryLock(owner, expect) }

// Unlock releases the write lock, publishing the given commit version.
func (x *AnyVar) Unlock(version uint64) { x.w.Unlock(version) }

// Restore reverts the lock word to a previously sampled (unlocked) value.
func (x *AnyVar) Restore(oldMeta uint64) { x.w.Restore(oldMeta) }

// StoreLocked installs a new value. The caller must hold the write lock
// (or be the only goroutine able to reach the variable).
func (x *AnyVar) StoreLocked(v any) { x.w.StoreLockedRaw(AnyRaw(v)) }
