// Package mvar provides the transactional memory substrate shared by every
// STM engine in this repository: versioned-lock memory words (Var), the
// global version clock, and the lock-word encoding helpers.
//
// A Var plays the role of one "object field" in the paper's terminology:
// all engines detect conflicts at Var granularity, mirroring the paper's
// setup where "all STMs protect memory locations at the granularity level
// of object fields" (§VII-B). A Var is also the concrete carrier of a
// protection element: acquiring the protection element of a location maps
// to either write-locking the Var or recording its version in a read set
// that will be revalidated.
//
// Lock-word layout (64 bits):
//
//	bit 0      write-lock flag
//	bits 1..63 commit version while unlocked, owner thread slot while locked
//
// Versions are drawn from a single global Clock, so they are totally
// ordered across all Vars.
package mvar

import "sync/atomic"

const lockFlag uint64 = 1

// box wraps a value so the current committed value of a Var can be loaded
// and stored with a single atomic pointer operation. Readers never observe
// a torn value: writers install a fresh box while holding the write lock.
type box struct{ v any }

// Var is a single transactional memory word. The zero value is an unlocked
// word at version 0 holding nil; New initialises the payload. Vars are
// padded to a cache line so that hot words in concurrent data structures
// do not false-share.
type Var struct {
	meta atomic.Uint64
	val  atomic.Pointer[box]
	_    [48]byte
}

// New returns a Var initialised to value v at version 0.
func New(v any) *Var {
	x := new(Var)
	x.val.Store(&box{v})
	return x
}

// Init (re)initialises the payload of a Var before it is shared. It must
// not be called on a Var that concurrent transactions may already access.
func (x *Var) Init(v any) { x.val.Store(&box{v}) }

// Meta returns the current lock word.
func (x *Var) Meta() uint64 { return x.meta.Load() }

// Load returns the current committed value. Callers must implement a
// consistency protocol around it (see ReadConsistent) unless they hold the
// write lock.
func (x *Var) Load() any {
	b := x.val.Load()
	if b == nil {
		return nil
	}
	return b.v
}

// ReadConsistent performs the standard optimistic read: sample the lock
// word, load the value, re-sample. It reports ok=false when the word was
// locked or changed underneath, in which case the value must be discarded.
// On success it returns the value and the version it was read at.
func (x *Var) ReadConsistent() (v any, version uint64, ok bool) {
	m1 := x.meta.Load()
	if Locked(m1) {
		return nil, 0, false
	}
	v = x.Load()
	m2 := x.meta.Load()
	if m1 != m2 {
		return nil, 0, false
	}
	return v, Version(m1), true
}

// TryLock attempts to acquire the write lock by CASing the expected
// (unlocked) lock word to a locked word owned by the given thread slot.
func (x *Var) TryLock(owner int, expect uint64) bool {
	if Locked(expect) {
		return false
	}
	return x.meta.CompareAndSwap(expect, lockWord(owner))
}

// Unlock releases the write lock, publishing the given commit version.
// The caller must hold the lock.
func (x *Var) Unlock(version uint64) { x.meta.Store(version << 1) }

// Restore reverts the lock word to a previously sampled (unlocked) value.
// Used when a transaction aborts after acquiring write locks.
func (x *Var) Restore(oldMeta uint64) { x.meta.Store(oldMeta) }

// StoreLocked installs a new value. The caller must hold the write lock
// (or be the only goroutine able to reach the Var).
func (x *Var) StoreLocked(v any) { x.val.Store(&box{v}) }

// Locked reports whether a lock word is write-locked.
func Locked(meta uint64) bool { return meta&lockFlag != 0 }

// Version extracts the commit version from an unlocked lock word.
func Version(meta uint64) uint64 { return meta >> 1 }

// Owner extracts the owner thread slot from a locked lock word.
func Owner(meta uint64) int { return int(meta >> 1) }

// lockWord builds a locked lock word owned by the given thread slot.
func lockWord(owner int) uint64 { return lockFlag | uint64(owner)<<1 }

// VersionWord builds an unlocked lock word carrying the given version.
func VersionWord(version uint64) uint64 { return version << 1 }
