package mvar

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestLockWordEncoding(t *testing.T) {
	f := func(version uint64) bool {
		version >>= 1 // keep within the 63-bit version space
		w := VersionWord(version)
		return !Locked(w) && Version(w) == version
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestOwnerEncoding(t *testing.T) {
	f := func(owner uint16) bool {
		w := lockWord(int(owner))
		return Locked(w) && Owner(w) == int(owner)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNewAndLoad(t *testing.T) {
	v := New(42)
	if got := v.Load(); got != 42 {
		t.Fatalf("Load = %v, want 42", got)
	}
	if Locked(v.Meta()) {
		t.Fatal("fresh Var must be unlocked")
	}
	if Version(v.Meta()) != 0 {
		t.Fatalf("fresh Var version = %d, want 0", Version(v.Meta()))
	}
}

func TestZeroVarLoadsNil(t *testing.T) {
	var v Var
	if got := v.Load(); got != nil {
		t.Fatalf("zero Var Load = %v, want nil", got)
	}
	if _, _, ok := v.ReadConsistent(); !ok {
		// zero Var is unlocked at version 0; consistent read must succeed
		t.Fatal("consistent read of zero Var failed")
	}
}

func TestTryLockUnlock(t *testing.T) {
	v := New("a")
	m := v.Meta()
	if !v.TryLock(7, m) {
		t.Fatal("TryLock on unlocked Var failed")
	}
	if !Locked(v.Meta()) || Owner(v.Meta()) != 7 {
		t.Fatalf("lock word = %#x, want locked by 7", v.Meta())
	}
	// second lock attempt must fail
	if v.TryLock(8, v.Meta()) {
		t.Fatal("TryLock succeeded on a locked Var")
	}
	v.StoreLocked("b")
	v.Unlock(5)
	if Locked(v.Meta()) {
		t.Fatal("Var still locked after Unlock")
	}
	if Version(v.Meta()) != 5 {
		t.Fatalf("version = %d, want 5", Version(v.Meta()))
	}
	if got := v.Load(); got != "b" {
		t.Fatalf("Load = %v, want b", got)
	}
}

func TestTryLockRejectsStaleExpect(t *testing.T) {
	v := New(1)
	stale := v.Meta()
	v.Unlock(9) // version moves on
	if v.TryLock(3, stale) {
		t.Fatal("TryLock with stale expected word succeeded")
	}
}

func TestRestore(t *testing.T) {
	v := New(1)
	v.Unlock(11)
	old := v.Meta()
	if !v.TryLock(2, old) {
		t.Fatal("lock failed")
	}
	v.Restore(old)
	if v.Meta() != old {
		t.Fatalf("meta = %#x, want %#x", v.Meta(), old)
	}
}

func TestReadConsistentRejectsLocked(t *testing.T) {
	v := New(1)
	if !v.TryLock(1, v.Meta()) {
		t.Fatal("lock failed")
	}
	if _, _, ok := v.ReadConsistent(); ok {
		t.Fatal("consistent read succeeded on locked Var")
	}
}

// TestReadConsistentUnderWriters hammers a Var with locked writers and
// checks that consistent readers only ever observe (value, version) pairs
// that were actually committed together.
func TestReadConsistentUnderWriters(t *testing.T) {
	v := New(uint64(0))
	var clock Clock
	const writers = 4
	const iters = 2000
	stop := make(chan struct{})
	var writerWG, readerWG sync.WaitGroup

	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(slot int) {
			defer writerWG.Done()
			for i := 0; i < iters; i++ {
				m := v.Meta()
				if Locked(m) || !v.TryLock(slot, m) {
					continue
				}
				ver := clock.Tick()
				v.StoreLocked(ver) // value equals its commit version
				v.Unlock(ver)
			}
		}(w + 1)
	}

	readerWG.Add(1)
	go func() {
		defer readerWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if val, ver, ok := v.ReadConsistent(); ok && ver != 0 {
				if val.(uint64) != ver {
					t.Errorf("torn read: value %v at version %d", val, ver)
					return
				}
			}
		}
	}()

	writerWG.Wait()
	close(stop)
	readerWG.Wait()
}

func TestClockMonotonic(t *testing.T) {
	var c Clock
	prev := c.Now()
	for i := 0; i < 1000; i++ {
		n := c.Tick()
		if n <= prev {
			t.Fatalf("clock not monotonic: %d after %d", n, prev)
		}
		prev = n
	}
}

func TestClockConcurrentUnique(t *testing.T) {
	var c Clock
	const goroutines = 8
	const per = 1000
	out := make(chan uint64, goroutines*per)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				out <- c.Tick()
			}
		}()
	}
	wg.Wait()
	close(out)
	seen := make(map[uint64]bool, goroutines*per)
	for ts := range out {
		if seen[ts] {
			t.Fatalf("duplicate commit timestamp %d", ts)
		}
		seen[ts] = true
	}
}
