package mvar

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestLockWordEncoding(t *testing.T) {
	f := func(version uint64) bool {
		version >>= 1 // keep within the 63-bit version space
		w := VersionWord(version)
		return !Locked(w) && Version(w) == version
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestOwnerEncoding(t *testing.T) {
	f := func(owner uint16) bool {
		w := lockWord(int(owner))
		return Locked(w) && Owner(w) == int(owner)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNewAndLoad(t *testing.T) {
	v := New(42)
	if got := v.Load(); got != 42 {
		t.Fatalf("Load = %v, want 42", got)
	}
	if Locked(v.Meta()) {
		t.Fatal("fresh Var must be unlocked")
	}
	if Version(v.Meta()) != 0 {
		t.Fatalf("fresh Var version = %d, want 0", Version(v.Meta()))
	}
}

func TestZeroVarLoadsNil(t *testing.T) {
	var v AnyVar
	if got := v.Load(); got != nil {
		t.Fatalf("zero Var Load = %v, want nil", got)
	}
	if _, _, ok := v.ReadConsistent(); !ok {
		// zero Var is unlocked at version 0; consistent read must succeed
		t.Fatal("consistent read of zero Var failed")
	}
}

func TestTryLockUnlock(t *testing.T) {
	v := New("a")
	m := v.Meta()
	if !v.TryLock(7, m) {
		t.Fatal("TryLock on unlocked Var failed")
	}
	if !Locked(v.Meta()) || Owner(v.Meta()) != 7 {
		t.Fatalf("lock word = %#x, want locked by 7", v.Meta())
	}
	// second lock attempt must fail
	if v.TryLock(8, v.Meta()) {
		t.Fatal("TryLock succeeded on a locked Var")
	}
	v.StoreLocked("b")
	v.Unlock(5)
	if Locked(v.Meta()) {
		t.Fatal("Var still locked after Unlock")
	}
	if Version(v.Meta()) != 5 {
		t.Fatalf("version = %d, want 5", Version(v.Meta()))
	}
	if got := v.Load(); got != "b" {
		t.Fatalf("Load = %v, want b", got)
	}
}

func TestTryLockRejectsStaleExpect(t *testing.T) {
	v := New(1)
	stale := v.Meta()
	v.Unlock(9) // version moves on
	if v.TryLock(3, stale) {
		t.Fatal("TryLock with stale expected word succeeded")
	}
}

func TestRestore(t *testing.T) {
	v := New(1)
	v.Unlock(11)
	old := v.Meta()
	if !v.TryLock(2, old) {
		t.Fatal("lock failed")
	}
	v.Restore(old)
	if v.Meta() != old {
		t.Fatalf("meta = %#x, want %#x", v.Meta(), old)
	}
}

func TestReadConsistentRejectsLocked(t *testing.T) {
	v := New(1)
	if !v.TryLock(1, v.Meta()) {
		t.Fatal("lock failed")
	}
	if _, _, ok := v.ReadConsistent(); ok {
		t.Fatal("consistent read succeeded on locked Var")
	}
}

// TestReadConsistentUnderWriters hammers a Var with locked writers and
// checks that consistent readers only ever observe (value, version) pairs
// that were actually committed together.
func TestReadConsistentUnderWriters(t *testing.T) {
	v := New(uint64(0))
	var clock Clock
	const writers = 4
	const iters = 2000
	stop := make(chan struct{})
	var writerWG, readerWG sync.WaitGroup

	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(slot int) {
			defer writerWG.Done()
			for i := 0; i < iters; i++ {
				m := v.Meta()
				if Locked(m) || !v.TryLock(slot, m) {
					continue
				}
				ver := clock.Tick()
				v.StoreLocked(ver) // value equals its commit version
				v.Unlock(ver)
			}
		}(w + 1)
	}

	readerWG.Add(1)
	go func() {
		defer readerWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if val, ver, ok := v.ReadConsistent(); ok && ver != 0 {
				if val.(uint64) != ver {
					t.Errorf("torn read: value %v at version %d", val, ver)
					return
				}
			}
		}
	}()

	writerWG.Wait()
	close(stop)
	readerWG.Wait()
}

func TestClockMonotonic(t *testing.T) {
	var c Clock
	prev := c.Now()
	for i := 0; i < 1000; i++ {
		n := c.Tick()
		if n <= prev {
			t.Fatalf("clock not monotonic: %d after %d", n, prev)
		}
		prev = n
	}
}

func TestClockConcurrentUnique(t *testing.T) {
	var c Clock
	const goroutines = 8
	const per = 1000
	out := make(chan uint64, goroutines*per)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				out <- c.Tick()
			}
		}()
	}
	wg.Wait()
	close(out)
	seen := make(map[uint64]bool, goroutines*per)
	for ts := range out {
		if seen[ts] {
			t.Fatalf("duplicate commit timestamp %d", ts)
		}
		seen[ts] = true
	}
}

func TestTypedVarRoundTrip(t *testing.T) {
	type node struct{ k int }
	a, b := &node{1}, &node{2}
	v := NewVar(a)
	if v.Load() != a {
		t.Fatalf("Load = %p, want %p", v.Load(), a)
	}
	w := v.Word()
	m := w.Meta()
	if !w.TryLock(3, m) {
		t.Fatal("TryLock failed")
	}
	w.StoreLockedRaw(RefRaw(b))
	w.Unlock(1)
	if v.Load() != b {
		t.Fatalf("after typed store Load = %p, want %p", v.Load(), b)
	}
	raw, ver, ok := w.ReadConsistent()
	if !ok || ver != 1 || RefValue[node](raw) != b {
		t.Fatalf("ReadConsistent = (%v, %d, %v)", raw, ver, ok)
	}
	var zero Var[node]
	if zero.Load() != nil {
		t.Fatal("zero typed Var must load nil")
	}
}

func TestFlagRoundTrip(t *testing.T) {
	var f Flag
	if f.Load() {
		t.Fatal("zero Flag must be false")
	}
	f.Init(true)
	if !f.Load() {
		t.Fatal("Init(true) not visible")
	}
	w := f.Word()
	if !w.TryLock(1, w.Meta()) {
		t.Fatal("TryLock failed")
	}
	w.StoreLockedRaw(FlagRaw(false))
	w.Unlock(4)
	if f.Load() {
		t.Fatal("flag still true after store")
	}
	if FlagValue(FlagRaw(true)) != true || FlagValue(FlagRaw(false)) != false {
		t.Fatal("FlagRaw/FlagValue do not round-trip")
	}
}

func TestAnyRawRoundTrip(t *testing.T) {
	for _, v := range []any{nil, 0, 42, "s", true, []int{1}} {
		got := AnyValue(AnyRaw(v))
		switch want := v.(type) {
		case []int:
			if got.([]int)[0] != want[0] {
				t.Fatalf("AnyValue(AnyRaw(%v)) = %v", v, got)
			}
		default:
			if got != v {
				t.Fatalf("AnyValue(AnyRaw(%v)) = %v", v, got)
			}
		}
	}
}

func TestNegativeOwnerPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("lockWord accepted a negative owner slot")
		}
	}()
	var w Word
	w.TryLock(-1, w.Meta())
}

// TestOwnerRoundTripFullBudget checks the documented encoding claim: any
// non-negative int owner survives the shift into bits 1..63 and back.
func TestOwnerRoundTripFullBudget(t *testing.T) {
	for _, owner := range []int{0, 1, 8191, 1 << 30, 1<<62 - 1, 1 << 62} {
		w := lockWord(owner)
		if !Locked(w) || Owner(w) != owner {
			t.Fatalf("owner %d round-tripped to %d", owner, Owner(w))
		}
	}
}
