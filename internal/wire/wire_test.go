package wire

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
	"time"

	"oestm/internal/stm"
)

// TestFrameRoundTrip pins frame IO: bodies round trip, capacity is
// reused, clean EOF at a boundary is io.EOF, and both truncation points
// (header, body) are typed.
func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	bodies := [][]byte{{1}, {2, 3, 4}, make([]byte, 1000), {}}
	for _, b := range bodies {
		if err := WriteFrame(&buf, b); err != nil {
			t.Fatal(err)
		}
	}
	var scratch []byte
	for i, want := range bodies {
		var err error
		scratch, err = ReadFrame(&buf, scratch, 0)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !bytes.Equal(scratch, want) {
			t.Fatalf("frame %d: got %d bytes, want %d", i, len(scratch), len(want))
		}
	}
	if _, err := ReadFrame(&buf, scratch, 0); err != io.EOF {
		t.Fatalf("end of stream: %v, want io.EOF", err)
	}

	truncated := [][]byte{
		{0x00, 0x00},                   // half a header
		{0x00, 0x00, 0x00, 0x05, 0xaa}, // header promising 5, body has 1
	}
	for i, raw := range truncated {
		_, err := ReadFrame(bytes.NewReader(raw), nil, 0)
		pe, ok := IsProtocolError(err)
		if !ok || pe.Code != ErrTruncated {
			t.Fatalf("truncated case %d: %v, want ErrTruncated", i, err)
		}
	}
}

// errReader fails every read with a fixed transport error.
type errReader struct{ err error }

func (r errReader) Read([]byte) (int, error) { return 0, r.err }

// TestReadFrameTransportErrorPassthrough pins that non-EOF transport
// failures (read deadlines during a drain, resets) are NOT reported as
// protocol errors: only a stream that actually ends mid-frame is
// "truncated".
func TestReadFrameTransportErrorPassthrough(t *testing.T) {
	sentinel := errors.New("deadline exceeded")
	_, err := ReadFrame(errReader{sentinel}, nil, 0)
	if err != sentinel {
		t.Fatalf("header transport error: got %v, want the raw sentinel", err)
	}
	if _, ok := IsProtocolError(err); ok {
		t.Fatal("transport error must not be a ProtocolError")
	}
}

// TestFrameSizeLimits pins the oversized-frame rejections on both sides.
func TestFrameSizeLimits(t *testing.T) {
	if err := WriteFrame(io.Discard, make([]byte, MaxBody+1)); err == nil {
		t.Fatal("WriteFrame accepted an oversized body")
	}
	var hdr bytes.Buffer
	if err := WriteFrame(&hdr, make([]byte, 64)); err != nil {
		t.Fatal(err)
	}
	_, err := ReadFrame(bytes.NewReader(hdr.Bytes()), nil, 16)
	pe, ok := IsProtocolError(err)
	if !ok || pe.Code != ErrFrameTooLarge {
		t.Fatalf("got %v, want ErrFrameTooLarge", err)
	}
	// A huge announced length must be rejected before any allocation.
	raw := []byte{0xff, 0xff, 0xff, 0xff}
	_, err = ReadFrame(bytes.NewReader(raw), nil, 0)
	if pe, ok = IsProtocolError(err); !ok || pe.Code != ErrFrameTooLarge {
		t.Fatalf("got %v, want ErrFrameTooLarge", err)
	}
}

// TestRequestRoundTrip pins every opcode's request encoding.
func TestRequestRoundTrip(t *testing.T) {
	reqs := []Request{
		{Op: OpGet, Key: -5},
		{Op: OpRemove, Key: 1 << 40},
		{Op: OpPut, Key: 3, Val: -9},
		{Op: OpCompareAndMove, Key: 1, To: 2, Val: 7},
		{Op: OpMGet, Keys: []int64{1, -2, 3}},
		{Op: OpMPut, Keys: []int64{4, 5}, Vals: []int64{-6, 7}},
		{Op: OpMGet, Keys: []int64{}},
		{Op: OpStats},
		{Op: OpPing},
		{Op: OpAdd, Key: 11, Val: -4},
		{Op: OpMAdd, Keys: []int64{12, 13}, Vals: []int64{30, -30}},
	}
	var body []byte
	var got Request
	for i, r := range reqs {
		body = AppendRequest(body[:0], &r)
		if err := got.Decode(body); err != nil {
			t.Fatalf("req %d (%s): %v", i, r.Op, err)
		}
		if got.Op != r.Op || got.Key != r.Key || got.To != r.To || got.Val != r.Val {
			t.Fatalf("req %d (%s): scalars changed: %+v vs %+v", i, r.Op, got, r)
		}
		if len(got.Keys) != len(r.Keys) || len(got.Vals) != len(r.Vals) {
			t.Fatalf("req %d (%s): slice lengths changed", i, r.Op)
		}
		for j := range r.Keys {
			if got.Keys[j] != r.Keys[j] {
				t.Fatalf("req %d: key %d changed", i, j)
			}
		}
		for j := range r.Vals {
			if got.Vals[j] != r.Vals[j] {
				t.Fatalf("req %d: val %d changed", i, j)
			}
		}
	}
}

// TestResponseRoundTrip pins every response shape, including errors.
func TestResponseRoundTrip(t *testing.T) {
	cases := []struct {
		op Op
		r  Response
	}{
		{OpGet, Response{Status: StatusOK, Val: -77}},
		{OpGet, Response{Status: StatusNotFound}},
		{OpPut, Response{Status: StatusOK, Flag: true}},
		{OpCompareAndMove, Response{Status: StatusOK, Flag: false}},
		{OpRemove, Response{Status: StatusOK, Flag: true, Val: 12}},
		{OpMGet, Response{Status: StatusOK, Present: []bool{true, false}, Vals: []int64{5, 0}}},
		{OpMPut, Response{Status: StatusOK}},
		{OpPing, Response{Status: StatusOK}},
		{OpAdd, Response{Status: StatusOK}},
		{OpMAdd, Response{Status: StatusOK}},
	}
	var body []byte
	var got Response
	for i, c := range cases {
		body = AppendResponse(body[:0], c.op, &c.r)
		if err := got.Decode(c.op, body); err != nil {
			t.Fatalf("case %d (%s): %v", i, c.op, err)
		}
		if got.Status != c.r.Status || got.Flag != c.r.Flag || got.Val != c.r.Val {
			t.Fatalf("case %d (%s): %+v vs %+v", i, c.op, got, c.r)
		}
		if len(got.Vals) != len(c.r.Vals) {
			t.Fatalf("case %d: vals length changed", i)
		}
		for j := range c.r.Vals {
			if got.Vals[j] != c.r.Vals[j] || got.Present[j] != c.r.Present[j] {
				t.Fatalf("case %d: entry %d changed", i, j)
			}
		}
	}

	body = AppendError(body[:0], ErrRetryExhausted, "gave up")
	err := got.Decode(OpPut, body)
	pe, ok := IsProtocolError(err)
	if !ok || pe.Code != ErrRetryExhausted || pe.Msg != "gave up" {
		t.Fatalf("error response: %v", err)
	}
	if got.Status != StatusErr || got.Err != ErrRetryExhausted || got.Msg != "gave up" {
		t.Fatalf("error response fields: %+v", got)
	}
}

// TestDecodeRejections pins the typed failure of each malformed-input
// class.
func TestDecodeRejections(t *testing.T) {
	var r Request
	cases := []struct {
		body []byte
		code ErrCode
	}{
		{nil, ErrBadBody},                        // empty
		{[]byte{200}, ErrBadOpcode},              // unknown opcode
		{[]byte{byte(OpGet), 1, 2}, ErrBadBody},  // short body
		{[]byte{byte(OpPing), 9}, ErrBadBody},    // trailing bytes
		{[]byte{byte(OpMGet), 0xff}, ErrBadBody}, // missing count byte
		{[]byte{byte(OpMGet), 0xff, 0xff}, ErrTooManyKeys},
		{append([]byte{byte(OpMGet), 0x00, 0x02}, make([]byte, 8)...), ErrBadBody}, // count 2, one key
		{append([]byte{byte(OpMPut), 0x00, 0x01}, make([]byte, 8)...), ErrBadBody}, // entry missing val
		{[]byte{byte(OpAdd), 1, 2, 3}, ErrBadBody},                                 // short add body
		{append([]byte{byte(OpMAdd), 0x00, 0x01}, make([]byte, 8)...), ErrBadBody}, // entry missing delta
	}
	for i, c := range cases {
		err := r.Decode(c.body)
		pe, ok := IsProtocolError(err)
		if !ok || pe.Code != c.code {
			t.Errorf("case %d: %v, want code %v", i, err, c.code)
		}
	}
}

// TestStatsPayloadRoundTrip pins the telemetry encoding end to end.
func TestStatsPayloadRoundTrip(t *testing.T) {
	p := StatsPayload{Engine: "oestm", CM: "adaptive", Shards: 16, Conns: 3}
	for i := range p.Ops {
		p.Ops[i].Count = uint64(10 * i)
		for j := 0; j < i*5; j++ {
			p.Ops[i].Hist.Record(time.Duration(j) * time.Microsecond)
		}
	}
	p.Commits, p.Aborts = 1000, 42
	for i := range p.AbortsByCause {
		p.AbortsByCause[i] = uint64(i)
	}
	p.ShardStats = make([]ShardTelemetry, p.Shards)
	for i := range p.ShardStats {
		p.ShardStats[i] = ShardTelemetry{Ops: uint64(100 + i), Aborts: uint64(i), HotKeys: uint64(i % 3), WALBytes: uint64(1000 * i)}
	}
	body := AppendStats(nil, &p)
	var got StatsPayload
	if err := got.Decode(body); err != nil {
		t.Fatal(err)
	}
	if got.Engine != p.Engine || got.CM != p.CM || got.Shards != p.Shards || got.Conns != p.Conns {
		t.Fatalf("identity changed: %+v", got)
	}
	if got.Commits != p.Commits || got.Aborts != p.Aborts || got.AbortsByCause != p.AbortsByCause {
		t.Fatalf("counters changed: %+v", got)
	}
	for i := range p.Ops {
		if got.Ops[i] != p.Ops[i] {
			t.Fatalf("op %s telemetry changed", Op(i))
		}
	}
	if len(got.ShardStats) != len(p.ShardStats) {
		t.Fatalf("shard block length changed: %d", len(got.ShardStats))
	}
	for i := range p.ShardStats {
		if got.ShardStats[i] != p.ShardStats[i] {
			t.Fatalf("shard %d telemetry changed: %+v", i, got.ShardStats[i])
		}
	}

	if err := got.Decode(body[:len(body)-1]); err == nil {
		t.Fatal("truncated stats payload accepted")
	}
	if err := got.Decode(append(body, 0)); err == nil {
		t.Fatal("stats payload with trailing bytes accepted")
	}
	if err := got.Decode([]byte{99}); err == nil {
		t.Fatal("wrong version accepted")
	}
}

// TestStatsPayloadShardBlockTrailing pins the trailing-fields compat
// rule for the statsVersion 5 per-shard block: the new fields live at
// the very end of the encoding (the bytes before them are exactly the
// previous layout with its version byte bumped), and version mismatch
// stays a loud failure in both directions — a stale decoder rejects v5
// bytes instead of misparsing the block as trailing garbage.
func TestStatsPayloadShardBlockTrailing(t *testing.T) {
	p := StatsPayload{Engine: "oestm", CM: "adaptive", Shards: 2,
		ShardStats: []ShardTelemetry{{Ops: 7, Aborts: 1, HotKeys: 2, WALBytes: 99}, {Ops: 3}}}
	body := AppendStats(nil, &p)

	q := p
	q.ShardStats = nil
	empty := AppendStats(nil, &q)
	// An empty block encodes as one trailing zero count; everything
	// before it must be byte-identical between the two payloads, pinning
	// that the block (and nothing else) rides at the end.
	if empty[len(empty)-1] != 0 || !bytes.HasPrefix(body, empty[:len(empty)-1]) {
		t.Fatal("per-shard block is not a pure trailing extension of the previous layout")
	}

	// A decoder built against the previous version sees a version byte it
	// doesn't know and must fail before touching the layout. Simulate the
	// converse here: v5's decoder must reject bytes stamped with the old
	// version even though everything after the version byte parses.
	forged := append([]byte{}, body...)
	forged[0] = 4
	var got StatsPayload
	if err := got.Decode(forged); err == nil {
		t.Fatal("decoder accepted a stale version byte")
	}
}

// TestCauseCountPinned fails when a new ConflictCause is added without
// bumping the stats payload version: old clients would misassign the
// per-cause columns.
func TestCauseCountPinned(t *testing.T) {
	if stm.NumCauses != 8 {
		t.Fatalf("stm.NumCauses = %d; the stats payload layout depends on it — bump wire.statsVersion and update this pin", stm.NumCauses)
	}
}

// TestErrorStrings covers the diagnostic surfaces.
func TestErrorStrings(t *testing.T) {
	if s := perr(ErrFrameTooLarge, "x").Error(); !strings.Contains(s, "frame-too-large") {
		t.Error(s)
	}
	if Op(200).String() != "op(200)" || ErrCode(200).String() != "err(200)" {
		t.Error("out-of-range names")
	}
	var pe *ProtocolError
	if !errors.As(error(perr(ErrBadBody, "")), &pe) {
		t.Error("errors.As must match ProtocolError")
	}
}
