// Package wire is the serving layer's binary protocol: length-prefixed
// frames over a byte stream, one request or response per frame, with
// pipelining (a client may send any number of requests before reading;
// responses come back in request order).
//
// Frame layout: a 4-byte big-endian body length, then the body. Request
// bodies start with an opcode byte, response bodies with a status byte;
// integers are big-endian fixed width (keys and values are 8 bytes, key
// counts 2 bytes). The stats payload is the one variable-size structure
// and uses the compact encodings of its parts (stats.Histogram uvarint
// runs).
//
// The codec is total and typed: every malformed input — oversized or
// truncated frames, unknown opcodes, short or trailing bytes, key counts
// beyond MaxKeys — decodes to a *ProtocolError with a machine-readable
// code rather than a panic or a silent misparse (fuzzed in
// fuzz_test.go). Decoders reuse the caller's buffers; nothing on the
// request path allocates once buffers have grown to their steady size.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Op enumerates the request opcodes.
type Op uint8

const (
	// OpGet reads one key: key u64 → val u64 (StatusNotFound if absent).
	OpGet Op = iota
	// OpPut stores one key: key u64, val u64 → flag (key existed).
	OpPut
	// OpRemove deletes one key: key u64 → flag (removed), val u64.
	OpRemove
	// OpMGet reads n keys as one atomic snapshot: n u16, n×key →
	// n×(present u8, val u64).
	OpMGet
	// OpMPut stores n entries as one transaction: n u16, n×(key, val).
	OpMPut
	// OpCompareAndMove relocates a value between keys (cross-shard
	// composition): from u64, to u64, expect u64 → flag (moved).
	OpCompareAndMove
	// OpStats returns the server's merged telemetry (see StatsPayload).
	OpStats
	// OpPing is a no-op round trip (liveness, drain barriers).
	OpPing
	// OpAdd applies one integer delta: key u64, delta u64 → status only.
	// A blind commutative write — no read, no returned value — so the
	// server may execute it on the boosted hot-key path or as a pure
	// delta entry in the speculative executor.
	OpAdd
	// OpMAdd applies n deltas as one atomic cross-shard composition:
	// n u16, n×(key, delta) → status only.
	OpMAdd

	// NumOps is the number of opcodes; per-op arrays are sized by it.
	NumOps = int(OpMAdd) + 1
)

// opNames indexes display names by opcode.
var opNames = [NumOps]string{"get", "put", "remove", "mget", "mput", "cam", "stats", "ping", "add", "madd"}

// String names the opcode.
func (o Op) String() string {
	if int(o) < NumOps {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Status is the first byte of every response body.
type Status uint8

const (
	// StatusOK: the operation ran; payload follows.
	StatusOK Status = iota
	// StatusNotFound: Get on an absent key (no payload).
	StatusNotFound
	// StatusErr: the request failed; payload is code u8, msg u16+bytes.
	StatusErr
)

// ErrCode is the machine-readable class of a protocol error.
type ErrCode uint8

const (
	// ErrUnknown is the zero code (never produced by this package).
	ErrUnknown ErrCode = iota
	// ErrFrameTooLarge: announced body length beyond the receiver's max.
	ErrFrameTooLarge
	// ErrTruncated: the stream ended inside a frame header or body.
	ErrTruncated
	// ErrBadOpcode: request body with an unknown opcode.
	ErrBadOpcode
	// ErrBadBody: body too short, trailing bytes, or malformed payload.
	ErrBadBody
	// ErrTooManyKeys: MGet/MPut key count beyond MaxKeys.
	ErrTooManyKeys
	// ErrKeyRange: a key equal to one of the two int64 sentinels the
	// store reserves.
	ErrKeyRange
	// ErrRetryExhausted: the server's per-request transaction retry
	// budget ran out (the store stayed unchanged).
	ErrRetryExhausted
	// ErrShuttingDown: the server is draining and rejected new work.
	ErrShuttingDown
	// ErrDurability: the server's write-ahead log failed; mutations are
	// no longer durable and are refused (the sticky condition persists
	// until the server restarts against a healthy log).
	ErrDurability
)

// errNames indexes display names by code.
var errNames = []string{
	"unknown", "frame-too-large", "truncated", "bad-opcode",
	"bad-body", "too-many-keys", "key-range", "retry-exhausted",
	"shutting-down", "durability",
}

// String names the code.
func (c ErrCode) String() string {
	if int(c) < len(errNames) {
		return errNames[c]
	}
	return fmt.Sprintf("err(%d)", uint8(c))
}

// ProtocolError is the typed error of the serving layer: every codec
// failure and every StatusErr response carries one.
type ProtocolError struct {
	Code ErrCode
	Msg  string
}

// Error implements error.
func (e *ProtocolError) Error() string {
	if e.Msg == "" {
		return "wire: " + e.Code.String()
	}
	return "wire: " + e.Code.String() + ": " + e.Msg
}

// perr builds a ProtocolError.
func perr(code ErrCode, msg string) *ProtocolError { return &ProtocolError{Code: code, Msg: msg} }

// Limits of the protocol.
const (
	// HeaderSize is the frame header length (big-endian body size).
	HeaderSize = 4
	// MaxBody is the largest body either side accepts: comfortably above
	// the largest legal frame (an MPut of MaxKeys entries, or an MGet
	// response) while keeping a malicious length prefix from reserving
	// real memory.
	MaxBody = 128 << 10
	// MaxKeys bounds the key count of one MGet/MPut request.
	MaxKeys = 4096
)

// WriteFrame writes one frame (header + body) to w. Bodies beyond
// MaxBody are refused with ErrFrameTooLarge before anything is written.
// Hot paths should prefer BeginFrame/FinishFrame + one Write of the
// caller's persistent buffer: a stack header passed through the
// io.Writer interface escapes, costing one allocation per frame.
func WriteFrame(w io.Writer, body []byte) error {
	if len(body) > MaxBody {
		return perr(ErrFrameTooLarge, fmt.Sprintf("body %d > max %d", len(body), MaxBody))
	}
	var hdr [HeaderSize]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(body)
	return err
}

// BeginFrame starts an in-buffer frame: it appends a placeholder header
// to dst and returns the extended slice. Append the body, then call
// FinishFrame on the whole slice and write it with a single Write — the
// allocation-free framing of the steady-state request path.
func BeginFrame(dst []byte) []byte {
	return append(dst, 0, 0, 0, 0)
}

// FinishFrame patches the length header of a frame built with
// BeginFrame (frame = header placeholder + body). It fails if the body
// exceeds MaxBody.
func FinishFrame(frame []byte) error {
	if len(frame) < HeaderSize {
		return perr(ErrBadBody, "frame shorter than its header")
	}
	body := len(frame) - HeaderSize
	if body > MaxBody {
		return perr(ErrFrameTooLarge, fmt.Sprintf("body %d > max %d", body, MaxBody))
	}
	binary.BigEndian.PutUint32(frame[:HeaderSize], uint32(body))
	return nil
}

// ReadFrame reads one frame body into buf (growing it as needed) and
// returns the filled slice — pass it back as buf next call to reuse the
// capacity. A clean end of stream at a frame boundary returns io.EOF; a
// stream *ending* inside a frame returns ErrTruncated; an announced
// length beyond max (or MaxBody, whichever is smaller) returns
// ErrFrameTooLarge without consuming the body, so the caller can report
// it and close. Transport errors that are not an end of stream — read
// deadlines, resets — pass through untouched: the peer did nothing
// wrong, so they must not surface as protocol errors.
func ReadFrame(r io.Reader, buf []byte, max int) ([]byte, error) {
	if max <= 0 || max > MaxBody {
		max = MaxBody
	}
	// The header is read into the caller's persistent buffer, not a
	// stack array: a stack slice passed through the io.Reader interface
	// would escape and cost one allocation per frame.
	if cap(buf) < HeaderSize {
		buf = make([]byte, HeaderSize, 512)
	}
	hdr := buf[:HeaderSize]
	if _, err := io.ReadFull(r, hdr); err != nil {
		if err == io.EOF {
			return buf[:0], io.EOF
		}
		if err == io.ErrUnexpectedEOF {
			return buf[:0], perr(ErrTruncated, "stream ended inside frame header")
		}
		return buf[:0], err
	}
	n := int(binary.BigEndian.Uint32(hdr))
	if n > max {
		return buf[:0], perr(ErrFrameTooLarge, fmt.Sprintf("announced body %d > max %d", n, max))
	}
	if cap(buf) < n {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return buf[:0], perr(ErrTruncated, "stream ended inside frame body")
		}
		return buf[:0], err
	}
	return buf, nil
}

// Request is one decoded request. The slices are reused across decodes
// of the same Request value; contents are valid until the next Decode.
type Request struct {
	Op Op
	// Key is the single-op key, and CompareAndMove's source.
	Key int64
	// To is CompareAndMove's destination.
	To int64
	// Val is Put's value and CompareAndMove's expected value.
	Val int64
	// Keys/Vals carry MGet (keys only) and MPut entries.
	Keys []int64
	Vals []int64
}

// AppendRequest appends the encoded body of r to dst and returns the
// extended slice (frame it with WriteFrame). It refuses key counts
// beyond MaxKeys and MPut length mismatches via panic — those are
// programming errors on the sending side, not peer input.
func AppendRequest(dst []byte, r *Request) []byte {
	if len(r.Keys) > MaxKeys {
		panic(fmt.Sprintf("wire: %d keys > MaxKeys %d", len(r.Keys), MaxKeys))
	}
	dst = append(dst, byte(r.Op))
	switch r.Op {
	case OpGet, OpRemove:
		dst = be64(dst, uint64(r.Key))
	case OpPut, OpAdd:
		dst = be64(dst, uint64(r.Key))
		dst = be64(dst, uint64(r.Val))
	case OpCompareAndMove:
		dst = be64(dst, uint64(r.Key))
		dst = be64(dst, uint64(r.To))
		dst = be64(dst, uint64(r.Val))
	case OpMGet:
		dst = be16(dst, uint16(len(r.Keys)))
		for _, k := range r.Keys {
			dst = be64(dst, uint64(k))
		}
	case OpMPut, OpMAdd:
		if len(r.Keys) != len(r.Vals) {
			panic("wire: " + r.Op.String() + " keys/vals length mismatch")
		}
		dst = be16(dst, uint16(len(r.Keys)))
		for i, k := range r.Keys {
			dst = be64(dst, uint64(k))
			dst = be64(dst, uint64(r.Vals[i]))
		}
	case OpStats, OpPing:
		// opcode only
	default:
		panic(fmt.Sprintf("wire: cannot encode unknown opcode %d", r.Op))
	}
	return dst
}

// Decode parses a request body into r, reusing r's slices. Every failure
// is a *ProtocolError.
func (r *Request) Decode(body []byte) error {
	r.Keys, r.Vals = r.Keys[:0], r.Vals[:0]
	r.Key, r.To, r.Val = 0, 0, 0
	if len(body) == 0 {
		return perr(ErrBadBody, "empty body")
	}
	r.Op = Op(body[0])
	b := body[1:]
	switch r.Op {
	case OpGet, OpRemove:
		return r.fixed(b, &r.Key)
	case OpPut, OpAdd:
		return r.fixed(b, &r.Key, &r.Val)
	case OpCompareAndMove:
		return r.fixed(b, &r.Key, &r.To, &r.Val)
	case OpMGet:
		n, b, err := keyCount(b)
		if err != nil {
			return err
		}
		if len(b) != 8*n {
			return perr(ErrBadBody, "mget body length mismatch")
		}
		for i := 0; i < n; i++ {
			r.Keys = append(r.Keys, int64(binary.BigEndian.Uint64(b[8*i:])))
		}
		return nil
	case OpMPut, OpMAdd:
		n, b, err := keyCount(b)
		if err != nil {
			return err
		}
		if len(b) != 16*n {
			return perr(ErrBadBody, "multi-key body length mismatch")
		}
		for i := 0; i < n; i++ {
			r.Keys = append(r.Keys, int64(binary.BigEndian.Uint64(b[16*i:])))
			r.Vals = append(r.Vals, int64(binary.BigEndian.Uint64(b[16*i+8:])))
		}
		return nil
	case OpStats, OpPing:
		if len(b) != 0 {
			return perr(ErrBadBody, "trailing bytes")
		}
		return nil
	default:
		return perr(ErrBadOpcode, r.Op.String())
	}
}

// fixed parses an exact sequence of 8-byte integers.
func (r *Request) fixed(b []byte, out ...*int64) error {
	if len(b) != 8*len(out) {
		return perr(ErrBadBody, "fixed body length mismatch")
	}
	for i, p := range out {
		*p = int64(binary.BigEndian.Uint64(b[8*i:]))
	}
	return nil
}

// keyCount parses the u16 key count of a multi-key request.
func keyCount(b []byte) (int, []byte, error) {
	if len(b) < 2 {
		return 0, nil, perr(ErrBadBody, "missing key count")
	}
	n := int(binary.BigEndian.Uint16(b))
	if n > MaxKeys {
		return 0, nil, perr(ErrTooManyKeys, fmt.Sprintf("%d keys > max %d", n, MaxKeys))
	}
	return n, b[2:], nil
}

// Response is one decoded response. Like Request, slices are reused.
type Response struct {
	Status Status
	// Flag carries Put's "existed", Remove's "removed", and
	// CompareAndMove's "moved".
	Flag bool
	// Val carries Get's and Remove's value.
	Val int64
	// Present/Vals carry MGet results.
	Present []bool
	Vals    []int64
	// Stats carries the raw stats payload (decode with
	// StatsPayload.Decode).
	Stats []byte
	// Err/Msg carry StatusErr details.
	Err ErrCode
	Msg string
}

// AppendError appends an error-response body to dst.
func AppendError(dst []byte, code ErrCode, msg string) []byte {
	if len(msg) > 1<<10 {
		msg = msg[:1<<10]
	}
	dst = append(dst, byte(StatusErr), byte(code))
	dst = be16(dst, uint16(len(msg)))
	return append(dst, msg...)
}

// AppendResponse appends the encoded body of a non-error response for op
// to dst (use AppendError for failures).
func AppendResponse(dst []byte, op Op, r *Response) []byte {
	dst = append(dst, byte(r.Status))
	if r.Status == StatusNotFound {
		return dst
	}
	switch op {
	case OpGet:
		dst = be64(dst, uint64(r.Val))
	case OpPut, OpCompareAndMove:
		dst = appendBool(dst, r.Flag)
	case OpRemove:
		dst = appendBool(dst, r.Flag)
		dst = be64(dst, uint64(r.Val))
	case OpMGet:
		dst = be16(dst, uint16(len(r.Vals)))
		for i, v := range r.Vals {
			dst = appendBool(dst, r.Present[i])
			dst = be64(dst, uint64(v))
		}
	case OpMPut, OpPing, OpAdd, OpMAdd:
		// status only
	case OpStats:
		dst = append(dst, r.Stats...)
	default:
		panic(fmt.Sprintf("wire: cannot encode response for unknown opcode %d", op))
	}
	return dst
}

// Decode parses a response body for a request of opcode op. StatusErr
// responses decode into Err/Msg and also return the equivalent
// *ProtocolError; other malformed bodies return ErrBadBody.
func (r *Response) Decode(op Op, body []byte) error {
	r.Present, r.Vals = r.Present[:0], r.Vals[:0]
	r.Stats = r.Stats[:0]
	r.Flag, r.Val, r.Err, r.Msg = false, 0, ErrUnknown, ""
	if len(body) == 0 {
		return perr(ErrBadBody, "empty response")
	}
	r.Status = Status(body[0])
	b := body[1:]
	switch r.Status {
	case StatusErr:
		if len(b) < 3 {
			return perr(ErrBadBody, "short error response")
		}
		r.Err = ErrCode(b[0])
		n := int(binary.BigEndian.Uint16(b[1:]))
		if len(b) != 3+n {
			return perr(ErrBadBody, "error message length mismatch")
		}
		r.Msg = string(b[3:])
		return perr(r.Err, r.Msg)
	case StatusNotFound:
		if len(b) != 0 {
			return perr(ErrBadBody, "trailing bytes")
		}
		return nil
	case StatusOK:
	default:
		return perr(ErrBadBody, "unknown status")
	}
	switch op {
	case OpGet:
		if len(b) != 8 {
			return perr(ErrBadBody, "get response length mismatch")
		}
		r.Val = int64(binary.BigEndian.Uint64(b))
	case OpPut, OpCompareAndMove:
		if len(b) != 1 || b[0] > 1 {
			return perr(ErrBadBody, "flag response malformed")
		}
		r.Flag = b[0] == 1
	case OpRemove:
		if len(b) != 9 || b[0] > 1 {
			return perr(ErrBadBody, "remove response malformed")
		}
		r.Flag = b[0] == 1
		r.Val = int64(binary.BigEndian.Uint64(b[1:]))
	case OpMGet:
		n, rest, err := keyCount(b)
		if err != nil {
			return err
		}
		if len(rest) != 9*n {
			return perr(ErrBadBody, "mget response length mismatch")
		}
		for i := 0; i < n; i++ {
			if rest[9*i] > 1 {
				return perr(ErrBadBody, "mget presence flag malformed")
			}
			r.Present = append(r.Present, rest[9*i] == 1)
			r.Vals = append(r.Vals, int64(binary.BigEndian.Uint64(rest[9*i+1:])))
		}
	case OpMPut, OpPing, OpAdd, OpMAdd:
		if len(b) != 0 {
			return perr(ErrBadBody, "trailing bytes")
		}
	case OpStats:
		r.Stats = append(r.Stats, b...)
	default:
		return perr(ErrBadOpcode, op.String())
	}
	return nil
}

// IsProtocolError reports whether err is (or wraps) a *ProtocolError,
// returning it.
func IsProtocolError(err error) (*ProtocolError, bool) {
	var pe *ProtocolError
	ok := errors.As(err, &pe)
	return pe, ok
}

// be64/be16/appendBool are the fixed-width append helpers.
func be64(dst []byte, v uint64) []byte { return binary.BigEndian.AppendUint64(dst, v) }
func be16(dst []byte, v uint16) []byte { return binary.BigEndian.AppendUint16(dst, v) }

func appendBool(dst []byte, b bool) []byte {
	if b {
		return append(dst, 1)
	}
	return append(dst, 0)
}
