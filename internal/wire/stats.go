package wire

import (
	"encoding/binary"
	"fmt"

	"oestm/internal/stats"
	"oestm/internal/stm"
)

// statsVersion guards the stats payload layout; bump it when the layout
// changes so stale clients fail loudly instead of misparsing.
// Version history: 1 = initial; 2 = WAL fields (enabled flag and the
// wal_* counters); 3 = execution-model fields (exec name and the spec_*
// speculation counters); 4 = commutative hot-key fields (adds applied,
// boosted executions, hot-key promotions/demotions); 5 = an exact sum
// inside every histogram and the trailing per-shard telemetry block
// (ShardStats).
const statsVersion = 5

// maxShardStats bounds the per-shard block a decoder will allocate for —
// far above any real shard count, low enough that a hostile length
// prefix cannot balloon memory.
const maxShardStats = 1 << 16

// OpTelemetry is one opcode's server-side measurements: how many requests
// ran and the latency histogram of their service time — measured from
// "request frame in hand" to "response handed to the socket", so it
// includes decode, the transaction, encode, the buffered write and any
// flush backpressure from a slow reader; network transit and waiting for
// the request to arrive are excluded.
type OpTelemetry struct {
	Count uint64
	Hist  stats.Histogram
}

// StatsPayload is the server's merged telemetry, returned by OpStats: the
// store's identity (engine, contention policy, shard count), per-opcode
// counts and latency histograms, and the transaction counters — commits,
// aborts, and the per-cause abort breakdown — summed over every
// connection the server has served (live ones included). Histograms merge
// associatively, so scraping twice and diffing is sound.
type StatsPayload struct {
	Engine        string
	CM            string
	Shards        int
	Conns         int // connections currently open
	Ops           [NumOps]OpTelemetry
	Commits       uint64
	Aborts        uint64
	AbortsByCause [stm.NumCauses]uint64

	// WAL durability telemetry: whether the server runs a write-ahead
	// log, and its cumulative append/flush/byte counters (all zero when
	// disabled). The harness diffs the counters across the measured
	// window into the wal_* CSV columns.
	WALEnabled bool
	WALAppends uint64
	WALSyncs   uint64
	WALBytes   uint64

	// Execution-model telemetry: the server's execution mode ("conn" or
	// "batch") and the speculative executor's cumulative counters (all
	// zero in conn mode) — batches committed, Speculate attempts,
	// attempts beyond a transaction's first, and completed attempts
	// whose read set failed validation. The harness diffs them across
	// the measured window into the spec_* CSV columns.
	Exec                string
	SpecBatches         uint64
	SpecExecs           uint64
	SpecReexecs         uint64
	SpecValidationFails uint64

	// Commutative hot-key telemetry: total deltas applied (Add ops plus
	// MAdd entries), how many of those ran on the boosted commutative
	// path (per-key abstract locks, no STM transaction), and how many
	// keys the adaptive tracker promoted to / demoted from that path.
	// The harness diffs them into the adds/boosted_ops/hot_promotions
	// CSV columns.
	Adds          uint64
	BoostedOps    uint64
	HotPromotions uint64
	HotDemotions  uint64

	// ShardStats is the per-shard telemetry block (one entry per store
	// shard, indexed by shard; the trailing field of statsVersion 5). It
	// splits the merged counters by shard so an operator can see skew —
	// a hot shard's ops/aborts dominating — that the aggregates hide.
	ShardStats []ShardTelemetry
}

// ShardTelemetry is one shard's counters inside StatsPayload.ShardStats.
// Ops counts key-operations routed to the shard (each key of a composed
// operation counts once; batch mode counts the committed write set).
// Aborts counts aborted transaction attempts attributed to the shard —
// a composed operation's aborts land on its first key's shard, so the
// per-shard sum matches the merged abort counter's growth. HotKeys is a
// gauge: counters currently promoted to the commutative hot-key path.
// WALBytes is the shard's slice of the wal_bytes aggregate.
type ShardTelemetry struct {
	Ops      uint64
	Aborts   uint64
	HotKeys  uint64
	WALBytes uint64
}

// AppendStats appends the encoded payload to dst.
func AppendStats(dst []byte, p *StatsPayload) []byte {
	dst = append(dst, statsVersion)
	dst = appendString(dst, p.Engine)
	dst = appendString(dst, p.CM)
	dst = binary.AppendUvarint(dst, uint64(p.Shards))
	dst = binary.AppendUvarint(dst, uint64(p.Conns))
	for i := range p.Ops {
		dst = binary.AppendUvarint(dst, p.Ops[i].Count)
		dst = p.Ops[i].Hist.AppendBinary(dst)
	}
	dst = binary.AppendUvarint(dst, p.Commits)
	dst = binary.AppendUvarint(dst, p.Aborts)
	dst = binary.AppendUvarint(dst, uint64(stm.NumCauses))
	for _, n := range p.AbortsByCause {
		dst = binary.AppendUvarint(dst, n)
	}
	var walFlag byte
	if p.WALEnabled {
		walFlag = 1
	}
	dst = append(dst, walFlag)
	dst = binary.AppendUvarint(dst, p.WALAppends)
	dst = binary.AppendUvarint(dst, p.WALSyncs)
	dst = binary.AppendUvarint(dst, p.WALBytes)
	dst = appendString(dst, p.Exec)
	dst = binary.AppendUvarint(dst, p.SpecBatches)
	dst = binary.AppendUvarint(dst, p.SpecExecs)
	dst = binary.AppendUvarint(dst, p.SpecReexecs)
	dst = binary.AppendUvarint(dst, p.SpecValidationFails)
	dst = binary.AppendUvarint(dst, p.Adds)
	dst = binary.AppendUvarint(dst, p.BoostedOps)
	dst = binary.AppendUvarint(dst, p.HotPromotions)
	dst = binary.AppendUvarint(dst, p.HotDemotions)
	dst = binary.AppendUvarint(dst, uint64(len(p.ShardStats)))
	for i := range p.ShardStats {
		st := &p.ShardStats[i]
		dst = binary.AppendUvarint(dst, st.Ops)
		dst = binary.AppendUvarint(dst, st.Aborts)
		dst = binary.AppendUvarint(dst, st.HotKeys)
		dst = binary.AppendUvarint(dst, st.WALBytes)
	}
	return dst
}

// Decode parses an encoded payload into p. Every failure is a
// *ProtocolError (ErrBadBody).
func (p *StatsPayload) Decode(body []byte) error {
	*p = StatsPayload{}
	if len(body) == 0 || body[0] != statsVersion {
		return perr(ErrBadBody, "stats payload version mismatch")
	}
	b := body[1:]
	var err error
	if p.Engine, b, err = readString(b); err != nil {
		return err
	}
	if p.CM, b, err = readString(b); err != nil {
		return err
	}
	var u uint64
	if u, b, err = readUvarint(b); err != nil {
		return err
	}
	p.Shards = int(u)
	if u, b, err = readUvarint(b); err != nil {
		return err
	}
	p.Conns = int(u)
	for i := range p.Ops {
		if p.Ops[i].Count, b, err = readUvarint(b); err != nil {
			return err
		}
		if b, err = p.Ops[i].Hist.DecodeBinary(b); err != nil {
			return perr(ErrBadBody, "stats histogram: "+err.Error())
		}
	}
	if p.Commits, b, err = readUvarint(b); err != nil {
		return err
	}
	if p.Aborts, b, err = readUvarint(b); err != nil {
		return err
	}
	if u, b, err = readUvarint(b); err != nil {
		return err
	}
	if int(u) != stm.NumCauses {
		return perr(ErrBadBody, fmt.Sprintf("stats payload has %d abort causes, want %d", u, stm.NumCauses))
	}
	for i := range p.AbortsByCause {
		if p.AbortsByCause[i], b, err = readUvarint(b); err != nil {
			return err
		}
	}
	if len(b) == 0 {
		return perr(ErrBadBody, "stats payload missing wal flag")
	}
	switch b[0] {
	case 0:
	case 1:
		p.WALEnabled = true
	default:
		return perr(ErrBadBody, "stats payload bad wal flag")
	}
	b = b[1:]
	if p.WALAppends, b, err = readUvarint(b); err != nil {
		return err
	}
	if p.WALSyncs, b, err = readUvarint(b); err != nil {
		return err
	}
	if p.WALBytes, b, err = readUvarint(b); err != nil {
		return err
	}
	if p.Exec, b, err = readString(b); err != nil {
		return err
	}
	if p.SpecBatches, b, err = readUvarint(b); err != nil {
		return err
	}
	if p.SpecExecs, b, err = readUvarint(b); err != nil {
		return err
	}
	if p.SpecReexecs, b, err = readUvarint(b); err != nil {
		return err
	}
	if p.SpecValidationFails, b, err = readUvarint(b); err != nil {
		return err
	}
	if p.Adds, b, err = readUvarint(b); err != nil {
		return err
	}
	if p.BoostedOps, b, err = readUvarint(b); err != nil {
		return err
	}
	if p.HotPromotions, b, err = readUvarint(b); err != nil {
		return err
	}
	if p.HotDemotions, b, err = readUvarint(b); err != nil {
		return err
	}
	if u, b, err = readUvarint(b); err != nil {
		return err
	}
	if u > maxShardStats {
		return perr(ErrBadBody, "stats payload shard block too large")
	}
	if u > 0 {
		p.ShardStats = make([]ShardTelemetry, u)
		for i := range p.ShardStats {
			st := &p.ShardStats[i]
			if st.Ops, b, err = readUvarint(b); err != nil {
				return err
			}
			if st.Aborts, b, err = readUvarint(b); err != nil {
				return err
			}
			if st.HotKeys, b, err = readUvarint(b); err != nil {
				return err
			}
			if st.WALBytes, b, err = readUvarint(b); err != nil {
				return err
			}
		}
	}
	if len(b) != 0 {
		return perr(ErrBadBody, "stats payload trailing bytes")
	}
	return nil
}

// appendString appends a u16-length-prefixed string.
func appendString(dst []byte, s string) []byte {
	if len(s) > 255 {
		s = s[:255]
	}
	dst = be16(dst, uint16(len(s)))
	return append(dst, s...)
}

// readString parses a u16-length-prefixed string.
func readString(b []byte) (string, []byte, error) {
	if len(b) < 2 {
		return "", nil, perr(ErrBadBody, "stats payload short string")
	}
	n := int(binary.BigEndian.Uint16(b))
	if len(b) < 2+n {
		return "", nil, perr(ErrBadBody, "stats payload short string")
	}
	return string(b[2 : 2+n]), b[2+n:], nil
}

// readUvarint parses one uvarint.
func readUvarint(b []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, nil, perr(ErrBadBody, "stats payload short varint")
	}
	return v, b[n:], nil
}
