// Malformed-input fuzzing for the codec (the serving layer's attack
// surface): decoders must be total — any byte string either decodes or
// returns a typed *ProtocolError; panics and silent misparses are bugs.
// Decoded requests must also re-encode canonically (encode∘decode is the
// identity on the wire bytes), so the server can never be confused about
// what it acknowledged.
package wire

import (
	"bytes"
	"testing"
)

func FuzzDecodeRequest(f *testing.F) {
	seeds := []Request{
		{Op: OpGet, Key: 1},
		{Op: OpPut, Key: 2, Val: 3},
		{Op: OpRemove, Key: -1},
		{Op: OpCompareAndMove, Key: 1, To: 2, Val: 7},
		{Op: OpMGet, Keys: []int64{1, 2, 3}},
		{Op: OpMPut, Keys: []int64{4}, Vals: []int64{5}},
		{Op: OpStats},
		{Op: OpPing},
		{Op: OpAdd, Key: 5, Val: 3},
		{Op: OpMAdd, Keys: []int64{6, 7}, Vals: []int64{-1, 1}},
	}
	for _, r := range seeds {
		f.Add(AppendRequest(nil, &r))
	}
	f.Add([]byte{})
	f.Add([]byte{0xff, 0x00, 0x80})
	var req Request
	f.Fuzz(func(t *testing.T, body []byte) {
		if err := req.Decode(body); err != nil {
			if _, ok := IsProtocolError(err); !ok {
				t.Fatalf("decode failed with untyped error %v", err)
			}
			return
		}
		// Canonical re-encode: a request the server accepts must encode
		// back to exactly the bytes it came from.
		if enc := AppendRequest(nil, &req); !bytes.Equal(enc, body) {
			t.Fatalf("decode/encode not canonical:\n in: %x\nout: %x", body, enc)
		}
	})
}

func FuzzDecodeResponse(f *testing.F) {
	seedResponses := []struct {
		op Op
		r  Response
	}{
		{OpGet, Response{Status: StatusOK, Val: 9}},
		{OpGet, Response{Status: StatusNotFound}},
		{OpRemove, Response{Status: StatusOK, Flag: true, Val: 1}},
		{OpMGet, Response{Status: StatusOK, Present: []bool{true}, Vals: []int64{2}}},
		{OpPing, Response{Status: StatusOK}},
		{OpAdd, Response{Status: StatusOK}},
		{OpMAdd, Response{Status: StatusOK}},
	}
	for _, s := range seedResponses {
		f.Add(uint8(s.op), AppendResponse(nil, s.op, &s.r))
	}
	f.Add(uint8(OpPut), AppendError(nil, ErrBadBody, "nope"))
	f.Add(uint8(0xee), []byte{0x00})
	var resp Response
	f.Fuzz(func(t *testing.T, op uint8, body []byte) {
		err := resp.Decode(Op(op), body)
		if err != nil {
			if _, ok := IsProtocolError(err); !ok {
				t.Fatalf("decode failed with untyped error %v", err)
			}
		}
	})
}

func FuzzDecodeStats(f *testing.F) {
	var p StatsPayload
	p.Engine, p.CM, p.Shards = "tl2", "passive", 4
	p.Ops[0].Count = 3
	p.Ops[0].Hist.RecordNS(500)
	f.Add(AppendStats(nil, &p))
	f.Add([]byte{statsVersion})
	f.Add([]byte{})
	var got StatsPayload
	f.Fuzz(func(t *testing.T, body []byte) {
		if err := got.Decode(body); err != nil {
			if _, ok := IsProtocolError(err); !ok {
				t.Fatalf("decode failed with untyped error %v", err)
			}
		}
	})
}
