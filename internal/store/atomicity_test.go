// Cross-shard atomicity checkers, extending the composed-scenario checker
// pattern (PR 2) to the store layer: concurrent CompareAndMove traffic
// with MGet snapshot audits mixed into every worker's op stream (a
// dedicated auditor can starve on small machines), plus an end-state
// audit. On every composing engine the audits must never observe a torn
// state; under the estm ablation (no outheritance) and under Unsound mode
// (compositions split into separate transactions) they are required to.
// The over-the-wire variant of this test lives in internal/server.
//
// Two robustness notes, both rooted in running on few cores:
//
//   - Workers get a bounded retry budget (Thread.MaxRetries). Under estm a
//     torn composition can corrupt a shard's structural invariants, after
//     which an operation may hit the structures' explicit window conflicts
//     on every attempt, forever; the budget turns that wedge into a
//     discarded operation instead of a hung test. Composing engines never
//     exhaust it, but the audits still honour the committed flag so an
//     exhausted audit cannot report garbage.
//
//   - The runs raise GOMAXPROCS: contended workers yield only between
//     attempts (backoff), never inside a composition, so on a single P the
//     scheduler almost never suspends a worker mid-composition and the
//     estm/unsound tear window rarely overlaps anything. Oversubscribed
//     OS threads restore genuinely interleaved executions.
package store

import (
	"math/rand/v2"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"oestm/internal/stm"
)

// tokenVal is the value every live token carries (small, so the checker
// workload itself stays box-free).
const tokenVal = int64(7)

// crossShardViolations drives workers against a fresh 8-shard store for
// roughly dur and returns the number of torn states the audits observed.
// Tokens start on the even keys of [0, keys); every CompareAndMove
// relocates one token, so at every atomic snapshot exactly keys/2 tokens
// exist, each with value tokenVal. ~10% of steps audit exactly that via
// an MGet snapshot of the whole keyspace.
func crossShardViolations(t *testing.T, newTM func() stm.TM, unsound bool, keys, workers int, dur time.Duration) uint64 {
	t.Helper()
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(8))
	tm := newTM()
	st := New(Config{Shards: 8, Unsound: unsound})
	filler := st.NewFrame(stm.NewThread(tm))
	want := 0
	for k := 0; k < keys; k += 2 {
		filler.Put(int64(k), tokenVal)
		want++
	}

	audit := func(f *Frame, all, vals []int64, oks []bool) uint64 {
		if !f.MGet(all, vals, oks) {
			return 0 // retry budget exhausted: no consistent observation
		}
		bad := uint64(0)
		present := 0
		for k := range all {
			if oks[k] {
				present++
				if vals[k] != tokenVal {
					bad++
				}
			}
		}
		if present != want {
			bad++
		}
		return bad
	}

	var stop atomic.Bool
	var violations atomic.Uint64
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(idx int) {
			defer wg.Done()
			th := stm.NewThread(tm)
			th.MaxRetries = 500
			f := st.NewFrame(th)
			rng := rand.New(rand.NewPCG(0xced5, uint64(idx)))
			all := make([]int64, keys)
			vals := make([]int64, keys)
			oks := make([]bool, keys)
			for k := range all {
				all[k] = int64(k)
			}
			for !stop.Load() {
				if rng.IntN(100) < 10 {
					violations.Add(audit(f, all, vals, oks))
					continue
				}
				f.CompareAndMove(int64(rng.IntN(keys)), int64(rng.IntN(keys)), tokenVal)
			}
		}(i)
	}
	time.Sleep(dur)
	stop.Store(true)
	wg.Wait()

	// End-state audit on a quiesced store: only a torn composition can
	// change the token count for good. Sound CompareAndMove conserves it
	// even when it aborts; the unsound split (and estm's released child
	// reads) can duplicate or lose tokens permanently.
	checker := st.NewFrame(stm.NewThread(tm))
	all := make([]int64, keys)
	vals := make([]int64, keys)
	oks := make([]bool, keys)
	for k := range all {
		all[k] = int64(k)
	}
	violations.Add(audit(checker, all, vals, oks))
	return violations.Load()
}

// TestCrossShardAtomicityComposingEngines: no composing engine may ever
// let an MGet snapshot observe a CompareAndMove half-done.
func TestCrossShardAtomicityComposingEngines(t *testing.T) {
	for _, eng := range engines() {
		if eng.name == "estm" {
			continue
		}
		t.Run(eng.name, func(t *testing.T) {
			if v := crossShardViolations(t, eng.newi, false, 64, 4, 150*time.Millisecond); v != 0 {
				t.Errorf("%d torn states observed on a composing engine", v)
			}
		})
	}
}

// TestESTMViolatesCrossShardAtomicity pins that the checker detects real
// tearing: without outheritance the CompareAndMove composition loses its
// children's protection and the audits observe tokens in flight,
// duplicated, or lost.
func TestESTMViolatesCrossShardAtomicity(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-dependent concurrency test")
	}
	estm := engines()[1]
	if estm.name != "estm" {
		t.Fatal("engine table moved")
	}
	for attempt := 0; attempt < 5; attempt++ {
		dur := time.Duration(100+100*attempt) * time.Millisecond
		if v := crossShardViolations(t, estm.newi, false, 64, 4, dur); v > 0 {
			return
		}
	}
	t.Error("estm never tore a CompareAndMove; the ablation (or the checker) has gone soft")
}

// TestUnsoundStoreViolates pins the other required failure mode: with
// compositions split into separate transactions (mutators and audits
// alike), even the outheriting engine exposes torn states.
func TestUnsoundStoreViolates(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-dependent concurrency test")
	}
	oestm := engines()[0]
	for attempt := 0; attempt < 5; attempt++ {
		dur := time.Duration(100+100*attempt) * time.Millisecond
		if v := crossShardViolations(t, oestm.newi, true, 64, 4, dur); v > 0 {
			return
		}
	}
	t.Error("unsound mode never exposed a torn state; the split (or the checker) has gone soft")
}
