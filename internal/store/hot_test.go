// Tests for the commutative hot-key path: Add/MAdd semantics on every
// engine and boost mode, demotion by absolute operations, the
// escalation tracker, concurrent exact-sum conservation (the property
// the counter-fanin scenario checks end-to-end), MGet's all-or-nothing
// view of composed delta batches, and WAL replay including a snapshot
// cut taken while overlays are pending.
package store

import (
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"oestm/internal/stm"
	"oestm/internal/wal"
)

func init() {
	// The concurrency tests need real interleaving even on a single-core
	// runner (same precedent as internal/wal's tests).
	if runtime.GOMAXPROCS(0) < 8 {
		runtime.GOMAXPROCS(8)
	}
}

func boostModes() []BoostMode { return []BoostMode{BoostOff, BoostAuto, BoostOn} }

func TestParseBoostMode(t *testing.T) {
	for _, c := range []struct {
		in   string
		want BoostMode
	}{{"", BoostAuto}, {"auto", BoostAuto}, {"off", BoostOff}, {"on", BoostOn}} {
		got, err := ParseBoostMode(c.in)
		if err != nil || got != c.want {
			t.Errorf("ParseBoostMode(%q) = %v, %v", c.in, got, err)
		}
		if c.in != "" && got.String() != c.in {
			t.Errorf("String() = %q, want %q", got.String(), c.in)
		}
	}
	if _, err := ParseBoostMode("sideways"); err == nil {
		t.Error("ParseBoostMode accepted garbage")
	}
}

// TestAddConformance runs the delta-operation semantics on every engine
// and every boost mode: the observable behaviour must be identical —
// only the execution path differs.
func TestAddConformance(t *testing.T) {
	for _, eng := range engines() {
		for _, mode := range boostModes() {
			t.Run(eng.name+"/"+mode.String(), func(t *testing.T) {
				s := New(Config{Shards: 8, Boost: mode})
				f := s.NewFrame(stm.NewThread(eng.newi()))

				if !f.Add(1, 5) {
					t.Fatal("Add did not commit")
				}
				if v, ok := f.Get(1); !ok || v != 5 {
					t.Fatalf("Get(1) = %d,%v want 5,true (add must create)", v, ok)
				}
				f.Add(1, -2)
				if v, _ := f.Get(1); v != 3 {
					t.Fatalf("Get(1) = %d want 3", v)
				}

				vals := make([]int64, 2)
				oks := make([]bool, 2)
				if !f.MGet([]int64{1, 2}, vals, oks) {
					t.Fatal("MGet did not commit")
				}
				if vals[0] != 3 || !oks[0] || oks[1] {
					t.Fatalf("MGet = %v %v want [3 _] [true false]", vals, oks)
				}

				// An absolute put wins over the counter (demotes it first).
				if !f.Put(1, 100) {
					t.Fatal("Put over an existing counter must report it existed")
				}
				if v, _ := f.Get(1); v != 100 {
					t.Fatalf("after Put, Get(1) = %d want 100", v)
				}
				f.Add(1, 1)
				if v, _ := f.Get(1); v != 101 {
					t.Fatalf("Get(1) = %d want 101", v)
				}
				// Remove clears base and overlay together.
				if v, ok := f.Remove(1); !ok || v != 101 {
					t.Fatalf("Remove(1) = %d,%v want 101,true", v, ok)
				}
				if _, ok := f.Get(1); ok {
					t.Fatal("Get after Remove reported a value")
				}
				f.Add(1, 7)
				if v, ok := f.Get(1); !ok || v != 7 {
					t.Fatalf("re-created counter = %d,%v want 7,true", v, ok)
				}

				// Composed deltas, including a zero-sum transfer and
				// duplicate keys in one batch.
				if !f.MAdd([]int64{2, 3}, []int64{10, -4}) {
					t.Fatal("MAdd did not commit")
				}
				if v, _ := f.Get(2); v != 10 {
					t.Fatalf("Get(2) = %d want 10", v)
				}
				if v, _ := f.Get(3); v != -4 {
					t.Fatalf("Get(3) = %d want -4", v)
				}
				f.MAdd([]int64{2, 3}, []int64{-5, 5})
				if v, _ := f.Get(2); v != 5 {
					t.Fatalf("after transfer Get(2) = %d want 5", v)
				}
				if v, _ := f.Get(3); v != 1 {
					t.Fatalf("after transfer Get(3) = %d want 1", v)
				}
				f.MAdd([]int64{7, 7}, []int64{1, 2})
				if v, _ := f.Get(7); v != 3 {
					t.Fatalf("duplicate-key MAdd: Get(7) = %d want 3", v)
				}
				if f.MAdd(nil, nil) != true {
					t.Fatal("empty MAdd must commit")
				}

				// CompareAndMove sees and moves the counter's full value.
				f.Add(4, 9)
				if !f.CompareAndMove(4, 5, 9) {
					t.Fatal("CompareAndMove refused a matching counter")
				}
				if _, ok := f.Get(4); ok {
					t.Fatal("moved-from counter still present")
				}
				if v, _ := f.Get(5); v != 9 {
					t.Fatalf("moved-to = %d want 9", v)
				}

				// MPut overwrites a counter absolutely.
				f.Add(6, 1)
				f.MPut([]int64{6}, []int64{42})
				if v, _ := f.Get(6); v != 42 {
					t.Fatalf("after MPut Get(6) = %d want 42", v)
				}

				bs := s.BoostStats()
				if bs.Adds == 0 {
					t.Fatal("adds counter never moved")
				}
				if mode == BoostOn {
					if bs.BoostedOps == 0 || bs.Promotions == 0 || bs.Demotions == 0 {
						t.Fatalf("boost-on stats = %+v, want promotions, boosted ops and demotions", bs)
					}
				}
				if mode == BoostOff && bs.BoostedOps != 0 {
					t.Fatalf("boost-off ran %d boosted ops", bs.BoostedOps)
				}
			})
		}
	}
}

// TestTrackerEscalation drives the decayed abort counters directly: an
// add-only key promotes once its abort count crosses the threshold, and
// an absolute operation on the key resets its history.
func TestTrackerEscalation(t *testing.T) {
	s := New(Config{Shards: 2, Boost: BoostAuto})
	key := int64(77)
	for i := 0; i < promoteAbortThreshold-1; i++ {
		if s.trackAdd(key, 1) {
			t.Fatalf("promoted after %d aborts, threshold is %d", i+1, promoteAbortThreshold)
		}
	}
	if !s.trackAdd(key, 1) {
		t.Fatal("did not promote at the threshold")
	}
	// Threshold crossing resets the slot: the key starts over.
	if s.trackAdd(key, 1) {
		t.Fatal("promoted again immediately after reset")
	}
	// An absolute op wipes the history.
	for i := 0; i < promoteAbortThreshold-1; i++ {
		s.trackAdd(key, 1)
	}
	s.trackAbsolute(key)
	if s.trackAdd(key, 1) {
		t.Fatal("promoted despite an absolute operation resetting the slot")
	}
	// Abort-free adds never promote, no matter how many.
	quiet := int64(12345)
	for i := 0; i < 4*trackDecayAt; i++ {
		if s.trackAdd(quiet, 0) {
			t.Fatal("promoted an abort-free key")
		}
	}
	// A pathological abort count is clamped, not truncated: 2^32 aborts
	// would wrap the uint32 accumulator to zero and mask the promotion.
	s2 := New(Config{Shards: 2, Boost: BoostAuto})
	if !s2.trackAdd(key, 1<<32) {
		t.Fatal("2^32 aborts wrapped the accumulator instead of promoting")
	}
}

// TestAutoPromotionRoutesBoosted checks the promotion hand-off: once the
// tracker (here stood in for by promote) escalates a key, subsequent
// adds take the boosted path and an absolute write demotes it again.
func TestAutoPromotionRoutesBoosted(t *testing.T) {
	for _, eng := range engines() {
		t.Run(eng.name, func(t *testing.T) {
			s := New(Config{Shards: 4, Boost: BoostAuto})
			f := s.NewFrame(stm.NewThread(eng.newi()))
			f.Add(9, 2) // read-modify-write: nothing hot yet
			if bs := s.BoostStats(); bs.BoostedOps != 0 {
				t.Fatalf("unpromoted add ran boosted: %+v", bs)
			}
			s.promote(9)
			f.Add(9, 3)
			if bs := s.BoostStats(); bs.BoostedOps != 1 {
				t.Fatalf("promoted add did not run boosted: %+v", bs)
			}
			if v, _ := f.Get(9); v != 5 {
				t.Fatalf("Get(9) = %d want 5", v)
			}
			f.Put(9, 50)
			if bs := s.BoostStats(); bs.Demotions != 1 {
				t.Fatalf("absolute write did not demote: %+v", bs)
			}
			if v, _ := f.Get(9); v != 50 {
				t.Fatalf("Get(9) = %d want 50", v)
			}
		})
	}
}

// TestUnsoundForcesBoostOff pins that the unsound ablation never takes
// the boosted path — its entire point is split transactions.
func TestUnsoundForcesBoostOff(t *testing.T) {
	s := New(Config{Shards: 2, Unsound: true, Boost: BoostOn})
	if s.BoostMode() != BoostOff {
		t.Fatalf("unsound store boost mode = %v, want off", s.BoostMode())
	}
	f := s.NewFrame(stm.NewThread(engines()[0].newi()))
	f.Add(1, 4)
	f.MAdd([]int64{1, 2}, []int64{1, 1})
	if v, _ := f.Get(1); v != 5 {
		t.Fatalf("Get(1) = %d want 5", v)
	}
	if bs := s.BoostStats(); bs.BoostedOps != 0 || bs.Promotions != 0 {
		t.Fatalf("unsound store boosted: %+v", bs)
	}
}

// TestNetZeroCounterPresence pins the presence semantics of counters
// whose deltas cancel: an add "creates from zero", so a counter must
// read as present (value 0) even when its sums net to zero — on every
// boost mode identically (the RMW execution materializes a base entry;
// the boosted overlay and the folds must agree), through Get, MGet,
// demotion, Remove and CompareAndMove alike.
func TestNetZeroCounterPresence(t *testing.T) {
	for _, eng := range engines() {
		for _, mode := range boostModes() {
			t.Run(eng.name+"/"+mode.String(), func(t *testing.T) {
				s := New(Config{Shards: 4, Boost: mode})
				f := s.NewFrame(stm.NewThread(eng.newi()))

				f.Add(1, 5)
				f.Add(1, -5)
				if v, ok := f.Get(1); !ok || v != 0 {
					t.Fatalf("net-zero counter Get = %d,%v want 0,true", v, ok)
				}
				vals := make([]int64, 1)
				oks := make([]bool, 1)
				f.MGet([]int64{1}, vals, oks)
				if !oks[0] || vals[0] != 0 {
					t.Fatalf("net-zero counter MGet = %d,%v want 0,true", vals[0], oks[0])
				}
				if v, ok := f.Remove(1); !ok || v != 0 {
					t.Fatalf("net-zero counter Remove = %d,%v want 0,true", v, ok)
				}
				if _, ok := f.Get(1); ok {
					t.Fatal("counter present after Remove")
				}

				// A zero-sum MAdd pair cancelled back to zero stays present.
				f.MAdd([]int64{2, 3}, []int64{4, -4})
				f.MAdd([]int64{2, 3}, []int64{-4, 4})
				for _, k := range []int64{2, 3} {
					if v, ok := f.Get(k); !ok || v != 0 {
						t.Fatalf("cancelled MAdd key %d = %d,%v want 0,true", k, v, ok)
					}
				}

				// Demotion folds presence into the base: CompareAndMove
				// demotes first, then must see the counter's value 0.
				f.Add(4, 9)
				f.Add(4, -9)
				if !f.CompareAndMove(4, 5, 0) {
					t.Fatal("CompareAndMove refused a net-zero counter at expect 0")
				}
				if _, ok := f.Get(4); ok {
					t.Fatal("moved-from counter still present")
				}
				if v, ok := f.Get(5); !ok || v != 0 {
					t.Fatalf("moved-to = %d,%v want 0,true", v, ok)
				}
			})
		}
	}
}

// composingEngines is the engine list minus the estm ablation: estm's
// non-outheriting nested commits make a concurrent composed
// read-modify-write add duplicate its pieces across parent retries —
// the very tear the ablation exists to demonstrate — so the exact-sum
// properties below hold only on the composing engines (the same set the
// counter-fanin scenario checks end-to-end).
func composingEngines() []struct {
	name string
	newi func() stm.TM
} {
	var out []struct {
		name string
		newi func() stm.TM
	}
	for _, eng := range engines() {
		if eng.name != "estm" {
			out = append(out, eng)
		}
	}
	return out
}

// TestConcurrentAddsExactSum is the conservation property under real
// concurrency: every delta lands exactly once, whether it travelled the
// boosted overlay, a demotion fold, or a Remove that captured the
// counter mid-flight.
func TestConcurrentAddsExactSum(t *testing.T) {
	for _, eng := range composingEngines() {
		for _, mode := range []BoostMode{BoostOff, BoostOn} {
			t.Run(eng.name+"/"+mode.String(), func(t *testing.T) {
				tm := eng.newi()
				s := New(Config{Shards: 4, Boost: mode})
				const workers, perWorker = 6, 300
				key := int64(42)
				var adders sync.WaitGroup
				for w := 0; w < workers; w++ {
					adders.Add(1)
					go func() {
						defer adders.Done()
						f := s.NewFrame(stm.NewThread(tm))
						for i := 0; i < perWorker; i++ {
							if !f.Add(key, 1) {
								t.Error("Add did not commit")
								return
							}
						}
					}()
				}
				// One goroutine repeatedly harvests the counter: Remove
				// must capture base + overlay atomically, so harvested
				// plus remainder stays exact.
				var harvested int64
				done := make(chan struct{})
				var harvester sync.WaitGroup
				harvester.Add(1)
				go func() {
					defer harvester.Done()
					f := s.NewFrame(stm.NewThread(tm))
					for {
						select {
						case <-done:
							return
						default:
						}
						if v, ok := f.Remove(key); ok {
							harvested += v
						}
						runtime.Gosched()
					}
				}()
				adders.Wait()
				close(done)
				harvester.Wait()
				f := s.NewFrame(stm.NewThread(tm))
				rest, _ := f.Get(key)
				if got := harvested + rest; got != workers*perWorker {
					t.Fatalf("sum = %d (harvested %d + rest %d), want %d",
						got, harvested, rest, workers*perWorker)
				}
			})
		}
	}
}

// TestMAddZeroSumInvariant runs zero-sum transfers between hot counters
// against a concurrent MGet auditor: the audited total must never move —
// the boosted batch is all-or-nothing to a locked reader.
func TestMAddZeroSumInvariant(t *testing.T) {
	for _, eng := range composingEngines() {
		t.Run(eng.name, func(t *testing.T) {
			tm := eng.newi()
			s := New(Config{Shards: 4, Boost: BoostOn})
			keys := []int64{10, 20, 30, 40}
			const seed = 100
			setup := s.NewFrame(stm.NewThread(tm))
			for _, k := range keys {
				setup.Add(k, seed)
			}
			want := int64(seed * len(keys))

			var writers sync.WaitGroup
			stop := make(chan struct{})
			for w := 0; w < 4; w++ {
				writers.Add(1)
				go func(w int) {
					defer writers.Done()
					f := s.NewFrame(stm.NewThread(tm))
					rng := rand.New(rand.NewSource(int64(w)))
					pair := make([]int64, 2)
					delta := make([]int64, 2)
					for i := 0; i < 400; i++ {
						a := rng.Intn(len(keys))
						b := (a + 1 + rng.Intn(len(keys)-1)) % len(keys)
						d := int64(rng.Intn(9) + 1)
						pair[0], pair[1] = keys[a], keys[b]
						delta[0], delta[1] = d, -d
						if !f.MAdd(pair, delta) {
							t.Error("MAdd did not commit")
							return
						}
					}
				}(w)
			}
			var auditor sync.WaitGroup
			auditor.Add(1)
			go func() {
				defer auditor.Done()
				f := s.NewFrame(stm.NewThread(tm))
				vals := make([]int64, len(keys))
				oks := make([]bool, len(keys))
				for {
					select {
					case <-stop:
						return
					default:
					}
					if !f.MGet(keys, vals, oks) {
						t.Error("MGet did not commit")
						return
					}
					var sum int64
					for i, v := range vals {
						if !oks[i] {
							t.Errorf("audited counter %d absent", keys[i])
							return
						}
						sum += v
					}
					if sum != want {
						t.Errorf("audit saw sum %d, want %d (torn MAdd)", sum, want)
						return
					}
					runtime.Gosched()
				}
			}()
			writers.Wait()
			close(stop)
			auditor.Wait()
			f := s.NewFrame(stm.NewThread(tm))
			var sum int64
			for _, k := range keys {
				v, ok := f.Get(k)
				if !ok {
					t.Fatalf("counter %d missing after run", k)
				}
				sum += v
			}
			if sum != want {
				t.Fatalf("final sum = %d, want %d", sum, want)
			}
		})
	}
}

// TestMGetPromotionRaceConsistentCut drives the window between MGet's
// hot-table scan and its lock acquisition: each round uses fresh keys
// that turn hot only when the writer's first MAdd promotes them, so the
// auditor keeps catching keys mid-promotion. A scan that saw one key of
// a zero-sum pair cold and the other hot must restart rather than fold
// only the hot side — otherwise it reads half of a completed transfer.
func TestMGetPromotionRaceConsistentCut(t *testing.T) {
	for _, eng := range composingEngines() {
		t.Run(eng.name, func(t *testing.T) {
			tm := eng.newi()
			s := New(Config{Shards: 4, Boost: BoostOn})
			setup := s.NewFrame(stm.NewThread(tm))
			audit := s.NewFrame(stm.NewThread(tm))
			vals := make([]int64, 2)
			oks := make([]bool, 2)
			const rounds, transfers = 150, 25
			for r := 0; r < rounds; r++ {
				a, b := int64(1000+2*r), int64(1001+2*r)
				setup.Put(a, 500)
				setup.Put(b, 500)
				done := make(chan struct{})
				go func() {
					defer close(done)
					f := s.NewFrame(stm.NewThread(tm))
					pair := []int64{a, b}
					delta := []int64{7, -7}
					for i := 0; i < transfers; i++ {
						if !f.MAdd(pair, delta) {
							t.Error("MAdd did not commit")
							return
						}
					}
				}()
				for stop := false; !stop; {
					select {
					case <-done:
						stop = true
					default:
					}
					if !audit.MGet([]int64{a, b}, vals, oks) {
						t.Fatal("MGet did not commit")
					}
					if sum := vals[0] + vals[1]; sum != 1000 {
						t.Fatalf("round %d: audit sum = %d, want 1000 (torn MAdd through a mid-promotion key)", r, sum)
					}
				}
			}
		})
	}
}

// TestAbsoluteWriteReplayEquivalence races boosted adds against one
// absolute overwrite per key with a WAL attached: the Put demotes while
// the adder keeps re-promoting, so the demote→overwrite window is hit
// mid-stream, and each key sees no later Put that could paper over a
// mis-ordered record. Whatever state each key settles into, replaying
// the log must reproduce it exactly — an add record slipping in front
// of the put record whose live effect it survived would make the
// replayed value diverge from the acked live one.
func TestAbsoluteWriteReplayEquivalence(t *testing.T) {
	for _, eng := range composingEngines() {
		t.Run(eng.name, func(t *testing.T) {
			dir := t.TempDir()
			log, _, err := wal.Open(dir, wal.Options{Shards: 4})
			if err != nil {
				t.Fatal(err)
			}
			tm := eng.newi()
			s := New(Config{Shards: 4, WAL: log, Boost: BoostOn})
			putter := s.NewFrame(stm.NewThread(tm))
			const iters = 150
			keys := make([]int64, 0, iters)
			for i := 0; i < iters; i++ {
				k := int64(10000 + i)
				keys = append(keys, k)
				done := make(chan struct{})
				var wg sync.WaitGroup
				for a := 0; a < 3; a++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						f := s.NewFrame(stm.NewThread(tm))
						for {
							select {
							case <-done:
								return
							default:
							}
							if !f.Add(k, 1) {
								t.Error("Add did not commit")
								return
							}
						}
					}()
				}
				runtime.Gosched()
				putter.Put(k, 1<<20)
				close(done)
				wg.Wait()
			}
			f := s.NewFrame(stm.NewThread(tm))
			live := map[int64]int64{}
			for _, k := range keys {
				v, ok := f.Get(k)
				if !ok {
					t.Fatalf("live Get(%d) absent", k)
				}
				live[k] = v
			}
			if err := log.Close(); err != nil {
				t.Fatal(err)
			}
			rp, err := wal.Scan(dir)
			if err != nil {
				t.Fatal(err)
			}
			s2 := New(Config{Shards: 4})
			th2 := stm.NewThread(eng.newi())
			s2.Recover(th2, rp)
			f2 := s2.NewFrame(th2)
			for _, k := range keys {
				if got, ok := f2.Get(k); !ok || got != live[k] {
					t.Fatalf("replayed Get(%d) = %d,%v; live state was %d (acked add lost or duplicated by replay order)",
						k, got, ok, live[k])
				}
			}
		})
	}
}

// TestAddWALReplay writes through every delta shape — boosted overlay
// adds, read-modify-write adds, composed MAdd intents, a demotion fold,
// an absolute overwrite and a remove — then replays the log into a
// fresh store and compares. A snapshot generation is cut while overlays
// are pending, so the fold-into-snapshot path is exercised too.
func TestAddWALReplay(t *testing.T) {
	for _, mode := range []BoostMode{BoostOff, BoostOn} {
		t.Run(mode.String(), func(t *testing.T) {
			dir := t.TempDir()
			log, rp, err := wal.Open(dir, wal.Options{Shards: 4})
			if err != nil {
				t.Fatal(err)
			}
			_ = rp // fresh directory: nothing to replay
			tm := engines()[0].newi()
			s := New(Config{Shards: 4, WAL: log, Boost: mode})
			th := stm.NewThread(tm)
			f := s.NewFrame(th)

			for i := int64(0); i < 20; i++ {
				f.Add(i%5, i)
			}
			f.MAdd([]int64{100, 200}, []int64{7, -7})
			// A net-zero counter: created by deltas that cancel, it must
			// stay present (at 0) through the snapshot cut and the replay.
			f.Add(4000, 6)
			f.Add(4000, -6)
			// Snapshot with overlays pending (boosted mode) or not (off).
			if err := s.Snapshot(th); err != nil {
				t.Fatal(err)
			}
			f.Add(2, 1000)
			f.Put(3, -1) // demotes and folds under boost, plain put otherwise
			f.Remove(4)
			f.MAdd([]int64{100, 200, 300}, []int64{1, 2, 3})
			if err := log.Close(); err != nil {
				t.Fatal(err)
			}

			if v, ok := f.Get(4000); !ok || v != 0 {
				t.Fatalf("live net-zero counter = %d,%v want 0,true", v, ok)
			}
			want := map[int64]int64{}
			for _, k := range []int64{0, 1, 2, 3, 100, 200, 300, 4000} {
				if v, ok := f.Get(k); ok {
					want[k] = v
				}
			}
			if _, ok := f.Get(4); ok {
				t.Fatal("Get(4) present after Remove")
			}

			rp2, err := wal.Scan(dir)
			if err != nil {
				t.Fatal(err)
			}
			s2 := New(Config{Shards: 4})
			th2 := stm.NewThread(engines()[0].newi())
			s2.Recover(th2, rp2)
			f2 := s2.NewFrame(th2)
			for k, v := range want {
				if got, ok := f2.Get(k); !ok || got != v {
					t.Fatalf("recovered Get(%d) = %d,%v want %d,true", k, got, ok, v)
				}
			}
			if v, ok := f2.Get(4); ok && v != 0 {
				t.Fatalf("recovered Get(4) = %d, want absent or zero", v)
			}

			// The snapshot-less replay must agree with the snapshot one.
			rp3, err := wal.ScanNoSnapshots(dir)
			if err != nil {
				t.Fatal(err)
			}
			s3 := New(Config{Shards: 4})
			th3 := stm.NewThread(engines()[0].newi())
			s3.Recover(th3, rp3)
			f3 := s3.NewFrame(th3)
			for k, v := range want {
				if got, ok := f3.Get(k); !ok || got != v {
					t.Fatalf("full replay Get(%d) = %d,%v want %d,true", k, got, ok, v)
				}
			}
		})
	}
}
