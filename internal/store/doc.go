// Package store is the sharded transactional keyspace behind the serving
// layer: a power-of-two array of engine-backed eec.SkipListMap shards
// under one int64 key space, with single-shard elementary operations
// (Get, Put, Remove) and composed multi-key operations (MGet, MPut,
// CompareAndMove) that each execute as one relaxed transaction, whatever
// mix of shards they touch.
//
// The store itself is engine-agnostic, like every e.e.c structure: shards
// are built from mvar words, and the engine is carried by the stm.Thread
// driving an operation — one store instance can serve OE-STM and the
// classic baselines alike (the server binds one engine per store by
// giving every connection a thread on the same TM).
//
// Operations run through a per-connection Frame whose transaction
// closures are bound once at construction and parameterised through
// fields, the same discipline as the e.e.c operation frames: the
// steady-state request path starts no per-call closures and allocates no
// per-transaction frames (see the AllocsPerRun conformance tests).
//
// The composed mutators (MPut, CompareAndMove) follow the paper's Fig. 5
// pattern — elementary operations invoked inside an enclosing
// transaction, atomic through outheritance (or flat nesting on the
// classic engines). MGet is an observation, not a mutation, and uses the
// audit pattern of the composed-scenario suite instead: one Regular
// transaction reading every shard directly (SkipListMap.GetTx), because
// a read-only elastic child outherits only its final read and a
// composition of such children would not validate as one snapshot.
//
// Unsound mode splits every composed operation into separate top-level
// transactions — the deliberately broken baseline the cross-shard
// atomicity checkers are required to catch, extending the PR 2 pattern
// to the store layer.
//
//compose:hotpath
package store
