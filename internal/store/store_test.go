// Conformance tests for the sharded store's request path, in the style of
// the engine conformance suite: the same semantic checks run against
// every engine, and AllocsPerRun pins that the steady-state request path
// allocates only per-request protocol buffers (owned by the caller),
// never per-transaction frames.
package store

import (
	"math"
	"testing"

	"oestm/internal/core"
	"oestm/internal/lsa"
	"oestm/internal/stm"
	"oestm/internal/swisstm"
	"oestm/internal/tl2"
)

// engines is every STM engine, including the non-outheriting ablation.
func engines() []struct {
	name string
	newi func() stm.TM
} {
	return []struct {
		name string
		newi func() stm.TM
	}{
		{"oestm", func() stm.TM { return core.New() }},
		{"estm", func() stm.TM { return core.NewWithoutOutheritance() }},
		{"tl2", func() stm.TM { return tl2.New() }},
		{"lsa", func() stm.TM { return lsa.New() }},
		{"swisstm", func() stm.TM { return swisstm.New() }},
	}
}

func TestNewValidatesShards(t *testing.T) {
	if got := New(Config{}).Shards(); got != DefaultShards {
		t.Fatalf("default shards = %d, want %d", got, DefaultShards)
	}
	for _, n := range []int{1, 2, 8, 64} {
		if got := New(Config{Shards: n}).Shards(); got != n {
			t.Fatalf("shards = %d, want %d", got, n)
		}
	}
	for _, n := range []int{-1, 3, 6, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(Shards: %d) must panic", n)
				}
			}()
			New(Config{Shards: n})
		}()
	}
}

func TestShardOfSpreadsAndStaysInRange(t *testing.T) {
	s := New(Config{Shards: 8})
	hit := make([]int, 8)
	for k := int64(-5000); k < 5000; k++ {
		i := s.ShardOf(k)
		if i != s.ShardOf(k) {
			t.Fatalf("ShardOf(%d) not deterministic", k)
		}
		if i < 0 || i >= 8 {
			t.Fatalf("ShardOf(%d) = %d out of range", k, i)
		}
		hit[i]++
	}
	for i, n := range hit {
		if n == 0 {
			t.Fatalf("shard %d never hit over 10k sequential keys", i)
		}
	}
	one := New(Config{Shards: 1})
	if one.ShardOf(123) != 0 || one.ShardOf(-9) != 0 {
		t.Fatal("single-shard store must map every key to shard 0")
	}
}

func TestValidKey(t *testing.T) {
	for _, k := range []int64{0, 1, -1, 1 << 40, math.MinInt64 + 1, math.MaxInt64 - 1} {
		if !ValidKey(k) {
			t.Errorf("ValidKey(%d) = false", k)
		}
	}
	if ValidKey(math.MinInt64) || ValidKey(math.MaxInt64) {
		t.Error("sentinel keys must be invalid")
	}
}

// TestStoreConformance runs the semantic checks on every engine:
// elementary single-shard operations, the MGet snapshot, MPut, and the
// CompareAndMove state machine (missing source, wrong expect, occupied
// destination, cross-shard success).
func TestStoreConformance(t *testing.T) {
	for _, eng := range engines() {
		t.Run(eng.name, func(t *testing.T) {
			tm := eng.newi()
			s := New(Config{Shards: 8})
			f := s.NewFrame(stm.NewThread(tm))

			if _, ok := f.Get(10); ok {
				t.Fatal("Get on empty store reported a value")
			}
			if f.Put(10, 500) {
				t.Fatal("first Put reported an existing key")
			}
			if v, ok := f.Get(10); !ok || v != 500 {
				t.Fatalf("Get(10) = %d,%v want 500,true", v, ok)
			}
			if !f.Put(10, 600) {
				t.Fatal("overwrite Put missed the existing key")
			}
			if v, ok := f.Remove(10); !ok || v != 600 {
				t.Fatalf("Remove(10) = %d,%v want 600,true", v, ok)
			}
			if _, ok := f.Remove(10); ok {
				t.Fatal("second Remove reported a value")
			}

			keys := []int64{-3, 7, 1 << 33, 42}
			vals := []int64{100, 200, 300, 400}
			f.MPut(keys, vals)
			probe := append(append([]int64{}, keys...), 999999) // last key absent
			outV := make([]int64, len(probe))
			outOK := make([]bool, len(probe))
			f.MGet(probe, outV, outOK)
			for i := range keys {
				if !outOK[i] || outV[i] != vals[i] {
					t.Fatalf("MGet[%d] = %d,%v want %d,true", i, outV[i], outOK[i], vals[i])
				}
			}
			if outOK[len(keys)] {
				t.Fatal("MGet reported a value for an absent key")
			}

			// CompareAndMove state machine.
			if f.CompareAndMove(7, 7, 200) {
				t.Fatal("from == to must not move")
			}
			if f.CompareAndMove(12345, 8, 1) {
				t.Fatal("missing source must not move")
			}
			if f.CompareAndMove(7, 8, 999) {
				t.Fatal("wrong expect must not move")
			}
			if f.CompareAndMove(7, 42, 200) {
				t.Fatal("occupied destination must not move")
			}
			// Pick a destination on a different shard than 7.
			dst := int64(1000)
			for s.ShardOf(dst) == s.ShardOf(7) {
				dst++
			}
			if !f.CompareAndMove(7, dst, 200) {
				t.Fatal("valid cross-shard move refused")
			}
			if _, ok := f.Get(7); ok {
				t.Fatal("source still present after move")
			}
			if v, ok := f.Get(dst); !ok || v != 200 {
				t.Fatalf("destination = %d,%v want 200,true", v, ok)
			}
		})
	}
}

// TestStoreAllocsSteadyState pins the allocation contract of the request
// path on every engine: once frames are warm, hit/miss Gets, missed
// Removes, refused CompareAndMoves, and whole MGet snapshots allocate
// nothing — no per-transaction frames, no per-composition closures, no
// nested-begin boxing (stm.FlatChildOn). An overwriting Put allocates
// exactly the one value box the AnyVar store requires — value storage,
// not frame traffic. (Inserting Puts and successful moves additionally
// allocate the skip-list nodes they create.)
func TestStoreAllocsSteadyState(t *testing.T) {
	for _, eng := range engines() {
		t.Run(eng.name, func(t *testing.T) {
			tm := eng.newi()
			s := New(Config{Shards: 8})
			f := s.NewFrame(stm.NewThread(tm))
			keys := make([]int64, 16)
			vals := make([]int64, 16)
			oks := make([]bool, 16)
			for i := range keys {
				keys[i] = int64(i * 37)
				f.Put(keys[i], int64(i%200))
			}
			cases := []struct {
				name string
				want float64
				op   func()
			}{
				{"get-hit", 0, func() { f.Get(keys[3]) }},
				{"get-miss", 0, func() { f.Get(777777) }},
				{"put-overwrite", 1, func() { f.Put(keys[5], 99) }}, // the AnyVar value box
				{"remove-miss", 0, func() { f.Remove(777777) }},
				{"cam-wrong-expect", 0, func() { f.CompareAndMove(keys[2], 777777, 251) }},
				{"cam-occupied", 0, func() { f.CompareAndMove(keys[2], keys[4], int64(2%200)) }},
				{"mget", 0, func() { f.MGet(keys, vals, oks) }},
			}
			for _, c := range cases {
				c.op() // warm pooled transaction and operation frames
				if allocs := testing.AllocsPerRun(100, c.op); allocs != c.want {
					t.Errorf("%s: %v allocs/op, want %v", c.name, allocs, c.want)
				}
			}
		})
	}
}
