package store

import (
	"fmt"
	"sync"
	"sync/atomic"

	"oestm/internal/boost"
)

// This file is the store half of the commutative hot-key path: counter
// keys promoted out of the read-modify-write transaction flow into
// boosted overlay counters (internal/boost abstract locks with
// outheritance, per the paper's §VIII composition rule).
//
// A promoted key's committed value is split in two: the *base* stays in
// the shard's skip list where every transaction can see it, and pending
// deltas accumulate in an *overlay* guarded by the key's abstract lock.
// Adds touch only the overlay — N concurrent adds are N lock handoffs,
// zero STM conflicts — while the key's logical value is always
// base + overlay. Absolute operations (Put, Remove, CompareAndMove,
// MPut) demote the key first: fold the overlay into the base under the
// abstract lock, kill the counter, and proceed on plain state — so a
// stale overlay can never survive an absolute write. With a WAL the
// demote and the absolute write are one atomic step (the write and its
// record land inside the demote transaction, or behind a re-check under
// the commit locks for the composed forms), so a concurrent add's
// record can never precede an absolute record whose live effect it
// survives — replay stays order-faithful. Reads acquire the abstract
// lock too, which is what makes a zero-sum boosted MAdd all-or-nothing
// to a concurrent MGet auditor.
//
// With a WAL, overlays are only ever mutated while additionally holding
// the shard's commit lock, so the established cut invariants survive:
// log order equals commit order, and a snapshot (taken under all commit
// locks) sees overlay state that matches its log position exactly.

// BoostMode selects how the store routes integer-delta operations.
type BoostMode uint8

const (
	// BoostOff disables the commutative path: adds run as composed
	// read-modify-write transactions (the A/B control).
	BoostOff BoostMode = iota
	// BoostAuto promotes a key to the boosted path when the per-shard
	// tracker sees its add transactions abort past a threshold with an
	// add-only op stream (the adaptive default).
	BoostAuto
	// BoostOn promotes every add's key immediately.
	BoostOn
)

// String names the mode the way the -boost flag spells it.
func (m BoostMode) String() string {
	switch m {
	case BoostOff:
		return "off"
	case BoostAuto:
		return "auto"
	case BoostOn:
		return "on"
	}
	return fmt.Sprintf("boost(%d)", uint8(m))
}

// ParseBoostMode parses the -boost flag ("" means auto).
func ParseBoostMode(s string) (BoostMode, error) {
	switch s {
	case "", "auto":
		return BoostAuto, nil
	case "off":
		return BoostOff, nil
	case "on":
		return BoostOn, nil
	}
	return BoostOff, fmt.Errorf("store: unknown boost mode %q (want off, auto or on)", s)
}

// hotCounter is one promoted key's boosted state. overlay and exists are
// guarded by ownership of lock (and, with a WAL, mutated only under the
// shard's commit lock as well — see the file comment); exists records
// that a committed delta landed on this counter, so a counter whose
// deltas net to exactly zero still reads as present (the RMW and batch
// executions materialize presence on every add — a key "created from
// zero" must not flicker absent when its sums cancel); dead marks a
// demoted counter whose overlay has been folded into the base, telling
// lock holders that looked it up before the demotion to retry.
type hotCounter struct {
	lock    boost.Lock
	overlay int64
	exists  bool
	dead    bool
}

// trackSlots is the per-shard tracker size (direct-mapped).
const trackSlots = 64

// promoteAbortThreshold is how many decayed aborts an add-only key
// accumulates before BoostAuto promotes it.
const promoteAbortThreshold = 8

// trackDecayAt halves a slot's counters when its add count passes this,
// keeping the abort rate a recent-history signal rather than a lifetime
// sum.
const trackDecayAt = 256

// trackSlot is one tracked key's decayed counters.
type trackSlot struct {
	key    int64
	adds   uint32
	aborts uint32
}

// shardHot is one shard's hot-key state: the promoted counters and the
// escalation tracker. count gates the lookup fast path — while it is
// zero (boost off, or nothing promoted) the hot path costs one atomic
// load per operation.
type shardHot struct {
	count atomic.Int32
	mu    sync.RWMutex
	keys  map[int64]*hotCounter

	tmu   sync.Mutex
	track [trackSlots]trackSlot
}

// hotOf returns key's live hot counter, or nil.
//
//compose:noalloc
func (s *Store) hotOf(key int64) *hotCounter {
	h := &s.hot[s.ShardOf(key)]
	if h.count.Load() == 0 {
		return nil
	}
	h.mu.RLock()
	hc := h.keys[key]
	h.mu.RUnlock()
	return hc
}

// promote installs a hot counter for key (idempotent) and returns it.
func (s *Store) promote(key int64) *hotCounter {
	h := &s.hot[s.ShardOf(key)]
	h.mu.Lock()
	hc, ok := h.keys[key]
	if !ok {
		hc = &hotCounter{}
		if h.keys == nil {
			h.keys = make(map[int64]*hotCounter)
		}
		h.keys[key] = hc
		h.count.Add(1)
		s.hotPromotions.Add(1)
	}
	h.mu.Unlock()
	return hc
}

// unpromote removes a demoted counter from the table. The caller has
// already folded the overlay and marked the counter dead under its
// abstract lock.
func (s *Store) unpromote(key int64, hc *hotCounter) {
	h := &s.hot[s.ShardOf(key)]
	h.mu.Lock()
	if h.keys[key] == hc {
		delete(h.keys, key)
		h.count.Add(-1)
	}
	h.mu.Unlock()
	s.hotDemotions.Add(1)
}

// slotOf maps key to its tracker slot (same Fibonacci mix as shard
// routing, different bits).
func slotOf(key int64) int {
	return int((uint64(key) * shardMix) >> (64 - 6) % trackSlots)
}

// trackAdd feeds one read-modify-write add's outcome (how many aborts
// the transaction suffered) to key's shard tracker, and reports whether
// the key crossed the promotion threshold: its recent add stream is
// abort-heavy and no absolute operation has touched it since tracking
// began (trackAbsolute resets the slot).
func (s *Store) trackAdd(key int64, aborts uint64) bool {
	h := &s.hot[s.ShardOf(key)]
	sl := &h.track[slotOf(key)]
	h.tmu.Lock()
	if sl.key != key {
		// Direct-mapped steal: the incumbent decays; a persistent new key
		// takes the slot once the incumbent's history has faded.
		sl.adds >>= 1
		sl.aborts >>= 1
		if sl.adds == 0 {
			*sl = trackSlot{key: key}
		} else {
			h.tmu.Unlock()
			return false
		}
	}
	sl.adds++
	if aborts > promoteAbortThreshold {
		// Clamp: one pathological transaction must not wrap the uint32
		// accumulator, and past the threshold extra aborts carry no signal.
		aborts = promoteAbortThreshold
	}
	sl.aborts += uint32(aborts)
	if sl.adds >= trackDecayAt {
		sl.adds >>= 1
		sl.aborts >>= 1
	}
	promote := sl.aborts >= promoteAbortThreshold
	if promote {
		*sl = trackSlot{}
	}
	h.tmu.Unlock()
	return promote
}

// trackAbsolute records an absolute operation on key: if the key was
// being tracked toward promotion, its history resets — the stream is
// not add-only.
func (s *Store) trackAbsolute(key int64) {
	h := &s.hot[s.ShardOf(key)]
	sl := &h.track[slotOf(key)]
	h.tmu.Lock()
	if sl.key == key {
		*sl = trackSlot{}
	}
	h.tmu.Unlock()
}

// BoostStats is a snapshot of the commutative-path counters, exported
// through the server's stats endpoint into the adds/boosted_ops/
// hot_promotions CSV columns.
type BoostStats struct {
	Adds       uint64 // deltas applied (Add ops plus MAdd entries), any path
	BoostedOps uint64 // deltas that ran on the boosted overlay path
	Promotions uint64 // keys promoted to the boosted path
	Demotions  uint64 // keys demoted (folded back) by absolute operations
}

// BoostStats snapshots the counters.
func (s *Store) BoostStats() BoostStats {
	return BoostStats{
		Adds:       s.adds.Load(),
		BoostedOps: s.boostedOps.Load(),
		Promotions: s.hotPromotions.Load(),
		Demotions:  s.hotDemotions.Load(),
	}
}

// CountAdds adds n to the applied-delta counter (the batch applier's
// staging path reports through this; conn-mode frames count inline).
func (s *Store) CountAdds(n int) { s.adds.Add(uint64(n)) }

// BoostMode returns the store's configured mode.
func (s *Store) BoostMode() BoostMode { return s.boostMode }
