package store

import (
	"errors"

	"oestm/internal/boost"
	"oestm/internal/stm"
	"oestm/internal/wal"
)

// This file is the frame half of the commutative hot-key path (see
// hot.go for the data structures and the invariants): Add and MAdd, the
// integer-delta operations the serving layer exposes, with three
// executions each —
//
//   - boosted: the key (every key, for MAdd) is promoted; the delta is
//     applied to the overlay under the key's abstract lock, composed
//     across keys through outheritance, with compensating subtractions
//     on abort. No transactional read, so no conflict to validate: two
//     adds to the same key never abort each other.
//   - read-modify-write: the classic composed transaction (get + put of
//     base state), used for unpromoted keys and as the -boost=off
//     control. Correct alongside a live overlay: it only moves the base
//     addend.
//   - unsound: the read and the write run as separate top-level
//     transactions, losing concurrent updates — the tear the
//     counter-fanin checker exists to catch.
//
// Durability reuses the established shapes verbatim: a single add logs
// one KindAdd record under its shard's commit lock (Put's shape), a
// composed MAdd logs a two-phase intent/commit set whose effects carry
// Delta (MPut's shape), and replay re-applies deltas in per-shard
// commit order.

// errHotDead aborts a boosted body that found its counter demoted
// between lookup and lock acquisition; the caller re-looks the key up.
var errHotDead = errors.New("store: hot counter demoted")

// boostAtomic runs one boosted body under the frame's composed-operation
// budget (Add and MAdd are composed operations: bounding them degrades
// to "not committed", never to a wrong answer).
func (f *Frame) boostAtomic(fn func(*boost.Tx) error) error {
	if f.budget > 0 {
		prev := f.bth.MaxRetries
		f.bth.MaxRetries = f.budget
		err := f.bth.Atomic(fn)
		f.bth.MaxRetries = prev
		return err
	}
	return f.bth.Atomic(fn)
}

// absolute prepares key for an absolute operation (Put, Remove,
// CompareAndMove, MPut): demote it off the boosted path, so no stale
// overlay can survive the write, and tell the escalation tracker the
// key's stream is not add-only. Free when the hot path is idle (one
// atomic load). With a WAL this pre-pass alone is not enough — a
// boosted add can re-promote the key and land its add record between
// the demote and the absolute record, which replay would then apply in
// the wrong order — so the logged writers close that window themselves:
// Put/Remove via putLogged/removeLogged (the write runs inside the
// demote transaction), MPut/CompareAndMove via lockShardsAbsolute (a
// re-check under the commit locks).
func (f *Frame) absolute(key int64) {
	s := f.st
	if s.boostMode == BoostOff {
		return
	}
	f.demote(key)
	if s.boostMode == BoostAuto {
		s.trackAbsolute(key)
	}
}

// demote retires key's hot counter, if any: under the abstract lock (and
// the shard's commit lock, with a WAL) the overlay folds into the base
// entry and the counter is marked dead, then it leaves the hot table.
// The fold writes no log record — the add records already on disk
// reproduce the overlay at replay — and demote retries until the counter
// observed is the one it killed, so an absolute operation never runs
// while its key still has a live overlay.
func (f *Frame) demote(key int64) {
	s := f.st
	for {
		hc := s.hotOf(key)
		if hc == nil {
			return
		}
		f.hotHC, f.hotKey = hc, key
		f.hotSh = s.ShardOf(key)
		if f.bth.Atomic(f.demoteFn) == nil {
			s.unpromote(key, hc)
			return
		}
		// errHotDead: another frame demoted this counter first; the key
		// may have been re-promoted since — look again.
	}
}

// demoteBody is the boosted body of demote.
func (f *Frame) demoteBody(tx *boost.Tx) error {
	hc := f.hotHC
	tx.Acquire(&hc.lock)
	if hc.dead {
		return errHotDead
	}
	w := f.st.wal
	if w != nil {
		w.Lock(f.hotSh)
	}
	f.fold(hc)
	hc.dead = true
	if w != nil {
		w.Unlock(f.hotSh)
	}
	return nil
}

// fold moves hc's pending state into the base entry: the overlay delta
// is added to the base value, and a counter created purely by deltas
// that netted to zero materializes a base entry of 0 — presence must
// survive the demotion exactly as it read while hot. The caller holds
// the abstract lock (and the commit lock, with a WAL); no log record is
// written — the add records already on disk reproduce the overlay at
// replay, presence included (replaying a delta creates the entry).
func (f *Frame) fold(hc *hotCounter) {
	if hc.overlay != 0 {
		v, _ := f.getRaw(f.hotKey)
		f.putRaw(f.hotKey, v+hc.overlay)
		hc.overlay = 0
	} else if hc.exists {
		if _, ok := f.getRaw(f.hotKey); !ok {
			f.putRaw(f.hotKey, 0)
		}
	}
}

// putLogged is Put's execution when a WAL and the boosted path are both
// live. The demote and the absolute write must be one atomic step: with
// them separate, a boosted add could re-promote the key and append its
// add record between the fold and the put record — live state would
// carry the add in a fresh overlay while replay, applying add-then-put,
// would lose the acked delta. While the key is hot the whole write runs
// inside the demote transaction (putHotBody); while it is cold the
// commit lock is taken first and the hot table re-checked under it —
// overlay mutations and add records both require the commit lock, so a
// key seen unpromoted there cannot get an add record before the put
// record lands.
func (f *Frame) putLogged(key, val int64) bool {
	s := f.st
	if s.boostMode == BoostAuto {
		s.trackAbsolute(key)
	}
	w := s.wal
	sh := s.ShardOf(key)
	for {
		hc := s.hotOf(key)
		if hc == nil {
			w.Lock(sh)
			if s.hotOf(key) == nil {
				existed := f.putRaw(key, val)
				seq := w.AppendPut(sh, key, val)
				w.Unlock(sh)
				if err := w.Sync(sh, seq); err != nil && f.walErr == nil {
					f.walErr = err
				}
				return existed
			}
			w.Unlock(sh) // promoted in the window — take the hot path
			continue
		}
		f.hotHC, f.hotKey, f.hotVal, f.hotSh = hc, key, val, sh
		if f.bth.Atomic(f.putHotFn) == nil {
			s.unpromote(key, hc)
			if err := w.Sync(sh, f.hotSeq); err != nil && f.walErr == nil {
				f.walErr = err
			}
			return f.hotOk
		}
		// errHotDead: another frame demoted this counter first — look
		// again (the key may have been re-promoted since).
	}
}

// putHotBody writes a promoted key's absolute value inside its demote
// transaction: under the abstract lock and the shard's commit lock the
// overlay dies with the base overwrite and the put record is appended,
// so no add record for this key can separate the two.
func (f *Frame) putHotBody(tx *boost.Tx) error {
	hc := f.hotHC
	tx.Acquire(&hc.lock)
	if hc.dead {
		return errHotDead
	}
	w := f.st.wal
	w.Lock(f.hotSh)
	_, ok := f.getRaw(f.hotKey)
	f.hotOk = ok || hc.exists // logical presence: base or committed deltas
	f.putRaw(f.hotKey, f.hotVal)
	hc.overlay = 0
	hc.dead = true
	f.hotSeq = w.AppendPut(f.hotSh, f.hotKey, f.hotVal)
	w.Unlock(f.hotSh)
	return nil
}

// removeLogged is Remove's execution when a WAL and the boosted path are
// both live — putLogged's shape (see there for the window it closes),
// with the miss-writes-no-record rule of the plain logged Remove.
func (f *Frame) removeLogged(key int64) (int64, bool) {
	s := f.st
	if s.boostMode == BoostAuto {
		s.trackAbsolute(key)
	}
	w := s.wal
	sh := s.ShardOf(key)
	for {
		hc := s.hotOf(key)
		if hc == nil {
			w.Lock(sh)
			if s.hotOf(key) == nil {
				v, ok := f.removeRaw(key)
				var seq uint64
				if ok {
					seq = w.AppendRemove(sh, key)
				}
				w.Unlock(sh)
				if ok {
					if err := w.Sync(sh, seq); err != nil && f.walErr == nil {
						f.walErr = err
					}
				}
				return v, ok
			}
			w.Unlock(sh) // promoted in the window — take the hot path
			continue
		}
		f.hotHC, f.hotKey, f.hotSh = hc, key, sh
		if f.bth.Atomic(f.removeHotFn) == nil {
			s.unpromote(key, hc)
			if f.hotOk {
				if err := w.Sync(sh, f.hotSeq); err != nil && f.walErr == nil {
					f.walErr = err
				}
			}
			return f.hotVal, f.hotOk
		}
	}
}

// removeHotBody removes a promoted key inside its demote transaction:
// fold the overlay into the base (no record — the add records on disk
// reproduce it), remove the folded entry, append the remove record if
// anything was removed, kill the counter. All under the abstract lock
// and the shard's commit lock, so no add record can separate fold and
// remove record.
func (f *Frame) removeHotBody(tx *boost.Tx) error {
	hc := f.hotHC
	tx.Acquire(&hc.lock)
	if hc.dead {
		return errHotDead
	}
	w := f.st.wal
	w.Lock(f.hotSh)
	f.fold(hc)
	f.hotVal, f.hotOk = f.removeRaw(f.hotKey)
	hc.dead = true
	if f.hotOk {
		f.hotSeq = w.AppendRemove(f.hotSh, f.hotKey)
	}
	w.Unlock(f.hotSh)
	return nil
}

// lockShardsAbsolute takes the participants' commit locks for a composed
// absolute operation (MPut, CompareAndMove) whose keys the caller has
// already demoted, and re-checks the hot table under them: a boosted add
// may have re-promoted a key between the demote pass and the lock
// acquisition and already appended its add record, and logging the
// composition's intent after that record would make replay apply
// add-then-overwrite while live state keeps the fresh overlay on top of
// the overwrite. Finding a straggler it releases, demotes again and
// retries; once every key is cold under the locks no add record can
// precede the intent (overlay mutations and add records require the
// commit lock), and the locks are returned held with the window closed.
func (f *Frame) lockShardsAbsolute(keys []int64) {
	for {
		f.lockShards()
		rehot := false
		for _, k := range keys {
			if f.st.hotOf(k) != nil {
				rehot = true
				break
			}
		}
		if !rehot {
			return
		}
		f.unlockShards()
		for _, k := range keys {
			f.demote(k)
		}
	}
}

// Add atomically adds delta to the counter under key, creating it (from
// zero) if absent. It reports whether it committed (see MGet); with a
// WAL it returns only after the add record is durable.
func (f *Frame) Add(key, delta int64) bool {
	s := f.st
	s.adds.Add(1)
	if s.unsound {
		f.hotKey, f.hotDelta = key, delta
		f.unsound(f.addUnsound) // pieces count themselves (see Frame.MGet)
		return true
	}
	a0 := f.th.Stats.Aborts
	ok := f.addSound(key, delta)
	f.noteOp(key, a0)
	return ok
}

// addSound routes a sound Add: boosted when the key is promoted (on
// mode promotes it first), read-modify-write otherwise.
func (f *Frame) addSound(key, delta int64) bool {
	s := f.st
	for {
		hc := s.hotOf(key)
		if hc == nil {
			if s.boostMode == BoostOn {
				s.promote(key)
				continue
			}
			return f.addRMW(key, delta)
		}
		err := f.addBoosted(hc, key, delta)
		if err == nil {
			return true
		}
		if err != errHotDead {
			return false // retry budget exhausted
		}
	}
}

// addBoosted applies one delta on the boosted path: overlay += delta
// under the key's abstract lock, the add record appended under the
// shard's commit lock, group commit after release.
//
//compose:noalloc
func (f *Frame) addBoosted(hc *hotCounter, key, delta int64) error {
	s := f.st
	f.hotHC, f.hotKey, f.hotDelta = hc, key, delta
	f.hotSh = s.ShardOf(key)
	err := f.boostAtomic(f.boostAddFn)
	if err == nil {
		s.boostedOps.Add(1)
		if s.wal != nil {
			if serr := s.wal.Sync(f.hotSh, f.hotSeq); serr != nil && f.walErr == nil {
				f.walErr = serr
			}
		}
	}
	return err
}

// boostAddBody is the boosted body of a single add. Once the abstract
// lock is held and the counter is live, nothing can abort before the
// overlay mutation commits, so no compensation is registered (MAdd's
// multi-lock body is where the compensation log earns its keep).
//
//compose:noalloc
func (f *Frame) boostAddBody(tx *boost.Tx) error {
	hc := f.hotHC
	tx.Acquire(&hc.lock)
	if hc.dead {
		return errHotDead
	}
	w := f.st.wal
	if w == nil {
		hc.overlay += f.hotDelta
		hc.exists = true
		return nil
	}
	w.Lock(f.hotSh)
	hc.overlay += f.hotDelta
	hc.exists = true
	f.hotSeq = w.AppendAdd(f.hotSh, f.hotKey, f.hotDelta)
	w.Unlock(f.hotSh)
	return nil
}

// boostGetBody is the boosted body of a hot key's Get: base + overlay
// at one instant, under the abstract lock.
//
//compose:noalloc
func (f *Frame) boostGetBody(tx *boost.Tx) error {
	hc := f.hotHC
	tx.Acquire(&hc.lock)
	if hc.dead {
		return errHotDead
	}
	v, ok := f.getRaw(f.hotKey)
	f.hotVal = v + hc.overlay
	f.hotOk = ok || hc.exists
	return nil
}

// addRMW is the read-modify-write execution of Add: one composed
// transaction (get + put of the base entry), logged as one add record
// under the shard's commit lock so replay re-applies the delta rather
// than a stale absolute value. In auto mode the transaction's abort
// count feeds the escalation tracker, and crossing the threshold
// promotes the key — the next add takes the boosted path.
func (f *Frame) addRMW(key, delta int64) bool {
	s := f.st
	f.hotKey, f.hotDelta = key, delta
	track := s.boostMode == BoostAuto
	var abortsBefore uint64
	if track {
		abortsBefore = f.th.Stats.Aborts
	}
	var err error
	if w := s.wal; w == nil {
		err = f.atomic(f.kind, f.addFn)
	} else {
		sh := s.ShardOf(key)
		w.Lock(sh)
		err = f.atomic(f.kind, f.addFn)
		var seq uint64
		if err == nil {
			seq = w.AppendAdd(sh, key, delta)
		}
		w.Unlock(sh)
		if err == nil {
			if serr := w.Sync(sh, seq); serr != nil && f.walErr == nil {
				f.walErr = serr
			}
		}
	}
	if err != nil {
		return false
	}
	if track && s.trackAdd(key, f.th.Stats.Aborts-abortsBefore) {
		s.promote(key)
	}
	return true
}

// addBody is the transactional body of the read-modify-write add.
func (f *Frame) addBody() {
	v, _ := f.getRaw(f.hotKey)
	f.putRaw(f.hotKey, v+f.hotDelta)
}

// addUnsound is the split body of unsound Add: the read and the write
// run as separate top-level transactions, so a concurrent add between
// them is lost — the update tear the counter-fanin checker catches.
// Each piece goes through the logging wrappers, so the tear reaches the
// log too (an absolute put record overwrites concurrent deltas).
func (f *Frame) addUnsound() {
	v, _ := f.Get(f.hotKey)
	f.Put(f.hotKey, v+f.hotDelta)
}

// MAdd atomically adds deltas[i] to the counter under keys[i] for every
// entry, as one composition across shards. With every key promoted the
// deltas apply to the overlays under their abstract locks — composed
// through outheritance, compensated on abort — and the whole batch logs
// as one two-phase intent/commit set with delta effects; otherwise it
// runs as one composed read-modify-write transaction with the same log
// shape. In unsound mode every entry splits like unsound Add. deltas
// must be at least len(keys) long. It reports whether it committed (see
// MGet).
func (f *Frame) MAdd(keys, deltas []int64) bool {
	s := f.st
	s.adds.Add(uint64(len(keys)))
	if len(keys) == 0 {
		return true
	}
	f.keys, f.vals = keys, deltas
	var committed bool
	if s.unsound {
		f.unsound(f.maddUnsound) // pieces count themselves (see Frame.MGet)
		committed = true
	} else {
		a0 := f.th.Stats.Aborts
		committed = f.maddSound()
		f.noteComposed(keys, a0)
	}
	f.keys, f.vals = nil, nil
	return committed
}

// maddSound routes a sound MAdd: boosted when every key is hot (on mode
// promotes the stragglers), composed read-modify-write otherwise.
func (f *Frame) maddSound() bool {
	s := f.st
	for {
		allHot := true
		f.maddHCs = f.maddHCs[:0]
		for _, k := range f.keys {
			hc := s.hotOf(k)
			if hc == nil {
				if s.boostMode != BoostOn {
					allHot = false
					break
				}
				hc = s.promote(k)
			}
			f.maddHCs = append(f.maddHCs, hc)
		}
		if !allHot {
			return f.maddRMW()
		}
		if s.wal != nil {
			f.wShards = f.wShards[:0]
			for _, k := range f.keys {
				f.insertShard(s.ShardOf(k))
			}
		}
		err := f.boostAtomic(f.boostMAddFn)
		if err == nil {
			s.boostedOps.Add(uint64(len(f.keys)))
			if s.wal != nil {
				f.syncShards()
			}
			return true
		}
		if err != errHotDead {
			return false // retry budget exhausted
		}
	}
}

// boostMAddBody is the boosted body of an all-hot MAdd.
//
// Without a WAL it is textbook boosting: each delta applies eagerly
// under its key's abstract lock as soon as that lock is acquired, with
// the compensating subtractions registered up front — a conflict (or a
// demoted counter) later in the batch unwinds the applied prefix before
// the locks release, so a concurrent locked reader never sees half the
// batch.
//
// With a WAL the deltas instead apply after every abstract lock is held,
// under the participants' commit locks, together with the two-phase
// intent/commit append — the overlay-only-under-commit-lock invariant
// snapshots rely on. No abortable step follows the first mutation there,
// which is exactly why compensation can be (and must be) skipped: an
// undo would run after the commit locks were released.
func (f *Frame) boostMAddBody(tx *boost.Tx) error {
	w := f.st.wal
	if w == nil {
		f.maddApplied = 0
		f.maddExists = f.maddExists[:0]
		tx.Defer(f.maddUndoFn)
		for i, hc := range f.maddHCs {
			tx.Acquire(&hc.lock)
			if hc.dead {
				return errHotDead
			}
			f.maddExists = append(f.maddExists, hc.exists)
			hc.overlay += f.vals[i]
			hc.exists = true
			f.maddApplied++
		}
		return nil
	}
	for _, hc := range f.maddHCs {
		tx.Acquire(&hc.lock)
		if hc.dead {
			return errHotDead
		}
	}
	f.lockShards()
	for i, hc := range f.maddHCs {
		hc.overlay += f.vals[i]
		hc.exists = true
	}
	f.effects = f.effects[:0]
	for i, k := range f.keys {
		f.effects = append(f.effects, wal.Effect{Delta: true, Shard: f.st.ShardOf(k), Key: k, Val: f.vals[i]})
	}
	f.logComposed()
	f.unlockShards()
	return nil
}

// maddUndo compensates the applied prefix of an aborted in-memory
// boosted MAdd (runs before the abstract locks release). The reverse
// order restores each counter's pre-batch exists bit even when one key
// appears twice in the batch — the earliest entry's saved value wins.
func (f *Frame) maddUndo() {
	for i := f.maddApplied - 1; i >= 0; i-- {
		f.maddHCs[i].overlay -= f.vals[i]
		f.maddHCs[i].exists = f.maddExists[i]
	}
	f.maddApplied = 0
}

// maddRMW is the composed read-modify-write execution of MAdd — MPut's
// shape with get+put pieces and delta effects. Correct even when some
// keys are hot: it moves only base addends, and the logged deltas
// commute with the boosted ones at replay.
func (f *Frame) maddRMW() bool {
	s := f.st
	var err error
	if s.wal == nil {
		err = f.atomic(f.kind, f.maddFn)
	} else {
		f.wShards = f.wShards[:0]
		for _, k := range f.keys {
			f.insertShard(s.ShardOf(k))
		}
		f.lockShards()
		err = f.atomic(f.kind, f.maddFn)
		if err == nil {
			f.effects = f.effects[:0]
			for i, k := range f.keys {
				f.effects = append(f.effects, wal.Effect{Delta: true, Shard: s.ShardOf(k), Key: k, Val: f.vals[i]})
			}
			f.logComposed()
		}
		f.unlockShards()
		if err == nil {
			f.syncShards()
		}
	}
	return err == nil
}

// maddBody is the transactional body of the read-modify-write MAdd.
func (f *Frame) maddBody() {
	for i, k := range f.keys {
		v, _ := f.getRaw(k)
		f.putRaw(k, v+f.vals[i])
	}
}

// maddUnsound is the split body of unsound MAdd: every entry tears like
// unsound Add, and the batch itself is torn across entries.
func (f *Frame) maddUnsound() {
	for i := range f.keys {
		v, _ := f.Get(f.keys[i])
		f.Put(f.keys[i], v+f.vals[i])
	}
}

// mgetSound runs the sound MGet. When none of the requested keys is
// promoted it is the plain one-transaction snapshot. Otherwise the frame
// first acquires the abstract lock of every requested hot counter — with
// a dead recheck, restarting if a demotion raced the lookup, and a
// promotion recheck, restarting if a key it saw cold turned hot before
// the locks were held (see boostMGetBody) — then takes the STM snapshot
// of the bases and folds the locked overlays in. Holding the locks of
// every hot key in the request is what makes the result a consistent
// cut: a composed MAdd over any of these keys is either entirely before
// (its overlays all visible) or entirely after (blocked on the locks).
func (f *Frame) mgetSound() error {
	s := f.st
	if s.boostMode == BoostOff {
		return f.atomic(stm.Regular, f.mgetFn)
	}
	for {
		anyHot := false
		f.mgetHCs = f.mgetHCs[:0]
		for _, k := range f.keys {
			hc := s.hotOf(k)
			f.mgetHCs = append(f.mgetHCs, hc)
			if hc != nil {
				anyHot = true
			}
		}
		if !anyHot {
			return f.atomic(stm.Regular, f.mgetFn)
		}
		err := f.boostAtomic(f.boostMGetFn)
		if err != errHotDead {
			return err
		}
	}
}

// boostMGetBody is the boosted body of a hot-key MGet. Once the locks
// are held it re-checks the keys that looked unpromoted at lookup: one
// promoted in between may already hold half of a completed composed
// MAdd whose other half sits in a locked sibling's overlay, so folding
// only the lookup-time lock set would tear the batch — restarting
// re-scans with the promotion included. A key that turns hot after this
// recheck is harmless: a composed MAdd pairing it with any locked key
// blocks on that lock until this MGet commits, and one touching none of
// the locked keys leaves every folded overlay and snapshotted base
// untouched — the MGet linearizes before it.
func (f *Frame) boostMGetBody(tx *boost.Tx) error {
	for _, hc := range f.mgetHCs {
		if hc == nil {
			continue
		}
		tx.Acquire(&hc.lock)
		if hc.dead {
			return errHotDead
		}
	}
	for i, k := range f.keys {
		if f.mgetHCs[i] == nil && f.st.hotOf(k) != nil {
			return errHotDead
		}
	}
	if err := f.atomic(stm.Regular, f.mgetFn); err != nil {
		return err
	}
	for i, hc := range f.mgetHCs {
		if hc == nil {
			continue
		}
		f.vals[i] += hc.overlay
		if hc.exists {
			f.oks[i] = true
		}
	}
	return nil
}
