package store

import (
	"oestm/internal/boost"
	"oestm/internal/eec"
	"oestm/internal/stm"
	"oestm/internal/wal"
)

// Frame is the per-connection (per-thread) operation context of a Store:
// it owns the pre-bound transaction closures of the composed operations
// and the parameter fields they read, so the steady-state request path
// starts no per-call closures and allocates no per-transaction frames —
// the store-layer counterpart of the e.e.c operation frame. A Frame must
// only be used from the one goroutine that owns its thread, one
// operation at a time.
//
// Values travel as int64. Storing a value costs the one box the
// underlying AnyVar write requires (two for values outside [0, 255],
// which also box at the interface conversion); everything else on the
// hit paths is allocation-free (pinned by the conformance tests here and
// end-to-end in internal/server). Keys use the platform int inside the
// shards; like the rest of the repository's word-level budgets this
// assumes 64-bit ints.
type Frame struct {
	st *Store
	th *stm.Thread

	// kind is the enclosing-transaction kind of the composed mutators
	// (elastic where the engine supports it, like every e.e.c
	// composition).
	kind stm.Kind

	// budget, when non-zero, bounds the transaction attempts of each
	// composed operation (see SetBudget).
	budget int

	// Parameters and results of the composed operations in flight.
	keys, vals []int64
	oks        []bool
	from, to   int64
	expect     int64
	moved      bool

	mgetFn, mputFn, camFn func(stm.Tx) error

	// Commutative hot-key path state (see frame_add.go): the frame's
	// boosted-transaction thread, the pre-bound boosted and STM bodies
	// of Add/MAdd and of hot-aware reads, and their parameter fields.
	bth         *boost.Thread
	hotHC       *hotCounter
	hotKey      int64
	hotDelta    int64
	hotVal      int64
	hotOk       bool
	hotSh       int
	hotSeq      uint64
	maddHCs     []*hotCounter
	mgetHCs     []*hotCounter
	maddExists  []bool
	maddApplied int

	addFn, maddFn                                 func(stm.Tx) error
	boostAddFn, boostMAddFn, boostGetFn, demoteFn func(*boost.Tx) error
	boostMGetFn, putHotFn, removeHotFn            func(*boost.Tx) error
	maddUndoFn                                    func()
	camKeys                                       [2]int64

	// WAL scratch (reused across operations so the logging path stays
	// allocation-free once grown): the sorted unique participant shards
	// of the composed operation in flight, the per-participant sync
	// targets, and the composition's effect list.
	wShards []int
	wSeqs   []uint64
	effects []wal.Effect
	// walErr is the sticky first log I/O error observed by this frame:
	// once set, mutations this frame acknowledged may not be durable and
	// the server reports the failure instead of success (see WALErr).
	walErr error
}

// NewFrame binds a frame for th. One frame per connection: the server
// creates it next to the connection's thread and reuses it for every
// request.
func (s *Store) NewFrame(th *stm.Thread) *Frame {
	f := &Frame{st: s, th: th, kind: eec.OpKind(th), bth: s.bt.NewThread()}
	f.mgetFn = func(tx stm.Tx) error { f.mgetBody(tx); return nil }
	f.mputFn = func(stm.Tx) error { f.mputBody(); return nil }
	f.camFn = func(stm.Tx) error { f.camBody(); return nil }
	f.addFn = func(stm.Tx) error { f.addBody(); return nil }
	f.maddFn = func(stm.Tx) error { f.maddBody(); return nil }
	f.boostAddFn = f.boostAddBody
	f.boostMAddFn = f.boostMAddBody
	f.boostGetFn = f.boostGetBody
	f.boostMGetFn = f.boostMGetBody
	f.putHotFn = f.putHotBody
	f.removeHotFn = f.removeHotBody
	f.demoteFn = f.demoteBody
	f.maddUndoFn = f.maddUndo
	return f
}

// Thread returns the thread the frame is bound to.
func (f *Frame) Thread() *stm.Thread { return f.th }

// SetBudget bounds the transaction attempts of each composed operation
// (0 = unbounded, the default): when the budget runs out the operation
// reports uncommitted instead of retrying forever. It exists as a
// liveness guard for deliberately broken configurations — under the estm
// ablation or Unsound mode a torn composition can corrupt a shard's
// structural invariants, wedging a later composed operation in a
// permanent conflict loop. Elementary operations are never budgeted:
// they are individually atomic on every engine, cannot be torn, and
// their eec surface has no failure channel — bounding them would trade a
// (corruption-only) wedge for silently wrong answers. (Unsound mode is
// the exception: there the budget covers the split-out elementary
// pieces — see Frame.unsound.)
func (f *Frame) SetBudget(n int) { f.budget = n }

// atomic runs one composed-operation closure under the frame's budget.
func (f *Frame) atomic(kind stm.Kind, fn func(stm.Tx) error) error {
	if f.budget > 0 {
		prev := f.th.MaxRetries
		f.th.MaxRetries = f.budget
		err := f.th.Atomic(kind, fn)
		f.th.MaxRetries = prev
		return err
	}
	return f.th.Atomic(kind, fn)
}

// unsound runs a composed operation's unsound (split) body under the
// frame's budget. Here the budget must cover the elementary pieces —
// they are exactly the transactions a corrupted unsound store can wedge
// — so an exhausted piece silently degrades (a read observes absence, a
// write is dropped). That trade is only acceptable because unsound mode
// exists to break semantics; the sound paths never bound elementary
// operations (see SetBudget).
func (f *Frame) unsound(body func()) {
	if f.budget > 0 {
		prev := f.th.MaxRetries
		f.th.MaxRetries = f.budget
		body()
		f.th.MaxRetries = prev
		return
	}
	body()
}

// noteOp credits one key-operation to key's shard and attributes the
// aborts the thread suffered since a0 (a snapshot of f.th.Stats.Aborts
// taken at operation start, on this same goroutine) to that shard. The
// telemetry is counter-increment-only: the request path's allocation
// pins include it.
//
//compose:noalloc
func (f *Frame) noteOp(key int64, a0 uint64) {
	c := &f.st.sc[f.st.ShardOf(key)]
	c.ops.Add(1)
	if ab := f.th.Stats.Aborts - a0; ab != 0 {
		c.aborts.Add(ab)
	}
}

// noteComposed credits one key-operation per key and attributes the
// composition's aborts to its first key's shard: the conflict may span
// shards, but a single deterministic owner keeps the per-shard abort
// totals exact (summing to the merged abort counter) and the hot path
// one atomic per key.
//
//compose:noalloc
func (f *Frame) noteComposed(keys []int64, a0 uint64) {
	if len(keys) == 0 {
		return
	}
	st := f.st
	for _, k := range keys {
		st.sc[st.ShardOf(k)].ops.Add(1)
	}
	if ab := f.th.Stats.Aborts - a0; ab != 0 {
		st.sc[st.ShardOf(keys[0])].aborts.Add(ab)
	}
}

// Get returns the value under key and whether it is present. For a
// plain key this is one single-shard elastic transaction; a promoted
// counter's read additionally acquires its abstract lock, so the value
// returned is base + overlay at one instant (a counter logically exists
// once a committed delta created it — even while later deltas cancel
// the sum back to zero, matching the RMW and batch executions).
func (f *Frame) Get(key int64) (int64, bool) {
	a0 := f.th.Stats.Aborts
	for {
		hc := f.st.hotOf(key)
		if hc == nil {
			v, ok := f.getRaw(key)
			f.noteOp(key, a0)
			return v, ok
		}
		f.hotHC, f.hotKey = hc, key
		if f.bth.Atomic(f.boostGetFn) == nil {
			f.noteOp(key, a0)
			return f.hotVal, f.hotOk
		}
		// The counter died under us (an absolute operation demoted it);
		// its overlay is folded into the base now — look again.
	}
}

// getRaw reads key's base entry — the bare single-shard transaction,
// blind to hot-key overlays. Composed bodies and the fold paths read
// through it; the public Get adds a promoted key's overlay on top.
func (f *Frame) getRaw(key int64) (int64, bool) {
	v, ok := f.st.shard(key).Get(f.th, int(key))
	if !ok {
		return 0, false
	}
	n, _ := v.(int64)
	return n, true
}

// Put stores val under key, reporting whether the key already existed —
// one single-shard elastic transaction. With a WAL the transaction runs
// under the shard's commit lock, the put record is appended there (so
// log order equals commit order), and Put returns only after group
// commit made the record durable. A promoted key is demoted first; with
// a WAL the demote and the write are one atomic step (putLogged), so no
// concurrent add record can land between the fold and the put record.
func (f *Frame) Put(key, val int64) bool {
	a0 := f.th.Stats.Aborts
	w := f.st.wal
	if w == nil {
		f.absolute(key)
		existed := f.putRaw(key, val)
		f.noteOp(key, a0)
		return existed
	}
	if f.st.boostMode != BoostOff {
		existed := f.putLogged(key, val)
		f.noteOp(key, a0)
		return existed
	}
	sh := f.st.ShardOf(key)
	w.Lock(sh)
	existed := f.putRaw(key, val)
	seq := w.AppendPut(sh, key, val)
	w.Unlock(sh)
	if err := w.Sync(sh, seq); err != nil && f.walErr == nil {
		f.walErr = err
	}
	f.noteOp(key, a0)
	return existed
}

// putRaw is the unlogged put: the bare transaction, used directly when
// there is no WAL and inside sound composed bodies (the enclosing
// composition logs once, as one intent — and already holds the shard's
// commit lock, so the logging wrapper would self-deadlock).
func (f *Frame) putRaw(key, val int64) bool {
	_, existed := f.st.shard(key).Put(f.th, int(key), val)
	return existed
}

// Remove deletes key, returning the removed value and whether the key
// was present — one single-shard elastic transaction, logged and made
// durable like Put when it removed something (a miss mutates nothing
// and writes no record). Promoted keys demote like Put's (removeLogged
// with a WAL — one atomic demote-and-remove step).
func (f *Frame) Remove(key int64) (int64, bool) {
	a0 := f.th.Stats.Aborts
	w := f.st.wal
	if w == nil {
		f.absolute(key)
		v, ok := f.removeRaw(key)
		f.noteOp(key, a0)
		return v, ok
	}
	if f.st.boostMode != BoostOff {
		v, ok := f.removeLogged(key)
		f.noteOp(key, a0)
		return v, ok
	}
	sh := f.st.ShardOf(key)
	w.Lock(sh)
	v, ok := f.removeRaw(key)
	var seq uint64
	if ok {
		seq = w.AppendRemove(sh, key)
	}
	w.Unlock(sh)
	if ok {
		if err := w.Sync(sh, seq); err != nil && f.walErr == nil {
			f.walErr = err
		}
	}
	f.noteOp(key, a0)
	return v, ok
}

// removeRaw is the unlogged remove (see putRaw).
func (f *Frame) removeRaw(key int64) (int64, bool) {
	v, ok := f.st.shard(key).Remove(f.th, int(key))
	if !ok {
		return 0, false
	}
	n, _ := v.(int64)
	return n, true
}

// WALErr returns the frame's sticky first log I/O error (nil while
// every acknowledged mutation reached the log). Once set, the store's
// durability is broken — the log refuses all further appends with the
// same error — and the server answers mutations with a typed
// durability error instead of success.
func (f *Frame) WALErr() error { return f.walErr }

// MGet fills vals[i], oks[i] with the value and presence of keys[i] for
// every key, as one atomic snapshot across all shards touched: a single
// Regular transaction reading the shard maps directly (see the package
// comment for why it is not a composition of Get children). vals and oks
// must be at least len(keys) long; they are the caller's reusable
// buffers. In unsound mode every key is read in its own transaction.
//
// The composed operations report whether they committed: false means the
// frame's retry budget (SetBudget) was exhausted and the outputs must be
// discarded. With an unbounded budget (the default) they always return
// true.
func (f *Frame) MGet(keys []int64, vals []int64, oks []bool) bool {
	f.keys, f.vals, f.oks = keys, vals, oks
	var err error
	if f.st.unsound {
		// The split pieces go through the public Get, which counts each
		// key-operation itself — no outer noteComposed, or the shards
		// would double-count.
		f.unsound(func() {
			for i, k := range keys {
				vals[i], oks[i] = f.Get(k)
			}
		})
	} else {
		a0 := f.th.Stats.Aborts
		err = f.mgetSound()
		f.noteComposed(keys, a0)
	}
	f.keys, f.vals, f.oks = nil, nil, nil
	return err == nil
}

// mgetBody is the transactional body of MGet.
func (f *Frame) mgetBody(tx stm.Tx) {
	for i, k := range f.keys {
		v, ok := f.st.shard(k).GetTx(tx, int(k))
		n, _ := v.(int64)
		f.vals[i], f.oks[i] = n, ok
	}
}

// MPut stores vals[i] under keys[i] for every key as one transaction —
// Put compositions across shards, atomic through outheritance (flat
// nesting on the classic engines). vals must be at least len(keys) long.
// In unsound mode every entry is stored in its own transaction. It
// reports whether it committed (see MGet).
//
// With a WAL the whole composition is logged as one logical record in
// two phases: the transaction runs under every participant shard's
// commit lock, then — still under the locks — an intent record carrying
// the full effect list is appended to each participant and a commit
// marker to the coordinator (the lowest participant index). Replay
// applies the effects only when that evidence is complete, so a crash
// can never surface half an MPut.
func (f *Frame) MPut(keys, vals []int64) bool {
	for _, k := range keys {
		f.absolute(k)
	}
	f.keys, f.vals = keys, vals
	a0 := f.th.Stats.Aborts
	var err error
	if f.st.unsound {
		f.unsound(f.mputUnsound) // pieces count themselves (see MGet)
	} else if f.st.wal == nil {
		err = f.atomic(f.kind, f.mputFn)
		f.noteComposed(keys, a0)
	} else {
		f.wShards = f.wShards[:0]
		for _, k := range keys {
			f.insertShard(f.st.ShardOf(k))
		}
		f.lockShardsAbsolute(keys)
		err = f.atomic(f.kind, f.mputFn)
		if err == nil {
			f.effects = f.effects[:0]
			for i, k := range keys {
				f.effects = append(f.effects, wal.Effect{Shard: f.st.ShardOf(k), Key: k, Val: vals[i]})
			}
			f.logComposed()
		}
		f.unlockShards()
		if err == nil {
			f.syncShards()
		}
		f.noteComposed(keys, a0)
	}
	f.keys, f.vals = nil, nil
	return err == nil
}

// mputBody is the transactional body of sound MPut: unlogged puts — the
// enclosing MPut logs the composition as one intent.
func (f *Frame) mputBody() {
	for i, k := range f.keys {
		f.st.shard(k).Put(f.th, int(k), f.vals[i])
	}
}

// mputUnsound is the split body of unsound MPut. The pieces go through
// the logging Put wrapper, so with a WAL each piece is logged as an
// independent single-shard record — a crash between pieces leaves the
// tear on disk, which is exactly what the crashtest ablation asserts
// the audits catch.
func (f *Frame) mputUnsound() {
	for i := range f.keys {
		f.Put(f.keys[i], f.vals[i])
	}
}

// CompareAndMove atomically relocates a value between keys — across
// shards, in the general case: if the value under from equals expect and
// to is absent, it removes from and stores the value under to, reporting
// whether the move happened. One composed transaction (Get, Get, Remove,
// Put children); in unsound mode the four elementary operations run as
// separate transactions, so audits can observe the value in flight (or
// duplicated) between them. It reports false both when the move was
// refused and when the retry budget ran out (see MGet) — either way no
// move happened.
func (f *Frame) CompareAndMove(from, to, expect int64) bool {
	if from == to {
		return false
	}
	f.absolute(from)
	f.absolute(to)
	f.from, f.to, f.expect = from, to, expect
	f.camKeys[0], f.camKeys[1] = from, to
	a0 := f.th.Stats.Aborts
	if f.st.unsound {
		f.unsound(f.camUnsound) // pieces count themselves (see MGet)
	} else if f.st.wal == nil {
		err := f.atomic(f.kind, f.camFn)
		f.noteComposed(f.camKeys[:], a0)
		if err != nil {
			return false
		}
	} else {
		// Both shards' commit locks are taken up front — whether the
		// move happens is only known inside the transaction — but a
		// refused move mutates nothing and writes no record.
		f.wShards = f.wShards[:0]
		f.insertShard(f.st.ShardOf(from))
		f.insertShard(f.st.ShardOf(to))
		f.lockShardsAbsolute(f.camKeys[:])
		err := f.atomic(f.kind, f.camFn)
		if err == nil && f.moved {
			// The moved value is expect by construction (the move only
			// happens when the source holds it), so the redo effects are
			// concrete blind writes: remove(from), put(to, expect).
			f.effects = f.effects[:0]
			f.effects = append(f.effects,
				wal.Effect{Remove: true, Shard: f.st.ShardOf(from), Key: from},
				wal.Effect{Shard: f.st.ShardOf(to), Key: to, Val: expect})
			f.logComposed()
		}
		f.unlockShards()
		if err == nil && f.moved {
			f.syncShards()
		}
		f.noteComposed(f.camKeys[:], a0)
		if err != nil {
			return false
		}
	}
	return f.moved
}

// camBody is the transactional body of sound CompareAndMove: unlogged
// elementary pieces — the enclosing operation logs the composition as
// one intent (and holds the commit locks, so the logging wrappers would
// self-deadlock here).
func (f *Frame) camBody() {
	f.moved = false
	v, ok := f.getRaw(f.from)
	if !ok || v != f.expect {
		return
	}
	if _, occupied := f.getRaw(f.to); occupied {
		return
	}
	f.removeRaw(f.from)
	f.putRaw(f.to, v)
	f.moved = true
}

// camUnsound is the split body of unsound CompareAndMove: the four
// elementary pieces run as separate transactions through the logging
// wrappers, so each logs its own record (see mputUnsound).
func (f *Frame) camUnsound() {
	f.moved = false
	v, ok := f.Get(f.from)
	if !ok || v != f.expect {
		return
	}
	if _, occupied := f.Get(f.to); occupied {
		return
	}
	f.Remove(f.from)
	f.Put(f.to, v)
	f.moved = true
}

// insertShard adds sh to the frame's sorted unique participant set.
func (f *Frame) insertShard(sh int) {
	for i, s := range f.wShards {
		if s == sh {
			return
		}
		if s > sh {
			f.wShards = append(f.wShards, 0)
			copy(f.wShards[i+1:], f.wShards[i:])
			f.wShards[i] = sh
			return
		}
	}
	f.wShards = append(f.wShards, sh)
}

// lockShards takes the participants' commit locks in ascending index
// order — the one global order every multi-shard lock site uses
// (Store.Snapshot included), so composed operations cannot deadlock.
func (f *Frame) lockShards() {
	for _, sh := range f.wShards {
		f.st.wal.Lock(sh)
	}
}

// unlockShards releases in reverse.
func (f *Frame) unlockShards() {
	for i := len(f.wShards) - 1; i >= 0; i-- {
		f.st.wal.Unlock(f.wShards[i])
	}
}

// logComposed appends the committed composition's two-phase record set
// under the held commit locks: the intent (full effect list, each
// effect tagged with its shard) on every participant, then the commit
// marker on the coordinator — the lowest participant index, whose sync
// target advances to the marker. The per-participant sync targets land
// in f.wSeqs for syncShards.
func (f *Frame) logComposed() {
	w := f.st.wal
	txid := w.NextTxID()
	f.wSeqs = f.wSeqs[:0]
	for _, sh := range f.wShards {
		f.wSeqs = append(f.wSeqs, w.AppendIntent(sh, txid, f.effects))
	}
	f.wSeqs[0] = w.AppendCommit(f.wShards[0], txid)
}

// syncShards group-commits every participant through its sync target,
// after the commit locks are released (wal.Log.Sync must not run under
// them).
func (f *Frame) syncShards() {
	for i, sh := range f.wShards {
		if err := f.st.wal.Sync(sh, f.wSeqs[i]); err != nil && f.walErr == nil {
			f.walErr = err
		}
	}
}
