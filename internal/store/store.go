package store

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"sync/atomic"

	"oestm/internal/boost"
	"oestm/internal/eec"
	"oestm/internal/stm"
	"oestm/internal/wal"
)

// DefaultShards is the shard count used when Config.Shards is zero.
const DefaultShards = 16

// Config parameterises a Store. The zero value gives DefaultShards sound
// shards.
type Config struct {
	// Shards is the shard count; it must be a power of two (0 means
	// DefaultShards). More shards shrink the keys that collide on one
	// skip list, not the atomicity unit: composed operations span shards
	// freely.
	Shards int
	// Unsound splits every composed operation into separate top-level
	// transactions, deliberately breaking cross-shard atomicity (the
	// checker-validation baseline; see the package comment).
	Unsound bool
	// WAL, when non-nil, makes every committed mutation durable: frames
	// append to the shard's log under its commit lock and acknowledge
	// only after group commit (see internal/wal). The log's shard count
	// must equal the store's.
	WAL *wal.Log
	// Boost selects the commutative hot-key path's mode for Add/MAdd
	// (see BoostMode; the zero value is BoostOff). Unsound mode forces
	// it off — split transactions are the point there.
	Boost BoostMode
}

// Store is a sharded transactional key-value map: int64 keys hashed onto
// power-of-two shards, int64 values. All operations go through a Frame
// (one per connection/thread).
type Store struct {
	shards  []*eec.SkipListMap
	shift   uint // key hash >> shift = shard index
	unsound bool
	wal     *wal.Log // nil = in-memory only

	// Commutative hot-key path (see hot.go): the boosting domain whose
	// abstract locks guard promoted counters, the per-shard hot tables,
	// and the exported counters behind BoostStats.
	boostMode  BoostMode
	bt         *boost.TM
	hot        []shardHot
	adds       atomic.Uint64
	boostedOps atomic.Uint64

	hotPromotions atomic.Uint64
	hotDemotions  atomic.Uint64

	// sc is the per-shard request-path telemetry (see shardCounters),
	// surfaced through the stats payload's per-shard block.
	sc []shardCounters
}

// shardCounters is one shard's request-path telemetry: key-operations
// routed to the shard, and aborted transaction attempts attributed to
// it (a composed operation's aborts land on its first key's shard — see
// Frame.noteComposed). Padded out to a cache line of its own so shards
// hammering their counters don't false-share with their neighbours.
type shardCounters struct {
	ops    atomic.Uint64
	aborts atomic.Uint64
	_      [48]byte
}

// shardMix is the Fibonacci hashing multiplier (2^64/φ): sequential keys
// spread over all shards, so a hot key *range* still fans out.
const shardMix = 0x9e3779b97f4a7c15

// New builds an empty store. It panics if cfg.Shards is not a power of
// two.
func New(cfg Config) *Store {
	n := cfg.Shards
	if n == 0 {
		n = DefaultShards
	}
	if n < 1 || n&(n-1) != 0 {
		panic(fmt.Sprintf("store: shard count %d is not a power of two", n))
	}
	if cfg.WAL != nil && cfg.WAL.Shards() != n {
		panic(fmt.Sprintf("store: wal has %d shards, store has %d", cfg.WAL.Shards(), n))
	}
	s := &Store{
		shards:    make([]*eec.SkipListMap, n),
		shift:     uint(64 - bits.Len(uint(n-1))),
		unsound:   cfg.Unsound,
		wal:       cfg.WAL,
		boostMode: cfg.Boost,
		bt:        boost.New(true),
		hot:       make([]shardHot, n),
		sc:        make([]shardCounters, n),
	}
	if cfg.Unsound {
		s.boostMode = BoostOff
	}
	for i := range s.shards {
		s.shards[i] = eec.NewSkipListMap()
	}
	return s
}

// Shards returns the shard count.
func (s *Store) Shards() int { return len(s.shards) }

// Unsound reports whether composed operations are (deliberately) split
// into separate transactions.
func (s *Store) Unsound() bool { return s.unsound }

// ShardOf returns the shard index serving key.
func (s *Store) ShardOf(key int64) int {
	if len(s.shards) == 1 {
		return 0
	}
	return int((uint64(key) * shardMix) >> s.shift)
}

// shard returns the map serving key.
func (s *Store) shard(key int64) *eec.SkipListMap {
	return s.shards[s.ShardOf(key)]
}

// ValidKey reports whether key can be stored: the two extreme int64
// values are the skip lists' head/tail sentinels and are rejected at the
// protocol boundary.
func ValidKey(key int64) bool {
	return key != math.MinInt64 && key != math.MaxInt64
}

// WAL returns the store's log (nil for an in-memory store).
func (s *Store) WAL() *wal.Log { return s.wal }

// ShardCounters snapshots shard i's telemetry: key-operations routed to
// the shard, aborted attempts attributed to it, and the number of
// currently promoted hot counters (a gauge, not a cumulative count).
func (s *Store) ShardCounters(i int) (ops, aborts, hotKeys uint64) {
	if n := s.hot[i].count.Load(); n > 0 {
		hotKeys = uint64(n)
	}
	return s.sc[i].ops.Load(), s.sc[i].aborts.Load(), hotKeys
}

// Recover replays a recovered log into the store's shards — fresh maps
// only, before any frame serves requests. Replay order preserves each
// key's per-shard commit order, and every surviving intent's effects
// belong to a fully committed composition (wal.Replay.Apply), so the
// recovered keyspace never shows a torn composition. th drives the
// replay transactions; it is the caller's (the server boots one thread
// for this).
func (s *Store) Recover(th *stm.Thread, rp *wal.Replay) {
	rp.Apply(
		func(key, val int64) { s.shard(key).Put(th, int(key), val) },
		func(key int64) { s.shard(key).Remove(th, int(key)) },
		func(key, delta int64) {
			m := s.shard(key)
			var cur int64
			if v, ok := m.Get(th, int(key)); ok {
				cur, _ = v.(int64)
			}
			m.Put(th, int(key), cur+delta)
		},
	)
}

// Snapshot writes one snapshot generation through the store's log: it
// takes every shard's commit lock at once (ascending, the same order
// composed operations use), records each shard's log position, dumps
// each shard's contents in one atomic read transaction, releases the
// locks, and hands the cut to wal.Log.WriteSnapshots. Holding all the
// commit locks means no mutation is mid-append anywhere, so a composed
// operation is entirely inside or entirely outside the generation —
// the property recovery's composition accounting relies on. A no-op
// without a log.
func (s *Store) Snapshot(th *stm.Thread) error {
	w := s.wal
	if w == nil {
		return nil
	}
	n := len(s.shards)
	seqs := make([]uint64, n)
	entries := make([][]wal.Entry, n)
	for i := 0; i < n; i++ {
		w.Lock(i)
	}
	for i := 0; i < n; i++ {
		seqs[i] = w.SeqOf(i)
		entries[i] = s.dumpShard(th, i)
	}
	for i := n - 1; i >= 0; i-- {
		w.Unlock(i)
	}
	return w.WriteSnapshots(seqs, entries)
}

// dumpShard reads one shard's full contents in one atomic snapshot,
// folding the pending overlay of every promoted counter into its entry.
// The caller holds every shard's commit lock, and overlays are only
// mutated under their shard's commit lock, so the overlay values belong
// to exactly the log cut the snapshot records: an add logged before the
// cut is in its overlay (or folded base) here, one logged after is not.
func (s *Store) dumpShard(th *stm.Thread, i int) []wal.Entry {
	h := &s.hot[i]
	var overlays map[int64]int64
	if h.count.Load() != 0 {
		h.mu.RLock()
		for k, hc := range h.keys {
			// exists with a zero overlay still matters: a counter created
			// by deltas that netted to zero is present at 0, and the
			// snapshot must record that presence if the base is absent.
			if hc.overlay != 0 || hc.exists {
				if overlays == nil {
					overlays = make(map[int64]int64)
				}
				overlays[k] = hc.overlay
			}
		}
		h.mu.RUnlock()
	}
	var out []wal.Entry
	s.shards[i].Range(th, func(key int, val any) bool {
		n, _ := val.(int64)
		if d, ok := overlays[int64(key)]; ok {
			n += d
			delete(overlays, int64(key))
		}
		out = append(out, wal.Entry{Key: int64(key), Val: n})
		return true
	})
	// Promoted counters with no base entry yet: their overlay is the
	// whole value. Sorted so the snapshot bytes stay deterministic for a
	// given state.
	if len(overlays) > 0 {
		start := len(out)
		for k, d := range overlays {
			out = append(out, wal.Entry{Key: k, Val: d})
		}
		tail := out[start:]
		sort.Slice(tail, func(a, b int) bool { return tail[a].Key < tail[b].Key })
	}
	return out
}
