package store

import (
	"fmt"
	"math"
	"math/bits"

	"oestm/internal/eec"
)

// DefaultShards is the shard count used when Config.Shards is zero.
const DefaultShards = 16

// Config parameterises a Store. The zero value gives DefaultShards sound
// shards.
type Config struct {
	// Shards is the shard count; it must be a power of two (0 means
	// DefaultShards). More shards shrink the keys that collide on one
	// skip list, not the atomicity unit: composed operations span shards
	// freely.
	Shards int
	// Unsound splits every composed operation into separate top-level
	// transactions, deliberately breaking cross-shard atomicity (the
	// checker-validation baseline; see the package comment).
	Unsound bool
}

// Store is a sharded transactional key-value map: int64 keys hashed onto
// power-of-two shards, int64 values. All operations go through a Frame
// (one per connection/thread).
type Store struct {
	shards  []*eec.SkipListMap
	shift   uint // key hash >> shift = shard index
	unsound bool
}

// shardMix is the Fibonacci hashing multiplier (2^64/φ): sequential keys
// spread over all shards, so a hot key *range* still fans out.
const shardMix = 0x9e3779b97f4a7c15

// New builds an empty store. It panics if cfg.Shards is not a power of
// two.
func New(cfg Config) *Store {
	n := cfg.Shards
	if n == 0 {
		n = DefaultShards
	}
	if n < 1 || n&(n-1) != 0 {
		panic(fmt.Sprintf("store: shard count %d is not a power of two", n))
	}
	s := &Store{
		shards:  make([]*eec.SkipListMap, n),
		shift:   uint(64 - bits.Len(uint(n-1))),
		unsound: cfg.Unsound,
	}
	for i := range s.shards {
		s.shards[i] = eec.NewSkipListMap()
	}
	return s
}

// Shards returns the shard count.
func (s *Store) Shards() int { return len(s.shards) }

// Unsound reports whether composed operations are (deliberately) split
// into separate transactions.
func (s *Store) Unsound() bool { return s.unsound }

// ShardOf returns the shard index serving key.
func (s *Store) ShardOf(key int64) int {
	if len(s.shards) == 1 {
		return 0
	}
	return int((uint64(key) * shardMix) >> s.shift)
}

// shard returns the map serving key.
func (s *Store) shard(key int64) *eec.SkipListMap {
	return s.shards[s.ShardOf(key)]
}

// ValidKey reports whether key can be stored: the two extreme int64
// values are the skip lists' head/tail sentinels and are rejected at the
// protocol boundary.
func ValidKey(key int64) bool {
	return key != math.MinInt64 && key != math.MaxInt64
}
