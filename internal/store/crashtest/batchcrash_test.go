// Batch-mode crash cases: the speculative batch executor must leave the
// same kind of write-ahead log behind as goroutine-per-connection
// execution — complete compositions only, records in arrival order —
// because recovery is mode-blind: it replays whatever is on disk into a
// fresh store. These tests SIGKILL a -exec=batch child mid-pipeline and
// pin both halves of that contract.
package crashtest

import (
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"oestm/internal/wire"
)

// TestBatchCrashCommitOrder pins that WAL commit order equals batch
// order. One connection streams pipelined bursts of strictly sequential
// puts over a tiny key set, so every batch carries several writes to
// every key; the executor speculates them in parallel but must log each
// key's writes in submission order. After the kill, each recovered key
// must hold a value at least as new as its last acknowledged write and
// no newer than its last submitted one — a stale value under an
// acknowledged newer write is exactly what out-of-order commit (a
// speculative attempt's value logged instead of the final one, or batch
// slots committed out of sequence) would leave on disk.
func TestBatchCrashCommitOrder(t *testing.T) {
	const (
		nkeys     = 4
		depth     = 16 // each burst writes each key depth/nkeys times
		killAfter = 200
	)
	dir := t.TempDir()
	ch := spawnExec(t, "oestm", 8, false, dir, "batch")

	lastAcked := make([]int64, nkeys)
	maxSubmitted := make([]int64, nkeys)
	var ackedBursts atomic.Int64
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		cl := dialChild(t, ch)
		defer cl.Close()
		reqs := make([]wire.Request, depth)
		resps := make([]wire.Response, depth)
		v := int64(0)
		for {
			for i := range reqs {
				v++
				reqs[i] = wire.Request{Op: wire.OpPut, Key: v % nkeys, Val: v}
				maxSubmitted[v%nkeys] = v // owned by this goroutine until wg.Wait
			}
			if err := cl.Pipeline(reqs, resps); err != nil {
				return // the kill; the burst stays in flight
			}
			for i := range reqs {
				lastAcked[reqs[i].Key] = reqs[i].Val
			}
			ackedBursts.Add(1)
		}
	}()
	deadline := time.Now().Add(30 * time.Second)
	for ackedBursts.Load() < killAfter {
		if time.Now().After(deadline) {
			ch.kill()
			wg.Wait()
			t.Fatalf("only %d bursts acknowledged before deadline", ackedBursts.Load())
		}
		time.Sleep(time.Millisecond)
	}
	ch.kill()
	wg.Wait()

	f, rp, err := Recovered("oestm", dir)
	if err != nil {
		t.Fatal(err)
	}
	if kept := KeptRecords(rp); kept < killAfter*depth {
		t.Fatalf("vacuous crash: %d records survived, %d were acknowledged", kept, killAfter*depth)
	}
	for k := int64(0); k < nkeys; k++ {
		got, ok := f.Get(k)
		if !ok {
			t.Errorf("key %d missing after recovery; last acknowledged value %d", k, lastAcked[k])
			continue
		}
		if got%nkeys != k {
			t.Errorf("key %d = %d after recovery: value belongs to key %d", k, got, got%nkeys)
		}
		if got < lastAcked[k] {
			t.Errorf("key %d = %d after recovery, older than acknowledged %d: batch commit order diverged from submission order",
				k, got, lastAcked[k])
		}
		if got > maxSubmitted[k] {
			t.Errorf("key %d = %d after recovery, newer than anything submitted (%d)", k, got, maxSubmitted[k])
		}
	}
}

// TestBatchCrashRecoveryTokens is the token-conservation crash audit
// against a batch-mode child: pipelined CompareAndMove bursts (with
// interleaved MGet snapshot audits) on every composing engine, SIGKILL
// after a fixed acknowledged budget, then replay. The recovered keyspace
// must conserve tokens exactly — batch execution stages cross-shard
// compositions through the same two-phase intent/commit records as conn
// mode, so a crash can never land half a move on disk.
func TestBatchCrashRecoveryTokens(t *testing.T) {
	const (
		keys      = 64
		workers   = 4
		depth     = 8
		killAfter = 400
	)
	for _, eng := range []string{"oestm", "lsa", "tl2", "swisstm"} {
		t.Run(eng, func(t *testing.T) {
			dir := t.TempDir()
			ch := spawnExec(t, eng, 8, false, dir, "batch")

			seeder := dialChild(t, ch)
			for k := 0; k < keys; k += 2 {
				if _, err := seeder.Put(int64(k), TokenVal); err != nil {
					t.Fatalf("seed put %d: %v", k, err)
				}
			}
			seeder.Close()

			all := make([]int64, keys)
			for k := range all {
				all[k] = int64(k)
			}
			var (
				acked atomic.Int64
				viol  atomic.Uint64
				wg    sync.WaitGroup
			)
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					cl := dialChild(t, ch)
					defer cl.Close()
					rng := rand.New(rand.NewPCG(0xba7c, uint64(w)))
					reqs := make([]wire.Request, depth)
					resps := make([]wire.Response, depth)
					for {
						for i := range reqs {
							q := &reqs[i]
							q.Keys = q.Keys[:0]
							if rng.IntN(100) < 10 {
								q.Op = wire.OpMGet
								q.Keys = append(q.Keys, all...)
							} else {
								q.Op = wire.OpCompareAndMove
								q.Key = int64(rng.IntN(keys))
								q.To = int64(rng.IntN(keys))
								q.Val = TokenVal
							}
						}
						if err := cl.Pipeline(reqs, resps); err != nil {
							return // the kill
						}
						for i := range resps {
							if resps[i].Status == wire.StatusErr {
								if resps[i].Err != wire.ErrRetryExhausted {
									viol.Add(1)
								}
								continue
							}
							if reqs[i].Op == wire.OpCompareAndMove {
								acked.Add(1)
								continue
							}
							present := 0
							for k := range all {
								if resps[i].Present[k] {
									present++
									if resps[i].Vals[k] != TokenVal {
										viol.Add(1)
									}
								}
							}
							if present != keys/2 {
								viol.Add(1)
							}
						}
					}
				}(w)
			}
			deadline := time.Now().Add(30 * time.Second)
			for acked.Load() < killAfter {
				if time.Now().After(deadline) {
					ch.kill()
					wg.Wait()
					t.Fatalf("only %d moves acknowledged before deadline", acked.Load())
				}
				time.Sleep(time.Millisecond)
			}
			ch.kill()
			wg.Wait()

			if v := viol.Load(); v != 0 {
				t.Errorf("%d torn or failed observations live under batch execution", v)
			}
			f, rp, err := Recovered(eng, dir)
			if err != nil {
				t.Fatalf("recover: %v", err)
			}
			if kept := KeptRecords(rp); kept <= keys/2 {
				t.Fatalf("vacuous crash: only %d records survived", kept)
			}
			if rec, present := AuditTokens(f, keys); rec != 0 {
				t.Errorf("%d violations in the recovered keyspace (%d tokens; aborted compositions: %d)",
					rec, present, len(rp.Aborted))
			}
		})
	}
}
