// Crash-recovery tests: SIGKILL the child server mid-load, replay the
// WAL it left, audit the invariants. See the package comment for the
// architecture (re-exec child, deterministic kill thresholds, seeded
// workers).
package crashtest

import (
	"bufio"
	"fmt"
	"math/rand/v2"
	"os"
	"os/exec"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"oestm/internal/server"
	"oestm/internal/wal"
	"oestm/internal/wire"
)

func TestMain(m *testing.M) {
	if ChildMain() {
		return // unreachable (ChildMain blocks), but keeps the contract clear
	}
	runtime.GOMAXPROCS(8)
	os.Exit(m.Run())
}

// child is a running crash-target server process.
type child struct {
	cmd  *exec.Cmd
	addr string
	dir  string // its WAL directory
}

// spawn re-executes the test binary as a crash-target server and waits
// for its address line.
func spawn(t *testing.T, engine string, shards int, unsound bool, dir string) *child {
	t.Helper()
	return spawnExec(t, engine, shards, unsound, dir, "")
}

// spawnExec is spawn with an explicit execution model ("" = the server
// default, conn; "batch" = the speculative batch executor).
func spawnExec(t *testing.T, engine string, shards int, unsound bool, dir, execMode string) *child {
	t.Helper()
	return spawnBoost(t, engine, shards, unsound, dir, execMode, "")
}

// spawnBoost is spawnExec with an explicit boost mode for the
// commutative hot-key path ("" = off, the crash children's default).
func spawnBoost(t *testing.T, engine string, shards int, unsound bool, dir, execMode, boost string) *child {
	t.Helper()
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(),
		envChild+"=1",
		envEngine+"="+engine,
		fmt.Sprintf("%s=%d", envShards, shards),
		envWALDir+"="+dir,
		fmt.Sprintf("%s=%d", envRetries, 500),
		fmt.Sprintf("%s=%d", envUnsound, b2i(unsound)),
		envSnapMS+"=0",
		envExec+"="+execMode,
		envBoost+"="+boost,
	)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	c := &child{cmd: cmd, dir: dir}
	t.Cleanup(func() { c.kill() })
	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		if a, ok := strings.CutPrefix(sc.Text(), addrPrefix); ok {
			c.addr = a
			return c
		}
	}
	cmd.Process.Kill()
	cmd.Wait()
	t.Fatalf("child exited before printing an address (scan err: %v)", sc.Err())
	return nil
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

// kill SIGKILLs the child — the crash under test — and reaps it. Safe
// to call twice.
func (c *child) kill() {
	if c.cmd.ProcessState == nil {
		c.cmd.Process.Kill()
		c.cmd.Wait()
	}
}

// dialChild connects to the child, retrying briefly (the address was
// printed before accept loops necessarily scheduled).
func dialChild(t *testing.T, c *child) *server.Client {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		cl, err := server.DialTimeout(c.addr, time.Second)
		if err == nil {
			return cl
		}
		if time.Now().After(deadline) {
			t.Fatalf("dial %s: %v", c.addr, err)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// ignorable reports whether a load-worker error is expected traffic
// noise rather than a test failure: retry-budget exhaustion (the
// ablations' liveness guard) keeps the worker going, anything else —
// the kill tearing the connection down — ends it cleanly.
func ignorable(err error) bool {
	pe, ok := wire.IsProtocolError(err)
	return ok && pe.Code == wire.ErrRetryExhausted
}

// tokenCrash is the core scenario: seed keys/2 tokens, hammer the child
// with CompareAndMove traffic (10% of steps audit the live keyspace
// with an MGet snapshot), SIGKILL it once killAfter operations were
// acknowledged, and recover. It returns the live violations the audits
// observed, the recovered-keyspace violations, and the replay.
func tokenCrash(t *testing.T, engine string, unsound bool, keys, workers, killAfter int, seed uint64) (liveViol uint64, recViol int, rp *wal.Replay) {
	t.Helper()
	dir := t.TempDir()
	ch := spawn(t, engine, 8, unsound, dir)

	seeder := dialChild(t, ch)
	for k := 0; k < keys; k += 2 {
		if _, err := seeder.Put(int64(k), TokenVal); err != nil {
			t.Fatalf("seed put %d: %v", k, err)
		}
	}
	seeder.Close()

	var (
		acked atomic.Int64
		viol  atomic.Uint64
		wg    sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cl := dialChild(t, ch)
			defer cl.Close()
			rng := rand.New(rand.NewPCG(seed, uint64(w)))
			all := make([]int64, keys)
			for k := range all {
				all[k] = int64(k)
			}
			for {
				if rng.IntN(100) < 10 {
					vals, oks, err := cl.MGet(all)
					if err != nil {
						if ignorable(err) {
							continue
						}
						return // the kill
					}
					bad := uint64(0)
					present := 0
					for k := range vals {
						if oks[k] {
							present++
							if vals[k] != TokenVal {
								bad++
							}
						}
					}
					if present != keys/2 {
						bad++
					}
					viol.Add(bad)
					continue
				}
				_, err := cl.CompareAndMove(int64(rng.IntN(keys)), int64(rng.IntN(keys)), TokenVal)
				if err != nil {
					if ignorable(err) {
						continue
					}
					return // the kill
				}
				acked.Add(1)
			}
		}(w)
	}

	// The deterministic kill point: the crash lands after exactly (at
	// least) killAfter acknowledged — hence durable — operations.
	deadline := time.Now().Add(30 * time.Second)
	for acked.Load() < int64(killAfter) {
		if time.Now().After(deadline) {
			ch.kill()
			wg.Wait()
			t.Fatalf("only %d ops acknowledged before deadline", acked.Load())
		}
		time.Sleep(time.Millisecond)
	}
	ch.kill()
	wg.Wait()

	f, rp, err := Recovered(engine, dir)
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if kept := KeptRecords(rp); kept <= keys/2 {
		t.Fatalf("vacuous crash: only %d records survived (seeds alone are %d)", kept, keys/2)
	}
	recViol, _ = AuditTokens(f, keys)
	return viol.Load(), recViol, rp
}

// TestCrashRecoveryComposingEngines: on every composing engine, a
// SIGKILL mid-load must lose nothing it acknowledged and tear nothing —
// zero violations live (atomic snapshots during load) and zero in the
// recovered keyspace (token count and values exact after replay).
func TestCrashRecoveryComposingEngines(t *testing.T) {
	for _, eng := range []string{"oestm", "lsa", "tl2", "swisstm"} {
		t.Run(eng, func(t *testing.T) {
			live, rec, rp := tokenCrash(t, eng, false, 64, 4, 400, 0xced5)
			if live != 0 {
				t.Errorf("%d torn states observed live on a composing engine", live)
			}
			if rec != 0 {
				t.Errorf("%d violations in the recovered keyspace (aborted compositions: %d)", rec, len(rp.Aborted))
			}
		})
	}
}

// TestUnsoundCrashViolates pins that the audit catches real tearing:
// with compositions split into separately logged transactions, the
// recovered keyspace is required to violate token conservation —
// concurrent split CompareAndMoves duplicate tokens (two workers read
// the same source, pass their destination checks, and each puts the
// token somewhere else) and the pieces land on disk individually, so
// the crash preserves the tear. The duplication needs two workers on
// the SAME source with DIFFERENT destinations inside the split window,
// so this case runs a deliberately tiny keyspace at 2× worker
// oversubscription — maximal source collisions — with the usual
// escalation ladder on top.
func TestUnsoundCrashViolates(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-dependent multi-process test")
	}
	for attempt := 0; attempt < 5; attempt++ {
		_, rec, _ := tokenCrash(t, "oestm", true, 8, 8, 400+400*attempt, uint64(0xbad0+attempt))
		if rec > 0 {
			return
		}
	}
	t.Error("unsound mode never left a torn state in the recovered keyspace; the ablation (or the audit) has gone soft")
}

// TestESTMCrashRecoveredClean documents and pins a finding of the
// durability layer: the estm ablation cannot tear under it. estm's
// violation channel is a released-read race — a child's reads lose
// their protection at child commit, so a CONCURRENT WRITER can slip a
// conflicting commit under the parent (the live checkers in
// internal/store and internal/server pin that it fires, WAL off). The
// WAL's commit-lock protocol serializes every logged mutator per
// participant shard for the whole composed transaction, which excludes
// exactly that writer; and since child writes stay buffered in the
// top-level transaction until its commit on every engine, lock-free
// snapshot readers cannot observe mid-composition states either. The
// crash suite therefore requires estm to come out CLEAN — live and
// recovered — under durability, and keeps the unsound ablation (whose
// split pieces are locked and logged individually, re-opening the
// races) as the required-fire checker for the recovered keyspace
// (TestUnsoundCrashViolates). If this test ever observes a tear, the
// commit-lock serialization has been weakened — which would also break
// the two-phase logging protocol's assumptions — so a failure here is
// a durability bug, not a checker gone soft.
func TestESTMCrashRecoveredClean(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-dependent multi-process test")
	}
	if v := shuttleViolations(t, "estm", 4000); v != 0 {
		t.Errorf("%d torn observations on estm under WAL serialization; the commit-lock protocol has been weakened", v)
	}
}

// shuttleViolations runs the focused two-key shuttle against engine
// until roughly audits snapshots have been taken, then SIGKILLs and
// recovers. It returns the live torn observations; whatever the kill
// interrupted, the recovered keyspace must still hold exactly one
// token (the log only ever carries complete compositions).
func shuttleViolations(t *testing.T, engine string, audits int) uint64 {
	t.Helper()
	dir := t.TempDir()
	ch := spawn(t, engine, 8, false, dir)

	seeder := dialChild(t, ch)
	if _, err := seeder.Put(0, TokenVal); err != nil {
		t.Fatalf("seed: %v", err)
	}
	seeder.Close()

	var (
		done    atomic.Bool
		audited atomic.Int64
		viol    atomic.Uint64
		wg      sync.WaitGroup
	)
	wg.Add(2)
	go func() { // the mover: shuttle the token 0 <-> 1 forever
		defer wg.Done()
		cl := dialChild(t, ch)
		defer cl.Close()
		at := int64(0)
		for !done.Load() {
			moved, err := cl.CompareAndMove(at, 1-at, TokenVal)
			if err != nil {
				if ignorable(err) {
					continue
				}
				return
			}
			if moved {
				at = 1 - at
			}
		}
	}()
	go func() { // the auditor: lock-free snapshots of both slots
		defer wg.Done()
		cl := dialChild(t, ch)
		defer cl.Close()
		keys := []int64{0, 1}
		for !done.Load() {
			vals, oks, err := cl.MGet(keys)
			if err != nil {
				if ignorable(err) {
					continue
				}
				return
			}
			present := 0
			for i := range vals {
				if oks[i] {
					present++
					if vals[i] != TokenVal {
						viol.Add(1)
					}
				}
			}
			if present != 1 {
				viol.Add(1)
			}
			audited.Add(1)
		}
	}()

	deadline := time.Now().Add(30 * time.Second)
	for audited.Load() < int64(audits) && viol.Load() == 0 {
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	done.Store(true)
	ch.kill()
	wg.Wait()

	f, _, err := Recovered(engine, dir)
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if v, present := AuditTokens(f, 2); v != 0 {
		t.Errorf("recovered keyspace torn on %s: %d violations, %d tokens (the log must only carry complete compositions)",
			engine, v, present)
	}
	return viol.Load()
}

// TestShuttleCleanOnComposingEngine: the same focused shuttle must stay
// clean on the outheriting engine — pinning that the estm detections
// above are the ablation's tearing, not an artifact of the harness.
func TestShuttleCleanOnComposingEngine(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-dependent multi-process test")
	}
	if v := shuttleViolations(t, "oestm", 4000); v != 0 {
		t.Errorf("%d torn observations on a composing engine", v)
	}
}

// addBurst is the SIGKILL-mid-add-burst scenario: workers blast
// positive integer deltas at a small hot-key set — 70% single-key Add,
// 30% cross-shard MAdd over three keys — tracking per-key acknowledged
// sums and each worker's in-flight deltas. Once killAfter operations
// are acknowledged the child is SIGKILLed and the WAL recovered; every
// key must then hold at least its acknowledged sum (deltas are
// positive, so a lost acknowledged add shows as a shortfall) and at
// most that plus the deltas in flight at the kill (logged but
// unacknowledged is allowed, lost or duplicated is not).
func addBurst(t *testing.T, engine, execMode, boost string, killAfter int, seed uint64) {
	t.Helper()
	const nkeys = 8
	const workers = 4
	dir := t.TempDir()
	ch := spawnBoost(t, engine, 8, false, dir, execMode, boost)

	var (
		acked   [nkeys]atomic.Int64
		pending [workers][nkeys]int64 // owned by each worker until wg.Wait
		ops     atomic.Int64
		wg      sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cl := dialChild(t, ch)
			defer cl.Close()
			rng := rand.New(rand.NewPCG(seed, uint64(w)))
			keys := make([]int64, 3)
			deltas := make([]int64, 3)
			pend := &pending[w]
			for {
				if rng.IntN(100) < 70 {
					k := rng.IntN(nkeys)
					d := int64(rng.IntN(50) + 1)
					pend[k] = d
					err := cl.Add(int64(k), d)
					if err == nil {
						acked[k].Add(d)
						ops.Add(1)
					} else if !ignorable(err) {
						return // the kill: pend[k] stays in flight
					}
					pend[k] = 0 // retry exhaustion: not committed, not logged
					continue
				}
				base := rng.IntN(nkeys)
				for i := range keys {
					k := (base + i*3) % nkeys
					keys[i] = int64(k)
					deltas[i] = int64(rng.IntN(50) + 1)
					pend[k] += deltas[i]
				}
				err := cl.MAdd(keys, deltas)
				if err == nil {
					for i := range keys {
						acked[keys[i]].Add(deltas[i])
					}
					ops.Add(1)
				} else if !ignorable(err) {
					return // the kill: the madd's deltas stay in flight
				}
				for i := range keys {
					pend[keys[i]] = 0
				}
			}
		}(w)
	}

	deadline := time.Now().Add(30 * time.Second)
	for ops.Load() < int64(killAfter) {
		if time.Now().After(deadline) {
			ch.kill()
			wg.Wait()
			t.Fatalf("only %d add ops acknowledged before deadline", ops.Load())
		}
		time.Sleep(time.Millisecond)
	}
	// Non-vacuity: with boosting requested, the burst must actually have
	// run boosted before the crash lands.
	if boost == "on" {
		cl := dialChild(t, ch)
		var p wire.StatsPayload
		if err := cl.Stats(&p); err == nil && p.BoostedOps == 0 {
			t.Errorf("boost=on child served %d adds with zero boosted ops", p.Adds)
		}
		cl.Close()
	}
	ch.kill()
	wg.Wait()

	f, rp, err := Recovered(engine, dir)
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if kept := KeptRecords(rp); kept == 0 {
		t.Fatal("vacuous crash: no records survived")
	}
	for k := 0; k < nkeys; k++ {
		lower := acked[k].Load()
		upper := lower
		for w := 0; w < workers; w++ {
			upper += pending[w][k]
		}
		got, ok := f.Get(int64(k))
		if !ok {
			got = 0
		}
		if got < lower || got > upper {
			t.Errorf("key %d: recovered sum %d outside [acked %d, acked+inflight %d]", k, got, lower, upper)
		}
	}
}

// TestCrashRecoveryAddBurst: on every composing engine, a SIGKILL mid
// add-burst with the boosted hot-key path on must lose no acknowledged
// delta — the recovered sums are exact up to the in-flight window.
func TestCrashRecoveryAddBurst(t *testing.T) {
	for _, eng := range []string{"oestm", "lsa", "tl2", "swisstm"} {
		t.Run(eng, func(t *testing.T) {
			addBurst(t, eng, "", "on", 400, 0xadd0)
		})
	}
}

// TestCrashRecoveryAddBurstBatch runs the add burst through the
// speculative batch executor: blind delta entries commit through the
// applier and log as add records (plain) or delta effects (composed),
// and replay must reproduce the acknowledged sums just the same.
func TestCrashRecoveryAddBurstBatch(t *testing.T) {
	addBurst(t, "oestm", "batch", "", 400, 0xadd1)
}

// pairSum is the bank-account invariant of the MPut scenario.
const pairSum = int64(1000)

// TestCrashRecoveryPairSums: workers rebalance disjoint pairs with
// atomic MPuts ([a,b] -> [v, pairSum-v]); whatever the kill interrupts,
// every recovered pair must still be complete and sum to pairSum — a
// torn MPut on disk is exactly what the two-phase intent/commit
// protocol exists to prevent.
func TestCrashRecoveryPairSums(t *testing.T) {
	const (
		pairsPerWorker = 8
		workers        = 4
		killAfter      = 300
		base           = int64(100_000)
	)
	dir := t.TempDir()
	ch := spawn(t, "oestm", 8, false, dir)

	seeder := dialChild(t, ch)
	npairs := pairsPerWorker * workers
	for p := 0; p < npairs; p++ {
		a, b := base+int64(2*p), base+int64(2*p)+1
		if err := seeder.MPut([]int64{a, b}, []int64{pairSum, 0}); err != nil {
			t.Fatalf("seed pair %d: %v", p, err)
		}
	}
	seeder.Close()

	var (
		acked atomic.Int64
		wg    sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cl := dialChild(t, ch)
			defer cl.Close()
			rng := rand.New(rand.NewPCG(0x9a17, uint64(w)))
			for {
				p := w*pairsPerWorker + rng.IntN(pairsPerWorker) // disjoint ownership
				a, b := base+int64(2*p), base+int64(2*p)+1
				v := int64(rng.IntN(int(pairSum) + 1))
				if err := cl.MPut([]int64{a, b}, []int64{v, pairSum - v}); err != nil {
					if ignorable(err) {
						continue
					}
					return
				}
				acked.Add(1)
			}
		}(w)
	}
	deadline := time.Now().Add(30 * time.Second)
	for acked.Load() < killAfter {
		if time.Now().After(deadline) {
			ch.kill()
			wg.Wait()
			t.Fatalf("only %d MPuts acknowledged before deadline", acked.Load())
		}
		time.Sleep(time.Millisecond)
	}
	ch.kill()
	wg.Wait()

	f, rp, err := Recovered("oestm", dir)
	if err != nil {
		t.Fatal(err)
	}
	if kept := KeptRecords(rp); kept <= npairs {
		t.Fatalf("vacuous crash: %d records survived", kept)
	}
	vals := make([]int64, 2)
	oks := make([]bool, 2)
	for p := 0; p < npairs; p++ {
		a, b := base+int64(2*p), base+int64(2*p)+1
		if !f.MGet([]int64{a, b}, vals, oks) {
			t.Fatalf("pair %d: audit exhausted its budget", p)
		}
		if !oks[0] || !oks[1] {
			t.Errorf("pair %d: half missing after recovery (present: %v %v)", p, oks[0], oks[1])
			continue
		}
		if vals[0]+vals[1] != pairSum {
			t.Errorf("pair %d: sum %d after recovery, want %d", p, vals[0]+vals[1], pairSum)
		}
	}
}

// TestCrashRecoveryLastWrite: one connection issues strictly sequential
// puts; after the kill, every key must hold exactly its last
// acknowledged value — or the one write that was in flight when the
// crash hit (logged but unacknowledged is allowed; acknowledged but
// lost, or reordered, is not).
func TestCrashRecoveryLastWrite(t *testing.T) {
	const (
		nkeys     = 16
		killAfter = 500
	)
	dir := t.TempDir()
	ch := spawn(t, "oestm", 8, false, dir)

	lastAcked := make([]int64, nkeys)
	var pendingKey, pendingVal int64 = -1, 0
	var acked atomic.Int64
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		cl := dialChild(t, ch)
		defer cl.Close()
		v := int64(0)
		for {
			v++
			k := v % nkeys
			pendingKey, pendingVal = k, v // owned by this goroutine until wg.Wait
			if _, err := cl.Put(k, v); err != nil {
				return // the kill: (k, v) stays the in-flight write
			}
			lastAcked[k] = v
			acked.Add(1)
		}
	}()
	deadline := time.Now().Add(30 * time.Second)
	for acked.Load() < killAfter {
		if time.Now().After(deadline) {
			ch.kill()
			wg.Wait()
			t.Fatalf("only %d puts acknowledged before deadline", acked.Load())
		}
		time.Sleep(time.Millisecond)
	}
	ch.kill()
	wg.Wait()

	f, _, err := Recovered("oestm", dir)
	if err != nil {
		t.Fatal(err)
	}
	for k := int64(0); k < nkeys; k++ {
		got, ok := f.Get(k)
		if !ok {
			if lastAcked[k] == 0 {
				continue // never written (v starts at 1, key 0 lags one lap)
			}
			t.Errorf("key %d missing after recovery; last acknowledged value %d", k, lastAcked[k])
			continue
		}
		if got == lastAcked[k] || (k == pendingKey && got == pendingVal) {
			continue
		}
		t.Errorf("key %d = %d after recovery, want last acknowledged %d (in flight: key %d = %d)",
			k, got, lastAcked[k], pendingKey, pendingVal)
	}
}
