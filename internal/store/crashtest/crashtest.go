// Package crashtest is the durability counterpart of the store's
// atomicity checkers: it SIGKILLs a live compose-server mid-load,
// replays the write-ahead log the crash left behind, and audits the
// recovered keyspace against the workload's invariants (token
// conservation, pair sums, per-key last write). On every composing
// engine the recovered state must hold all of them; the estm and
// Unsound ablations are required to violate — the same
// must-catch-real-tearing discipline the in-memory checkers pin, pushed
// through a process boundary and a crash.
//
// The server under test runs as a child process (the test binary
// re-executed with CRASHTEST_CHILD set, dispatched by the package's
// TestMain through ChildMain), because a crash must take the page-cache
// contents and nothing else: an in-process "crash" cannot discard the
// store's memory, and a polite shutdown would flush the very tails the
// tests are about. Kill points are deterministic per case — a fixed
// acknowledged-operation threshold, with per-worker seeded generators —
// so a run reproduces its interleaving pressure even though the exact
// cut varies with scheduling.
package crashtest

import (
	"fmt"
	"os"
	"runtime"
	"strconv"
	"time"

	"oestm/internal/harness"
	"oestm/internal/server"
	"oestm/internal/stm"
	"oestm/internal/store"
	"oestm/internal/wal"
)

// TokenVal is the value every live token carries, mirroring the store
// checkers (small, so the workload stays box-free).
const TokenVal = int64(7)

// Child environment: ChildMain reads these, spawn (in the tests) sets
// them.
const (
	envChild   = "CRASHTEST_CHILD"
	envEngine  = "CRASHTEST_ENGINE"
	envShards  = "CRASHTEST_SHARDS"
	envWALDir  = "CRASHTEST_WALDIR"
	envUnsound = "CRASHTEST_UNSOUND"
	envRetries = "CRASHTEST_RETRIES"
	envSnapMS  = "CRASHTEST_SNAP_MS"
	envExec    = "CRASHTEST_EXEC"
	envBoost   = "CRASHTEST_BOOST"
)

// addrPrefix is the line the child prints once it is serving; the
// parent scans for it to learn the ephemeral address.
const addrPrefix = "CRASHTEST_ADDR="

// ChildMain is the crash-target server process: when the child
// environment is set it builds the configured compose-server, prints
// its address, and serves until killed (it never exits on its own —
// the parent's SIGKILL is the test). It reports whether it ran, so the
// package's TestMain can dispatch before any test executes.
func ChildMain() bool {
	if os.Getenv(envChild) != "1" {
		return false
	}
	// Oversubscribe the likely 1-CPU CI box: workers yield only between
	// transaction attempts, so on a single P the kill rarely lands inside
	// anything interesting (same rationale as the atomicity checkers).
	runtime.GOMAXPROCS(8)
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "crashtest child:", err)
		os.Exit(1)
	}
	eng, ok := harness.EngineByName(os.Getenv(envEngine))
	if !ok {
		fail(fmt.Errorf("unknown engine %q", os.Getenv(envEngine)))
	}
	shards, err := strconv.Atoi(os.Getenv(envShards))
	if err != nil {
		fail(err)
	}
	retries, err := strconv.Atoi(os.Getenv(envRetries))
	if err != nil {
		fail(err)
	}
	snapMS, err := strconv.Atoi(os.Getenv(envSnapMS))
	if err != nil {
		fail(err)
	}
	// Boost defaults off in the crash children (matching the server
	// Config zero value) so the established cases keep their exact
	// behavior; the add-burst case opts in explicitly.
	boost := store.BoostOff
	if b := os.Getenv(envBoost); b != "" {
		boost, err = store.ParseBoostMode(b)
		if err != nil {
			fail(err)
		}
	}
	srv, err := server.New(server.Config{
		Addr:    "127.0.0.1:0",
		Engine:  eng.Name,
		NewTM:   eng.New,
		Shards:  shards,
		Unsound: os.Getenv(envUnsound) == "1",
		// The retry budget ships from day one: under the ablations a torn
		// composition can corrupt a shard's structure and wedge a later
		// request in a permanent conflict loop — the budget turns that
		// into a typed error the workers tolerate.
		MaxRetries: retries,
		WALDir:     os.Getenv(envWALDir),
		// fsync off: acknowledged writes live in the page cache, which
		// SIGKILL does not touch — exactly the durability these tests
		// exercise — and the suite stays fast.
		Fsync:         false,
		SnapshotEvery: time.Duration(snapMS) * time.Millisecond,
		// The execution model under crash: conn when unset, batch for the
		// speculative-executor cases. Four workers regardless of the box so
		// batches genuinely interleave commit jobs with the kill.
		Exec:         os.Getenv(envExec),
		BatchWorkers: 4,
		Boost:        boost,
	})
	if err != nil {
		fail(err)
	}
	if err := srv.Start(); err != nil {
		fail(err)
	}
	fmt.Printf("%s%s\n", addrPrefix, srv.Addr())
	select {} // hold the server up until the parent's SIGKILL
}

// Recovered replays the WAL directory a crashed server left behind into
// a fresh engine-backed store and returns an audit frame over it plus
// the replay itself. It scans read-only (no truncation), so audits can
// re-run and corruption injections stay where the test put them.
func Recovered(engine, dir string) (*store.Frame, *wal.Replay, error) {
	eng, ok := harness.EngineByName(engine)
	if !ok {
		return nil, nil, fmt.Errorf("crashtest: unknown engine %q", engine)
	}
	rp, err := wal.Scan(dir)
	if err != nil {
		return nil, nil, err
	}
	st := store.New(store.Config{Shards: len(rp.Shards)})
	th := stm.NewThread(eng.New())
	st.Recover(th, rp)
	return st.NewFrame(th), rp, nil
}

// AuditTokens checks token conservation over keys [0, keys): every
// present value must be TokenVal and exactly keys/2 tokens must exist
// (the workload only relocates them). It returns the violation count
// and how many tokens were found.
func AuditTokens(f *store.Frame, keys int) (violations, present int) {
	all := make([]int64, keys)
	vals := make([]int64, keys)
	oks := make([]bool, keys)
	for k := range all {
		all[k] = int64(k)
	}
	if !f.MGet(all, vals, oks) {
		return 1, 0 // a quiesced audit must not exhaust its budget
	}
	for k := range all {
		if oks[k] {
			present++
			if vals[k] != TokenVal {
				violations++
			}
		}
	}
	if present != keys/2 {
		violations++
	}
	return violations, present
}

// KeptRecords sums the surviving log records across shards — the
// non-vacuity check: a crash audit over an empty log proves nothing.
func KeptRecords(rp *wal.Replay) int {
	n := 0
	for i := range rp.Shards {
		n += rp.Shards[i].Keep
	}
	return n
}
