// Torn-tail injection on top of a real crash: after the SIGKILL,
// corrupt the logs the way a dying disk or an interrupted write(2)
// would — slice bytes off one shard's tail, flip a bit in another's —
// and require recovery to stop cleanly at the last valid commit with a
// typed error, still satisfying the workload invariant (the
// consistent-cut rollback may discard unacknowledged suffixes, never
// conservation).
package crashtest

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func TestTornTailAfterCrash(t *testing.T) {
	const keys = 64
	dir := t.TempDir()
	ch := spawn(t, "oestm", 8, false, dir)

	seeder := dialChild(t, ch)
	for k := 0; k < keys; k += 2 {
		if _, err := seeder.Put(int64(k), TokenVal); err != nil {
			t.Fatalf("seed: %v", err)
		}
	}
	// Post-seed traffic: shuttle every token between its even home and
	// the odd slot next door, so each round relocates all of them and
	// every shard's file grows well past the seeds. Seeds therefore sit
	// at the front of every file and the injected cuts (and the rollback
	// cascade, which only ever cuts at intents) reach move records alone
	// — conservation stays exactly auditable.
	moved := 0
	for round := 0; round < 12; round++ {
		for k := 0; k < keys; k += 2 {
			from, to := int64(k), int64(k+1)
			if round%2 == 1 {
				from, to = to, from
			}
			ok, err := seeder.CompareAndMove(from, to, TokenVal)
			if err != nil {
				t.Fatalf("load: %v", err)
			}
			if ok {
				moved++
			}
		}
	}
	if moved != 12*keys/2 {
		t.Fatalf("only %d of %d moves happened; the workload has gone soft", moved, 12*keys/2)
	}
	seeder.Close()
	ch.kill()

	// Injection 1: tear the largest shard file mid-record.
	var largest string
	var largestSize int64
	for i := 0; i < 8; i++ {
		path := filepath.Join(dir, walShardFile(i))
		if info, err := os.Stat(path); err == nil && info.Size() > largestSize {
			largest, largestSize = path, info.Size()
		}
	}
	if largestSize < 16 {
		t.Fatalf("no shard file grew (largest %d bytes)", largestSize)
	}
	if err := os.Truncate(largest, largestSize-5); err != nil {
		t.Fatal(err)
	}
	// Injection 2: flip a bit in the final record of another shard.
	for i := 0; i < 8; i++ {
		path := filepath.Join(dir, walShardFile(i))
		if path == largest {
			continue
		}
		data, err := os.ReadFile(path)
		if err != nil || len(data) < 16 {
			continue
		}
		data[len(data)-1] ^= 0x20
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		break
	}

	f, rp, err := Recovered("oestm", dir)
	if err != nil {
		t.Fatalf("recover after injection: %v", err)
	}
	torn := 0
	for i := range rp.Shards {
		if ce := rp.Shards[i].Torn; ce != nil {
			torn++
			if ce.Shard != i || ce.Reason == "" {
				t.Errorf("shard %d: malformed corruption report %+v", i, ce)
			}
		}
	}
	if torn == 0 {
		t.Fatal("injected corruption went unreported")
	}
	// Every seed was acknowledged before the first move, so the cuts can
	// never reach them: at minimum the full token population survives.
	if kept := KeptRecords(rp); kept < keys/2 {
		t.Fatalf("recovery cut into acknowledged seeds: %d records kept", kept)
	}
	if v, present := AuditTokens(f, keys); v != 0 {
		t.Errorf("%d conservation violations after torn-tail recovery (%d tokens present)", v, present)
	}
}

// walShardFile mirrors internal/wal's shard file naming (the injection
// has to find the files; pinning the name here means a rename breaks
// this test loudly, not silently).
func walShardFile(i int) string {
	return fmt.Sprintf("shard-%04d.wal", i)
}
