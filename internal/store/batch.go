package store

import (
	"oestm/internal/eec"
	"oestm/internal/specexec"
	"oestm/internal/stm"
	"oestm/internal/wal"
)

// applyChunk bounds how many staged operations one apply transaction
// covers — the same amortization MPut gets from flat nesting, without
// letting a 256-transaction batch become one giant read/write set.
const applyChunk = 64

// batchOp is one shard-local unit of a staged batch: a plain
// put/remove/delta record, or a reference to a cross-shard composition
// (comp >= 0). A delta op adds val to whatever the key holds (creating
// it from zero) — the committed form of a speculative blind add.
type batchOp struct {
	key    int64
	val    int64
	remove bool
	delta  bool
	comp   int32 // -1 = plain; else index into Applier.comps
}

// comp is one cross-shard composition of a batch: its effect list
// (an [lo:hi) window of the Applier's effects arena — indices, not
// pointers, so arena growth cannot dangle), the coordinator shard, and
// the transaction id allocated under the participants' commit locks.
type comp struct {
	txid   uint64
	lo, hi int32
	coord  int32
}

// shardBatch is one store shard's staged slice of the current batch.
type shardBatch struct {
	ops []batchOp
}

// applyRun is one worker slot's pre-bound apply context: the thread,
// the enclosing-transaction kind, and the chunk window the pre-built
// closure reads — no per-batch closures on the commit path.
type applyRun struct {
	a      *Applier
	th     *stm.Thread
	kind   stm.Kind
	fn     func(stm.Tx) error
	sh     int
	ops    []batchOp
	lo, hi int
}

// BaseReader is a committed-state point reader bound to one worker
// slot's thread (specexec.Base).
type BaseReader struct {
	st *Store
	th *stm.Thread
}

// ReadBase returns the committed value under key — one single-shard
// elastic transaction on the slot's own thread. The scheduler
// guarantees it never runs concurrently with commit application.
//
//compose:noalloc
func (b *BaseReader) ReadBase(key int64) (int64, bool) {
	v, ok := b.st.shard(key).Get(b.th, int(key))
	if !ok {
		return 0, false
	}
	n, _ := v.(int64)
	return n, true
}

// Applier commits validated specexec batches into the store and its
// WAL: specexec.Committer over per-shard parallel jobs. Per batch it
// takes every touched shard's commit lock at once (ascending — the one
// global order every multi-shard lock site uses), allocates composition
// transaction ids in batch order under those locks, lets the shard jobs
// apply state and append records independently, then releases the locks
// and group-commits each shard. Holding all the locks across the whole
// commit phase gives batch mode the exact invariants PR'd recovery
// relies on: per-shard log order equals commit order equals batch
// order, id order matches log order on shards two compositions share,
// and a snapshot (which also takes all locks) can never cut through
// half a composition's evidence.
//
// Methods must be called in the specexec.Committer sequence; Begin,
// Stage, Jobs and Finish run on the dispatcher, RunJob on the worker
// pool (disjoint shards, so jobs never contend).
type Applier struct {
	st      *Store
	threads []*stm.Thread
	runs    []applyRun
	bases   []BaseReader

	shards  []shardBatch
	touched []int // ascending — the lock acquisition order
	comps   []comp
	effects []wal.Effect // arena the comps' windows index into
	seqs    []uint64     // per-touched-shard sync targets
	n       int
	walErr  error // sticky first log I/O error (see WALErr)
}

// NewApplier builds an applier for workers+1 worker slots (slot
// `workers` is the dispatcher's); newThread supplies each slot's
// engine thread, configured like a connection's (contention manager
// included).
func NewApplier(s *Store, workers int, newThread func() *stm.Thread) *Applier {
	a := &Applier{
		st:      s,
		threads: make([]*stm.Thread, workers+1),
		runs:    make([]applyRun, workers+1),
		bases:   make([]BaseReader, workers+1),
		shards:  make([]shardBatch, len(s.shards)),
	}
	for w := range a.threads {
		th := newThread()
		a.threads[w] = th
		a.bases[w] = BaseReader{st: s, th: th}
		r := &a.runs[w]
		r.a = a
		r.th = th
		r.kind = eec.OpKind(th)
		r.fn = func(stm.Tx) error { r.applyBody(); return nil }
	}
	return a
}

// Base returns worker slot w's committed-state reader.
func (a *Applier) Base(w int) *BaseReader { return &a.bases[w] }

// Threads returns the worker slots' engine threads, for telemetry
// merges (read them only between batches — e.g. from the executor's
// AfterBatch hook).
func (a *Applier) Threads() []*stm.Thread { return a.threads }

// WALErr returns the applier's sticky first log I/O error (nil while
// every acknowledged batch reached the log). Read it after a batch's
// Finish — the executor's Done callbacks run after Finish, so response
// routing sees it in time.
func (a *Applier) WALErr() error { return a.walErr }

// Begin resets the staging state for a batch of n transactions.
func (a *Applier) Begin(n int) {
	a.n = n
	for _, sh := range a.touched {
		a.shards[sh].ops = a.shards[sh].ops[:0]
	}
	a.touched = a.touched[:0]
	a.comps = a.comps[:0]
	a.effects = a.effects[:0]
}

// touch adds sh to the ascending touched set.
func (a *Applier) touch(sh int) {
	for i, s := range a.touched {
		if s == sh {
			return
		}
		if s > sh {
			a.touched = append(a.touched, 0)
			copy(a.touched[i+1:], a.touched[i:])
			a.touched[i] = sh
			return
		}
	}
	a.touched = append(a.touched, sh)
}

// Stage buckets transaction i's validated write set onto its shards, in
// batch order. A write set on one shard becomes plain records (blind
// deltas as add records); one that spans shards becomes a composition
// (intent on every participant plus a commit marker on the coordinator
// — the lowest participant — exactly the two-phase evidence conn-mode
// MPut/CompareAndMove log), with delta writes carried as delta effects.
// In unsound mode every write set is split into plain records,
// preserving the crash-tearing ablation on disk.
func (a *Applier) Stage(i int, writes []specexec.WriteDesc) {
	if len(writes) == 0 {
		return
	}
	single := true
	deltas := 0
	sh0 := a.st.ShardOf(writes[0].Key)
	for j := range writes {
		if writes[j].Delta {
			deltas++
		}
		sh := a.st.ShardOf(writes[j].Key)
		// Per-shard telemetry: batch mode counts the committed write set
		// (speculative reads and re-executions don't route to shards in
		// any attributable way; conn mode counts every key-operation).
		a.st.sc[sh].ops.Add(1)
		if sh != sh0 {
			single = false
		}
	}
	if deltas > 0 {
		a.st.CountAdds(deltas)
	}
	if single || a.st.unsound {
		for _, w := range writes {
			sh := a.st.ShardOf(w.Key)
			a.shards[sh].ops = append(a.shards[sh].ops, batchOp{key: w.Key, val: w.Val, remove: w.Remove, delta: w.Delta, comp: -1})
			a.touch(sh)
		}
		return
	}
	lo := int32(len(a.effects))
	coord := a.st.Shards()
	for _, w := range writes {
		sh := a.st.ShardOf(w.Key)
		a.effects = append(a.effects, wal.Effect{Remove: w.Remove, Delta: w.Delta, Shard: sh, Key: w.Key, Val: w.Val})
		if sh < coord {
			coord = sh
		}
	}
	c := int32(len(a.comps))
	a.comps = append(a.comps, comp{lo: lo, hi: int32(len(a.effects)), coord: int32(coord)})
	// One marker op per participant shard, first occurrence only.
	for _, w := range writes {
		sh := a.st.ShardOf(w.Key)
		ops := a.shards[sh].ops
		if len(ops) > 0 && ops[len(ops)-1].comp == c {
			continue
		}
		a.shards[sh].ops = append(ops, batchOp{comp: c})
		a.touch(sh)
	}
}

// Jobs locks every touched shard (ascending) and allocates the batch's
// composition transaction ids in batch order under those locks, then
// reports the job count — one job per touched shard.
func (a *Applier) Jobs() int {
	w := a.st.wal
	if w != nil {
		for _, sh := range a.touched {
			w.Lock(sh)
		}
		for ci := range a.comps {
			a.comps[ci].txid = w.NextTxID()
		}
	}
	for len(a.seqs) < len(a.touched) {
		a.seqs = append(a.seqs, 0)
	}
	a.seqs = a.seqs[:len(a.touched)]
	for i := range a.seqs {
		a.seqs[i] = 0
	}
	return len(a.touched)
}

// RunJob applies job's shard: state mutations in staged (= batch)
// order through chunked flat-nested transactions on the worker slot's
// thread, then the shard's log records in the same order under the
// already-held commit lock.
func (a *Applier) RunJob(worker, job int) {
	sh := a.touched[job]
	ops := a.shards[sh].ops
	r := &a.runs[worker]
	r.sh = sh
	r.ops = ops
	for lo := 0; lo < len(ops); lo += applyChunk {
		r.lo, r.hi = lo, min(lo+applyChunk, len(ops))
		_ = r.th.Atomic(r.kind, r.fn)
	}
	r.ops = nil
	if w := a.st.wal; w != nil {
		var seq uint64
		for _, op := range ops {
			if op.comp < 0 {
				switch {
				case op.delta:
					seq = w.AppendAdd(sh, op.key, op.val)
				case op.remove:
					seq = w.AppendRemove(sh, op.key)
				default:
					seq = w.AppendPut(sh, op.key, op.val)
				}
				continue
			}
			c := &a.comps[op.comp]
			seq = w.AppendIntent(sh, c.txid, a.effects[c.lo:c.hi])
			if int(c.coord) == sh {
				seq = w.AppendCommit(sh, c.txid)
			}
		}
		a.seqs[job] = seq
	}
}

// applyBody applies one chunk of the current shard job — plain ops
// directly, compositions by their shard-local effects — inside the
// enclosing transaction (flat nesting, like MPut's body). Deltas fold
// into the committed value here: the commutativity already paid off in
// the speculation rounds (blind adds never invalidate), so the commit
// path applies them as ordinary read-modify-writes in batch order.
func (r *applyRun) applyBody() {
	m := r.a.st.shards[r.sh]
	for _, op := range r.ops[r.lo:r.hi] {
		if op.comp < 0 {
			switch {
			case op.delta:
				r.applyDelta(m, op.key, op.val)
			case op.remove:
				m.Remove(r.th, int(op.key))
			default:
				m.Put(r.th, int(op.key), op.val)
			}
			continue
		}
		c := &r.a.comps[op.comp]
		for _, ef := range r.a.effects[c.lo:c.hi] {
			if ef.Shard != r.sh {
				continue
			}
			switch {
			case ef.Delta:
				r.applyDelta(m, ef.Key, ef.Val)
			case ef.Remove:
				m.Remove(r.th, int(ef.Key))
			default:
				m.Put(r.th, int(ef.Key), ef.Val)
			}
		}
	}
}

// applyDelta adds delta to key's committed value, creating the key from
// zero when absent — the same semantics WAL replay gives add records.
func (r *applyRun) applyDelta(m *eec.SkipListMap, key, delta int64) {
	var old int64
	if v, ok := m.Get(r.th, int(key)); ok {
		old, _ = v.(int64)
	}
	m.Put(r.th, int(key), old+delta)
}

// Finish releases the commit locks (descending) and group-commits
// every touched shard through its sync target. It runs on the
// dispatcher, so the sticky error is visible to the Done callbacks
// that follow it.
func (a *Applier) Finish() {
	w := a.st.wal
	if w == nil {
		return
	}
	for i := len(a.touched) - 1; i >= 0; i-- {
		w.Unlock(a.touched[i])
	}
	for j, sh := range a.touched {
		if a.seqs[j] == 0 {
			continue
		}
		if err := w.Sync(sh, a.seqs[j]); err != nil && a.walErr == nil {
			a.walErr = err
		}
	}
}
