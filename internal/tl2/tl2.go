// Package tl2 implements the Transactional Locking II algorithm of Dice,
// Shalev and Shavit (DISC 2006), one of the three classic-transaction
// baselines of the paper's evaluation (§VII-B): invisible reads validated
// against a read-version timestamp, deferred (buffered) writes, and
// commit-time locking with a global version clock.
//
// TL2 provides only Regular transactions; Kind Elastic is honoured as
// Regular. Nesting is flat, which — as the paper notes in §I — is the
// classic-transaction instantiation of outheritance: a child's accesses
// simply remain in the parent's read and write sets until the parent
// commits.
package tl2

import (
	"oestm/internal/mvar"
	"oestm/internal/stm"
)

// TM is a TL2 engine instance. Transactions from different TM instances
// must not share Vars (they would use different clocks).
type TM struct {
	clock mvar.Clock
}

// New returns a fresh TL2 engine.
func New() *TM { return &TM{} }

// Name implements stm.TM.
func (tm *TM) Name() string { return "tl2" }

// SupportsElastic implements stm.TM; TL2 is a classic STM.
func (tm *TM) SupportsElastic() bool { return false }

// Begin implements stm.TM.
func (tm *TM) Begin(th *stm.Thread, _ stm.Kind) stm.TxControl {
	return &txn{
		tm: tm,
		th: th,
		rv: tm.clock.Now(),
	}
}

// BeginNested implements stm.TM with flat nesting.
func (tm *TM) BeginNested(_ *stm.Thread, parent stm.TxControl, _ stm.Kind) stm.TxControl {
	return stm.FlatChild(parent)
}

type readEntry struct {
	v   *mvar.Var
	ver uint64
}

type writeEntry struct {
	v   *mvar.Var
	val any
	old uint64 // pre-lock meta, for revert on abort
}

type txn struct {
	tm     *TM
	th     *stm.Thread
	rv     uint64
	reads  []readEntry
	writes []writeEntry
	windex map[*mvar.Var]int
}

// Kind implements stm.Tx.
func (t *txn) Kind() stm.Kind { return stm.Regular }

// Read implements stm.Tx: post-validated invisible read. A read observing
// a version newer than the transaction's read version aborts (TL2 does not
// extend snapshots).
func (t *txn) Read(v *mvar.Var) any {
	if idx, ok := t.windex[v]; ok {
		return t.writes[idx].val
	}
	val, ver, ok := v.ReadConsistent()
	if !ok {
		stm.Conflict("tl2: read of locked or changing location")
	}
	if ver > t.rv {
		stm.Conflict("tl2: location newer than read version")
	}
	t.reads = append(t.reads, readEntry{v, ver})
	return val
}

// Write implements stm.Tx with deferred update.
func (t *txn) Write(v *mvar.Var, val any) {
	if idx, ok := t.windex[v]; ok {
		t.writes[idx].val = val
		return
	}
	if t.windex == nil {
		t.windex = make(map[*mvar.Var]int, 8)
	}
	t.windex[v] = len(t.writes)
	t.writes = append(t.writes, writeEntry{v: v, val: val})
}

// Commit implements stm.TxControl: lock the write set, pick a commit
// version, validate the read set, publish, unlock.
func (t *txn) Commit() error {
	if len(t.writes) == 0 {
		t.th.Stats.ReadOnly++
		return nil // read-only: snapshot at rv is consistent by construction
	}
	acquired := 0
	for i := range t.writes {
		e := &t.writes[i]
		m := e.v.Meta()
		if mvar.Locked(m) || !e.v.TryLock(t.th.ID, m) {
			t.revert(acquired)
			return stm.ErrConflict
		}
		e.old = m
		acquired++
	}
	wv := t.tm.clock.Tick()
	if t.rv+1 != wv { // optimisation from the TL2 paper: rv+1==wv needs no validation
		if !t.validate() {
			t.revert(acquired)
			return stm.ErrConflict
		}
	}
	for i := range t.writes {
		e := &t.writes[i]
		e.v.StoreLocked(e.val)
		e.v.Unlock(wv)
	}
	return nil
}

// validate re-checks every read entry: not newer than rv. Locations this
// transaction write-locked are validated against their pre-lock version
// (they may have been committed to between our read and our lock).
func (t *txn) validate() bool {
	for _, r := range t.reads {
		m := r.v.Meta()
		if mvar.Locked(m) {
			idx, mine := t.windex[r.v]
			if !mine || mvar.Version(t.writes[idx].old) > t.rv {
				return false
			}
			continue
		}
		if mvar.Version(m) > t.rv {
			return false
		}
	}
	return true
}

// revert releases the first n acquired write locks, restoring their
// pre-lock words.
func (t *txn) revert(n int) {
	for i := 0; i < n; i++ {
		e := &t.writes[i]
		e.v.Restore(e.old)
	}
}

// Rollback implements stm.TxControl. TL2 holds no locks outside Commit
// (which reverts internally on failure), so rollback only drops state.
func (t *txn) Rollback() {
	t.reads = nil
	t.writes = nil
	t.windex = nil
}
