// Package tl2 implements the Transactional Locking II algorithm of Dice,
// Shalev and Shavit (DISC 2006), one of the three classic-transaction
// baselines of the paper's evaluation (§VII-B): invisible reads validated
// against a read-version timestamp, deferred (buffered) writes, and
// commit-time locking with a global version clock.
//
// TL2 provides only Regular transactions; Kind Elastic is honoured as
// Regular. Nesting is flat, which — as the paper notes in §I — is the
// classic-transaction instantiation of outheritance: a child's accesses
// simply remain in the parent's read and write sets until the parent
// commits.
//
//compose:hotpath
package tl2

import (
	"oestm/internal/mvar"
	"oestm/internal/stm"
	"oestm/internal/txset"
)

// TM is a TL2 engine instance. Transactions from different TM instances
// must not share transactional variables (they would use different
// clocks).
type TM struct {
	clock mvar.Clock
}

// New returns a fresh TL2 engine.
func New() *TM { return &TM{} }

// Name implements stm.TM.
func (tm *TM) Name() string { return "tl2" }

// SupportsElastic implements stm.TM; TL2 is a classic STM.
func (tm *TM) SupportsElastic() bool { return false }

// Begin implements stm.TM, reusing the thread's pooled transaction frame.
func (tm *TM) Begin(th *stm.Thread, _ stm.Kind) stm.TxControl {
	t, _ := th.EngineScratch.(*txn)
	if t == nil || t.tm != tm {
		t = &txn{}
		th.EngineScratch = t
	}
	t.tm = tm
	t.th = th
	t.rv = tm.clock.Now()
	t.reads = t.reads[:0]
	t.writes.Reset()
	return t
}

// BeginNested implements stm.TM with flat nesting.
func (tm *TM) BeginNested(th *stm.Thread, parent stm.TxControl, _ stm.Kind) stm.TxControl {
	return stm.FlatChildOn(th, parent)
}

type txn struct {
	tm     *TM
	th     *stm.Thread
	rv     uint64
	reads  []txset.Read
	writes txset.WriteSet
}

// Kind implements stm.Tx.
func (t *txn) Kind() stm.Kind { return stm.Regular }

// Read implements stm.Tx (untyped surface).
func (t *txn) Read(v *mvar.AnyVar) any { return mvar.AnyValue(t.ReadWord(v.Word())) }

// Write implements stm.Tx (untyped surface).
func (t *txn) Write(v *mvar.AnyVar, val any) { t.WriteWord(v.Word(), mvar.AnyRaw(val)) }

// ReadWord implements stm.Tx: post-validated invisible read. A read
// observing a version newer than the transaction's read version aborts
// (TL2 does not extend snapshots).
func (t *txn) ReadWord(w *mvar.Word) mvar.Raw {
	if i := t.writes.Find(w); i >= 0 {
		return t.writes.At(i).Val
	}
	raw, ver, ok := w.ReadConsistent()
	if !ok {
		stm.Abort(stm.CauseReadValidation)
	}
	if ver > t.rv {
		stm.Abort(stm.CauseReadValidation)
	}
	t.reads = append(t.reads, txset.Read{W: w, Ver: ver})
	return raw
}

// WriteWord implements stm.Tx with deferred update.
func (t *txn) WriteWord(w *mvar.Word, r mvar.Raw) {
	if i := t.writes.Find(w); i >= 0 {
		t.writes.At(i).Val = r
		return
	}
	t.writes.Append(txset.Write{W: w, Val: r})
}

// Commit implements stm.TxControl: lock the write set, pick a commit
// version, validate the read set, publish, unlock.
func (t *txn) Commit() error {
	if t.writes.Len() == 0 {
		t.th.Stats.ReadOnly++
		return nil // read-only: snapshot at rv is consistent by construction
	}
	entries := t.writes.Entries()
	acquired := 0
	for i := range entries {
		e := &entries[i]
		m := e.W.Meta()
		if mvar.Locked(m) || !e.W.TryLock(t.th.ID, m) {
			t.revert(acquired)
			return stm.ConflictOf(stm.CauseLockBusy)
		}
		e.Old = m
		acquired++
	}
	wv := t.tm.clock.Tick()
	if t.rv+1 != wv { // optimisation from the TL2 paper: rv+1==wv needs no validation
		if !t.validate() {
			t.revert(acquired)
			return stm.ConflictOf(stm.CauseCommitValidation)
		}
	}
	for i := range entries {
		e := &entries[i]
		e.W.StoreLockedRaw(e.Val)
		e.W.Unlock(wv)
	}
	return nil
}

// validate re-checks every read entry: not newer than rv. Locations this
// transaction write-locked are validated against their pre-lock version
// (they may have been committed to between our read and our lock).
func (t *txn) validate() bool {
	for _, r := range t.reads {
		m := r.W.Meta()
		if mvar.Locked(m) {
			i := t.writes.Find(r.W)
			if i < 0 || mvar.Version(t.writes.At(i).Old) > t.rv {
				return false
			}
			continue
		}
		if mvar.Version(m) > t.rv {
			return false
		}
	}
	return true
}

// revert releases the first n acquired write locks, restoring their
// pre-lock words.
func (t *txn) revert(n int) {
	entries := t.writes.Entries()
	for i := 0; i < n; i++ {
		entries[i].W.Restore(entries[i].Old)
	}
}

// Rollback implements stm.TxControl. TL2 holds no locks outside Commit
// (which reverts internally on failure), so rollback only truncates the
// pooled state (Begin resets it again before reuse).
func (t *txn) Rollback() {
	t.reads = t.reads[:0]
	t.writes.Reset()
}
