package tl2_test

import (
	"testing"

	"oestm/internal/stm"
	"oestm/internal/stmtest"
	"oestm/internal/tl2"
)

func TestConformance(t *testing.T) {
	stmtest.Run(t, func() stm.TM { return tl2.New() })
}

func TestProperties(t *testing.T) {
	tm := tl2.New()
	if tm.Name() != "tl2" {
		t.Fatalf("name = %q", tm.Name())
	}
	if tm.SupportsElastic() {
		t.Fatal("tl2 must not claim elastic support")
	}
}
