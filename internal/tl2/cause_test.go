package tl2_test

import (
	"errors"
	"testing"

	"oestm/internal/mvar"
	"oestm/internal/stm"
	"oestm/internal/tl2"
)

// wantCause asserts that err is a RetryExhaustedError carrying want (and
// still matches the ErrConflict sentinel).
func wantCause(t *testing.T, err error, want stm.ConflictCause) {
	t.Helper()
	if !errors.Is(err, stm.ErrConflict) {
		t.Fatalf("err = %v, want ErrConflict match", err)
	}
	var rex *stm.RetryExhaustedError
	if !errors.As(err, &rex) {
		t.Fatalf("err = %v, want *RetryExhaustedError", err)
	}
	if rex.Cause != want {
		t.Fatalf("cause = %v, want %v", rex.Cause, want)
	}
}

// TestConflictCauses pins every TL2 conflict site to its ConflictCause by
// constructing each conflict deterministically: TL2 aborts reads of
// locked or too-new locations (read-validation), fails commit-time lock
// acquisition on busy locations (lock-busy), and fails commit-time read
// validation when a location committed under it (commit-validation).
func TestConflictCauses(t *testing.T) {
	cases := []struct {
		name string
		want stm.ConflictCause
		run  func(t *testing.T) error
	}{
		{"read of locked location", stm.CauseReadValidation, func(t *testing.T) error {
			tm := tl2.New()
			th := stm.NewThread(tm)
			th.MaxRetries = 1
			v := mvar.New(1)
			if !v.TryLock(7, v.Meta()) {
				t.Fatal("could not pre-lock the variable")
			}
			return th.Atomic(stm.Regular, func(tx stm.Tx) error {
				_ = tx.Read(v)
				return nil
			})
		}},
		{"read of location newer than read version", stm.CauseReadValidation, func(t *testing.T) error {
			tm := tl2.New()
			th, other := stm.NewThread(tm), stm.NewThread(tm)
			th.MaxRetries = 1
			v := mvar.New(1)
			return th.Atomic(stm.Regular, func(tx stm.Tx) error {
				// Commit a write under the open transaction: v is now
				// newer than the transaction's read version.
				if err := other.Atomic(stm.Regular, func(tx2 stm.Tx) error {
					tx2.Write(v, 2)
					return nil
				}); err != nil {
					t.Fatal(err)
				}
				_ = tx.Read(v)
				return nil
			})
		}},
		{"commit-time write lock unavailable", stm.CauseLockBusy, func(t *testing.T) error {
			tm := tl2.New()
			th := stm.NewThread(tm)
			th.MaxRetries = 1
			v := mvar.New(1)
			if !v.TryLock(7, v.Meta()) {
				t.Fatal("could not pre-lock the variable")
			}
			return th.Atomic(stm.Regular, func(tx stm.Tx) error {
				tx.Write(v, 2) // deferred: the conflict surfaces at commit
				return nil
			})
		}},
		{"commit-time read validation failure", stm.CauseCommitValidation, func(t *testing.T) error {
			tm := tl2.New()
			th, other := stm.NewThread(tm), stm.NewThread(tm)
			th.MaxRetries = 1
			a, b := mvar.New(1), mvar.New(1)
			return th.Atomic(stm.Regular, func(tx stm.Tx) error {
				_ = tx.Read(a)
				if err := other.Atomic(stm.Regular, func(tx2 stm.Tx) error {
					tx2.Write(a, 2)
					return nil
				}); err != nil {
					t.Fatal(err)
				}
				tx.Write(b, 2)
				return nil
			})
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			wantCause(t, tc.run(t), tc.want)
		})
	}
}
