package coarse

import (
	"reflect"
	"sync"
	"testing"

	"oestm/internal/seqset"
)

func TestBasicOps(t *testing.T) {
	s := Wrap(seqset.NewLinkedListSet())
	if s.Name() != "coarse-seq-linkedlist" {
		t.Fatalf("name = %q", s.Name())
	}
	if !s.Add(1) || s.Add(1) {
		t.Fatal("Add semantics broken")
	}
	if !s.Contains(1) || s.Contains(2) {
		t.Fatal("Contains wrong")
	}
	if s.Size() != 1 {
		t.Fatalf("size = %d", s.Size())
	}
	if !s.AddAll([]int{2, 3}) || s.AddAll([]int{2}) {
		t.Fatal("AddAll semantics broken")
	}
	if got := s.Elements(); !reflect.DeepEqual(got, []int{1, 2, 3}) {
		t.Fatalf("elements = %v", got)
	}
	if !s.RemoveAll([]int{1, 3}) || s.RemoveAll([]int{9}) {
		t.Fatal("RemoveAll semantics broken")
	}
	if !s.Remove(2) || s.Remove(2) {
		t.Fatal("Remove semantics broken")
	}
}

// TestConcurrentSafety hammers the wrapper; the single lock must keep the
// per-key balance invariant (run with -race).
func TestConcurrentSafety(t *testing.T) {
	s := Wrap(seqset.NewSkipListSet())
	const keys = 16
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				k := (seed*31 + i*7) % keys
				switch i % 3 {
				case 0:
					s.Add(k)
				case 1:
					s.Remove(k)
				default:
					s.Contains(k)
				}
			}
		}(g)
	}
	wg.Wait()
	if n := s.Size(); n < 0 || n > keys {
		t.Fatalf("impossible size %d", n)
	}
}

// TestBulkAtomicity: the coarse lock trivially makes bulk operations
// atomic; snapshots never see half a pair.
func TestBulkAtomicity(t *testing.T) {
	s := Wrap(seqset.NewHashSet(4))
	pair := []int{1, 2}
	stop := make(chan struct{})
	var mut, obs sync.WaitGroup
	mut.Add(1)
	go func() {
		defer mut.Done()
		for i := 0; i < 500; i++ {
			s.AddAll(pair)
			s.RemoveAll(pair)
		}
	}()
	obs.Add(1)
	go func() {
		defer obs.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			els := s.Elements()
			if len(els) == 1 {
				t.Errorf("torn bulk visible: %v", els)
				return
			}
		}
	}()
	mut.Wait()
	close(stop)
	obs.Wait()
}
