// Package coarse wraps the sequential structures behind a single
// read-write mutex: the "explicitly lock existing sequential data
// structures in a coarse-grained manner" alternative the paper's
// introduction mentions as the price of non-composable concurrent
// libraries (§I). It serves as an ablation baseline: composed operations
// are trivially atomic here, at the cost of all concurrency.
package coarse

import (
	"sync"

	"oestm/internal/seqset"
)

// Set is a thread-safe integer set built from one global lock around a
// sequential structure. All operations — including the bulk ones — are
// atomic.
type Set struct {
	mu    sync.RWMutex
	inner seqset.Set
}

// Wrap places a coarse lock around a sequential set. The caller must not
// retain direct access to inner.
func Wrap(inner seqset.Set) *Set { return &Set{inner: inner} }

// Name identifies the implementation.
func (s *Set) Name() string { return "coarse-" + s.inner.Name() }

// Contains reports membership under the read lock.
func (s *Set) Contains(key int) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.inner.Contains(key)
}

// Add inserts key under the write lock.
func (s *Set) Add(key int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inner.Add(key)
}

// Remove deletes key under the write lock.
func (s *Set) Remove(key int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inner.Remove(key)
}

// AddAll inserts all keys atomically under the write lock.
func (s *Set) AddAll(keys []int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inner.AddAll(keys)
}

// RemoveAll deletes all keys atomically under the write lock.
func (s *Set) RemoveAll(keys []int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inner.RemoveAll(keys)
}

// Size returns the element count under the read lock.
func (s *Set) Size() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.inner.Size()
}

// Elements returns a sorted snapshot under the read lock.
func (s *Set) Elements() []int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.inner.Elements()
}
