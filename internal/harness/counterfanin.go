// counterfanin.go is the serving-layer conservation checker for the
// commutative hot-key path: many connections fan deltas into a small set
// of counters while concurrent snapshot audits assert that money never
// appears or disappears. Two invariants are checked:
//
//   - transfer conservation: half the counters receive only zero-sum
//     cross-shard MAdd transfers (+d on one key, -d on another), so every
//     atomic MGet snapshot of them must sum to the initial total — during
//     the run (the audits) and at the end. An -unsound server tears both
//     the transfers and the snapshots, so audits MUST observe broken sums
//     there; every composing engine must show zero violations.
//   - fan-in exactness: the other counters receive only single-key adds
//     with client-tracked acked deltas; after quiescing, each sum must
//     equal exactly what was acknowledged — lost updates (the unsound
//     read-then-write tear) show up as a shortfall.
//
// Violations are counted over the whole run (not just the measured
// window): a conservation break anywhere is a correctness bug, and the
// unsound ablation must not be able to hide one in the warmup.
package harness

import (
	"fmt"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"time"

	"oestm/internal/server"
	"oestm/internal/stats"
	"oestm/internal/wire"
)

// CounterFaninScenario is the Scenario label of counter-fanin results.
const CounterFaninScenario = "counter-fanin"

// counterFaninInitial is each transfer counter's starting balance.
const counterFaninInitial = 1 << 20

// RunCounterFanin drives the counter-fanin checker against a running
// compose-server, reusing LoadConfig's connection/window/distribution
// shape. cfg.Keys is the counter count, clamped to [4, 64] — fan-in
// wants few, hot counters — and split in half: transfer keys [0, n/2),
// fan-in keys [n/2, n). The returned Result carries the violation count
// beside the usual throughput/abort/latency axes.
func RunCounterFanin(cfg LoadConfig) (Result, error) {
	cfg = cfg.normalize()
	if err := cfg.Dist.Validate(); err != nil {
		return Result{}, err
	}
	if cfg.Conns < 1 || cfg.Duration < 0 || cfg.Warmup < 0 {
		return Result{}, fmt.Errorf("harness: invalid counter-fanin shape: conns=%d duration=%v warmup=%v",
			cfg.Conns, cfg.Duration, cfg.Warmup)
	}
	nKeys := cfg.Keys
	if nKeys < 4 {
		nKeys = 4
	}
	if nKeys > 64 {
		nKeys = 64
	}
	transfer := make([]int64, nKeys/2)
	for i := range transfer {
		transfer[i] = int64(i)
	}
	fanin := make([]int64, nKeys-len(transfer))
	for i := range fanin {
		fanin[i] = int64(len(transfer) + i)
	}
	wantTransfer := int64(len(transfer)) * counterFaninInitial

	statsClient, err := server.DialTimeout(cfg.Addr, 5*time.Second)
	if err != nil {
		return Result{}, fmt.Errorf("harness: dial %s: %w", cfg.Addr, err)
	}
	defer statsClient.Close()
	var ident wire.StatsPayload
	if err := statsClient.Stats(&ident); err != nil {
		return Result{}, fmt.Errorf("harness: stats: %w", err)
	}

	// Seed the transfer counters (quiescent, so the absolute puts are
	// safe even against an unsound server) and clear any fan-in residue.
	initVals := make([]int64, len(transfer))
	for i := range initVals {
		initVals[i] = counterFaninInitial
	}
	if err := statsClient.MPut(transfer, initVals); err != nil {
		return Result{}, fmt.Errorf("harness: seed transfer counters: %w", err)
	}
	for _, k := range fanin {
		if _, _, err := statsClient.Remove(k); err != nil {
			return Result{}, fmt.Errorf("harness: clear fan-in counter %d: %w", k, err)
		}
	}

	var (
		stop       atomic.Bool
		measuring  atomic.Bool
		violations atomic.Uint64
		acked      atomic.Int64 // fan-in deltas acknowledged across workers
		wg         sync.WaitGroup
		mu         sync.Mutex
		totalOps   uint64
		totalHist  = new(stats.Histogram)
		firstErr   error
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
		stop.Store(true)
	}
	for i := 0; i < cfg.Conns; i++ {
		wg.Add(1)
		go func(idx int) {
			defer wg.Done()
			cl, err := server.DialTimeout(cfg.Addr, 5*time.Second)
			if err != nil {
				fail(err)
				return
			}
			defer cl.Close()
			rng := rand.New(rand.NewPCG(cfg.Seed, uint64(idx)+1))
			madd := [2]int64{}
			deltas := [2]int64{}
			hist := new(stats.Histogram)
			var ops uint64
			var prev time.Time
			counting := false
			for !stop.Load() {
				if !counting && measuring.Load() {
					ops = 0
					counting = true
					prev = time.Now()
				}
				d := rng.Int64N(100) + 1
				switch r := rng.IntN(100); {
				case r < 40: // fan-in add, acked delta tracked exactly
					k := fanin[rng.IntN(len(fanin))]
					if err := cl.Add(k, d); err == nil {
						acked.Add(d)
					} else if err := ignoreExhausted(err); err != nil {
						fail(fmt.Errorf("worker %d: add: %w", idx, err))
						return
					}
				case r < 70: // zero-sum transfer between two counters
					a := rng.IntN(len(transfer))
					b := (a + 1 + rng.IntN(len(transfer)-1)) % len(transfer)
					madd[0], madd[1] = transfer[a], transfer[b]
					deltas[0], deltas[1] = d, -d
					if err := ignoreExhausted(cl.MAdd(madd[:], deltas[:])); err != nil {
						fail(fmt.Errorf("worker %d: madd: %w", idx, err))
						return
					}
				default: // audit: one atomic snapshot must conserve the total
					vals, _, err := cl.MGet(transfer)
					if err := ignoreExhausted(err); err != nil {
						fail(fmt.Errorf("worker %d: audit mget: %w", idx, err))
						return
					}
					if err == nil {
						var sum int64
						for _, v := range vals {
							sum += v
						}
						if sum != wantTransfer {
							violations.Add(1)
						}
					}
				}
				ops++
				if counting {
					now := time.Now()
					hist.Record(now.Sub(prev))
					prev = now
				}
			}
			if !counting {
				ops = 0
			}
			mu.Lock()
			totalOps += ops
			totalHist.Merge(hist)
			mu.Unlock()
		}(i)
	}

	time.Sleep(cfg.Warmup)
	var s0 wire.StatsPayload
	err0 := statsClient.Stats(&s0)
	measuring.Store(true)
	start := time.Now()
	time.Sleep(cfg.Duration)
	stop.Store(true)
	elapsed := time.Since(start)
	wg.Wait()
	var s1 wire.StatsPayload
	err1 := statsClient.Stats(&s1)

	if firstErr != nil {
		return Result{}, firstErr
	}
	if err0 != nil {
		return Result{}, fmt.Errorf("harness: stats at window open: %w", err0)
	}
	if err1 != nil {
		return Result{}, fmt.Errorf("harness: stats at window close: %w", err1)
	}

	// End-state checks, quiesced: conservation again, and fan-in
	// exactness against the acknowledged deltas.
	vals, _, err := statsClient.MGet(transfer)
	if err != nil {
		return Result{}, fmt.Errorf("harness: final transfer check: %w", err)
	}
	var sum int64
	for _, v := range vals {
		sum += v
	}
	if sum != wantTransfer {
		violations.Add(1)
	}
	vals, _, err = statsClient.MGet(fanin)
	if err != nil {
		return Result{}, fmt.Errorf("harness: final fan-in check: %w", err)
	}
	sum = 0
	for _, v := range vals {
		sum += v
	}
	if sum != acked.Load() {
		violations.Add(1)
	}

	delta := statsDelta(&s1, &s0)
	walLabel := "off"
	if ident.WALEnabled {
		walLabel = "on"
	}
	execLabel := ident.Exec
	if execLabel == "" {
		execLabel = server.ExecConn
	}
	r := Result{
		Engine:              ident.Engine,
		Scenario:            CounterFaninScenario,
		Structure:           fmt.Sprintf("store/%dshards", ident.Shards),
		CM:                  ident.CM,
		WAL:                 walLabel,
		WALAppends:          satSub(s1.WALAppends, s0.WALAppends),
		WALSyncs:            satSub(s1.WALSyncs, s0.WALSyncs),
		WALBytes:            satSub(s1.WALBytes, s0.WALBytes),
		Exec:                execLabel,
		SpecExecs:           satSub(s1.SpecExecs, s0.SpecExecs),
		SpecReexecs:         satSub(s1.SpecReexecs, s0.SpecReexecs),
		SpecValidationFails: satSub(s1.SpecValidationFails, s0.SpecValidationFails),
		Adds:                satSub(s1.Adds, s0.Adds),
		BoostedOps:          satSub(s1.BoostedOps, s0.BoostedOps),
		HotPromotions:       satSub(s1.HotPromotions, s0.HotPromotions),
		HotDemotions:        satSub(s1.HotDemotions, s0.HotDemotions),
		Dist:                cfg.Dist.Label(),
		Theta:               cfg.Dist.ZipfTheta(),
		Threads:             cfg.Conns,
		OpsPerMs:            float64(totalOps) / float64(elapsed.Milliseconds()+1),
		AbortRate:           delta.AbortRate(),
		Violations:          violations.Load(),
		Ops:                 totalOps,
		Commits:             delta.Commits,
		Aborts:              delta.Aborts,
		AbortsByCause:       delta.AbortsByCause,
		Elapsed:             elapsed,
	}
	r.setLatency(totalHist)
	return r, nil
}
