package harness

import (
	"strings"
	"testing"
	"time"

	"oestm/internal/cm"
	"oestm/internal/workload"
)

func TestCMNamesValidation(t *testing.T) {
	if got := CMNames(nil); len(got) != 1 || got[0] != cm.DefaultName {
		t.Fatalf("CMNames(nil) = %v, want [%s]", got, cm.DefaultName)
	}
	if got := CMNames([]string{"adaptive", "passive"}); len(got) != 2 {
		t.Fatalf("CMNames = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("CMNames must panic on unknown policies")
		}
	}()
	CMNames([]string{"bogus"})
}

// TestSweepCMDimension checks that the contention-policy axis multiplies
// the sweep, tags every result, qualifies the table columns and lands in
// the CSV's cm column.
func TestSweepCMDimension(t *testing.T) {
	eng, _ := EngineByName("tl2")
	results := Sweep(SweepConfig{
		Structure:  "hashset",
		BulkPct:    5,
		Threads:    []int{2},
		Duration:   20 * time.Millisecond,
		Warmup:     5 * time.Millisecond,
		Engines:    []Engine{eng},
		CMs:        []string{"passive", "aggressive"},
		Sequential: true,
		Workload:   quickWorkload(),
	})
	// sequential + one point per policy
	if len(results) != 3 {
		t.Fatalf("results = %d, want 3", len(results))
	}
	seen := map[string]bool{}
	for _, r := range results {
		seen[r.CM] = true
	}
	for _, want := range []string{"-", "passive", "aggressive"} {
		if !seen[want] {
			t.Fatalf("no result tagged cm=%q: %v", want, seen)
		}
	}
	text := Format(results, "hashset", 5)
	for _, want := range []string{"tl2/passive", "tl2/aggressive"} {
		if !strings.Contains(text, want) {
			t.Fatalf("formatted output missing %q:\n%s", want, text)
		}
	}
	csv := CSV(results)
	for _, want := range []string{",tl2,passive,uniform,0.00,2,", ",tl2,aggressive,uniform,0.00,2,", ",sequential,-,uniform,0.00,1,"} {
		if !strings.Contains(csv, want) {
			t.Fatalf("csv missing %q:\n%s", want, csv)
		}
	}
}

// TestResultCauseColumnsConsistent runs a contended point and checks the
// per-cause columns of the Result sum exactly to its abort count, and
// that the CSV emits one aborts_<cause> column per cause.
func TestResultCauseColumnsConsistent(t *testing.T) {
	eng, _ := EngineByName("oestm")
	r := RunSTM(eng, RunConfig{
		Structure: "linkedlist",
		Threads:   4,
		Duration:  40 * time.Millisecond,
		Warmup:    5 * time.Millisecond,
		Workload:  quickWorkload(),
		CM:        "aggressive",
	})
	if r.CM != "aggressive" {
		t.Fatalf("result CM = %q", r.CM)
	}
	var sum uint64
	for _, n := range r.AbortsByCause {
		sum += n
	}
	if sum != r.Aborts {
		t.Fatalf("cause columns sum to %d, Aborts = %d (%+v)", sum, r.Aborts, r.AbortsByCause)
	}
	if !strings.Contains(CSVHeader, ",cm,") || !strings.Contains(CSVHeader, ",aborts_lock_busy") {
		t.Fatalf("CSVHeader missing cm/cause columns: %s", CSVHeader)
	}
	header := strings.Split(CSVHeader, ",")
	row := strings.Split(strings.Split(CSV([]Result{r}), "\n")[1], ",")
	if len(header) != len(row) {
		t.Fatalf("csv row has %d fields, header %d", len(row), len(header))
	}
}

// TestScenarioSweepCMDimension mirrors TestSweepCMDimension for the
// composed-scenario runner.
func TestScenarioSweepCMDimension(t *testing.T) {
	eng, _ := EngineByName("oestm")
	cfg := workload.DefaultScenarioConfig().Scaled(16)
	results := ScenarioSweep(ScenarioSweepConfig{
		Scenario: "move",
		Threads:  []int{2},
		Duration: 20 * time.Millisecond,
		Warmup:   5 * time.Millisecond,
		Engines:  []Engine{eng},
		CMs:      []string{"passive", "adaptive"},
		Workload: cfg,
	})
	if len(results) != 2 {
		t.Fatalf("results = %d, want 2", len(results))
	}
	text := FormatScenario(results, "move")
	for _, want := range []string{"oestm/passive", "oestm/adaptive"} {
		if !strings.Contains(text, want) {
			t.Fatalf("scenario table missing %q:\n%s", want, text)
		}
	}
	for _, r := range results {
		if r.Violations != 0 {
			t.Fatalf("violations on oestm under cm=%s: %+v", r.CM, r)
		}
	}
}
