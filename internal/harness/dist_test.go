package harness

import (
	"strings"
	"testing"
	"time"

	"oestm/internal/workload"
)

// TestResultLatencyFields checks the measurement pipeline end to end: a
// run produces ordered, non-zero latency percentiles and they survive
// into the CSV columns.
func TestResultLatencyFields(t *testing.T) {
	eng, _ := EngineByName("oestm")
	r := RunSTM(eng, RunConfig{
		Structure: "hashset",
		Threads:   2,
		Duration:  50 * time.Millisecond,
		Warmup:    10 * time.Millisecond,
		Workload:  quickWorkload(),
	})
	if r.Hist == nil || r.Hist.Count() == 0 {
		t.Fatal("no latency histogram recorded")
	}
	if r.LatP50 <= 0 {
		t.Fatalf("p50 = %v, want > 0", r.LatP50)
	}
	if r.LatP50 > r.LatP95 || r.LatP95 > r.LatP99 || r.LatP99 > r.LatMax {
		t.Fatalf("percentiles out of order: p50=%v p95=%v p99=%v max=%v",
			r.LatP50, r.LatP95, r.LatP99, r.LatMax)
	}
	if r.Dist != "uniform" || r.Theta != 0 {
		t.Fatalf("default distribution tag wrong: dist=%q theta=%v", r.Dist, r.Theta)
	}
	header := strings.Split(CSVHeader, ",")
	row := strings.Split(strings.Split(CSV([]Result{r}), "\n")[1], ",")
	if len(header) != len(row) {
		t.Fatalf("csv row has %d fields, header %d", len(row), len(header))
	}
	for _, col := range []string{"dist", "theta", "lat_p50_us", "lat_p95_us", "lat_p99_us", "lat_max_us"} {
		found := false
		for _, h := range header {
			if h == col {
				found = true
			}
		}
		if !found {
			t.Fatalf("CSVHeader missing %q: %s", col, CSVHeader)
		}
	}
}

// TestSequentialLatencyFields mirrors the check for the baseline runner.
func TestSequentialLatencyFields(t *testing.T) {
	r := RunSequential(RunConfig{
		Structure: "hashset",
		Duration:  30 * time.Millisecond,
		Warmup:    5 * time.Millisecond,
		Workload:  quickWorkload(),
	})
	if r.LatP50 <= 0 || r.LatP99 < r.LatP50 {
		t.Fatalf("sequential latency wrong: p50=%v p99=%v", r.LatP50, r.LatP99)
	}
}

// TestSweepDistDimension checks the distribution axis multiplies the
// sweep, tags every result (sequential baseline included, once per
// distribution), qualifies the table columns and lands in the CSV's
// dist/theta columns.
func TestSweepDistDimension(t *testing.T) {
	eng, _ := EngineByName("oestm")
	results := Sweep(SweepConfig{
		Structure:  "hashset",
		BulkPct:    5,
		Threads:    []int{2},
		Duration:   20 * time.Millisecond,
		Warmup:     5 * time.Millisecond,
		Engines:    []Engine{eng},
		Sequential: true,
		Workload:   quickWorkload(),
		Dists: []workload.DistConfig{
			{Name: workload.DistUniform},
			{Name: workload.DistZipfian, Theta: 0.9},
		},
	})
	// (sequential + one point) per distribution
	if len(results) != 4 {
		t.Fatalf("results = %d, want 4", len(results))
	}
	seen := map[string]bool{}
	for _, r := range results {
		seen[r.Dist] = true
		if r.Dist == "zipfian:0.90" && r.Theta != 0.9 {
			t.Fatalf("zipfian theta = %v, want 0.9", r.Theta)
		}
	}
	for _, want := range []string{"uniform", "zipfian:0.90"} {
		if !seen[want] {
			t.Fatalf("no result tagged dist=%q: %v", want, seen)
		}
	}
	text := Format(results, "hashset", 5)
	for _, want := range []string{"oestm@uniform", "oestm@zipfian:0.90", "sequential@uniform", "p99us"} {
		if !strings.Contains(text, want) {
			t.Fatalf("formatted output missing %q:\n%s", want, text)
		}
	}
	csv := CSV(results)
	for _, want := range []string{",oestm,passive,uniform,0.00,2,", ",oestm,passive,zipfian:0.90,0.90,2,"} {
		if !strings.Contains(csv, want) {
			t.Fatalf("csv missing %q:\n%s", want, csv)
		}
	}
}

// TestScenarioSweepDistDimension mirrors the distribution axis for the
// composed-scenario runner, and checks skew does not break invariants on
// a composing engine.
func TestScenarioSweepDistDimension(t *testing.T) {
	eng, _ := EngineByName("oestm")
	results := ScenarioSweep(ScenarioSweepConfig{
		Scenario: "move",
		Threads:  []int{2},
		Duration: 20 * time.Millisecond,
		Warmup:   5 * time.Millisecond,
		Engines:  []Engine{eng},
		Workload: quickScenarioConfig(),
		Dists: []workload.DistConfig{
			{Name: workload.DistHotspot, HotOpsPct: 90, HotKeysPct: 10},
			{Name: workload.DistShiftingHotspot, HotOpsPct: 90, HotKeysPct: 10, ShiftEvery: 128},
		},
	})
	if len(results) != 2 {
		t.Fatalf("results = %d, want 2", len(results))
	}
	for _, r := range results {
		if r.Violations != 0 {
			t.Fatalf("violations on oestm under dist=%s: %+v", r.Dist, r)
		}
		if r.LatP99 <= 0 {
			t.Fatalf("no latency measured under dist=%s", r.Dist)
		}
	}
	text := FormatScenario(results, "move")
	for _, want := range []string{"oestm@hotspot:90/10", "oestm@shifting-hotspot:90/10/128", "p50us"} {
		if !strings.Contains(text, want) {
			t.Fatalf("scenario table missing %q:\n%s", want, text)
		}
	}
}

// TestKeyFreeScenarioCollapsesDistAxis pins that the key-free pipeline
// scenario is measured once regardless of the distribution sweep, and its
// rows are tagged uniform — never a skew label that had no effect.
func TestKeyFreeScenarioCollapsesDistAxis(t *testing.T) {
	eng, _ := EngineByName("oestm")
	results := ScenarioSweep(ScenarioSweepConfig{
		Scenario: "pipeline",
		Threads:  []int{2},
		Duration: 15 * time.Millisecond,
		Warmup:   5 * time.Millisecond,
		Engines:  []Engine{eng},
		Workload: quickScenarioConfig(),
		Dists: []workload.DistConfig{
			{Name: workload.DistZipfian},
			{Name: workload.DistHotspot},
		},
	})
	if len(results) != 1 {
		t.Fatalf("results = %d, want 1 (dist axis must collapse for key-free scenarios)", len(results))
	}
	if results[0].Dist != "uniform" {
		t.Fatalf("pipeline row tagged dist=%q, want uniform", results[0].Dist)
	}
}

// TestAverageMergesHistograms checks multi-run points still carry
// latency: average() merges the runs' histograms and recomputes the
// percentiles from the merged distribution.
func TestAverageMergesHistograms(t *testing.T) {
	eng, _ := EngineByName("tl2")
	results := Sweep(SweepConfig{
		Structure: "hashset",
		BulkPct:   5,
		Threads:   []int{2},
		Duration:  15 * time.Millisecond,
		Warmup:    5 * time.Millisecond,
		Runs:      2,
		Engines:   []Engine{eng},
		Workload:  quickWorkload(),
	})
	if len(results) != 1 {
		t.Fatalf("results = %d, want 1", len(results))
	}
	r := results[0]
	if r.Hist == nil || r.Hist.Count() == 0 {
		t.Fatal("averaged point lost its histogram")
	}
	if r.LatP50 <= 0 || r.LatP99 < r.LatP50 || r.LatMax < r.LatP99 {
		t.Fatalf("averaged percentiles wrong: p50=%v p99=%v max=%v", r.LatP50, r.LatP99, r.LatMax)
	}
}

// TestDistConfigsValidation pins the harness-side panic on invalid sweep
// entries (CLI front-ends validate first; programmatic misuse must not
// silently fall back to uniform).
func TestDistConfigsValidation(t *testing.T) {
	if got := distConfigs(nil, workload.DistConfig{}); len(got) != 1 || got[0].Label() != "uniform" {
		t.Fatalf("distConfigs(nil) = %+v, want base uniform", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("distConfigs must panic on an invalid entry")
		}
	}()
	distConfigs([]workload.DistConfig{{Name: "bogus"}}, workload.DistConfig{})
}
