package harness

import (
	"context"
	"runtime"
	"testing"
	"time"

	"oestm/internal/server"
	"oestm/internal/store"
)

// startFaninServer boots an in-process compose-server for the
// counter-fanin checkers.
func startFaninServer(t *testing.T, cfg server.Config) *server.Server {
	t.Helper()
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	srv, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return srv
}

// TestCounterFaninExactSum is the conservation checker on the composing
// engines: zero-sum transfers plus tracked fan-in adds must show zero
// violations — during the concurrent audits and in the quiesced
// end-state checks — with the boosted hot-key path on.
func TestCounterFaninExactSum(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(8)) // real interleaving on small CI boxes
	for _, eng := range Engines() {
		t.Run(eng.Name, func(t *testing.T) {
			srv := startFaninServer(t, server.Config{
				Engine:     eng.Name,
				NewTM:      eng.New,
				Shards:     8,
				MaxRetries: 2000,
				Boost:      store.BoostOn,
			})
			r, err := RunCounterFanin(LoadConfig{
				Addr:     srv.Addr().String(),
				Conns:    4,
				Duration: 80 * time.Millisecond,
				Warmup:   20 * time.Millisecond,
				Keys:     16,
			})
			if err != nil {
				t.Fatal(err)
			}
			if r.Violations != 0 {
				t.Fatalf("%s: counter conservation broken: %d violations", eng.Name, r.Violations)
			}
			if r.Scenario != CounterFaninScenario || r.Ops == 0 {
				t.Fatalf("malformed result: %+v", r)
			}
			if r.Adds == 0 || r.BoostedOps == 0 {
				t.Fatalf("boosted path unused: adds=%d boosted=%d", r.Adds, r.BoostedOps)
			}
		})
	}
}

// TestCounterFaninBatchMode runs the same checker against the
// speculative batch executor: deltas merge commutatively in the
// multi-version map and commit in batch order, so conservation must
// hold there too.
func TestCounterFaninBatchMode(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(8))
	eng, _ := EngineByName("oestm")
	srv := startFaninServer(t, server.Config{
		Engine:       eng.Name,
		NewTM:        eng.New,
		Shards:       8,
		MaxRetries:   2000,
		Exec:         server.ExecBatch,
		BatchWorkers: 4,
	})
	r, err := RunCounterFanin(LoadConfig{
		Addr:     srv.Addr().String(),
		Conns:    4,
		Duration: 80 * time.Millisecond,
		Warmup:   20 * time.Millisecond,
		Keys:     16,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Violations != 0 {
		t.Fatalf("batch mode: counter conservation broken: %d violations", r.Violations)
	}
	if r.Adds == 0 {
		t.Fatalf("no adds attributed: %+v", r)
	}
}

// TestCounterFaninUnsoundViolates REQUIRES the checker to catch the
// unsound ablation: with composed operations split into separate
// transactions, torn snapshots and lost updates must surface as
// violations. A few short runs are allowed before declaring the checker
// blind.
func TestCounterFaninUnsoundViolates(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(8))
	eng, _ := EngineByName("oestm")
	srv := startFaninServer(t, server.Config{
		Engine:     eng.Name,
		NewTM:      eng.New,
		Shards:     8,
		MaxRetries: 2000,
		Unsound:    true,
	})
	for attempt := 0; attempt < 5; attempt++ {
		r, err := RunCounterFanin(LoadConfig{
			Addr:     srv.Addr().String(),
			Conns:    4,
			Duration: 120 * time.Millisecond,
			Warmup:   10 * time.Millisecond,
			Keys:     16,
			Seed:     uint64(attempt) + 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		if r.Violations > 0 {
			return
		}
	}
	t.Fatal("unsound server produced no counter-fanin violations in 5 runs; the checker is blind")
}
