// load.go is the closed-loop load generator of the serving layer: N
// connections, each a worker that issues one request at a time against a
// compose-server and times the round trip, drawing keys through the same
// distribution layer as the in-process workloads and recording latency
// into the same allocation-free histograms — so a networked measurement
// lands in the same Result/table/CSV pipeline as Figs. 6-8 and the
// scenario suite, directly comparable column for column.
//
// Identity columns (engine, cm) are not configured here: they are read
// from the server's stats endpoint, which is also snapshotted at the
// measured window's edges to attribute commit/abort (and per-cause)
// deltas to the run. The server is assumed dedicated to this load while
// the window is open.
package harness

import (
	"fmt"
	"io"
	"math/rand/v2"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"oestm/internal/server"
	"oestm/internal/stats"
	"oestm/internal/stm"
	"oestm/internal/wire"
	"oestm/internal/workload"
)

// LoadMix is the request mix of the load generator, in percent of
// operations (must sum to 100).
type LoadMix struct {
	GetPct, PutPct, RemovePct int
	MGetPct, MPutPct, CamPct  int
	// AddPct/MAddPct weight the integer-delta operations: single-key adds
	// and cross-shard delta batches (the commutative hot-key path when the
	// server boosts them).
	AddPct, MAddPct int
}

// DefaultLoadMix is a read-heavy service mix with a steady composed
// fraction: 60% get, 20% put, 5% remove, 5% mget, 5% mput, 5% cam.
func DefaultLoadMix() LoadMix {
	return LoadMix{GetPct: 60, PutPct: 20, RemovePct: 5, MGetPct: 5, MPutPct: 5, CamPct: 5}
}

// Validate checks ranges and the sum.
func (m LoadMix) Validate() error {
	parts := []int{m.GetPct, m.PutPct, m.RemovePct, m.MGetPct, m.MPutPct, m.CamPct, m.AddPct, m.MAddPct}
	sum := 0
	for _, p := range parts {
		if p < 0 {
			return fmt.Errorf("harness: negative mix percentage %d", p)
		}
		sum += p
	}
	if sum != 100 {
		return fmt.Errorf("harness: load mix sums to %d, want 100", sum)
	}
	return nil
}

// String renders the mix in the form ParseLoadMix accepts.
func (m LoadMix) String() string {
	s := fmt.Sprintf("get:%d,put:%d,remove:%d,mget:%d,mput:%d,cam:%d",
		m.GetPct, m.PutPct, m.RemovePct, m.MGetPct, m.MPutPct, m.CamPct)
	if m.AddPct != 0 || m.MAddPct != 0 {
		s += fmt.Sprintf(",add:%d,madd:%d", m.AddPct, m.MAddPct)
	}
	return s
}

// ParseLoadMix parses "op:pct,..." (ops: get, put, remove, mget, mput,
// cam, add, madd; omitted ops are 0) and validates the result.
func ParseLoadMix(s string) (LoadMix, error) {
	var m LoadMix
	fields := map[string]*int{
		"get": &m.GetPct, "put": &m.PutPct, "remove": &m.RemovePct,
		"mget": &m.MGetPct, "mput": &m.MPutPct, "cam": &m.CamPct,
		"add": &m.AddPct, "madd": &m.MAddPct,
	}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, pctStr, ok := strings.Cut(part, ":")
		if !ok {
			return m, fmt.Errorf("harness: load mix entry %q: want op:pct", part)
		}
		p, ok := fields[strings.TrimSpace(name)]
		if !ok {
			return m, fmt.Errorf("harness: unknown load mix op %q", name)
		}
		var pct int
		if _, err := fmt.Sscanf(strings.TrimSpace(pctStr), "%d", &pct); err != nil {
			return m, fmt.Errorf("harness: load mix entry %q: %v", part, err)
		}
		*p = pct
	}
	return m, m.Validate()
}

// LoadScenario is the Scenario label of networked load results.
const LoadScenario = "server"

// LoadConfig describes one closed-loop measurement against a running
// compose-server.
type LoadConfig struct {
	// Addr is the server address.
	Addr string
	// Conns is the number of connections (= concurrent closed loops).
	Conns int
	// Duration/Warmup frame the measured window, as everywhere else.
	Duration time.Duration
	Warmup   time.Duration
	// Keys is the key universe [0, Keys).
	Keys int
	// Span is the batch size of mget/mput requests.
	Span int
	// MaxVal bounds generated values: [0, MaxVal).
	MaxVal int64
	// Mix is the request mix (zero value = DefaultLoadMix).
	Mix LoadMix
	// Dist draws every single-op key and batch base key (see
	// internal/workload's distribution layer).
	Dist workload.DistConfig
	// Seed makes per-worker streams deterministic.
	Seed uint64
	// SkipFill leaves the keyspace as found instead of pre-filling every
	// key (fill happens before the warmup and is excluded from stats
	// deltas).
	SkipFill bool
	// Pipeline is the pipelining depth: each worker issues this many
	// requests per round trip (0 or 1 = classic one-at-a-time). Against
	// a batch-mode server a pipelined burst becomes one speculation
	// batch, so this is the knob that feeds the speculative executor
	// parallel work; against a conn-mode server it just amortizes
	// network round trips.
	Pipeline int
	// ReportEvery, when positive, prints a live progress line to
	// ReportTo at that period while the window runs: the window's ops/s,
	// p50/p99 round-trip latency (exact, from the server's merged
	// per-opcode histograms via Histogram.Sub) and abort rate — all
	// deltas between consecutive stats scrapes, so each line describes
	// only its own interval. Zero (the default) measures silently.
	ReportEvery time.Duration
	// ReportTo receives the progress lines (nil = os.Stderr, keeping
	// stdout's table and CSV output machine-clean).
	ReportTo io.Writer
}

// normalize applies defaults.
func (cfg LoadConfig) normalize() LoadConfig {
	if cfg.Conns == 0 {
		cfg.Conns = 4
	}
	if cfg.Keys == 0 {
		cfg.Keys = 1 << 13
	}
	if cfg.Span == 0 {
		cfg.Span = 8
	}
	if cfg.Span > cfg.Keys {
		cfg.Span = cfg.Keys
	}
	if cfg.Span > wire.MaxKeys {
		cfg.Span = wire.MaxKeys // the protocol's per-request key limit
	}
	if cfg.MaxVal == 0 {
		cfg.MaxVal = 1 << 20
	}
	if cfg.Mix == (LoadMix{}) {
		cfg.Mix = DefaultLoadMix()
	}
	if cfg.Seed == 0 {
		cfg.Seed = 0x10ad
	}
	if cfg.Pipeline == 0 {
		cfg.Pipeline = 1
	}
	return cfg
}

// RunLoad drives one measurement: dial, optionally fill, warm up, measure
// throughput and client-side latency over the window, and attribute the
// server's commit/abort deltas to it. The Result slots into the standard
// tables and CSV (Scenario "server"; Structure identifies the store and
// its shard count; Threads is the connection count; AllocsPerOp is the
// *client* process's allocation rate — near zero by construction, it
// pins the loader's own efficiency, not the server's).
func RunLoad(cfg LoadConfig) (Result, error) {
	cfg = cfg.normalize()
	if err := cfg.Mix.Validate(); err != nil {
		return Result{}, err
	}
	if err := cfg.Dist.Validate(); err != nil {
		return Result{}, err
	}
	// normalize only defaults zero values; explicit negatives (or a
	// negative duration) must fail loudly, not panic in a worker or
	// silently measure nothing.
	if cfg.Conns < 1 || cfg.Keys < 1 || cfg.Span < 1 || cfg.Duration < 0 || cfg.Warmup < 0 || cfg.MaxVal < 1 || cfg.Pipeline < 1 {
		return Result{}, fmt.Errorf("harness: invalid load shape: conns=%d keys=%d span=%d duration=%v warmup=%v maxval=%d pipeline=%d",
			cfg.Conns, cfg.Keys, cfg.Span, cfg.Duration, cfg.Warmup, cfg.MaxVal, cfg.Pipeline)
	}

	statsClient, err := server.DialTimeout(cfg.Addr, 5*time.Second)
	if err != nil {
		return Result{}, fmt.Errorf("harness: dial %s: %w", cfg.Addr, err)
	}
	defer statsClient.Close()
	var ident wire.StatsPayload
	if err := statsClient.Stats(&ident); err != nil {
		return Result{}, fmt.Errorf("harness: stats: %w", err)
	}

	if !cfg.SkipFill {
		if err := fillStore(statsClient, cfg); err != nil {
			return Result{}, fmt.Errorf("harness: fill: %w", err)
		}
	}

	var (
		stop      atomic.Bool
		measuring atomic.Bool
		wg        sync.WaitGroup
		mu        sync.Mutex
		totalOps  uint64
		totalHist = new(stats.Histogram)
		firstErr  error
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
		stop.Store(true)
	}
	for i := 0; i < cfg.Conns; i++ {
		wg.Add(1)
		go func(idx int) {
			defer wg.Done()
			w, err := newLoadWorker(cfg, idx)
			if err != nil {
				fail(err)
				return
			}
			defer w.cl.Close()
			hist := new(stats.Histogram)
			var ops uint64
			var prev time.Time
			counting := false
			for !stop.Load() {
				if !counting && measuring.Load() {
					ops = 0
					counting = true
					prev = time.Now()
				}
				n, err := w.step()
				if err != nil {
					fail(fmt.Errorf("worker %d: %w", idx, err))
					return
				}
				// Count only inside the window: a worker that never saw
				// the measuring transition (one long stalled round trip)
				// must not fold its warmup ops into the measured total.
				if counting {
					ops += uint64(n)
					// One histogram sample per round trip: with
					// pipelining the sample is the burst's latency —
					// what a pipelined client actually waits.
					now := time.Now()
					hist.Record(now.Sub(prev))
					prev = now
				}
			}
			mu.Lock()
			totalOps += ops
			totalHist.Merge(hist)
			mu.Unlock()
		}(i)
	}

	time.Sleep(cfg.Warmup)
	var s0 wire.StatsPayload
	err0 := statsClient.Stats(&s0)
	m0 := mallocs()
	measuring.Store(true)
	start := time.Now()
	if cfg.ReportEvery > 0 && err0 == nil {
		reportLoop(statsClient, cfg, &s0, start)
	} else {
		time.Sleep(cfg.Duration)
	}
	stop.Store(true)
	elapsed := time.Since(start)
	m1 := mallocs()
	wg.Wait()
	var s1 wire.StatsPayload
	err1 := statsClient.Stats(&s1)

	if firstErr != nil {
		return Result{}, firstErr
	}
	if err0 != nil {
		return Result{}, fmt.Errorf("harness: stats at window open: %w", err0)
	}
	if err1 != nil {
		return Result{}, fmt.Errorf("harness: stats at window close: %w", err1)
	}

	delta := statsDelta(&s1, &s0)
	walLabel := "off"
	if ident.WALEnabled {
		walLabel = "on"
	}
	execLabel := ident.Exec
	if execLabel == "" {
		execLabel = server.ExecConn // pre-exec servers are conn-mode
	}
	r := Result{
		Engine:              ident.Engine,
		Scenario:            LoadScenario,
		Structure:           fmt.Sprintf("store/%dshards", ident.Shards),
		CM:                  ident.CM,
		WAL:                 walLabel,
		WALAppends:          satSub(s1.WALAppends, s0.WALAppends),
		WALSyncs:            satSub(s1.WALSyncs, s0.WALSyncs),
		WALBytes:            satSub(s1.WALBytes, s0.WALBytes),
		Exec:                execLabel,
		SpecExecs:           satSub(s1.SpecExecs, s0.SpecExecs),
		SpecReexecs:         satSub(s1.SpecReexecs, s0.SpecReexecs),
		SpecValidationFails: satSub(s1.SpecValidationFails, s0.SpecValidationFails),
		Adds:                satSub(s1.Adds, s0.Adds),
		BoostedOps:          satSub(s1.BoostedOps, s0.BoostedOps),
		HotPromotions:       satSub(s1.HotPromotions, s0.HotPromotions),
		HotDemotions:        satSub(s1.HotDemotions, s0.HotDemotions),
		Dist:                cfg.Dist.Label(),
		Theta:               cfg.Dist.ZipfTheta(),
		Threads:             cfg.Conns,
		OpsPerMs:            float64(totalOps) / float64(elapsed.Milliseconds()+1),
		AbortRate:           delta.AbortRate(),
		AllocsPerOp:         allocsPerOp(m1-m0, totalOps),
		Ops:                 totalOps,
		Commits:             delta.Commits,
		Aborts:              delta.Aborts,
		AbortsByCause:       delta.AbortsByCause,
		Elapsed:             elapsed,
	}
	r.setLatency(totalHist)
	return r, nil
}

// reportLoop sleeps out the measured window, emitting one progress line
// per ReportEvery tick. Each line is windowed: its ops/s, latency
// percentiles and abort rate are the deltas between that tick's stats
// scrape and the previous one (histogram windows via Histogram.Sub), so
// a line describes only its own interval — drift, warm caches, or a
// building convoy show up as line-to-line movement, not as a diluted
// running average. Scrape failures skip the line; the measurement
// itself never depends on the reporter.
func reportLoop(cl *server.Client, cfg LoadConfig, s0 *wire.StatsPayload, start time.Time) {
	w := cfg.ReportTo
	if w == nil {
		w = io.Writer(os.Stderr)
	}
	last := *s0
	lastT := start
	ticker := time.NewTicker(cfg.ReportEvery)
	defer ticker.Stop()
	timer := time.NewTimer(cfg.Duration)
	defer timer.Stop()
	for {
		select {
		case <-timer.C:
			return
		case now := <-ticker.C:
			var cur wire.StatsPayload
			if err := cl.Stats(&cur); err != nil {
				fmt.Fprintf(w, "compose-load: progress scrape failed: %v\n", err)
				continue
			}
			window := now.Sub(lastT)
			if window <= 0 {
				continue
			}
			var ops uint64
			var h, hPrev stats.Histogram
			for i := range cur.Ops {
				ops += satSub(cur.Ops[i].Count, last.Ops[i].Count)
				h.Merge(&cur.Ops[i].Hist)
				hPrev.Merge(&last.Ops[i].Hist)
			}
			h.Sub(&hPrev)
			d := statsDelta(&cur, &last)
			fmt.Fprintf(w, "compose-load: t=%-6s ops/s=%-9.0f p50=%.1fµs p99=%.1fµs abort%%=%.2f\n",
				now.Sub(start).Truncate(100*time.Millisecond),
				float64(ops)/window.Seconds(),
				usec(h.Quantile(0.50)), usec(h.Quantile(0.99)), d.AbortRate())
			last, lastT = cur, now
		}
	}
}

// allocsPerOp guards the zero-op case.
func allocsPerOp(mallocs, ops uint64) float64 {
	if ops == 0 {
		return 0
	}
	return float64(mallocs) / float64(ops)
}

// statsDelta subtracts two stats payloads' transaction counters,
// saturating at zero: the server's scrape is atomic per payload, but a
// defensive floor keeps a misbehaving peer from exploding the columns
// into wrapped uint64s.
func statsDelta(s1, s0 *wire.StatsPayload) stm.Stats {
	d := stm.Stats{
		Commits: satSub(s1.Commits, s0.Commits),
		Aborts:  satSub(s1.Aborts, s0.Aborts),
	}
	for i := range d.AbortsByCause {
		d.AbortsByCause[i] = satSub(s1.AbortsByCause[i], s0.AbortsByCause[i])
	}
	return d
}

// satSub is max(a-b, 0) on uint64.
func satSub(a, b uint64) uint64 {
	if a < b {
		return 0
	}
	return a - b
}

// fillStore populates every key (value key % MaxVal) in Span-sized MPut
// batches through cl.
func fillStore(cl *server.Client, cfg LoadConfig) error {
	keys := make([]int64, 0, cfg.Span)
	vals := make([]int64, 0, cfg.Span)
	flush := func() error {
		if len(keys) == 0 {
			return nil
		}
		err := cl.MPut(keys, vals)
		keys, vals = keys[:0], vals[:0]
		return err
	}
	for k := 0; k < cfg.Keys; k++ {
		keys = append(keys, int64(k))
		vals = append(vals, int64(k)%cfg.MaxVal)
		if len(keys) == cfg.Span {
			if err := flush(); err != nil {
				return err
			}
		}
	}
	return flush()
}

// loadWorker is one connection's closed loop.
type loadWorker struct {
	cfg  LoadConfig
	cl   *server.Client
	rng  *rand.Rand
	keys workload.Sampler
	// thresholds are the cumulative mix buckets in order: get, put,
	// remove, mget, mput, add, madd (cam is the remainder).
	thresholds [7]int
	batchK     []int64
	batchV     []int64
	// reqs/resps are the pipelined burst buffers (len Pipeline; nil when
	// the depth is 1).
	reqs  []wire.Request
	resps []wire.Response
}

func newLoadWorker(cfg LoadConfig, idx int) (*loadWorker, error) {
	cl, err := server.DialTimeout(cfg.Addr, 5*time.Second)
	if err != nil {
		return nil, err
	}
	m := cfg.Mix
	w := &loadWorker{
		cfg:    cfg,
		cl:     cl,
		rng:    rand.New(rand.NewPCG(cfg.Seed, uint64(idx)+1)),
		keys:   workload.NewSampler(cfg.Dist, cfg.Keys),
		batchK: make([]int64, cfg.Span),
		batchV: make([]int64, cfg.Span),
	}
	w.thresholds[0] = m.GetPct
	w.thresholds[1] = w.thresholds[0] + m.PutPct
	w.thresholds[2] = w.thresholds[1] + m.RemovePct
	w.thresholds[3] = w.thresholds[2] + m.MGetPct
	w.thresholds[4] = w.thresholds[3] + m.MPutPct
	w.thresholds[5] = w.thresholds[4] + m.AddPct
	w.thresholds[6] = w.thresholds[5] + m.MAddPct
	if cfg.Pipeline > 1 {
		w.reqs = make([]wire.Request, cfg.Pipeline)
		w.resps = make([]wire.Response, cfg.Pipeline)
	}
	return w, nil
}

// key draws one key through the distribution layer.
func (w *loadWorker) key() int64 { return int64(w.keys.Next(w.rng)) }

// val draws one value.
func (w *loadWorker) val() int64 { return w.rng.Int64N(w.cfg.MaxVal) }

// delta draws one signed add delta in [-100, 100]: counter-sized steps,
// so add-heavy runs exercise the hot path without values drifting to the
// magnitudes absolute writes use.
func (w *loadWorker) delta() int64 { return w.rng.Int64N(201) - 100 }

// batchDeltas fills the batch buffers with distribution-drawn keys and
// delta values (the MAdd shape of batch).
func (w *loadWorker) batchDeltas() {
	base := w.key()
	for i := range w.batchK {
		w.batchK[i] = (base + int64(i)) % int64(w.cfg.Keys)
		w.batchV[i] = w.delta()
	}
}

// batch fills the worker's batch buffers: a distribution-drawn base key
// and its Span successors (wrapping), so batches inherit the skew.
func (w *loadWorker) batch(withVals bool) {
	base := w.key()
	for i := range w.batchK {
		w.batchK[i] = (base + int64(i)) % int64(w.cfg.Keys)
		if withVals {
			w.batchV[i] = w.val()
		}
	}
}

// step issues one round trip — a single request, or a pipelined burst of
// Pipeline requests — and returns how many requests completed.
func (w *loadWorker) step() (int, error) {
	if w.cfg.Pipeline > 1 {
		return w.stepPipeline()
	}
	r := w.rng.IntN(100)
	switch {
	case r < w.thresholds[0]:
		_, _, err := w.cl.Get(w.key())
		return 1, err
	case r < w.thresholds[1]:
		_, err := w.cl.Put(w.key(), w.val())
		return 1, err
	case r < w.thresholds[2]:
		_, _, err := w.cl.Remove(w.key())
		return 1, err
	case r < w.thresholds[3]:
		w.batch(false)
		_, _, err := w.cl.MGet(w.batchK)
		return 1, ignoreExhausted(err)
	case r < w.thresholds[4]:
		w.batch(true)
		return 1, ignoreExhausted(w.cl.MPut(w.batchK, w.batchV))
	case r < w.thresholds[5]:
		return 1, ignoreExhausted(w.cl.Add(w.key(), w.delta()))
	case r < w.thresholds[6]:
		w.batchDeltas()
		return 1, ignoreExhausted(w.cl.MAdd(w.batchK, w.batchV))
	default:
		from, to := w.key(), w.key()
		_, err := w.cl.CompareAndMove(from, to, w.val())
		return 1, ignoreExhausted(err)
	}
}

// stepPipeline draws Pipeline requests from the mix and issues them as
// one burst. Responses are checked for typed errors (retry exhaustion
// tolerated, like the one-at-a-time path).
func (w *loadWorker) stepPipeline() (int, error) {
	for i := range w.reqs {
		q := &w.reqs[i]
		q.Keys, q.Vals = q.Keys[:0], q.Vals[:0]
		r := w.rng.IntN(100)
		switch {
		case r < w.thresholds[0]:
			q.Op, q.Key = wire.OpGet, w.key()
		case r < w.thresholds[1]:
			q.Op, q.Key, q.Val = wire.OpPut, w.key(), w.val()
		case r < w.thresholds[2]:
			q.Op, q.Key = wire.OpRemove, w.key()
		case r < w.thresholds[3]:
			w.batch(false)
			q.Op = wire.OpMGet
			q.Keys = append(q.Keys, w.batchK...)
		case r < w.thresholds[4]:
			w.batch(true)
			q.Op = wire.OpMPut
			q.Keys = append(q.Keys, w.batchK...)
			q.Vals = append(q.Vals, w.batchV...)
		case r < w.thresholds[5]:
			q.Op, q.Key, q.Val = wire.OpAdd, w.key(), w.delta()
		case r < w.thresholds[6]:
			w.batchDeltas()
			q.Op = wire.OpMAdd
			q.Keys = append(q.Keys, w.batchK...)
			q.Vals = append(q.Vals, w.batchV...)
		default:
			q.Op, q.Key, q.To, q.Val = wire.OpCompareAndMove, w.key(), w.key(), w.val()
		}
	}
	if err := w.cl.Pipeline(w.reqs, w.resps); err != nil {
		return 0, err
	}
	for i := range w.resps {
		if w.resps[i].Status == wire.StatusErr && w.resps[i].Err != wire.ErrRetryExhausted {
			return 0, fmt.Errorf("pipelined %s: %s: %s", w.reqs[i].Op, w.resps[i].Err, w.resps[i].Msg)
		}
	}
	return len(w.reqs), nil
}

// ignoreExhausted tolerates ErrRetryExhausted on composed requests:
// bounded-retry servers may give up one operation under contention, and
// the closed loop just moves on.
func ignoreExhausted(err error) error {
	if pe, ok := wire.IsProtocolError(err); ok && pe.Code == wire.ErrRetryExhausted {
		return nil
	}
	return err
}
