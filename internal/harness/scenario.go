package harness

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"oestm/internal/cm"
	"oestm/internal/stm"
	"oestm/internal/workload"
)

// ScenarioRunConfig describes one composed-scenario measurement.
type ScenarioRunConfig struct {
	Scenario string
	Threads  int
	Duration time.Duration
	Warmup   time.Duration
	Workload workload.ScenarioConfig
	// CM names the contention-management policy installed on every
	// worker thread (see internal/cm); empty means cm.DefaultName.
	CM string
}

// RunScenario measures one engine on one composed scenario: build and
// fill a fresh scenario instance, spin up cfg.Threads workers each
// stepping its own operation stream (mutations interleaved with invariant
// audits), run for warmup+duration, then quiesce and run the end-state
// invariant check. The returned Result carries the scenario's invariant
// violation count — 0 on every transactional engine — beside the usual
// throughput/abort/allocs axes. Like those, the count is windowed:
// audit failures during warmup are excluded, the end-state check is
// included. It panics on an unknown scenario name (use
// workload.ScenarioNames for the registry).
func RunScenario(eng Engine, cfg ScenarioRunConfig) Result {
	if !workload.ScenarioKeyed(cfg.Scenario) {
		// Key-free scenarios ignore the distribution; tag the result
		// uniform so no row claims a skew that had no effect.
		cfg.Workload.Dist = workload.DistConfig{}
	}
	tm := eng.New()
	scn, ok := workload.NewScenario(cfg.Scenario, cfg.Workload)
	if !ok {
		panic(fmt.Sprintf("harness: unknown scenario %q", cfg.Scenario))
	}
	filler := stm.NewThread(tm)
	scn.Fill(filler)

	var warmupViolations uint64
	m := runMeasured(cfg.Threads, cfg.Warmup, cfg.Duration, func(idx int) (*stm.Thread, func()) {
		th := newWorkerThread(tm, cfg.CM)
		worker := scn.NewWorker(th, idx)
		return th, worker.Step
	}, func() { warmupViolations = scn.Violations() })

	checker := stm.NewThread(tm)
	scn.Check(checker)

	cmName := cfg.CM
	if cmName == "" {
		cmName = cm.DefaultName
	}
	r := Result{
		Engine:        eng.Name,
		Scenario:      scn.Name(),
		Structure:     scn.Structures(),
		CM:            cmName,
		Dist:          cfg.Workload.Dist.Label(),
		Theta:         cfg.Workload.Dist.ZipfTheta(),
		Threads:       cfg.Threads,
		OpsPerMs:      m.OpsPerMs(),
		AbortRate:     m.Totals.AbortRate(),
		AllocsPerOp:   m.AllocsPerOp(),
		Violations:    scn.Violations() - warmupViolations,
		Ops:           m.Ops,
		Commits:       m.Totals.Commits,
		Aborts:        m.Totals.Aborts,
		AbortsByCause: m.Totals.AbortsByCause,
		Elapsed:       m.Elapsed,
	}
	r.setLatency(m.Hist)
	return r
}

// ScenarioSweepConfig describes a whole scenario panel: one scenario, a
// thread sweep, the engines to compare, and the contention-policy and
// key-distribution axes to sweep them under.
type ScenarioSweepConfig struct {
	Scenario string
	Threads  []int
	Duration time.Duration
	Warmup   time.Duration
	Runs     int // per point; results are averaged, violations summed
	Engines  []Engine
	CMs      []string // contention policies (internal/cm names); nil = default
	Workload workload.ScenarioConfig
	// Dists sweeps key distributions: each entry replaces Workload.Dist
	// for its own set of points. Nil means just Workload.Dist.
	Dists []workload.DistConfig
}

// ScenarioSweep measures every (distribution, cm, engine, threads) point
// of the panel.
func ScenarioSweep(cfg ScenarioSweepConfig) []Result {
	if cfg.Runs < 1 {
		cfg.Runs = 1
	}
	dists := distConfigs(cfg.Dists, cfg.Workload.Dist)
	if !workload.ScenarioKeyed(cfg.Scenario) {
		// Key-free scenario: every distribution yields the same workload,
		// so measure once (RunScenario tags it uniform).
		dists = dists[:1]
	}
	var out []Result
	for _, dist := range dists {
		wl := cfg.Workload
		wl.Dist = dist
		for _, cmName := range CMNames(cfg.CMs) {
			for _, eng := range cfg.Engines {
				for _, n := range cfg.Threads {
					rs := make([]Result, cfg.Runs)
					for i := range rs {
						rs[i] = RunScenario(eng, ScenarioRunConfig{
							Scenario: cfg.Scenario,
							Threads:  n,
							Duration: cfg.Duration,
							Warmup:   cfg.Warmup,
							Workload: wl,
							CM:       cmName,
						})
					}
					out = append(out, average(rs))
				}
			}
		}
	}
	return out
}

// FormatScenario renders a scenario panel as an aligned table: one row
// per thread count; throughput, abort-rate, allocs/op, latency (p50/p99
// µs) and invariant-violation columns per engine (per engine/policy pair
// when sweeping contention managers, per distribution when sweeping
// those), followed by the per-cause abort breakdown.
func FormatScenario(results []Result, scenario string) string {
	multiCM := sweepsCMs(results)
	multiDist := sweepsDists(results)
	var engines []string
	seen := map[string]bool{}
	structures := ""
	for _, r := range results {
		l := columnLabel(r, multiCM, multiDist)
		if !seen[l] {
			seen[l] = true
			engines = append(engines, l)
		}
		structures = r.Structure
	}
	threadSet := map[int]bool{}
	for _, r := range results {
		threadSet[r.Threads] = true
	}
	var threads []int
	for n := range threadSet {
		threads = append(threads, n)
	}
	sort.Ints(threads)

	point := map[string]map[int]Result{}
	for _, r := range results {
		l := columnLabel(r, multiCM, multiDist)
		if point[l] == nil {
			point[l] = map[int]Result{}
		}
		point[l][r.Threads] = r
	}

	var b strings.Builder
	fmt.Fprintf(&b, "scenario %s on %s (throughput ops/ms | abort %% | allocs/op | p50/p99 µs | invariant violations)\n",
		scenario, structures)
	w := labelWidth(engines)
	fmt.Fprintf(&b, "%-8s", "threads")
	for _, e := range engines {
		fmt.Fprintf(&b, " %*s %7s %7s %7s %7s %5s", w, e, "ab%", "allocs", "p50us", "p99us", "viol")
	}
	b.WriteByte('\n')
	for _, n := range threads {
		fmt.Fprintf(&b, "%-8d", n)
		for _, e := range engines {
			r, ok := point[e][n]
			if !ok {
				fmt.Fprintf(&b, " %*s %7s %7s %7s %7s %5s", w, "-", "-", "-", "-", "-", "-")
				continue
			}
			fmt.Fprintf(&b, " %*.1f %7.2f %7.2f %7.1f %7.1f %5d",
				w, r.OpsPerMs, r.AbortRate, r.AllocsPerOp, usec(r.LatP50), usec(r.LatP99), r.Violations)
		}
		b.WriteByte('\n')
	}
	b.WriteString(FormatCauses(results))
	b.WriteString(FormatHotKeys(results))
	return b.String()
}
