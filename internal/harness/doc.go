// Package harness runs the evaluation workloads: duration-based
// measurement of every engine with thread-count sweeps, reporting
// throughput (operations per millisecond), abort ratio, per-operation
// latency percentiles (p50/p95/p99/max), and the process-wide allocation
// rate per operation.
//
// It has two runners:
//
//   - The mix runner (RunSTM/Sweep) reproduces the paper's §VII
//     evaluation: the contains/add/remove/addAll/removeAll mixes of
//     Figs. 6-8 against one e.e.c structure, plus the bare sequential
//     baseline (RunSequential).
//   - The scenario runner (RunScenario/ScenarioSweep) drives the
//     composed-transaction scenario suite of internal/workload — move,
//     insert-if-absent, bank, pipeline — whose operations compose
//     elementary operations across structures and whose invariant audits
//     count atomicity violations per run. The violation count rides in
//     Result.Violations: always 0 on the composing engines, non-zero on
//     the E-STM ablation (and in Unsound mode), which is the paper's
//     Fig. 1 made measurable.
//
// Both runners sweep two orthogonal axes beside threads: contention
// policies (SweepConfig.CMs, internal/cm names) and key distributions
// (SweepConfig.Dists, workload.DistConfig — uniform, zipfian, hotspot,
// shifting-hotspot), so hot-key regimes and retry policies can be
// compared cell by cell.
//
// Measurement protocol (both runners): build a fresh engine and
// structures, fill, start one goroutine per configured thread, let the
// warmup elapse, then count operations and commit/abort deltas over the
// measured window; scenarios additionally run an end-state invariant
// check after the workers quiesce. Allocations are sampled process-wide
// (runtime.MemStats.Mallocs) across the window and divided by completed
// operations. Latency is recorded per operation into per-worker
// stats.Histograms allocated before the warmup: one clock read per
// operation (each operation's end timestamps the next one's start) into
// fixed log-linear buckets, so the measured window itself adds no heap
// traffic and the allocs/op axis stays honest. Warmup-time operations
// are not recorded; the per-worker histograms merge into the point's
// percentiles (and merge again across -runs, which equals one long run
// because histogram merge is associative).
//
// Results render as aligned text tables (Format, FormatScenario) or CSV
// (CSV); the CSV schema is the CSVHeader value, documented column by
// column there and in the README's "CSV schema" section.
package harness
