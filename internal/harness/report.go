package harness

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"oestm/internal/stats"
	"oestm/internal/workload"
)

// SweepConfig describes a whole figure: one structure, one bulk
// percentage, a list of thread counts, and the engines to compare.
type SweepConfig struct {
	Structure  string
	BulkPct    int
	Threads    []int
	Duration   time.Duration
	Warmup     time.Duration
	Runs       int // per point; results are averaged
	Engines    []Engine
	Sequential bool // include the bare sequential baseline
	Workload   workload.Config
}

// DefaultThreads is the paper's thread sweep.
var DefaultThreads = []int{1, 2, 4, 8, 16, 32, 64}

// Sweep measures every (engine, threads) point of the figure and returns
// the averaged results, sequential baseline first.
func Sweep(cfg SweepConfig) []Result {
	if cfg.Runs < 1 {
		cfg.Runs = 1
	}
	var out []Result
	if cfg.Sequential {
		rs := make([]Result, cfg.Runs)
		for i := range rs {
			rs[i] = RunSequential(RunConfig{
				Structure: cfg.Structure,
				Threads:   1,
				Duration:  cfg.Duration,
				Warmup:    cfg.Warmup,
				Workload:  cfg.Workload,
			})
		}
		out = append(out, average(rs))
	}
	for _, eng := range cfg.Engines {
		for _, n := range cfg.Threads {
			rs := make([]Result, cfg.Runs)
			for i := range rs {
				rs[i] = RunSTM(eng, RunConfig{
					Structure: cfg.Structure,
					Threads:   n,
					Duration:  cfg.Duration,
					Warmup:    cfg.Warmup,
					Workload:  cfg.Workload,
				})
			}
			out = append(out, average(rs))
		}
	}
	return out
}

// average folds repeated runs of one point into one result.
func average(rs []Result) Result {
	if len(rs) == 1 {
		return rs[0]
	}
	out := rs[0]
	tp := make([]float64, len(rs))
	ab := make([]float64, len(rs))
	al := make([]float64, len(rs))
	for i, r := range rs {
		tp[i] = r.OpsPerMs
		ab[i] = r.AbortRate
		al[i] = r.AllocsPerOp
		if i > 0 {
			out.Ops += r.Ops
			out.Commits += r.Commits
			out.Aborts += r.Aborts
			// Violations are summed, not averaged: any non-zero count
			// means the invariant broke, and averaging could round a
			// single violation out of sight.
			out.Violations += r.Violations
		}
	}
	out.OpsPerMs = stats.Mean(tp)
	out.AbortRate = stats.Mean(ab)
	out.AllocsPerOp = stats.Mean(al)
	return out
}

// FigureTitle names the paper figure for a structure, as in §VII-B.
func FigureTitle(structure string) string {
	switch structure {
	case "linkedlist":
		return "Fig. 6: LinkedListSet"
	case "skiplist":
		return "Fig. 7: SkipListSet"
	case "hashset":
		return "Fig. 8: HashSet"
	default:
		return structure
	}
}

// Format renders a figure's results as an aligned table: one row per
// thread count, throughput and abort-rate columns per engine — the text
// rendition of the paper's plots.
func Format(results []Result, structure string, bulkPct int) string {
	var engines []string
	seen := map[string]bool{}
	for _, r := range results {
		if !seen[r.Engine] {
			seen[r.Engine] = true
			engines = append(engines, r.Engine)
		}
	}
	threadSet := map[int]bool{}
	for _, r := range results {
		if r.Engine != "sequential" {
			threadSet[r.Threads] = true
		}
	}
	var threads []int
	for n := range threadSet {
		threads = append(threads, n)
	}
	sort.Ints(threads)

	point := map[string]map[int]Result{}
	for _, r := range results {
		if point[r.Engine] == nil {
			point[r.Engine] = map[int]Result{}
		}
		point[r.Engine][r.Threads] = r
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%s — %d%% addAll/removeAll (throughput ops/ms | abort %% | allocs/op)\n",
		FigureTitle(structure), bulkPct)
	fmt.Fprintf(&b, "%-8s", "threads")
	for _, e := range engines {
		if e == "sequential" {
			fmt.Fprintf(&b, " %12s", e)
			continue
		}
		fmt.Fprintf(&b, " %12s %7s %7s", e, "ab%", "allocs")
	}
	b.WriteByte('\n')
	for _, n := range threads {
		fmt.Fprintf(&b, "%-8d", n)
		for _, e := range engines {
			if e == "sequential" {
				r := point[e][1]
				fmt.Fprintf(&b, " %12.1f", r.OpsPerMs)
				continue
			}
			r, ok := point[e][n]
			if !ok {
				fmt.Fprintf(&b, " %12s %7s %7s", "-", "-", "-")
				continue
			}
			fmt.Fprintf(&b, " %12.1f %7.2f %7.2f", r.OpsPerMs, r.AbortRate, r.AllocsPerOp)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// CSVHeader is the column line of the harness CSV output. It is the
// single source of truth for the schema: CSV writes it, compose-bench
// quotes it in its -csv flag help, and the README documents each column
// against it. Columns: scenario ("mix" for the Figs. 6-8 workload, else
// the composed-scenario name), structure (structure label; for composed
// scenarios the structures the scenario spans), bulk_pct (percentage of
// bulk operations; 0 for scenarios), engine, threads, ops_per_ms
// (completed operations per millisecond of measured time, the paper's
// throughput unit), abort_rate (aborted attempts as a percentage of all
// attempts), allocs_per_op (process-wide heap allocations per completed
// operation over the measured window), violations (invariant violations
// observed by scenario audits during the measured window plus the
// end-state check; always 0 for the mix and for every transactional
// engine), ops/commits/aborts (raw counts over the measured window,
// summed across runs of a point).
const CSVHeader = "scenario,structure,bulk_pct,engine,threads,ops_per_ms,abort_rate,allocs_per_op,violations,ops,commits,aborts"

// CSV renders results as comma-separated rows with a header, for
// plotting. The schema is CSVHeader.
func CSV(results []Result) string {
	var b strings.Builder
	b.WriteString(CSVHeader)
	b.WriteByte('\n')
	for _, r := range results {
		fmt.Fprintf(&b, "%s,%s,%d,%s,%d,%.2f,%.3f,%.3f,%d,%d,%d,%d\n",
			r.Scenario, r.Structure, r.BulkPct, r.Engine, r.Threads, r.OpsPerMs, r.AbortRate, r.AllocsPerOp, r.Violations, r.Ops, r.Commits, r.Aborts)
	}
	return b.String()
}
