package harness

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"oestm/internal/stats"
	"oestm/internal/stm"
	"oestm/internal/workload"
)

// SweepConfig describes a whole figure: one structure, one bulk
// percentage, a list of thread counts, the engines to compare, the
// contention-management policies to sweep them under, and the key
// distributions to drive them with.
type SweepConfig struct {
	Structure  string
	BulkPct    int
	Threads    []int
	Duration   time.Duration
	Warmup     time.Duration
	Runs       int // per point; results are averaged
	Engines    []Engine
	CMs        []string // contention policies (internal/cm names); nil = default
	Sequential bool     // include the bare sequential baseline
	Workload   workload.Config
	// Dists sweeps key distributions: each entry replaces Workload.Dist
	// for its own set of points (sequential baseline included, once per
	// distribution). Nil means just Workload.Dist as configured.
	Dists []workload.DistConfig
}

// distConfigs resolves a sweep's distribution axis: nil or empty means
// just the base config. Invalid entries panic (CLI front-ends validate
// with workload.DistConfig.Validate first).
func distConfigs(sweep []workload.DistConfig, base workload.DistConfig) []workload.DistConfig {
	if len(sweep) == 0 {
		return []workload.DistConfig{base}
	}
	for _, d := range sweep {
		if err := d.Validate(); err != nil {
			panic(err.Error())
		}
	}
	return sweep
}

// DefaultThreads is the paper's thread sweep.
var DefaultThreads = []int{1, 2, 4, 8, 16, 32, 64}

// Sweep measures every (distribution, cm, engine, threads) point of the
// figure and returns the averaged results, each distribution's sequential
// baseline first.
func Sweep(cfg SweepConfig) []Result {
	if cfg.Runs < 1 {
		cfg.Runs = 1
	}
	var out []Result
	for _, dist := range distConfigs(cfg.Dists, cfg.Workload.Dist) {
		wl := cfg.Workload
		wl.Dist = dist
		if cfg.Sequential {
			rs := make([]Result, cfg.Runs)
			for i := range rs {
				rs[i] = RunSequential(RunConfig{
					Structure: cfg.Structure,
					Threads:   1,
					Duration:  cfg.Duration,
					Warmup:    cfg.Warmup,
					Workload:  wl,
				})
			}
			out = append(out, average(rs))
		}
		for _, cmName := range CMNames(cfg.CMs) {
			for _, eng := range cfg.Engines {
				for _, n := range cfg.Threads {
					rs := make([]Result, cfg.Runs)
					for i := range rs {
						rs[i] = RunSTM(eng, RunConfig{
							Structure: cfg.Structure,
							Threads:   n,
							Duration:  cfg.Duration,
							Warmup:    cfg.Warmup,
							Workload:  wl,
							CM:        cmName,
						})
					}
					out = append(out, average(rs))
				}
			}
		}
	}
	return out
}

// average folds repeated runs of one point into one result. Latency is
// not averaged: the runs' histograms are merged (merge is associative, so
// this equals one long run) and the percentiles recomputed from the
// merged distribution.
func average(rs []Result) Result {
	if len(rs) == 1 {
		return rs[0]
	}
	out := rs[0]
	tp := make([]float64, len(rs))
	ab := make([]float64, len(rs))
	al := make([]float64, len(rs))
	merged := new(stats.Histogram)
	for i, r := range rs {
		tp[i] = r.OpsPerMs
		ab[i] = r.AbortRate
		al[i] = r.AllocsPerOp
		if r.Hist != nil {
			merged.Merge(r.Hist)
		}
		if i > 0 {
			out.Ops += r.Ops
			out.Commits += r.Commits
			out.Aborts += r.Aborts
			for c := range out.AbortsByCause {
				out.AbortsByCause[c] += r.AbortsByCause[c]
			}
			// Violations are summed, not averaged: any non-zero count
			// means the invariant broke, and averaging could round a
			// single violation out of sight.
			out.Violations += r.Violations
			out.WALAppends += r.WALAppends
			out.WALSyncs += r.WALSyncs
			out.WALBytes += r.WALBytes
			out.SpecExecs += r.SpecExecs
			out.SpecReexecs += r.SpecReexecs
			out.SpecValidationFails += r.SpecValidationFails
			out.Adds += r.Adds
			out.BoostedOps += r.BoostedOps
			out.HotPromotions += r.HotPromotions
			out.HotDemotions += r.HotDemotions
		}
	}
	out.OpsPerMs = stats.Mean(tp)
	out.AbortRate = stats.Mean(ab)
	out.AllocsPerOp = stats.Mean(al)
	out.setLatency(merged)
	return out
}

// FigureTitle names the paper figure for a structure, as in §VII-B.
func FigureTitle(structure string) string {
	switch structure {
	case "linkedlist":
		return "Fig. 6: LinkedListSet"
	case "skiplist":
		return "Fig. 7: SkipListSet"
	case "hashset":
		return "Fig. 8: HashSet"
	default:
		return structure
	}
}

// columnLabel names a result's table column: the engine, qualified with
// the contention policy ("engine/cm") when the result set sweeps more
// than one policy, and with the key distribution ("engine@dist") when it
// sweeps more than one distribution — the per-cell dist axis.
func columnLabel(r Result, multiCM, multiDist bool) string {
	l := r.Engine
	if multiCM && r.Engine != "sequential" {
		l += "/" + r.CM
	}
	if multiDist {
		l += "@" + r.Dist
	}
	return l
}

// labelWidth sizes the engine column of a table: wide enough for the
// longest label (engine/policy pairs can exceed the 12-char default,
// e.g. "swisstm/aggressive") so the ab%/allocs columns stay aligned.
func labelWidth(labels []string) int {
	w := 12
	for _, l := range labels {
		if len(l) > w {
			w = len(l)
		}
	}
	return w
}

// sweepsCMs reports whether results span more than one contention policy
// (the sequential baseline's "-" placeholder does not count).
func sweepsCMs(results []Result) bool {
	cms := map[string]bool{}
	for _, r := range results {
		if r.Engine != "sequential" {
			cms[r.CM] = true
		}
	}
	return len(cms) > 1
}

// sweepsDists reports whether results span more than one key
// distribution.
func sweepsDists(results []Result) bool {
	dists := map[string]bool{}
	for _, r := range results {
		dists[r.Dist] = true
	}
	return len(dists) > 1
}

// usec renders a duration as microseconds for tables and CSV.
func usec(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }

// Format renders a figure's results as an aligned table: one row per
// thread count; throughput, abort-rate, allocs/op and latency (p50/p99
// µs) columns per engine (per engine/policy pair when sweeping contention
// managers, per distribution when sweeping those) — the text rendition of
// the paper's plots — followed by the per-cause abort breakdown.
func Format(results []Result, structure string, bulkPct int) string {
	multiCM := sweepsCMs(results)
	multiDist := sweepsDists(results)
	var labels []string
	seen := map[string]bool{}
	for _, r := range results {
		l := columnLabel(r, multiCM, multiDist)
		if !seen[l] {
			seen[l] = true
			labels = append(labels, l)
		}
	}
	threadSet := map[int]bool{}
	for _, r := range results {
		if r.Engine != "sequential" {
			threadSet[r.Threads] = true
		}
	}
	var threads []int
	for n := range threadSet {
		threads = append(threads, n)
	}
	sort.Ints(threads)

	point := map[string]map[int]Result{}
	for _, r := range results {
		l := columnLabel(r, multiCM, multiDist)
		if point[l] == nil {
			point[l] = map[int]Result{}
		}
		point[l][r.Threads] = r
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%s — %d%% addAll/removeAll (throughput ops/ms | abort %% | allocs/op | p50/p99 µs)\n",
		FigureTitle(structure), bulkPct)
	w := labelWidth(labels)
	fmt.Fprintf(&b, "%-8s", "threads")
	for _, l := range labels {
		if strings.HasPrefix(l, "sequential") {
			fmt.Fprintf(&b, " %*s %7s", w, l, "p99us")
			continue
		}
		fmt.Fprintf(&b, " %*s %7s %7s %7s %7s", w, l, "ab%", "allocs", "p50us", "p99us")
	}
	b.WriteByte('\n')
	for _, n := range threads {
		fmt.Fprintf(&b, "%-8d", n)
		for _, l := range labels {
			if strings.HasPrefix(l, "sequential") {
				r := point[l][1]
				fmt.Fprintf(&b, " %*.1f %7.1f", w, r.OpsPerMs, usec(r.LatP99))
				continue
			}
			r, ok := point[l][n]
			if !ok {
				fmt.Fprintf(&b, " %*s %7s %7s %7s %7s", w, "-", "-", "-", "-", "-")
				continue
			}
			fmt.Fprintf(&b, " %*.1f %7.2f %7.2f %7.1f %7.1f",
				w, r.OpsPerMs, r.AbortRate, r.AllocsPerOp, usec(r.LatP50), usec(r.LatP99))
		}
		b.WriteByte('\n')
	}
	b.WriteString(FormatCauses(results))
	return b.String()
}

// displayCauses is the cause order of breakdown tables and CSV columns:
// the classified causes first, the unknown bucket last.
func displayCauses() []stm.ConflictCause {
	out := make([]stm.ConflictCause, 0, stm.NumCauses)
	for c := 1; c < stm.NumCauses; c++ {
		out = append(out, stm.ConflictCause(c))
	}
	return append(out, stm.CauseUnknown)
}

// FormatCauses renders the per-cause abort breakdown of a result set: one
// row per engine (or engine/policy pair), each cause's aborts summed over
// the thread sweep and runs. Rows and the whole block are omitted when
// nothing aborted.
func FormatCauses(results []Result) string {
	multiCM := sweepsCMs(results)
	multiDist := sweepsDists(results)
	var labels []string
	totals := map[string]*[stm.NumCauses]uint64{}
	for _, r := range results {
		if r.Engine == "sequential" {
			continue
		}
		l := columnLabel(r, multiCM, multiDist)
		t, ok := totals[l]
		if !ok {
			t = new([stm.NumCauses]uint64)
			totals[l] = t
			labels = append(labels, l)
		}
		for c := range r.AbortsByCause {
			t[c] += r.AbortsByCause[c]
		}
	}
	any := false
	for _, t := range totals {
		for _, n := range t {
			if n > 0 {
				any = true
			}
		}
	}
	if !any {
		return ""
	}
	var b strings.Builder
	b.WriteString("aborts by cause (summed over sweep)\n")
	fmt.Fprintf(&b, "%-24s", "")
	for _, c := range displayCauses() {
		fmt.Fprintf(&b, " %18s", c)
	}
	b.WriteByte('\n')
	for _, l := range labels {
		fmt.Fprintf(&b, "%-24s", l)
		for _, c := range displayCauses() {
			fmt.Fprintf(&b, " %18d", totals[l][c])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// FormatHotKeys renders the commutative hot-key path's counters: one
// row per engine (or engine/policy pair), deltas summed over the sweep.
// Omitted entirely when no delta operations ran (non-add mixes,
// in-process runs).
func FormatHotKeys(results []Result) string {
	multiCM := sweepsCMs(results)
	multiDist := sweepsDists(results)
	var labels []string
	totals := map[string]*[4]uint64{}
	for _, r := range results {
		if r.Engine == "sequential" {
			continue
		}
		l := columnLabel(r, multiCM, multiDist)
		t, ok := totals[l]
		if !ok {
			t = new([4]uint64)
			totals[l] = t
			labels = append(labels, l)
		}
		t[0] += r.Adds
		t[1] += r.BoostedOps
		t[2] += r.HotPromotions
		t[3] += r.HotDemotions
	}
	any := false
	for _, t := range totals {
		if t[0] > 0 {
			any = true
		}
	}
	if !any {
		return ""
	}
	var b strings.Builder
	b.WriteString("hot-key path (summed over sweep)\n")
	fmt.Fprintf(&b, "%-24s %18s %18s %18s %18s\n", "", "adds", "boosted_ops", "promotions", "demotions")
	for _, l := range labels {
		t := totals[l]
		fmt.Fprintf(&b, "%-24s %18d %18d %18d %18d\n", l, t[0], t[1], t[2], t[3])
	}
	return b.String()
}

// CSVHeader is the column line of the harness CSV output. It is the
// single source of truth for the schema: CSV writes it, compose-bench
// quotes it in its -csv flag help, and the README documents each column
// against it. Columns: scenario ("mix" for the Figs. 6-8 workload, else
// the composed-scenario name), structure (structure label; for composed
// scenarios the structures the scenario spans), bulk_pct (percentage of
// bulk operations; 0 for scenarios), engine, cm (contention-management
// policy; "-" for sequential), dist (key-distribution label,
// workload.DistConfig.Label), theta (Zipfian skew; 0 for non-zipfian
// points), threads, ops_per_ms (completed operations per millisecond of
// measured time, the paper's throughput unit), abort_rate (aborted
// attempts as a percentage of all attempts), allocs_per_op (process-wide
// heap allocations per completed operation over the measured window),
// lat_p50_us/lat_p95_us/lat_p99_us/lat_max_us (per-operation latency
// percentiles and exact maximum over the measured window, microseconds,
// from the merged per-worker histograms), violations (invariant
// violations observed by scenario audits during the measured window plus
// the end-state check; always 0 for the mix and for every transactional
// engine), ops/commits/aborts (raw counts over the measured window,
// summed across runs of a point), one aborts_<cause> column per
// stm.ConflictCause (classified causes first, unknown last; they sum to
// aborts), and the durability axis: wal ("on"/"off" for server load
// results, "-" for in-process runs) with
// wal_appends/wal_syncs/wal_bytes, the server's write-ahead-log deltas
// over the measured window (records appended, group-commit flush
// batches, bytes written), and the execution-model axis: exec ("conn" or
// "batch" for server load results, "-" for in-process runs) with
// spec_execs/spec_reexecs/spec_validation_fails, the speculative
// executor's deltas over the measured window (Speculate attempts,
// attempts beyond a transaction's first, completed attempts whose read
// set failed validation; all zero in conn mode), and the commutative
// hot-key axis: adds/boosted_ops/hot_promotions/hot_demotions, the
// server's delta-operation counters over the measured window (delta
// operations accepted, how many ran boosted under abstract per-key
// locks, keys the adaptive tracker promoted, promoted keys folded back
// by absolute operations; all zero for in-process runs and non-add
// mixes). The wal, exec and hot-key columns sit at the end, newest
// last, so earlier consumers' positional indexes keep working.
var CSVHeader = func() string {
	cols := "scenario,structure,bulk_pct,engine,cm,dist,theta,threads,ops_per_ms,abort_rate,allocs_per_op," +
		"lat_p50_us,lat_p95_us,lat_p99_us,lat_max_us,violations,ops,commits,aborts"
	for _, c := range displayCauses() {
		cols += ",aborts_" + c.Slug()
	}
	return cols + ",wal,wal_appends,wal_syncs,wal_bytes,exec,spec_execs,spec_reexecs,spec_validation_fails" +
		",adds,boosted_ops,hot_promotions,hot_demotions"
}()

// CSV renders results as comma-separated rows with a header, for
// plotting. The schema is CSVHeader.
func CSV(results []Result) string {
	var b strings.Builder
	b.WriteString(CSVHeader)
	b.WriteByte('\n')
	for _, r := range results {
		fmt.Fprintf(&b, "%s,%s,%d,%s,%s,%s,%.2f,%d,%.2f,%.3f,%.3f,%.1f,%.1f,%.1f,%.1f,%d,%d,%d,%d",
			r.Scenario, r.Structure, r.BulkPct, r.Engine, r.CM, r.Dist, r.Theta, r.Threads,
			r.OpsPerMs, r.AbortRate, r.AllocsPerOp,
			usec(r.LatP50), usec(r.LatP95), usec(r.LatP99), usec(r.LatMax),
			r.Violations, r.Ops, r.Commits, r.Aborts)
		for _, c := range displayCauses() {
			fmt.Fprintf(&b, ",%d", r.AbortsByCause[c])
		}
		walLabel := r.WAL
		if walLabel == "" {
			walLabel = "-"
		}
		fmt.Fprintf(&b, ",%s,%d,%d,%d", walLabel, r.WALAppends, r.WALSyncs, r.WALBytes)
		execLabel := r.Exec
		if execLabel == "" {
			execLabel = "-"
		}
		fmt.Fprintf(&b, ",%s,%d,%d,%d", execLabel, r.SpecExecs, r.SpecReexecs, r.SpecValidationFails)
		fmt.Fprintf(&b, ",%d,%d,%d,%d", r.Adds, r.BoostedOps, r.HotPromotions, r.HotDemotions)
		b.WriteByte('\n')
	}
	return b.String()
}
