package harness

import (
	"strings"
	"testing"
	"time"

	"oestm/internal/workload"
)

func quickWorkload() workload.Config { return workload.Scaled(5, 32) } // 128 elems

func TestEngineRegistry(t *testing.T) {
	names := map[string]bool{}
	for _, e := range AllEngines() {
		if names[e.Name] {
			t.Fatalf("duplicate engine %q", e.Name)
		}
		names[e.Name] = true
		tm := e.New()
		if tm.Name() != e.Name {
			t.Fatalf("factory for %q builds %q", e.Name, tm.Name())
		}
	}
	for _, want := range []string{"oestm", "lsa", "tl2", "swisstm", "estm"} {
		if !names[want] {
			t.Fatalf("missing engine %q", want)
		}
	}
	if _, ok := EngineByName("oestm"); !ok {
		t.Fatal("EngineByName failed for oestm")
	}
	if _, ok := EngineByName("nope"); ok {
		t.Fatal("EngineByName accepted unknown name")
	}
}

func TestStructureFactories(t *testing.T) {
	cfg := quickWorkload()
	for _, s := range Structures() {
		if NewStructure(s, cfg) == nil {
			t.Fatalf("nil structure %q", s)
		}
		if NewSeqStructure(s, cfg) == nil {
			t.Fatalf("nil sequential structure %q", s)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unknown structure must panic")
		}
	}()
	NewStructure("bogus", cfg)
}

func TestRunSTMProducesWork(t *testing.T) {
	eng, _ := EngineByName("oestm")
	r := RunSTM(eng, RunConfig{
		Structure: "hashset",
		Threads:   2,
		Duration:  50 * time.Millisecond,
		Warmup:    10 * time.Millisecond,
		Workload:  quickWorkload(),
	})
	if r.Ops == 0 || r.OpsPerMs <= 0 {
		t.Fatalf("no work measured: %+v", r)
	}
	if r.Engine != "oestm" || r.Threads != 2 || r.Structure != "hashset" {
		t.Fatalf("metadata wrong: %+v", r)
	}
	if r.AbortRate < 0 || r.AbortRate > 100 {
		t.Fatalf("abort rate out of range: %+v", r)
	}
}

func TestRunSequentialProducesWork(t *testing.T) {
	r := RunSequential(RunConfig{
		Structure: "linkedlist",
		Duration:  30 * time.Millisecond,
		Warmup:    5 * time.Millisecond,
		Workload:  quickWorkload(),
	})
	if r.Ops == 0 || r.OpsPerMs <= 0 {
		t.Fatalf("no sequential work measured: %+v", r)
	}
	if r.Engine != "sequential" {
		t.Fatalf("engine = %q", r.Engine)
	}
}

func TestSweepAndFormat(t *testing.T) {
	eng, _ := EngineByName("tl2")
	results := Sweep(SweepConfig{
		Structure:  "hashset",
		BulkPct:    5,
		Threads:    []int{1, 2},
		Duration:   25 * time.Millisecond,
		Warmup:     5 * time.Millisecond,
		Runs:       2,
		Engines:    []Engine{eng},
		Sequential: true,
		Workload:   quickWorkload(),
	})
	// sequential + 2 thread points
	if len(results) != 3 {
		t.Fatalf("results = %d, want 3", len(results))
	}
	text := Format(results, "hashset", 5)
	for _, want := range []string{"Fig. 8", "threads", "tl2", "sequential", "addAll/removeAll"} {
		if !strings.Contains(text, want) {
			t.Fatalf("formatted output missing %q:\n%s", want, text)
		}
	}
	csv := CSV(results)
	if !strings.HasPrefix(csv, CSVHeader+"\n") {
		t.Fatalf("csv header wrong:\n%s", csv)
	}
	if !strings.Contains(csv, "mix,hashset,5,tl2,") {
		t.Fatalf("csv rows missing mix scenario label:\n%s", csv)
	}
	if got := strings.Count(csv, "\n"); got != 4 {
		t.Fatalf("csv rows = %d, want 4 (header + 3)", got)
	}
}

func TestFigureTitles(t *testing.T) {
	cases := map[string]string{
		"linkedlist": "Fig. 6", "skiplist": "Fig. 7", "hashset": "Fig. 8", "other": "other",
	}
	for s, want := range cases {
		if got := FigureTitle(s); !strings.Contains(got, want) {
			t.Fatalf("title for %s = %q", s, got)
		}
	}
}
