package harness

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"

	"oestm/internal/server"
	"oestm/internal/store"
	"oestm/internal/wire"
	"oestm/internal/workload"
)

func TestLoadMixParseAndValidate(t *testing.T) {
	if err := DefaultLoadMix().Validate(); err != nil {
		t.Fatal(err)
	}
	m, err := ParseLoadMix("get:50,put:30,cam:20")
	if err != nil {
		t.Fatal(err)
	}
	if m.GetPct != 50 || m.PutPct != 30 || m.CamPct != 20 || m.RemovePct != 0 {
		t.Fatalf("parsed %+v", m)
	}
	round, err := ParseLoadMix(DefaultLoadMix().String())
	if err != nil || round != DefaultLoadMix() {
		t.Fatalf("String/Parse round trip: %+v, %v", round, err)
	}
	adds, err := ParseLoadMix("get:20,add:60,madd:20")
	if err != nil {
		t.Fatal(err)
	}
	if adds.AddPct != 60 || adds.MAddPct != 20 {
		t.Fatalf("parsed add mix %+v", adds)
	}
	round, err = ParseLoadMix(adds.String())
	if err != nil || round != adds {
		t.Fatalf("add mix String/Parse round trip: %+v, %v", round, err)
	}
	for _, bad := range []string{"get:50", "get:blah,put:100", "nope:100", "get", "add:50,madd:60"} {
		if _, err := ParseLoadMix(bad); err == nil {
			t.Errorf("ParseLoadMix(%q) accepted", bad)
		}
	}
}

// TestRunLoadAddMix drives the add/madd mix against a boosted server and
// checks the hot-key columns come back attributed.
func TestRunLoadAddMix(t *testing.T) {
	eng, _ := EngineByName("oestm")
	srv := startFaninServer(t, server.Config{
		Engine:     eng.Name,
		NewTM:      eng.New,
		Shards:     8,
		MaxRetries: 2000,
		Boost:      store.BoostOn,
	})
	var progress bytes.Buffer
	r, err := RunLoad(LoadConfig{
		Addr:     srv.Addr().String(),
		Conns:    2,
		Duration: 90 * time.Millisecond,
		Warmup:   20 * time.Millisecond,
		Keys:     64,
		Span:     4,
		Mix:      LoadMix{GetPct: 20, AddPct: 50, MAddPct: 25, MGetPct: 5},
		Dist:     workload.DistConfig{Name: workload.DistZipfian, Theta: 0.99},

		ReportEvery: 25 * time.Millisecond,
		ReportTo:    &progress,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Ops == 0 {
		t.Fatalf("no throughput: %+v", r)
	}
	if r.Adds == 0 || r.BoostedOps == 0 {
		t.Fatalf("hot-key columns not attributed: adds=%d boosted=%d", r.Adds, r.BoostedOps)
	}
	csv := CSV([]Result{r})
	if !strings.Contains(CSVHeader, "adds,boosted_ops,hot_promotions,hot_demotions") {
		t.Fatalf("csv header missing hot-key columns: %s", CSVHeader)
	}
	if !strings.HasPrefix(csv, CSVHeader+"\n") {
		t.Fatal("csv header wrong")
	}
	if !strings.Contains(progress.String(), "ops/s=") || !strings.Contains(progress.String(), "abort%=") {
		t.Fatalf("report-every produced no progress lines: %q", progress.String())
	}
	if table := FormatScenario([]Result{r}, LoadScenario); !strings.Contains(table, "hot-key path") {
		t.Fatalf("scenario table missing hot-key block:\n%s", table)
	}

	// The same run must have populated the per-shard telemetry block, and
	// the shard ops must account for (at least) the keyed requests.
	cl, err := server.DialTimeout(srv.Addr().String(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	var p wire.StatsPayload
	if err := cl.Stats(&p); err != nil {
		t.Fatal(err)
	}
	if len(p.ShardStats) != 8 {
		t.Fatalf("ShardStats has %d entries, want 8", len(p.ShardStats))
	}
	var shardOps uint64
	for _, s := range p.ShardStats {
		shardOps += s.Ops
	}
	if shardOps == 0 {
		t.Fatal("per-shard ops all zero after a keyed load")
	}
}

// TestRunLoadAllEngines is the loopback acceptance path: every engine
// serves a short closed-loop run and lands in the standard Result with
// sane metrics and server-attributed identity.
func TestRunLoadAllEngines(t *testing.T) {
	for _, eng := range AllEngines() {
		t.Run(eng.Name, func(t *testing.T) {
			srv, err := server.New(server.Config{
				Addr:       "127.0.0.1:0",
				Engine:     eng.Name,
				NewTM:      eng.New,
				Shards:     8,
				CM:         "adaptive",
				MaxRetries: 2000, // liveness guard for the estm ablation
			})
			if err != nil {
				t.Fatal(err)
			}
			if err := srv.Start(); err != nil {
				t.Fatal(err)
			}
			defer func() {
				ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
				defer cancel()
				if err := srv.Shutdown(ctx); err != nil {
					t.Errorf("shutdown: %v", err)
				}
			}()

			r, err := RunLoad(LoadConfig{
				Addr:     srv.Addr().String(),
				Conns:    2,
				Duration: 60 * time.Millisecond,
				Warmup:   20 * time.Millisecond,
				Keys:     256,
				Dist:     workload.DistConfig{Name: workload.DistZipfian, Theta: 0.9},
			})
			if err != nil {
				t.Fatal(err)
			}
			if r.Engine != eng.Name || r.CM != "adaptive" || r.Scenario != LoadScenario {
				t.Fatalf("identity: %+v", r)
			}
			if r.Structure != "store/8shards" || r.Threads != 2 {
				t.Fatalf("coordinates: %+v", r)
			}
			if r.Dist != "zipfian:0.90" || r.Theta != 0.9 {
				t.Fatalf("distribution columns: %+v", r)
			}
			if r.Ops == 0 || r.OpsPerMs <= 0 {
				t.Fatalf("no throughput measured: %+v", r)
			}
			if r.LatP50 <= 0 || r.LatP99 < r.LatP50 || r.LatMax < r.LatP99 {
				t.Fatalf("latency columns inconsistent: p50=%v p99=%v max=%v", r.LatP50, r.LatP99, r.LatMax)
			}
			if r.Commits == 0 {
				t.Fatalf("no server commits attributed: %+v", r)
			}
			var causes uint64
			for _, n := range r.AbortsByCause {
				causes += n
			}
			if causes != r.Aborts {
				t.Fatalf("per-cause aborts %d != aborts %d", causes, r.Aborts)
			}
		})
	}
}

// TestLoadResultFormats pins that networked results render through the
// existing table and CSV pipeline.
func TestLoadResultFormats(t *testing.T) {
	eng, _ := EngineByName("oestm")
	srv, err := server.New(server.Config{Addr: "127.0.0.1:0", Engine: eng.Name, NewTM: eng.New, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()
	r, err := RunLoad(LoadConfig{
		Addr:     srv.Addr().String(),
		Conns:    2,
		Duration: 40 * time.Millisecond,
		Warmup:   10 * time.Millisecond,
		Keys:     128,
	})
	if err != nil {
		t.Fatal(err)
	}
	table := FormatScenario([]Result{r}, LoadScenario)
	for _, want := range []string{"scenario server", "store/4shards", "oestm", "p99us"} {
		if !strings.Contains(table, want) {
			t.Fatalf("table missing %q:\n%s", want, table)
		}
	}
	csv := CSV([]Result{r})
	if !strings.HasPrefix(csv, CSVHeader+"\n") {
		t.Fatal("csv header wrong")
	}
	if !strings.Contains(csv, "server,store/4shards,0,oestm,passive,uniform,0.00,2,") {
		t.Fatalf("csv row malformed:\n%s", csv)
	}
}

// TestRunLoadRejectsBadConfig covers the validation surface.
func TestRunLoadRejectsBadConfig(t *testing.T) {
	if _, err := RunLoad(LoadConfig{Addr: "127.0.0.1:1", Mix: LoadMix{GetPct: 50}}); err == nil {
		t.Fatal("bad mix accepted")
	}
	if _, err := RunLoad(LoadConfig{Addr: "127.0.0.1:1", Dist: workload.DistConfig{Name: "bogus"}}); err == nil {
		t.Fatal("bad distribution accepted")
	}
	if _, err := RunLoad(LoadConfig{Addr: "127.0.0.1:1", Span: -1}); err == nil {
		t.Fatal("negative span accepted")
	}
	if _, err := RunLoad(LoadConfig{Addr: "127.0.0.1:1", Conns: -4}); err == nil {
		t.Fatal("negative conns accepted")
	}
	if _, err := RunLoad(LoadConfig{Addr: "127.0.0.1:1", Duration: time.Millisecond}); err == nil {
		t.Fatal("dead address accepted")
	}
}
