package harness

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"oestm/internal/cm"
	"oestm/internal/core"
	"oestm/internal/eec"
	"oestm/internal/lsa"
	"oestm/internal/seqset"
	"oestm/internal/stats"
	"oestm/internal/stm"
	"oestm/internal/swisstm"
	"oestm/internal/tl2"
	"oestm/internal/workload"
)

// Engine couples a display name with an engine factory. A fresh engine is
// created per run so clocks and contention state never leak across runs.
type Engine struct {
	Name string
	New  func() stm.TM
}

// Engines returns the paper's engine line-up: OE-STM and the three
// classic baselines. The "estm" ablation engine is available through
// AllEngines.
func Engines() []Engine {
	return []Engine{
		{Name: "oestm", New: func() stm.TM { return core.New() }},
		{Name: "lsa", New: func() stm.TM { return lsa.New() }},
		{Name: "tl2", New: func() stm.TM { return tl2.New() }},
		{Name: "swisstm", New: func() stm.TM { return swisstm.New() }},
	}
}

// AllEngines returns Engines plus the non-outheriting E-STM ablation.
func AllEngines() []Engine {
	return append(Engines(), Engine{Name: "estm", New: func() stm.TM { return core.NewWithoutOutheritance() }})
}

// EngineByName resolves one engine factory; ok is false for unknown
// names.
func EngineByName(name string) (Engine, bool) {
	for _, e := range AllEngines() {
		if e.Name == name {
			return e, true
		}
	}
	return Engine{}, false
}

// Structures returns the three benchmark structures of §VII. The hash set
// is sized for the paper's load factor of 512.
func Structures() []string { return []string{"linkedlist", "skiplist", "hashset"} }

// NewStructure builds a fresh transactional structure by name.
func NewStructure(name string, cfg workload.Config) eec.Set {
	switch name {
	case "linkedlist":
		return eec.NewLinkedListSet()
	case "skiplist":
		return eec.NewSkipListSet()
	case "hashset":
		return eec.NewHashSetForLoad(cfg.InitialSize)
	default:
		panic(fmt.Sprintf("harness: unknown structure %q", name))
	}
}

// NewSeqStructure builds the bare sequential counterpart.
func NewSeqStructure(name string, cfg workload.Config) seqset.Set {
	switch name {
	case "linkedlist":
		return seqset.NewLinkedListSet()
	case "skiplist":
		return seqset.NewSkipListSet()
	case "hashset":
		return seqset.NewHashSet(cfg.InitialSize / eec.DefaultLoadFactor)
	default:
		panic(fmt.Sprintf("harness: unknown structure %q", name))
	}
}

// RunConfig describes one measurement.
type RunConfig struct {
	Structure string
	Threads   int
	Duration  time.Duration
	Warmup    time.Duration
	Workload  workload.Config
	// CM names the contention-management policy installed on every
	// worker thread (see internal/cm); empty means cm.DefaultName.
	CM string
}

// CMNames resolves the policy names of a sweep request: nil or empty
// means just the default policy. Unknown names panic (CLI front-ends
// validate against cm.Names first).
func CMNames(names []string) []string {
	if len(names) == 0 {
		return []string{cm.DefaultName}
	}
	for _, n := range names {
		if _, ok := cm.New(n); !ok {
			panic(fmt.Sprintf("harness: unknown contention-management policy %q", n))
		}
	}
	return names
}

// newWorkerThread builds a worker's transactional context with the
// requested contention-management policy installed (fresh instance per
// thread: policies keep per-thread state).
func newWorkerThread(tm stm.TM, cmName string) *stm.Thread {
	th := stm.NewThread(tm)
	if cmName == "" {
		cmName = cm.DefaultName
	}
	th.CM = cm.MustNew(cmName)
	return th
}

// MixScenario is the Scenario label of the classic single-structure
// contains/add/remove mix of Figs. 6-8.
const MixScenario = "mix"

// Result is one measured point: the coordinates of Figs. 6-8 (or of one
// composed scenario), plus the process-wide heap allocation rate over the
// measured window (the -benchmem axis of the testing benches) and the
// invariant-violation count of scenario runs (always 0 for the mix, and
// for every transactional engine).
type Result struct {
	Engine    string
	Scenario  string
	Structure string
	BulkPct   int
	CM        string // contention-management policy ("-" for sequential)
	// Dist is the key-distribution label (workload.DistConfig.Label:
	// "uniform", "zipfian:0.99", "hotspot:90/10", ...).
	Dist string
	// Theta is the Zipfian skew for zipfian points, 0 otherwise.
	Theta       float64
	Threads     int
	OpsPerMs    float64
	AbortRate   float64
	AllocsPerOp float64
	// Per-operation latency over the measured window, from the merged
	// per-worker log-bucketed histograms (see stats.Histogram for the
	// resolution bound; LatMax is exact).
	LatP50, LatP95, LatP99, LatMax time.Duration
	Violations                     uint64
	Ops                            uint64
	Commits                        uint64
	Aborts                         uint64
	// AbortsByCause breaks Aborts down by stm.ConflictCause (indexed by
	// cause value, summed across workers and runs of the point).
	AbortsByCause [stm.NumCauses]uint64
	Elapsed       time.Duration
	// Hist is the merged latency histogram behind the LatP* fields;
	// average() merges it across runs before recomputing percentiles.
	// May be nil for hand-built Results.
	Hist *stats.Histogram
	// WAL is the durability axis of networked load results: "on" or
	// "off" for server measurements, "-" (rendered for the empty string)
	// for in-process runs, which have no serving-layer log. The counters
	// are the server's WAL deltas over the measured window (records
	// appended, flush batches, bytes written) — the measured cost of
	// durability, reported next to the throughput it taxed.
	WAL        string
	WALAppends uint64
	WALSyncs   uint64
	WALBytes   uint64
	// Exec is the execution-model axis of networked load results: the
	// server's mode ("conn" or "batch"), "-" (rendered for the empty
	// string) for in-process runs. The spec_* counters are the
	// speculative executor's deltas over the measured window — Speculate
	// attempts, attempts beyond a transaction's first, and completed
	// attempts whose read set failed validation; all zero in conn mode.
	Exec                string
	SpecExecs           uint64
	SpecReexecs         uint64
	SpecValidationFails uint64
	// Adds/BoostedOps/HotPromotions/HotDemotions are the commutative
	// hot-key path's deltas over the measured window: delta operations
	// accepted, how many ran boosted (abstract per-key locks, no STM
	// conflict), how many keys the adaptive tracker promoted, and how
	// many promoted keys were demoted (folded back) by absolute
	// operations; zero for in-process runs.
	Adds          uint64
	BoostedOps    uint64
	HotPromotions uint64
	HotDemotions  uint64
}

// setLatency installs a measured histogram and its headline percentiles.
func (r *Result) setLatency(h *stats.Histogram) {
	if h == nil || h.Count() == 0 {
		return
	}
	r.Hist = h
	r.LatP50 = h.Quantile(0.50)
	r.LatP95 = h.Quantile(0.95)
	r.LatP99 = h.Quantile(0.99)
	r.LatMax = h.Max()
}

// mallocs samples the cumulative process-wide allocation count.
func mallocs() uint64 {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.Mallocs
}

// measurement is the raw outcome of one windowed multi-worker run.
type measurement struct {
	Ops     uint64
	Totals  stm.Stats
	Elapsed time.Duration
	Mallocs uint64
	Hist    *stats.Histogram // merged per-worker latency histograms
}

// AllocsPerOp divides the window's allocation count by its operations.
func (m measurement) AllocsPerOp() float64 {
	if m.Ops == 0 {
		return 0
	}
	return float64(m.Mallocs) / float64(m.Ops)
}

// OpsPerMs is the window's throughput in the paper's unit.
func (m measurement) OpsPerMs() float64 {
	return float64(m.Ops) / float64(m.Elapsed.Milliseconds()+1)
}

// runMeasured is the measurement protocol shared by the mix and scenario
// runners: spin up `threads` workers — newWorker(idx) builds each one's
// thread and step function — let them run through the warmup, then count
// operations, commit/abort deltas, per-operation latency and process-wide
// allocations over the measured window. onMeasure, if non-nil, runs on
// the coordinating goroutine at the instant the window opens (for
// snapshotting counters that the workers accumulate from the start, e.g.
// scenario violations).
//
// Latency is recorded into a per-worker stats.Histogram allocated before
// the warmup, with one clock read per operation (each operation's end
// timestamps the next one's start), so the measured window itself stays
// allocation-free and the allocs/op axis is unaffected.
func runMeasured(threads int, warmup, duration time.Duration, newWorker func(idx int) (*stm.Thread, func()), onMeasure func()) measurement {
	var (
		stop      atomic.Bool
		measuring atomic.Bool
		wg        sync.WaitGroup
		mu        sync.Mutex
		totalOps  uint64
		totals    stm.Stats
		totalHist = new(stats.Histogram)
	)
	for i := 0; i < threads; i++ {
		wg.Add(1)
		go func(idx int) {
			defer wg.Done()
			th, step := newWorker(idx)
			hist := new(stats.Histogram) // heap traffic before the window opens
			var ops uint64
			var base stm.Stats
			var prev time.Time
			baseTaken := false
			for !stop.Load() {
				if !baseTaken && measuring.Load() {
					base = th.Stats
					ops = 0
					baseTaken = true
					prev = time.Now()
				}
				step()
				ops++
				if baseTaken {
					now := time.Now()
					hist.Record(now.Sub(prev))
					prev = now
				}
			}
			if !baseTaken {
				base = stm.Stats{}
			}
			delta := th.Stats.Diff(base)
			mu.Lock()
			totalOps += ops
			totals.Add(delta)
			totalHist.Merge(hist)
			mu.Unlock()
		}(i)
	}

	time.Sleep(warmup)
	if onMeasure != nil {
		onMeasure()
	}
	m0 := mallocs()
	measuring.Store(true)
	start := time.Now()
	time.Sleep(duration)
	stop.Store(true)
	elapsed := time.Since(start)
	m1 := mallocs()
	wg.Wait()

	return measurement{Ops: totalOps, Totals: totals, Elapsed: elapsed, Mallocs: m1 - m0, Hist: totalHist}
}

// RunSTM measures one engine on one configuration: fill the structure,
// spin up cfg.Threads workers each drawing its own operation stream, run
// for warmup+duration, and count operations completed during the
// measured window.
func RunSTM(eng Engine, cfg RunConfig) Result {
	tm := eng.New()
	set := NewStructure(cfg.Structure, cfg.Workload)
	filler := stm.NewThread(tm)
	workload.Fill(filler, set, cfg.Workload)

	m := runMeasured(cfg.Threads, cfg.Warmup, cfg.Duration, func(idx int) (*stm.Thread, func()) {
		th := newWorkerThread(tm, cfg.CM)
		gen := workload.NewGen(cfg.Workload, idx)
		return th, func() { workload.Apply(th, set, gen.Next()) }
	}, nil)

	cmName := cfg.CM
	if cmName == "" {
		cmName = cm.DefaultName
	}
	r := Result{
		Engine:        eng.Name,
		Scenario:      MixScenario,
		Structure:     cfg.Structure,
		BulkPct:       cfg.Workload.BulkPct,
		CM:            cmName,
		Dist:          cfg.Workload.Dist.Label(),
		Theta:         cfg.Workload.Dist.ZipfTheta(),
		Threads:       cfg.Threads,
		OpsPerMs:      m.OpsPerMs(),
		AbortRate:     m.Totals.AbortRate(),
		AllocsPerOp:   m.AllocsPerOp(),
		Ops:           m.Ops,
		Commits:       m.Totals.Commits,
		Aborts:        m.Totals.Aborts,
		AbortsByCause: m.Totals.AbortsByCause,
		Elapsed:       m.Elapsed,
	}
	r.setLatency(m.Hist)
	return r
}

// RunSequential measures the bare sequential baseline: one goroutine on
// the uninstrumented structure, whatever cfg.Threads says (the paper
// plots it as a flat reference line).
func RunSequential(cfg RunConfig) Result {
	set := NewSeqStructure(cfg.Structure, cfg.Workload)
	workload.FillSeq(set, cfg.Workload)
	gen := workload.NewGen(cfg.Workload, 0)

	var stop, measuring atomic.Bool
	hist := new(stats.Histogram)
	counted := make(chan uint64, 1)
	go func() {
		var ops uint64
		var prev time.Time
		baseTaken := false
		for !stop.Load() {
			if !baseTaken && measuring.Load() {
				ops = 0
				baseTaken = true
				prev = time.Now()
			}
			workload.ApplySeq(set, gen.Next())
			ops++
			if baseTaken {
				now := time.Now()
				hist.Record(now.Sub(prev))
				prev = now
			}
		}
		counted <- ops
	}()
	time.Sleep(cfg.Warmup)
	m0 := mallocs()
	measuring.Store(true)
	start := time.Now()
	time.Sleep(cfg.Duration)
	stop.Store(true)
	measured := <-counted
	elapsed := time.Since(start)
	m1 := mallocs()
	allocsPerOp := 0.0
	if measured > 0 {
		allocsPerOp = float64(m1-m0) / float64(measured)
	}
	r := Result{
		Engine:      "sequential",
		Scenario:    MixScenario,
		Structure:   cfg.Structure,
		BulkPct:     cfg.Workload.BulkPct,
		CM:          "-", // no transactions, no contention management
		Dist:        cfg.Workload.Dist.Label(),
		Theta:       cfg.Workload.Dist.ZipfTheta(),
		Threads:     1,
		OpsPerMs:    float64(measured) / float64(elapsed.Milliseconds()+1),
		AllocsPerOp: allocsPerOp,
		Ops:         measured,
		Elapsed:     elapsed,
	}
	r.setLatency(hist)
	return r
}
