package harness

import (
	"strings"
	"testing"
	"time"

	"oestm/internal/workload"
)

func quickScenarioConfig() workload.ScenarioConfig {
	cfg := workload.DefaultScenarioConfig().Scaled(16)
	cfg.AuditPct = 10
	return cfg
}

// TestScenariosRunOnAllEngines drives every scenario on every engine.
// The composing engines — OE-STM through outheritance, and the classic
// engines through flat nesting — must never violate an invariant. E-STM
// is the paper's designed counter-example (it releases a child's
// protected set at child commit, Fig. 1), so the run only has to
// complete; TestESTMViolatesComposedScenarios pins down that it does
// in fact violate.
func TestScenariosRunOnAllEngines(t *testing.T) {
	for _, eng := range AllEngines() {
		for _, name := range workload.ScenarioNames() {
			r := RunScenario(eng, ScenarioRunConfig{
				Scenario: name,
				Threads:  4,
				Duration: 40 * time.Millisecond,
				Warmup:   10 * time.Millisecond,
				Workload: quickScenarioConfig(),
			})
			if r.Ops == 0 || r.OpsPerMs <= 0 {
				t.Fatalf("%s/%s: no work measured: %+v", eng.Name, name, r)
			}
			if r.Engine != eng.Name || r.Scenario != name || r.Threads != 4 {
				t.Fatalf("%s/%s: metadata wrong: %+v", eng.Name, name, r)
			}
			if eng.Name != "estm" && r.Violations != 0 {
				t.Errorf("%s/%s: %d invariant violations on a composing engine",
					eng.Name, name, r.Violations)
			}
		}
	}
}

// TestESTMViolatesComposedScenarios demonstrates the paper's Fig. 1 at
// workload scale: without outheritance the bank transfers (Get/Put
// compositions) lose updates, which the total-balance audits observe.
// This doubles as evidence that the invariant checkers detect real
// atomicity violations, not just seeded ones.
func TestESTMViolatesComposedScenarios(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-dependent concurrency test")
	}
	eng, _ := EngineByName("estm")
	for attempt := 0; attempt < 5; attempt++ {
		r := RunScenario(eng, ScenarioRunConfig{
			Scenario: "bank",
			Threads:  4,
			Duration: time.Duration(50+100*attempt) * time.Millisecond,
			Warmup:   10 * time.Millisecond,
			Workload: quickScenarioConfig(),
		})
		if r.Violations > 0 {
			return
		}
	}
	t.Error("estm never violated the bank invariant; the ablation (or the checker) has gone soft")
}

func TestRunScenarioUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown scenario must panic")
		}
	}()
	eng, _ := EngineByName("oestm")
	RunScenario(eng, ScenarioRunConfig{Scenario: "bogus", Threads: 1, Duration: time.Millisecond})
}

func TestScenarioSweepAndFormat(t *testing.T) {
	eng, _ := EngineByName("tl2")
	results := ScenarioSweep(ScenarioSweepConfig{
		Scenario: "move",
		Threads:  []int{1, 2},
		Duration: 25 * time.Millisecond,
		Warmup:   5 * time.Millisecond,
		Runs:     2,
		Engines:  []Engine{eng},
		Workload: quickScenarioConfig(),
	})
	if len(results) != 2 {
		t.Fatalf("results = %d, want 2", len(results))
	}
	text := FormatScenario(results, "move")
	for _, want := range []string{"scenario move", "linkedlist+hashset", "threads", "tl2", "viol"} {
		if !strings.Contains(text, want) {
			t.Fatalf("formatted output missing %q:\n%s", want, text)
		}
	}
	csv := CSV(results)
	if !strings.HasPrefix(csv, CSVHeader+"\n") {
		t.Fatalf("csv header wrong:\n%s", csv)
	}
	if !strings.Contains(csv, "move,linkedlist+hashset,0,tl2,") {
		t.Fatalf("csv rows missing scenario columns:\n%s", csv)
	}
}
