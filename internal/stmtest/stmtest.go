// Package stmtest provides an engine-independent conformance suite: every
// STM engine in this repository (OE-STM, E-STM, TL2, LSA, SwissTM) must
// pass it. The suite checks the transactional contract the collections and
// the benchmark harness rely on: atomicity, isolation, read-own-write,
// abort semantics, nesting/composition, and serializability witnesses such
// as write-skew prevention and invariant preservation under contention.
package stmtest

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"oestm/internal/mvar"
	"oestm/internal/stm"
)

// Factory builds a fresh engine per test.
type Factory func() stm.TM

// Run executes the whole conformance suite against the factory.
func Run(t *testing.T, f Factory) {
	t.Helper()
	t.Run("ReadWriteCommit", func(t *testing.T) { testReadWriteCommit(t, f) })
	t.Run("ReadOwnWrite", func(t *testing.T) { testReadOwnWrite(t, f) })
	t.Run("AbortOnError", func(t *testing.T) { testAbortOnError(t, f) })
	t.Run("ExplicitConflictRetries", func(t *testing.T) { testExplicitConflictRetries(t, f) })
	t.Run("CounterIncrements", func(t *testing.T) { testCounterIncrements(t, f) })
	t.Run("AllOrNothingVisibility", func(t *testing.T) { testAllOrNothing(t, f) })
	t.Run("WriteSkewPrevented", func(t *testing.T) { testWriteSkew(t, f) })
	t.Run("TransferInvariant", func(t *testing.T) { testTransferInvariant(t, f) })
	t.Run("NestedCommit", func(t *testing.T) { testNestedCommit(t, f) })
	t.Run("NestedUserAbort", func(t *testing.T) { testNestedUserAbort(t, f) })
	t.Run("NestedDepth", func(t *testing.T) { testNestedDepth(t, f) })
	t.Run("StatsAccounting", func(t *testing.T) { testStatsAccounting(t, f) })
	t.Run("CauseAccounting", func(t *testing.T) { testCauseAccounting(t, f) })
	t.Run("ReadMissingIsNil", func(t *testing.T) { testReadMissing(t, f) })
	t.Run("BothKinds", func(t *testing.T) { testBothKinds(t, f) })
}

func testReadWriteCommit(t *testing.T, f Factory) {
	tm := f()
	th := stm.NewThread(tm)
	v := mvar.New(10)
	err := th.Atomic(stm.Regular, func(tx stm.Tx) error {
		if got := tx.Read(v); got != 10 {
			return fmt.Errorf("read %v, want 10", got)
		}
		tx.Write(v, 11)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	var got any
	if err := th.Atomic(stm.Regular, func(tx stm.Tx) error {
		got = tx.Read(v)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got != 11 {
		t.Fatalf("after commit read %v, want 11", got)
	}
}

func testReadOwnWrite(t *testing.T, f Factory) {
	tm := f()
	th := stm.NewThread(tm)
	v := mvar.New("old")
	err := th.Atomic(stm.Regular, func(tx stm.Tx) error {
		tx.Write(v, "new")
		if got := tx.Read(v); got != "new" {
			return fmt.Errorf("read-own-write saw %v", got)
		}
		tx.Write(v, "newer")
		if got := tx.Read(v); got != "newer" {
			return fmt.Errorf("second read-own-write saw %v", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func testAbortOnError(t *testing.T, f Factory) {
	tm := f()
	th := stm.NewThread(tm)
	v := mvar.New(1)
	sentinel := errors.New("user abort")
	err := th.Atomic(stm.Regular, func(tx stm.Tx) error {
		tx.Write(v, 999)
		return sentinel
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel", err)
	}
	if got := readOnce(t, th, v); got != 1 {
		t.Fatalf("aborted write leaked: %v", got)
	}
}

func testExplicitConflictRetries(t *testing.T, f Factory) {
	tm := f()
	th := stm.NewThread(tm)
	v := mvar.New(0)
	attempts := 0
	err := th.Atomic(stm.Regular, func(tx stm.Tx) error {
		attempts++
		tx.Write(v, attempts)
		if attempts < 3 {
			stm.Conflict("forced")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if attempts != 3 {
		t.Fatalf("attempts = %d, want 3", attempts)
	}
	if got := readOnce(t, th, v); got != 3 {
		t.Fatalf("value = %v, want 3", got)
	}
	if th.Stats.Aborts != 2 {
		t.Fatalf("aborts = %d, want 2", th.Stats.Aborts)
	}
}

func testCounterIncrements(t *testing.T, f Factory) {
	tm := f()
	v := mvar.New(0)
	const goroutines = 8
	const per = 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			th := stm.NewThread(tm)
			for i := 0; i < per; i++ {
				err := th.Atomic(stm.Regular, func(tx stm.Tx) error {
					n := tx.Read(v).(int)
					tx.Write(v, n+1)
					return nil
				})
				if err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	th := stm.NewThread(tm)
	if got := readOnce(t, th, v); got != goroutines*per {
		t.Fatalf("counter = %v, want %d", got, goroutines*per)
	}
}

// testAllOrNothing checks that multi-location commits become visible
// atomically: writers flip (a,b) together; readers must never observe
// a != b.
func testAllOrNothing(t *testing.T, f Factory) {
	tm := f()
	a, b := mvar.New(0), mvar.New(0)
	stop := make(chan struct{})
	var wg sync.WaitGroup

	wg.Add(1)
	go func() {
		defer wg.Done()
		th := stm.NewThread(tm)
		for i := 1; i <= 300; i++ {
			val := i
			_ = th.Atomic(stm.Regular, func(tx stm.Tx) error {
				tx.Write(a, val)
				tx.Write(b, val)
				return nil
			})
		}
		close(stop)
	}()

	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			th := stm.NewThread(tm)
			for {
				select {
				case <-stop:
					return
				default:
				}
				var x, y any
				err := th.Atomic(stm.Regular, func(tx stm.Tx) error {
					x = tx.Read(a)
					y = tx.Read(b)
					return nil
				})
				if err == nil && x != y {
					t.Errorf("torn commit observed: a=%v b=%v", x, y)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// testWriteSkew checks serializability beyond snapshot isolation: with
// x+y == 2 initially and two transactions each zeroing one variable only
// if the sum is 2, at most one may commit its write.
func testWriteSkew(t *testing.T, f Factory) {
	tm := f()
	for round := 0; round < 50; round++ {
		x, y := mvar.New(1), mvar.New(1)
		var wg sync.WaitGroup
		run := func(read, write *mvar.AnyVar) {
			defer wg.Done()
			th := stm.NewThread(tm)
			_ = th.Atomic(stm.Regular, func(tx stm.Tx) error {
				sum := tx.Read(x).(int) + tx.Read(y).(int)
				if sum == 2 {
					tx.Write(write, 0)
				}
				return nil
			})
		}
		wg.Add(2)
		go run(y, x)
		go run(x, y)
		wg.Wait()
		th := stm.NewThread(tm)
		gx, gy := readOnce(t, th, x), readOnce(t, th, y)
		if gx == 0 && gy == 0 {
			t.Fatalf("write skew: both x and y zeroed (round %d)", round)
		}
	}
}

// testTransferInvariant hammers transfers between accounts and checks the
// total is conserved, including when observed concurrently.
func testTransferInvariant(t *testing.T, f Factory) {
	tm := f()
	const nAccounts = 8
	const total = 1000 * nAccounts
	accounts := make([]*mvar.AnyVar, nAccounts)
	for i := range accounts {
		accounts[i] = mvar.New(1000)
	}
	var writers, checker sync.WaitGroup
	stop := make(chan struct{})

	for g := 0; g < 4; g++ {
		writers.Add(1)
		go func(seed int) {
			defer writers.Done()
			th := stm.NewThread(tm)
			for i := 0; i < 400; i++ {
				from := (seed + i) % nAccounts
				to := (seed + i*7 + 1) % nAccounts
				if from == to {
					continue
				}
				_ = th.Atomic(stm.Regular, func(tx stm.Tx) error {
					fb := tx.Read(accounts[from]).(int)
					tb := tx.Read(accounts[to]).(int)
					tx.Write(accounts[from], fb-1)
					tx.Write(accounts[to], tb+1)
					return nil
				})
			}
		}(g)
	}

	checker.Add(1)
	go func() {
		defer checker.Done()
		th := stm.NewThread(tm)
		for {
			select {
			case <-stop:
				return
			default:
			}
			sum := 0
			err := th.Atomic(stm.Regular, func(tx stm.Tx) error {
				sum = 0
				for _, a := range accounts {
					sum += tx.Read(a).(int)
				}
				return nil
			})
			if err == nil && sum != total {
				t.Errorf("invariant broken: sum=%d want %d", sum, total)
				return
			}
		}
	}()

	writers.Wait()
	close(stop)
	checker.Wait()

	th := stm.NewThread(tm)
	sum := 0
	if err := th.Atomic(stm.Regular, func(tx stm.Tx) error {
		sum = 0
		for _, a := range accounts {
			sum += tx.Read(a).(int)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if sum != total {
		t.Fatalf("final sum = %d, want %d", sum, total)
	}
}

func testNestedCommit(t *testing.T, f Factory) {
	tm := f()
	th := stm.NewThread(tm)
	a, b := mvar.New(0), mvar.New(0)
	err := th.Atomic(stm.Regular, func(tx stm.Tx) error {
		tx.Write(a, 1)
		inner := th.Atomic(stm.Regular, func(tx2 stm.Tx) error {
			if got := tx2.Read(a); got != 1 {
				return fmt.Errorf("child cannot see parent write: %v", got)
			}
			tx2.Write(b, 2)
			return nil
		})
		if inner != nil {
			return inner
		}
		if got := tx.Read(b); got != 2 {
			return fmt.Errorf("parent cannot see child write: %v", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := readOnce(t, th, a); got != 1 {
		t.Fatalf("a = %v, want 1", got)
	}
	if got := readOnce(t, th, b); got != 2 {
		t.Fatalf("b = %v, want 2", got)
	}
}

func testNestedUserAbort(t *testing.T, f Factory) {
	tm := f()
	th := stm.NewThread(tm)
	a, b := mvar.New(0), mvar.New(0)
	sentinel := errors.New("inner failure")
	err := th.Atomic(stm.Regular, func(tx stm.Tx) error {
		tx.Write(a, 1)
		return th.Atomic(stm.Regular, func(tx2 stm.Tx) error {
			tx2.Write(b, 2)
			return sentinel
		})
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel", err)
	}
	if got := readOnce(t, th, a); got != 0 {
		t.Fatalf("parent write leaked after nested abort: a=%v", got)
	}
	if got := readOnce(t, th, b); got != 0 {
		t.Fatalf("child write leaked after nested abort: b=%v", got)
	}
}

func testNestedDepth(t *testing.T, f Factory) {
	tm := f()
	th := stm.NewThread(tm)
	v := mvar.New(0)
	const depth = 5
	var descend func(d int) error
	descend = func(d int) error {
		return th.Atomic(stm.Regular, func(tx stm.Tx) error {
			if th.Depth() != d {
				return fmt.Errorf("depth = %d, want %d", th.Depth(), d)
			}
			tx.Write(v, tx.Read(v).(int)+1)
			if d < depth {
				return descend(d + 1)
			}
			return nil
		})
	}
	if err := descend(1); err != nil {
		t.Fatal(err)
	}
	if got := readOnce(t, th, v); got != depth {
		t.Fatalf("v = %v, want %d", got, depth)
	}
}

func testStatsAccounting(t *testing.T, f Factory) {
	tm := f()
	th := stm.NewThread(tm)
	v := mvar.New(0)
	for i := 0; i < 5; i++ {
		if err := th.Atomic(stm.Regular, func(tx stm.Tx) error {
			tx.Write(v, i)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	if th.Stats.Commits != 5 {
		t.Fatalf("commits = %d, want 5", th.Stats.Commits)
	}
	before := th.Stats.ReadOnly
	if err := th.Atomic(stm.Regular, func(tx stm.Tx) error {
		_ = tx.Read(v)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if th.Stats.ReadOnly != before+1 {
		t.Fatalf("read-only commits = %d, want %d", th.Stats.ReadOnly, before+1)
	}
}

// testCauseAccounting hammers a contended mix — short transfers over a
// few hot variables plus the occasional forced retry — on both kinds and
// checks the per-cause abort counters: every abort must be classified
// (the counters sum exactly to Stats.Aborts, per thread and in
// aggregate), explicit aborts must be counted under CauseExplicit, and
// cause accounting must survive merging via Stats.Add. Run under -race
// this also checks the counters are thread-local as documented.
func testCauseAccounting(t *testing.T, f Factory) {
	tm := f()
	const nVars = 4
	vars := make([]*mvar.AnyVar, nVars)
	for i := range vars {
		vars[i] = mvar.New(0)
	}
	kinds := []stm.Kind{stm.Regular, stm.Elastic}

	const goroutines = 8
	const per = 300
	perThread := make([]stm.Stats, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			th := stm.NewThread(tm)
			for i := 0; i < per; i++ {
				a, b := vars[(g+i)%nVars], vars[(g+i*3+1)%nVars]
				forced := i%97 == 0
				err := th.Atomic(kinds[i%2], func(tx stm.Tx) error {
					n := tx.Read(a).(int)
					tx.Write(a, n+1)
					tx.Write(b, tx.Read(b).(int)-1)
					if forced {
						forced = false
						stm.Conflict("stmtest: forced")
					}
					return nil
				})
				if err != nil {
					t.Error(err)
					return
				}
			}
			perThread[g] = th.Stats
		}(g)
	}
	wg.Wait()

	var agg stm.Stats
	for g, s := range perThread {
		var sum uint64
		for _, n := range s.AbortsByCause {
			sum += n
		}
		if sum != s.Aborts {
			t.Errorf("goroutine %d: per-cause counters sum to %d, want Aborts=%d (%+v)",
				g, sum, s.Aborts, s.AbortsByCause)
		}
		agg.Add(s)
	}
	var aggSum uint64
	for _, n := range agg.AbortsByCause {
		aggSum += n
	}
	if aggSum != agg.Aborts {
		t.Errorf("aggregate per-cause counters sum to %d, want Aborts=%d", aggSum, agg.Aborts)
	}
	// Every goroutine forces ceil(per/97) explicit conflicts; nothing
	// else in this mix uses Conflict, so the explicit counter is exact.
	wantExplicit := uint64(goroutines * ((per + 96) / 97))
	if got := agg.AbortsByCause[stm.CauseExplicit]; got != wantExplicit {
		t.Errorf("explicit aborts = %d, want %d", got, wantExplicit)
	}
	if agg.Aborts < wantExplicit {
		t.Errorf("total aborts %d below the forced minimum %d", agg.Aborts, wantExplicit)
	}
}

func testReadMissing(t *testing.T, f Factory) {
	tm := f()
	th := stm.NewThread(tm)
	var v mvar.AnyVar // zero Var holds nil
	err := th.Atomic(stm.Regular, func(tx stm.Tx) error {
		if got := tx.Read(&v); got != nil {
			return fmt.Errorf("zero Var read %v, want nil", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// testBothKinds runs the same update under both kinds; engines without
// elastic support must still execute Elastic requests correctly (as
// Regular).
func testBothKinds(t *testing.T, f Factory) {
	tm := f()
	th := stm.NewThread(tm)
	v := mvar.New(0)
	for _, k := range []stm.Kind{stm.Regular, stm.Elastic} {
		if err := th.Atomic(k, func(tx stm.Tx) error {
			tx.Write(v, tx.Read(v).(int)+1)
			return nil
		}); err != nil {
			t.Fatalf("kind %v: %v", k, err)
		}
	}
	if got := readOnce(t, th, v); got != 2 {
		t.Fatalf("v = %v, want 2", got)
	}
}

// readOnce reads a single Var in its own transaction.
func readOnce(t *testing.T, th *stm.Thread, v *mvar.AnyVar) any {
	t.Helper()
	var got any
	if err := th.Atomic(stm.Regular, func(tx stm.Tx) error {
		got = tx.Read(v)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return got
}
