// Package varaccess enforces the repository's most fundamental STM
// contract: transactional memory words are operated on in place, through
// the stm/mvar accessor API — they are never moved around as values.
//
// A field of type mvar.Word (or one of its typed views Var[T], IntVar,
// Flag, AnyVar) is a versioned lock word plus payload cells; every
// consistency argument in the engines assumes reads and writes of that
// state go through the accessor protocol (stm.ReadPtr/WritePtr inside
// transactions, the Init/Load methods around them). Code that loads or
// stores such a field as a raw Go value — `x.next = y.next`, `w := n.word`
// — bypasses versioning entirely: it can tear payloads, duplicate lock
// words, and produce exactly the class of silent atomicity bug the PR 2
// scenario suite caught dynamically in the skip lists.
//
// varaccess therefore flags every value-context use of an expression of
// word type outside internal/mvar itself. The only permitted uses are
// taking the address (&x.f, to hand the word to the stm API or a
// constructor) and invoking the type's own methods (x.f.Init(...),
// v.Load(), f.Word(); all mvar methods have pointer receivers, so these
// operate in place). Assignments in either direction, copies into
// locals, arguments passed by value, comparisons and returns are all
// reported.
package varaccess

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"oestm/internal/analysis"
)

// Analyzer flags raw value access to mvar word types outside
// internal/mvar.
var Analyzer = &analysis.Analyzer{
	Name: "varaccess",
	Doc:  "flag raw loads/stores of mvar.Word and its typed views outside the accessor API",
	Run:  run,
}

// wordTypeNames are the named types of internal/mvar whose values carry a
// versioned lock word.
var wordTypeNames = []string{"Word", "Var", "IntVar", "Flag", "AnyVar"}

// isWordType reports whether t is one of mvar's word types.
func isWordType(t types.Type) bool {
	for _, name := range wordTypeNames {
		if analysis.NamedFrom(t, "internal/mvar", name) {
			return true
		}
	}
	return false
}

func run(pass *analysis.Pass) error {
	// The defining package implements the accessor API itself.
	if pass.Pkg.Name() == "mvar" || strings.HasSuffix(pass.Pkg.Path(), "internal/mvar") {
		return nil
	}
	pass.WalkStack(func(n ast.Node, stack []ast.Node) {
		e, ok := n.(ast.Expr)
		if !ok {
			return
		}
		switch e.(type) {
		case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr, *ast.CallExpr:
		default:
			return
		}
		tv, ok := pass.TypesInfo.Types[e]
		if !ok || !tv.IsValue() || !isWordType(tv.Type) {
			return
		}
		if id, ok := e.(*ast.Ident); ok {
			// Skip the Sel half of a selector (the selector expression
			// itself is checked) and defining occurrences.
			if len(stack) >= 2 {
				if sel, ok := stack[len(stack)-2].(*ast.SelectorExpr); ok && sel.Sel == id {
					return
				}
			}
			if pass.TypesInfo.Defs[id] != nil {
				return
			}
		}
		if allowedContext(pass, e, stack) {
			return
		}
		pass.Reportf(e.Pos(), "raw access to %s value: words may only be used through &-address and the stm/mvar accessor API", typeLabel(tv.Type))
	})
	return nil
}

// allowedContext reports whether the word-typed value expression e is used
// in one of the sanctioned ways: operand of &, or receiver of one of the
// word type's own methods.
func allowedContext(pass *analysis.Pass, e ast.Expr, stack []ast.Node) bool {
	parent := parentOf(stack)
	switch p := parent.(type) {
	case *ast.UnaryExpr:
		if p.Op == token.AND && unparen(p.X) == e {
			return true
		}
	case *ast.SelectorExpr:
		if unparen(p.X) == e {
			if sel, ok := pass.TypesInfo.Selections[p]; ok && sel.Kind() == types.MethodVal {
				return true
			}
		}
	}
	return false
}

// unparen strips any parenthesis layers around an expression.
func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// parentOf returns the nearest ancestor that is not a ParenExpr.
func parentOf(stack []ast.Node) ast.Node {
	for i := len(stack) - 2; i >= 0; i-- {
		if _, ok := stack[i].(*ast.ParenExpr); ok {
			continue
		}
		return stack[i]
	}
	return nil
}

// typeLabel renders a word type as mvar.<Name> for diagnostics.
func typeLabel(t types.Type) string {
	named, _ := types.Unalias(t).(*types.Named)
	if named == nil {
		return t.String()
	}
	return "mvar." + named.Obj().Name()
}
