// Package mvar stands in for internal/mvar itself: the package that
// implements the accessor protocol must be allowed to touch raw words,
// so varaccess reports nothing here despite the raw copies below.
package mvar

import "oestm/internal/mvar"

func rawInternals(a, b *mvar.Word) {
	w := *a
	*b = w
}
