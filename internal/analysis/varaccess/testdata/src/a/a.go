// Package a exercises varaccess: true positives (raw value loads/stores
// of mvar word types) and tricky negatives (address-taking and accessor
// method calls, which are the sanctioned API).
package a

import (
	"oestm/internal/mvar"
	"oestm/internal/stm"
)

type node struct {
	key  int
	next mvar.Var[node]
	mark mvar.Flag
	cnt  mvar.IntVar
	w    mvar.Word
}

func sink(mvar.Flag) {}

func bad(n, m *node, nodes []node) {
	n.next = m.next    // want "raw access to mvar.Var value" "raw access to mvar.Var value"
	w := n.w           // want "raw access to mvar.Word value"
	_ = w.Meta()       // (method call on the copy is itself fine; the copy was the bug)
	n.w = mvar.Word{}  // want "raw access to mvar.Word value"
	sink(n.mark)       // want "raw access to mvar.Flag value"
	v := nodes[0].next // want "raw access to mvar.Var value"
	_ = v.Load()
}

func badLocal() {
	var w mvar.Word
	w2 := w // want "raw access to mvar.Word value"
	_ = w2.Meta()
}

func good(n *node, tx stm.Tx) {
	// The accessor API: &field handed to the stm layer, and the word
	// types' own (pointer-receiver) methods.
	p := stm.ReadPtr(tx, &n.next)
	_ = p
	stm.WritePtr(tx, &n.next, nil)
	n.mark.Init(false)
	_ = n.cnt.Load()
	_ = n.w.Meta()

	// Slices of typed variables are built in place and used by element
	// address; neither the make nor the indexed accessor uses copy words.
	tower := make([]mvar.Var[node], 4)
	tower[0].Init(nil)
	_ = &tower[1]

	// A zero word may be declared and initialised in place before being
	// shared.
	var fresh mvar.Flag
	fresh.Init(true)
	_ = stm.ReadFlag(tx, &fresh)
}
