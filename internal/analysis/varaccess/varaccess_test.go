package varaccess_test

import (
	"testing"

	"oestm/internal/analysis/analysistest"
	"oestm/internal/analysis/varaccess"
)

func TestVaraccess(t *testing.T) {
	analysistest.Run(t, varaccess.Analyzer,
		"testdata/src/a",
		"testdata/src/mvarexempt",
	)
}
