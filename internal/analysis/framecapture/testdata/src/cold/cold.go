// Package cold has no //compose:hotpath directive: per-iteration
// transaction closures are an accepted cost off the hot paths (test
// harnesses, examples), so framecapture stays silent despite the loop
// below.
package cold

import "oestm/internal/stm"

func perIteration(th *stm.Thread, keys []int) {
	for _, k := range keys {
		_ = th.Atomic(stm.Regular, func(tx stm.Tx) error {
			_ = k
			return nil
		})
	}
}
