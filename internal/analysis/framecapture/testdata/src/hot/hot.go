// Package hot exercises framecapture in a hot-path package: transaction
// closures must not be created per loop iteration or capture loop
// variables.
//
//compose:hotpath
package hot

import "oestm/internal/stm"

func perIteration(th *stm.Thread, keys []int) {
	for _, k := range keys {
		key := k
		_ = th.Atomic(stm.Elastic, func(tx stm.Tx) error { // want "transaction closure created inside a loop"
			_ = key
			return nil
		})
	}
}

func forLoop(th *stm.Thread, n int) {
	for i := 0; i < n; i++ {
		_ = th.Atomic(stm.Regular, func(tx stm.Tx) error { // want "transaction closure created inside a loop"
			_ = i // want "captures loop variable i"
			return nil
		})
	}
}

func storedCapture(keys []int) []func(stm.Tx) error {
	var fns []func(stm.Tx) error
	for _, k := range keys {
		fns = append(fns, func(tx stm.Tx) error { // want "transaction closure created inside a loop"
			_ = k // want "captures loop variable k"
			return nil
		})
	}
	return fns
}

// oneShot is the tricky negative: a transaction closure built once,
// outside any loop, may capture ordinary locals (the result variable
// pattern of LinkedListSet.Elements).
func oneShot(th *stm.Thread) []int {
	var out []int
	_ = th.Atomic(stm.Regular, func(tx stm.Tx) error {
		out = append(out, 1)
		return nil
	})
	return out
}

// loopInsideBody is fine the other way around: the loop lives inside the
// closure, which itself is created once.
func loopInsideBody(th *stm.Thread, keys []int) {
	_ = th.Atomic(stm.Regular, func(tx stm.Tx) error {
		for _, k := range keys {
			_ = k
		}
		return nil
	})
}

// nonTxnClosure: closures without an stm.Tx parameter are not transaction
// bodies; per-iteration creation is the caller's own business.
func nonTxnClosure(keys []int) []func() int {
	var fns []func() int
	for _, k := range keys {
		fns = append(fns, func() int { return k })
	}
	return fns
}
