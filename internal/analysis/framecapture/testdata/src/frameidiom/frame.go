// Package frameidiom is the canonical negative fixture: the pre-bound
// frame idiom from the eec collections (PR 1) and the store/server
// request frames (PR 5). Closures are bound once per thread at frame
// construction, capture only the frame, and are parameterised through
// its fields — every operation, including ones issued inside loops,
// reuses them. framecapture must pass this package clean.
//
//compose:hotpath
package frameidiom

import "oestm/internal/stm"

type opCode int

const (
	opGet opCode = iota
	opPut
	numOps
)

// frame is a per-thread operation frame: parameters in, results out,
// transaction closures bound once.
type frame struct {
	th  *stm.Thread
	key int
	res bool

	fns [numOps]func(stm.Tx) error
}

// frameOf builds and binds the frame on first use. The closure literals
// capture f — an ordinary local, bound outside any loop — which is
// exactly the sanctioned pattern.
func frameOf(th *stm.Thread) *frame {
	f := &frame{th: th}
	f.fns[opGet] = func(tx stm.Tx) error { f.res = f.key%2 == 0; return nil }
	f.fns[opPut] = func(tx stm.Tx) error { f.res = true; return nil }
	return f
}

// op runs one pre-bound operation; note the stored closure (not a
// literal) passed to Atomic.
func (f *frame) op(code opCode, key int) bool {
	f.key = key
	_ = f.th.Atomic(stm.Elastic, f.fns[code])
	return f.res
}

// bulk issues operations in a loop: legal, because the loop passes the
// frame's pre-bound closure instead of creating one.
func bulk(th *stm.Thread, keys []int) int {
	f := frameOf(th)
	hits := 0
	for _, k := range keys {
		if f.op(opGet, k) {
			hits++
		}
	}
	return hits
}
