package framecapture_test

import (
	"testing"

	"oestm/internal/analysis/analysistest"
	"oestm/internal/analysis/framecapture"
)

func TestFramecapture(t *testing.T) {
	analysistest.Run(t, framecapture.Analyzer,
		"testdata/src/hot",
		"testdata/src/frameidiom",
		"testdata/src/cold",
	)
}
