// Package framecapture protects the pre-bound-frame idiom that keeps the
// repository's hot paths allocation-free (PRs 1 and 5).
//
// Every per-operation code path — the eec elementary/composed operations,
// the store request frames, the server's request loop — binds its
// transaction closures once, at frame construction, and parameterises
// them through frame fields; nothing closure-shaped is created per
// operation. The AllocsPerRun regression tests pin the outcome, but only
// for the paths they exercise; this analyzer pins the idiom itself at
// every site, in every package that declares itself hot with a
// //compose:hotpath directive (by convention in its doc.go).
//
// In such packages, for closures whose type is a transaction body (any
// func type with an stm.Tx parameter), framecapture reports:
//
//   - a closure literal created inside a for/range loop and passed
//     straight into a transaction runner: it is re-allocated every
//     iteration, exactly what frame binding exists to avoid;
//   - a closure literal capturing an enclosing loop's control variable:
//     since Go 1.22 each iteration gets a fresh variable, so the capture
//     forces a per-iteration heap allocation of variable and closure even
//     when the literal itself is hoisted or stored.
//
// Binding closures once outside any loop — the opFrame constructor
// pattern, or a one-shot literal like LinkedListSet.Elements — captures
// ordinary locals and passes clean; the negative fixture pins this.
package framecapture

import (
	"go/ast"
	"go/types"

	"oestm/internal/analysis"
)

// Analyzer flags per-iteration transaction closures in hot-path packages.
var Analyzer = &analysis.Analyzer{
	Name: "framecapture",
	Doc:  "in //compose:hotpath packages, forbid per-loop transaction closures and loop-variable capture",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if !pass.HasPackageDirective("hotpath") {
		return nil
	}
	pass.WalkStack(func(n ast.Node, stack []ast.Node) {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkCall(pass, n, stack)
		case *ast.FuncLit:
			if txnBody(pass.TypeOf(n.Type)) {
				checkLoopCapture(pass, n, stack)
			}
		}
	})
	return nil
}

// txnBody reports whether t is a transaction-body function type: a func
// with a parameter of the stm.Tx interface type.
func txnBody(t types.Type) bool {
	sig, ok := t.(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if analysis.NamedFrom(sig.Params().At(i).Type(), "internal/stm", "Tx") {
			return true
		}
	}
	return false
}

// checkCall flags closure literals handed to a transaction runner from
// inside a loop.
func checkCall(pass *analysis.Pass, call *ast.CallExpr, stack []ast.Node) {
	sig, ok := pass.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	for i, arg := range call.Args {
		lit, ok := ast.Unparen(arg).(*ast.FuncLit)
		if !ok || !txnBody(paramType(sig, i)) {
			continue
		}
		if loop := enclosingLoop(stack); loop != nil {
			pass.Reportf(lit.Pos(), "transaction closure created inside a loop: it allocates every iteration; bind it once to a per-thread frame and parameterise through fields")
		}
	}
}

// paramType returns the type of the i-th argument's parameter, expanding
// the variadic tail.
func paramType(sig *types.Signature, i int) types.Type {
	params := sig.Params()
	if sig.Variadic() && i >= params.Len()-1 {
		if s, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
			return s.Elem()
		}
	}
	if i < params.Len() {
		return params.At(i).Type()
	}
	return nil
}

// checkLoopCapture flags a transaction closure that captures a control
// variable of any loop enclosing it.
func checkLoopCapture(pass *analysis.Pass, lit *ast.FuncLit, stack []ast.Node) {
	loopVars := map[types.Object]bool{}
	for _, n := range stack[:len(stack)-1] {
		switch n := n.(type) {
		case *ast.ForStmt:
			if init, ok := n.Init.(*ast.AssignStmt); ok {
				for _, lhs := range init.Lhs {
					if id, ok := lhs.(*ast.Ident); ok {
						if obj := pass.TypesInfo.Defs[id]; obj != nil {
							loopVars[obj] = true
						}
					}
				}
			}
		case *ast.RangeStmt:
			for _, e := range []ast.Expr{n.Key, n.Value} {
				if id, ok := e.(*ast.Ident); ok {
					if obj := pass.TypesInfo.Defs[id]; obj != nil {
						loopVars[obj] = true
					}
				}
			}
		}
	}
	if len(loopVars) == 0 {
		return
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if obj := pass.TypesInfo.Uses[id]; obj != nil && loopVars[obj] {
			pass.Reportf(id.Pos(), "transaction closure captures loop variable %s: each iteration heap-allocates the variable and the closure; pass it through a pre-bound frame field instead", id.Name)
			loopVars[obj] = false // one report per variable per closure
		}
		return true
	})
}

// enclosingLoop returns the innermost for/range statement on the stack,
// or nil.
func enclosingLoop(stack []ast.Node) ast.Node {
	for i := len(stack) - 2; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			return stack[i]
		}
	}
	return nil
}
