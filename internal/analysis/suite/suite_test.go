package suite_test

import (
	"testing"

	"oestm/internal/analysis"
	"oestm/internal/analysis/suite"
)

// TestRepoClean runs every analyzer in the suite over the whole module
// and requires zero diagnostics: the tree must satisfy its own static
// contracts at all times. This is the in-process twin of the CI
// compose-vet job.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and re-typechecks the whole module")
	}
	pkgs, err := analysis.Load("../../..", "./...")
	if err != nil {
		t.Fatalf("loading module packages: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("no packages loaded")
	}
	for _, a := range suite.All() {
		for _, pkg := range pkgs {
			diags, err := pkg.Run(a)
			if err != nil {
				t.Fatalf("%s on %s: %v", a.Name, pkg.Build.ImportPath, err)
			}
			for _, d := range diags {
				t.Errorf("%s: %s: %s", a.Name, pkg.Fset.Position(d.Pos), d.Message)
			}
		}
	}
}

func TestByName(t *testing.T) {
	got, ok := suite.ByName([]string{"varaccess", "noalloc"})
	if !ok {
		t.Fatal("ByName rejected known analyzer names")
	}
	if len(got) != 2 || got[0].Name != "varaccess" || got[1].Name != "noalloc" {
		t.Fatalf("ByName returned wrong analyzers: %v", got)
	}
	if _, ok := suite.ByName([]string{"nope"}); ok {
		t.Fatal("ByName accepted unknown analyzer name")
	}
}
