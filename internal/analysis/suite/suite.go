// Package suite registers the repository's static STM-contract analyzers
// in their canonical order. cmd/compose-vet runs exactly this suite, and
// suite_test.go keeps `go test ./...` failing whenever the suite is not
// clean over the whole module — the same gate CI applies.
package suite

import (
	"oestm/internal/analysis"
	"oestm/internal/analysis/causeclass"
	"oestm/internal/analysis/framecapture"
	"oestm/internal/analysis/noalloc"
	"oestm/internal/analysis/varaccess"
	"oestm/internal/analysis/wordcopy"
)

// All returns every analyzer of the compose-vet suite.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		varaccess.Analyzer,
		wordcopy.Analyzer,
		causeclass.Analyzer,
		framecapture.Analyzer,
		noalloc.Analyzer,
	}
}

// ByName returns the named analyzers, or false if any name is unknown.
func ByName(names []string) ([]*analysis.Analyzer, bool) {
	byName := map[string]*analysis.Analyzer{}
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*analysis.Analyzer
	for _, n := range names {
		a, ok := byName[n]
		if !ok {
			return nil, false
		}
		out = append(out, a)
	}
	return out, true
}
