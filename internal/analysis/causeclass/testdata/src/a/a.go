// Package a exercises causeclass: every abort site must carry a named,
// concrete ConflictCause (and explicit Conflict calls a static reason).
package a

import (
	"fmt"

	"oestm/internal/stm"
)

// myCause shows that locally named constants are first-class causes.
const myCause = stm.CauseElasticWindow

func bad(c stm.ConflictCause, why string) {
	stm.Abort(stm.CauseUnknown)          // want "must not be called with CauseUnknown"
	stm.Abort(c)                         // want "not a computed value"
	stm.Abort(stm.ConflictCause(3))      // want "named ConflictCause constant, not a numeric conversion"
	_ = stm.ConflictOf(c)                // want "not a computed value"
	_ = stm.ConflictOf(stm.CauseUnknown) // want "must not be called with CauseUnknown"
	stm.Conflict(why)                    // want "must be a constant string"
	stm.Conflict(fmt.Sprintf("%d", 7))   // want "must be a constant string"
	stm.Conflict("")                     // want "must be a non-empty description"
}

func good() {
	stm.Abort(stm.CauseLockBusy)
	stm.Abort(myCause)
	stm.Abort((stm.CauseReadValidation)) // parenthesised constants still count
	_ = stm.ConflictOf(stm.CauseCommitValidation)
	stm.Conflict("traversal window moved")
	const staticReason = "exclusion pair present"
	stm.Conflict(staticReason)
}
