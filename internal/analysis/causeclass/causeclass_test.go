package causeclass_test

import (
	"testing"

	"oestm/internal/analysis/analysistest"
	"oestm/internal/analysis/causeclass"
)

func TestCauseclass(t *testing.T) {
	analysistest.Run(t, causeclass.Analyzer, "testdata/src/a")
}
