// Package causeclass statically pins the abort-classification contract
// from the contention-management layer (PR 3): every conflict site names
// the concrete, typed reason it aborts for.
//
// The per-cause telemetry (Stats.AbortsByCause) and the contention
// managers' policy decisions are only as good as the classification at
// the abort sites. The engines' 20+ sites are pinned dynamically by
// per-engine TestConflictCauses table tests; this analyzer makes the same
// contract a build error for every present and future site:
//
//   - stm.Abort(cause) and stm.ConflictOf(cause) must receive a named
//     stm.ConflictCause constant — not CauseUnknown (the "I didn't
//     classify this" reserved zero value), not a computed variable, and
//     not a numeric conversion that bypasses the named constants;
//   - stm.Conflict(reason) — the user-level explicit abort — must receive
//     a non-empty constant string: the reason is a static description of
//     the conflict class, and computed strings would both defeat that and
//     allocate on the retry hot path.
//
// The stm package itself (and the oestm facade, which forwards verbatim)
// is exempt: the Atomic driver legitimately re-raises recorded causes it
// receives as values, and the facade's wrappers are checked at their call
// sites instead.
package causeclass

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"

	"oestm/internal/analysis"
)

// Analyzer flags abort sites that fail to classify their conflict cause.
var Analyzer = &analysis.Analyzer{
	Name: "causeclass",
	Doc:  "require a concrete typed ConflictCause (never CauseUnknown or a computed value) at every abort site",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if exemptPkg(pass.Pkg.Path()) {
		return nil
	}
	pass.WalkStack(func(n ast.Node, _ []ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) < 1 {
			return
		}
		fn := calleeFunc(pass, call)
		if fn == nil || fn.Pkg() == nil || !stmAPI(fn.Pkg().Path()) {
			return
		}
		switch fn.Name() {
		case "Abort", "ConflictOf":
			checkCause(pass, call.Args[0], fn.Name())
		case "Conflict":
			checkReason(pass, call.Args[0])
		}
	})
	return nil
}

// exemptPkg reports whether the package legitimately handles causes as
// values: the stm driver itself and the re-exporting facade.
func exemptPkg(path string) bool {
	return path == "oestm" || path == "internal/stm" || strings.HasSuffix(path, "/internal/stm")
}

// stmAPI reports whether path is a package whose Abort/ConflictOf/
// Conflict functions carry the classification contract: the stm package
// and the oestm facade that forwards to it.
func stmAPI(path string) bool {
	return path == "oestm" || path == "internal/stm" || strings.HasSuffix(path, "/internal/stm")
}

// calleeFunc resolves the called function object, or nil for indirect
// calls, conversions, and builtins.
func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := pass.TypesInfo.Uses[id].(*types.Func)
	return fn
}

// checkCause validates the ConflictCause argument of Abort/ConflictOf.
func checkCause(pass *analysis.Pass, arg ast.Expr, callee string) {
	tv, ok := pass.TypesInfo.Types[arg]
	if !ok {
		return
	}
	if tv.Value == nil {
		pass.Reportf(arg.Pos(), "%s must be given a named ConflictCause constant, not a computed value; classify the conflict site", callee)
		return
	}
	if v, ok := constant.Uint64Val(tv.Value); ok && v == 0 {
		pass.Reportf(arg.Pos(), "%s must not be called with CauseUnknown; classify the conflict site with a concrete cause", callee)
		return
	}
	if !namedConstRef(pass, arg) {
		pass.Reportf(arg.Pos(), "%s argument must refer to a named ConflictCause constant, not a numeric conversion", callee)
	}
}

// namedConstRef reports whether arg is (modulo parentheses) a reference
// to a declared constant.
func namedConstRef(pass *analysis.Pass, arg ast.Expr) bool {
	var id *ast.Ident
	switch e := ast.Unparen(arg).(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return false
	}
	_, ok := pass.TypesInfo.Uses[id].(*types.Const)
	return ok
}

// checkReason validates the diagnostic string of the user-level Conflict.
func checkReason(pass *analysis.Pass, arg ast.Expr) {
	tv, ok := pass.TypesInfo.Types[arg]
	if !ok {
		return
	}
	if tv.Value == nil || tv.Value.Kind() != constant.String {
		pass.Reportf(arg.Pos(), "Conflict reason must be a constant string naming the conflict class (computed reasons allocate on the retry path)")
		return
	}
	if constant.StringVal(tv.Value) == "" {
		pass.Reportf(arg.Pos(), "Conflict reason must be a non-empty description of the conflict class")
	}
}
