package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// A Package is one loaded, type-checked analysis target. One Fset is
// shared by every package of a Load call.
type Package struct {
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
	Build     *BuildInfo
}

// Run applies one analyzer to the package and returns its findings sorted
// by position.
func (p *Package) Run(a *Analyzer) ([]Diagnostic, error) {
	pass := &Pass{
		Analyzer:  a,
		Fset:      p.Fset,
		Files:     p.Files,
		Pkg:       p.Types,
		TypesInfo: p.TypesInfo,
		Build:     p.Build,
	}
	if err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("%s: %s: %w", a.Name, p.Build.ImportPath, err)
	}
	return pass.Diagnostics(), nil
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Name       string
	Dir        string
	Export     string
	GoFiles    []string
	CgoFiles   []string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// goList runs `go list -e -deps -export -json` in dir over the given
// patterns and decodes the package stream.
func goList(dir string, patterns []string) ([]*listPkg, error) {
	args := append([]string{
		"list", "-e", "-deps", "-export",
		"-json=ImportPath,Name,Dir,Export,GoFiles,CgoFiles,Standard,DepOnly,Error",
		"--",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var pkgs []*listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		pkgs = append(pkgs, &p)
	}
	return pkgs, nil
}

// Load lists the packages matching patterns (resolved relative to dir, a
// directory inside the target module), type-checks each matched package
// from source against the compiled export data of its dependencies, and
// returns them ready for analysis. Test files are not loaded: the
// contracts the suite enforces protect the shipped code, and the dynamic
// checkers remain the authority over test-only code.
func Load(dir string, patterns ...string) ([]*Package, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string)
	var targets []*listPkg
	for _, p := range listed {
		if p.Error != nil && !p.DepOnly {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			targets = append(targets, p)
		}
	}
	fset := token.NewFileSet()
	imp := exportImporter(fset, exports)
	var out []*Package
	for _, t := range targets {
		if len(t.CgoFiles) > 0 {
			return nil, fmt.Errorf("%s: cgo packages are not supported", t.ImportPath)
		}
		pkg, err := typecheck(fset, imp, t.ImportPath, t.Dir, t.GoFiles, exports)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// LoadFixture loads a single directory of Go files (an analysistest
// fixture under some testdata/src, invisible to `go list ./...`) as one
// package. Imports are resolved against the enclosing module: the fixture
// may import both the standard library and this module's packages.
func LoadFixture(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	entries, err := os.ReadDir(abs)
	if err != nil {
		return nil, err
	}
	var goFiles []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			goFiles = append(goFiles, e.Name())
		}
	}
	sort.Strings(goFiles)
	if len(goFiles) == 0 {
		return nil, fmt.Errorf("%s: no Go files", dir)
	}
	fset := token.NewFileSet()
	files, err := parseFiles(fset, abs, goFiles)
	if err != nil {
		return nil, err
	}
	// Resolve the fixture's imports through the enclosing module.
	imports := map[string]bool{}
	for _, f := range files {
		for _, spec := range f.Imports {
			path := strings.Trim(spec.Path.Value, `"`)
			if path != "unsafe" && path != "C" {
				imports[path] = true
			}
		}
	}
	exports := make(map[string]string)
	if len(imports) > 0 {
		patterns := make([]string, 0, len(imports))
		for p := range imports {
			patterns = append(patterns, p)
		}
		sort.Strings(patterns)
		listed, err := goList(abs, patterns)
		if err != nil {
			return nil, err
		}
		for _, p := range listed {
			if p.Error != nil {
				return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
			}
			if p.Export != "" {
				exports[p.ImportPath] = p.Export
			}
		}
	}
	imp := exportImporter(fset, exports)
	return typecheckParsed(fset, imp, filepath.Base(abs), abs, goFiles, files, exports)
}

// exportImporter returns a go/types importer that reads gc export data
// through the import path -> export file map produced by `go list
// -export`.
func exportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
}

// LoadVetPackage type-checks one package from the coordinates a `go vet
// -vettool` config supplies: pre-resolved (possibly absolute) file names
// and an import path -> export data map.
func LoadVetPackage(importPath, dir string, goFiles []string, exports map[string]string) (*Package, error) {
	fset := token.NewFileSet()
	imp := exportImporter(fset, exports)
	return typecheck(fset, imp, importPath, dir, goFiles, exports)
}

func parseFiles(fset *token.FileSet, dir string, names []string) ([]*ast.File, error) {
	var files []*ast.File
	for _, name := range names {
		if !filepath.IsAbs(name) {
			name = filepath.Join(dir, name)
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

func typecheck(fset *token.FileSet, imp types.Importer, importPath, dir string, goFiles []string, exports map[string]string) (*Package, error) {
	files, err := parseFiles(fset, dir, goFiles)
	if err != nil {
		return nil, err
	}
	return typecheckParsed(fset, imp, importPath, dir, goFiles, files, exports)
}

func typecheckParsed(fset *token.FileSet, imp types.Importer, importPath, dir string, goFiles []string, files []*ast.File, exports map[string]string) (*Package, error) {
	conf := types.Config{
		Importer: imp,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	pkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", importPath, err)
	}
	abs := make([]string, len(goFiles))
	for i, n := range goFiles {
		if filepath.IsAbs(n) {
			abs[i] = n
		} else {
			abs[i] = filepath.Join(dir, n)
		}
	}
	return &Package{
		Fset:      fset,
		Files:     files,
		Types:     pkg,
		TypesInfo: info,
		Build: &BuildInfo{
			Dir:         dir,
			ImportPath:  importPath,
			GoFiles:     abs,
			PackageFile: exports,
		},
	}, nil
}
