// Package analysistest runs an analyzer over fixture packages and checks
// its findings against // want comments, mirroring (a useful subset of)
// golang.org/x/tools/go/analysis/analysistest.
//
// A fixture is a directory of Go files, conventionally
// testdata/src/<name> next to the analyzer's own test. Every line on
// which the analyzer must report carries a trailing comment of the form
//
//	x = y // want "regexp"
//
// with one Go-quoted regular expression per expected diagnostic on that
// line. The fixture fails the test if a diagnostic has no matching want
// on its line, or a want goes unmatched — so every fixture pins both its
// true positives and (by the absence of wants) its tricky negatives.
//
// Fixtures live under testdata, so `go build ./...` and `go vet ./...`
// never see their deliberate contract violations; they are still fully
// type-checked here, and may import this module's real packages
// (oestm/internal/mvar, oestm/internal/stm, ...).
package analysistest

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"oestm/internal/analysis"
)

// want is one expected diagnostic.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// Run loads each fixture directory, applies the analyzer, and compares
// its diagnostics against the fixtures' // want comments.
func Run(t *testing.T, a *analysis.Analyzer, fixtureDirs ...string) {
	t.Helper()
	for _, dir := range fixtureDirs {
		t.Run(dir, func(t *testing.T) {
			t.Helper()
			runOne(t, a, dir)
		})
	}
}

func runOne(t *testing.T, a *analysis.Analyzer, dir string) {
	t.Helper()
	pkg, err := analysis.LoadFixture(dir)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	wants, err := collectWants(pkg)
	if err != nil {
		t.Fatal(err)
	}
	diags, err := pkg.Run(a)
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}
	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		if w := findWant(wants, pos.Filename, pos.Line, d.Message); w != nil {
			w.matched = true
			continue
		}
		t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.re)
		}
	}
}

// findWant returns the first unmatched expectation on (file, line) whose
// pattern matches msg.
func findWant(wants []*want, file string, line int, msg string) *want {
	for _, w := range wants {
		if !w.matched && w.file == file && w.line == line && w.re.MatchString(msg) {
			return w
		}
	}
	return nil
}

// collectWants scans every comment of the fixture for // want markers.
func collectWants(pkg *analysis.Package) ([]*want, error) {
	var wants []*want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				patterns, err := splitQuoted(text)
				if err != nil {
					return nil, fmt.Errorf("%s: malformed want comment: %v", pos, err)
				}
				for _, p := range patterns {
					re, err := regexp.Compile(p)
					if err != nil {
						return nil, fmt.Errorf("%s: bad want pattern %q: %v", pos, p, err)
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return wants, nil
}

// splitQuoted parses a sequence of space-separated Go string literals.
func splitQuoted(s string) ([]string, error) {
	var out []string
	for {
		s = strings.TrimSpace(s)
		if s == "" {
			return out, nil
		}
		if s[0] != '"' && s[0] != '`' {
			return nil, fmt.Errorf("expected quoted pattern, found %q", s)
		}
		// Find the end of the literal by scanning for the closing quote.
		end := -1
		if s[0] == '`' {
			if i := strings.IndexByte(s[1:], '`'); i >= 0 {
				end = i + 2
			}
		} else {
			for i := 1; i < len(s); i++ {
				if s[i] == '\\' {
					i++
					continue
				}
				if s[i] == '"' {
					end = i + 1
					break
				}
			}
		}
		if end < 0 {
			return nil, fmt.Errorf("unterminated pattern in %q", s)
		}
		lit, err := strconv.Unquote(s[:end])
		if err != nil {
			return nil, fmt.Errorf("unquoting %q: %v", s[:end], err)
		}
		out = append(out, lit)
		s = s[end:]
	}
}
