// Package analysis is a self-contained static-analysis framework in the
// spirit of golang.org/x/tools/go/analysis, built only on the standard
// library so the repository's analyzers run offline (this module
// deliberately has no dependencies).
//
// The repository's soundness story rests on conventions the Go compiler
// does not check: shared state is only touched through the stm/mvar
// accessor API, every abort site carries a typed ConflictCause, and the
// pinned hot paths stay allocation-free. Each convention is enforced by
// one analyzer under internal/analysis/...; cmd/compose-vet runs the whole
// suite and CI requires it to be clean over ./... (see the "Static
// contracts" section of ARCHITECTURE.md).
//
// An Analyzer receives one type-checked package per Pass and reports
// Diagnostics. Packages are loaded by the driver in driver.go: `go list
// -deps -export -json` supplies the file lists and the compiled export
// data of every dependency, the target's own sources are parsed and
// type-checked with go/types against that export data, so the suite needs
// neither GOPATH mode nor network access.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer is one static check. Run is invoked once per loaded package
// and reports findings through the Pass.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and on the compose-vet
	// command line. It must be a valid Go identifier.
	Name string
	// Doc is the help text: first line is a one-line summary.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// A Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// BuildInfo carries the build-system coordinates of the package under
// analysis, for analyzers (noalloc) that need to re-invoke the compiler.
type BuildInfo struct {
	// Dir is the package directory.
	Dir string
	// ImportPath is the canonical import path ("oestm/internal/eec").
	ImportPath string
	// GoFiles are the absolute paths of the non-test sources, in the
	// order they were parsed.
	GoFiles []string
	// PackageFile maps the import path of every (transitive) dependency
	// to its compiled export data file, exactly the contents of a
	// -importcfg file for `go tool compile`.
	PackageFile map[string]string
}

// ImportCfg renders PackageFile in the -importcfg syntax understood by
// the gc compiler.
func (b *BuildInfo) ImportCfg() string {
	paths := make([]string, 0, len(b.PackageFile))
	for p := range b.PackageFile {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	var sb strings.Builder
	for _, p := range paths {
		fmt.Fprintf(&sb, "packagefile %s=%s\n", p, b.PackageFile[p])
	}
	return sb.String()
}

// A Pass is one application of one analyzer to one package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Build     *BuildInfo

	diagnostics []Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diagnostics = append(p.diagnostics, Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostics returns the findings reported so far, sorted by position.
func (p *Pass) Diagnostics() []Diagnostic {
	sort.SliceStable(p.diagnostics, func(i, j int) bool {
		return p.diagnostics[i].Pos < p.diagnostics[j].Pos
	})
	return p.diagnostics
}

// TypeOf returns the type of expression e, or nil.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.TypesInfo.TypeOf(e) }

// WalkStack traverses every file of the pass in depth-first order, calling
// fn with each node and the stack of its ancestors (stack[0] is the
// *ast.File, stack[len(stack)-1] is n itself).
func (p *Pass) WalkStack(fn func(n ast.Node, stack []ast.Node)) {
	for _, f := range p.Files {
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			fn(n, stack)
			return true
		})
	}
}

// directivePrefix introduces the repository's analysis annotations
// ("//compose:noalloc", "//compose:hotpath", ...).
const directivePrefix = "//compose:"

// HasPackageDirective reports whether any comment in the package carries
// the given //compose: directive (by convention it sits above the package
// clause of the package's doc file).
func (p *Pass) HasPackageDirective(name string) bool {
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if isDirective(c.Text, name) {
					return true
				}
			}
		}
	}
	return false
}

// FuncDirective reports whether the function's doc comment carries the
// given //compose: directive.
func FuncDirective(decl *ast.FuncDecl, name string) bool {
	if decl.Doc == nil {
		return false
	}
	for _, c := range decl.Doc.List {
		if isDirective(c.Text, name) {
			return true
		}
	}
	return false
}

// isDirective reports whether a raw comment line is exactly the named
// //compose: directive (trailing explanation after a space is allowed).
func isDirective(text, name string) bool {
	if !strings.HasPrefix(text, directivePrefix) {
		return false
	}
	rest := strings.TrimPrefix(text, directivePrefix)
	return rest == name || strings.HasPrefix(rest, name+" ")
}

// NamedFrom reports whether t (after unwrapping aliases) is the named type
// pkgSuffix.name, where pkgSuffix is matched against the end of the
// defining package's import path ("internal/mvar" matches both
// "oestm/internal/mvar" and a test fixture's copy). Generic instantiations
// match their origin name (mvar.Var[T] is named "Var").
func NamedFrom(t types.Type, pkgSuffix, name string) bool {
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Name() != name || obj.Pkg() == nil {
		return false
	}
	path := obj.Pkg().Path()
	return path == pkgSuffix || strings.HasSuffix(path, "/"+pkgSuffix)
}
