package noalloc_test

import (
	"testing"

	"oestm/internal/analysis/analysistest"
	"oestm/internal/analysis/noalloc"
)

func TestNoalloc(t *testing.T) {
	analysistest.Run(t, noalloc.Analyzer, "testdata/src/a")
}
