// Package a exercises noalloc: //compose:noalloc annotations checked
// against the compiler's escape analysis.
package a

// escapes violates its annotation: the local is moved to the heap
// because its address outlives the frame.
//
//compose:noalloc
func escapes() *int {
	x := 42 // want "heap allocation in //compose:noalloc function escapes: moved to heap: x"
	return &x
}

// sliceAlloc violates its annotation: a non-constant make escapes.
//
//compose:noalloc
func sliceAlloc(n int) []int {
	buf := make([]int, n) // want "heap allocation in //compose:noalloc function sliceAlloc"
	return buf
}

// sum is genuinely alloc-free and must pass.
//
//compose:noalloc
func sum(xs []int) int {
	s := 0
	for _, x := range xs {
		s += x
	}
	return s
}

// cleanClosure uses a non-escaping func literal: stack-allocated, so
// the annotation holds. This is the tricky negative.
//
//compose:noalloc
func cleanClosure(xs []int) int {
	double := func(x int) int { return 2 * x }
	s := 0
	for _, x := range xs {
		s += double(x)
	}
	return s
}

// unannotated allocates freely; without the directive noalloc must stay
// silent.
func unannotated() *[]int {
	buf := make([]int, 8)
	return &buf
}

// identity is generic: escape analysis runs per instantiation, so the
// annotation cannot be verified on the generic source.
//
//compose:noalloc
func identity[T any](v T) T { // want "cannot be verified"
	return v
}
