// Package noalloc verifies //compose:noalloc annotations against the
// compiler's escape analysis, giving the pinned zero-allocation paths a
// compile-time counterpart to the AllocsPerRun regression tests.
//
// The repository's Figs. 6-8 results depend on the hot paths staying
// allocation-free: pooled transaction frames, flat typed read/write sets,
// raw word payloads, pre-bound operation closures. The AllocsPerRun tests
// catch regressions dynamically, but only on the paths and inputs they
// run, and only after the code executes. Annotating a function
//
//	//compose:noalloc
//	func (l list) find(tx stm.Tx, key int) (prev, curr *lnode) { ... }
//
// asserts that its body contains no heap allocation at all. The analyzer
// re-compiles the package with `go tool compile -m` (using the same
// importcfg of compiled export data the package was type-checked
// against, so no network or go build cache state is needed) and reports
// every "escapes to heap" / "moved to heap" diagnostic that falls inside
// an annotated function's body.
//
// Two honest limits, which keep the dynamic tests authoritative: the
// check sees only the annotated body (an allocation inside a callee that
// the compiler chose not to inline is charged to the callee, which should
// carry its own annotation), and generic functions cannot be verified at
// their definition (escape analysis runs per instantiation), so
// annotating one is itself reported.
package noalloc

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/token"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"

	"oestm/internal/analysis"
)

// Analyzer verifies //compose:noalloc functions against escape analysis.
var Analyzer = &analysis.Analyzer{
	Name: "noalloc",
	Doc:  "verify that //compose:noalloc functions contain no heap allocations (compiler escape analysis)",
	Run:  run,
}

// region is the body extent of one annotated function.
type region struct {
	file      *token.File
	name      string
	from, to  int // line range, inclusive
	reportPos token.Pos
}

func run(pass *analysis.Pass) error {
	var regions []*region
	for _, f := range pass.Files {
		tf := pass.Fset.File(f.Pos())
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || !analysis.FuncDirective(fd, "noalloc") {
				continue
			}
			if generic(fd) {
				pass.Reportf(fd.Name.Pos(), "//compose:noalloc on generic function %s cannot be verified: escape analysis runs per instantiation; annotate concrete callers instead", fd.Name.Name)
				continue
			}
			if fd.Body == nil {
				continue
			}
			regions = append(regions, &region{
				file:      tf,
				name:      fd.Name.Name,
				from:      tf.Line(fd.Body.Pos()),
				to:        tf.Line(fd.Body.End()),
				reportPos: fd.Name.Pos(),
			})
		}
	}
	if len(regions) == 0 {
		return nil
	}
	escapes, err := escapeDiagnostics(pass.Build)
	if err != nil {
		return err
	}
	for _, e := range escapes {
		for _, r := range regions {
			if sameFile(r.file.Name(), e.file) && e.line >= r.from && e.line <= r.to {
				pass.Reportf(posIn(r.file, e.line, e.col), "heap allocation in //compose:noalloc function %s: %s", r.name, e.msg)
			}
		}
	}
	return nil
}

// generic reports whether the function or its receiver is parameterised.
func generic(fd *ast.FuncDecl) bool {
	if fd.Type.TypeParams != nil && len(fd.Type.TypeParams.List) > 0 {
		return true
	}
	if fd.Recv == nil {
		return false
	}
	found := false
	ast.Inspect(fd.Recv, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.IndexExpr, *ast.IndexListExpr:
			found = true
		}
		return !found
	})
	return found
}

// escapeLine matches one compiler diagnostic: file:line:col: message.
var escapeLine = regexp.MustCompile(`^(.+?):(\d+):(\d+): (.*)$`)

type escape struct {
	file string
	line int
	col  int
	msg  string
}

// escapeDiagnostics compiles the package with -m=1 and returns the heap
// allocation diagnostics.
func escapeDiagnostics(build *analysis.BuildInfo) ([]escape, error) {
	cfg, err := os.CreateTemp("", "compose-vet-importcfg-*")
	if err != nil {
		return nil, err
	}
	defer os.Remove(cfg.Name())
	if _, err := cfg.WriteString(build.ImportCfg()); err != nil {
		cfg.Close()
		return nil, err
	}
	cfg.Close()
	obj, err := os.CreateTemp("", "compose-vet-*.o")
	if err != nil {
		return nil, err
	}
	obj.Close()
	defer os.Remove(obj.Name())

	args := []string{
		"tool", "compile",
		"-p", build.ImportPath,
		"-importcfg", cfg.Name(),
		"-m=1",
		"-o", obj.Name(),
	}
	args = append(args, build.GoFiles...)
	cmd := exec.Command("go", args...)
	cmd.Dir = build.Dir
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &out
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go tool compile -m %s: %v\n%s", build.ImportPath, err, out.String())
	}
	var escapes []escape
	for _, line := range strings.Split(out.String(), "\n") {
		if !strings.Contains(line, "escapes to heap") && !strings.Contains(line, "moved to heap") {
			continue
		}
		m := escapeLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		ln, _ := strconv.Atoi(m[2])
		col, _ := strconv.Atoi(m[3])
		escapes = append(escapes, escape{file: m[1], line: ln, col: col, msg: m[4]})
	}
	return escapes, nil
}

// sameFile compares compiler-reported and fileset paths, tolerating the
// compiler emitting relative paths.
func sameFile(fsetPath, compilerPath string) bool {
	if fsetPath == compilerPath {
		return true
	}
	return filepath.Base(fsetPath) == filepath.Base(compilerPath)
}

// posIn reconstructs a token.Pos for a (line, col) pair in file.
func posIn(file *token.File, line, col int) token.Pos {
	if line < 1 || line > file.LineCount() {
		return file.Pos(0)
	}
	p := file.LineStart(line)
	return p + token.Pos(col-1)
}
