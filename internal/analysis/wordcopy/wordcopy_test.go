package wordcopy_test

import (
	"testing"

	"oestm/internal/analysis/analysistest"
	"oestm/internal/analysis/wordcopy"
)

func TestWordcopy(t *testing.T) {
	analysistest.Run(t, wordcopy.Analyzer, "testdata/src/a")
}
