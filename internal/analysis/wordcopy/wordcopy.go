// Package wordcopy is the copylocks analogue for transactional memory
// words: it flags operations that copy, by value, any type that
// (transitively) contains an mvar.Word.
//
// A Word is a versioned lock word plus payload cells, identified by its
// address — engines key read/write sets and lock ownership on *Word.
// Copying a struct that embeds one (an eec node, a typed Var/Flag/IntVar,
// a whole Queue header) forks the lock word: the copy carries a version
// history no engine manages, writes to the original no longer invalidate
// readers of the copy, and a later &copy.field hands the engines a word
// that aliases nothing. The race detector cannot see this — the copy is
// a plain memory read — so the only dynamic symptom is a missed conflict,
// exactly the failure mode the paper's composition proofs exclude.
//
// Flagged, in the spirit of go vet's copylocks: declaring parameters,
// results, or receivers of word-containing type; assignments and variable
// initialisations whose right-hand side copies an existing word-carrying
// value (dereferences, fields, elements); and range clauses whose value
// variable copies word-carrying elements. Constructing a fresh value from
// a composite literal is not a copy and stays legal.
package wordcopy

import (
	"go/ast"
	"go/token"
	"go/types"

	"oestm/internal/analysis"
)

// Analyzer flags by-value copies of types containing mvar.Word.
var Analyzer = &analysis.Analyzer{
	Name: "wordcopy",
	Doc:  "flag by-value copies of structs containing an mvar.Word (copylocks for STM words)",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	c := &checker{pass: pass, memo: map[types.Type]bool{}}
	pass.WalkStack(func(n ast.Node, stack []ast.Node) {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Recv != nil {
				c.checkFieldList(n.Recv, "receiver")
			}
			c.checkFuncType(n.Type)
		case *ast.FuncLit:
			c.checkFuncType(n.Type)
		case *ast.AssignStmt:
			for _, rhs := range n.Rhs {
				c.checkCopy(rhs, "assignment")
			}
		case *ast.ValueSpec:
			for _, v := range n.Values {
				c.checkCopy(v, "variable declaration")
			}
		case *ast.RangeStmt:
			if n.Value != nil {
				if t := pass.TypeOf(n.Value); t != nil && c.containsWord(t) {
					c.report(n.Value.Pos(), "range value", t)
				}
			}
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				c.checkCopy(r, "return")
			}
		}
	})
	return nil
}

type checker struct {
	pass *analysis.Pass
	memo map[types.Type]bool
}

func (c *checker) checkFuncType(ft *ast.FuncType) {
	c.checkFieldList(ft.Params, "parameter")
	if ft.Results != nil {
		c.checkFieldList(ft.Results, "result")
	}
}

func (c *checker) checkFieldList(fl *ast.FieldList, what string) {
	for _, f := range fl.List {
		t := c.pass.TypeOf(f.Type)
		if t != nil && c.containsWord(t) {
			c.report(f.Type.Pos(), what, t)
		}
	}
}

// checkCopy flags e when evaluating it copies an existing word-carrying
// value: a dereference, variable, field, or element. Freshly constructed
// values (composite literals, conversions of them) and calls are not
// copies made here — a function *returning* such a type is flagged at its
// declaration.
func (c *checker) checkCopy(e ast.Expr, what string) {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			break
		}
		e = p.X
	}
	switch e.(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
	default:
		return
	}
	if t := c.pass.TypeOf(e); t != nil {
		if tv, ok := c.pass.TypesInfo.Types[e]; ok && !tv.IsValue() {
			return
		}
		if c.containsWord(t) {
			c.report(e.Pos(), what, t)
		}
	}
}

func (c *checker) report(pos token.Pos, what string, t types.Type) {
	c.pass.Reportf(pos, "%s copies a value containing mvar.Word (%s); share words by pointer", what, types.TypeString(t, types.RelativeTo(c.pass.Pkg)))
}

// containsWord reports whether a value of type t embeds an mvar.Word
// (directly or through nested structs/arrays). Pointers, slices, and maps
// reference words rather than carry them, so they are fine to copy.
func (c *checker) containsWord(t types.Type) bool {
	if v, ok := c.memo[t]; ok {
		return v
	}
	c.memo[t] = false // cut recursion on cyclic types
	v := c.computeContainsWord(t)
	c.memo[t] = v
	return v
}

func (c *checker) computeContainsWord(t types.Type) bool {
	if analysis.NamedFrom(t, "internal/mvar", "Word") {
		return true
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if c.containsWord(u.Field(i).Type()) {
				return true
			}
		}
	case *types.Array:
		return c.containsWord(u.Elem())
	}
	return false
}
