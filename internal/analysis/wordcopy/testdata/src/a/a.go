// Package a exercises wordcopy: copying any struct that (transitively)
// contains an mvar.Word forks a versioned lock word, so every by-value
// path is flagged; pointer sharing and fresh composite construction are
// the tricky negatives.
package a

import "oestm/internal/mvar"

type node struct {
	key  int
	next mvar.Var[node]
}

type inner struct{ w mvar.Word }

type nested struct {
	meta  int
	inner inner
}

type tower struct {
	levels [4]inner
}

// plain contains no word: freely copyable.
type plain struct{ a, b int }

func byValueParam(n node) int { // want "parameter copies a value containing mvar.Word"
	return n.key
}

func byValueResult() (n nested) { // want "result copies a value containing mvar.Word"
	return
}

func (n node) valueReceiver() int { // want "receiver copies a value containing mvar.Word"
	return n.key
}

func copies(p *node, ns []nested, ts *tower) {
	local := *p // want "assignment copies a value containing mvar.Word"
	_ = local.key
	second := ns[0] // want "assignment copies a value containing mvar.Word"
	_ = second.meta
	level := ts.levels[1] // want "assignment copies a value containing mvar.Word"
	_ = level.w.Meta()
	var third nested
	third = ns[1] // want "assignment copies a value containing mvar.Word"
	_ = third.meta
}

func ranges(ns []nested) int {
	sum := 0
	for _, n := range ns { // want "range value copies a value containing mvar.Word"
		sum += n.meta
	}
	return sum
}

func declCopy(p *nested) {
	var d = *p // want "variable declaration copies a value containing mvar.Word"
	_ = d.meta
}

// --- negatives ---

func pointers(p *node, ns []nested) {
	q := p // pointer copy: the word is shared, not forked
	_ = q
	r := &ns[0] // taking the element's address is the sanctioned idiom
	_ = r
	for i := range ns { // index-only range over word-carrying elements
		_ = ns[i].meta
	}
}

func fresh() *node {
	n := node{key: 1} // composite construction is not a copy
	return &n
}

func plainCopies(p plain, ps []plain) plain {
	q := p // no word inside: all copies fine
	for _, x := range ps {
		q.a += x.a
	}
	return q
}
