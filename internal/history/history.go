// Package history implements the paper's system model (§II): histories of
// events over processes, objects and transactions, extended with the
// acquisition and release of protection elements (§II-A). It provides the
// vocabulary the checkers in internal/check use to state and verify the
// paper's definitions and theorems, plus a Recorder that converts
// instrumented OE-STM executions into histories.
//
// Conventions: transactions, processes and objects are identified by
// strings. Each object o carries exactly one protection element, written
// l(o) in the paper; we name the element after its object. Operation
// invocation and response events are recorded adjacently, so the
// sequential order of operations on an object is the order of their
// response events.
package history

import (
	"fmt"
	"strings"
)

// EventType enumerates the event kinds of §II.
type EventType uint8

const (
	// BeginEvent is <begin(t), p>.
	BeginEvent EventType = iota
	// InvokeEvent is <op, o, t>.
	InvokeEvent
	// ResponseEvent is <v, o, t>.
	ResponseEvent
	// CommitEvent is <commit(t), p>.
	CommitEvent
	// AbortEvent is <abort(t), p>.
	AbortEvent
	// AcquireEvent is <a(l(o)), p>: process p acquires the protection
	// element of object o.
	AcquireEvent
	// ReleaseEvent is <r(l(o)), p>.
	ReleaseEvent
)

// String returns a compact mnemonic for the event type.
func (t EventType) String() string {
	switch t {
	case BeginEvent:
		return "begin"
	case InvokeEvent:
		return "inv"
	case ResponseEvent:
		return "resp"
	case CommitEvent:
		return "commit"
	case AbortEvent:
		return "abort"
	case AcquireEvent:
		return "acq"
	case ReleaseEvent:
		return "rel"
	default:
		return fmt.Sprintf("event(%d)", uint8(t))
	}
}

// Event is one history event. Fields are used according to Type:
//
//	Begin/Commit/Abort: Proc, Tx
//	Invoke:             Proc, Tx, Obj, Op, Val (argument; may be nil)
//	Response:           Proc, Tx, Obj, Op, Val (return value)
//	Acquire/Release:    Proc, Obj (the element's object), Tx (informative)
type Event struct {
	Type EventType
	Proc string
	Tx   string
	Obj  string
	Op   string
	Val  any
}

// String renders the event in a notation close to the paper's.
func (e Event) String() string {
	switch e.Type {
	case BeginEvent, CommitEvent, AbortEvent:
		return fmt.Sprintf("<%s(%s),%s>", e.Type, e.Tx, e.Proc)
	case InvokeEvent:
		return fmt.Sprintf("<%s(%v),%s,%s>", e.Op, e.Val, e.Obj, e.Tx)
	case ResponseEvent:
		return fmt.Sprintf("<%v,%s,%s>", e.Val, e.Obj, e.Tx)
	case AcquireEvent:
		return fmt.Sprintf("<a(l(%s)),%s>", e.Obj, e.Proc)
	case ReleaseEvent:
		return fmt.Sprintf("<r(l(%s)),%s>", e.Obj, e.Proc)
	default:
		return "<?>"
	}
}

// History is a finite sequence of events (§II).
type History []Event

// String renders the history one event per line.
func (h History) String() string {
	var b strings.Builder
	for i, e := range h {
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(e.String())
	}
	return b.String()
}

// Procs returns the processes appearing in h, in order of first
// appearance.
func (h History) Procs() []string {
	var out []string
	seen := map[string]bool{}
	for _, e := range h {
		if e.Proc != "" && !seen[e.Proc] {
			seen[e.Proc] = true
			out = append(out, e.Proc)
		}
	}
	return out
}

// Objects returns the objects appearing in h, in order of first
// appearance.
func (h History) Objects() []string {
	var out []string
	seen := map[string]bool{}
	for _, e := range h {
		if e.Obj != "" && !seen[e.Obj] {
			seen[e.Obj] = true
			out = append(out, e.Obj)
		}
	}
	return out
}

// ByProc returns H|p: the subsequence of events involving process p.
func (h History) ByProc(p string) History {
	var out History
	for _, e := range h {
		if e.Proc == p {
			out = append(out, e)
		}
	}
	return out
}

// ByObj returns H|o for invocation/response events on object o.
func (h History) ByObj(o string) History {
	var out History
	for _, e := range h {
		if (e.Type == InvokeEvent || e.Type == ResponseEvent) && e.Obj == o {
			out = append(out, e)
		}
	}
	return out
}

// ByElement returns H|l(o): the acquire/release events of o's protection
// element.
func (h History) ByElement(o string) History {
	var out History
	for _, e := range h {
		if (e.Type == AcquireEvent || e.Type == ReleaseEvent) && e.Obj == o {
			out = append(out, e)
		}
	}
	return out
}

// Transactions returns transactions(H) in order of their begin events;
// transactions lacking a begin event are appended in order of first
// appearance.
func (h History) Transactions() []string {
	var out []string
	seen := map[string]bool{}
	for _, e := range h {
		if e.Type == BeginEvent && !seen[e.Tx] {
			seen[e.Tx] = true
			out = append(out, e.Tx)
		}
	}
	for _, e := range h {
		if e.Tx != "" && !seen[e.Tx] {
			seen[e.Tx] = true
			out = append(out, e.Tx)
		}
	}
	return out
}

// Committed returns committed(H) as a set.
func (h History) Committed() map[string]bool {
	out := map[string]bool{}
	for _, e := range h {
		if e.Type == CommitEvent {
			out[e.Tx] = true
		}
	}
	return out
}

// Aborted returns aborted(H) as a set.
func (h History) Aborted() map[string]bool {
	out := map[string]bool{}
	for _, e := range h {
		if e.Type == AbortEvent {
			out[e.Tx] = true
		}
	}
	return out
}

// Live returns live(H) = transactions(H) \ (committed ∪ aborted).
func (h History) Live() map[string]bool {
	committed, aborted := h.Committed(), h.Aborted()
	out := map[string]bool{}
	for _, t := range h.Transactions() {
		if !committed[t] && !aborted[t] {
			out[t] = true
		}
	}
	return out
}

// RemoveAborted drops every event involving an aborted transaction, as the
// model does before reasoning about correctness (§II).
func (h History) RemoveAborted() History {
	aborted := h.Aborted()
	var out History
	for _, e := range h {
		if e.Tx != "" && aborted[e.Tx] {
			continue
		}
		out = append(out, e)
	}
	return out
}

// ProcOf returns the process executing transaction t (from its begin
// event, falling back to any event of t).
func (h History) ProcOf(t string) string {
	for _, e := range h {
		if e.Type == BeginEvent && e.Tx == t {
			return e.Proc
		}
	}
	for _, e := range h {
		if e.Tx == t && e.Proc != "" {
			return e.Proc
		}
	}
	return ""
}

// IndexOf returns the position of the first event satisfying pred, or -1.
func (h History) IndexOf(pred func(Event) bool) int {
	for i, e := range h {
		if pred(e) {
			return i
		}
	}
	return -1
}

// CommitIndex returns the position of t's commit event, or -1.
func (h History) CommitIndex(t string) int {
	return h.IndexOf(func(e Event) bool { return e.Type == CommitEvent && e.Tx == t })
}

// BeginIndex returns the position of t's begin event, or -1.
func (h History) BeginIndex(t string) int {
	return h.IndexOf(func(e Event) bool { return e.Type == BeginEvent && e.Tx == t })
}

// Precedes reports t <H t': commit(t) precedes begin(t') in h.
func (h History) Precedes(t, u string) bool {
	ct, bu := h.CommitIndex(t), h.BeginIndex(u)
	return ct >= 0 && bu >= 0 && ct < bu
}

// OpCall is one completed operation: [op, v] with its object.
type OpCall struct {
	Obj string
	Op  string
	Arg any
	Ret any
}

// OpsOf returns the completed operations of transaction t, in history
// order (pairing each invocation with its following response on the same
// object and transaction).
func (h History) OpsOf(t string) []OpCall {
	var out []OpCall
	for i, e := range h {
		if e.Type != InvokeEvent || e.Tx != t {
			continue
		}
		for j := i + 1; j < len(h); j++ {
			r := h[j]
			if r.Type == ResponseEvent && r.Tx == t && r.Obj == e.Obj {
				out = append(out, OpCall{Obj: e.Obj, Op: e.Op, Arg: e.Val, Ret: r.Val})
				break
			}
		}
	}
	return out
}

// Concurrent reports whether transactions t and u overlap in h
// (begin(t) ≺ begin(u) ≺ commit(t), in either orientation).
func (h History) Concurrent(t, u string) bool {
	bt, bu := h.BeginIndex(t), h.BeginIndex(u)
	ct, cu := h.CommitIndex(t), h.CommitIndex(u)
	if bt < 0 || bu < 0 {
		return false
	}
	if ct < 0 {
		ct = len(h)
	}
	if cu < 0 {
		cu = len(h)
	}
	return (bt < bu && bu < ct) || (bu < bt && bt < cu)
}

// Pmin computes the minimal protected set of committed transaction t
// (§II-A): the elements acquired by t's process between begin(t) and
// commit(t) whose matching release falls after commit(t). The returned
// set maps object names to true.
func (h History) Pmin(t string) map[string]bool {
	out := map[string]bool{}
	p := h.ProcOf(t)
	bt, ct := h.BeginIndex(t), h.CommitIndex(t)
	if p == "" || bt < 0 || ct < 0 {
		return out
	}
	for i := bt + 1; i < ct; i++ {
		e := h[i]
		if e.Type != AcquireEvent || e.Proc != p {
			continue
		}
		// Find the matching release: the next release of the same element
		// by the same process.
		released := -1
		for j := i + 1; j < len(h); j++ {
			r := h[j]
			if r.Type == ReleaseEvent && r.Proc == p && r.Obj == e.Obj {
				released = j
				break
			}
		}
		if released == -1 || released > ct {
			out[e.Obj] = true
		}
	}
	return out
}

// Ker returns ker(t): the objects whose protection elements are in
// Pmin(t).
func (h History) Ker(t string) map[string]bool { return h.Pmin(t) }
