package history

// Builder assembles histories in a notation close to the paper's, keeping
// track of which process executes each transaction so events need not
// repeat it.
//
//	h := history.NewBuilder().
//		Begin("t1", "p1").
//		Acq("t1", "x").
//		Op("t1", "x", "write", 2, "ok").
//		Commit("t1").
//		Rel("p1", "x").
//		History()
type Builder struct {
	h      History
	procOf map[string]string
}

// NewBuilder returns an empty history builder.
func NewBuilder() *Builder {
	return &Builder{procOf: map[string]string{}}
}

// Begin appends <begin(t), p>.
func (b *Builder) Begin(tx, proc string) *Builder {
	b.procOf[tx] = proc
	b.h = append(b.h, Event{Type: BeginEvent, Proc: proc, Tx: tx})
	return b
}

// Commit appends <commit(t), p> using t's registered process.
func (b *Builder) Commit(tx string) *Builder {
	b.h = append(b.h, Event{Type: CommitEvent, Proc: b.procOf[tx], Tx: tx})
	return b
}

// Abort appends <abort(t), p>.
func (b *Builder) Abort(tx string) *Builder {
	b.h = append(b.h, Event{Type: AbortEvent, Proc: b.procOf[tx], Tx: tx})
	return b
}

// Invoke appends <op(arg), o, t>.
func (b *Builder) Invoke(tx, obj, op string, arg any) *Builder {
	b.h = append(b.h, Event{Type: InvokeEvent, Proc: b.procOf[tx], Tx: tx, Obj: obj, Op: op, Val: arg})
	return b
}

// Resp appends <v, o, t>.
func (b *Builder) Resp(tx, obj, op string, ret any) *Builder {
	b.h = append(b.h, Event{Type: ResponseEvent, Proc: b.procOf[tx], Tx: tx, Obj: obj, Op: op, Val: ret})
	return b
}

// Op appends an adjacent invocation/response pair.
func (b *Builder) Op(tx, obj, op string, arg, ret any) *Builder {
	return b.Invoke(tx, obj, op, arg).Resp(tx, obj, op, ret)
}

// Acq appends <a(l(o)), p> on behalf of tx.
func (b *Builder) Acq(tx, obj string) *Builder {
	b.h = append(b.h, Event{Type: AcquireEvent, Proc: b.procOf[tx], Tx: tx, Obj: obj})
	return b
}

// Rel appends <r(l(o)), p>; proc is explicit because releases may occur
// after the acquiring transaction committed (outheritance) or be issued
// by the process on behalf of a composition.
func (b *Builder) Rel(proc, obj string) *Builder {
	b.h = append(b.h, Event{Type: ReleaseEvent, Proc: proc, Obj: obj})
	return b
}

// RelTx appends <r(l(o)), p> attributed to tx (purely informative).
func (b *Builder) RelTx(tx, obj string) *Builder {
	b.h = append(b.h, Event{Type: ReleaseEvent, Proc: b.procOf[tx], Tx: tx, Obj: obj})
	return b
}

// History returns the built history.
func (b *Builder) History() History { return b.h }
