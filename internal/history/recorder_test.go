package history

import (
	"testing"

	"oestm/internal/mvar"
	"oestm/internal/stm"
)

// drive feeds the recorder directly (no engine) to unit-test its
// translation rules.
func TestRecorderLabelsAndGeneratedNames(t *testing.T) {
	r := NewRecorder()
	a, b := mvar.New(0), mvar.New(0)
	r.Label(a, "x")
	r.TxBegin(1, 1, 0, stm.Regular)
	r.Acquire(1, 1, a.Word())
	r.Acquire(1, 1, b.Word()) // unlabelled: becomes v1
	r.Op(1, 1, a.Word(), "read", 5)
	r.TxCommit(1, 1)
	r.Release(1, 1, a.Word())
	r.Release(1, 1, b.Word())
	h := r.History()
	if got := h.Objects(); len(got) != 2 || got[0] != "x" || got[1] != "v1" {
		t.Fatalf("objects = %v", got)
	}
}

func TestRecorderHoldCounting(t *testing.T) {
	r := NewRecorder()
	v := mvar.New(0)
	r.TxBegin(1, 1, 0, stm.Regular)
	r.Acquire(1, 1, v.Word())
	r.Acquire(1, 1, v.Word()) // re-acquire: no event
	r.Release(1, 1, v.Word()) // count 2 -> 1: no event
	r.Release(1, 1, v.Word()) // count 1 -> 0: event
	r.Release(1, 1, v.Word()) // spurious: ignored
	r.TxCommit(1, 1)
	h := r.Raw()
	acq, rel := 0, 0
	for _, e := range h {
		switch e.Type {
		case AcquireEvent:
			acq++
		case ReleaseEvent:
			rel++
		}
	}
	if acq != 1 || rel != 1 {
		t.Fatalf("acquires=%d releases=%d, want 1/1", acq, rel)
	}
}

func TestRecorderHoldsPerProcess(t *testing.T) {
	r := NewRecorder()
	v := mvar.New(0)
	r.Acquire(1, 1, v.Word())
	r.Acquire(2, 2, v.Word()) // different process: its own section event
	h := r.Raw()
	if len(h) != 2 {
		t.Fatalf("events = %d, want 2 (independent per-process holds)", len(h))
	}
}

func TestRecorderOpEvents(t *testing.T) {
	r := NewRecorder()
	v := mvar.New(0)
	r.Label(v, "x")
	r.TxBegin(3, 9, 0, stm.Elastic)
	r.Acquire(3, 9, v.Word())
	r.Op(3, 9, v.Word(), "read", 7)
	r.Op(3, 9, v.Word(), "write", 8)
	r.Op(3, 9, v.Word(), "cas", true)
	r.TxCommit(3, 9)
	r.Release(3, 9, v.Word())
	h := r.History()
	ops := h.OpsOf("t9")
	if len(ops) != 3 {
		t.Fatalf("ops = %d, want 3", len(ops))
	}
	if ops[0].Op != "read" || ops[0].Ret != 7 {
		t.Fatalf("read op = %+v", ops[0])
	}
	if ops[1].Op != "write" || ops[1].Arg != 8 || ops[1].Ret != "ok" {
		t.Fatalf("write op = %+v", ops[1])
	}
	if ops[2].Op != "cas" || ops[2].Ret != true {
		t.Fatalf("generic op = %+v", ops[2])
	}
	if h.ProcOf("t9") != "p3" {
		t.Fatalf("proc = %q", h.ProcOf("t9"))
	}
}

func TestRecorderElidesParentsAndDropsDead(t *testing.T) {
	r := NewRecorder()
	v := mvar.New(0)
	// Parent t1 with children t2, t3 — committed nest.
	r.TxBegin(1, 1, 0, stm.Elastic)
	r.TxBegin(1, 2, 1, stm.Elastic)
	r.Acquire(1, 2, v.Word())
	r.Op(1, 2, v.Word(), "read", 0)
	r.TxCommit(1, 2)
	r.TxBegin(1, 3, 1, stm.Elastic)
	r.Op(1, 3, v.Word(), "write", 1)
	r.TxCommit(1, 3)
	r.TxCommit(1, 1)
	r.Release(1, 1, v.Word())
	// Aborted parent t4 with committed child t5: both must vanish.
	r.TxBegin(1, 4, 0, stm.Elastic)
	r.TxBegin(1, 5, 4, stm.Elastic)
	r.Acquire(1, 5, v.Word())
	r.TxCommit(1, 5)
	r.TxAbort(1, 4)
	r.Release(1, 4, v.Word())

	h := r.History()
	for _, e := range h {
		if e.Tx == "t1" && (e.Type == BeginEvent || e.Type == CommitEvent) {
			t.Fatalf("parent begin/commit not elided: %v", e)
		}
		if e.Tx == "t4" || e.Tx == "t5" {
			t.Fatalf("dead transaction event survived: %v", e)
		}
	}
	comps := r.Compositions()
	if len(comps) != 1 || len(comps[0]) != 2 || comps[0][0] != "t2" || comps[0][1] != "t3" {
		t.Fatalf("compositions = %v", comps)
	}
}

func TestRecorderSingleChildNotComposition(t *testing.T) {
	r := NewRecorder()
	r.TxBegin(1, 1, 0, stm.Elastic)
	r.TxBegin(1, 2, 1, stm.Elastic)
	r.TxCommit(1, 2)
	r.TxCommit(1, 1)
	if comps := r.Compositions(); len(comps) != 0 {
		t.Fatalf("|C| >= 2 required, got %v", comps)
	}
}

func TestRecorderAbortedChildExcludedFromComposition(t *testing.T) {
	r := NewRecorder()
	r.TxBegin(1, 1, 0, stm.Elastic)
	r.TxBegin(1, 2, 1, stm.Elastic)
	r.TxCommit(1, 2)
	r.TxBegin(1, 3, 1, stm.Elastic)
	r.TxAbort(1, 3) // aborted child
	r.TxBegin(1, 4, 1, stm.Elastic)
	r.TxCommit(1, 4)
	r.TxCommit(1, 1)
	comps := r.Compositions()
	if len(comps) != 1 {
		t.Fatalf("compositions = %v", comps)
	}
	if got := comps[0]; len(got) != 2 || got[0] != "t2" || got[1] != "t4" {
		t.Fatalf("composition = %v, want [t2 t4]", got)
	}
}

func TestRecorderRawKeepsEverything(t *testing.T) {
	r := NewRecorder()
	r.TxBegin(1, 1, 0, stm.Regular)
	r.TxAbort(1, 1)
	if len(r.Raw()) != 2 {
		t.Fatalf("raw events = %d, want 2", len(r.Raw()))
	}
	if len(r.History()) != 0 {
		t.Fatalf("history must drop the aborted transaction")
	}
}
