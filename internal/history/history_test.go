package history

import (
	"strings"
	"testing"
)

// sample builds a small two-process history with protection elements.
func sample() History {
	return NewBuilder().
		Begin("t1", "p1").
		Acq("t1", "x").
		Op("t1", "x", "write", 5, "ok").
		Commit("t1").
		RelTx("t1", "x").
		Begin("t2", "p2").
		Acq("t2", "x").
		Op("t2", "x", "read", nil, 5).
		Commit("t2").
		RelTx("t2", "x").
		History()
}

func TestBuilderShape(t *testing.T) {
	h := sample()
	if len(h) != 12 {
		t.Fatalf("events = %d, want 12", len(h))
	}
	if got := h.Procs(); len(got) != 2 || got[0] != "p1" || got[1] != "p2" {
		t.Fatalf("procs = %v", got)
	}
	if got := h.Objects(); len(got) != 1 || got[0] != "x" {
		t.Fatalf("objects = %v", got)
	}
	if got := h.Transactions(); len(got) != 2 {
		t.Fatalf("transactions = %v", got)
	}
}

func TestSubsequences(t *testing.T) {
	h := sample()
	if got := h.ByProc("p1"); len(got) != 6 {
		t.Fatalf("H|p1 = %d events", len(got))
	}
	if got := h.ByObj("x"); len(got) != 4 {
		t.Fatalf("H|x = %d events (want invoke+response pairs)", len(got))
	}
	if got := h.ByElement("x"); len(got) != 4 {
		t.Fatalf("H|l(x) = %d events", len(got))
	}
}

func TestCommittedAbortedLive(t *testing.T) {
	h := NewBuilder().
		Begin("t1", "p1").Commit("t1").
		Begin("t2", "p1").Abort("t2").
		Begin("t3", "p1").
		History()
	if !h.Committed()["t1"] || h.Committed()["t2"] {
		t.Fatal("committed set wrong")
	}
	if !h.Aborted()["t2"] {
		t.Fatal("aborted set wrong")
	}
	if !h.Live()["t3"] || h.Live()["t1"] {
		t.Fatal("live set wrong")
	}
	clean := h.RemoveAborted()
	for _, e := range clean {
		if e.Tx == "t2" {
			t.Fatal("aborted events not removed")
		}
	}
}

func TestPrecedes(t *testing.T) {
	h := sample()
	if !h.Precedes("t1", "t2") {
		t.Fatal("t1 <H t2 must hold")
	}
	if h.Precedes("t2", "t1") {
		t.Fatal("t2 <H t1 must not hold")
	}
}

func TestConcurrent(t *testing.T) {
	h := NewBuilder().
		Begin("t1", "p1").
		Begin("t2", "p2").
		Commit("t1").
		Commit("t2").
		History()
	if !h.Concurrent("t1", "t2") || !h.Concurrent("t2", "t1") {
		t.Fatal("overlapping transactions must be concurrent")
	}
	if !sampleNotConcurrent() {
		t.Fatal("sequential transactions must not be concurrent")
	}
}

func sampleNotConcurrent() bool {
	h := sample()
	return !h.Concurrent("t1", "t2")
}

func TestOpsOf(t *testing.T) {
	h := sample()
	ops := h.OpsOf("t1")
	if len(ops) != 1 || ops[0].Op != "write" || ops[0].Arg != 5 || ops[0].Ret != "ok" {
		t.Fatalf("ops of t1 = %+v", ops)
	}
}

func TestPmin(t *testing.T) {
	// t1 holds x beyond its commit (outheritance); t2 releases before its
	// commit-following release... t2's release is after commit, so x is
	// in Pmin(t2) as well; build a variant with an early release.
	h := NewBuilder().
		Begin("t1", "p1").
		Acq("t1", "x").
		Op("t1", "x", "write", 1, "ok").
		Acq("t1", "y").
		Op("t1", "y", "read", nil, 0).
		RelTx("t1", "y"). // released before commit: not in Pmin
		Commit("t1").
		RelTx("t1", "x"). // released after commit: in Pmin
		History()
	pmin := h.Pmin("t1")
	if !pmin["x"] || pmin["y"] {
		t.Fatalf("Pmin = %v, want {x}", pmin)
	}
	if ker := h.Ker("t1"); !ker["x"] || len(ker) != 1 {
		t.Fatalf("ker = %v", ker)
	}
}

func TestPminUnreleasedElement(t *testing.T) {
	// An element never released still belongs to Pmin.
	h := NewBuilder().
		Begin("t1", "p1").
		Acq("t1", "x").
		Op("t1", "x", "write", 1, "ok").
		Commit("t1").
		History()
	if !h.Pmin("t1")["x"] {
		t.Fatal("unreleased element must be in Pmin")
	}
}

func TestStringRendering(t *testing.T) {
	h := sample()
	s := h.String()
	for _, want := range []string{"<begin(t1),p1>", "<a(l(x)),p1>", "<commit(t2),p2>", "<r(l(x)),p2>"} {
		if !strings.Contains(s, want) {
			t.Fatalf("rendering missing %q in:\n%s", want, s)
		}
	}
	for _, tt := range []struct {
		et   EventType
		want string
	}{
		{BeginEvent, "begin"}, {InvokeEvent, "inv"}, {ResponseEvent, "resp"},
		{CommitEvent, "commit"}, {AbortEvent, "abort"}, {AcquireEvent, "acq"}, {ReleaseEvent, "rel"},
	} {
		if tt.et.String() != tt.want {
			t.Fatalf("EventType(%d) = %q", tt.et, tt.et.String())
		}
	}
}

func TestRegisterSpec(t *testing.T) {
	sim := RegisterSpec{Init: 0}.New()
	if !sim.Apply("read", nil, 0) {
		t.Fatal("initial read of 0 must be legal")
	}
	if !sim.Apply("write", 7, "ok") || !sim.Apply("read", nil, 7) {
		t.Fatal("write/read sequence must be legal")
	}
	if sim.Apply("read", nil, 3) {
		t.Fatal("stale read must be illegal")
	}
	if sim.Apply("bogus", nil, nil) {
		t.Fatal("unknown op must be illegal")
	}
	cl := sim.Clone()
	if cl.Key() != sim.Key() {
		t.Fatal("clone must preserve state key")
	}
}

func TestCounterSpec(t *testing.T) {
	sim := CounterSpec{}.New()
	if !sim.Apply("inc", nil, 1) || !sim.Apply("inc", nil, 2) {
		t.Fatal("inc sequence must be legal")
	}
	if sim.Apply("inc", nil, 5) {
		t.Fatal("skipping counter values must be illegal")
	}
	if !sim.Apply("read", nil, 3) {
		t.Fatal("read after the illegal attempt consumed an inc") // inc to 3 happened
	}
}

func TestCounterSpecRejectsWrongRead(t *testing.T) {
	sim := CounterSpec{}.New()
	sim.Apply("inc", nil, 1)
	if sim.Apply("read", nil, 9) {
		t.Fatal("wrong counter read must be illegal")
	}
}

func TestSetSpec(t *testing.T) {
	sim := SetSpec{Init: []int{3}}.New()
	if !sim.Apply("contains", 3, true) || !sim.Apply("contains", 4, false) {
		t.Fatal("seeded membership wrong")
	}
	if !sim.Apply("add", 4, true) || !sim.Apply("add", 4, false) {
		t.Fatal("add semantics wrong")
	}
	if !sim.Apply("remove", 3, true) || !sim.Apply("remove", 3, false) {
		t.Fatal("remove semantics wrong")
	}
	if sim.Apply("add", "not-an-int", true) {
		t.Fatal("non-int key must be illegal")
	}
	cl := sim.Clone()
	if cl.Key() != sim.Key() {
		t.Fatal("clone key mismatch")
	}
	cl.Apply("add", 9, true)
	if cl.Key() == sim.Key() {
		t.Fatal("clone must be independent")
	}
}

func TestTriviallyCommutative(t *testing.T) {
	// Counter incs with fixed return values do not commute.
	w1 := []OpCall{{Obj: "c", Op: "inc", Ret: 2}}
	w2 := []OpCall{{Obj: "c", Op: "inc", Ret: 3}}
	prefix := []OpCall{{Obj: "c", Op: "inc", Ret: 1}}
	if TriviallyCommutative(CounterSpec{}, prefix, w1, w2) {
		t.Fatal("value-returning incs must not commute")
	}
	// Two contains calls commute.
	r1 := []OpCall{{Obj: "s", Op: "contains", Arg: 1, Ret: false}}
	r2 := []OpCall{{Obj: "s", Op: "contains", Arg: 2, Ret: false}}
	if !TriviallyCommutative(SetSpec{}, nil, r1, r2) {
		t.Fatal("reads must commute")
	}
}
