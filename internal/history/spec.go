package history

import "fmt"

// Spec is the serial specification o.seq of an object (§II), rendered as
// a state-machine factory: a sequence of [op, v] pairs is acceptable iff
// the machine accepts each pair in turn.
type Spec interface {
	// New returns a fresh simulator in the object's initial state.
	New() Sim
}

// Sim is a serial-specification state machine.
type Sim interface {
	// Apply transitions on one completed operation, reporting whether the
	// (op, arg, ret) triple is acceptable in the current state.
	Apply(op string, arg, ret any) bool
	// Clone returns an independent copy (for search backtracking).
	Clone() Sim
	// Key returns a canonical encoding of the state (for memoisation).
	Key() string
}

// ---------------------------------------------------------------------
// Register: read/write register, the model of a memory location.

// RegisterSpec specifies a read/write register with the given initial
// value. Operations: "write" (arg = new value, ret ignored), "read"
// (ret = current value).
type RegisterSpec struct{ Init any }

// New implements Spec.
func (s RegisterSpec) New() Sim { return &registerSim{val: s.Init} }

type registerSim struct{ val any }

func (r *registerSim) Apply(op string, arg, ret any) bool {
	switch op {
	case "write":
		r.val = arg
		return true
	case "read":
		return ret == r.val
	default:
		return false
	}
}

func (r *registerSim) Clone() Sim  { return &registerSim{val: r.val} }
func (r *registerSim) Key() string { return fmt.Sprintf("reg(%v)", r.val) }

// ---------------------------------------------------------------------
// Counter: the object of the paper's Fig. 3.

// CounterSpec specifies a counter starting at 0. Operations: "inc"
// (ret = new value), "read" (ret = current value).
type CounterSpec struct{}

// New implements Spec.
func (CounterSpec) New() Sim { return &counterSim{} }

type counterSim struct{ n int }

func (c *counterSim) Apply(op string, arg, ret any) bool {
	switch op {
	case "inc":
		c.n++
		return ret == c.n
	case "read":
		return ret == c.n
	default:
		return false
	}
}

func (c *counterSim) Clone() Sim  { return &counterSim{n: c.n} }
func (c *counterSim) Key() string { return fmt.Sprintf("ctr(%d)", c.n) }

// ---------------------------------------------------------------------
// Set: the abstraction of §VI.

// SetSpec specifies an integer set, initially empty (or seeded with
// Init). Operations: "add"/"remove" (arg = key, ret = changed bool),
// "contains" (arg = key, ret = bool).
type SetSpec struct{ Init []int }

// New implements Spec.
func (s SetSpec) New() Sim {
	sim := &setSim{els: map[int]bool{}}
	for _, k := range s.Init {
		sim.els[k] = true
	}
	return sim
}

type setSim struct{ els map[int]bool }

func (s *setSim) Apply(op string, arg, ret any) bool {
	k, ok := arg.(int)
	if !ok {
		return false
	}
	switch op {
	case "add":
		changed := !s.els[k]
		s.els[k] = true
		return ret == changed
	case "remove":
		changed := s.els[k]
		delete(s.els, k)
		return ret == changed
	case "contains":
		return ret == s.els[k]
	default:
		return false
	}
}

func (s *setSim) Clone() Sim {
	cp := &setSim{els: make(map[int]bool, len(s.els))}
	for k, v := range s.els {
		cp.els[k] = v
	}
	return cp
}

func (s *setSim) Key() string {
	// Small sets only; canonical order by probing ascending keys.
	out := "set("
	for k := -64; k <= 64; k++ {
		if s.els[k] {
			out += fmt.Sprintf("%d,", k)
		}
	}
	return out + ")"
}

// TriviallyCommutative reports whether a sequence extension pair always
// commutes after prefix: ω·ω′·ω″ ∈ o.seq iff ω·ω″·ω′ ∈ o.seq (§II's
// non-triviality condition), checked for one concrete (ω′, ω″) pair.
func TriviallyCommutative(spec Spec, prefix, w1, w2 []OpCall) bool {
	ok12 := acceptsSeq(spec, prefix, w1, w2)
	ok21 := acceptsSeq(spec, prefix, w2, w1)
	return ok12 == ok21
}

func acceptsSeq(spec Spec, seqs ...[]OpCall) bool {
	sim := spec.New()
	for _, seq := range seqs {
		for _, c := range seq {
			if !sim.Apply(c.Op, c.Arg, c.Ret) {
				return false
			}
		}
	}
	return true
}
