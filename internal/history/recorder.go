package history

import (
	"fmt"
	"sync"

	"oestm/internal/mvar"
	"oestm/internal/stm"
)

// Recorder converts an instrumented engine execution into a History. It
// implements stm.Tracer; install it with the engine's SetTracer before
// running transactions.
//
// Mapping conventions:
//   - Each transactional memory word is an object; Label gives it a name,
//     otherwise one is generated ("v1", "v2", ... in order of first
//     appearance).
//   - Each thread is a process ("p<ID>").
//   - Each transaction is "t<N>" by engine-assigned id.
//   - Nested executions: the children of a parent transaction are
//     recorded as ordinary transactions; the parent's own begin/commit
//     events are elided so that H|p remains a sequence of transactions
//     (the model has no nesting). The composition C is the ordered list
//     of children; Sup(C) is the last child. Releases performed at the
//     parent's commit are therefore positioned after commit(Sup(C)),
//     which is exactly what Definition 4.1 requires.
//
// Recording serialises all events through one mutex; it is meant for
// correctness checking on small runs, not for benchmarking.
type Recorder struct {
	mu       sync.Mutex
	events   History
	labels   map[*mvar.Word]string
	nextVar  int
	parents  map[uint64]uint64   // child tx id -> parent tx id
	children map[uint64][]uint64 // parent tx id -> ordered children
	nested   map[uint64]bool     // tx ids that are parents of >=1 child
	held     map[string]map[string]int
}

var _ stm.Tracer = (*Recorder)(nil)

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{
		labels:   map[*mvar.Word]string{},
		parents:  map[uint64]uint64{},
		children: map[uint64][]uint64{},
		nested:   map[uint64]bool{},
		held:     map[string]map[string]int{},
	}
}

// Label names a transactional variable (any typed view over a memory
// word) so histories read like the paper's examples. Must be called
// before the variable first appears in an event.
func (r *Recorder) Label(v mvar.Worder, name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.labels[v.Word()] = name
}

func (r *Recorder) nameOf(w *mvar.Word) string {
	if n, ok := r.labels[w]; ok {
		return n
	}
	r.nextVar++
	n := fmt.Sprintf("v%d", r.nextVar)
	r.labels[w] = n
	return n
}

func txName(id uint64) string { return fmt.Sprintf("t%d", id) }
func procName(id int) string  { return fmt.Sprintf("p%d", id) }

// TxBegin implements stm.Tracer.
func (r *Recorder) TxBegin(proc int, tx uint64, parent uint64, _ stm.Kind) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if parent != 0 {
		r.parents[tx] = parent
		r.children[parent] = append(r.children[parent], tx)
		r.nested[parent] = true
	}
	r.events = append(r.events, Event{Type: BeginEvent, Proc: procName(proc), Tx: txName(tx)})
}

// TxCommit implements stm.Tracer.
func (r *Recorder) TxCommit(proc int, tx uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.events = append(r.events, Event{Type: CommitEvent, Proc: procName(proc), Tx: txName(tx)})
}

// TxAbort implements stm.Tracer.
func (r *Recorder) TxAbort(proc int, tx uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.events = append(r.events, Event{Type: AbortEvent, Proc: procName(proc), Tx: txName(tx)})
}

// Acquire implements stm.Tracer. The engine re-acquires an element each
// time it records a read of the same location; the model has a single
// acquire/release section per hold, so the recorder keeps a hold count
// per (process, element) and emits only the transitions 0→1 (acquire)
// and 1→0 (release).
func (r *Recorder) Acquire(proc int, tx uint64, v *mvar.Word) {
	r.mu.Lock()
	defer r.mu.Unlock()
	p, obj := procName(proc), r.nameOf(v)
	if r.held[p] == nil {
		r.held[p] = map[string]int{}
	}
	r.held[p][obj]++
	if r.held[p][obj] == 1 {
		r.events = append(r.events, Event{Type: AcquireEvent, Proc: p, Tx: txName(tx), Obj: obj})
	}
}

// Release implements stm.Tracer; see Acquire for the hold-count rule.
func (r *Recorder) Release(proc int, tx uint64, v *mvar.Word) {
	r.mu.Lock()
	defer r.mu.Unlock()
	p, obj := procName(proc), r.nameOf(v)
	if r.held[p] == nil || r.held[p][obj] == 0 {
		return // spurious release; nothing held at model level
	}
	r.held[p][obj]--
	if r.held[p][obj] == 0 {
		r.events = append(r.events, Event{Type: ReleaseEvent, Proc: p, Tx: txName(tx), Obj: obj})
	}
}

// Op implements stm.Tracer.
func (r *Recorder) Op(proc int, tx uint64, v *mvar.Word, op string, val any) {
	r.mu.Lock()
	defer r.mu.Unlock()
	obj := r.nameOf(v)
	p, t := procName(proc), txName(tx)
	switch op {
	case "read":
		r.events = append(r.events,
			Event{Type: InvokeEvent, Proc: p, Tx: t, Obj: obj, Op: "read"},
			Event{Type: ResponseEvent, Proc: p, Tx: t, Obj: obj, Op: "read", Val: val})
	case "write":
		r.events = append(r.events,
			Event{Type: InvokeEvent, Proc: p, Tx: t, Obj: obj, Op: "write", Val: val},
			Event{Type: ResponseEvent, Proc: p, Tx: t, Obj: obj, Op: "write", Val: "ok"})
	default:
		r.events = append(r.events,
			Event{Type: InvokeEvent, Proc: p, Tx: t, Obj: obj, Op: op, Val: val},
			Event{Type: ResponseEvent, Proc: p, Tx: t, Obj: obj, Op: op, Val: val})
	}
}

// History returns the recorded history with aborted transactions removed
// (as the model prescribes, including the children of aborted parents —
// their effects never reached memory) and the begin/commit events of
// composition parents elided, so that every process's subsequence is a
// flat sequence of transactions.
func (r *Recorder) History() History {
	r.mu.Lock()
	defer r.mu.Unlock()
	// A transaction is dead if it aborted or any ancestor aborted.
	aborted := map[uint64]bool{}
	for _, e := range r.events {
		if e.Type == AbortEvent {
			if id, ok := parseTx(e.Tx); ok {
				aborted[id] = true
			}
		}
	}
	dead := func(id uint64) bool {
		for {
			if aborted[id] {
				return true
			}
			parent, ok := r.parents[id]
			if !ok {
				return false
			}
			id = parent
		}
	}
	var out History
	for _, e := range r.events {
		if e.Tx != "" {
			if id, ok := parseTx(e.Tx); ok {
				if dead(id) {
					continue
				}
				if r.nested[id] && (e.Type == BeginEvent || e.Type == CommitEvent) {
					continue
				}
			}
		}
		out = append(out, e)
	}
	return out
}

// Raw returns the full recorded event sequence, including aborted
// transactions and parent begin/commit events.
func (r *Recorder) Raw() History {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(History, len(r.events))
	copy(out, r.events)
	return out
}

// Compositions returns, for every parent transaction with at least two
// committed children, the ordered list of child transaction names. Per
// Definition 3.x compositions of fewer than two transactions are not
// returned.
func (r *Recorder) Compositions() [][]string {
	r.mu.Lock()
	defer r.mu.Unlock()
	committed := map[uint64]bool{}
	for _, e := range r.events {
		if e.Type == CommitEvent {
			if id, ok := parseTx(e.Tx); ok {
				committed[id] = true
			}
		}
	}
	var out [][]string
	for parent, kids := range r.children {
		if !committed[parent] {
			continue
		}
		var names []string
		for _, k := range kids {
			if committed[k] {
				names = append(names, txName(k))
			}
		}
		if len(names) >= 2 {
			out = append(out, names)
		}
	}
	return out
}

func parseTx(name string) (uint64, bool) {
	var id uint64
	_, err := fmt.Sscanf(name, "t%d", &id)
	return id, err == nil
}
