package server

import (
	"context"
	"encoding/binary"
	"io"
	"math"
	"math/rand/v2"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"oestm/internal/core"
	"oestm/internal/lsa"
	"oestm/internal/stm"
	"oestm/internal/swisstm"
	"oestm/internal/tl2"
	"oestm/internal/wire"
)

// engines is the local engine table (the harness one lives a layer up).
func engines() []struct {
	name string
	newi func() stm.TM
} {
	return []struct {
		name string
		newi func() stm.TM
	}{
		{"oestm", func() stm.TM { return core.New() }},
		{"estm", func() stm.TM { return core.NewWithoutOutheritance() }},
		{"tl2", func() stm.TM { return tl2.New() }},
		{"lsa", func() stm.TM { return lsa.New() }},
		{"swisstm", func() stm.TM { return swisstm.New() }},
	}
}

// startServer spins up a server on a loopback port and returns it with a
// cleanup-registered shutdown.
func startServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	return s
}

func dial(t *testing.T, s *Server) *Client {
	t.Helper()
	c, err := Dial(s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// TestRoundTripEveryEngine exercises the full request surface over a real
// socket on all five engines.
func TestRoundTripEveryEngine(t *testing.T) {
	for _, eng := range engines() {
		t.Run(eng.name, func(t *testing.T) {
			s := startServer(t, Config{Engine: eng.name, NewTM: eng.newi, Shards: 8, CM: "adaptive"})
			c := dial(t, s)

			if err := c.Ping(); err != nil {
				t.Fatal(err)
			}
			if _, ok, err := c.Get(1); err != nil || ok {
				t.Fatalf("empty get = %v ok=%v", err, ok)
			}
			if existed, err := c.Put(1, 100); err != nil || existed {
				t.Fatalf("first put = %v existed=%v", err, existed)
			}
			if v, ok, err := c.Get(1); err != nil || !ok || v != 100 {
				t.Fatalf("get = %d,%v,%v", v, ok, err)
			}
			if err := c.MPut([]int64{2, 3, 1 << 40}, []int64{20, 30, 40}); err != nil {
				t.Fatal(err)
			}
			vals, present, err := c.MGet([]int64{1, 2, 3, 1 << 40, 999})
			if err != nil {
				t.Fatal(err)
			}
			wantVals := []int64{100, 20, 30, 40, 0}
			wantPresent := []bool{true, true, true, true, false}
			for i := range wantVals {
				if present[i] != wantPresent[i] || (present[i] && vals[i] != wantVals[i]) {
					t.Fatalf("mget[%d] = %d,%v want %d,%v", i, vals[i], present[i], wantVals[i], wantPresent[i])
				}
			}
			if moved, err := c.CompareAndMove(1, 999, 100); err != nil || !moved {
				t.Fatalf("cam = %v,%v", moved, err)
			}
			if _, ok, _ := c.Get(1); ok {
				t.Fatal("cam left the source")
			}
			if v, ok, _ := c.Get(999); !ok || v != 100 {
				t.Fatal("cam lost the value")
			}
			if v, removed, err := c.Remove(999); err != nil || !removed || v != 100 {
				t.Fatalf("remove = %d,%v,%v", v, removed, err)
			}

			// Reserved sentinel keys are typed protocol errors.
			_, _, err = c.Get(math.MaxInt64)
			if pe, ok := wire.IsProtocolError(err); !ok || pe.Code != wire.ErrKeyRange {
				t.Fatalf("sentinel key: %v, want ErrKeyRange", err)
			}
			// The connection survives the error.
			if err := c.Ping(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestStatsEndpoint pins the merged telemetry: counts and histograms per
// opcode across connections (live and closed), transaction counters, and
// identity.
func TestStatsEndpoint(t *testing.T) {
	s := startServer(t, Config{Engine: "tl2", NewTM: func() stm.TM { return tl2.New() }, Shards: 4, CM: "passive"})
	c1 := dial(t, s)
	c2, err := Dial(s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	const puts = 20
	for i := 0; i < puts; i++ {
		if _, err := c1.Put(int64(i), int64(i)); err != nil {
			t.Fatal(err)
		}
		if _, _, err := c2.Get(int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	c2.Close() // half the traffic retires with its connection
	var p wire.StatsPayload
	// The close above races the server's retire; poll briefly until the
	// counts settle.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if err := c1.Stats(&p); err != nil {
			t.Fatal(err)
		}
		if p.Ops[wire.OpGet].Count == puts || time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if p.Engine != "tl2" || p.CM != "passive" || p.Shards != 4 {
		t.Fatalf("identity: %+v", p)
	}
	if p.Ops[wire.OpPut].Count != puts || p.Ops[wire.OpGet].Count != puts {
		t.Fatalf("op counts: put=%d get=%d want %d", p.Ops[wire.OpPut].Count, p.Ops[wire.OpGet].Count, puts)
	}
	if p.Ops[wire.OpPut].Hist.Count() != puts {
		t.Fatalf("put histogram count = %d", p.Ops[wire.OpPut].Hist.Count())
	}
	if p.Ops[wire.OpPut].Hist.Quantile(0.5) <= 0 {
		t.Fatal("put latency histogram empty")
	}
	if p.Commits < 2*puts {
		t.Fatalf("commits = %d, want >= %d", p.Commits, 2*puts)
	}
	var causeSum uint64
	for _, n := range p.AbortsByCause {
		causeSum += n
	}
	if causeSum != p.Aborts {
		t.Fatalf("aborts by cause sum %d != aborts %d", causeSum, p.Aborts)
	}
}

// TestPipelining sends a burst of raw frames without reading, then
// expects every response, in order — the protocol's pipelining contract.
func TestPipelining(t *testing.T) {
	s := startServer(t, Config{Engine: "oestm", NewTM: func() stm.TM { return core.New() }})
	nc, err := net.Dial("tcp", s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()

	const n = 50
	var batch []byte
	var body []byte
	for i := 0; i < n; i++ {
		r := wire.Request{Op: wire.OpPut, Key: int64(i), Val: int64(i * 2)}
		body = wire.AppendRequest(body[:0], &r)
		var hdr [4]byte
		binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
		batch = append(batch, hdr[:]...)
		batch = append(batch, body...)
	}
	for i := 0; i < n; i++ {
		r := wire.Request{Op: wire.OpGet, Key: int64(i)}
		body = wire.AppendRequest(body[:0], &r)
		var hdr [4]byte
		binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
		batch = append(batch, hdr[:]...)
		batch = append(batch, body...)
	}
	if _, err := nc.Write(batch); err != nil {
		t.Fatal(err)
	}
	var resp wire.Response
	var buf []byte
	for i := 0; i < n; i++ {
		if buf, err = wire.ReadFrame(nc, buf[:0], 0); err != nil {
			t.Fatalf("put response %d: %v", i, err)
		}
		if err := resp.Decode(wire.OpPut, buf); err != nil {
			t.Fatalf("put response %d: %v", i, err)
		}
	}
	for i := 0; i < n; i++ {
		if buf, err = wire.ReadFrame(nc, buf[:0], 0); err != nil {
			t.Fatalf("get response %d: %v", i, err)
		}
		if err := resp.Decode(wire.OpGet, buf); err != nil {
			t.Fatalf("get response %d: %v", i, err)
		}
		if resp.Status != wire.StatusOK || resp.Val != int64(i*2) {
			t.Fatalf("pipelined get %d out of order: %+v", i, resp)
		}
	}
}

// TestPartialNextFrameDoesNotStallResponse: a buffered header (or
// partial body) of the NEXT request must not suppress the flush of the
// current response — a peer that waits for the response before sending
// the rest would otherwise deadlock against the server's read.
func TestPartialNextFrameDoesNotStallResponse(t *testing.T) {
	s := startServer(t, Config{Engine: "oestm", NewTM: func() stm.TM { return core.New() }})
	nc, err := net.Dial("tcp", s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	var body []byte
	r := wire.Request{Op: wire.OpPing}
	body = wire.AppendRequest(body, &r)
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	// Complete ping + the header of a second frame announcing 10 more
	// bytes that we withhold until the first response arrives.
	var partial [4]byte
	binary.BigEndian.PutUint32(partial[:], 10)
	msg := append(append(append([]byte{}, hdr[:]...), body...), partial[:]...)
	if _, err := nc.Write(msg); err != nil {
		t.Fatal(err)
	}
	nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf, err := wire.ReadFrame(nc, nil, 0)
	if err != nil {
		t.Fatalf("ping response stalled behind a partial next frame: %v", err)
	}
	var resp wire.Response
	if derr := resp.Decode(wire.OpPing, buf); derr != nil || resp.Status != wire.StatusOK {
		t.Fatalf("ping response malformed: %v %+v", derr, resp)
	}
}

// TestOversizedFrameRejected pins the hardening satellite: an announced
// length beyond the limit gets a typed error response and a closed
// connection — not a hang, not a silent drop.
func TestOversizedFrameRejected(t *testing.T) {
	s := startServer(t, Config{Engine: "oestm", NewTM: func() stm.TM { return core.New() }, MaxBody: 1 << 10})
	nc, err := net.Dial("tcp", s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], 1<<20) // body we will never send
	if _, err := nc.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf, err := wire.ReadFrame(nc, nil, 0)
	if err != nil {
		t.Fatalf("expected an error response before close: %v", err)
	}
	var resp wire.Response
	rerr := resp.Decode(wire.OpGet, buf)
	pe, ok := wire.IsProtocolError(rerr)
	if !ok || pe.Code != wire.ErrFrameTooLarge {
		t.Fatalf("got %v, want ErrFrameTooLarge", rerr)
	}
	if _, err := wire.ReadFrame(nc, nil, 0); err != io.EOF {
		t.Fatalf("connection must close after an oversized frame, got %v", err)
	}
}

// TestTruncatedFrameRejected: a stream ending inside a frame gets a typed
// error response on the way down instead of a hung connection.
func TestTruncatedFrameRejected(t *testing.T) {
	s := startServer(t, Config{Engine: "oestm", NewTM: func() stm.TM { return core.New() }})
	nc, err := net.Dial("tcp", s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], 100)
	nc.Write(hdr[:])
	nc.Write([]byte{1, 2, 3}) // 3 of 100 promised bytes
	nc.(*net.TCPConn).CloseWrite()
	nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf, err := wire.ReadFrame(nc, nil, 0)
	if err != nil {
		t.Fatalf("expected an error response: %v", err)
	}
	var resp wire.Response
	rerr := resp.Decode(wire.OpGet, buf)
	if pe, ok := wire.IsProtocolError(rerr); !ok || pe.Code != wire.ErrTruncated {
		t.Fatalf("got %v, want ErrTruncated", rerr)
	}
}

// TestMalformedBodyKeepsConnection: a decodable-length frame with a bad
// body is answered with a typed error and the connection keeps serving.
func TestMalformedBodyKeepsConnection(t *testing.T) {
	s := startServer(t, Config{Engine: "oestm", NewTM: func() stm.TM { return core.New() }})
	nc, err := net.Dial("tcp", s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	for i, raw := range [][]byte{
		{200},                  // unknown opcode
		{byte(wire.OpGet), 1},  // short body
		{byte(wire.OpPing), 9}, // trailing bytes
	} {
		var hdr [4]byte
		binary.BigEndian.PutUint32(hdr[:], uint32(len(raw)))
		nc.Write(hdr[:])
		nc.Write(raw)
		nc.SetReadDeadline(time.Now().Add(5 * time.Second))
		buf, err := wire.ReadFrame(nc, nil, 0)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		var resp wire.Response
		if _, ok := wire.IsProtocolError(resp.Decode(wire.OpGet, buf)); !ok {
			t.Fatalf("case %d: expected a typed error response", i)
		}
	}
	// Still serving.
	c := NewClient(nc)
	if err := c.Ping(); err != nil {
		t.Fatalf("connection died after malformed bodies: %v", err)
	}
}

// TestGracefulDrain: Shutdown completes in-flight pipelined work, closes
// idle connections, and refuses new ones.
func TestGracefulDrain(t *testing.T) {
	s := startServer(t, Config{Engine: "lsa", NewTM: func() stm.TM { return lsa.New() }})
	busy := dial(t, s)
	idle := dial(t, s)
	_ = idle
	for i := 0; i < 10; i++ {
		if _, err := busy.Put(int64(i), 1); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("drain did not complete: %v", err)
	}
	// The drained server refuses new connections.
	if _, err := net.DialTimeout("tcp", s.Addr().String(), time.Second); err == nil {
		// Dial may succeed before the OS notices the closed listener, but
		// the connection must be unusable.
		c2, _ := Dial(s.Addr().String())
		if c2 != nil {
			if err := c2.Ping(); err == nil {
				t.Fatal("server accepted work after drain")
			}
			c2.Close()
		}
	}
}

// TestCrossShardAtomicityOverWire is the satellite checker at the outermost
// layer: concurrent CompareAndMove and MGet clients over real sockets.
// Composing engines must never expose a torn state; the estm ablation and
// unsound mode must (same methodology as internal/store's checker — see
// its comments for the GOMAXPROCS and budget rationale).
func TestCrossShardAtomicityOverWire(t *testing.T) {
	run := func(t *testing.T, engName string, newTM func() stm.TM, unsound bool, dur time.Duration) uint64 {
		t.Helper()
		defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(8))
		s := startServer(t, Config{Engine: engName, NewTM: newTM, Shards: 8, Unsound: unsound, MaxRetries: 500})
		const keys = 64
		const tokenVal = 7
		want := 0
		fill := dial(t, s)
		for k := 0; k < keys; k += 2 {
			if _, err := fill.Put(int64(k), tokenVal); err != nil {
				t.Fatal(err)
			}
			want++
		}
		var stop atomic.Bool
		var violations atomic.Uint64
		var failed atomic.Value
		var wg sync.WaitGroup
		for i := 0; i < 4; i++ {
			wg.Add(1)
			go func(idx int) {
				defer wg.Done()
				cl, err := Dial(s.Addr().String())
				if err != nil {
					failed.Store(err)
					return
				}
				defer cl.Close()
				rng := rand.New(rand.NewPCG(0xbeef, uint64(idx)))
				all := make([]int64, keys)
				for k := range all {
					all[k] = int64(k)
				}
				for !stop.Load() {
					if rng.IntN(100) < 10 {
						vals, present, err := cl.MGet(all)
						if err != nil {
							if pe, ok := wire.IsProtocolError(err); ok && pe.Code == wire.ErrRetryExhausted {
								continue // no consistent observation
							}
							failed.Store(err)
							return
						}
						count := 0
						for k := range all {
							if present[k] {
								count++
								if vals[k] != tokenVal {
									violations.Add(1)
								}
							}
						}
						if count != want {
							violations.Add(1)
						}
						continue
					}
					if _, err := cl.CompareAndMove(int64(rng.IntN(keys)), int64(rng.IntN(keys)), tokenVal); err != nil {
						if pe, ok := wire.IsProtocolError(err); ok && pe.Code == wire.ErrRetryExhausted {
							continue
						}
						failed.Store(err)
						return
					}
				}
			}(i)
		}
		time.Sleep(dur)
		stop.Store(true)
		wg.Wait()
		if err := failed.Load(); err != nil {
			t.Fatalf("worker failed: %v", err)
		}
		// End-state audit on the quiesced store.
		all := make([]int64, keys)
		for k := range all {
			all[k] = int64(k)
		}
		_, present, err := fill.MGet(all)
		if err != nil {
			t.Fatal(err)
		}
		count := 0
		for k := range all {
			if present[k] {
				count++
			}
		}
		if count != want {
			violations.Add(1)
		}
		return violations.Load()
	}

	for _, eng := range engines() {
		if eng.name == "estm" {
			continue
		}
		t.Run(eng.name, func(t *testing.T) {
			if v := run(t, eng.name, eng.newi, false, 150*time.Millisecond); v != 0 {
				t.Errorf("%d torn states observed over the wire on a composing engine", v)
			}
		})
	}
	t.Run("estm-violates", func(t *testing.T) {
		if testing.Short() {
			t.Skip("timing-dependent concurrency test")
		}
		estm := engines()[1]
		for attempt := 0; attempt < 5; attempt++ {
			if v := run(t, "estm", estm.newi, false, time.Duration(100+100*attempt)*time.Millisecond); v > 0 {
				return
			}
		}
		t.Error("estm never tore a CompareAndMove over the wire")
	})
	t.Run("unsound-violates", func(t *testing.T) {
		if testing.Short() {
			t.Skip("timing-dependent concurrency test")
		}
		oestm := engines()[0]
		for attempt := 0; attempt < 5; attempt++ {
			if v := run(t, "oestm", oestm.newi, true, time.Duration(100+100*attempt)*time.Millisecond); v > 0 {
				return
			}
		}
		t.Error("unsound mode never exposed a torn state over the wire")
	})
}

// TestNewValidates pins config validation.
func TestNewValidates(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("missing engine accepted")
	}
	if _, err := New(Config{Engine: "oestm", NewTM: func() stm.TM { return core.New() }, CM: "bogus"}); err == nil {
		t.Fatal("unknown cm accepted")
	}
}

// TestClientBufferReuse pins that the client's slices are reused (the
// load generator's closed loop relies on it staying allocation-light).
func TestClientBufferReuse(t *testing.T) {
	s := startServer(t, Config{Engine: "oestm", NewTM: func() stm.TM { return core.New() }})
	c := dial(t, s)
	keys := []int64{1, 2, 3}
	if err := c.MPut(keys, []int64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	v1, _, err := c.MGet(keys)
	if err != nil {
		t.Fatal(err)
	}
	p1 := &v1[0]
	v2, _, err := c.MGet(keys)
	if err != nil {
		t.Fatal(err)
	}
	if &v2[0] != p1 {
		t.Error("MGet result buffer not reused across calls")
	}
}
