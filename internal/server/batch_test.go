package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/binary"
	"math"
	"math/rand/v2"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"oestm/internal/wire"
)

// rawDial opens a bare framed connection to s for byte-level tests.
func rawDial(t *testing.T, s *Server) (net.Conn, *bufio.Reader) {
	t.Helper()
	nc, err := net.Dial("tcp", s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { nc.Close() })
	return nc, bufio.NewReader(nc)
}

// sendBurst writes bodies as one pipelined burst of frames and returns
// the response bodies, copied.
func sendBurst(t *testing.T, nc net.Conn, br *bufio.Reader, bodies [][]byte) [][]byte {
	t.Helper()
	var out []byte
	for _, b := range bodies {
		var hdr [wire.HeaderSize]byte
		binary.BigEndian.PutUint32(hdr[:], uint32(len(b)))
		out = append(out, hdr[:]...)
		out = append(out, b...)
	}
	if _, err := nc.Write(out); err != nil {
		t.Fatal(err)
	}
	resps := make([][]byte, len(bodies))
	var buf []byte
	for i := range bodies {
		body, err := wire.ReadFrame(br, buf[:0], 0)
		buf = body[:cap(body)]
		if err != nil {
			t.Fatalf("response %d/%d: %v", i, len(bodies), err)
		}
		resps[i] = append([]byte(nil), body...)
	}
	return resps
}

// randomBody draws one request body: the full op surface, including
// reserved-key errors, from==to moves, and undecodable frames — every
// path both execution models must answer identically.
func randomBody(rng *rand.Rand, keys int64) []byte {
	key := func() int64 { return rng.Int64N(keys) }
	val := func() int64 { return rng.Int64N(100) }
	var r wire.Request
	switch n := rng.IntN(100); {
	case n < 22:
		r = wire.Request{Op: wire.OpGet, Key: key()}
	case n < 44:
		r = wire.Request{Op: wire.OpPut, Key: key(), Val: val()}
	case n < 54:
		r = wire.Request{Op: wire.OpRemove, Key: key()}
	case n < 64:
		r.Op = wire.OpMGet
		for i := rng.IntN(6) + 1; i > 0; i-- {
			r.Keys = append(r.Keys, key())
		}
	case n < 74:
		r.Op = wire.OpMPut
		for i := rng.IntN(6) + 1; i > 0; i-- {
			r.Keys = append(r.Keys, key())
			r.Vals = append(r.Vals, val())
		}
	case n < 90:
		r = wire.Request{Op: wire.OpCompareAndMove, Key: key(), To: key(), Val: val()}
	case n < 93:
		r = wire.Request{Op: wire.OpPing}
	case n < 96:
		// Reserved key: a typed key-range error either way.
		r = wire.Request{Op: wire.OpPut, Key: math.MinInt64, Val: val()}
	default:
		// Undecodable: unknown opcode. Framing stays intact, both modes
		// answer the typed decode error and keep serving.
		return []byte{0xee, 1, 2, 3}
	}
	return wire.AppendRequest(nil, &r)
}

// TestBatchEquivalenceEveryEngine pins the tentpole contract: for every
// engine, a batch-mode server answers seeded pipelined bursts with
// byte-identical responses to a conn-mode server given the same request
// stream, and both end in the same store state. Conflict pressure is
// real — a tiny key universe keeps transactions colliding so the
// speculative path validates and re-executes rather than trivially
// passing. Runs under -race in CI with the pool oversubscribed.
func TestBatchEquivalenceEveryEngine(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(8))
	const keys = 24
	for _, eng := range engines() {
		t.Run(eng.name, func(t *testing.T) {
			serial := startServer(t, Config{Engine: eng.name, NewTM: eng.newi, Shards: 8})
			batch := startServer(t, Config{Engine: eng.name, NewTM: eng.newi, Shards: 8, Exec: ExecBatch, BatchWorkers: 4})
			ncS, brS := rawDial(t, serial)
			ncB, brB := rawDial(t, batch)

			rng := rand.New(rand.NewPCG(0x57ec, uint64(len(eng.name))))
			for burst := 0; burst < 25; burst++ {
				n := rng.IntN(40) + 1
				bodies := make([][]byte, n)
				for i := range bodies {
					bodies[i] = randomBody(rng, keys)
				}
				rs := sendBurst(t, ncS, brS, bodies)
				rb := sendBurst(t, ncB, brB, bodies)
				for i := range rs {
					if !bytes.Equal(rs[i], rb[i]) {
						t.Fatalf("burst %d response %d diverges:\nconn:  %x\nbatch: %x\nrequest: %x",
							burst, i, rs[i], rb[i], bodies[i])
					}
				}
			}

			// End-state audit: one MGet snapshot over the universe.
			all := make([]int64, keys)
			for k := range all {
				all[k] = int64(k)
			}
			req := wire.AppendRequest(nil, &wire.Request{Op: wire.OpMGet, Keys: all})
			es := sendBurst(t, ncS, brS, [][]byte{req})
			eb := sendBurst(t, ncB, brB, [][]byte{req})
			if !bytes.Equal(es[0], eb[0]) {
				t.Fatalf("end states diverge:\nconn:  %x\nbatch: %x", es[0], eb[0])
			}
		})
	}
}

// TestBatchCrossShardConservation drives concurrent pipelined
// CompareAndMove traffic against a batch-mode server and audits token
// conservation through MGet snapshots, for every engine — including
// estm: in batch mode the executor itself serializes cross-shard
// composition (reads see only committed batch boundaries or complete
// published write sets), so even the engine without composition support
// cannot tear a move. Conn mode's estm-violates test shows the same
// engine tearing when the engine is the only guard.
func TestBatchCrossShardConservation(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(8))
	const keys = 64
	const tokenVal = 7
	for _, eng := range engines() {
		t.Run(eng.name, func(t *testing.T) {
			s := startServer(t, Config{Engine: eng.name, NewTM: eng.newi, Shards: 8, Exec: ExecBatch, BatchWorkers: 4})
			want := 0
			fill := dial(t, s)
			for k := 0; k < keys; k += 2 {
				if _, err := fill.Put(int64(k), tokenVal); err != nil {
					t.Fatal(err)
				}
				want++
			}
			all := make([]int64, keys)
			for k := range all {
				all[k] = int64(k)
			}
			var stop atomic.Bool
			var violations atomic.Uint64
			var failed atomic.Value
			var wg sync.WaitGroup
			for i := 0; i < 4; i++ {
				wg.Add(1)
				go func(idx int) {
					defer wg.Done()
					cl, err := Dial(s.Addr().String())
					if err != nil {
						failed.Store(err)
						return
					}
					defer cl.Close()
					rng := rand.New(rand.NewPCG(0xbeef, uint64(idx)))
					const depth = 8
					reqs := make([]wire.Request, depth)
					resps := make([]wire.Response, depth)
					for !stop.Load() {
						for j := range reqs {
							q := &reqs[j]
							q.Keys, q.Vals = q.Keys[:0], q.Vals[:0]
							if rng.IntN(100) < 10 {
								q.Op = wire.OpMGet
								q.Keys = append(q.Keys, all...)
							} else {
								q.Op = wire.OpCompareAndMove
								q.Key = int64(rng.IntN(keys))
								q.To = int64(rng.IntN(keys))
								q.Val = tokenVal
							}
						}
						if err := cl.Pipeline(reqs, resps); err != nil {
							failed.Store(err)
							return
						}
						for j := range resps {
							if reqs[j].Op != wire.OpMGet || resps[j].Status != wire.StatusOK {
								continue
							}
							count := 0
							for k := range all {
								if resps[j].Present[k] {
									count++
									if resps[j].Vals[k] != tokenVal {
										violations.Add(1)
									}
								}
							}
							if count != want {
								violations.Add(1)
							}
						}
					}
				}(i)
			}
			time.Sleep(150 * time.Millisecond)
			stop.Store(true)
			wg.Wait()
			if err := failed.Load(); err != nil {
				t.Fatalf("worker failed: %v", err)
			}
			_, present, err := fill.MGet(all)
			if err != nil {
				t.Fatal(err)
			}
			count := 0
			for k := range all {
				if present[k] {
					count++
				}
			}
			if count != want {
				t.Errorf("end state holds %d tokens, want %d", count, want)
			}
			if v := violations.Load(); v != 0 {
				t.Errorf("%d torn snapshots observed under batch execution", v)
			}
		})
	}
}

// TestBatchSpecCountersAndStats pins the stats surface: a batch server
// reports Exec "batch", counts batches and attempts, and exposes the
// worker threads' transaction commits through the merged payload.
func TestBatchSpecCountersAndStats(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(8))
	eng := engines()[0]
	s := startServer(t, Config{Engine: eng.name, NewTM: eng.newi, Shards: 8, Exec: ExecBatch, BatchWorkers: 4, MaxBatch: 64})
	cl := dial(t, s)

	const depth = 32
	reqs := make([]wire.Request, depth)
	resps := make([]wire.Response, depth)
	for round := 0; round < 20; round++ {
		for i := range reqs {
			// RMW-shaped conflict pressure on a handful of keys.
			reqs[i] = wire.Request{Op: wire.OpPut, Key: int64(i % 3), Val: int64(round*depth + i)}
		}
		if err := cl.Pipeline(reqs, resps); err != nil {
			t.Fatal(err)
		}
	}

	var p wire.StatsPayload
	if err := cl.Stats(&p); err != nil {
		t.Fatal(err)
	}
	if p.Exec != ExecBatch {
		t.Errorf("stats exec = %q, want %q", p.Exec, ExecBatch)
	}
	if p.SpecBatches == 0 {
		t.Error("no batches counted")
	}
	if p.SpecExecs < 20*depth {
		t.Errorf("spec execs = %d, want >= %d", p.SpecExecs, 20*depth)
	}
	if p.Commits == 0 {
		t.Error("batch worker commits not merged into stats payload")
	}
	if p.SpecReexecs > 0 && p.SpecExecs <= p.SpecReexecs {
		t.Errorf("execs %d must exceed reexecs %d", p.SpecExecs, p.SpecReexecs)
	}

	// Conn-mode servers report their mode with zero speculation counters.
	s2 := startServer(t, Config{Engine: eng.name, NewTM: eng.newi})
	cl2 := dial(t, s2)
	if _, err := cl2.Put(1, 1); err != nil {
		t.Fatal(err)
	}
	var p2 wire.StatsPayload
	if err := cl2.Stats(&p2); err != nil {
		t.Fatal(err)
	}
	if p2.Exec != ExecConn {
		t.Errorf("conn stats exec = %q, want %q", p2.Exec, ExecConn)
	}
	if p2.SpecBatches != 0 || p2.SpecExecs != 0 {
		t.Errorf("conn server reports speculation counters: %d batches, %d execs", p2.SpecBatches, p2.SpecExecs)
	}
}

// TestBatchDrain pins the drain contract in batch mode: a burst already
// received is answered in full, Shutdown completes cleanly, and the
// executor is drained before the log closes.
func TestBatchDrain(t *testing.T) {
	eng := engines()[0]
	s := startServer(t, Config{Engine: eng.name, NewTM: eng.newi, Shards: 8, Exec: ExecBatch, BatchWorkers: 4})
	nc, br := rawDial(t, s)

	const n = 64
	bodies := make([][]byte, n)
	for i := range bodies {
		bodies[i] = wire.AppendRequest(nil, &wire.Request{Op: wire.OpPut, Key: int64(i), Val: int64(i)})
	}
	resps := sendBurst(t, nc, br, bodies)
	for i, r := range resps {
		if len(r) == 0 || wire.Status(r[0]) != wire.StatusOK {
			t.Fatalf("response %d not OK: %x", i, r)
		}
	}

	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		done <- s.Shutdown(ctx)
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("drain failed: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("shutdown hung")
	}
}

// TestBatchWALRestartAcrossModes pins that batch-mode commits are
// recovered identically by a conn-mode restart (and vice versa): the two
// execution models share one log format and one commit-order contract.
func TestBatchWALRestartAcrossModes(t *testing.T) {
	eng := engines()[0]
	dir := t.TempDir()
	s := startServer(t, Config{Engine: eng.name, NewTM: eng.newi, Shards: 8, Exec: ExecBatch, BatchWorkers: 4, WALDir: dir, Fsync: false})
	cl := dial(t, s)

	const depth = 24
	reqs := make([]wire.Request, depth)
	resps := make([]wire.Response, depth)
	for i := range reqs {
		switch i % 4 {
		case 0, 1:
			reqs[i] = wire.Request{Op: wire.OpPut, Key: int64(i), Val: int64(100 + i)}
		case 2:
			reqs[i] = wire.Request{Op: wire.OpMPut, Keys: []int64{int64(200 + i), int64(300 + i)}, Vals: []int64{int64(i), int64(i)}}
		default:
			reqs[i] = wire.Request{Op: wire.OpCompareAndMove, Key: int64(i - 3), To: int64(400 + i), Val: int64(97 + i)}
		}
	}
	if err := cl.Pipeline(reqs, resps); err != nil {
		t.Fatal(err)
	}
	var keys []int64
	for k := int64(0); k < 500; k++ {
		keys = append(keys, k)
	}
	wantVals, wantOK, err := cl.MGet(keys)
	if err != nil {
		t.Fatal(err)
	}
	wantVals = append([]int64(nil), wantVals...)
	wantOK = append([]bool(nil), wantOK...)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	s2 := startServer(t, Config{Engine: eng.name, NewTM: eng.newi, Shards: 8, WALDir: dir, Fsync: false})
	cl2 := dial(t, s2)
	gotVals, gotOK, err := cl2.MGet(keys)
	if err != nil {
		t.Fatal(err)
	}
	for i := range keys {
		if wantOK[i] != gotOK[i] || (wantOK[i] && wantVals[i] != gotVals[i]) {
			t.Fatalf("key %d: conn-mode recovery sees (%d,%v), batch wrote (%d,%v)",
				keys[i], gotVals[i], gotOK[i], wantVals[i], wantOK[i])
		}
	}
}
