package server

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"oestm/internal/cm"
	"oestm/internal/obs"
	"oestm/internal/specexec"
	"oestm/internal/stats"
	"oestm/internal/stm"
	"oestm/internal/store"
	"oestm/internal/wal"
	"oestm/internal/wire"
)

// Config describes one server instance.
type Config struct {
	// Addr is the TCP listen address (e.g. ":7461", "127.0.0.1:0").
	Addr string
	// Engine names the engine for stats reporting; NewTM builds it. Both
	// are required (resolve names with harness.EngineByName or construct
	// directly).
	Engine string
	NewTM  func() stm.TM
	// Shards is the store's shard count (0 = store.DefaultShards).
	Shards int
	// CM names the contention policy installed on every connection's
	// thread (internal/cm; empty = cm.DefaultName).
	CM string
	// MaxRetries, when non-zero, bounds the transaction attempts of each
	// composed request (MGet/MPut/CompareAndMove); exhaustion returns
	// ErrRetryExhausted to the client instead of retrying forever — a
	// liveness guard for unsound/ablation setups (store.Frame.SetBudget
	// explains why elementary requests are never bounded).
	MaxRetries int
	// Unsound builds the store in unsound mode (composed operations split
	// into separate transactions — the checker-validation baseline).
	Unsound bool
	// Boost selects the store's commutative hot-key mode for the
	// integer-delta requests (Add/MAdd) in conn mode: BoostOff (zero
	// value) runs them as read-modify-write transactions, BoostAuto
	// promotes keys adaptively, BoostOn promotes every add's key
	// (store.BoostMode; unsound mode forces off).
	Boost store.BoostMode
	// MaxBody caps accepted frame bodies (0 = wire.MaxBody).
	MaxBody int
	// WALDir, when non-empty, makes the store durable: a per-shard
	// write-ahead log in that directory (created if needed), recovered
	// into the store before the listener opens and flushed on Shutdown.
	WALDir string
	// Fsync makes every WAL group commit fsync before acknowledging
	// (WALDir only). Off, acknowledged writes survive process death but
	// not power loss.
	Fsync bool
	// SnapshotEvery, when positive, writes a snapshot generation at that
	// period (WALDir only) — a replay accelerator; logs are kept whole.
	SnapshotEvery time.Duration
	// Exec selects the execution model: ExecConn (default, also "")
	// serves each connection on its own goroutine; ExecBatch runs the
	// speculative batch executor — pipelined bursts become batches
	// executed optimistically in parallel and committed in arrival
	// order (see batch.go and internal/specexec).
	Exec string
	// BatchWorkers is the batch executor's worker-pool size
	// (Exec == ExecBatch; 0 = GOMAXPROCS).
	BatchWorkers int
	// MaxBatch caps how many queued requests one batch drains
	// (Exec == ExecBatch; 0 = specexec.DefaultMaxBatch).
	MaxBatch int
}

// Server is a running instance. Create with New, start with Start.
type Server struct {
	cfg    Config
	cmName string
	tm     stm.TM
	st     *store.Store
	ln     net.Listener

	// Durability (nil/zero without Config.WALDir): the log, the recovery
	// that seeded the store, and the snapshotter's lifecycle.
	wlog     *wal.Log
	recovery *wal.Replay
	snapStop chan struct{}
	snapDone chan struct{}
	walClose sync.Once
	walErr   error

	batchClose sync.Once

	// batch is the speculative execution backend (nil in conn mode).
	batch *batchEngine

	mu       sync.Mutex
	conns    map[*conn]struct{}
	draining atomic.Bool

	// retired accumulates the telemetry of closed connections.
	retired connStats

	// flight samples abort-suffering requests for /debug/aborts.
	flight *obs.FlightRecorder

	wg sync.WaitGroup // accept loop + connection handlers
}

// New validates cfg and builds the engine and store. The server is not
// listening yet.
func New(cfg Config) (*Server, error) {
	if cfg.NewTM == nil || cfg.Engine == "" {
		return nil, errors.New("server: Config.Engine and Config.NewTM are required")
	}
	cmName := cfg.CM
	if cmName == "" {
		cmName = cm.DefaultName
	}
	if _, ok := cm.New(cmName); !ok {
		return nil, fmt.Errorf("server: unknown contention-management policy %q", cmName)
	}
	if cfg.MaxBody == 0 {
		cfg.MaxBody = wire.MaxBody
	}
	switch cfg.Exec {
	case "":
		cfg.Exec = ExecConn
	case ExecConn, ExecBatch:
	default:
		return nil, fmt.Errorf("server: unknown exec mode %q", cfg.Exec)
	}
	shards := cfg.Shards
	if shards == 0 {
		shards = store.DefaultShards
	}
	var (
		wlog     *wal.Log
		recovery *wal.Replay
	)
	if cfg.WALDir != "" {
		var err error
		wlog, recovery, err = wal.Open(cfg.WALDir, wal.Options{Shards: shards, Fsync: cfg.Fsync})
		if err != nil {
			return nil, fmt.Errorf("server: open wal: %w", err)
		}
	}
	s := &Server{
		cfg:      cfg,
		cmName:   cmName,
		tm:       cfg.NewTM(),
		st:       store.New(store.Config{Shards: shards, Unsound: cfg.Unsound, WAL: wlog, Boost: cfg.Boost}),
		wlog:     wlog,
		recovery: recovery,
		conns:    map[*conn]struct{}{},
		flight:   obs.NewFlightRecorder(),
	}
	if recovery != nil {
		// Replay before the listener opens: the shards are fresh, no
		// frame is live, and the one recovery thread sees them alone.
		s.st.Recover(stm.NewThread(s.tm), recovery)
	}
	if cfg.Exec == ExecBatch {
		workers := cfg.BatchWorkers
		if workers <= 0 {
			workers = runtime.GOMAXPROCS(0)
		}
		b, err := newBatchEngine(s, workers, cfg.MaxBatch)
		if err != nil {
			s.closeWAL()
			return nil, err
		}
		s.batch = b
	}
	return s, nil
}

// Recovery returns the WAL replay that seeded the store at New (nil
// without Config.WALDir): startup logging and the crash-recovery tests
// read the torn-tail and rollback details from it.
func (s *Server) Recovery() *wal.Replay { return s.recovery }

// Store exposes the server's store (in-process harnesses and tests).
func (s *Server) Store() *store.Store { return s.st }

// Telemetry fills p with the server's merged stats snapshot — the same
// merge the OpStats wire opcode serves. The admin plane's /metrics and
// /stats endpoints scrape through this, which is what makes HTTP and
// wire observations consistent with each other.
func (s *Server) Telemetry(p *wire.StatsPayload) { s.statsPayload(p) }

// Flight exposes the abort flight recorder (the admin plane drains it
// at /debug/aborts).
func (s *Server) Flight() *obs.FlightRecorder { return s.flight }

// Start begins listening on cfg.Addr and serving connections.
func (s *Server) Start() error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	s.ln = ln
	if s.batch != nil {
		s.batch.exec.Start()
	}
	s.wg.Add(1)
	go s.acceptLoop()
	if s.wlog != nil && s.cfg.SnapshotEvery > 0 {
		s.snapStop = make(chan struct{})
		s.snapDone = make(chan struct{})
		go s.snapshotLoop()
	}
	return nil
}

// snapshotLoop writes a snapshot generation every SnapshotEvery on its
// own thread. Errors don't stop the loop (snapshots accelerate replay;
// the log alone stays sufficient) — the next tick retries.
func (s *Server) snapshotLoop() {
	defer close(s.snapDone)
	th := stm.NewThread(s.tm)
	ticker := time.NewTicker(s.cfg.SnapshotEvery)
	defer ticker.Stop()
	for {
		select {
		case <-s.snapStop:
			return
		case <-ticker.C:
			_ = s.st.Snapshot(th)
		}
	}
}

// closeWAL stops the snapshotter and flushes+closes the log, once.
func (s *Server) closeWAL() error {
	s.walClose.Do(func() {
		if s.snapStop != nil {
			close(s.snapStop)
			<-s.snapDone
		}
		s.walErr = s.wlog.Close() // nil-receiver safe
	})
	return s.walErr
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// acceptLoop admits connections until the listener closes.
func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		nc, err := s.ln.Accept()
		if err != nil {
			return // listener closed (Shutdown) or fatal
		}
		c := newConn(s, nc)
		s.mu.Lock()
		if s.draining.Load() {
			s.mu.Unlock()
			nc.Close()
			continue
		}
		s.conns[c] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			c.handle()
		}()
	}
}

// Shutdown drains the server: stop accepting, let every connection
// finish the requests it has already received, then close. Connections
// still open when ctx expires are closed hard. Safe to call once.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	if s.ln != nil {
		s.ln.Close()
	}
	s.mu.Lock()
	for c := range s.conns {
		// Interrupt the next blocking read; buffered pipelined requests
		// still drain (bufio serves them without touching the socket).
		c.nc.SetReadDeadline(time.Unix(1, 0))
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		// Every handler has returned, so no appends are in flight: the
		// final flush drains whatever the last group commits buffered.
		// The batch executor closes first — Close drains every batch
		// already submitted, and its commits append to the log.
		s.closeBatch()
		return s.closeWAL()
	case <-ctx.Done():
		s.mu.Lock()
		for c := range s.conns {
			c.nc.Close()
		}
		s.mu.Unlock()
		// A closed socket unblocks any handler doing IO, but it cannot
		// interrupt one wedged in a CPU-bound transaction retry loop
		// (possible only under unsound/ablation corruption with an
		// unbounded retry budget — the situation Config.MaxRetries
		// exists to prevent). Grant a short grace, then give up rather
		// than hang past the caller's deadline forever.
		select {
		case <-done:
			s.closeBatch()
			_ = s.closeWAL()
		case <-time.After(time.Second):
			// Handlers may still be live; closing the log (or the batch
			// executor) under them would turn in-flight work into
			// spurious errors, so both are left to the process exit
			// (the log's contents are already written by each
			// acknowledged request's Sync).
		}
		return ctx.Err()
	}
}

// closeBatch drains and stops the batch executor, once. Callers must
// know every handler has returned — nothing may submit afterwards.
func (s *Server) closeBatch() {
	if s.batch != nil {
		s.batchClose.Do(s.batch.exec.Close)
	}
}

// connStats is the telemetry one connection publishes: per-opcode counts
// and server-side latency histograms, plus a snapshot of the thread's
// transaction counters. Guarded by mu; the handler publishes after each
// request, the stats endpoint reads from any connection's goroutine.
type connStats struct {
	mu     sync.Mutex
	counts [wire.NumOps]uint64
	hists  [wire.NumOps]stats.Histogram
	stm    stm.Stats
}

// publish records one handled request and refreshes the thread snapshot.
func (cs *connStats) publish(op wire.Op, d time.Duration, th *stm.Thread) {
	cs.mu.Lock()
	cs.counts[op]++
	cs.hists[op].Record(d)
	cs.stm = th.Stats
	cs.mu.Unlock()
}

// mergeInto folds the stats into a payload under the lock.
func (cs *connStats) mergeInto(p *wire.StatsPayload) {
	cs.mu.Lock()
	for i := range cs.counts {
		p.Ops[i].Count += cs.counts[i]
		p.Ops[i].Hist.Merge(&cs.hists[i])
	}
	p.Commits += cs.stm.Commits
	p.Aborts += cs.stm.Aborts
	for i := range cs.stm.AbortsByCause {
		p.AbortsByCause[i] += cs.stm.AbortsByCause[i]
	}
	cs.mu.Unlock()
}

// statsPayload merges the telemetry of every connection, live and
// retired. It holds s.mu across the whole merge so it is atomic with
// respect to retire: a connection's counters appear exactly once per
// scrape — live or retired, never neither — which keeps scrape-to-scrape
// deltas (harness.RunLoad) monotone. Lock order everywhere: s.mu, then
// a connStats.mu; the request path's publish takes only the latter.
func (s *Server) statsPayload(p *wire.StatsPayload) {
	ws := s.wlog.Stats() // zero on nil receiver
	*p = wire.StatsPayload{
		Engine:     s.cfg.Engine,
		CM:         s.cmName,
		Shards:     s.st.Shards(),
		Exec:       s.cfg.Exec,
		WALEnabled: s.wlog.Enabled(),
		WALAppends: ws.Appends,
		WALSyncs:   ws.Syncs,
		WALBytes:   ws.Bytes,
	}
	bs := s.st.BoostStats()
	p.Adds = bs.Adds
	p.BoostedOps = bs.BoostedOps
	p.HotPromotions = bs.Promotions
	p.HotDemotions = bs.Demotions
	if s.batch != nil {
		ss := s.batch.exec.Stats()
		p.SpecBatches = ss.Batches
		p.SpecExecs = ss.Execs
		p.SpecReexecs = ss.Reexecs
		p.SpecValidationFails = ss.ValidationFails
		s.batch.mergeInto(p)
	}
	// Per-shard telemetry: the store's padded per-shard counters plus the
	// WAL's per-shard byte counters (zero without a log).
	shards := s.st.Shards()
	p.ShardStats = make([]wire.ShardTelemetry, shards)
	for i := 0; i < shards; i++ {
		ops, aborts, hot := s.st.ShardCounters(i)
		p.ShardStats[i] = wire.ShardTelemetry{
			Ops:      ops,
			Aborts:   aborts,
			HotKeys:  hot,
			WALBytes: s.wlog.ShardBytes(i), // zero on nil receiver
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	p.Conns = len(s.conns)
	s.retired.mergeInto(p)
	for c := range s.conns {
		c.stats.mergeInto(p)
	}
}

// retire unregisters a closing connection and folds its telemetry into
// the server-wide accumulator, atomically with respect to statsPayload
// (both hold s.mu for the whole transfer).
func (s *Server) retire(c *conn) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.conns, c)
	c.stats.mu.Lock()
	counts := c.stats.counts
	hists := c.stats.hists
	snap := c.stats.stm
	c.stats.mu.Unlock()
	s.retired.mu.Lock()
	for i := range counts {
		s.retired.counts[i] += counts[i]
		s.retired.hists[i].Merge(&hists[i])
	}
	s.retired.stm.Add(snap)
	s.retired.mu.Unlock()
}

// conn is one connection's context: its goroutine owns every field
// except stats (see connStats).
type conn struct {
	srv *Server
	nc  net.Conn
	br  *bufio.Reader
	bw  *bufio.Writer

	th *stm.Thread
	fr *store.Frame

	req  wire.Request
	resp wire.Response
	in   []byte // frame-read buffer
	out  []byte // response-encode buffer

	// MGet scratch, sized to the largest request seen.
	vals []int64
	oks  []bool

	// Batch-mode state (srv.batch != nil): the pooled tasks of the
	// current burst, the submission scratch, and the completion signal
	// the executor's Done callback drives (see batch.go).
	tasks   []*task
	burst   []specexec.Txn
	pending atomic.Int32
	doneCh  chan struct{}

	stats connStats

	// Flight-recorder state (conn mode): the connection's write handle
	// and its last-seen per-cause abort counters, diffed to name the
	// dominant cause of each abort-suffering request.
	ring   *obs.Ring
	causes [stm.NumCauses]uint64
}

// newConn builds the per-connection context.
func newConn(s *Server, nc net.Conn) *conn {
	th := stm.NewThread(s.tm)
	th.CM = cm.MustNew(s.cmName)
	fr := s.st.NewFrame(th)
	fr.SetBudget(s.cfg.MaxRetries)
	c := &conn{
		srv: s,
		nc:  nc,
		br:  bufio.NewReaderSize(nc, 32<<10),
		bw:  bufio.NewWriterSize(nc, 32<<10),
		th:  th,
		fr:  fr,
	}
	if s.batch != nil {
		c.doneCh = make(chan struct{}, 1)
	} else {
		// Batch-mode aborts happen on applier workers without request
		// context; only conn mode records flight events.
		c.ring = s.flight.Ring()
	}
	return c
}

// handle is the connection's request loop.
func (c *conn) handle() {
	if c.srv.batch != nil {
		c.handleBatch()
		return
	}
	defer func() {
		c.bw.Flush()
		c.nc.Close()
		c.srv.retire(c)
	}()
	for {
		body, err := wire.ReadFrame(c.br, c.in[:0], c.srv.cfg.MaxBody)
		c.in = body[:cap(body)]
		if err != nil {
			if err == io.EOF {
				return // clean close
			}
			if pe, ok := wire.IsProtocolError(err); ok {
				// Framing is lost (oversized announcement or mid-frame
				// end of stream): answer with the typed error, then
				// close — never leave the peer hanging.
				c.out = wire.AppendError(c.out[:0], pe.Code, pe.Msg)
				if wire.WriteFrame(c.bw, c.out) == nil {
					c.bw.Flush()
				}
				return
			}
			// Read interrupted (drain deadline) or connection error.
			return
		}
		start := time.Now()
		ab0 := c.th.Stats.Aborts
		decoded := true
		if derr := c.req.Decode(body); derr != nil {
			// The frame was consumed whole; framing is intact, so report
			// and keep serving.
			decoded = false
			pe, _ := wire.IsProtocolError(derr)
			c.out = wire.AppendError(wire.BeginFrame(c.out[:0]), pe.Code, pe.Msg)
		} else {
			c.out = c.serve(wire.BeginFrame(c.out[:0]))
		}
		if wire.FinishFrame(c.out) != nil {
			// The encoded response outgrew a frame (a stats payload can,
			// in principle): replace it with a typed error.
			c.out = wire.AppendError(wire.BeginFrame(c.out[:0]), wire.ErrFrameTooLarge, "response exceeds frame limit")
			if wire.FinishFrame(c.out) != nil {
				return
			}
		}
		if _, err := c.bw.Write(c.out); err != nil {
			return
		}
		// Flush once per pipelined burst: only when no complete frame is
		// already buffered. Completeness matters — a buffered header (or
		// partial body) whose peer is waiting for this response before
		// sending the rest must not suppress the flush, or both sides
		// deadlock.
		if !c.nextFrameBuffered() {
			if c.bw.Flush() != nil {
				return
			}
		}
		if decoded {
			elapsed := time.Since(start)
			c.stats.publish(c.req.Op, elapsed, c.th)
			if aborts := c.th.Stats.Aborts - ab0; aborts != 0 {
				c.recordAbort(aborts, elapsed)
			}
		}
	}
}

// recordAbort samples one abort-suffering request into the flight
// recorder. The dominant cause is the per-cause counter that grew most
// since this connection's last sample; the shard is where the request's
// first key routes, matching the per-shard abort attribution. Off the
// happy path by construction (aborts != 0), and allocation-free like
// the rest of the instrumentation.
func (c *conn) recordAbort(aborts uint64, elapsed time.Duration) {
	cause, best := stm.CauseUnknown, uint64(0)
	for i := range c.th.Stats.AbortsByCause {
		if d := c.th.Stats.AbortsByCause[i] - c.causes[i]; d > best {
			cause, best = stm.ConflictCause(i), d
		}
		c.causes[i] = c.th.Stats.AbortsByCause[i]
	}
	key := c.req.Key
	if len(c.req.Keys) > 0 {
		key = c.req.Keys[0]
	}
	attempts := uint32(aborts)
	if aborts > uint64(^uint32(0)) {
		attempts = ^uint32(0)
	}
	c.ring.Record(c.req.Op, cause, c.srv.st.ShardOf(key), attempts, elapsed)
}

// serve runs one decoded request against the store and appends the
// response body to dst.
func (c *conn) serve(dst []byte) []byte {
	r := &c.resp
	*r = wire.Response{Present: r.Present[:0], Vals: r.Vals[:0], Stats: r.Stats[:0], Status: wire.StatusOK}
	switch c.req.Op {
	case wire.OpGet:
		if !store.ValidKey(c.req.Key) {
			return wire.AppendError(dst, wire.ErrKeyRange, "reserved key")
		}
		v, ok := c.fr.Get(c.req.Key)
		if !ok {
			r.Status = wire.StatusNotFound
		}
		r.Val = v
	case wire.OpPut:
		if !store.ValidKey(c.req.Key) {
			return wire.AppendError(dst, wire.ErrKeyRange, "reserved key")
		}
		r.Flag = c.fr.Put(c.req.Key, c.req.Val)
	case wire.OpRemove:
		if !store.ValidKey(c.req.Key) {
			return wire.AppendError(dst, wire.ErrKeyRange, "reserved key")
		}
		r.Val, r.Flag = c.fr.Remove(c.req.Key)
	case wire.OpCompareAndMove:
		if !store.ValidKey(c.req.Key) || !store.ValidKey(c.req.To) {
			return wire.AppendError(dst, wire.ErrKeyRange, "reserved key")
		}
		r.Flag = c.fr.CompareAndMove(c.req.Key, c.req.To, c.req.Val)
	case wire.OpMGet:
		for _, k := range c.req.Keys {
			if !store.ValidKey(k) {
				return wire.AppendError(dst, wire.ErrKeyRange, "reserved key")
			}
		}
		c.sizeScratch(len(c.req.Keys))
		if !c.fr.MGet(c.req.Keys, c.vals, c.oks) {
			return wire.AppendError(dst, wire.ErrRetryExhausted, "mget retry budget exhausted")
		}
		r.Vals = append(r.Vals, c.vals[:len(c.req.Keys)]...)
		r.Present = append(r.Present, c.oks[:len(c.req.Keys)]...)
	case wire.OpMPut:
		for _, k := range c.req.Keys {
			if !store.ValidKey(k) {
				return wire.AppendError(dst, wire.ErrKeyRange, "reserved key")
			}
		}
		if !c.fr.MPut(c.req.Keys, c.req.Vals) {
			return wire.AppendError(dst, wire.ErrRetryExhausted, "mput retry budget exhausted")
		}
	case wire.OpAdd:
		if !store.ValidKey(c.req.Key) {
			return wire.AppendError(dst, wire.ErrKeyRange, "reserved key")
		}
		if !c.fr.Add(c.req.Key, c.req.Val) {
			return wire.AppendError(dst, wire.ErrRetryExhausted, "add retry budget exhausted")
		}
	case wire.OpMAdd:
		for _, k := range c.req.Keys {
			if !store.ValidKey(k) {
				return wire.AppendError(dst, wire.ErrKeyRange, "reserved key")
			}
		}
		if !c.fr.MAdd(c.req.Keys, c.req.Vals) {
			return wire.AppendError(dst, wire.ErrRetryExhausted, "madd retry budget exhausted")
		}
	case wire.OpStats:
		var p wire.StatsPayload
		c.srv.statsPayload(&p)
		r.Stats = wire.AppendStats(r.Stats, &p)
	case wire.OpPing:
		if c.srv.draining.Load() {
			return wire.AppendError(dst, wire.ErrShuttingDown, "draining")
		}
	}
	// A WAL I/O error is sticky (the log refuses everything after its
	// first failure): acknowledged-but-not-durable must never happen, so
	// mutations report the typed durability error instead of success.
	// Reads keep serving — the in-memory state is intact.
	if err := c.fr.WALErr(); err != nil {
		switch c.req.Op {
		case wire.OpPut, wire.OpRemove, wire.OpCompareAndMove, wire.OpMPut, wire.OpAdd, wire.OpMAdd:
			return wire.AppendError(dst, wire.ErrDurability, err.Error())
		}
	}
	return wire.AppendResponse(dst, c.req.Op, r)
}

// nextFrameBuffered reports whether a complete request frame is already
// in the read buffer (header and full announced body), i.e. the next
// ReadFrame cannot block on the socket.
func (c *conn) nextFrameBuffered() bool {
	if c.br.Buffered() < wire.HeaderSize {
		return false
	}
	hdr, err := c.br.Peek(wire.HeaderSize)
	if err != nil {
		return false
	}
	n := int(binary.BigEndian.Uint32(hdr))
	return c.br.Buffered() >= wire.HeaderSize+n
}

// sizeScratch grows the MGet output buffers to hold n entries.
func (c *conn) sizeScratch(n int) {
	if cap(c.vals) < n {
		c.vals = make([]int64, n)
		c.oks = make([]bool, n)
	}
	c.vals = c.vals[:n]
	c.oks = c.oks[:n]
}
