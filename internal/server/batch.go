package server

import (
	"io"
	"sync"
	"time"

	"oestm/internal/cm"
	"oestm/internal/specexec"
	"oestm/internal/stm"
	"oestm/internal/store"
	"oestm/internal/wire"
)

// Execution models (Config.Exec).
const (
	// ExecConn serves each connection's requests on its own goroutine
	// against an engine frame — the goroutine-per-connection model.
	ExecConn = "conn"
	// ExecBatch routes every request through the speculative batch
	// executor: a connection's pipelined burst is decoded whole,
	// submitted as one batch, executed optimistically in parallel
	// across the worker pool, validated, and committed in arrival
	// order (internal/specexec).
	ExecBatch = "batch"
)

// batchEngine is the server's speculative execution backend: the
// executor, the store applier it commits through, and the worker-thread
// telemetry snapshot the stats endpoint merges.
type batchEngine struct {
	srv     *Server
	exec    *specexec.Executor
	applier *store.Applier

	// mu guards stm, a snapshot of the applier threads' cumulative
	// transaction counters refreshed after every batch (the threads
	// themselves are only quiescent between batches).
	mu  sync.Mutex
	stm stm.Stats
}

// newBatchEngine builds the applier and executor for a batch-mode
// server. Workers and maxBatch come from Config (already defaulted).
func newBatchEngine(s *Server, workers, maxBatch int) (*batchEngine, error) {
	b := &batchEngine{srv: s}
	b.applier = store.NewApplier(s.st, workers, func() *stm.Thread {
		th := stm.NewThread(s.tm)
		th.CM = cm.MustNew(s.cmName)
		return th
	})
	ex, err := specexec.New(specexec.Config{
		Workers:   workers,
		MaxBatch:  maxBatch,
		NewBase:   func(w int) specexec.Base { return b.applier.Base(w) },
		Committer: b.applier,
		Done:      b.done,
		AfterBatch: func() {
			var agg stm.Stats
			for _, th := range b.applier.Threads() {
				agg.Add(th.Stats)
			}
			b.mu.Lock()
			b.stm = agg
			b.mu.Unlock()
		},
	})
	if err != nil {
		return nil, err
	}
	b.exec = ex
	return b, nil
}

// done routes one committed transaction back to its connection: the
// last task of a burst wakes the waiting handler. It runs on the
// dispatcher after Finish, so the handler's subsequent reads of task
// results and the applier's sticky WAL error are ordered after the
// commit.
func (b *batchEngine) done(t specexec.Txn) {
	tk := t.(*task)
	if tk.c.pending.Add(-1) == 0 {
		tk.c.doneCh <- struct{}{}
	}
}

// mergeInto folds the applier threads' transaction counters into a
// stats payload.
func (b *batchEngine) mergeInto(p *wire.StatsPayload) {
	b.mu.Lock()
	p.Commits += b.stm.Commits
	p.Aborts += b.stm.Aborts
	for i := range b.stm.AbortsByCause {
		p.AbortsByCause[i] += b.stm.AbortsByCause[i]
	}
	b.mu.Unlock()
}

// task is one request of a burst: the decoded arguments (copied — the
// connection's decode scratch is reused frame to frame) and the result
// fields its Speculate attempts fill. Tasks are pooled per connection
// and reused burst to burst.
type task struct {
	c  *conn
	op wire.Op

	key, to, val int64
	keys, vals   []int64

	// decoded is false for an undecodable frame (errCode carries the
	// typed error); such tasks never reach the executor and are not
	// counted in per-op telemetry, matching conn mode.
	decoded bool
	// submitted marks tasks the executor runs; Stats/Ping and
	// pre-resolved errors are answered on the connection's goroutine.
	submitted bool
	errCode   wire.ErrCode
	errMsg    string

	// Results of the last (committed) attempt.
	flag    bool
	rval    int64
	rvals   []int64
	present []bool
}

// Speculate maps the request onto the batch view, mirroring the conn
// path's semantics exactly: same flags, same values, same writes — so
// batch and conn mode are byte-identical on the wire. Re-run per
// incarnation; every field it writes is derived from view reads alone.
func (t *task) Speculate(v *specexec.View) {
	switch t.op {
	case wire.OpGet:
		t.rval, t.flag = v.Read(t.key)
	case wire.OpPut:
		_, existed := v.Read(t.key)
		v.Write(t.key, t.val)
		t.flag = existed
	case wire.OpRemove:
		val, ok := v.Read(t.key)
		if ok {
			// A miss mutates nothing and writes no record, like
			// Frame.Remove.
			v.Delete(t.key)
		}
		t.rval, t.flag = val, ok
	case wire.OpCompareAndMove:
		t.flag = false
		if t.key == t.to {
			return
		}
		val, ok := v.Read(t.key)
		if !ok || val != t.val || v.Aborted() {
			return
		}
		if _, occupied := v.Read(t.to); occupied || v.Aborted() {
			return
		}
		v.Delete(t.key)
		v.Write(t.to, val)
		t.flag = true
	case wire.OpMGet:
		t.rvals = t.rvals[:0]
		t.present = t.present[:0]
		for _, k := range t.keys {
			if v.Aborted() {
				return
			}
			val, ok := v.Read(k)
			t.rvals = append(t.rvals, val)
			t.present = append(t.present, ok)
		}
	case wire.OpMPut:
		for i, k := range t.keys {
			v.Write(k, t.vals[i])
		}
	case wire.OpAdd:
		// Blind delta: no read, so same-key adds across the batch can
		// never invalidate each other — the commutativity win the hot-key
		// path buys conn mode shows up here as zero validation fails.
		v.Add(t.key, t.val)
	case wire.OpMAdd:
		for i, k := range t.keys {
			v.Add(k, t.vals[i])
		}
	}
}

// decode parses one frame body into the task, copying every slice out
// of the connection's reusable request scratch, and classifies it:
// executor-bound, connection-resolved (Stats/Ping), or a pre-resolved
// typed error (undecodable body, reserved key).
func (t *task) decode(c *conn, body []byte) {
	t.errCode, t.errMsg = 0, ""
	t.decoded, t.submitted = false, false
	if err := c.req.Decode(body); err != nil {
		pe, _ := wire.IsProtocolError(err)
		t.errCode, t.errMsg = pe.Code, pe.Msg
		return
	}
	t.decoded = true
	t.op = c.req.Op
	t.key, t.to, t.val = c.req.Key, c.req.To, c.req.Val
	t.keys = append(t.keys[:0], c.req.Keys...)
	t.vals = append(t.vals[:0], c.req.Vals...)
	switch t.op {
	case wire.OpGet, wire.OpPut, wire.OpRemove, wire.OpAdd:
		if !store.ValidKey(t.key) {
			t.errCode, t.errMsg = wire.ErrKeyRange, "reserved key"
			return
		}
		t.submitted = true
	case wire.OpCompareAndMove:
		if !store.ValidKey(t.key) || !store.ValidKey(t.to) {
			t.errCode, t.errMsg = wire.ErrKeyRange, "reserved key"
			return
		}
		t.submitted = true
	case wire.OpMGet, wire.OpMPut, wire.OpMAdd:
		for _, k := range t.keys {
			if !store.ValidKey(k) {
				t.errCode, t.errMsg = wire.ErrKeyRange, "reserved key"
				return
			}
		}
		t.submitted = true
	case wire.OpStats, wire.OpPing:
		// Resolved at encode time on the connection's goroutine; they
		// touch no keys, so they take no batch slot.
	}
}

// appendResponse encodes the task's response body, identical to what
// conn-mode serve would have produced. werr is the applier's sticky
// WAL error, read after the burst's batches finished.
func (t *task) appendResponse(dst []byte, c *conn, werr error) []byte {
	if t.errCode != 0 {
		return wire.AppendError(dst, t.errCode, t.errMsg)
	}
	r := &c.resp
	*r = wire.Response{Present: r.Present[:0], Vals: r.Vals[:0], Stats: r.Stats[:0], Status: wire.StatusOK}
	switch t.op {
	case wire.OpGet:
		if !t.flag {
			r.Status = wire.StatusNotFound
		}
		r.Val = t.rval
	case wire.OpPut:
		r.Flag = t.flag
	case wire.OpRemove:
		r.Val, r.Flag = t.rval, t.flag
	case wire.OpCompareAndMove:
		r.Flag = t.flag
	case wire.OpMGet:
		r.Vals = append(r.Vals, t.rvals...)
		r.Present = append(r.Present, t.present...)
	case wire.OpMPut, wire.OpAdd, wire.OpMAdd:
		// Status-only responses.
	case wire.OpStats:
		var p wire.StatsPayload
		c.srv.statsPayload(&p)
		r.Stats = wire.AppendStats(r.Stats, &p)
	case wire.OpPing:
		if c.srv.draining.Load() {
			return wire.AppendError(dst, wire.ErrShuttingDown, "draining")
		}
	}
	if werr != nil {
		switch t.op {
		case wire.OpPut, wire.OpRemove, wire.OpCompareAndMove, wire.OpMPut, wire.OpAdd, wire.OpMAdd:
			return wire.AppendError(dst, wire.ErrDurability, werr.Error())
		}
	}
	return wire.AppendResponse(dst, t.op, r)
}

// task returns the i'th pooled task, growing the pool as needed.
func (c *conn) task(i int) *task {
	for len(c.tasks) <= i {
		c.tasks = append(c.tasks, &task{c: c})
	}
	return c.tasks[i]
}

// handleBatch is the batch-mode request loop: read a whole pipelined
// burst (one blocking frame, then every complete frame already
// buffered), submit it to the executor as one unit, wait for the
// batch(es) to commit, then answer every request in arrival order. The
// burst boundary is what turns client pipelining into server
// parallelism — a pipeline depth of one degenerates to solo batches.
//
// Drain semantics match conn mode: Shutdown's read deadline interrupts
// the next blocking read, never a burst in flight — the executor always
// completes submitted batches, so the handler wakes, answers, and only
// then sees the deadline.
func (c *conn) handleBatch() {
	defer func() {
		c.bw.Flush()
		c.nc.Close()
		c.srv.retire(c)
	}()
	for {
		body, err := wire.ReadFrame(c.br, c.in[:0], c.srv.cfg.MaxBody)
		c.in = body[:cap(body)]
		if err != nil {
			if err == io.EOF {
				return // clean close
			}
			if pe, ok := wire.IsProtocolError(err); ok {
				c.out = wire.AppendError(c.out[:0], pe.Code, pe.Msg)
				if wire.WriteFrame(c.bw, c.out) == nil {
					c.bw.Flush()
				}
			}
			return
		}
		start := time.Now()
		n := 0
		var fatal *wire.ProtocolError
		abort := false
		for {
			c.task(n).decode(c, body)
			n++
			if !c.nextFrameBuffered() {
				break
			}
			body, err = wire.ReadFrame(c.br, c.in[:0], c.srv.cfg.MaxBody)
			c.in = body[:cap(body)]
			if err != nil {
				// The frame was complete in the buffer, so only an
				// oversized announcement can land here; answer the
				// burst collected so far, then the typed error, then
				// close (framing is lost).
				fatal, _ = wire.IsProtocolError(err)
				abort = true
				break
			}
		}
		c.runBurst(n)
		if !c.writeBurst(n, start, fatal) {
			return
		}
		if abort {
			return
		}
	}
}

// runBurst submits the burst's executor-bound tasks as one unit and
// blocks until every one of them committed.
func (c *conn) runBurst(n int) {
	c.burst = c.burst[:0]
	for i := 0; i < n; i++ {
		if c.tasks[i].submitted {
			c.burst = append(c.burst, c.tasks[i])
		}
	}
	if len(c.burst) == 0 {
		return
	}
	c.pending.Store(int32(len(c.burst)))
	c.srv.batch.exec.SubmitAll(c.burst)
	<-c.doneCh
	for i := range c.burst {
		c.burst[i] = nil
	}
}

// writeBurst encodes and writes the burst's responses in arrival order,
// flushes unless the next burst is already buffered, and publishes
// telemetry. Returns false when the connection should close.
func (c *conn) writeBurst(n int, start time.Time, fatal *wire.ProtocolError) bool {
	werr := c.srv.batch.applier.WALErr()
	c.out = c.out[:0]
	for i := 0; i < n; i++ {
		mark := len(c.out)
		c.out = c.tasks[i].appendResponse(wire.BeginFrame(c.out), c, werr)
		if wire.FinishFrame(c.out[mark:]) != nil {
			c.out = wire.AppendError(wire.BeginFrame(c.out[:mark]), wire.ErrFrameTooLarge, "response exceeds frame limit")
			if wire.FinishFrame(c.out[mark:]) != nil {
				return false
			}
		}
	}
	if fatal != nil {
		mark := len(c.out)
		c.out = wire.AppendError(wire.BeginFrame(c.out), fatal.Code, fatal.Msg)
		if wire.FinishFrame(c.out[mark:]) != nil {
			return false
		}
	}
	if _, err := c.bw.Write(c.out); err != nil {
		return false
	}
	if !c.nextFrameBuffered() {
		if c.bw.Flush() != nil {
			return false
		}
	}
	d := time.Since(start)
	for i := 0; i < n; i++ {
		if c.tasks[i].decoded {
			c.stats.publish(c.tasks[i].op, d, c.th)
		}
	}
	return true
}
