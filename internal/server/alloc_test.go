// Allocation pins for the full serving path: one request over a real
// loopback socket — client encode, frame write, server read, decode,
// transaction, response encode, client decode — allocates nothing in the
// steady state beyond what the stored values themselves require (the
// AnyVar box of a write). Client and server run in one process here, so
// AllocsPerRun sees BOTH sides: these are end-to-end pins, the
// network-layer extension of the store conformance tests.
package server

import (
	"testing"

	"oestm/internal/core"
	"oestm/internal/stm"
)

func TestEndToEndAllocs(t *testing.T) {
	s := startServer(t, Config{Engine: "oestm", NewTM: func() stm.TM { return core.New() }, Shards: 8})
	c := dial(t, s)
	keys := []int64{1, 2, 3, 4}
	if err := c.MPut(keys, []int64{10, 20, 30, 40}); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		want float64
		op   func() error
	}{
		{"ping", 0, func() error { return c.Ping() }},
		{"get-hit", 0, func() error { _, _, err := c.Get(1); return err }},
		{"get-miss", 0, func() error { _, _, err := c.Get(999); return err }},
		{"put-overwrite", 1, func() error { _, err := c.Put(1, 99); return err }}, // the AnyVar value box
		{"remove-miss", 0, func() error { _, _, err := c.Remove(999); return err }},
		{"cam-refused", 0, func() error { _, err := c.CompareAndMove(1, 2, 12345); return err }},
		{"mget", 0, func() error { _, _, err := c.MGet(keys); return err }},
	}
	for _, tc := range cases {
		if err := tc.op(); err != nil { // warm every buffer and frame
			t.Fatalf("%s: %v", tc.name, err)
		}
		got := testing.AllocsPerRun(200, func() {
			if err := tc.op(); err != nil {
				t.Fatal(err)
			}
		})
		if got != tc.want {
			t.Errorf("%s: %v allocs per round trip, want %v", tc.name, got, tc.want)
		}
	}
}

// TestEndToEndAllocsWAL re-pins the same budgets with durability on:
// the WAL path — commit-lock handoff, record append into the batch
// buffer, group-commit flush — must add zero allocations once the
// buffers have grown. The only per-request costs stay the value boxes
// of the writes themselves.
func TestEndToEndAllocsWAL(t *testing.T) {
	s := startServer(t, Config{
		Engine: "oestm", NewTM: func() stm.TM { return core.New() },
		Shards: 8, WALDir: t.TempDir(), Fsync: false,
	})
	c := dial(t, s)
	keys := []int64{1, 2, 3, 4}
	vals := []int64{10, 20, 30, 40}
	if err := c.MPut(keys, vals); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		want float64
		op   func() error
	}{
		{"ping", 0, func() error { return c.Ping() }},
		{"get-hit", 0, func() error { _, _, err := c.Get(1); return err }},
		{"put-overwrite", 1, func() error { _, err := c.Put(1, 99); return err }}, // the AnyVar value box
		{"remove-miss", 0, func() error { _, _, err := c.Remove(999); return err }},
		{"cam-refused", 0, func() error { _, err := c.CompareAndMove(1, 2, 12345); return err }},
		{"mget", 0, func() error { _, _, err := c.MGet(keys); return err }},
		{"mput-overwrite", 4, func() error { return c.MPut(keys, vals) }}, // one box per stored value
	}
	for _, tc := range cases {
		if err := tc.op(); err != nil { // warm buffers, frames and the WAL batch
			t.Fatalf("%s: %v", tc.name, err)
		}
		got := testing.AllocsPerRun(200, func() {
			if err := tc.op(); err != nil {
				t.Fatal(err)
			}
		})
		if got != tc.want {
			t.Errorf("%s: %v allocs per round trip with WAL, want %v", tc.name, got, tc.want)
		}
	}
}

// TestEndToEndAllocsBatch re-pins the budgets under the speculative
// batch executor. Unpipelined clients send one-request bursts, which
// the executor runs on its solo fast path — no multi-version map, no
// worker handoff, a reused View on the dispatcher slot — so batch mode
// must hold the conn-mode budgets exactly: the only per-request
// allocation is the AnyVar box of a stored value. A regression here
// means the fast path fell off (every unpipelined client would pay the
// full speculation machinery per request).
func TestEndToEndAllocsBatch(t *testing.T) {
	s := startServer(t, Config{
		Engine: "oestm", NewTM: func() stm.TM { return core.New() },
		Shards: 8, Exec: ExecBatch, BatchWorkers: 4,
	})
	c := dial(t, s)
	keys := []int64{1, 2, 3, 4}
	if err := c.MPut(keys, []int64{10, 20, 30, 40}); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		want float64
		op   func() error
	}{
		{"ping", 0, func() error { return c.Ping() }},
		{"get-hit", 0, func() error { _, _, err := c.Get(1); return err }},
		{"get-miss", 0, func() error { _, _, err := c.Get(999); return err }},
		{"put-overwrite", 1, func() error { _, err := c.Put(1, 99); return err }}, // the AnyVar value box
		{"remove-miss", 0, func() error { _, _, err := c.Remove(999); return err }},
		{"cam-refused", 0, func() error { _, err := c.CompareAndMove(1, 2, 12345); return err }},
		{"mget", 0, func() error { _, _, err := c.MGet(keys); return err }},
	}
	for _, tc := range cases {
		if err := tc.op(); err != nil { // warm buffers, frames and the task pool
			t.Fatalf("%s: %v", tc.name, err)
		}
		got := testing.AllocsPerRun(200, func() {
			if err := tc.op(); err != nil {
				t.Fatal(err)
			}
		})
		if got != tc.want {
			t.Errorf("%s: %v allocs per round trip in batch mode, want %v", tc.name, got, tc.want)
		}
	}
}
