// Serving-layer tests for the commutative hot-key path: the Add/MAdd
// opcodes over a real socket, in both execution models, against every
// boost mode — plus the allocation pins of the boosted fast path.
package server

import (
	"bytes"
	"math/rand/v2"
	"runtime"
	"testing"

	"oestm/internal/core"
	"oestm/internal/stm"
	"oestm/internal/store"
	"oestm/internal/wire"
)

// TestAddRoundTripModes exercises Add/MAdd over the wire for every
// engine in every boost mode and in batch mode: sums must land exactly,
// reads must see them, and the stats payload must count the adds.
func TestAddRoundTripModes(t *testing.T) {
	type mode struct {
		name string
		cfg  func(Config) Config
	}
	modes := []mode{
		{"conn-off", func(c Config) Config { c.Boost = store.BoostOff; return c }},
		{"conn-auto", func(c Config) Config { c.Boost = store.BoostAuto; return c }},
		{"conn-on", func(c Config) Config { c.Boost = store.BoostOn; return c }},
		{"batch", func(c Config) Config { c.Exec = ExecBatch; c.BatchWorkers = 4; return c }},
	}
	for _, eng := range engines() {
		for _, m := range modes {
			t.Run(eng.name+"/"+m.name, func(t *testing.T) {
				s := startServer(t, m.cfg(Config{Engine: eng.name, NewTM: eng.newi, Shards: 8}))
				c := dial(t, s)

				// Create-from-zero, accumulate, go negative.
				for i := 0; i < 10; i++ {
					if err := c.Add(7, 3); err != nil {
						t.Fatal(err)
					}
				}
				if err := c.Add(7, -5); err != nil {
					t.Fatal(err)
				}
				if v, ok, err := c.Get(7); err != nil || !ok || v != 25 {
					t.Fatalf("Get(7) = %d,%v,%v want 25,true,nil", v, ok, err)
				}

				// Cross-shard MAdd composes atomically with existing state.
				if _, err := c.Put(100, 1000); err != nil {
					t.Fatal(err)
				}
				if err := c.MAdd([]int64{7, 100, 200}, []int64{5, -10, 2}); err != nil {
					t.Fatal(err)
				}
				vals, present, err := c.MGet([]int64{7, 100, 200})
				if err != nil {
					t.Fatal(err)
				}
				want := []int64{30, 990, 2}
				for i := range want {
					if !present[i] || vals[i] != want[i] {
						t.Fatalf("MGet[%d] = %d,%v want %d,true", i, vals[i], present[i], want[i])
					}
				}

				// Absolute ops override the counter state entirely.
				if _, err := c.Put(7, 1); err != nil {
					t.Fatal(err)
				}
				if err := c.Add(7, 1); err != nil {
					t.Fatal(err)
				}
				if v, ok, err := c.Get(7); err != nil || !ok || v != 2 {
					t.Fatalf("after Put+Add: Get(7) = %d,%v,%v want 2,true,nil", v, ok, err)
				}
				if _, _, err := c.Remove(7); err != nil {
					t.Fatal(err)
				}
				if _, ok, err := c.Get(7); err != nil || ok {
					t.Fatalf("after Remove: Get(7) present, want absent (err %v)", err)
				}

				var p wire.StatsPayload
				if err := c.Stats(&p); err != nil {
					t.Fatal(err)
				}
				if p.Adds != 15 { // 11 Add round trips, 1 MAdd of 3 deltas, 1 post-Put Add
					t.Errorf("stats adds = %d, want 15", p.Adds)
				}
				if m.name == "conn-on" && p.BoostedOps == 0 {
					t.Error("boost on: no boosted ops counted")
				}
				if m.name == "conn-off" && p.BoostedOps != 0 {
					t.Errorf("boost off: %d boosted ops counted", p.BoostedOps)
				}
			})
		}
	}
}

// addHeavyBody draws one request from an add-heavy hot-key mix. Deltas
// are strictly positive: a boosted overlay whose deltas sum to zero on a
// never-written key reads as absent (value and presence are base +
// overlay), while the read-modify-write path materializes a zero — the
// one deliberate semantic divergence of the split representation, so
// the equivalence stream stays off it.
func addHeavyBody(rng *rand.Rand, keys int64) []byte {
	key := func() int64 { return rng.Int64N(keys) }
	delta := func() int64 { return rng.Int64N(99) + 1 }
	var r wire.Request
	switch n := rng.IntN(100); {
	case n < 40:
		r = wire.Request{Op: wire.OpAdd, Key: key(), Val: delta()}
	case n < 55:
		r.Op = wire.OpMAdd
		for i := rng.IntN(3) + 2; i > 0; i-- {
			r.Keys = append(r.Keys, key())
			r.Vals = append(r.Vals, delta())
		}
	case n < 70:
		r = wire.Request{Op: wire.OpGet, Key: key()}
	case n < 78:
		r = wire.Request{Op: wire.OpPut, Key: key(), Val: delta()}
	case n < 85:
		r = wire.Request{Op: wire.OpRemove, Key: key()}
	case n < 95:
		r.Op = wire.OpMGet
		for i := rng.IntN(6) + 1; i > 0; i-- {
			r.Keys = append(r.Keys, key())
		}
	default:
		r = wire.Request{Op: wire.OpCompareAndMove, Key: key(), To: key(), Val: delta()}
	}
	return wire.AppendRequest(nil, &r)
}

// TestAddEquivalenceAcrossModes pins that the three executions of an
// add — boosted overlay, read-modify-write transaction, speculative
// blind delta — are observationally identical: seeded add-heavy bursts
// (with absolute ops interleaved, so promotion and demotion both churn)
// answered byte-identically by conn-off, conn-on and batch servers,
// ending in identical store state.
func TestAddEquivalenceAcrossModes(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(8))
	const keys = 16
	eng := engines()[0]
	servers := []*Server{
		startServer(t, Config{Engine: eng.name, NewTM: eng.newi, Shards: 8, Boost: store.BoostOff}),
		startServer(t, Config{Engine: eng.name, NewTM: eng.newi, Shards: 8, Boost: store.BoostOn}),
		startServer(t, Config{Engine: eng.name, NewTM: eng.newi, Shards: 8, Exec: ExecBatch, BatchWorkers: 4}),
	}
	names := []string{"conn-off", "conn-on", "batch"}
	rng := rand.New(rand.NewPCG(0xadd, 0xb0057))
	ncA, brA := rawDial(t, servers[0])
	ncB, brB := rawDial(t, servers[1])
	ncC, brC := rawDial(t, servers[2])
	for burst := 0; burst < 30; burst++ {
		n := rng.IntN(32) + 1
		bodies := make([][]byte, n)
		for i := range bodies {
			bodies[i] = addHeavyBody(rng, keys)
		}
		ra := sendBurst(t, ncA, brA, bodies)
		rb := sendBurst(t, ncB, brB, bodies)
		rc := sendBurst(t, ncC, brC, bodies)
		for i := range ra {
			if !bytes.Equal(ra[i], rb[i]) {
				t.Fatalf("burst %d response %d: %s diverges from %s:\n%x\n%x\nrequest %x",
					burst, i, names[1], names[0], rb[i], ra[i], bodies[i])
			}
			if !bytes.Equal(ra[i], rc[i]) {
				t.Fatalf("burst %d response %d: %s diverges from %s:\n%x\n%x\nrequest %x",
					burst, i, names[2], names[0], rc[i], ra[i], bodies[i])
			}
		}
	}
	all := make([]int64, keys)
	for k := range all {
		all[k] = int64(k)
	}
	req := wire.AppendRequest(nil, &wire.Request{Op: wire.OpMGet, Keys: all})
	ea := sendBurst(t, ncA, brA, [][]byte{req})
	eb := sendBurst(t, ncB, brB, [][]byte{req})
	ec := sendBurst(t, ncC, brC, [][]byte{req})
	if !bytes.Equal(ea[0], eb[0]) || !bytes.Equal(ea[0], ec[0]) {
		t.Fatalf("end states diverge:\nconn-off: %x\nconn-on:  %x\nbatch:    %x", ea[0], eb[0], ec[0])
	}
}

// TestBatchSingleHotKeyNoValidationFails is the batch-mode acceptance
// pin: pipelined bursts of adds all hammering ONE key — the workload
// that turns RMW puts into full dependency chains — must speculate with
// ZERO validation failures and zero re-executions, because blind deltas
// record no reads and never invalidate each other.
func TestBatchSingleHotKeyNoValidationFails(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(8))
	s := startServer(t, Config{
		Engine: "oestm", NewTM: func() stm.TM { return core.New() },
		Shards: 8, Exec: ExecBatch, BatchWorkers: 4, MaxBatch: 64,
	})
	nc, br := rawDial(t, s)
	const rounds, depth = 20, 32
	body := wire.AppendRequest(nil, &wire.Request{Op: wire.OpAdd, Key: 7, Val: 1})
	bodies := make([][]byte, depth)
	for i := range bodies {
		bodies[i] = body
	}
	for r := 0; r < rounds; r++ {
		for i, resp := range sendBurst(t, nc, br, bodies) {
			if len(resp) == 0 || wire.Status(resp[0]) != wire.StatusOK {
				t.Fatalf("round %d response %d not OK: %x", r, i, resp)
			}
		}
	}
	c := dial(t, s)
	if v, ok, err := c.Get(7); err != nil || !ok || v != rounds*depth {
		t.Fatalf("Get(7) = %d,%v,%v want %d,true,nil", v, ok, err, rounds*depth)
	}
	var p wire.StatsPayload
	if err := c.Stats(&p); err != nil {
		t.Fatal(err)
	}
	if p.SpecValidationFails != 0 {
		t.Errorf("single-hot-key adds caused %d validation fails, want 0", p.SpecValidationFails)
	}
	if p.SpecReexecs != 0 {
		t.Errorf("single-hot-key adds caused %d re-executions, want 0", p.SpecReexecs)
	}
	if p.SpecBatches == 0 || p.Adds != rounds*depth {
		t.Errorf("batches %d, adds %d (want adds %d)", p.SpecBatches, p.Adds, rounds*depth)
	}
}

// TestEndToEndAllocsAdd pins the allocation budgets of the add path
// end-to-end, per execution: the boosted overlay mutates an int64 in
// place — a whole client round trip allocates NOTHING — while the RMW
// control and the batch commit pay exactly the AnyVar box of the value
// they store.
func TestEndToEndAllocsAdd(t *testing.T) {
	newTM := func() stm.TM { return core.New() }
	madd := []int64{1, 2, 3, 4}
	deltas := []int64{1, 1, 1, 1}

	run := func(t *testing.T, s *Server, name string, want float64, op func() error) {
		t.Helper()
		if err := op(); err != nil { // warm buffers, promotion, staging
			t.Fatalf("%s: %v", name, err)
		}
		got := testing.AllocsPerRun(200, func() {
			if err := op(); err != nil {
				t.Fatal(err)
			}
		})
		if got != want {
			t.Errorf("%s: %v allocs per round trip, want %v", name, got, want)
		}
	}

	t.Run("conn-boosted", func(t *testing.T) {
		s := startServer(t, Config{Engine: "oestm", NewTM: newTM, Shards: 8, Boost: store.BoostOn})
		c := dial(t, s)
		run(t, s, "add-hot", 0, func() error { return c.Add(7, 1) })
		run(t, s, "get-hot", 0, func() error { _, _, err := c.Get(7); return err })
		run(t, s, "madd-hot", 0, func() error { return c.MAdd(madd, deltas) })
		run(t, s, "mget-hot", 0, func() error { _, _, err := c.MGet(madd); return err })
	})
	t.Run("conn-rmw", func(t *testing.T) {
		s := startServer(t, Config{Engine: "oestm", NewTM: newTM, Shards: 8, Boost: store.BoostOff})
		c := dial(t, s)
		run(t, s, "add-rmw", 1, func() error { return c.Add(7, 1) }) // the AnyVar value box
		run(t, s, "madd-rmw", 4, func() error { return c.MAdd(madd, deltas) })
	})
	t.Run("batch-solo", func(t *testing.T) {
		s := startServer(t, Config{Engine: "oestm", NewTM: newTM, Shards: 8, Exec: ExecBatch, BatchWorkers: 4})
		c := dial(t, s)
		run(t, s, "add-solo", 1, func() error { return c.Add(7, 1) }) // the AnyVar value box
		run(t, s, "madd-solo", 4, func() error { return c.MAdd(madd, deltas) })
	})
}
