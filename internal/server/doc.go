// Package server is the network front of the sharded transactional
// store: a TCP server speaking the length-prefixed binary protocol of
// internal/wire, plus the matching Client.
//
// # Request lifecycle
//
// One goroutine per connection owns everything that connection needs —
// an stm.Thread on the server's engine (with the configured contention
// policy installed), a store.Frame with pre-bound composed-operation
// closures, a wire.Request/Response pair, and reusable read/encode
// buffers — so a request in the steady state is: read frame (into the
// connection's buffer), decode (into the connection's request), run one
// relaxed transaction through the frame, encode (into the connection's
// buffer), write. No per-request goroutines, no per-request allocations
// beyond what the store's values require. Requests, not goroutines, are
// the unit of work: concurrency equals the number of connections, and a
// connection's requests execute in order (which is what makes pipelining
// sound — responses are returned in request order).
//
// Pipelined bursts are flushed once: the writer only flushes when the
// read buffer has no further complete request waiting.
//
// # Errors
//
// Malformed request bodies get a StatusErr response with the typed
// wire.ProtocolError code and the connection continues (framing is
// intact). An oversized announced frame length poisons the stream — the
// body was never read — so the server responds ErrFrameTooLarge and
// closes; a stream ending mid-frame is answered with ErrTruncated on the
// way down. Keys colliding with the store's sentinels are ErrKeyRange.
// When Config.MaxRetries bounds the per-request transaction retries,
// exhaustion is ErrRetryExhausted (the store is unchanged).
//
// # Stats
//
// OpStats merges telemetry across every connection the server has seen:
// per-opcode request counts and server-side latency histograms
// (stats.Histogram, merged associatively) and the engines' commit/abort
// counters with the per-cause abort breakdown. Connections publish their
// counters under a per-connection mutex after each request, so a stats
// scrape never races the request path (pinned by the -race CI job).
//
// # Shutdown
//
// Shutdown stops accepting, then interrupts every connection's next
// blocking read via a read deadline; handlers finish the requests
// already buffered (pipelined work is completed, responses flushed)
// and close. Idle connections close immediately. If the context expires
// first, remaining connections are closed hard.
//
//compose:hotpath
package server
