package server

import (
	"bufio"
	"net"
	"time"

	"oestm/internal/wire"
)

// Client is a connection to a compose-server: a thin, reusable-buffer
// wrapper over the wire protocol. A Client is owned by one goroutine (the
// closed-loop load generator runs one per worker); methods issue one
// request and block for its response. The protocol itself supports
// pipelining — see the raw-frame tests — but the closed-loop client has
// no use for it.
//
// Slice results (MGet) point into the client's reusable buffers and are
// valid until the next call.
type Client struct {
	nc   net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer
	req  wire.Request
	resp wire.Response
	out  []byte // request-encode buffer
	in   []byte // frame-read buffer
}

// Dial connects to a compose-server.
func Dial(addr string) (*Client, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewClient(nc), nil
}

// DialTimeout is Dial with a connect timeout.
func DialTimeout(addr string, d time.Duration) (*Client, error) {
	nc, err := net.DialTimeout("tcp", addr, d)
	if err != nil {
		return nil, err
	}
	return NewClient(nc), nil
}

// NewClient wraps an established connection.
func NewClient(nc net.Conn) *Client {
	return &Client{
		nc: nc,
		br: bufio.NewReaderSize(nc, 32<<10),
		bw: bufio.NewWriterSize(nc, 32<<10),
	}
}

// Close closes the connection.
func (c *Client) Close() error { return c.nc.Close() }

// roundTrip sends c.req and decodes the response into c.resp.
func (c *Client) roundTrip() error {
	c.out = wire.AppendRequest(wire.BeginFrame(c.out[:0]), &c.req)
	if err := wire.FinishFrame(c.out); err != nil {
		return err
	}
	if _, err := c.bw.Write(c.out); err != nil {
		return err
	}
	if err := c.bw.Flush(); err != nil {
		return err
	}
	body, err := wire.ReadFrame(c.br, c.in[:0], wire.MaxBody)
	c.in = body[:cap(body)]
	if err != nil {
		return err
	}
	return c.resp.Decode(c.req.Op, body)
}

// Pipeline issues reqs as one pipelined burst: every request is written
// and flushed before any response is read, and the i'th response is
// decoded into resps[i] (len(resps) must equal len(reqs); each Response
// value's slices are reused across calls). A batch-mode server receives
// the burst whole and executes it as one speculative batch; a conn-mode
// server serves it sequentially — either way responses come back in
// request order, so the two modes are indistinguishable here. Returns
// the first transport or decode error.
func (c *Client) Pipeline(reqs []wire.Request, resps []wire.Response) error {
	if len(reqs) != len(resps) {
		panic("server: Pipeline reqs/resps length mismatch")
	}
	for i := range reqs {
		c.out = wire.AppendRequest(wire.BeginFrame(c.out[:0]), &reqs[i])
		if err := wire.FinishFrame(c.out); err != nil {
			return err
		}
		if _, err := c.bw.Write(c.out); err != nil {
			return err
		}
	}
	if err := c.bw.Flush(); err != nil {
		return err
	}
	for i := range reqs {
		body, err := wire.ReadFrame(c.br, c.in[:0], wire.MaxBody)
		c.in = body[:cap(body)]
		if err != nil {
			return err
		}
		if err := resps[i].Decode(reqs[i].Op, body); err != nil {
			return err
		}
	}
	return nil
}

// Get returns the value under key and whether it is present.
func (c *Client) Get(key int64) (int64, bool, error) {
	c.req = wire.Request{Op: wire.OpGet, Key: key, Keys: c.req.Keys[:0], Vals: c.req.Vals[:0]}
	if err := c.roundTrip(); err != nil {
		return 0, false, err
	}
	return c.resp.Val, c.resp.Status == wire.StatusOK, nil
}

// Put stores val under key, reporting whether the key already existed.
func (c *Client) Put(key, val int64) (bool, error) {
	c.req = wire.Request{Op: wire.OpPut, Key: key, Val: val, Keys: c.req.Keys[:0], Vals: c.req.Vals[:0]}
	if err := c.roundTrip(); err != nil {
		return false, err
	}
	return c.resp.Flag, nil
}

// Remove deletes key, returning the removed value and whether the key
// was present.
func (c *Client) Remove(key int64) (int64, bool, error) {
	c.req = wire.Request{Op: wire.OpRemove, Key: key, Keys: c.req.Keys[:0], Vals: c.req.Vals[:0]}
	if err := c.roundTrip(); err != nil {
		return 0, false, err
	}
	return c.resp.Val, c.resp.Flag, nil
}

// CompareAndMove relocates the value under from to to iff it equals
// expect and to is absent, reporting whether the move happened.
func (c *Client) CompareAndMove(from, to, expect int64) (bool, error) {
	c.req = wire.Request{Op: wire.OpCompareAndMove, Key: from, To: to, Val: expect, Keys: c.req.Keys[:0], Vals: c.req.Vals[:0]}
	if err := c.roundTrip(); err != nil {
		return false, err
	}
	return c.resp.Flag, nil
}

// MGet reads keys as one atomic snapshot. The returned slices are the
// client's buffers, valid until the next call.
func (c *Client) MGet(keys []int64) (vals []int64, present []bool, err error) {
	c.req.Op = wire.OpMGet
	c.req.Keys = append(c.req.Keys[:0], keys...)
	c.req.Vals = c.req.Vals[:0]
	if err := c.roundTrip(); err != nil {
		return nil, nil, err
	}
	return c.resp.Vals, c.resp.Present, nil
}

// MPut stores vals[i] under keys[i] as one transaction.
func (c *Client) MPut(keys, vals []int64) error {
	c.req.Op = wire.OpMPut
	c.req.Keys = append(c.req.Keys[:0], keys...)
	c.req.Vals = append(c.req.Vals[:0], vals...)
	return c.roundTrip()
}

// Add applies one integer delta to key's value, creating the key from
// zero when absent.
func (c *Client) Add(key, delta int64) error {
	c.req = wire.Request{Op: wire.OpAdd, Key: key, Val: delta, Keys: c.req.Keys[:0], Vals: c.req.Vals[:0]}
	return c.roundTrip()
}

// MAdd applies deltas[i] to keys[i] as one atomic cross-shard
// composition.
func (c *Client) MAdd(keys, deltas []int64) error {
	c.req.Op = wire.OpMAdd
	c.req.Keys = append(c.req.Keys[:0], keys...)
	c.req.Vals = append(c.req.Vals[:0], deltas...)
	return c.roundTrip()
}

// Stats fetches the server's merged telemetry into p.
func (c *Client) Stats(p *wire.StatsPayload) error {
	c.req = wire.Request{Op: wire.OpStats, Keys: c.req.Keys[:0], Vals: c.req.Vals[:0]}
	if err := c.roundTrip(); err != nil {
		return err
	}
	return p.Decode(c.resp.Stats)
}

// Ping round-trips a no-op request.
func (c *Client) Ping() error {
	c.req = wire.Request{Op: wire.OpPing, Keys: c.req.Keys[:0], Vals: c.req.Vals[:0]}
	return c.roundTrip()
}
