package check

import (
	"oestm/internal/history"
)

// witnessSearch enumerates relax-serial witnesses of h: interleavings of
// the per-process event sequences that are relax-serial, legal, and
// respect <H. For each complete witness, accept is consulted; the search
// succeeds when accept returns true (accept == nil accepts the first
// witness). It returns whether a witness was accepted.
func witnessSearch(h history.History, specs map[string]history.Spec, accept func(history.History) bool) bool {
	h = h.RemoveAborted()
	procs := h.Procs()
	seqs := make([]history.History, len(procs))
	total := 0
	for i, p := range procs {
		seqs[i] = h.ByProc(p)
		total += len(seqs[i])
	}
	// Pre-pair each response event with its invocation argument
	// positionally (transactions run on one process, so pairing within
	// the per-process sequences is exact).
	args := make([][]any, len(procs))
	for i := range seqs {
		pairer := newArgPairer()
		args[i] = make([]any, len(seqs[i]))
		for j, e := range seqs[i] {
			switch e.Type {
			case history.InvokeEvent:
				pairer.invoke(e)
			case history.ResponseEvent:
				args[i][j] = pairer.respond(e)
			}
		}
	}
	pre := precedencePairs(h)

	pos := make([]int, len(procs))
	holder := map[string]string{}
	sims := map[string]history.Sim{}
	done := map[string]bool{}
	schedule := make(history.History, 0, total)

	var dfs func(placed int) bool
	dfs = func(placed int) bool {
		if placed == total {
			return accept == nil || accept(schedule)
		}
		for i := range procs {
			if pos[i] >= len(seqs[i]) {
				continue
			}
			e := seqs[i][pos[i]]
			// Feasibility of scheduling e next.
			switch e.Type {
			case history.BeginEvent:
				blocked := false
				for _, t := range pre[e.Tx] {
					if !done[t] {
						blocked = true
						break
					}
				}
				if blocked {
					continue
				}
			case history.AcquireEvent:
				if holder[e.Obj] != "" {
					continue
				}
			case history.ReleaseEvent:
				if holder[e.Obj] != e.Proc {
					continue
				}
			case history.ResponseEvent:
				if spec, have := specs[e.Obj]; have {
					sim, exists := sims[e.Obj]
					if !exists {
						sim = spec.New()
					}
					probe := sim.Clone()
					if !probe.Apply(e.Op, args[i][pos[i]], e.Val) {
						continue
					}
				}
			}
			// Apply e.
			var savedSim history.Sim
			var hadSim bool
			switch e.Type {
			case history.AcquireEvent:
				holder[e.Obj] = e.Proc
			case history.ReleaseEvent:
				holder[e.Obj] = ""
			case history.CommitEvent:
				done[e.Tx] = true
			case history.ResponseEvent:
				if spec, have := specs[e.Obj]; have {
					sim, exists := sims[e.Obj]
					if !exists {
						sim = spec.New()
					}
					savedSim, hadSim = sims[e.Obj], exists
					next := sim.Clone()
					next.Apply(e.Op, args[i][pos[i]], e.Val)
					sims[e.Obj] = next
				}
			}
			pos[i]++
			schedule = append(schedule, e)
			if dfs(placed + 1) {
				return true
			}
			// Undo e.
			schedule = schedule[:len(schedule)-1]
			pos[i]--
			switch e.Type {
			case history.AcquireEvent:
				holder[e.Obj] = ""
			case history.ReleaseEvent:
				holder[e.Obj] = e.Proc
			case history.CommitEvent:
				delete(done, e.Tx)
			case history.ResponseEvent:
				if hadSim {
					sims[e.Obj] = savedSim
				} else if savedSim == nil {
					delete(sims, e.Obj)
				}
			}
		}
		return false
	}
	return dfs(0)
}

// RelaxSerializable reports whether h admits a legal relax-serial witness
// equivalent to it with <H ⊆ <S (§II-B).
func RelaxSerializable(h history.History, specs map[string]history.Spec) bool {
	return witnessSearch(h, specs, nil)
}

// supOf returns Sup(C): the member committing last in h.
func supOf(h history.History, c []string) string {
	sup, best := "", -1
	for _, t := range c {
		if ci := h.CommitIndex(t); ci > best {
			best, sup = ci, t
		}
	}
	return sup
}

// isMember reports membership of t in c.
func isMember(c []string, t string) bool {
	for _, m := range c {
		if m == t {
			return true
		}
	}
	return false
}

// StronglyComposable reports Def. 3.1: h admits a relax-serial witness S
// in which no non-member transaction commits between the commits of two
// members of C.
func StronglyComposable(h history.History, c []string, specs map[string]history.Spec) bool {
	return witnessSearch(h, specs, func(s history.History) bool {
		return commitsConsecutive(s, c)
	})
}

// commitsConsecutive checks Def. 3.1's third condition on a complete
// witness: between any two member commits there is no outsider commit.
func commitsConsecutive(s history.History, c []string) bool {
	var order []string
	for _, e := range s {
		if e.Type == history.CommitEvent {
			order = append(order, e.Tx)
		}
	}
	first, last := -1, -1
	for i, t := range order {
		if isMember(c, t) {
			if first == -1 {
				first = i
			}
			last = i
		}
	}
	for i := first; i >= 0 && i <= last; i++ {
		if !isMember(c, order[i]) {
			return false
		}
	}
	return true
}

// WeaklyComposable reports Def. 3.2: h admits a relax-serial witness S in
// which, for every member t and every object o in ker(t), no non-member
// transaction operates on o between t's operations on o and Sup(C).
// Kernels are computed on h (they are properties of the protected sets of
// the original execution).
func WeaklyComposable(h history.History, c []string, specs map[string]history.Spec) bool {
	kers := map[string]map[string]bool{}
	clean := h.RemoveAborted()
	for _, t := range c {
		kers[t] = clean.Ker(t)
	}
	sup := supOf(clean, c)
	return witnessSearch(h, specs, func(s history.History) bool {
		return weakCondition(s, c, kers, sup)
	})
}

// weakCondition checks Def. 3.2's third condition on a complete witness.
func weakCondition(s history.History, c []string, kers map[string]map[string]bool, sup string) bool {
	supCommit := s.CommitIndex(sup)
	for _, t := range c {
		for o := range kers[t] {
			// Last operation of t on o in s.
			lastT := -1
			for i, e := range s {
				if e.Type == history.ResponseEvent && e.Tx == t && e.Obj == o {
					lastT = i
				}
			}
			if lastT == -1 {
				continue
			}
			// Sup's boundary on o: its last operation on o, or its commit.
			bound := supCommit
			for i, e := range s {
				if e.Type == history.ResponseEvent && e.Tx == sup && e.Obj == o && i > bound {
					bound = i
				}
			}
			for i := lastT + 1; i < bound; i++ {
				e := s[i]
				if e.Type == history.ResponseEvent && e.Obj == o && !isMember(c, e.Tx) {
					return false
				}
			}
		}
	}
	return true
}

// Outheritance reports Def. 4.1: for every t in C and every element in
// Pmin(t), no release of that element by t's process occurs between
// commit(t) and commit(Sup(C)) in h.
func Outheritance(h history.History, c []string) bool {
	h = h.RemoveAborted()
	sup := supOf(h, c)
	supCommit := h.CommitIndex(sup)
	if supCommit < 0 {
		return false
	}
	for _, t := range c {
		p := h.ProcOf(t)
		ct := h.CommitIndex(t)
		if ct < 0 {
			return false
		}
		for o := range h.Pmin(t) {
			for i := ct + 1; i < supCommit; i++ {
				e := h[i]
				if e.Type == history.ReleaseEvent && e.Proc == p && e.Obj == o {
					return false
				}
			}
		}
	}
	return true
}

// IsComposition reports whether c satisfies the structural definition of
// a composition of process p over h (§III): at least two committed
// transactions, all executed by one process, consecutive in that
// process's committed-transaction order, ending with Sup(C).
func IsComposition(h history.History, c []string) bool {
	if len(c) < 2 {
		return false
	}
	h = h.RemoveAborted()
	p := h.ProcOf(c[0])
	for _, t := range c {
		if h.ProcOf(t) != p || h.CommitIndex(t) < 0 {
			return false
		}
	}
	// Committed transactions of p in commit order.
	var order []string
	for _, e := range h {
		if e.Type == history.CommitEvent && e.Proc == p {
			order = append(order, e.Tx)
		}
	}
	// c must appear as a contiguous block in that order.
	for i := 0; i+len(c) <= len(order); i++ {
		match := true
		for j := range c {
			if order[i+j] != c[j] {
				match = false
				break
			}
		}
		if match {
			return true
		}
	}
	return false
}
