// Integration tests: run the real OE-STM engine with the history
// recorder installed and machine-check the produced histories against the
// paper's predicates — outheritance holds on every composition under
// OE-STM, is violated under E-STM mode, and Theorem 4.4's implication
// (outheritance ∧ relax-serializable ⇒ weakly composable) holds on the
// recorded executions.
package check_test

import (
	"testing"

	"oestm/internal/check"
	"oestm/internal/core"
	"oestm/internal/history"
	"oestm/internal/mvar"
	"oestm/internal/stm"
)

// runComposedScenario executes the paper's insertIfAbsent(x, y)
// composition on two boolean vars under the given engine, with an
// adversarial insert(y) interleaved between the two children on the
// first attempt, and returns the recorded history and compositions.
func runComposedScenario(t *testing.T, tm *core.TM) (history.History, [][]string) {
	t.Helper()
	rec := history.NewRecorder()
	tm.SetTracer(rec)
	xv, yv := mvar.New(false), mvar.New(false)
	rec.Label(xv, "x")
	rec.Label(yv, "y")

	th := stm.NewThread(tm)
	attempt := 0
	err := th.Atomic(stm.Elastic, func(tx stm.Tx) error {
		attempt++
		absent := false
		if err := th.Atomic(stm.Elastic, func(ctx stm.Tx) error {
			absent = !ctx.Read(yv).(bool)
			return nil
		}); err != nil {
			return err
		}
		if attempt == 1 {
			adv := stm.NewThread(tm)
			if err := adv.Atomic(stm.Regular, func(atx stm.Tx) error {
				atx.Write(yv, true)
				return nil
			}); err != nil {
				return err
			}
		}
		// Second child: insert(x) if y was absent, else a benign re-check
		// (so the composition always has two children).
		return th.Atomic(stm.Elastic, func(ctx stm.Tx) error {
			if absent {
				ctx.Write(xv, true)
			} else {
				_ = ctx.Read(xv)
			}
			return nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	return rec.History(), rec.Compositions()
}

func TestRecordedOESTMSatisfiesOutheritance(t *testing.T) {
	h, comps := runComposedScenario(t, core.New())
	if !check.WellFormed(h) {
		t.Fatalf("recorded history ill-formed:\n%s", h)
	}
	if !check.RelaxSerial(h) {
		t.Fatalf("recorded history not relax-serial:\n%s", h)
	}
	if len(comps) == 0 {
		t.Fatal("no compositions recorded")
	}
	for _, c := range comps {
		if !check.IsComposition(h, c) {
			t.Fatalf("recorded children %v do not form a composition in:\n%s", c, h)
		}
		if !check.Outheritance(h, c) {
			t.Fatalf("OE-STM execution violates outheritance for %v:\n%s", c, h)
		}
	}
}

func TestRecordedESTMViolatesOutheritance(t *testing.T) {
	h, comps := runComposedScenario(t, core.NewWithoutOutheritance())
	if len(comps) == 0 {
		t.Fatal("no compositions recorded")
	}
	violated := false
	for _, c := range comps {
		if !check.Outheritance(h, c) {
			violated = true
		}
	}
	if !violated {
		t.Fatalf("E-STM composition unexpectedly satisfies outheritance:\n%s", h)
	}
}

// TestTheorem44OnRecordedExecution checks the sufficiency theorem on the
// real engine's output: the recorded OE-STM history satisfies
// outheritance and is relax-serializable, therefore it must be weakly
// composable with respect to every recorded composition.
func TestTheorem44OnRecordedExecution(t *testing.T) {
	h, comps := runComposedScenario(t, core.New())
	specs := map[string]history.Spec{
		"x": history.RegisterSpec{Init: false},
		"y": history.RegisterSpec{Init: false},
	}
	if !check.RelaxSerializable(h, specs) {
		t.Fatalf("recorded history not relax-serializable:\n%s", h)
	}
	for _, c := range comps {
		if !check.Outheritance(h, c) {
			t.Fatalf("outheritance broken for %v", c)
		}
		if !check.WeaklyComposable(h, c, specs) {
			t.Fatalf("Theorem 4.4 violated on recorded execution for %v:\n%s", c, h)
		}
	}
}

// TestRecorderBalancesHolds: every acquire in a recorded history has a
// matching release (the engine releases everything at commit), so no
// element remains held at the end.
func TestRecorderBalancesHolds(t *testing.T) {
	for _, mk := range []func() *core.TM{core.New, core.NewWithoutOutheritance} {
		h, _ := runComposedScenario(t, mk())
		held := map[string]int{}
		for _, e := range h {
			switch e.Type {
			case history.AcquireEvent:
				held[e.Proc+"/"+e.Obj]++
			case history.ReleaseEvent:
				held[e.Proc+"/"+e.Obj]--
			}
		}
		for k, n := range held {
			if n != 0 {
				t.Fatalf("unbalanced hold %s: %d in\n%s", k, n, h)
			}
		}
	}
}

// TestRecorderCompositionShape: children are recorded in execution order
// and the composition's Sup is the last child.
func TestRecorderCompositionShape(t *testing.T) {
	h, comps := runComposedScenario(t, core.New())
	for _, c := range comps {
		if len(c) != 2 {
			t.Fatalf("composition %v, want 2 children", c)
		}
		if h.CommitIndex(c[0]) > h.CommitIndex(c[1]) {
			t.Fatalf("children out of commit order: %v", c)
		}
	}
}
