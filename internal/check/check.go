// Package check implements machine-checkable versions of the paper's
// definitions: relax-seriality, legality, (relax-)serializability (§II),
// strong and weak composability (§III, Defs. 3.1/3.2) and outheritance
// (§IV, Def. 4.1). The theorem examples of the paper — the §II-B history,
// Fig. 3's construction for Theorem 4.2, and Theorem 4.3's extension —
// are verified in this package's tests, and instrumented OE-STM runs are
// checked against Def. 4.1 end to end.
//
// Interpretation notes (the paper's formalism leaves two points open; we
// fix them as follows and the paper's own examples confirm the reading):
//
//  1. Witness equivalence. A witness history S for relax-serializability
//     or composability preserves each process's full event subsequence
//     (operations and acquire/release brackets and begin/commit order):
//     S is an interleaving of the per-process sequences of H. This is
//     what makes Theorem 4.2's proof go through — the commit of t2 is
//     pinned between the two protected sections of t3 by the element
//     bracket structure.
//
//  2. Transaction order in S|o (Def. 3.2). t precedes t' in S|o iff some
//     operation of t on o precedes some operation of t' on o; sup(C) is
//     positioned by its commit event when it has no operation on o later
//     than the candidate's.
//
// All searches are exhaustive over interleavings and therefore
// exponential; they are meant for the small histories of the paper's
// proofs and for spot-checking instrumented executions, not for bulk
// verification.
package check

import (
	"oestm/internal/history"
)

// RelaxSerial reports whether h is relax-serial (§II-B): for every
// protection element, the acquire/release events form matching
// non-interleaved pairs starting with an acquire — at most one process
// holds an element at any time, and only the holder releases it.
func RelaxSerial(h history.History) bool {
	holder := map[string]string{}
	for _, e := range h {
		switch e.Type {
		case history.AcquireEvent:
			if holder[e.Obj] != "" {
				return false
			}
			holder[e.Obj] = e.Proc
		case history.ReleaseEvent:
			if holder[e.Obj] != e.Proc {
				return false
			}
			holder[e.Obj] = ""
		}
	}
	return true
}

// WellFormed checks the bracket discipline of §II-A on h: every
// operation's invocation and response lie between an acquisition of the
// object's protection element by the operation's process and the next
// matching release, and no acquire/release occurs between a transaction's
// last response and its commit... the latter is relaxed here to permit
// outheritance-style late releases, which the paper introduces exactly
// for that purpose.
func WellFormed(h history.History) bool {
	held := map[string]map[string]bool{} // proc -> element set
	for _, e := range h {
		switch e.Type {
		case history.AcquireEvent:
			if held[e.Proc] == nil {
				held[e.Proc] = map[string]bool{}
			}
			if held[e.Proc][e.Obj] {
				return false // re-acquire while held
			}
			held[e.Proc][e.Obj] = true
		case history.ReleaseEvent:
			if !held[e.Proc][e.Obj] {
				return false
			}
			delete(held[e.Proc], e.Obj)
		case history.InvokeEvent, history.ResponseEvent:
			if !held[e.Proc][e.Obj] {
				return false // operation outside a protected section
			}
		}
	}
	return true
}

// Legal reports whether the operations of h, taken object by object in
// history order, satisfy the objects' serial specifications. h must
// represent one candidate sequential order (e.g. a witness produced by
// the searches below, or a serial concatenation).
func Legal(h history.History, specs map[string]history.Spec) bool {
	sims := map[string]history.Sim{}
	pending := newArgPairer()
	for _, e := range h {
		switch e.Type {
		case history.InvokeEvent:
			pending.invoke(e)
		case history.ResponseEvent:
			arg := pending.respond(e)
			sim, ok := sims[e.Obj]
			if !ok {
				spec, have := specs[e.Obj]
				if !have {
					continue // unspecified objects accept anything
				}
				sim = spec.New()
				sims[e.Obj] = sim
			}
			if !sim.Apply(e.Op, arg, e.Val) {
				return false
			}
		}
	}
	return true
}

// argPairer matches response events to the arguments of their invocation
// events positionally (FIFO per transaction/object/operation), which is
// how the model pairs them; matching by value would conflate identical
// operations (e.g. two writes returning "ok").
type argPairer struct {
	queues map[string][]any
}

func newArgPairer() *argPairer { return &argPairer{queues: map[string][]any{}} }

func pairKey(e history.Event) string { return e.Tx + "\x00" + e.Obj + "\x00" + e.Op }

// invoke records the argument of an invocation event.
func (p *argPairer) invoke(e history.Event) {
	k := pairKey(e)
	p.queues[k] = append(p.queues[k], e.Val)
}

// respond pops the argument for a response event (nil if unmatched).
func (p *argPairer) respond(e history.Event) any {
	k := pairKey(e)
	q := p.queues[k]
	if len(q) == 0 {
		return nil
	}
	arg := q[0]
	p.queues[k] = q[1:]
	return arg
}

// precedencePairs returns <H over committed transactions: t <H u iff
// commit(t) precedes begin(u).
func precedencePairs(h history.History) map[string][]string {
	committed := h.Committed()
	out := map[string][]string{}
	for t := range committed {
		for u := range committed {
			if t != u && h.Precedes(t, u) {
				out[u] = append(out[u], t)
			}
		}
	}
	return out
}

// Serializable reports whether h is (strictly) serializable: there is a
// legal serial order of its committed transactions that respects <H.
func Serializable(h history.History, specs map[string]history.Spec) bool {
	h = h.RemoveAborted()
	committed := h.Committed()
	var txs []string
	for _, t := range h.Transactions() {
		if committed[t] {
			txs = append(txs, t)
		}
	}
	pre := precedencePairs(h)
	ops := map[string][]history.OpCall{}
	for _, t := range txs {
		ops[t] = h.OpsOf(t)
	}
	used := make(map[string]bool, len(txs))
	sims := map[string]history.Sim{}
	var dfs func(placed int) bool
	dfs = func(placed int) bool {
		if placed == len(txs) {
			return true
		}
		for _, t := range txs {
			if used[t] {
				continue
			}
			ok := true
			for _, before := range pre[t] {
				if !used[before] {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			// Apply t's ops tentatively.
			saved := map[string]history.Sim{}
			legal := true
			for _, c := range ops[t] {
				spec, have := specs[c.Obj]
				if !have {
					continue
				}
				sim, exists := sims[c.Obj]
				if !exists {
					sim = spec.New()
					sims[c.Obj] = sim
				}
				if _, savedAlready := saved[c.Obj]; !savedAlready {
					saved[c.Obj] = sim.Clone()
				}
				if !sims[c.Obj].Apply(c.Op, c.Arg, c.Ret) {
					legal = false
					break
				}
			}
			if legal {
				used[t] = true
				if dfs(placed + 1) {
					return true
				}
				used[t] = false
			}
			for obj, sim := range saved {
				sims[obj] = sim
			}
		}
		return false
	}
	return dfs(0)
}
