// Theorem and example tests: every history the paper uses in its formal
// development is encoded literally and checked against the definitions.
package check_test

import (
	"testing"

	"oestm/internal/check"
	"oestm/internal/history"
)

// The example histories live in examples.go so the compose-check command
// can verify them too; the tests below exercise those library values.
func sectionIIBHistory() history.History     { return check.SectionIIBHistory() }
func registerSpecs() map[string]history.Spec { return check.SectionIIBSpecs() }

func TestSectionIIBExample(t *testing.T) {
	h := sectionIIBHistory()
	specs := registerSpecs()
	if !check.RelaxSerial(h) {
		t.Fatal("the §II-B history must be relax-serial")
	}
	if !check.WellFormed(h) {
		t.Fatal("the §II-B history must be well-formed")
	}
	if check.Serializable(h, specs) {
		t.Fatal("the §II-B history must NOT be serializable")
	}
	if !check.RelaxSerializable(h, specs) {
		t.Fatal("the §II-B history must be relax-serializable")
	}
}

func fig3History() history.History       { return check.Fig3History() }
func fig3Specs() map[string]history.Spec { return check.Fig3Specs() }

// TestTheorem42 verifies the paper's Theorem 4.2 on its own construction:
// Fig. 3's history satisfies outheritance with respect to C = {t1, t3}
// yet is not strongly composable — and, per Theorem 4.4, it is weakly
// composable.
func TestTheorem42(t *testing.T) {
	h := fig3History()
	specs := fig3Specs()
	c := []string{"t1", "t3"}

	if !check.WellFormed(h) {
		t.Fatal("Fig. 3 history must be well-formed")
	}
	if !check.RelaxSerial(h) {
		t.Fatal("Fig. 3 history must be relax-serial")
	}
	if !check.IsComposition(h, c) {
		t.Fatal("C = {t1, t3} must be a composition of p1")
	}
	if !check.Outheritance(h, c) {
		t.Fatal("Fig. 3 history must satisfy outheritance w.r.t. C")
	}
	if check.Serializable(h, specs) {
		t.Fatal("Fig. 3 history must not be serializable (t2 interleaves t3's sections)")
	}
	if !check.RelaxSerializable(h, specs) {
		t.Fatal("Fig. 3 history must be relax-serializable")
	}
	if check.StronglyComposable(h, c, specs) {
		t.Fatal("Theorem 4.2: Fig. 3 history must NOT be strongly composable")
	}
	if !check.WeaklyComposable(h, c, specs) {
		t.Fatal("Theorem 4.4: Fig. 3 history must be weakly composable")
	}
}

// TestFig3Kernels pins the protected-set computations behind Theorem 4.2:
// Pmin(t1) = {x} (outherited), Pmin(t3) = ∅ (elastic-style transient
// sections).
func TestFig3Kernels(t *testing.T) {
	h := fig3History()
	if p := h.Pmin("t1"); !p["x"] || len(p) != 1 {
		t.Fatalf("Pmin(t1) = %v, want {x}", p)
	}
	if p := h.Pmin("t3"); len(p) != 0 {
		t.Fatalf("Pmin(t3) = %v, want empty", p)
	}
	// In the paper's Fig. 3 the release <r(2), p2> follows <commit(t2),
	// p2>, so l(c) is still protected when t2 commits.
	if p := h.Pmin("t2"); !p["c"] || len(p) != 1 {
		t.Fatalf("Pmin(t2) = %v, want {c}", p)
	}
}

func theorem43History() history.History { return check.Theorem43History() }

// TestTheorem43 verifies necessity: breaking outheritance by one early
// release yields a history that is not weakly composable.
func TestTheorem43(t *testing.T) {
	h := theorem43History()
	specs := check.Theorem43Specs()
	c := check.Theorem43Composition()

	if !check.RelaxSerial(h) {
		t.Fatal("the construction must be relax-serial")
	}
	if !check.IsComposition(h, c) {
		t.Fatal("C = {t1, t2} must be a composition of p1")
	}
	if check.Outheritance(h, c) {
		t.Fatal("the early release must break outheritance")
	}
	if !check.RelaxSerializable(h, specs) {
		t.Fatal("the construction must still be relax-serializable")
	}
	if check.WeaklyComposable(h, c, specs) {
		t.Fatal("Theorem 4.3: the construction must NOT be weakly composable")
	}
}

// TestTheorem44OnOutheritingVariant rebuilds the Theorem 4.3 scenario
// WITH outheritance (no early release; t3's increment happens after the
// composition ends) and checks weak composability — the sufficiency
// direction on a concrete history.
func TestTheorem44OnOutheritingVariant(t *testing.T) {
	h := history.NewBuilder().
		Begin("t1", "p1").
		Acq("t1", "c").
		Op("t1", "c", "inc", nil, 1).
		Commit("t1").
		Begin("t2", "p1").
		Acq("t2", "x").
		Op("t2", "x", "write", 9, "ok").
		Commit("t2").
		Rel("p1", "c"). // released only after Sup(C) committed
		RelTx("t2", "x").
		Begin("t3", "p2").
		Acq("t3", "c").
		Op("t3", "c", "inc", nil, 2).
		Commit("t3").
		RelTx("t3", "c").
		History()
	specs := map[string]history.Spec{"c": history.CounterSpec{}, "x": history.RegisterSpec{Init: 0}}
	c := []string{"t1", "t2"}

	if !check.RelaxSerial(h) || !check.IsComposition(h, c) {
		t.Fatal("setup broken")
	}
	if !check.Outheritance(h, c) {
		t.Fatal("this variant must satisfy outheritance")
	}
	if !check.RelaxSerializable(h, specs) {
		t.Fatal("variant must be relax-serializable")
	}
	if !check.WeaklyComposable(h, c, specs) {
		t.Fatal("Theorem 4.4: outheritance + relax-serializability must give weak composability")
	}
}

func TestRelaxSerialRejectsInterleavedSections(t *testing.T) {
	h := history.NewBuilder().
		Begin("t1", "p1").
		Begin("t2", "p2").
		Acq("t1", "x").
		Acq("t2", "x"). // acquire while held: not relax-serial
		History()
	if check.RelaxSerial(h) {
		t.Fatal("interleaved sections must not be relax-serial")
	}
}

func TestRelaxSerialRejectsForeignRelease(t *testing.T) {
	h := history.NewBuilder().
		Begin("t1", "p1").
		Begin("t2", "p2").
		Acq("t1", "x").
		RelTx("t2", "x"). // release by non-holder
		History()
	if check.RelaxSerial(h) {
		t.Fatal("release by a non-holder must not be relax-serial")
	}
}

func TestWellFormedRejectsNakedOp(t *testing.T) {
	h := history.NewBuilder().
		Begin("t1", "p1").
		Op("t1", "x", "read", nil, 0). // no acquire
		History()
	if check.WellFormed(h) {
		t.Fatal("operation outside a protected section must be ill-formed")
	}
}

func TestSerializableSimpleCases(t *testing.T) {
	specs := map[string]history.Spec{"x": history.RegisterSpec{Init: 0}}
	// Sequential write-then-read: serializable.
	h := history.NewBuilder().
		Begin("t1", "p1").
		Acq("t1", "x").
		Op("t1", "x", "write", 1, "ok").
		Commit("t1").
		RelTx("t1", "x").
		Begin("t2", "p1").
		Acq("t2", "x").
		Op("t2", "x", "read", nil, 1).
		Commit("t2").
		RelTx("t2", "x").
		History()
	if !check.Serializable(h, specs) {
		t.Fatal("sequential history must be serializable")
	}
	// A read that matches no serial order: not serializable.
	bad := history.NewBuilder().
		Begin("t1", "p1").
		Acq("t1", "x").
		Op("t1", "x", "read", nil, 42). // 42 was never written
		Commit("t1").
		RelTx("t1", "x").
		History()
	if check.Serializable(bad, specs) {
		t.Fatal("impossible read must not be serializable")
	}
	if check.RelaxSerializable(bad, specs) {
		t.Fatal("impossible read must not be relax-serializable either")
	}
}

func TestPrecedenceRespectedInWitness(t *testing.T) {
	specs := map[string]history.Spec{"x": history.RegisterSpec{Init: 0}}
	// t1 (p1) commits before t2 (p2) begins; t2 reads 0 although t1 wrote
	// 1 — <H forbids reordering, so nothing is serializable here.
	h := history.NewBuilder().
		Begin("t1", "p1").
		Acq("t1", "x").
		Op("t1", "x", "write", 1, "ok").
		Commit("t1").
		RelTx("t1", "x").
		Begin("t2", "p2").
		Acq("t2", "x").
		Op("t2", "x", "read", nil, 0).
		Commit("t2").
		RelTx("t2", "x").
		History()
	if check.Serializable(h, specs) {
		t.Fatal("<H must forbid reordering t2 before t1")
	}
	if check.RelaxSerializable(h, specs) {
		t.Fatal("<H must forbid the relax-serial witness too")
	}
}

func TestIsComposition(t *testing.T) {
	h := fig3History()
	if check.IsComposition(h, []string{"t1"}) {
		t.Fatal("singleton compositions are excluded (|C| >= 2)")
	}
	if check.IsComposition(h, []string{"t1", "t2"}) {
		t.Fatal("members of different processes are not a composition")
	}
	if !check.IsComposition(h, []string{"t1", "t3"}) {
		t.Fatal("{t1, t3} is a composition of p1")
	}
}
