package check

import "oestm/internal/history"

// This file encodes, as library values, the histories the paper uses in
// its formal development, so that both the test suite and the
// compose-check command can verify them.

// SectionIIBHistory returns the example of §II-B: a history that is
// relax-serial but not serializable. Objects o1, o2, o3 are registers
// (initially 0); the values force t1 before t2 on o1 and t2 before t1 on
// o3, which forbids any serial order.
func SectionIIBHistory() history.History {
	return history.NewBuilder().
		Begin("t1", "p1").
		Begin("t2", "p2").
		Acq("t1", "o1").
		Op("t1", "o1", "read", nil, 0).
		Acq("t1", "o2").
		Op("t1", "o2", "read", nil, 0).
		RelTx("t1", "o1").
		Acq("t2", "o1").
		Op("t2", "o1", "write", 1, "ok").
		Acq("t2", "o3").
		Op("t2", "o3", "read", nil, 0).
		RelTx("t2", "o1").
		RelTx("t2", "o3").
		Acq("t1", "o3").
		Op("t1", "o3", "write", 1, "ok").
		Commit("t2").
		Commit("t1").
		RelTx("t1", "o2").
		RelTx("t1", "o3").
		History()
}

// SectionIIBSpecs returns the serial specifications for
// SectionIIBHistory.
func SectionIIBSpecs() map[string]history.Spec {
	return map[string]history.Spec{
		"o1": history.RegisterSpec{Init: 0},
		"o2": history.RegisterSpec{Init: 0},
		"o3": history.RegisterSpec{Init: 0},
	}
}

// Fig3History returns the literal history of Theorem 4.2's proof
// (Fig. 3): x is a register, c a counter; composition C = {t1, t3}
// executed by p1; t1's protected set is outherited until after t3
// commits, yet t2's increment is pinned between t3's two protected
// sections, so no strongly composable witness exists.
func Fig3History() history.History {
	return history.NewBuilder().
		Begin("t1", "p1").
		Acq("t1", "x").
		Op("t1", "x", "write", 2, "ok").
		Commit("t1").
		Begin("t3", "p1").
		Acq("t3", "c").
		Op("t3", "c", "inc", nil, 1).
		RelTx("t3", "c").
		Begin("t2", "p2").
		Acq("t2", "c").
		Op("t2", "c", "inc", nil, 2).
		Commit("t2").
		RelTx("t2", "c").
		Acq("t3", "c").
		Op("t3", "c", "inc", nil, 3).
		RelTx("t3", "c").
		Op("t3", "x", "read", nil, 2).
		Commit("t3").
		RelTx("t1", "x").
		History()
}

// Fig3Specs returns the serial specifications for Fig3History.
func Fig3Specs() map[string]history.Spec {
	return map[string]history.Spec{
		"x": history.RegisterSpec{Init: 0},
		"c": history.CounterSpec{},
	}
}

// Fig3Composition returns the composition C = {t1, t3} of Fig. 3.
func Fig3Composition() []string { return []string{"t1", "t3"} }

// Theorem43History realises the constructive proof of Theorem 4.3 on a
// counter: C = {t1, t2} with t2 = Sup(C) still live when l(c) — which is
// in Pmin(t1) — is released early (the event that breaks outheritance).
// The outsider t3 then slips its increment between the members, and the
// fixed return values (1, 2, 3) pin every witness to that order, so the
// history is not weakly composable.
func Theorem43History() history.History {
	return history.NewBuilder().
		Begin("t1", "p1").
		Acq("t1", "c").
		Op("t1", "c", "inc", nil, 1).
		Commit("t1").
		Begin("t2", "p1").
		Rel("p1", "c"). // the early release: outheritance violated
		Begin("t3", "p2").
		Acq("t3", "c").
		Op("t3", "c", "inc", nil, 2).
		Commit("t3").
		RelTx("t3", "c").
		Acq("t2", "c").
		Op("t2", "c", "inc", nil, 3).
		Commit("t2").
		RelTx("t2", "c").
		History()
}

// Theorem43Specs returns the serial specifications for Theorem43History.
func Theorem43Specs() map[string]history.Spec {
	return map[string]history.Spec{"c": history.CounterSpec{}}
}

// Theorem43Composition returns the composition C = {t1, t2}.
func Theorem43Composition() []string { return []string{"t1", "t2"} }
