package check_test

import (
	"fmt"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"oestm/internal/check"
	"oestm/internal/history"
)

// randomHistory builds a small two-process history of register
// transactions with minimal bracketing (each operation wrapped in its own
// acquire/release), which is always well-formed; values are arbitrary, so
// the history may or may not be serializable.
func randomHistory(seed uint64) (history.History, map[string]history.Spec) {
	rng := rand.New(rand.NewPCG(seed, 17))
	b := history.NewBuilder()
	objs := []string{"x", "y"}
	specs := map[string]history.Spec{
		"x": history.RegisterSpec{Init: 0},
		"y": history.RegisterSpec{Init: 0},
	}
	// Two processes, each with one or two transactions of 1-2 ops; the
	// builder interleaves them at transaction boundaries chosen by rng.
	type txPlan struct {
		name string
		proc string
		ops  int
	}
	var plans []txPlan
	id := 0
	for p := 1; p <= 2; p++ {
		for t := 0; t < 1+int(rng.IntN(2)); t++ {
			id++
			plans = append(plans, txPlan{
				name: fmt.Sprintf("t%d", id),
				proc: fmt.Sprintf("p%d", p),
				ops:  1 + int(rng.IntN(2)),
			})
		}
	}
	// Random interleaving at whole-transaction granularity keeps the
	// history simple; concurrency comes from values, not event overlap.
	rng.Shuffle(len(plans), func(i, j int) { plans[i], plans[j] = plans[j], plans[i] })
	for _, pl := range plans {
		b.Begin(pl.name, pl.proc)
		for o := 0; o < pl.ops; o++ {
			obj := objs[rng.IntN(len(objs))]
			b.Acq(pl.name, obj)
			if rng.IntN(2) == 0 {
				b.Op(pl.name, obj, "write", int(rng.IntN(2)), "ok")
			} else {
				b.Op(pl.name, obj, "read", nil, int(rng.IntN(2)))
			}
			b.RelTx(pl.name, obj)
		}
		b.Commit(pl.name)
	}
	return b.History(), specs
}

// TestSerializableImpliesRelaxSerializable: a serial witness is also a
// relax-serial witness, so the implication must hold on any history.
func TestSerializableImpliesRelaxSerializable(t *testing.T) {
	f := func(seed uint64) bool {
		h, specs := randomHistory(seed)
		if !check.Serializable(h, specs) {
			return true // implication vacuous
		}
		return check.RelaxSerializable(h, specs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestRandomHistoriesAreWellFormedAndRelaxSerial validates the generator
// and the structural checkers together.
func TestRandomHistoriesAreWellFormedAndRelaxSerial(t *testing.T) {
	f := func(seed uint64) bool {
		h, _ := randomHistory(seed)
		return check.WellFormed(h) && check.RelaxSerial(h)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestWitnessRespectsElementExclusivity: a history whose only legal op
// order requires interleaving two processes inside one element section
// must be rejected — the witness search may not split sections.
func TestWitnessRespectsElementExclusivity(t *testing.T) {
	// p1 holds x's element across both its operations and must read 1
	// between writing 0... make p2's write of 1 the only way to produce
	// the read — but p2 cannot acquire x while p1 holds it.
	h := history.NewBuilder().
		Begin("t1", "p1").
		Acq("t1", "x").
		Op("t1", "x", "write", 0, "ok").
		Op("t1", "x", "read", nil, 1). // needs p2's write in between
		Commit("t1").
		RelTx("t1", "x").
		Begin("t2", "p2").
		Acq("t2", "x").
		Op("t2", "x", "write", 1, "ok").
		Commit("t2").
		RelTx("t2", "x").
		History()
	specs := map[string]history.Spec{"x": history.RegisterSpec{Init: 0}}
	if check.RelaxSerializable(h, specs) {
		t.Fatal("witness search interleaved a protected section")
	}
}

// TestWitnessAllowsSectionInterleaving is the positive control: the same
// values with the section split into two holds are accepted.
func TestWitnessAllowsSectionInterleaving(t *testing.T) {
	// t2 runs concurrently with t1 (its begin precedes t1's commit), so
	// <H does not order them and the witness may slot t2's section
	// between t1's two holds.
	h := history.NewBuilder().
		Begin("t1", "p1").
		Acq("t1", "x").
		Op("t1", "x", "write", 0, "ok").
		RelTx("t1", "x"). // release between the two ops
		Begin("t2", "p2").
		Acq("t2", "x").
		Op("t2", "x", "write", 1, "ok").
		Commit("t2").
		RelTx("t2", "x").
		Acq("t1", "x").
		Op("t1", "x", "read", nil, 1).
		Commit("t1").
		RelTx("t1", "x").
		History()
	specs := map[string]history.Spec{"x": history.RegisterSpec{Init: 0}}
	if !check.RelaxSerializable(h, specs) {
		t.Fatal("split sections must allow the interleaving")
	}
	// And it is exactly the relaxed case: not serializable at
	// transaction granularity... t2 between t1's ops is required, so no
	// serial order exists.
	if check.Serializable(h, specs) {
		t.Fatal("this history must not be serializable")
	}
}
