// Package stats provides the small numeric helpers the harness uses to
// aggregate repeated benchmark runs.
package stats

import "math"

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Stddev returns the sample standard deviation of xs (0 for fewer than
// two samples).
func Stddev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(xs)-1))
}

// Min returns the minimum of xs (0 for empty input).
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs (0 for empty input).
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}
