package stats

import (
	"math/rand/v2"
	"testing"
	"time"
)

// TestHistogramBinaryRoundTrip pins that decode(encode(h)) reproduces h
// exactly — counts, total, and max — for empty, tiny, and dense
// histograms, and that the encoding is self-delimiting (concatenated
// histograms decode in sequence).
func TestHistogramBinaryRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 9))
	hs := make([]Histogram, 4)
	for i := 0; i < 2000; i++ {
		hs[1].RecordNS(uint64(rng.Int64N(1 << 20)))
		hs[2].RecordNS(uint64(rng.Int64N(1 << 62)))
	}
	hs[3].RecordNS(0) // all-zero samples: count > 0 with max == 0 is legal

	var buf []byte
	for i := range hs {
		buf = hs[i].AppendBinary(buf)
	}
	rest := buf
	for i := range hs {
		var got Histogram
		var err error
		rest, err = got.DecodeBinary(rest)
		if err != nil {
			t.Fatalf("histogram %d: decode: %v", i, err)
		}
		if got != hs[i] {
			t.Fatalf("histogram %d: round trip changed contents", i)
		}
	}
	if len(rest) != 0 {
		t.Fatalf("round trip left %d bytes", len(rest))
	}
}

// TestHistogramBinaryMergeEquivalence pins the property the stats endpoint
// relies on: merging decoded histograms equals merging the originals.
func TestHistogramBinaryMergeEquivalence(t *testing.T) {
	var a, b Histogram
	for i := 0; i < 500; i++ {
		a.Record(time.Duration(i) * time.Microsecond)
		b.Record(time.Duration(i) * time.Millisecond)
	}
	var buf []byte
	buf = a.AppendBinary(buf)
	buf = b.AppendBinary(buf)
	var da, db Histogram
	rest, err := da.DecodeBinary(buf)
	if err == nil {
		_, err = db.DecodeBinary(rest)
	}
	if err != nil {
		t.Fatal(err)
	}
	var direct, viaWire Histogram
	direct.Merge(&a)
	direct.Merge(&b)
	viaWire.Merge(&da)
	viaWire.Merge(&db)
	if direct != viaWire {
		t.Fatal("merge of decoded histograms differs from merge of originals")
	}
}

// TestHistogramBinaryRejectsGarbage pins that the decoder is total: junk
// either fails cleanly or decodes, and a failed decode leaves the
// receiver empty.
func TestHistogramBinaryRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{},
		{0xff},                         // truncated uvarint
		{0x00},                         // max only, missing sum
		{0x00, 0x00},                   // max+sum, missing bucket count
		{0x00, 0x00, 0x01},             // one bucket promised, none present
		{0x00, 0x0a, 0x01, 0x05, 0x02}, // count 2 at bucket 5 but max 0 < bucket floor
		{0x05, 0x0a, 0x01, 0x05, 0x00}, // zero-count bucket entry
		{0x00, 0x00, 0xff, 0xff, 0x7f}, // bucket count beyond HistBuckets
		// delta 1<<63 (would overflow int64 index arithmetic), count 5
		{0x00, 0x00, 0x01, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x01, 0x05},
		{0x09, 0x09, 0x01, 0x00, 0x02}, // max 9 above bucket 0's ceiling (0)
		{0x00, 0x05, 0x00},             // sum 5 with no samples
		{0x05, 0x04, 0x01, 0x05, 0x01}, // sum 4 below the max sample (5)
		{0x05, 0x0b, 0x01, 0x05, 0x02}, // sum 11 above count*max (2*5)
	}
	for i, data := range cases {
		var h Histogram
		h.RecordNS(42) // must be wiped by the failed decode
		if _, err := h.DecodeBinary(data); err == nil {
			t.Errorf("case %d: decode accepted garbage", i)
		}
		if h.Count() != 0 || h.MaxNS() != 0 {
			t.Errorf("case %d: failed decode left state behind", i)
		}
	}
	rng := rand.New(rand.NewPCG(3, 5))
	for i := 0; i < 5000; i++ {
		junk := make([]byte, rng.IntN(40))
		for j := range junk {
			junk[j] = byte(rng.UintN(256))
		}
		var h Histogram
		_, _ = h.DecodeBinary(junk) // must not panic
	}
}
