package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("mean of empty must be 0")
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Fatalf("mean = %v", got)
	}
}

func TestStddev(t *testing.T) {
	if Stddev([]float64{5}) != 0 {
		t.Fatal("stddev of singleton must be 0")
	}
	got := Stddev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if math.Abs(got-2.138) > 0.01 {
		t.Fatalf("stddev = %v", got)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Fatalf("min/max = %v/%v", Min(xs), Max(xs))
	}
	if Min(nil) != 0 || Max(nil) != 0 {
		t.Fatal("empty min/max must be 0")
	}
}

func TestOrderingInvariant(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		// Clamp into a range where summation cannot overflow.
		xs := make([]float64, len(raw))
		for i, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				x = 0
			}
			xs[i] = math.Mod(x, 1e9)
		}
		return Min(xs) <= Mean(xs) && Mean(xs) <= Max(xs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
