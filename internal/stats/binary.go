// binary.go gives Histogram a compact wire encoding so the serving layer
// can ship per-operation latency histograms through the stats endpoint
// and merge them client-side (merge is associative, so a merged decode
// equals a merged record stream). The format is sparse — log-bucketed
// latency histograms are overwhelmingly zeros — and self-delimiting, so
// several histograms can be concatenated in one payload.
package stats

import (
	"encoding/binary"
	"errors"
	"math/bits"
	"time"
)

// Histogram binary format (all integers are uvarints):
//
//	max        exact maximum sample (nanoseconds)
//	sum        exact sum of all samples (nanoseconds)
//	nonzero    number of non-empty buckets
//	nonzero × (index delta, count)
//
// Bucket indices are delta-encoded in ascending order (first delta is the
// absolute index), so decoding can reject duplicates and out-of-range
// indices. The total count is recomputed from the bucket counts, keeping
// decoded histograms internally consistent whatever the peer sent.

// errHistogramEncoding is wrapped by every decode failure.
var errHistogramEncoding = errors.New("stats: malformed histogram encoding")

// AppendBinary appends the histogram's binary encoding to dst and returns
// the extended slice. It never fails and allocates only when dst needs to
// grow.
func (h *Histogram) AppendBinary(dst []byte) []byte {
	dst = binary.AppendUvarint(dst, h.max)
	dst = binary.AppendUvarint(dst, h.sum)
	nonzero := 0
	for _, n := range h.counts {
		if n != 0 {
			nonzero++
		}
	}
	dst = binary.AppendUvarint(dst, uint64(nonzero))
	prev := -1
	for i, n := range h.counts {
		if n == 0 {
			continue
		}
		if prev < 0 {
			dst = binary.AppendUvarint(dst, uint64(i)) // absolute first index
		} else {
			dst = binary.AppendUvarint(dst, uint64(i-prev-1)) // gap to the next
		}
		dst = binary.AppendUvarint(dst, n)
		prev = i
	}
	return dst
}

// DecodeBinary replaces h's contents with the encoding at the front of
// data and returns the remaining bytes. On error h is left empty. The
// decoder is total: any input either decodes or returns an error wrapping
// the malformed-encoding sentinel — it never panics, whatever the bytes.
func (h *Histogram) DecodeBinary(data []byte) ([]byte, error) {
	h.Reset()
	max, data, err := uvarint(data)
	if err != nil {
		return nil, err
	}
	sum, data, err := uvarint(data)
	if err != nil {
		return nil, err
	}
	nonzero, data, err := uvarint(data)
	if err != nil {
		return nil, err
	}
	if nonzero > HistBuckets {
		h.Reset()
		return nil, errHistogramEncoding
	}
	idx := -1
	for i := uint64(0); i < nonzero; i++ {
		var delta, n uint64
		if delta, data, err = uvarint(data); err == nil {
			n, data, err = uvarint(data)
		}
		if err != nil {
			h.Reset()
			return nil, err
		}
		// Bound the delta before any int arithmetic: a huge uvarint would
		// overflow int64 and index negatively.
		if delta >= HistBuckets {
			h.Reset()
			return nil, errHistogramEncoding
		}
		next := idx + 1 + int(delta)
		if idx == -1 {
			next = int(delta) // first entry carries the absolute index
		}
		if next >= HistBuckets || n == 0 {
			h.Reset()
			return nil, errHistogramEncoding
		}
		idx = int(next)
		h.counts[idx] += n
		h.count += n
	}
	// The max is a sample, so it must land in the highest occupied bucket:
	// a max outside [lowerBound(idx), histBucketMax(idx)] — or a non-zero
	// max with no samples — cannot come from Record. Reject rather than
	// let quantiles under- or over-report against a forged bound.
	if (h.count == 0 && max != 0) ||
		(idx >= 0 && (max < lowerBound(idx) || max > histBucketMax(idx))) {
		h.Reset()
		return nil, errHistogramEncoding
	}
	// The sum is the total of real samples, so it is bracketed by the max
	// sample below and count·max above — but Record's sum is wrapping
	// uint64 arithmetic, so the bracket only holds when count·max fits in
	// 64 bits (then no legal sum can wrap either). Reject out-of-bracket
	// sums there: they cannot come from Record, and a forged sum would
	// skew every mean derived from it.
	if h.count == 0 {
		if sum != 0 {
			h.Reset()
			return nil, errHistogramEncoding
		}
	} else if hi, lo := bits.Mul64(h.count, max); hi == 0 && (sum < max || sum > lo) {
		h.Reset()
		return nil, errHistogramEncoding
	}
	h.max = max
	h.sum = sum
	return data, nil
}

// lowerBound is the smallest sample that lands in bucket i.
func lowerBound(i int) uint64 {
	if i == 0 {
		return 0
	}
	return histBucketMax(i-1) + 1
}

// MaxNS returns the exact maximum in nanoseconds (the raw form of Max).
func (h *Histogram) MaxNS() uint64 { return h.max }

// QuantileNS returns Quantile in raw nanoseconds.
func (h *Histogram) QuantileNS(q float64) uint64 { return uint64(h.Quantile(q) / time.Nanosecond) }

// uvarint decodes one uvarint from the front of data.
func uvarint(data []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(data)
	if n <= 0 {
		return 0, nil, errHistogramEncoding
	}
	return v, data[n:], nil
}
