// histogram.go provides the allocation-free latency histogram the harness
// records around every measured operation. Values (nanoseconds) land in
// log-linear buckets: within each power of two the range splits into
// 2^histSubBits equal sub-buckets, so the relative quantile error is
// bounded by 2^-histSubBits (12.5%) and typically half that, while the
// whole histogram stays a fixed-size value type — Record touches only the
// receiver's arrays, so the harness's per-operation path adds zero heap
// traffic and the allocs/op axis stays honest.
package stats

import (
	"math"
	"math/bits"
	"sort"
	"time"
)

// histSubBits is the log2 of the sub-buckets per power of two.
const histSubBits = 3

// HistBuckets is the bucket count of a Histogram: 2^histSubBits identity
// buckets for values < 2^histSubBits, then 2^histSubBits sub-buckets per
// remaining octave of the 64-bit range (exponents histSubBits..63, so the
// whole uint64 domain maps in range).
const HistBuckets = (64 - histSubBits + 1) << histSubBits

// Histogram is a log-bucketed histogram of non-negative int64 samples
// (the harness records latencies in nanoseconds). The zero value is an
// empty histogram ready for use. Histogram is a plain value: embed or
// allocate it once per worker before the measured window; Record, Merge
// and the quantile accessors never allocate.
type Histogram struct {
	counts [HistBuckets]uint64
	count  uint64
	sum    uint64
	max    uint64
}

// histBucket maps a sample to its bucket index: identity below
// 2^histSubBits, then (octave, top histSubBits mantissa bits) above.
func histBucket(v uint64) int {
	if v < 1<<histSubBits {
		return int(v)
	}
	exp := bits.Len64(v) - 1 // floor(log2 v), >= histSubBits
	sub := int(v>>(uint(exp)-histSubBits)) & (1<<histSubBits - 1)
	return (exp-histSubBits+1)<<histSubBits + sub
}

// histBucketMax is the largest sample that lands in bucket i — the value
// quantiles report, so quantiles never under-report a recorded sample.
func histBucketMax(i int) uint64 {
	if i < 1<<histSubBits {
		return uint64(i)
	}
	exp := uint(i>>histSubBits) + histSubBits - 1
	sub := uint64(i & (1<<histSubBits - 1))
	lo := uint64(1)<<exp + sub<<(exp-histSubBits)
	return lo + 1<<(exp-histSubBits) - 1
}

// RecordNS adds one sample in nanoseconds.
func (h *Histogram) RecordNS(ns uint64) {
	h.counts[histBucket(ns)]++
	h.count++
	h.sum += ns
	if ns > h.max {
		h.max = ns
	}
}

// Record adds one duration sample (negative durations clamp to zero).
func (h *Histogram) Record(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.RecordNS(uint64(d))
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() uint64 { return h.count }

// SumNS returns the exact sum of all recorded samples in nanoseconds —
// unlike the quantiles it carries no bucketing error, so mean latency
// and Prometheus histogram _sum series are exact.
func (h *Histogram) SumNS() uint64 { return h.sum }

// Max returns the largest recorded sample exactly (0 when empty).
func (h *Histogram) Max() time.Duration { return time.Duration(h.max) }

// Merge folds o into h. Merging is commutative and associative, so
// per-worker histograms can be combined in any order.
func (h *Histogram) Merge(o *Histogram) {
	for i, n := range o.counts {
		h.counts[i] += n
	}
	h.count += o.count
	h.sum += o.sum
	if o.max > h.max {
		h.max = o.max
	}
}

// Sub subtracts an earlier snapshot of the same cumulative stream,
// leaving the window recorded between the two snapshots (the load
// generator's live progress reporting diffs stats scrapes this way).
// Counts and sum subtract saturating per bucket, so a prev that is not a
// true prefix degrades to a clamped window instead of wrapping. The
// window's exact maximum is unrecoverable from cumulative buckets; max
// becomes the smaller of the cumulative max and the ceiling of the
// highest surviving bucket, which keeps Quantile's never-under-report
// contract intact for the window.
func (h *Histogram) Sub(prev *Histogram) {
	h.count = 0
	top := -1
	for i := range h.counts {
		n := prev.counts[i]
		if n > h.counts[i] {
			n = h.counts[i]
		}
		h.counts[i] -= n
		if h.counts[i] != 0 {
			top = i
		}
		h.count += h.counts[i]
	}
	if top < 0 {
		h.sum, h.max = 0, 0
		return
	}
	if h.sum >= prev.sum {
		h.sum -= prev.sum
	} else {
		h.sum = 0
	}
	if m := histBucketMax(top); m < h.max {
		h.max = m
	}
}

// EachBucket calls f for every non-empty bucket in ascending order with
// the bucket's inclusive upper bound (nanoseconds) and its count. Bucket
// ranges never straddle a power of two, so callers can re-bucket onto
// any power-of-two boundary grid exactly (the Prometheus exposition
// does).
func (h *Histogram) EachBucket(f func(maxNS, count uint64)) {
	for i, n := range h.counts {
		if n != 0 {
			f(histBucketMax(i), n)
		}
	}
}

// Reset empties the histogram, keeping its storage.
func (h *Histogram) Reset() { *h = Histogram{} }

// Quantile returns the q-quantile (q in [0,1]) by nearest rank: the upper
// bound of the bucket holding the sample of rank ceil(q*count), so the
// true sample is never under-reported and over-reported by at most
// 2^-histSubBits relative. The maximum is reported exactly. Returns 0 on
// an empty histogram.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h.count == 0 {
		return 0
	}
	if q >= 1 {
		return h.Max()
	}
	rank := uint64(math.Ceil(q * float64(h.count)))
	if rank < 1 {
		rank = 1
	}
	var seen uint64
	for i, n := range h.counts {
		seen += n
		if seen >= rank {
			if m := histBucketMax(i); m < h.max {
				return time.Duration(m)
			}
			return h.Max()
		}
	}
	return h.Max()
}

// Percentile returns the p-th percentile of xs (p in [0,100]) by nearest
// rank, without mutating xs. Unlike Histogram it is exact: use it for
// small aggregate series (e.g. one value per benchmark run), the
// histogram for high-volume per-operation streams.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	rank := int(math.Ceil(p / 100 * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}
