package stats

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
	"time"
)

func histOf(samples ...uint64) *Histogram {
	h := new(Histogram)
	for _, s := range samples {
		h.RecordNS(s)
	}
	return h
}

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Max() != 0 || h.Quantile(0.99) != 0 {
		t.Fatalf("empty histogram not empty: count=%d max=%v q99=%v", h.Count(), h.Max(), h.Quantile(0.99))
	}
}

func TestHistogramSmallValuesExact(t *testing.T) {
	// Values below 2^histSubBits land in identity buckets, so quantiles
	// are exact there.
	h := histOf(0, 1, 2, 3, 4, 5, 6, 7)
	// Nearest rank: ceil(0.5*8) = 4th smallest = 3.
	if got := h.Quantile(0.5); got != 3*time.Nanosecond {
		t.Fatalf("q50 of 0..7 = %v, want 3ns", got)
	}
	if got := h.Max(); got != 7*time.Nanosecond {
		t.Fatalf("max = %v, want 7ns", got)
	}
	if h.Count() != 8 {
		t.Fatalf("count = %d", h.Count())
	}
}

// TestHistogramErrorBound pins the log-bucket resolution contract: a
// quantile never under-reports its sample and over-reports by at most
// 2^-histSubBits relative. A larger sentinel sample keeps the exact-max
// clamp out of the way, and a lone sample checks that clamp: the maximum
// is reported exactly.
func TestHistogramErrorBound(t *testing.T) {
	f := func(v uint64) bool {
		v %= uint64(1) << 40 // keep within plausible latency range
		h := new(Histogram)
		for i := 0; i < 9; i++ {
			h.RecordNS(v)
		}
		h.RecordNS(1 << 41) // sentinel: occupies a higher bucket
		got := uint64(h.Quantile(0.5))
		if got < v || got > v+v/8+1 {
			return false
		}
		return uint64(histOf(v).Quantile(0.99)) == v // exact-max clamp
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestHistogramQuantileMonotone checks quantiles never decrease in q.
func TestHistogramQuantileMonotone(t *testing.T) {
	f := func(samples []uint32, qa, qb float64) bool {
		if len(samples) == 0 {
			return true
		}
		h := new(Histogram)
		for _, s := range samples {
			h.RecordNS(uint64(s))
		}
		qa = clamp01(qa)
		qb = clamp01(qb)
		if qa > qb {
			qa, qb = qb, qa
		}
		return h.Quantile(qa) <= h.Quantile(qb)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func clamp01(q float64) float64 {
	if q != q || q < 0 {
		return 0
	}
	if q > 1 {
		return 1
	}
	return q
}

// TestHistogramMergeAssociative quick-checks that (a⊕b)⊕c and a⊕(b⊕c)
// agree on counts, max and every quantile — the property average() relies
// on when folding per-run histograms in arbitrary order.
func TestHistogramMergeAssociative(t *testing.T) {
	f := func(as, bs, cs []uint32) bool {
		a1, b1, c1 := hist32(as), hist32(bs), hist32(cs)
		a2, b2, c2 := hist32(as), hist32(bs), hist32(cs)

		a1.Merge(b1) // (a⊕b)⊕c
		a1.Merge(c1)
		b2.Merge(c2) // a⊕(b⊕c)
		a2.Merge(b2)

		if a1.Count() != a2.Count() || a1.Max() != a2.Max() {
			return false
		}
		for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.99, 1} {
			if a1.Quantile(q) != a2.Quantile(q) {
				return false
			}
		}
		return *a1 == *a2 // bucket-for-bucket identical
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func hist32(xs []uint32) *Histogram {
	h := new(Histogram)
	for _, x := range xs {
		h.RecordNS(uint64(x))
	}
	return h
}

// TestHistogramMergeEqualsOneRun checks merging per-worker histograms
// equals recording the union of their samples into one.
func TestHistogramMergeEqualsOneRun(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 5))
	whole := new(Histogram)
	parts := []*Histogram{new(Histogram), new(Histogram), new(Histogram)}
	for i := 0; i < 3000; i++ {
		v := uint64(rng.IntN(1 << 20))
		whole.RecordNS(v)
		parts[i%3].RecordNS(v)
	}
	merged := new(Histogram)
	for _, p := range parts {
		merged.Merge(p)
	}
	if *merged != *whole {
		t.Fatal("merged per-worker histograms differ from one-run histogram")
	}
}

// TestHistogramRecordAllocFree pins the tentpole's core constraint: the
// record path the harness runs once per measured operation must not touch
// the heap (the allocs/op axis would otherwise count the instrumentation
// itself).
func TestHistogramRecordAllocFree(t *testing.T) {
	h := new(Histogram)
	rng := rand.New(rand.NewPCG(1, 2))
	vals := make([]time.Duration, 1024)
	for i := range vals {
		vals[i] = time.Duration(rng.IntN(1 << 24))
	}
	i := 0
	if allocs := testing.AllocsPerRun(1000, func() {
		h.Record(vals[i&1023])
		i++
	}); allocs != 0 {
		t.Errorf("Record allocated %.1f times per run, want 0", allocs)
	}
	o := histOf(1, 2, 3)
	if allocs := testing.AllocsPerRun(100, func() { h.Merge(o) }); allocs != 0 {
		t.Errorf("Merge allocated %.1f times per run, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(100, func() { _ = h.Quantile(0.99) }); allocs != 0 {
		t.Errorf("Quantile allocated %.1f times per run, want 0", allocs)
	}
}

// TestHistogramFullUint64Domain pins that RecordNS accepts the whole
// uint64 range: the top octave (values >= 2^63) must land in valid
// buckets, not past the array.
func TestHistogramFullUint64Domain(t *testing.T) {
	h := new(Histogram)
	for _, v := range []uint64{1<<63 - 1, 1 << 63, 1<<64 - 1} {
		h.RecordNS(v)
	}
	if h.Count() != 3 {
		t.Fatalf("count = %d, want 3", h.Count())
	}
	if got := uint64(h.Max()); got != 1<<64-1 {
		t.Fatalf("max = %d, want MaxUint64", got)
	}
	if got := uint64(h.Quantile(1)); got != 1<<64-1 {
		t.Fatalf("q100 = %d, want MaxUint64", got)
	}
}

func TestHistogramNegativeClamp(t *testing.T) {
	h := new(Histogram)
	h.Record(-5 * time.Nanosecond)
	if h.Count() != 1 || h.Max() != 0 {
		t.Fatalf("negative duration must clamp to 0: count=%d max=%v", h.Count(), h.Max())
	}
}

// TestHistogramSum pins that the sum is exact (no bucketing error) and
// flows through Record, Merge and Reset.
func TestHistogramSum(t *testing.T) {
	h := histOf(3, 1000, 1<<20)
	want := uint64(3 + 1000 + 1<<20)
	if h.SumNS() != want {
		t.Fatalf("sum = %d, want %d", h.SumNS(), want)
	}
	o := histOf(7)
	h.Merge(o)
	if h.SumNS() != want+7 {
		t.Fatalf("merged sum = %d, want %d", h.SumNS(), want+7)
	}
	h.Reset()
	if h.SumNS() != 0 {
		t.Fatalf("reset sum = %d", h.SumNS())
	}
}

// TestHistogramSub pins the window-diff semantics: subtracting an earlier
// snapshot of the same stream leaves exactly the later samples' counts
// and sum, quantiles stay within bucket resolution of the window, and
// subtracting a snapshot from itself leaves an empty histogram.
func TestHistogramSub(t *testing.T) {
	earlier := histOf(10, 500, 1<<16)
	later := *earlier
	for _, v := range []uint64{20, 900, 1 << 10} {
		later.RecordNS(v)
	}
	win := later // copy; Sub mutates the receiver
	win.Sub(earlier)
	if win.Count() != 3 {
		t.Fatalf("window count = %d, want 3", win.Count())
	}
	if want := uint64(20 + 900 + 1<<10); win.SumNS() != want {
		t.Fatalf("window sum = %d, want %d", win.SumNS(), want)
	}
	// The window's true max is 1<<10; the reported max may only round up
	// to its bucket ceiling, never past the cumulative max.
	if got := uint64(win.Max()); got < 1<<10 || got > (1<<10)+(1<<10)/8 {
		t.Fatalf("window max = %d, want ~%d", got, 1<<10)
	}
	self := *earlier
	self.Sub(earlier)
	if self != (Histogram{}) {
		t.Fatal("h.Sub(h) must leave an empty histogram")
	}
	// A mismatched prev (not a prefix) clamps instead of wrapping.
	big := histOf(5, 5, 5)
	small := histOf(5)
	got := *small
	got.Sub(big)
	if got.Count() != 0 || got.SumNS() != 0 || got.Max() != 0 {
		t.Fatalf("clamped Sub left count=%d sum=%d max=%v", got.Count(), got.SumNS(), got.Max())
	}
}

// TestHistogramEachBucket pins the iterator: ascending upper bounds, one
// call per non-empty bucket, counts totalling Count.
func TestHistogramEachBucket(t *testing.T) {
	h := histOf(0, 0, 3, 100, 100, 100, 1<<30)
	var total, prev uint64
	calls := 0
	h.EachBucket(func(maxNS, n uint64) {
		if calls > 0 && maxNS <= prev {
			t.Fatalf("bucket bounds not ascending: %d after %d", maxNS, prev)
		}
		if n == 0 {
			t.Fatal("iterator visited an empty bucket")
		}
		prev = maxNS
		total += n
		calls++
	})
	if total != h.Count() || calls != 4 {
		t.Fatalf("iterated %d samples over %d buckets, want %d over 4", total, calls, h.Count())
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{15, 20, 35, 40, 50}
	cases := map[float64]float64{0: 15, 30: 20, 40: 20, 50: 35, 100: 50}
	for p, want := range cases {
		if got := Percentile(xs, p); got != want {
			t.Errorf("Percentile(%v) = %v, want %v", p, got, want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Error("empty percentile must be 0")
	}
	if xs[0] != 15 || xs[4] != 50 {
		t.Error("Percentile mutated its input")
	}
}

// TestPercentileMonotone quick-checks ordering and bounds: percentiles
// never decrease in p and always land on an input sample.
func TestPercentileMonotone(t *testing.T) {
	f := func(raw []float64, pa, pb float64) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, x := range raw {
			if x != x { // drop NaN: unordered
				x = 0
			}
			xs[i] = x
		}
		pa, pb = 100*clamp01(pa/100), 100*clamp01(pb/100)
		if pa > pb {
			pa, pb = pb, pa
		}
		lo, hi := Percentile(xs, pa), Percentile(xs, pb)
		if lo > hi {
			return false
		}
		found := false
		for _, x := range xs {
			if x == hi {
				found = true
			}
		}
		return found
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
