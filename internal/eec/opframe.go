package eec

import "oestm/internal/stm"

// opCode selects one elementary set operation.
type opCode uint8

const (
	opContains opCode = iota
	opAdd
	opRemove
	numOps
)

// mapCode selects one elementary SkipListMap operation.
type mapCode uint8

const (
	mapGet mapCode = iota
	mapPut
	mapRemove
	numMapOps
)

// queueCode selects one elementary Queue operation.
type queueCode uint8

const (
	queueEnq queueCode = iota
	queueDeq
	numQueueOps
)

// compCode selects one composed (multi-operation) frame closure.
type compCode uint8

const (
	compMove compCode = iota
	compInsertIfAbsent
	compTransfer
	compMoveTo
	numComps
)

// opFrame is per-thread scratch for the operations of the e.e.c
// structures. The transaction closures are bound to the frame once, at
// first use, and parameterised through its fields, so running an
// operation allocates nothing beyond what the structure itself requires:
// no closure capture, no escaping result variable, and (for the skip
// lists) no escaping predecessor/successor arrays.
//
// Elementary operations never invoke other elementary operations from
// inside their own transaction closure, and a thread runs one operation
// at a time, so the single frame per thread is safe even under
// composition: a composed operation's children run strictly one after
// another, each setting the fields, running, and consuming the result
// before the next starts. Whole-nest retries re-execute the enclosing
// composition closure, which re-parameterises the frame on the way down.
//
// The composed closures (compMove, compTransfer, ...) invoke elementary
// operations, which clobber the elementary parameter fields; the
// composition therefore keeps its own parameters in the dedicated c*
// fields, which survive a whole-nest retry re-entering the closure. A
// composed frame closure must never invoke another composed frame
// closure — sibling composed calls inside a user transaction are fine
// (each completes and is consumed before the next is parameterised), but
// nesting them would clobber the shared c* fields mid-flight.
type opFrame struct {
	th *stm.Thread

	// Parameters and result of the elementary set operation in flight.
	l   list
	sl  *SkipListSet
	key int
	res bool

	// Skip-list scratch: tower height for the pending add, and the
	// per-level predecessor/successor arrays of the current traversal.
	height int
	preds  [maxLevel]*snode
	succs  [maxLevel]*snode

	// Parameters and result of the elementary SkipListMap operation in
	// flight (mVal doubles as the Put argument), plus the traversal
	// scratch keeping the predecessor array off the heap.
	m      *SkipListMap
	mKey   int
	mVal   any
	mRet   any
	mOK    bool
	mPreds [maxLevel]*mnode

	// Parameters and result of the elementary Queue operation in flight.
	q    *Queue
	qVal any
	qOK  bool

	// Parameters and result of the composed operations. Kept apart from
	// the elementary fields above because the composed closures call
	// elementary operations, which overwrite those.
	cFrom, cTo   Set
	cMap         *SkipListMap
	cQFrom, cQTo *Queue
	cA, cB, cAmt int
	cRet         any
	cOK          bool

	listFns  [numOps]func(stm.Tx) error
	slFns    [numOps]func(stm.Tx) error
	mapFns   [numMapOps]func(stm.Tx) error
	queueFns [numQueueOps]func(stm.Tx) error
	compFns  [numComps]func(stm.Tx) error
}

// frameOf returns the thread's operation frame, creating and binding it
// on first use.
func frameOf(th *stm.Thread) *opFrame {
	if f, ok := th.OpScratch.(*opFrame); ok {
		return f
	}
	f := &opFrame{th: th}
	f.listFns[opContains] = func(tx stm.Tx) error { f.res = f.l.contains(tx, f.key); return nil }
	f.listFns[opAdd] = func(tx stm.Tx) error { f.res = f.l.add(tx, f.key); return nil }
	f.listFns[opRemove] = func(tx stm.Tx) error { f.res = f.l.remove(tx, f.key); return nil }
	f.slFns[opContains] = func(tx stm.Tx) error { f.res = f.sl.contains(tx, f); return nil }
	f.slFns[opAdd] = func(tx stm.Tx) error { f.res = f.sl.add(tx, f); return nil }
	f.slFns[opRemove] = func(tx stm.Tx) error { f.res = f.sl.remove(tx, f); return nil }
	f.mapFns[mapGet] = func(tx stm.Tx) error { f.m.get(tx, f); return nil }
	f.mapFns[mapPut] = func(tx stm.Tx) error { f.m.put(tx, f); return nil }
	f.mapFns[mapRemove] = func(tx stm.Tx) error { f.m.remove(tx, f); return nil }
	f.queueFns[queueEnq] = func(tx stm.Tx) error { f.q.enqueue(tx, f.qVal); return nil }
	f.queueFns[queueDeq] = func(tx stm.Tx) error { f.qVal, f.qOK = f.q.dequeue(tx); return nil }
	f.bindComposed()
	th.OpScratch = f
	return f
}

// bindComposed binds the composed-operation closures. They call public
// elementary operations, which recurse into this frame through the
// elementary fields — see the frame invariant in the type comment.
func (f *opFrame) bindComposed() {
	f.compFns[compMove] = func(stm.Tx) error {
		f.cOK = false
		if f.cFrom.Remove(f.th, f.cA) {
			f.cTo.Add(f.th, f.cA)
			f.cOK = true
		}
		return nil
	}
	f.compFns[compInsertIfAbsent] = func(stm.Tx) error {
		f.cOK = false
		if !f.cFrom.Contains(f.th, f.cB) {
			f.cOK = f.cFrom.Add(f.th, f.cA)
		}
		return nil
	}
	f.compFns[compTransfer] = func(stm.Tx) error {
		f.cOK = false
		from, ok := f.cMap.Get(f.th, f.cA)
		if !ok {
			return nil
		}
		fromBal, isInt := from.(int)
		if !isInt || fromBal < f.cAmt {
			return nil
		}
		to, ok := f.cMap.Get(f.th, f.cB)
		if !ok {
			return nil
		}
		toBal, isInt := to.(int)
		if !isInt {
			return nil
		}
		f.cMap.Put(f.th, f.cA, fromBal-f.cAmt)
		f.cMap.Put(f.th, f.cB, toBal+f.cAmt)
		f.cOK = true
		return nil
	}
	f.compFns[compMoveTo] = func(stm.Tx) error {
		f.cRet, f.cOK = nil, false
		v, ok := f.cQFrom.Dequeue(f.th)
		if !ok {
			return nil
		}
		f.cQTo.Enqueue(f.th, v)
		f.cRet, f.cOK = v, true
		return nil
	}
}

// listOp runs one elementary operation against a sorted list (the
// LinkedListSet, or one HashSet bucket).
//
//compose:noalloc
func (f *opFrame) listOp(code opCode, l list, key int) bool {
	f.l, f.key = l, key
	_ = f.th.Atomic(OpKind(f.th), f.listFns[code])
	return f.res
}

// skipOp runs one elementary operation against a skip list set.
//
//compose:noalloc
func (f *opFrame) skipOp(code opCode, s *SkipListSet, key int) bool {
	f.sl, f.key = s, key
	_ = f.th.Atomic(OpKind(f.th), f.slFns[code])
	return f.res
}

// mapOp runs one elementary operation against a skip list map. val is the
// Put argument (ignored by the other codes); the result value/flag are
// returned and cleared from the frame so user values are not retained.
func (f *opFrame) mapOp(code mapCode, m *SkipListMap, key int, val any) (any, bool) {
	f.m, f.mKey, f.mVal = m, key, val
	_ = f.th.Atomic(OpKind(f.th), f.mapFns[code])
	ret, ok := f.mRet, f.mOK
	f.mVal, f.mRet = nil, nil
	return ret, ok
}

// queueOp runs one elementary operation against a queue. val is the
// Enqueue argument; the result value/flag are returned and cleared.
func (f *opFrame) queueOp(code queueCode, q *Queue, val any) (any, bool) {
	f.q, f.qVal = q, val
	_ = f.th.Atomic(OpKind(f.th), f.queueFns[code])
	ret, ok := f.qVal, f.qOK
	f.qVal = nil
	return ret, ok
}
