package eec

import "oestm/internal/stm"

// opCode selects one elementary set operation.
type opCode uint8

const (
	opContains opCode = iota
	opAdd
	opRemove
	numOps
)

// opFrame is per-thread scratch for the elementary operations of the
// e.e.c structures. The transaction closures are bound to the frame once,
// at first use, and parameterised through its fields, so running an
// elementary operation allocates nothing: no closure capture, no escaping
// result variable, and (for the skip list) no escaping predecessor/
// successor arrays.
//
// Elementary operations never invoke other elementary operations from
// inside their own transaction closure, and a thread runs one operation
// at a time, so the single frame per thread is safe even under
// composition: a bulk operation's children run strictly one after
// another, each setting the fields, running, and consuming the result
// before the next starts. Whole-nest retries re-execute the enclosing
// composition closure, which re-parameterises the frame on the way down.
type opFrame struct {
	th *stm.Thread

	// Parameters and result of the operation in flight.
	l   list
	sl  *SkipListSet
	key int
	res bool

	// Skip-list scratch: tower height for the pending add, and the
	// per-level predecessor/successor arrays of the current traversal.
	height int
	preds  [maxLevel]*snode
	succs  [maxLevel]*snode

	listFns [numOps]func(stm.Tx) error
	slFns   [numOps]func(stm.Tx) error
}

// frameOf returns the thread's operation frame, creating and binding it
// on first use.
func frameOf(th *stm.Thread) *opFrame {
	if f, ok := th.OpScratch.(*opFrame); ok {
		return f
	}
	f := &opFrame{th: th}
	f.listFns[opContains] = func(tx stm.Tx) error { f.res = f.l.contains(tx, f.key); return nil }
	f.listFns[opAdd] = func(tx stm.Tx) error { f.res = f.l.add(tx, f.key); return nil }
	f.listFns[opRemove] = func(tx stm.Tx) error { f.res = f.l.remove(tx, f.key); return nil }
	f.slFns[opContains] = func(tx stm.Tx) error { f.res = f.sl.contains(tx, f); return nil }
	f.slFns[opAdd] = func(tx stm.Tx) error { f.res = f.sl.add(tx, f); return nil }
	f.slFns[opRemove] = func(tx stm.Tx) error { f.res = f.sl.remove(tx, f); return nil }
	th.OpScratch = f
	return f
}

// listOp runs one elementary operation against a sorted list (the
// LinkedListSet, or one HashSet bucket).
func (f *opFrame) listOp(code opCode, l list, key int) bool {
	f.l, f.key = l, key
	_ = f.th.Atomic(opKind(f.th), f.listFns[code])
	return f.res
}

// skipOp runs one elementary operation against a skip list set.
func (f *opFrame) skipOp(code opCode, s *SkipListSet, key int) bool {
	f.sl, f.key = s, key
	_ = f.th.Atomic(opKind(f.th), f.slFns[code])
	return f.res
}
