package eec

import (
	"oestm/internal/mvar"
	"oestm/internal/stm"
)

// Queue is a transactional FIFO queue — the e.e.c counterpart of
// java.util.concurrent's ConcurrentLinkedQueue, whose iterator is only
// "weakly consistent" (§VI). Here Enqueue/Dequeue are atomic, Snapshot is
// a consistent iteration, and the bulk operations (EnqueueAll, DrainTo)
// are compositions of the elementary ones.
//
// The queue is a singly linked list with a dummy head: head points at the
// node before the first element, tail at the last node. Enqueue writes
// tail.next and tail; Dequeue writes head. Enqueues and dequeues of a
// non-empty queue touch disjoint locations and do not conflict.
type Queue struct {
	head mvar.Var[qnode] // holds *qnode
	tail mvar.Var[qnode] // holds *qnode
}

type qnode struct {
	val  any
	next mvar.Var[qnode] // holds *qnode
}

// NewQueue returns an empty queue.
func NewQueue() *Queue {
	dummy := &qnode{}
	q := &Queue{}
	q.head.Init(dummy)
	q.tail.Init(dummy)
	return q
}

// Name identifies the implementation.
func (q *Queue) Name() string { return "queue" }

// enqueue is the transactional body of Enqueue.
func (q *Queue) enqueue(tx stm.Tx, val any) {
	n := &qnode{val: val}
	tail := stm.ReadPtr(tx, &q.tail)
	stm.WritePtr(tx, &tail.next, n)
	stm.WritePtr(tx, &q.tail, n)
}

// dequeue is the transactional body of Dequeue.
func (q *Queue) dequeue(tx stm.Tx) (val any, ok bool) {
	head := stm.ReadPtr(tx, &q.head)
	first := stm.ReadPtr(tx, &head.next)
	if first == nil {
		return nil, false
	}
	// The dequeued node becomes the new dummy. Its payload field is
	// immutable (set before publication), so it must not be cleared
	// here: the transaction may retry, and concurrent snapshots may
	// still read it. The reference is dropped at the next dequeue.
	stm.WritePtr(tx, &q.head, first)
	return first.val, true
}

// Enqueue appends val.
func (q *Queue) Enqueue(th *stm.Thread, val any) {
	frameOf(th).queueOp(queueEnq, q, val)
}

// Dequeue removes and returns the first element; ok is false when the
// queue is empty.
func (q *Queue) Dequeue(th *stm.Thread) (val any, ok bool) {
	return frameOf(th).queueOp(queueDeq, q, nil)
}

// MoveTo atomically transfers one element from q to dst — the pipeline
// stage of the composed-scenario suite, composed from Dequeue and Enqueue
// across the two queues through the thread's pre-bound frame (no per-call
// closure). It returns the moved element, or ok=false when q was empty.
func (q *Queue) MoveTo(th *stm.Thread, dst *Queue) (val any, ok bool) {
	f := frameOf(th)
	f.cQFrom, f.cQTo = q, dst
	_ = th.Atomic(OpKind(th), f.compFns[compMoveTo])
	f.cQFrom, f.cQTo = nil, nil
	val, ok = f.cRet, f.cOK
	f.cRet = nil
	return val, ok
}

// Peek returns the first element without removing it.
func (q *Queue) Peek(th *stm.Thread) (val any, ok bool) {
	_ = th.Atomic(OpKind(th), func(tx stm.Tx) error {
		val, ok = nil, false
		head := stm.ReadPtr(tx, &q.head)
		first := stm.ReadPtr(tx, &head.next)
		if first != nil {
			val, ok = first.val, true
		}
		return nil
	})
	return val, ok
}

// Len returns the number of elements, atomically.
func (q *Queue) Len(th *stm.Thread) int {
	n := 0
	_ = th.Atomic(stm.Regular, func(tx stm.Tx) error {
		n = 0
		head := stm.ReadPtr(tx, &q.head)
		for curr := stm.ReadPtr(tx, &head.next); curr != nil; curr = stm.ReadPtr(tx, &curr.next) {
			n++
		}
		return nil
	})
	return n
}

// Snapshot returns a consistent copy of the queue contents in FIFO order
// — the atomic iterator java.util.concurrent cannot provide.
func (q *Queue) Snapshot(th *stm.Thread) []any {
	var out []any
	_ = th.Atomic(stm.Regular, func(tx stm.Tx) error {
		out = out[:0]
		head := stm.ReadPtr(tx, &q.head)
		for curr := stm.ReadPtr(tx, &head.next); curr != nil; curr = stm.ReadPtr(tx, &curr.next) {
			out = append(out, curr.val)
		}
		return nil
	})
	return out
}

// EnqueueAll appends every value as one atomic step (composed from
// Enqueue).
func (q *Queue) EnqueueAll(th *stm.Thread, vals []any) {
	_ = th.Atomic(OpKind(th), func(stm.Tx) error {
		for _, v := range vals {
			q.Enqueue(th, v)
		}
		return nil
	})
}

// DrainTo atomically moves up to max elements into dst (composed from
// Dequeue and Enqueue across two queues); it returns how many moved.
func (q *Queue) DrainTo(th *stm.Thread, dst *Queue, max int) int {
	moved := 0
	_ = th.Atomic(OpKind(th), func(stm.Tx) error {
		moved = 0
		for moved < max {
			v, ok := q.Dequeue(th)
			if !ok {
				break
			}
			dst.Enqueue(th, v)
			moved++
		}
		return nil
	})
	return moved
}
