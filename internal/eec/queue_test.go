package eec_test

import (
	"reflect"
	"sync"
	"testing"

	"oestm/internal/core"
	"oestm/internal/eec"
	"oestm/internal/stm"
)

func TestQueueBasic(t *testing.T) {
	for ename, etm := range engines() {
		t.Run(ename, func(t *testing.T) {
			tm := etm()
			th := stm.NewThread(tm)
			q := eec.NewQueue()
			if q.Name() != "queue" {
				t.Fatalf("name = %q", q.Name())
			}
			if _, ok := q.Dequeue(th); ok {
				t.Fatal("dequeue from empty queue succeeded")
			}
			q.Enqueue(th, 1)
			q.Enqueue(th, 2)
			q.Enqueue(th, 3)
			if q.Len(th) != 3 {
				t.Fatalf("len = %d", q.Len(th))
			}
			if v, ok := q.Peek(th); !ok || v != 1 {
				t.Fatalf("peek = %v, %v", v, ok)
			}
			for want := 1; want <= 3; want++ {
				v, ok := q.Dequeue(th)
				if !ok || v != want {
					t.Fatalf("dequeue = %v, %v; want %d", v, ok, want)
				}
			}
			if q.Len(th) != 0 {
				t.Fatalf("len after drain = %d", q.Len(th))
			}
		})
	}
}

func TestQueueSnapshot(t *testing.T) {
	tm := core.New()
	th := stm.NewThread(tm)
	q := eec.NewQueue()
	q.EnqueueAll(th, []any{"a", "b", "c"})
	if got := q.Snapshot(th); !reflect.DeepEqual(got, []any{"a", "b", "c"}) {
		t.Fatalf("snapshot = %v", got)
	}
	q.Dequeue(th)
	if got := q.Snapshot(th); !reflect.DeepEqual(got, []any{"b", "c"}) {
		t.Fatalf("snapshot after dequeue = %v", got)
	}
}

func TestQueueDrainTo(t *testing.T) {
	tm := core.New()
	th := stm.NewThread(tm)
	src, dst := eec.NewQueue(), eec.NewQueue()
	src.EnqueueAll(th, []any{1, 2, 3, 4})
	if moved := src.DrainTo(th, dst, 3); moved != 3 {
		t.Fatalf("moved = %d, want 3", moved)
	}
	if got := dst.Snapshot(th); !reflect.DeepEqual(got, []any{1, 2, 3}) {
		t.Fatalf("dst = %v", got)
	}
	if got := src.Snapshot(th); !reflect.DeepEqual(got, []any{4}) {
		t.Fatalf("src = %v", got)
	}
	// Draining more than available stops at empty.
	if moved := src.DrainTo(th, dst, 10); moved != 1 {
		t.Fatalf("moved = %d, want 1", moved)
	}
}

// TestQueueFIFOUnderConcurrency: one producer, one consumer; the consumer
// must observe values in order without loss or duplication.
func TestQueueFIFOUnderConcurrency(t *testing.T) {
	tm := core.New()
	q := eec.NewQueue()
	const n = 500
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		th := stm.NewThread(tm)
		for i := 0; i < n; i++ {
			q.Enqueue(th, i)
		}
	}()
	var got []int
	go func() {
		defer wg.Done()
		th := stm.NewThread(tm)
		for len(got) < n {
			if v, ok := q.Dequeue(th); ok {
				got = append(got, v.(int))
			}
		}
	}()
	wg.Wait()
	for i, v := range got {
		if v != i {
			t.Fatalf("out of order at %d: %d", i, v)
		}
	}
}

// TestQueueConservationManyWorkers: concurrent producers and consumers
// over two queues via DrainTo; total element count is conserved and no
// value duplicated.
func TestQueueConservationManyWorkers(t *testing.T) {
	tm := core.New()
	a, b := eec.NewQueue(), eec.NewQueue()
	init := stm.NewThread(tm)
	const n = 60
	for i := 0; i < n; i++ {
		a.Enqueue(init, i)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(back bool) {
			defer wg.Done()
			th := stm.NewThread(tm)
			for i := 0; i < 80; i++ {
				if back {
					b.DrainTo(th, a, 2)
				} else {
					a.DrainTo(th, b, 2)
				}
			}
		}(w%2 == 0)
	}
	wg.Wait()
	th := stm.NewThread(tm)
	seen := map[int]int{}
	total := 0
	_ = th.Atomic(stm.Regular, func(stm.Tx) error {
		seen = map[int]int{}
		total = 0
		for _, v := range a.Snapshot(th) {
			seen[v.(int)]++
			total++
		}
		for _, v := range b.Snapshot(th) {
			seen[v.(int)]++
			total++
		}
		return nil
	})
	if total != n {
		t.Fatalf("total = %d, want %d", total, n)
	}
	for v, c := range seen {
		if c != 1 {
			t.Fatalf("value %d appears %d times", v, c)
		}
	}
}
