package eec

import (
	"sort"

	"oestm/internal/stm"
)

// HashSet is the hash table set of e.e.c (Fig. 8): a fixed array of
// buckets, each a sorted linked list. The paper deliberately runs it with
// a load factor of 512 (4096 elements over 8 buckets) to stress contention
// — long intra-bucket chains make the elastic traversal advantage visible
// again.
type HashSet struct {
	buckets []list
}

// DefaultLoadFactor is the paper's bucket load factor (§VII-B).
const DefaultLoadFactor = 512

// NewHashSet returns an empty HashSet with the given number of buckets
// (minimum 1).
func NewHashSet(buckets int) *HashSet {
	if buckets < 1 {
		buckets = 1
	}
	bs := make([]list, buckets)
	for i := range bs {
		bs[i] = newList()
	}
	return &HashSet{buckets: bs}
}

// NewHashSetForLoad returns a HashSet sized so that expectedElems elements
// yield the paper's load factor: buckets = expectedElems / DefaultLoadFactor.
func NewHashSetForLoad(expectedElems int) *HashSet {
	return NewHashSet(expectedElems / DefaultLoadFactor)
}

// Name implements Set.
func (s *HashSet) Name() string { return "hashset" }

// bucket maps a key to its bucket using a Fibonacci mixer so adversarial
// key patterns still spread.
func (s *HashSet) bucket(key int) list {
	h := uint64(key) * 0x9e3779b97f4a7c15
	return s.buckets[h%uint64(len(s.buckets))]
}

// Contains implements Set.
func (s *HashSet) Contains(th *stm.Thread, key int) bool {
	return frameOf(th).listOp(opContains, s.bucket(key), key)
}

// Add implements Set.
func (s *HashSet) Add(th *stm.Thread, key int) bool {
	return frameOf(th).listOp(opAdd, s.bucket(key), key)
}

// Remove implements Set.
func (s *HashSet) Remove(th *stm.Thread, key int) bool {
	return frameOf(th).listOp(opRemove, s.bucket(key), key)
}

// AddAll implements Set by composing Add.
func (s *HashSet) AddAll(th *stm.Thread, keys []int) bool {
	return addAll(th, s, keys)
}

// RemoveAll implements Set by composing Remove.
func (s *HashSet) RemoveAll(th *stm.Thread, keys []int) bool {
	return removeAll(th, s, keys)
}

// Size implements Set: one transaction spanning every bucket — atomic,
// unlike java.util.concurrent's size (§I).
func (s *HashSet) Size(th *stm.Thread) int {
	return len(s.Elements(th))
}

// Elements implements Set; the snapshot spans all buckets atomically and
// is returned sorted.
func (s *HashSet) Elements(th *stm.Thread) []int {
	var out []int
	_ = th.Atomic(stm.Regular, func(tx stm.Tx) error {
		out = out[:0]
		for i := range s.buckets {
			out = s.buckets[i].elements(tx, out)
		}
		return nil
	})
	sort.Ints(out)
	return out
}
