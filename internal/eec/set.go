// Package eec is the Go rendition of the paper's edu.epfl.compositional
// (e.e.c) package (§VI): a composable alternative to java.util.concurrent.
// It provides integer set abstractions — LinkedListSet, SkipListSet,
// HashSet — whose elementary operations (Contains, Add, Remove) run as
// elastic transactions, and whose bulk operations (AddAll, RemoveAll) and
// cross-structure operations (Move, InsertIfAbsent) are obtained by
// composition: they simply invoke the elementary operations inside an
// enclosing transaction, without modifying their code — the paper's Fig. 5
// pattern.
//
// The structures are engine-agnostic: they are built from mvar.Var words,
// so the same set instance can be driven by OE-STM, TL2, LSA or SwissTM
// (the engine is carried by the stm.Thread). Under engines that support
// the elastic model the elementary operations request Kind Elastic;
// classic engines execute them as Regular.
//
//compose:hotpath
package eec

import "oestm/internal/stm"

// Set is an integer set driven by transactional threads. All operations
// are atomic; bulk operations are atomic as a whole (unlike their
// java.util.concurrent counterparts, §VI). Operations may be invoked
// inside an open transaction on th, in which case they become nested
// children of it — that is composition.
type Set interface {
	// Name identifies the implementation ("linkedlist", "skiplist",
	// "hashset").
	Name() string
	// Contains reports whether key is in the set.
	Contains(th *stm.Thread, key int) bool
	// Add inserts key; it reports whether the set changed.
	Add(th *stm.Thread, key int) bool
	// Remove deletes key; it reports whether the set changed.
	Remove(th *stm.Thread, key int) bool
	// AddAll inserts every key atomically; it reports whether the set
	// changed.
	AddAll(th *stm.Thread, keys []int) bool
	// RemoveAll deletes every key atomically; it reports whether the set
	// changed.
	RemoveAll(th *stm.Thread, keys []int) bool
	// Size returns the number of elements, atomically (the operation the
	// JDK's ConcurrentSkipListMap famously cannot provide, §I).
	Size(th *stm.Thread) int
	// Elements returns a consistent snapshot of the elements in
	// ascending order.
	Elements(th *stm.Thread) []int
}

// OpKind selects the transaction kind the e.e.c operations request:
// elastic where the engine supports it (OE-STM), regular otherwise.
// Exported for layers that compose e.e.c operations with the same policy
// (the sharded store's composed multi-key operations).
func OpKind(th *stm.Thread) stm.Kind {
	if th.TM.SupportsElastic() {
		return stm.Elastic
	}
	return stm.Regular
}

// addAll composes Add over keys inside one enclosing transaction. The
// result flag is reset at the top of the closure because the whole
// composition re-executes on conflict.
func addAll(th *stm.Thread, s Set, keys []int) bool {
	changed := false
	_ = th.Atomic(OpKind(th), func(stm.Tx) error {
		changed = false
		for _, k := range keys {
			if s.Add(th, k) {
				changed = true
			}
		}
		return nil
	})
	return changed
}

// removeAll composes Remove over keys inside one enclosing transaction.
func removeAll(th *stm.Thread, s Set, keys []int) bool {
	changed := false
	_ = th.Atomic(OpKind(th), func(stm.Tx) error {
		changed = false
		for _, k := range keys {
			if s.Remove(th, k) {
				changed = true
			}
		}
		return nil
	})
	return changed
}

// InsertIfAbsent atomically inserts x into s only if y is absent — the
// paper's introductory composition example (Fig. 1), run through the
// thread's pre-bound frame so the composition itself allocates no
// closure. It reports whether x was inserted.
func InsertIfAbsent(th *stm.Thread, s Set, x, y int) bool {
	f := frameOf(th)
	f.cFrom, f.cA, f.cB = s, x, y
	_ = th.Atomic(OpKind(th), f.compFns[compInsertIfAbsent])
	f.cFrom = nil
	return f.cOK
}

// Move atomically transfers key from one set to another — the operation
// that is impossible to build from lock-free remove/put (§I) — run
// through the thread's pre-bound frame so the composition itself
// allocates no closure. It reports whether the key moved.
func Move(th *stm.Thread, from, to Set, key int) bool {
	f := frameOf(th)
	f.cFrom, f.cTo, f.cA = from, to, key
	_ = th.Atomic(OpKind(th), f.compFns[compMove])
	f.cFrom, f.cTo = nil, nil
	return f.cOK
}
