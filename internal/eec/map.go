package eec

import (
	"math"

	"oestm/internal/mvar"
	"oestm/internal/stm"
)

// SkipListMap is an ordered integer-keyed map built on the same skiplist
// substrate as SkipListSet — the e.e.c counterpart of the JDK's
// ConcurrentSkipListMap, whose size() and bulk views are famously not
// atomic (§I). Here every operation, including Size, Range and the
// composed PutIfAbsent/PutAll/Transfer, is atomic.
//
// Keys are immutable ints; values live in a transactional field of the
// node, so updating a present key conflicts only on that node.
type SkipListMap struct {
	head *mnode
	tail *mnode
}

// mnode is a skiplist map node: immutable key, transactional value,
// removal mark and tower links. The links and mark are typed (no boxing);
// the value cell holds an arbitrary user value and therefore boxes on
// update.
type mnode struct {
	key    int
	val    mvar.AnyVar       // holds any
	marked mvar.Flag         // holds bool
	next   []mvar.Var[mnode] // each holds *mnode
}

func newMnode(key, height int, val any) *mnode {
	n := &mnode{key: key, next: make([]mvar.Var[mnode], height)}
	n.val.Init(val)
	return n
}

// NewSkipListMap returns an empty SkipListMap.
func NewSkipListMap() *SkipListMap {
	tail := newMnode(math.MaxInt, maxLevel, nil)
	head := newMnode(math.MinInt, maxLevel, nil)
	for l := 0; l < maxLevel; l++ {
		head.next[l].Init(tail)
	}
	return &SkipListMap{head: head, tail: tail}
}

// Name identifies the implementation.
func (m *SkipListMap) Name() string { return "skiplistmap" }

// find locates, per level, the rightmost node with key < f.mKey, filling
// the frame's scratch array (which keeps the predecessors off the heap).
func (m *SkipListMap) find(tx stm.Tx, f *opFrame) {
	key := f.mKey
	curr := m.head
	for l := maxLevel - 1; l >= 0; l-- {
		next := stm.ReadPtr(tx, &curr.next[l])
		for next.key < key {
			curr = next
			next = stm.ReadPtr(tx, &curr.next[l])
		}
		f.mPreds[l] = curr
	}
}

// get is the transactional body of Get.
func (m *SkipListMap) get(tx stm.Tx, f *opFrame) {
	f.mRet, f.mOK = nil, false
	m.find(tx, f)
	target := stm.ReadPtr(tx, &f.mPreds[0].next[0])
	if target.key == f.mKey {
		f.mRet, f.mOK = tx.Read(&target.val), true
	}
}

// put is the transactional body of Put; f.height carries the tower height
// drawn outside the transaction, f.mVal the value to store.
func (m *SkipListMap) put(tx stm.Tx, f *opFrame) {
	f.mRet, f.mOK = nil, false
	key := f.mKey
	m.find(tx, f)
	target := stm.ReadPtr(tx, &f.mPreds[0].next[0])
	if target.key == key {
		if stm.ReadFlag(tx, &target.marked) {
			stm.Conflict("skiplistmap: node concurrently removed")
		}
		f.mRet, f.mOK = tx.Read(&target.val), true
		tx.Write(&target.val, f.mVal)
		return
	}
	if f.mPreds[0].key >= key || target.key < key {
		stm.Conflict("skiplistmap: insertion window moved")
	}
	if stm.ReadFlag(tx, &f.mPreds[0].marked) {
		stm.Conflict("skiplistmap: predecessor removed")
	}
	n := newMnode(key, f.height, f.mVal)
	succ := target
	for l := 0; l < f.height; l++ {
		if l > 0 {
			succ = stm.ReadPtr(tx, &f.mPreds[l].next[l])
			if f.mPreds[l].key >= key || succ.key <= key {
				stm.Conflict("skiplistmap: insertion window moved")
			}
			if stm.ReadFlag(tx, &f.mPreds[l].marked) {
				stm.Conflict("skiplistmap: predecessor removed")
			}
		}
		n.next[l].Init(succ)
		stm.WritePtr(tx, &f.mPreds[l].next[l], n)
	}
}

// remove is the transactional body of Remove.
func (m *SkipListMap) remove(tx stm.Tx, f *opFrame) {
	f.mRet, f.mOK = nil, false
	key := f.mKey
	m.find(tx, f)
	target := stm.ReadPtr(tx, &f.mPreds[0].next[0])
	if target.key != key {
		if target.key < key {
			stm.Conflict("skiplistmap: removal window moved")
		}
		return
	}
	if stm.ReadFlag(tx, &target.marked) || stm.ReadFlag(tx, &f.mPreds[0].marked) {
		stm.Conflict("skiplistmap: node concurrently removed")
	}
	f.mRet, f.mOK = tx.Read(&target.val), true
	stm.WriteFlag(tx, &target.marked, true)
	for l := len(target.next) - 1; l >= 0; l-- {
		pred := f.mPreds[l]
		curr := stm.ReadPtr(tx, &pred.next[l])
		if curr != target {
			stm.Conflict("skiplistmap: tower link moved")
		}
		if l > 0 && stm.ReadFlag(tx, &pred.marked) {
			stm.Conflict("skiplistmap: predecessor removed")
		}
		succ := stm.ReadPtr(tx, &target.next[l])
		stm.WritePtr(tx, &pred.next[l], succ)
		// Same-value rewrite of the departing node's link, as in the
		// skip list set: bump the version so outherited elastic windows
		// that run through target fail validation.
		stm.WritePtr(tx, &target.next[l], succ)
	}
}

// Get returns the value stored under key and whether it is present.
func (m *SkipListMap) Get(th *stm.Thread, key int) (any, bool) {
	return frameOf(th).mapOp(mapGet, m, key, nil)
}

// GetTx reads the value under key inside the caller's open transaction
// tx, without starting a nested child and without touching the thread's
// operation frame. It is the building block for cross-structure atomic
// observations (e.g. the sharded store's MGet snapshot, which reads many
// maps inside one Regular transaction, exactly like SumInt): unlike a
// composed Get child — whose elastic window only outherits its final
// read — every link and value read here joins the caller's protected set
// directly, so the whole multi-map observation validates as one snapshot
// on every engine. Allocation-free.
func (m *SkipListMap) GetTx(tx stm.Tx, key int) (any, bool) {
	curr := m.head
	for l := maxLevel - 1; l >= 0; l-- {
		next := stm.ReadPtr(tx, &curr.next[l])
		for next.key < key {
			curr = next
			next = stm.ReadPtr(tx, &curr.next[l])
		}
	}
	target := stm.ReadPtr(tx, &curr.next[0])
	if target.key == key {
		return tx.Read(&target.val), true
	}
	return nil, false
}

// ContainsKey reports whether key is present.
func (m *SkipListMap) ContainsKey(th *stm.Thread, key int) bool {
	_, ok := m.Get(th, key)
	return ok
}

// Put stores val under key, returning the previous value (nil, false if
// the key was absent).
func (m *SkipListMap) Put(th *stm.Thread, key int, val any) (any, bool) {
	f := frameOf(th)
	f.height = randomHeight(th)
	return f.mapOp(mapPut, m, key, val)
}

// Remove deletes key, returning the removed value (nil, false if absent).
func (m *SkipListMap) Remove(th *stm.Thread, key int) (any, bool) {
	return frameOf(th).mapOp(mapRemove, m, key, nil)
}

// PutIfAbsent stores val only when key is absent — a composition of
// ContainsKey and Put, atomic thanks to outheritance. It reports whether
// the value was stored.
func (m *SkipListMap) PutIfAbsent(th *stm.Thread, key int, val any) bool {
	stored := false
	_ = th.Atomic(OpKind(th), func(stm.Tx) error {
		stored = false
		if !m.ContainsKey(th, key) {
			m.Put(th, key, val)
			stored = true
		}
		return nil
	})
	return stored
}

// PutAll stores every entry atomically (composed from Put).
func (m *SkipListMap) PutAll(th *stm.Thread, entries map[int]any) {
	// Deterministic order so retried compositions behave identically.
	keys := make([]int, 0, len(entries))
	for k := range entries {
		keys = append(keys, k)
	}
	insertionSort(keys)
	_ = th.Atomic(OpKind(th), func(stm.Tx) error {
		for _, k := range keys {
			m.Put(th, k, entries[k])
		}
		return nil
	})
}

// Transfer atomically moves amount from the value under `from` to the
// value under `to` — the bank-account transfer of the composed-scenario
// suite, composed from Get and Put through the thread's pre-bound frame
// (no per-call closure). Both values must be ints. The transfer happens
// only when both keys are present and the source balance covers amount;
// it reports whether it happened. from == to and non-positive amounts are
// rejected (they could not conserve the total).
func (m *SkipListMap) Transfer(th *stm.Thread, from, to, amount int) bool {
	if amount <= 0 || from == to {
		return false
	}
	f := frameOf(th)
	f.cMap, f.cA, f.cB, f.cAmt = m, from, to, amount
	_ = th.Atomic(OpKind(th), f.compFns[compTransfer])
	f.cMap = nil
	return f.cOK
}

// SumInt atomically sums the int-typed values of the map in one
// transaction — the total-balance audit of the bank scenario. Non-int
// values count as zero.
func (m *SkipListMap) SumInt(th *stm.Thread) int {
	total := 0
	_ = th.Atomic(stm.Regular, func(tx stm.Tx) error {
		total = 0
		curr := stm.ReadPtr(tx, &m.head.next[0])
		for curr.key != math.MaxInt {
			if n, ok := tx.Read(&curr.val).(int); ok {
				total += n
			}
			curr = stm.ReadPtr(tx, &curr.next[0])
		}
		return nil
	})
	return total
}

// Size returns the number of entries, atomically.
func (m *SkipListMap) Size(th *stm.Thread) int {
	n := 0
	_ = th.Atomic(stm.Regular, func(tx stm.Tx) error {
		n = 0
		curr := stm.ReadPtr(tx, &m.head.next[0])
		for curr.key != math.MaxInt {
			n++
			curr = stm.ReadPtr(tx, &curr.next[0])
		}
		return nil
	})
	return n
}

// Range calls fn for every entry in ascending key order within one
// atomic snapshot; fn returning false stops the iteration. fn must not
// start transactions on th.
func (m *SkipListMap) Range(th *stm.Thread, fn func(key int, val any) bool) {
	type entry struct {
		k int
		v any
	}
	var snapshot []entry
	_ = th.Atomic(stm.Regular, func(tx stm.Tx) error {
		snapshot = snapshot[:0]
		curr := stm.ReadPtr(tx, &m.head.next[0])
		for curr.key != math.MaxInt {
			snapshot = append(snapshot, entry{curr.key, tx.Read(&curr.val)})
			curr = stm.ReadPtr(tx, &curr.next[0])
		}
		return nil
	})
	for _, e := range snapshot {
		if !fn(e.k, e.v) {
			return
		}
	}
}

// insertionSort keeps the map free of the sort package dependency for a
// handful of keys.
func insertionSort(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
