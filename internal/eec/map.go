package eec

import (
	"math"

	"oestm/internal/mvar"
	"oestm/internal/stm"
)

// SkipListMap is an ordered integer-keyed map built on the same skiplist
// substrate as SkipListSet — the e.e.c counterpart of the JDK's
// ConcurrentSkipListMap, whose size() and bulk views are famously not
// atomic (§I). Here every operation, including Size, Range and the
// composed PutIfAbsent/PutAll, is atomic.
//
// Keys are immutable ints; values live in a transactional field of the
// node, so updating a present key conflicts only on that node.
type SkipListMap struct {
	head *mnode
	tail *mnode
}

// mnode is a skiplist map node: immutable key, transactional value,
// removal mark and tower links. The links and mark are typed (no boxing);
// the value cell holds an arbitrary user value and therefore boxes on
// update.
type mnode struct {
	key    int
	val    mvar.AnyVar       // holds any
	marked mvar.Flag         // holds bool
	next   []mvar.Var[mnode] // each holds *mnode
}

func newMnode(key, height int, val any) *mnode {
	n := &mnode{key: key, next: make([]mvar.Var[mnode], height)}
	n.val.Init(val)
	return n
}

// NewSkipListMap returns an empty SkipListMap.
func NewSkipListMap() *SkipListMap {
	tail := newMnode(math.MaxInt, maxLevel, nil)
	head := newMnode(math.MinInt, maxLevel, nil)
	for l := 0; l < maxLevel; l++ {
		head.next[l].Init(tail)
	}
	return &SkipListMap{head: head, tail: tail}
}

// Name identifies the implementation.
func (m *SkipListMap) Name() string { return "skiplistmap" }

// find locates, per level, the rightmost node with key < target.
func (m *SkipListMap) find(tx stm.Tx, key int) *[maxLevel]*mnode {
	var preds [maxLevel]*mnode
	curr := m.head
	for l := maxLevel - 1; l >= 0; l-- {
		next := stm.ReadPtr(tx, &curr.next[l])
		for next.key < key {
			curr = next
			next = stm.ReadPtr(tx, &curr.next[l])
		}
		preds[l] = curr
	}
	return &preds
}

// Get returns the value stored under key and whether it is present.
func (m *SkipListMap) Get(th *stm.Thread, key int) (any, bool) {
	var val any
	var ok bool
	_ = th.Atomic(opKind(th), func(tx stm.Tx) error {
		val, ok = nil, false
		preds := m.find(tx, key)
		target := stm.ReadPtr(tx, &preds[0].next[0])
		if target.key == key {
			val, ok = tx.Read(&target.val), true
		}
		return nil
	})
	return val, ok
}

// ContainsKey reports whether key is present.
func (m *SkipListMap) ContainsKey(th *stm.Thread, key int) bool {
	_, ok := m.Get(th, key)
	return ok
}

// Put stores val under key, returning the previous value (nil, false if
// the key was absent).
func (m *SkipListMap) Put(th *stm.Thread, key int, val any) (any, bool) {
	height := randomHeight(th)
	var prev any
	var had bool
	_ = th.Atomic(opKind(th), func(tx stm.Tx) error {
		prev, had = nil, false
		preds := m.find(tx, key)
		target := stm.ReadPtr(tx, &preds[0].next[0])
		if target.key == key {
			if stm.ReadFlag(tx, &target.marked) {
				stm.Conflict("skiplistmap: node concurrently removed")
			}
			prev, had = tx.Read(&target.val), true
			tx.Write(&target.val, val)
			return nil
		}
		if preds[0].key >= key || target.key < key {
			stm.Conflict("skiplistmap: insertion window moved")
		}
		if stm.ReadFlag(tx, &preds[0].marked) {
			stm.Conflict("skiplistmap: predecessor removed")
		}
		n := newMnode(key, height, val)
		succ := target
		for l := 0; l < height; l++ {
			if l > 0 {
				succ = stm.ReadPtr(tx, &preds[l].next[l])
				if preds[l].key >= key || succ.key <= key {
					stm.Conflict("skiplistmap: insertion window moved")
				}
				if stm.ReadFlag(tx, &preds[l].marked) {
					stm.Conflict("skiplistmap: predecessor removed")
				}
			}
			n.next[l].Init(succ)
			stm.WritePtr(tx, &preds[l].next[l], n)
		}
		return nil
	})
	return prev, had
}

// Remove deletes key, returning the removed value (nil, false if absent).
func (m *SkipListMap) Remove(th *stm.Thread, key int) (any, bool) {
	var prev any
	var had bool
	_ = th.Atomic(opKind(th), func(tx stm.Tx) error {
		prev, had = nil, false
		preds := m.find(tx, key)
		target := stm.ReadPtr(tx, &preds[0].next[0])
		if target.key != key {
			if target.key < key {
				stm.Conflict("skiplistmap: removal window moved")
			}
			return nil
		}
		if stm.ReadFlag(tx, &target.marked) || stm.ReadFlag(tx, &preds[0].marked) {
			stm.Conflict("skiplistmap: node concurrently removed")
		}
		prev, had = tx.Read(&target.val), true
		stm.WriteFlag(tx, &target.marked, true)
		for l := len(target.next) - 1; l >= 0; l-- {
			pred := preds[l]
			curr := stm.ReadPtr(tx, &pred.next[l])
			if curr != target {
				stm.Conflict("skiplistmap: tower link moved")
			}
			if l > 0 && stm.ReadFlag(tx, &pred.marked) {
				stm.Conflict("skiplistmap: predecessor removed")
			}
			succ := stm.ReadPtr(tx, &target.next[l])
			stm.WritePtr(tx, &pred.next[l], succ)
		}
		return nil
	})
	return prev, had
}

// PutIfAbsent stores val only when key is absent — a composition of
// ContainsKey and Put, atomic thanks to outheritance. It reports whether
// the value was stored.
func (m *SkipListMap) PutIfAbsent(th *stm.Thread, key int, val any) bool {
	stored := false
	_ = th.Atomic(opKind(th), func(stm.Tx) error {
		stored = false
		if !m.ContainsKey(th, key) {
			m.Put(th, key, val)
			stored = true
		}
		return nil
	})
	return stored
}

// PutAll stores every entry atomically (composed from Put).
func (m *SkipListMap) PutAll(th *stm.Thread, entries map[int]any) {
	// Deterministic order so retried compositions behave identically.
	keys := make([]int, 0, len(entries))
	for k := range entries {
		keys = append(keys, k)
	}
	insertionSort(keys)
	_ = th.Atomic(opKind(th), func(stm.Tx) error {
		for _, k := range keys {
			m.Put(th, k, entries[k])
		}
		return nil
	})
}

// Size returns the number of entries, atomically.
func (m *SkipListMap) Size(th *stm.Thread) int {
	n := 0
	_ = th.Atomic(stm.Regular, func(tx stm.Tx) error {
		n = 0
		curr := stm.ReadPtr(tx, &m.head.next[0])
		for curr.key != math.MaxInt {
			n++
			curr = stm.ReadPtr(tx, &curr.next[0])
		}
		return nil
	})
	return n
}

// Range calls fn for every entry in ascending key order within one
// atomic snapshot; fn returning false stops the iteration. fn must not
// start transactions on th.
func (m *SkipListMap) Range(th *stm.Thread, fn func(key int, val any) bool) {
	type entry struct {
		k int
		v any
	}
	var snapshot []entry
	_ = th.Atomic(stm.Regular, func(tx stm.Tx) error {
		snapshot = snapshot[:0]
		curr := stm.ReadPtr(tx, &m.head.next[0])
		for curr.key != math.MaxInt {
			snapshot = append(snapshot, entry{curr.key, tx.Read(&curr.val)})
			curr = stm.ReadPtr(tx, &curr.next[0])
		}
		return nil
	})
	for _, e := range snapshot {
		if !fn(e.k, e.v) {
			return
		}
	}
}

// insertionSort keeps the map free of the sort package dependency for a
// handful of keys.
func insertionSort(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
