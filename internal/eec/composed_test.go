package eec

import (
	"sync"
	"testing"

	"oestm/internal/core"
	"oestm/internal/stm"
)

func TestMapTransfer(t *testing.T) {
	tm := core.New()
	th := stm.NewThread(tm)
	m := NewSkipListMap()
	m.Put(th, 1, 100)
	m.Put(th, 2, 50)

	if !m.Transfer(th, 1, 2, 30) {
		t.Fatal("transfer with sufficient funds failed")
	}
	if v, _ := m.Get(th, 1); v != 70 {
		t.Fatalf("account 1 = %v, want 70", v)
	}
	if v, _ := m.Get(th, 2); v != 80 {
		t.Fatalf("account 2 = %v, want 80", v)
	}
	if m.Transfer(th, 1, 2, 71) {
		t.Fatal("transfer over balance succeeded")
	}
	if m.Transfer(th, 9, 2, 1) {
		t.Fatal("transfer from missing account succeeded")
	}
	if m.Transfer(th, 1, 9, 1) {
		t.Fatal("transfer to missing account succeeded")
	}
	if m.Transfer(th, 1, 1, 1) {
		t.Fatal("self-transfer succeeded")
	}
	if m.Transfer(th, 1, 2, 0) || m.Transfer(th, 1, 2, -5) {
		t.Fatal("non-positive transfer succeeded")
	}
	m.Put(th, 3, "not-a-balance")
	if m.Transfer(th, 1, 3, 1) {
		t.Fatal("transfer onto a non-int value succeeded")
	}
	if v, _ := m.Get(th, 3); v != "not-a-balance" {
		t.Fatalf("non-int destination value destroyed: %v", v)
	}
	if m.Transfer(th, 3, 1, 1) {
		t.Fatal("transfer from a non-int value succeeded")
	}
	if got := m.SumInt(th); got != 150 {
		t.Fatalf("SumInt = %d, want 150", got)
	}
}

func TestMapTransferConservesTotal(t *testing.T) {
	const accounts, balance, goroutines, transfers = 8, 1000, 4, 500
	tm := core.New()
	init := stm.NewThread(tm)
	m := NewSkipListMap()
	for i := 0; i < accounts; i++ {
		m.Put(init, i, balance)
	}
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			th := stm.NewThread(tm)
			for i := 0; i < transfers; i++ {
				from := (seed + i) % accounts
				to := (from + 1 + i%(accounts-1)) % accounts
				m.Transfer(th, from, to, 1+i%37)
			}
		}(g)
	}
	wg.Wait()
	if got := m.SumInt(init); got != accounts*balance {
		t.Fatalf("total balance = %d, want %d", got, accounts*balance)
	}
}

func TestQueueMoveTo(t *testing.T) {
	tm := core.New()
	th := stm.NewThread(tm)
	src, dst := NewQueue(), NewQueue()
	for i := 1; i <= 3; i++ {
		src.Enqueue(th, i)
	}
	v, ok := src.MoveTo(th, dst)
	if !ok || v != 1 {
		t.Fatalf("MoveTo = (%v, %v), want (1, true)", v, ok)
	}
	if _, ok := src.MoveTo(th, dst); !ok {
		t.Fatal("second MoveTo failed")
	}
	if got := src.Len(th); got != 1 {
		t.Fatalf("src len = %d, want 1", got)
	}
	snap := dst.Snapshot(th)
	if len(snap) != 2 || snap[0] != 1 || snap[1] != 2 {
		t.Fatalf("dst snapshot = %v, want [1 2]", snap)
	}
	empty := NewQueue()
	if v, ok := empty.MoveTo(th, dst); ok || v != nil {
		t.Fatalf("MoveTo from empty = (%v, %v), want (nil, false)", v, ok)
	}
}

// TestComposedOpsSequentialInOneRegion exercises sibling composed frame
// operations inside one user transaction: each must consume the shared
// frame fields before the next is parameterised, including across a
// whole-nest retry.
func TestComposedOpsSequentialInOneRegion(t *testing.T) {
	tm := core.New()
	th := stm.NewThread(tm)
	a, b := NewLinkedListSet(), NewHashSet(4)
	m := NewSkipListMap()
	q1, q2 := NewQueue(), NewQueue()
	a.Add(th, 1)
	m.Put(th, 0, 10)
	m.Put(th, 1, 0)
	q1.Enqueue(th, 7)

	var moved, inserted, transferred, staged bool
	err := th.Atomic(stm.Elastic, func(stm.Tx) error {
		moved = Move(th, a, b, 1)
		inserted = InsertIfAbsent(th, a, 2, 3)
		transferred = m.Transfer(th, 0, 1, 5)
		_, staged = q1.MoveTo(th, q2)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !moved || !inserted || !transferred || !staged {
		t.Fatalf("composition results: move=%v insert=%v transfer=%v stage=%v",
			moved, inserted, transferred, staged)
	}
	if !b.Contains(th, 1) || a.Contains(th, 1) || !a.Contains(th, 2) {
		t.Fatal("composed region left wrong set state")
	}
	if v, _ := m.Get(th, 1); v != 5 {
		t.Fatalf("account 1 = %v, want 5", v)
	}
	if v, ok := q2.Dequeue(th); !ok || v != 7 {
		t.Fatalf("staged item = (%v, %v), want (7, true)", v, ok)
	}
}

// TestComposedOpsAllocFree pins the frame machinery down: composed
// operations that mutate nothing (absent keys, blocked inserts, empty
// queues) must not allocate at all — no closure capture, no escaping
// results.
func TestComposedOpsAllocFree(t *testing.T) {
	tm := core.New()
	th := stm.NewThread(tm)
	s := NewLinkedListSet()
	s.Add(th, 1)
	m := NewSkipListMap()
	m.Put(th, 0, 10)
	q, q2 := NewQueue(), NewQueue()

	cases := []struct {
		name string
		fn   func()
	}{
		{"move-absent", func() { Move(th, s, s, 99) }},
		{"insert-if-absent-blocked", func() { InsertIfAbsent(th, s, 2, 1) }},
		{"transfer-insufficient", func() { m.Transfer(th, 0, 1, 100) }},
		{"map-get", func() { m.Get(th, 0) }},
		{"queue-move-empty", func() { q.MoveTo(th, q2) }},
		{"queue-dequeue-empty", func() { q.Dequeue(th) }},
	}
	for _, c := range cases {
		c.fn() // warm the frame
		if avg := testing.AllocsPerRun(100, c.fn); avg != 0 {
			t.Errorf("%s: %.1f allocs/op, want 0", c.name, avg)
		}
	}
}
