package eec

import (
	"math"

	"oestm/internal/mvar"
	"oestm/internal/stm"
)

// maxLevel bounds skiplist towers; with p = 1/2 this comfortably covers
// the paper's 2^12..2^13 element counts.
const maxLevel = 16

// snode is a skiplist node: an immutable key, one transactional link per
// level of its tower, and a transactional removal mark. The mark is what
// lets concurrent updates detect that a predecessor they located during
// an elastic traversal has since left the structure: every update reads
// the marks of the nodes it writes through, so a removal (which sets the
// mark) invalidates those readers at commit time. Links are typed
// variables and the mark a typed flag, so traversals never box.
type snode struct {
	key    int
	marked mvar.Flag         // zero value reads as false
	next   []mvar.Var[snode] // each holds *snode
}

func newSnode(key, height int) *snode {
	return &snode{key: key, next: make([]mvar.Var[snode], height)}
}

// SkipListSet is the skip list set of e.e.c (Fig. 5 / Fig. 7). Updates
// touch O(log n) links, so — as the paper observes — relaxation buys less
// here than on the linked list: every engine contends on the towers.
type SkipListSet struct {
	head *snode
	tail *snode
}

// NewSkipListSet returns an empty SkipListSet.
func NewSkipListSet() *SkipListSet {
	tail := newSnode(math.MaxInt, maxLevel)
	head := newSnode(math.MinInt, maxLevel)
	for l := 0; l < maxLevel; l++ {
		head.next[l].Init(tail)
	}
	return &SkipListSet{head: head, tail: tail}
}

// Name implements Set.
func (s *SkipListSet) Name() string { return "skiplist" }

// randomHeight draws a tower height with geometric distribution p = 1/2.
// It is drawn outside the transaction body so retries reuse it.
func randomHeight(th *stm.Thread) int {
	h := 1
	for h < maxLevel && th.Rand.Uint64()&1 == 1 {
		h++
	}
	return h
}

// find locates, per level, the rightmost node with key < f.key and its
// successor, filling the frame's scratch arrays (which keeps them off the
// heap). Only the traversal reads are performed; callers re-read the
// links they are about to modify (see add) so that the positions they
// rely on are protected even under elastic semantics.
//
//compose:noalloc
func (s *SkipListSet) find(tx stm.Tx, f *opFrame) {
	key := f.key
	curr := s.head
	for l := maxLevel - 1; l >= 0; l-- {
		next := stm.ReadPtr(tx, &curr.next[l])
		for next.key < key {
			curr = next
			next = stm.ReadPtr(tx, &curr.next[l])
		}
		f.preds[l], f.succs[l] = curr, next
	}
}

// contains is the transactional body of Contains.
//
//compose:noalloc
func (s *SkipListSet) contains(tx stm.Tx, f *opFrame) bool {
	s.find(tx, f)
	return f.succs[0].key == f.key
}

// add is the transactional body of Add; f.height carries the tower height
// drawn outside the transaction.
func (s *SkipListSet) add(tx stm.Tx, f *opFrame) bool {
	key := f.key
	s.find(tx, f)
	// Re-read the level-0 link: under elastic semantics the traversal
	// reads above may no longer be protected, so the links to be
	// rewired are re-read transactionally just before writing — the
	// re-reads join the protected set and are validated at commit.
	succ := stm.ReadPtr(tx, &f.preds[0].next[0])
	if succ.key == key {
		return false // already present
	}
	if f.preds[0].key >= key || succ.key < key {
		stm.Conflict("skiplist: insertion window moved")
	}
	if stm.ReadFlag(tx, &f.preds[0].marked) {
		stm.Conflict("skiplist: predecessor removed")
	}
	n := newSnode(key, f.height)
	for l := 0; l < f.height; l++ {
		if l > 0 {
			succ = stm.ReadPtr(tx, &f.preds[l].next[l])
			if f.preds[l].key >= key || succ.key <= key {
				stm.Conflict("skiplist: insertion window moved")
			}
			if stm.ReadFlag(tx, &f.preds[l].marked) {
				stm.Conflict("skiplist: predecessor removed")
			}
		}
		n.next[l].Init(succ)
		stm.WritePtr(tx, &f.preds[l].next[l], n)
	}
	return true
}

// remove is the transactional body of Remove.
func (s *SkipListSet) remove(tx stm.Tx, f *opFrame) bool {
	key := f.key
	s.find(tx, f)
	target := stm.ReadPtr(tx, &f.preds[0].next[0])
	if target.key != key {
		if target.key < key {
			stm.Conflict("skiplist: removal window moved")
		}
		return false // absent
	}
	if stm.ReadFlag(tx, &target.marked) || stm.ReadFlag(tx, &f.preds[0].marked) {
		stm.Conflict("skiplist: node concurrently removed")
	}
	// Setting the mark is the linchpin: every concurrent update that
	// located target (or uses it as a predecessor) has target.marked
	// in its protected set and fails validation once we commit.
	stm.WriteFlag(tx, &target.marked, true)
	for l := len(target.next) - 1; l >= 0; l-- {
		pred := f.preds[l]
		curr := stm.ReadPtr(tx, &pred.next[l])
		if curr != target {
			stm.Conflict("skiplist: tower link moved")
		}
		if l > 0 && stm.ReadFlag(tx, &pred.marked) {
			stm.Conflict("skiplist: predecessor removed")
		}
		succ := stm.ReadPtr(tx, &target.next[l])
		stm.WritePtr(tx, &pred.next[l], succ)
		// Rewrite the removed node's link with the same value (cf.
		// list.remove): the version bump invalidates any concurrent
		// elastic transaction whose protected window — possibly
		// outherited into an enclosing composition — is a link of the
		// departing node. Without it, a composed contains whose last
		// read went through target would still validate at the parent's
		// commit and observe a node no longer in the structure.
		stm.WritePtr(tx, &target.next[l], succ)
	}
	return true
}

// Contains implements Set.
func (s *SkipListSet) Contains(th *stm.Thread, key int) bool {
	return frameOf(th).skipOp(opContains, s, key)
}

// Add implements Set.
func (s *SkipListSet) Add(th *stm.Thread, key int) bool {
	f := frameOf(th)
	f.height = randomHeight(th)
	return f.skipOp(opAdd, s, key)
}

// Remove implements Set.
func (s *SkipListSet) Remove(th *stm.Thread, key int) bool {
	return frameOf(th).skipOp(opRemove, s, key)
}

// AddAll implements Set by composing Add.
func (s *SkipListSet) AddAll(th *stm.Thread, keys []int) bool {
	return addAll(th, s, keys)
}

// RemoveAll implements Set by composing Remove.
func (s *SkipListSet) RemoveAll(th *stm.Thread, keys []int) bool {
	return removeAll(th, s, keys)
}

// Size implements Set with a single atomic traversal of level 0.
func (s *SkipListSet) Size(th *stm.Thread) int {
	return len(s.Elements(th))
}

// Elements implements Set.
func (s *SkipListSet) Elements(th *stm.Thread) []int {
	var out []int
	_ = th.Atomic(stm.Regular, func(tx stm.Tx) error {
		out = out[:0]
		curr := stm.ReadPtr(tx, &s.head.next[0])
		for curr.key != math.MaxInt {
			out = append(out, curr.key)
			curr = stm.ReadPtr(tx, &curr.next[0])
		}
		return nil
	})
	return out
}
