package eec_test

import (
	"math/rand/v2"
	"sync"
	"testing"
	"testing/quick"

	"oestm/internal/core"
	"oestm/internal/eec"
	"oestm/internal/stm"
)

func TestMapBasic(t *testing.T) {
	for ename, etm := range engines() {
		t.Run(ename, func(t *testing.T) {
			tm := etm()
			th := stm.NewThread(tm)
			m := eec.NewSkipListMap()
			if m.Name() != "skiplistmap" {
				t.Fatalf("name = %q", m.Name())
			}
			if _, ok := m.Get(th, 1); ok {
				t.Fatal("empty map has key 1")
			}
			if prev, had := m.Put(th, 1, "a"); had || prev != nil {
				t.Fatalf("Put on absent key returned %v, %v", prev, had)
			}
			if v, ok := m.Get(th, 1); !ok || v != "a" {
				t.Fatalf("Get = %v, %v", v, ok)
			}
			if prev, had := m.Put(th, 1, "b"); !had || prev != "a" {
				t.Fatalf("overwrite returned %v, %v", prev, had)
			}
			if !m.ContainsKey(th, 1) || m.ContainsKey(th, 2) {
				t.Fatal("ContainsKey wrong")
			}
			if m.Size(th) != 1 {
				t.Fatalf("size = %d", m.Size(th))
			}
			if prev, had := m.Remove(th, 1); !had || prev != "b" {
				t.Fatalf("Remove returned %v, %v", prev, had)
			}
			if _, had := m.Remove(th, 1); had {
				t.Fatal("Remove of absent key reported success")
			}
		})
	}
}

func TestMapPutIfAbsent(t *testing.T) {
	tm := core.New()
	th := stm.NewThread(tm)
	m := eec.NewSkipListMap()
	if !m.PutIfAbsent(th, 5, "x") {
		t.Fatal("PutIfAbsent on absent key failed")
	}
	if m.PutIfAbsent(th, 5, "y") {
		t.Fatal("PutIfAbsent on present key stored")
	}
	if v, _ := m.Get(th, 5); v != "x" {
		t.Fatalf("value = %v, want x", v)
	}
}

func TestMapPutAllAndRange(t *testing.T) {
	tm := core.New()
	th := stm.NewThread(tm)
	m := eec.NewSkipListMap()
	m.PutAll(th, map[int]any{3: "c", 1: "a", 2: "b"})
	var keys []int
	var vals []any
	m.Range(th, func(k int, v any) bool {
		keys = append(keys, k)
		vals = append(vals, v)
		return true
	})
	if len(keys) != 3 || keys[0] != 1 || keys[1] != 2 || keys[2] != 3 {
		t.Fatalf("range keys = %v", keys)
	}
	if vals[0] != "a" || vals[1] != "b" || vals[2] != "c" {
		t.Fatalf("range vals = %v", vals)
	}
	// Early stop.
	count := 0
	m.Range(th, func(int, any) bool { count++; return false })
	if count != 1 {
		t.Fatalf("early-stop visited %d entries", count)
	}
}

// TestMapAgainstModel drives random operation sequences against a map
// model.
func TestMapAgainstModel(t *testing.T) {
	tm := core.New()
	th := stm.NewThread(tm)
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 5))
		m := eec.NewSkipListMap()
		model := map[int]int{}
		for i := 0; i < 200; i++ {
			k := int(rng.IntN(25))
			switch rng.IntN(4) {
			case 0:
				v := int(rng.IntN(1000))
				prev, had := m.Put(th, k, v)
				mprev, mhad := model[k], false
				if _, ok := model[k]; ok {
					mhad = true
				}
				if had != mhad || (had && prev != mprev) {
					return false
				}
				model[k] = v
			case 1:
				prev, had := m.Remove(th, k)
				mprev, mhad := model[k], false
				if _, ok := model[k]; ok {
					mhad = true
				}
				if had != mhad || (had && prev != mprev) {
					return false
				}
				delete(model, k)
			case 2:
				v, ok := m.Get(th, k)
				mv, mok := model[k]
				if ok != mok || (ok && v != mv) {
					return false
				}
			default:
				if m.ContainsKey(th, k) != hasKey(model, k) {
					return false
				}
			}
		}
		return m.Size(th) == len(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func hasKey(m map[int]int, k int) bool {
	_, ok := m[k]
	return ok
}

// TestMapConcurrentCounters uses map values as per-key counters updated
// read-modify-write inside one atomic region; totals must be exact.
func TestMapConcurrentCounters(t *testing.T) {
	tm := core.New()
	m := eec.NewSkipListMap()
	const keys = 8
	const goroutines = 6
	const per = 150
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			th := stm.NewThread(tm)
			rng := rand.New(rand.NewPCG(seed, 13))
			for i := 0; i < per; i++ {
				k := int(rng.IntN(keys))
				_ = th.Atomic(stm.Elastic, func(stm.Tx) error {
					v, ok := m.Get(th, k)
					if !ok {
						m.Put(th, k, 1)
					} else {
						m.Put(th, k, v.(int)+1)
					}
					return nil
				})
			}
		}(uint64(g + 1))
	}
	wg.Wait()
	th := stm.NewThread(tm)
	total := 0
	m.Range(th, func(_ int, v any) bool {
		total += v.(int)
		return true
	})
	if total != goroutines*per {
		t.Fatalf("total = %d, want %d", total, goroutines*per)
	}
}

// TestMapAtomicSizeUnderBulk: PutAll blocks are atomic, so Size is always
// a multiple of the block length.
func TestMapAtomicSizeUnderBulk(t *testing.T) {
	tm := core.New()
	m := eec.NewSkipListMap()
	block := map[int]any{10: "a", 11: "b", 12: "c", 13: "d"}
	stop := make(chan struct{})
	var workers, observers sync.WaitGroup
	workers.Add(1)
	go func() {
		defer workers.Done()
		th := stm.NewThread(tm)
		for i := 0; i < 200; i++ {
			m.PutAll(th, block)
			_ = th.Atomic(stm.Elastic, func(stm.Tx) error {
				for k := range block {
					m.Remove(th, k)
				}
				return nil
			})
		}
	}()
	observers.Add(1)
	go func() {
		defer observers.Done()
		th := stm.NewThread(tm)
		for {
			select {
			case <-stop:
				return
			default:
			}
			if n := m.Size(th); n != 0 && n != len(block) {
				t.Errorf("torn bulk observed: size %d", n)
				return
			}
		}
	}()
	workers.Wait()
	close(stop)
	observers.Wait()
}

// TestMapGetTx pins the direct-read primitive behind cross-structure
// snapshots (the store's MGet): values and absences agree with Get, a
// multi-map observation inside one Regular transaction is atomic, and
// the read path is allocation-free.
func TestMapGetTx(t *testing.T) {
	tm := core.New()
	th := stm.NewThread(tm)
	a, b := eec.NewSkipListMap(), eec.NewSkipListMap()
	for k := 0; k < 32; k++ {
		if k%2 == 0 {
			a.Put(th, k, k*10)
		} else {
			b.Put(th, k, k*10)
		}
	}
	var gotA, gotB int
	body := func(tx stm.Tx) error {
		gotA, gotB = 0, 0
		for k := 0; k < 32; k++ {
			if v, ok := a.GetTx(tx, k); ok {
				gotA += v.(int)
			}
			if v, ok := b.GetTx(tx, k); ok {
				gotB += v.(int)
			}
			if _, ok := a.GetTx(tx, k+1000); ok {
				t.Error("GetTx found an absent key")
			}
		}
		return nil
	}
	if err := th.Atomic(stm.Regular, body); err != nil {
		t.Fatal(err)
	}
	wantA, wantB := 0, 0
	for k := 0; k < 32; k += 2 {
		wantA += k * 10
		wantB += (k + 1) * 10
	}
	if gotA != wantA || gotB != wantB {
		t.Fatalf("GetTx sums %d/%d, want %d/%d", gotA, gotB, wantA, wantB)
	}
	if allocs := testing.AllocsPerRun(100, func() {
		if err := th.Atomic(stm.Regular, body); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Errorf("GetTx snapshot: %v allocs/op, want 0", allocs)
	}
}
