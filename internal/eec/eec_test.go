package eec_test

import (
	"math/rand/v2"
	"reflect"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"

	"oestm/internal/core"
	"oestm/internal/eec"
	"oestm/internal/lsa"
	"oestm/internal/stm"
	"oestm/internal/swisstm"
	"oestm/internal/tl2"
)

func engines() map[string]func() stm.TM {
	return map[string]func() stm.TM{
		"oestm":   func() stm.TM { return core.New() },
		"estm":    func() stm.TM { return core.NewWithoutOutheritance() },
		"tl2":     func() stm.TM { return tl2.New() },
		"lsa":     func() stm.TM { return lsa.New() },
		"swisstm": func() stm.TM { return swisstm.New() },
	}
}

// composableEngines excludes estm: without outheritance, concurrent
// composed operations (Move, AddAll under contention) may violate
// atomicity — that is the paper's Fig. 1 and is demonstrated
// deterministically in internal/core's tests. The conservation and bulk
// atomicity tests below assume a correctly composing engine.
func composableEngines() map[string]func() stm.TM {
	es := engines()
	delete(es, "estm")
	return es
}

func structures() map[string]func() eec.Set {
	return map[string]func() eec.Set{
		"linkedlist": func() eec.Set { return eec.NewLinkedListSet() },
		"skiplist":   func() eec.Set { return eec.NewSkipListSet() },
		"hashset":    func() eec.Set { return eec.NewHashSet(8) },
	}
}

// forAll runs f for every (engine, structure) pair.
func forAll(t *testing.T, f func(t *testing.T, tm stm.TM, s eec.Set)) {
	for ename, etm := range engines() {
		for sname, mk := range structures() {
			t.Run(ename+"/"+sname, func(t *testing.T) {
				f(t, etm(), mk())
			})
		}
	}
}

// forAllComposable is forAll restricted to engines that compose correctly.
func forAllComposable(t *testing.T, f func(t *testing.T, tm stm.TM, s eec.Set)) {
	for ename, etm := range composableEngines() {
		for sname, mk := range structures() {
			t.Run(ename+"/"+sname, func(t *testing.T) {
				f(t, etm(), mk())
			})
		}
	}
}

func TestBasicSemantics(t *testing.T) {
	forAll(t, func(t *testing.T, tm stm.TM, s eec.Set) {
		th := stm.NewThread(tm)
		if s.Contains(th, 7) {
			t.Fatal("empty set contains 7")
		}
		if !s.Add(th, 7) {
			t.Fatal("Add of new key returned false")
		}
		if s.Add(th, 7) {
			t.Fatal("Add of present key returned true")
		}
		if !s.Contains(th, 7) {
			t.Fatal("added key missing")
		}
		if s.Size(th) != 1 {
			t.Fatalf("size = %d, want 1", s.Size(th))
		}
		if !s.Remove(th, 7) {
			t.Fatal("Remove of present key returned false")
		}
		if s.Remove(th, 7) {
			t.Fatal("Remove of absent key returned true")
		}
		if s.Size(th) != 0 {
			t.Fatalf("size = %d, want 0", s.Size(th))
		}
	})
}

func TestBulkSemantics(t *testing.T) {
	forAll(t, func(t *testing.T, tm stm.TM, s eec.Set) {
		th := stm.NewThread(tm)
		if !s.AddAll(th, []int{5, 3, 4}) {
			t.Fatal("AddAll reported no change")
		}
		if got := s.Elements(th); !reflect.DeepEqual(got, []int{3, 4, 5}) {
			t.Fatalf("elements = %v", got)
		}
		if s.AddAll(th, []int{3, 5}) {
			t.Fatal("AddAll of present keys reported change")
		}
		if !s.RemoveAll(th, []int{4, 99}) {
			t.Fatal("RemoveAll reported no change")
		}
		if got := s.Elements(th); !reflect.DeepEqual(got, []int{3, 5}) {
			t.Fatalf("elements = %v", got)
		}
		if s.RemoveAll(th, []int{42}) {
			t.Fatal("RemoveAll of absent keys reported change")
		}
	})
}

// TestAgainstModel drives random single-threaded operation sequences and
// compares every result with a map model.
func TestAgainstModel(t *testing.T) {
	forAll(t, func(t *testing.T, tm stm.TM, s eec.Set) {
		th := stm.NewThread(tm)
		f := func(seed uint64) bool {
			rng := rand.New(rand.NewPCG(seed, 2))
			model := map[int]bool{}
			// fresh structure per sequence
			var set eec.Set
			switch s.Name() {
			case "linkedlist":
				set = eec.NewLinkedListSet()
			case "skiplist":
				set = eec.NewSkipListSet()
			default:
				set = eec.NewHashSet(4)
			}
			for i := 0; i < 150; i++ {
				k := int(rng.IntN(30))
				switch rng.IntN(4) {
				case 0:
					if set.Add(th, k) != !model[k] {
						return false
					}
					model[k] = true
				case 1:
					if set.Remove(th, k) != model[k] {
						return false
					}
					delete(model, k)
				case 2:
					if set.Contains(th, k) != model[k] {
						return false
					}
				default:
					k2 := int(rng.IntN(30))
					changed := !model[k] || !model[k2]
					if set.AddAll(th, []int{k, k2}) != changed {
						return false
					}
					model[k], model[k2] = true, true
				}
			}
			want := make([]int, 0, len(model))
			for k := range model {
				want = append(want, k)
			}
			sort.Ints(want)
			got := set.Elements(th)
			if len(got) != len(want) {
				return false
			}
			for i := range got {
				if got[i] != want[i] {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
			t.Fatal(err)
		}
	})
}

// TestConcurrentPerKeyInvariant hammers each structure from several
// goroutines and checks, per key, that successfulAdds - successfulRemoves
// equals final membership — the fundamental atomicity invariant of a set.
func TestConcurrentPerKeyInvariant(t *testing.T) {
	forAll(t, func(t *testing.T, tm stm.TM, s eec.Set) {
		const keyRange = 32
		const goroutines = 6
		const opsPer = 300
		var adds, removes [keyRange]atomic.Int64
		var wg sync.WaitGroup
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(seed uint64) {
				defer wg.Done()
				th := stm.NewThread(tm)
				rng := rand.New(rand.NewPCG(seed, 11))
				for i := 0; i < opsPer; i++ {
					k := int(rng.IntN(keyRange))
					switch rng.IntN(3) {
					case 0:
						if s.Add(th, k) {
							adds[k].Add(1)
						}
					case 1:
						if s.Remove(th, k) {
							removes[k].Add(1)
						}
					default:
						s.Contains(th, k)
					}
				}
			}(uint64(g + 1))
		}
		wg.Wait()
		th := stm.NewThread(tm)
		for k := 0; k < keyRange; k++ {
			balance := adds[k].Load() - removes[k].Load()
			present := s.Contains(th, k)
			if balance != 0 && balance != 1 {
				t.Fatalf("key %d: impossible balance %d", k, balance)
			}
			if present != (balance == 1) {
				t.Fatalf("key %d: present=%v but balance=%d", k, present, balance)
			}
		}
	})
}

// TestBulkAtomicityObserved reproduces the §VI j.u.c motivation: with
// mutators that only AddAll/RemoveAll the pair {1,2}, an atomic snapshot
// must never contain exactly one of them. (java.util.concurrent's bulk
// operations explicitly do not guarantee this.)
func TestBulkAtomicityObserved(t *testing.T) {
	forAllComposable(t, func(t *testing.T, tm stm.TM, s eec.Set) {
		pair := []int{1, 2}
		stop := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			th := stm.NewThread(tm)
			for i := 0; i < 200; i++ {
				s.AddAll(th, pair)
				s.RemoveAll(th, pair)
			}
			close(stop)
		}()
		for r := 0; r < 2; r++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				th := stm.NewThread(tm)
				for {
					select {
					case <-stop:
						return
					default:
					}
					els := s.Elements(th)
					has1, has2 := false, false
					for _, e := range els {
						if e == 1 {
							has1 = true
						}
						if e == 2 {
							has2 = true
						}
					}
					if has1 != has2 {
						t.Errorf("bulk atomicity violated: snapshot %v", els)
						return
					}
				}
			}()
		}
		wg.Wait()
	})
}

func TestInsertIfAbsent(t *testing.T) {
	forAll(t, func(t *testing.T, tm stm.TM, s eec.Set) {
		th := stm.NewThread(tm)
		if !eec.InsertIfAbsent(th, s, 10, 20) {
			t.Fatal("InsertIfAbsent with y absent must insert")
		}
		if !s.Contains(th, 10) {
			t.Fatal("x not inserted")
		}
		s.Add(th, 20)
		if eec.InsertIfAbsent(th, s, 30, 20) {
			t.Fatal("InsertIfAbsent with y present must not insert")
		}
		if s.Contains(th, 30) {
			t.Fatal("x inserted although y present")
		}
		// x already present: no change.
		if eec.InsertIfAbsent(th, s, 10, 99) {
			t.Fatal("InsertIfAbsent of present x reported insertion")
		}
	})
}

func TestMove(t *testing.T) {
	for ename, etm := range engines() {
		t.Run(ename, func(t *testing.T) {
			tm := etm()
			th := stm.NewThread(tm)
			from, to := eec.NewLinkedListSet(), eec.NewHashSet(4)
			from.Add(th, 1)
			if !eec.Move(th, from, to, 1) {
				t.Fatal("Move of present key returned false")
			}
			if from.Contains(th, 1) || !to.Contains(th, 1) {
				t.Fatal("Move did not transfer the key")
			}
			if eec.Move(th, from, to, 1) {
				t.Fatal("Move of absent key returned true")
			}
		})
	}
}

// TestConcurrentMoveConservation: concurrent moves between two sets must
// conserve the total element count — the composition equivalent of the
// bank-transfer invariant, and the deadlock-prone case for locks (§I).
func TestConcurrentMoveConservation(t *testing.T) {
	for ename, etm := range composableEngines() {
		t.Run(ename, func(t *testing.T) {
			tm := etm()
			a, b := eec.NewLinkedListSet(), eec.NewLinkedListSet()
			init := stm.NewThread(tm)
			const n = 16
			for k := 0; k < n; k++ {
				a.Add(init, k)
			}
			var wg sync.WaitGroup
			for g := 0; g < 4; g++ {
				wg.Add(1)
				go func(seed uint64) {
					defer wg.Done()
					th := stm.NewThread(tm)
					rng := rand.New(rand.NewPCG(seed, 3))
					for i := 0; i < 150; i++ {
						k := int(rng.IntN(n))
						if rng.IntN(2) == 0 {
							eec.Move(th, a, b, k)
						} else {
							eec.Move(th, b, a, k)
						}
					}
				}(uint64(g + 1))
			}
			wg.Wait()
			th := stm.NewThread(tm)
			total := 0
			_ = th.Atomic(stm.Regular, func(tx stm.Tx) error {
				total = 0
				for k := 0; k < n; k++ {
					inA, inB := a.Contains(th, k), b.Contains(th, k)
					if inA && inB {
						t.Errorf("key %d present in both sets", k)
					}
					if inA || inB {
						total++
					}
				}
				return nil
			})
			if total != n {
				t.Fatalf("conservation broken: %d keys, want %d", total, n)
			}
		})
	}
}

// TestUserComposition checks that application code can compose e.e.c
// operations with its own transactional accesses.
func TestUserComposition(t *testing.T) {
	tm := core.New()
	th := stm.NewThread(tm)
	s := eec.NewSkipListSet()
	// Conditional double-insert as one atomic step.
	err := th.Atomic(stm.Elastic, func(tx stm.Tx) error {
		if !s.Contains(th, 1) {
			s.Add(th, 1)
			s.Add(th, 2)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Elements(th); !reflect.DeepEqual(got, []int{1, 2}) {
		t.Fatalf("elements = %v", got)
	}
}

func TestNames(t *testing.T) {
	th := stm.NewThread(core.New())
	_ = th
	for want, mk := range structures() {
		if got := mk().Name(); got != want {
			t.Fatalf("Name() = %q, want %q", got, want)
		}
	}
}

func TestHashSetSizingHelpers(t *testing.T) {
	s := eec.NewHashSetForLoad(4096)
	th := stm.NewThread(core.New())
	s.Add(th, 1)
	if !s.Contains(th, 1) {
		t.Fatal("NewHashSetForLoad set broken")
	}
	// zero buckets clamps to one
	s2 := eec.NewHashSet(0)
	s2.Add(th, 5)
	if !s2.Contains(th, 5) {
		t.Fatal("single-bucket hashset broken")
	}
}
